file(REMOVE_RECURSE
  "librpas_dist.a"
)
