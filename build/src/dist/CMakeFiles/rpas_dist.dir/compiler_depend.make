# Empty compiler generated dependencies file for rpas_dist.
# This may be replaced when dependencies are built.
