
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/empirical.cc" "src/dist/CMakeFiles/rpas_dist.dir/empirical.cc.o" "gcc" "src/dist/CMakeFiles/rpas_dist.dir/empirical.cc.o.d"
  "/root/repo/src/dist/gaussian.cc" "src/dist/CMakeFiles/rpas_dist.dir/gaussian.cc.o" "gcc" "src/dist/CMakeFiles/rpas_dist.dir/gaussian.cc.o.d"
  "/root/repo/src/dist/special.cc" "src/dist/CMakeFiles/rpas_dist.dir/special.cc.o" "gcc" "src/dist/CMakeFiles/rpas_dist.dir/special.cc.o.d"
  "/root/repo/src/dist/student_t.cc" "src/dist/CMakeFiles/rpas_dist.dir/student_t.cc.o" "gcc" "src/dist/CMakeFiles/rpas_dist.dir/student_t.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rpas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
