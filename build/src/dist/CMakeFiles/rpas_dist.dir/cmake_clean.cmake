file(REMOVE_RECURSE
  "CMakeFiles/rpas_dist.dir/empirical.cc.o"
  "CMakeFiles/rpas_dist.dir/empirical.cc.o.d"
  "CMakeFiles/rpas_dist.dir/gaussian.cc.o"
  "CMakeFiles/rpas_dist.dir/gaussian.cc.o.d"
  "CMakeFiles/rpas_dist.dir/special.cc.o"
  "CMakeFiles/rpas_dist.dir/special.cc.o.d"
  "CMakeFiles/rpas_dist.dir/student_t.cc.o"
  "CMakeFiles/rpas_dist.dir/student_t.cc.o.d"
  "librpas_dist.a"
  "librpas_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpas_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
