file(REMOVE_RECURSE
  "CMakeFiles/rpas_forecast.dir/arima.cc.o"
  "CMakeFiles/rpas_forecast.dir/arima.cc.o.d"
  "CMakeFiles/rpas_forecast.dir/backtest.cc.o"
  "CMakeFiles/rpas_forecast.dir/backtest.cc.o.d"
  "CMakeFiles/rpas_forecast.dir/deepar.cc.o"
  "CMakeFiles/rpas_forecast.dir/deepar.cc.o.d"
  "CMakeFiles/rpas_forecast.dir/forecaster.cc.o"
  "CMakeFiles/rpas_forecast.dir/forecaster.cc.o.d"
  "CMakeFiles/rpas_forecast.dir/holt_winters.cc.o"
  "CMakeFiles/rpas_forecast.dir/holt_winters.cc.o.d"
  "CMakeFiles/rpas_forecast.dir/mlp.cc.o"
  "CMakeFiles/rpas_forecast.dir/mlp.cc.o.d"
  "CMakeFiles/rpas_forecast.dir/qb5000.cc.o"
  "CMakeFiles/rpas_forecast.dir/qb5000.cc.o.d"
  "CMakeFiles/rpas_forecast.dir/recalibrated.cc.o"
  "CMakeFiles/rpas_forecast.dir/recalibrated.cc.o.d"
  "CMakeFiles/rpas_forecast.dir/seasonal_naive.cc.o"
  "CMakeFiles/rpas_forecast.dir/seasonal_naive.cc.o.d"
  "CMakeFiles/rpas_forecast.dir/tft.cc.o"
  "CMakeFiles/rpas_forecast.dir/tft.cc.o.d"
  "CMakeFiles/rpas_forecast.dir/time_features.cc.o"
  "CMakeFiles/rpas_forecast.dir/time_features.cc.o.d"
  "librpas_forecast.a"
  "librpas_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpas_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
