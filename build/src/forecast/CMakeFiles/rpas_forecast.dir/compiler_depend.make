# Empty compiler generated dependencies file for rpas_forecast.
# This may be replaced when dependencies are built.
