file(REMOVE_RECURSE
  "librpas_forecast.a"
)
