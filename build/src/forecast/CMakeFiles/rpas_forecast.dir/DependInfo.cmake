
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/arima.cc" "src/forecast/CMakeFiles/rpas_forecast.dir/arima.cc.o" "gcc" "src/forecast/CMakeFiles/rpas_forecast.dir/arima.cc.o.d"
  "/root/repo/src/forecast/backtest.cc" "src/forecast/CMakeFiles/rpas_forecast.dir/backtest.cc.o" "gcc" "src/forecast/CMakeFiles/rpas_forecast.dir/backtest.cc.o.d"
  "/root/repo/src/forecast/deepar.cc" "src/forecast/CMakeFiles/rpas_forecast.dir/deepar.cc.o" "gcc" "src/forecast/CMakeFiles/rpas_forecast.dir/deepar.cc.o.d"
  "/root/repo/src/forecast/forecaster.cc" "src/forecast/CMakeFiles/rpas_forecast.dir/forecaster.cc.o" "gcc" "src/forecast/CMakeFiles/rpas_forecast.dir/forecaster.cc.o.d"
  "/root/repo/src/forecast/holt_winters.cc" "src/forecast/CMakeFiles/rpas_forecast.dir/holt_winters.cc.o" "gcc" "src/forecast/CMakeFiles/rpas_forecast.dir/holt_winters.cc.o.d"
  "/root/repo/src/forecast/mlp.cc" "src/forecast/CMakeFiles/rpas_forecast.dir/mlp.cc.o" "gcc" "src/forecast/CMakeFiles/rpas_forecast.dir/mlp.cc.o.d"
  "/root/repo/src/forecast/qb5000.cc" "src/forecast/CMakeFiles/rpas_forecast.dir/qb5000.cc.o" "gcc" "src/forecast/CMakeFiles/rpas_forecast.dir/qb5000.cc.o.d"
  "/root/repo/src/forecast/recalibrated.cc" "src/forecast/CMakeFiles/rpas_forecast.dir/recalibrated.cc.o" "gcc" "src/forecast/CMakeFiles/rpas_forecast.dir/recalibrated.cc.o.d"
  "/root/repo/src/forecast/seasonal_naive.cc" "src/forecast/CMakeFiles/rpas_forecast.dir/seasonal_naive.cc.o" "gcc" "src/forecast/CMakeFiles/rpas_forecast.dir/seasonal_naive.cc.o.d"
  "/root/repo/src/forecast/tft.cc" "src/forecast/CMakeFiles/rpas_forecast.dir/tft.cc.o" "gcc" "src/forecast/CMakeFiles/rpas_forecast.dir/tft.cc.o.d"
  "/root/repo/src/forecast/time_features.cc" "src/forecast/CMakeFiles/rpas_forecast.dir/time_features.cc.o" "gcc" "src/forecast/CMakeFiles/rpas_forecast.dir/time_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rpas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/rpas_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rpas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rpas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/rpas_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/rpas_autodiff.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
