file(REMOVE_RECURSE
  "librpas_core.a"
)
