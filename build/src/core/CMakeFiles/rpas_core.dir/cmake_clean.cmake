file(REMOVE_RECURSE
  "CMakeFiles/rpas_core.dir/evaluator.cc.o"
  "CMakeFiles/rpas_core.dir/evaluator.cc.o.d"
  "CMakeFiles/rpas_core.dir/manager.cc.o"
  "CMakeFiles/rpas_core.dir/manager.cc.o.d"
  "CMakeFiles/rpas_core.dir/multi_resource.cc.o"
  "CMakeFiles/rpas_core.dir/multi_resource.cc.o.d"
  "CMakeFiles/rpas_core.dir/online_loop.cc.o"
  "CMakeFiles/rpas_core.dir/online_loop.cc.o.d"
  "CMakeFiles/rpas_core.dir/strategies.cc.o"
  "CMakeFiles/rpas_core.dir/strategies.cc.o.d"
  "CMakeFiles/rpas_core.dir/uncertainty.cc.o"
  "CMakeFiles/rpas_core.dir/uncertainty.cc.o.d"
  "librpas_core.a"
  "librpas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
