# Empty compiler generated dependencies file for rpas_core.
# This may be replaced when dependencies are built.
