file(REMOVE_RECURSE
  "CMakeFiles/rpas_trace.dir/generator.cc.o"
  "CMakeFiles/rpas_trace.dir/generator.cc.o.d"
  "librpas_trace.a"
  "librpas_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpas_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
