# Empty dependencies file for rpas_trace.
# This may be replaced when dependencies are built.
