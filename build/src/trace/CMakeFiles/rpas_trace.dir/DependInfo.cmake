
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/generator.cc" "src/trace/CMakeFiles/rpas_trace.dir/generator.cc.o" "gcc" "src/trace/CMakeFiles/rpas_trace.dir/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rpas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/rpas_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rpas_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
