file(REMOVE_RECURSE
  "librpas_trace.a"
)
