file(REMOVE_RECURSE
  "CMakeFiles/rpas_autodiff.dir/tape.cc.o"
  "CMakeFiles/rpas_autodiff.dir/tape.cc.o.d"
  "librpas_autodiff.a"
  "librpas_autodiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpas_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
