file(REMOVE_RECURSE
  "librpas_autodiff.a"
)
