# Empty compiler generated dependencies file for rpas_autodiff.
# This may be replaced when dependencies are built.
