# Empty dependencies file for rpas_common.
# This may be replaced when dependencies are built.
