file(REMOVE_RECURSE
  "CMakeFiles/rpas_common.dir/csv.cc.o"
  "CMakeFiles/rpas_common.dir/csv.cc.o.d"
  "CMakeFiles/rpas_common.dir/logging.cc.o"
  "CMakeFiles/rpas_common.dir/logging.cc.o.d"
  "CMakeFiles/rpas_common.dir/rng.cc.o"
  "CMakeFiles/rpas_common.dir/rng.cc.o.d"
  "CMakeFiles/rpas_common.dir/status.cc.o"
  "CMakeFiles/rpas_common.dir/status.cc.o.d"
  "CMakeFiles/rpas_common.dir/strings.cc.o"
  "CMakeFiles/rpas_common.dir/strings.cc.o.d"
  "librpas_common.a"
  "librpas_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpas_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
