# Empty compiler generated dependencies file for rpas_common.
# This may be replaced when dependencies are built.
