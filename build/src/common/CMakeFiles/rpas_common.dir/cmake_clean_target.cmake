file(REMOVE_RECURSE
  "librpas_common.a"
)
