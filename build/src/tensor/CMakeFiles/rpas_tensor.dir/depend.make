# Empty dependencies file for rpas_tensor.
# This may be replaced when dependencies are built.
