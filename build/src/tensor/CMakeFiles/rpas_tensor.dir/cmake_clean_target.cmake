file(REMOVE_RECURSE
  "librpas_tensor.a"
)
