file(REMOVE_RECURSE
  "CMakeFiles/rpas_tensor.dir/matrix.cc.o"
  "CMakeFiles/rpas_tensor.dir/matrix.cc.o.d"
  "CMakeFiles/rpas_tensor.dir/ops.cc.o"
  "CMakeFiles/rpas_tensor.dir/ops.cc.o.d"
  "librpas_tensor.a"
  "librpas_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpas_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
