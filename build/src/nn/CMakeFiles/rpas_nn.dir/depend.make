# Empty dependencies file for rpas_nn.
# This may be replaced when dependencies are built.
