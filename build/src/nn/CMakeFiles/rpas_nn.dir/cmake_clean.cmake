file(REMOVE_RECURSE
  "CMakeFiles/rpas_nn.dir/checkpoint.cc.o"
  "CMakeFiles/rpas_nn.dir/checkpoint.cc.o.d"
  "CMakeFiles/rpas_nn.dir/init.cc.o"
  "CMakeFiles/rpas_nn.dir/init.cc.o.d"
  "CMakeFiles/rpas_nn.dir/layers.cc.o"
  "CMakeFiles/rpas_nn.dir/layers.cc.o.d"
  "CMakeFiles/rpas_nn.dir/losses.cc.o"
  "CMakeFiles/rpas_nn.dir/losses.cc.o.d"
  "CMakeFiles/rpas_nn.dir/optimizer.cc.o"
  "CMakeFiles/rpas_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/rpas_nn.dir/trainer.cc.o"
  "CMakeFiles/rpas_nn.dir/trainer.cc.o.d"
  "librpas_nn.a"
  "librpas_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpas_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
