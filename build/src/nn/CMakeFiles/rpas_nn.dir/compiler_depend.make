# Empty compiler generated dependencies file for rpas_nn.
# This may be replaced when dependencies are built.
