file(REMOVE_RECURSE
  "librpas_nn.a"
)
