
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/checkpoint.cc" "src/nn/CMakeFiles/rpas_nn.dir/checkpoint.cc.o" "gcc" "src/nn/CMakeFiles/rpas_nn.dir/checkpoint.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/rpas_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/rpas_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/rpas_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/rpas_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/losses.cc" "src/nn/CMakeFiles/rpas_nn.dir/losses.cc.o" "gcc" "src/nn/CMakeFiles/rpas_nn.dir/losses.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/rpas_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/rpas_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/nn/CMakeFiles/rpas_nn.dir/trainer.cc.o" "gcc" "src/nn/CMakeFiles/rpas_nn.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autodiff/CMakeFiles/rpas_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rpas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rpas_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
