
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/autoscaling.cc" "src/solver/CMakeFiles/rpas_solver.dir/autoscaling.cc.o" "gcc" "src/solver/CMakeFiles/rpas_solver.dir/autoscaling.cc.o.d"
  "/root/repo/src/solver/simplex.cc" "src/solver/CMakeFiles/rpas_solver.dir/simplex.cc.o" "gcc" "src/solver/CMakeFiles/rpas_solver.dir/simplex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rpas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
