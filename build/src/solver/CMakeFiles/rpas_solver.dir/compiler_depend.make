# Empty compiler generated dependencies file for rpas_solver.
# This may be replaced when dependencies are built.
