file(REMOVE_RECURSE
  "librpas_solver.a"
)
