file(REMOVE_RECURSE
  "CMakeFiles/rpas_solver.dir/autoscaling.cc.o"
  "CMakeFiles/rpas_solver.dir/autoscaling.cc.o.d"
  "CMakeFiles/rpas_solver.dir/simplex.cc.o"
  "CMakeFiles/rpas_solver.dir/simplex.cc.o.d"
  "librpas_solver.a"
  "librpas_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpas_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
