# Empty dependencies file for rpas_simdb.
# This may be replaced when dependencies are built.
