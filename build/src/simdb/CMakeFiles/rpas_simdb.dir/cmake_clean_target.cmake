file(REMOVE_RECURSE
  "librpas_simdb.a"
)
