file(REMOVE_RECURSE
  "CMakeFiles/rpas_simdb.dir/cluster.cc.o"
  "CMakeFiles/rpas_simdb.dir/cluster.cc.o.d"
  "CMakeFiles/rpas_simdb.dir/replay.cc.o"
  "CMakeFiles/rpas_simdb.dir/replay.cc.o.d"
  "CMakeFiles/rpas_simdb.dir/warmup.cc.o"
  "CMakeFiles/rpas_simdb.dir/warmup.cc.o.d"
  "librpas_simdb.a"
  "librpas_simdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpas_simdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
