file(REMOVE_RECURSE
  "librpas_ts.a"
)
