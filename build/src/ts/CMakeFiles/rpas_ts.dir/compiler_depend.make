# Empty compiler generated dependencies file for rpas_ts.
# This may be replaced when dependencies are built.
