
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/metrics.cc" "src/ts/CMakeFiles/rpas_ts.dir/metrics.cc.o" "gcc" "src/ts/CMakeFiles/rpas_ts.dir/metrics.cc.o.d"
  "/root/repo/src/ts/quantile_forecast.cc" "src/ts/CMakeFiles/rpas_ts.dir/quantile_forecast.cc.o" "gcc" "src/ts/CMakeFiles/rpas_ts.dir/quantile_forecast.cc.o.d"
  "/root/repo/src/ts/scaler.cc" "src/ts/CMakeFiles/rpas_ts.dir/scaler.cc.o" "gcc" "src/ts/CMakeFiles/rpas_ts.dir/scaler.cc.o.d"
  "/root/repo/src/ts/time_series.cc" "src/ts/CMakeFiles/rpas_ts.dir/time_series.cc.o" "gcc" "src/ts/CMakeFiles/rpas_ts.dir/time_series.cc.o.d"
  "/root/repo/src/ts/window.cc" "src/ts/CMakeFiles/rpas_ts.dir/window.cc.o" "gcc" "src/ts/CMakeFiles/rpas_ts.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rpas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rpas_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
