file(REMOVE_RECURSE
  "CMakeFiles/rpas_ts.dir/metrics.cc.o"
  "CMakeFiles/rpas_ts.dir/metrics.cc.o.d"
  "CMakeFiles/rpas_ts.dir/quantile_forecast.cc.o"
  "CMakeFiles/rpas_ts.dir/quantile_forecast.cc.o.d"
  "CMakeFiles/rpas_ts.dir/scaler.cc.o"
  "CMakeFiles/rpas_ts.dir/scaler.cc.o.d"
  "CMakeFiles/rpas_ts.dir/time_series.cc.o"
  "CMakeFiles/rpas_ts.dir/time_series.cc.o.d"
  "CMakeFiles/rpas_ts.dir/window.cc.o"
  "CMakeFiles/rpas_ts.dir/window.cc.o.d"
  "librpas_ts.a"
  "librpas_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpas_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
