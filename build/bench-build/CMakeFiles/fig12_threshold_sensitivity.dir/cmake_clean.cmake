file(REMOVE_RECURSE
  "../bench/fig12_threshold_sensitivity"
  "../bench/fig12_threshold_sensitivity.pdb"
  "CMakeFiles/fig12_threshold_sensitivity.dir/bench_common.cc.o"
  "CMakeFiles/fig12_threshold_sensitivity.dir/bench_common.cc.o.d"
  "CMakeFiles/fig12_threshold_sensitivity.dir/fig12_threshold_sensitivity.cc.o"
  "CMakeFiles/fig12_threshold_sensitivity.dir/fig12_threshold_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_threshold_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
