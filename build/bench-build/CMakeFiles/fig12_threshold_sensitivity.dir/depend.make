# Empty dependencies file for fig12_threshold_sensitivity.
# This may be replaced when dependencies are built.
