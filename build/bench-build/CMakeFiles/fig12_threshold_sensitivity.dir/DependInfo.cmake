
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_common.cc" "bench-build/CMakeFiles/fig12_threshold_sensitivity.dir/bench_common.cc.o" "gcc" "bench-build/CMakeFiles/fig12_threshold_sensitivity.dir/bench_common.cc.o.d"
  "/root/repo/bench/fig12_threshold_sensitivity.cc" "bench-build/CMakeFiles/fig12_threshold_sensitivity.dir/fig12_threshold_sensitivity.cc.o" "gcc" "bench-build/CMakeFiles/fig12_threshold_sensitivity.dir/fig12_threshold_sensitivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rpas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simdb/CMakeFiles/rpas_simdb.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rpas_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/rpas_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/rpas_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rpas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/rpas_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/rpas_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/rpas_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rpas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rpas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
