# Empty compiler generated dependencies file for fig8_horizons.
# This may be replaced when dependencies are built.
