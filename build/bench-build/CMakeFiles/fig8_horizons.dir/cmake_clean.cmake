file(REMOVE_RECURSE
  "../bench/fig8_horizons"
  "../bench/fig8_horizons.pdb"
  "CMakeFiles/fig8_horizons.dir/bench_common.cc.o"
  "CMakeFiles/fig8_horizons.dir/bench_common.cc.o.d"
  "CMakeFiles/fig8_horizons.dir/fig8_horizons.cc.o"
  "CMakeFiles/fig8_horizons.dir/fig8_horizons.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_horizons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
