# Empty compiler generated dependencies file for fig7_prediction_intervals.
# This may be replaced when dependencies are built.
