file(REMOVE_RECURSE
  "../bench/fig7_prediction_intervals"
  "../bench/fig7_prediction_intervals.pdb"
  "CMakeFiles/fig7_prediction_intervals.dir/bench_common.cc.o"
  "CMakeFiles/fig7_prediction_intervals.dir/bench_common.cc.o.d"
  "CMakeFiles/fig7_prediction_intervals.dir/fig7_prediction_intervals.cc.o"
  "CMakeFiles/fig7_prediction_intervals.dir/fig7_prediction_intervals.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_prediction_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
