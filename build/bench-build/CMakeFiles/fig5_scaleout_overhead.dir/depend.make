# Empty dependencies file for fig5_scaleout_overhead.
# This may be replaced when dependencies are built.
