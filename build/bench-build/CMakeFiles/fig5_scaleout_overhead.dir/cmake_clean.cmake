file(REMOVE_RECURSE
  "../bench/fig5_scaleout_overhead"
  "../bench/fig5_scaleout_overhead.pdb"
  "CMakeFiles/fig5_scaleout_overhead.dir/bench_common.cc.o"
  "CMakeFiles/fig5_scaleout_overhead.dir/bench_common.cc.o.d"
  "CMakeFiles/fig5_scaleout_overhead.dir/fig5_scaleout_overhead.cc.o"
  "CMakeFiles/fig5_scaleout_overhead.dir/fig5_scaleout_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scaleout_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
