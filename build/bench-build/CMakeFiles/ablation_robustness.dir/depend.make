# Empty dependencies file for ablation_robustness.
# This may be replaced when dependencies are built.
