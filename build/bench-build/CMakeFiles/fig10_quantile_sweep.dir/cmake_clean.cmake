file(REMOVE_RECURSE
  "../bench/fig10_quantile_sweep"
  "../bench/fig10_quantile_sweep.pdb"
  "CMakeFiles/fig10_quantile_sweep.dir/bench_common.cc.o"
  "CMakeFiles/fig10_quantile_sweep.dir/bench_common.cc.o.d"
  "CMakeFiles/fig10_quantile_sweep.dir/fig10_quantile_sweep.cc.o"
  "CMakeFiles/fig10_quantile_sweep.dir/fig10_quantile_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_quantile_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
