# Empty compiler generated dependencies file for fig10_quantile_sweep.
# This may be replaced when dependencies are built.
