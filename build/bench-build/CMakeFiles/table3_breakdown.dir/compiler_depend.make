# Empty compiler generated dependencies file for table3_breakdown.
# This may be replaced when dependencies are built.
