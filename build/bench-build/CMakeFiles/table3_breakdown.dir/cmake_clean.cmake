file(REMOVE_RECURSE
  "../bench/table3_breakdown"
  "../bench/table3_breakdown.pdb"
  "CMakeFiles/table3_breakdown.dir/bench_common.cc.o"
  "CMakeFiles/table3_breakdown.dir/bench_common.cc.o.d"
  "CMakeFiles/table3_breakdown.dir/table3_breakdown.cc.o"
  "CMakeFiles/table3_breakdown.dir/table3_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
