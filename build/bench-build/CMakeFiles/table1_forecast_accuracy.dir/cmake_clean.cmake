file(REMOVE_RECURSE
  "../bench/table1_forecast_accuracy"
  "../bench/table1_forecast_accuracy.pdb"
  "CMakeFiles/table1_forecast_accuracy.dir/bench_common.cc.o"
  "CMakeFiles/table1_forecast_accuracy.dir/bench_common.cc.o.d"
  "CMakeFiles/table1_forecast_accuracy.dir/table1_forecast_accuracy.cc.o"
  "CMakeFiles/table1_forecast_accuracy.dir/table1_forecast_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_forecast_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
