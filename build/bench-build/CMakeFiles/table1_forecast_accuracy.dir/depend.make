# Empty dependencies file for table1_forecast_accuracy.
# This may be replaced when dependencies are built.
