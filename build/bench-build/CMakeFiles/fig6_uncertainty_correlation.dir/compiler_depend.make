# Empty compiler generated dependencies file for fig6_uncertainty_correlation.
# This may be replaced when dependencies are built.
