file(REMOVE_RECURSE
  "../bench/fig6_uncertainty_correlation"
  "../bench/fig6_uncertainty_correlation.pdb"
  "CMakeFiles/fig6_uncertainty_correlation.dir/bench_common.cc.o"
  "CMakeFiles/fig6_uncertainty_correlation.dir/bench_common.cc.o.d"
  "CMakeFiles/fig6_uncertainty_correlation.dir/fig6_uncertainty_correlation.cc.o"
  "CMakeFiles/fig6_uncertainty_correlation.dir/fig6_uncertainty_correlation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_uncertainty_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
