# Empty dependencies file for fig9_underprovisioning.
# This may be replaced when dependencies are built.
