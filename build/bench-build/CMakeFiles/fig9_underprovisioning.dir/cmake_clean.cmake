file(REMOVE_RECURSE
  "../bench/fig9_underprovisioning"
  "../bench/fig9_underprovisioning.pdb"
  "CMakeFiles/fig9_underprovisioning.dir/bench_common.cc.o"
  "CMakeFiles/fig9_underprovisioning.dir/bench_common.cc.o.d"
  "CMakeFiles/fig9_underprovisioning.dir/fig9_underprovisioning.cc.o"
  "CMakeFiles/fig9_underprovisioning.dir/fig9_underprovisioning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_underprovisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
