# Empty dependencies file for table2_overhead.
# This may be replaced when dependencies are built.
