file(REMOVE_RECURSE
  "../bench/table2_overhead"
  "../bench/table2_overhead.pdb"
  "CMakeFiles/table2_overhead.dir/bench_common.cc.o"
  "CMakeFiles/table2_overhead.dir/bench_common.cc.o.d"
  "CMakeFiles/table2_overhead.dir/table2_overhead.cc.o"
  "CMakeFiles/table2_overhead.dir/table2_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
