file(REMOVE_RECURSE
  "../bench/fig11_adaptive_heatmap"
  "../bench/fig11_adaptive_heatmap.pdb"
  "CMakeFiles/fig11_adaptive_heatmap.dir/bench_common.cc.o"
  "CMakeFiles/fig11_adaptive_heatmap.dir/bench_common.cc.o.d"
  "CMakeFiles/fig11_adaptive_heatmap.dir/fig11_adaptive_heatmap.cc.o"
  "CMakeFiles/fig11_adaptive_heatmap.dir/fig11_adaptive_heatmap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_adaptive_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
