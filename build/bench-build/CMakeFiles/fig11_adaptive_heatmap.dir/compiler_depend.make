# Empty compiler generated dependencies file for fig11_adaptive_heatmap.
# This may be replaced when dependencies are built.
