# Empty dependencies file for rpas_cli.
# This may be replaced when dependencies are built.
