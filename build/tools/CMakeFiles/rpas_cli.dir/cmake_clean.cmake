file(REMOVE_RECURSE
  "CMakeFiles/rpas_cli.dir/rpas_cli.cc.o"
  "CMakeFiles/rpas_cli.dir/rpas_cli.cc.o.d"
  "rpas"
  "rpas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpas_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
