file(REMOVE_RECURSE
  "CMakeFiles/forecaster_playground.dir/forecaster_playground.cpp.o"
  "CMakeFiles/forecaster_playground.dir/forecaster_playground.cpp.o.d"
  "forecaster_playground"
  "forecaster_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecaster_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
