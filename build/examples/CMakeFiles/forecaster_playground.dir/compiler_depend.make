# Empty compiler generated dependencies file for forecaster_playground.
# This may be replaced when dependencies are built.
