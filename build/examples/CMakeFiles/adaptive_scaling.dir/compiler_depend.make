# Empty compiler generated dependencies file for adaptive_scaling.
# This may be replaced when dependencies are built.
