file(REMOVE_RECURSE
  "CMakeFiles/adaptive_scaling.dir/adaptive_scaling.cpp.o"
  "CMakeFiles/adaptive_scaling.dir/adaptive_scaling.cpp.o.d"
  "adaptive_scaling"
  "adaptive_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
