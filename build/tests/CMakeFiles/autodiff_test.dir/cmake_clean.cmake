file(REMOVE_RECURSE
  "CMakeFiles/autodiff_test.dir/autodiff_test.cc.o"
  "CMakeFiles/autodiff_test.dir/autodiff_test.cc.o.d"
  "autodiff_test"
  "autodiff_test.pdb"
  "autodiff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodiff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
