# Empty dependencies file for autodiff_test.
# This may be replaced when dependencies are built.
