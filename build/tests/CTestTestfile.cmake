# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/autodiff_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/ts_test[1]_include.cmake")
include("/root/repo/build/tests/forecast_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/simdb_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
