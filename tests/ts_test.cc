#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ts/metrics.h"
#include "ts/quantile_forecast.h"
#include "ts/scaler.h"
#include "ts/time_series.h"
#include "ts/window.h"

namespace rpas::ts {
namespace {

TimeSeries MakeSeries(std::vector<double> values) {
  TimeSeries s;
  s.values = std::move(values);
  s.step_minutes = 10.0;
  s.name = "test";
  return s;
}

// -------------------------------------------------------------- TimeSeries ---

TEST(TimeSeriesTest, BasicStats) {
  TimeSeries s = MakeSeries({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_NEAR(s.Stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(TimeSeriesTest, Slice) {
  TimeSeries s = MakeSeries({0, 1, 2, 3, 4});
  TimeSeries sub = s.Slice(1, 4);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub[0], 1.0);
  EXPECT_DOUBLE_EQ(sub[2], 3.0);
  EXPECT_DOUBLE_EQ(sub.step_minutes, 10.0);
}

TEST(TimeSeriesTest, SplitTail) {
  TimeSeries s = MakeSeries({0, 1, 2, 3, 4});
  auto [head, tail] = s.SplitTail(2);
  EXPECT_EQ(head.size(), 3u);
  EXPECT_EQ(tail.size(), 2u);
  EXPECT_DOUBLE_EQ(tail[0], 3.0);
}

TEST(TimeSeriesTest, AggregateBlocks) {
  TimeSeries s = MakeSeries({1, 3, 5, 7, 9});  // block 2: (2, 6); drops 9
  TimeSeries agg = AggregateBlocks(s, 2);
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_DOUBLE_EQ(agg[0], 2.0);
  EXPECT_DOUBLE_EQ(agg[1], 6.0);
  EXPECT_DOUBLE_EQ(agg.step_minutes, 20.0);
}

TEST(TimeSeriesTest, CsvRoundTrip) {
  const std::string path = "/tmp/rpas_ts_test.csv";
  TimeSeries s = MakeSeries({1.5, 2.5, 3.5});
  ASSERT_TRUE(SaveTimeSeriesCsv(path, s).ok());
  auto loaded = LoadTimeSeriesCsv(path, "value", 10.0);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_DOUBLE_EQ((*loaded)[1], 2.5);
  std::remove(path.c_str());
}

// ------------------------------------------------------------------ Scaler ---

TEST(ScalerTest, IdentityDefault) {
  AffineScaler s;
  EXPECT_DOUBLE_EQ(s.Transform(5.0), 5.0);
  EXPECT_DOUBLE_EQ(s.Inverse(5.0), 5.0);
}

TEST(ScalerTest, StandardScaler) {
  AffineScaler s = AffineScaler::FitStandard({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(s.shift(), 4.0);
  EXPECT_NEAR(s.scale(), 2.0, 1e-12);
  EXPECT_NEAR(s.Transform(6.0), 1.0, 1e-12);
  EXPECT_NEAR(s.Inverse(s.Transform(3.7)), 3.7, 1e-12);
}

TEST(ScalerTest, MeanAbsScaler) {
  AffineScaler s = AffineScaler::FitMeanAbs({-2.0, 4.0});
  EXPECT_DOUBLE_EQ(s.shift(), 0.0);
  EXPECT_DOUBLE_EQ(s.scale(), 3.0);
}

TEST(ScalerTest, MinMaxScaler) {
  AffineScaler s = AffineScaler::FitMinMax({10.0, 20.0, 15.0});
  EXPECT_DOUBLE_EQ(s.Transform(10.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Transform(20.0), 1.0);
}

TEST(ScalerTest, ConstantSeriesDoesNotDivideByZero) {
  AffineScaler s = AffineScaler::FitStandard({3.0, 3.0, 3.0});
  EXPECT_GT(s.scale(), 0.0);
  EXPECT_TRUE(std::isfinite(s.Transform(3.0)));
}

TEST(ScalerTest, VectorTransformRoundTrip) {
  AffineScaler s = AffineScaler::FitStandard({1.0, 5.0, 9.0});
  std::vector<double> xs = {2.0, 4.0, 8.0};
  auto round = s.Inverse(s.Transform(xs));
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(round[i], xs[i], 1e-12);
  }
}

// ---------------------------------------------------------- WindowDataset ---

TEST(WindowTest, EnumeratesAllWindows) {
  TimeSeries s = MakeSeries({0, 1, 2, 3, 4, 5});
  WindowDataset ds(s, /*context=*/2, /*horizon=*/1);
  // begins: 0,1,2,3 -> 4 windows.
  ASSERT_EQ(ds.size(), 4u);
  EXPECT_EQ(ds[0].context, (std::vector<double>{0, 1}));
  EXPECT_EQ(ds[0].target, (std::vector<double>{2}));
  EXPECT_EQ(ds[3].context, (std::vector<double>{3, 4}));
  EXPECT_EQ(ds[3].target, (std::vector<double>{5}));
}

TEST(WindowTest, StrideSkipsWindows) {
  TimeSeries s = MakeSeries({0, 1, 2, 3, 4, 5, 6, 7});
  WindowDataset ds(s, 2, 2, /*stride=*/2);
  ASSERT_EQ(ds.size(), 3u);  // begins 0, 2, 4
  EXPECT_EQ(ds[1].begin, 2u);
}

TEST(WindowTest, TooShortSeriesIsEmpty) {
  TimeSeries s = MakeSeries({1, 2});
  WindowDataset ds(s, 2, 2);
  EXPECT_TRUE(ds.empty());
}

TEST(WindowTest, MatricesMatchWindows) {
  TimeSeries s = MakeSeries({0, 1, 2, 3, 4});
  WindowDataset ds(s, 2, 1);
  auto ctx = ds.ContextMatrix();
  auto tgt = ds.TargetMatrix();
  EXPECT_EQ(ctx.rows(), ds.size());
  EXPECT_EQ(ctx.cols(), 2u);
  EXPECT_EQ(tgt.cols(), 1u);
  EXPECT_DOUBLE_EQ(ctx(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(tgt(1, 0), 3.0);
}

TEST(WindowTest, SampleIndicesUniqueAndBounded) {
  TimeSeries s = MakeSeries(std::vector<double>(50, 1.0));
  WindowDataset ds(s, 4, 2);
  Rng rng(3);
  auto indices = ds.SampleIndices(10, &rng);
  ASSERT_EQ(indices.size(), 10u);
  std::sort(indices.begin(), indices.end());
  EXPECT_EQ(std::unique(indices.begin(), indices.end()), indices.end());
  EXPECT_LT(indices.back(), ds.size());
}

TEST(WindowTest, SampleMoreThanAvailableReturnsAll) {
  TimeSeries s = MakeSeries({0, 1, 2, 3, 4});
  WindowDataset ds(s, 2, 1);
  Rng rng(4);
  auto indices = ds.SampleIndices(100, &rng);
  EXPECT_EQ(indices.size(), ds.size());
}

TEST(WindowTest, BatchBuildsAlignedMatrices) {
  TimeSeries s = MakeSeries({0, 1, 2, 3, 4, 5});
  WindowDataset ds(s, 2, 1);
  tensor::Matrix ctx;
  tensor::Matrix tgt;
  ds.Batch({0, 2}, &ctx, &tgt);
  EXPECT_EQ(ctx.rows(), 2u);
  EXPECT_DOUBLE_EQ(ctx(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(tgt(1, 0), 4.0);
}

// ------------------------------------------------------- QuantileForecast ---

QuantileForecast MakeForecast() {
  // Two steps, levels 0.1/0.5/0.9.
  return QuantileForecast({0.1, 0.5, 0.9},
                          {{1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}});
}

TEST(QuantileForecastTest, ExactLevelLookup) {
  QuantileForecast fc = MakeForecast();
  EXPECT_DOUBLE_EQ(fc.Value(0, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(fc.Value(1, 0.9), 30.0);
  EXPECT_EQ(fc.Horizon(), 2u);
}

TEST(QuantileForecastTest, InterpolatesBetweenLevels) {
  QuantileForecast fc = MakeForecast();
  EXPECT_DOUBLE_EQ(fc.Value(0, 0.7), 2.5);  // halfway 0.5 -> 0.9
  EXPECT_DOUBLE_EQ(fc.Value(1, 0.3), 15.0);
}

TEST(QuantileForecastTest, ClampsOutsideStoredLevels) {
  QuantileForecast fc = MakeForecast();
  EXPECT_DOUBLE_EQ(fc.Value(0, 0.01), 1.0);
  EXPECT_DOUBLE_EQ(fc.Value(0, 0.99), 3.0);
}

TEST(QuantileForecastTest, MedianAndTrajectory) {
  QuantileForecast fc = MakeForecast();
  EXPECT_EQ(fc.Median(), (std::vector<double>{2.0, 20.0}));
  EXPECT_EQ(fc.Trajectory(0.9), (std::vector<double>{3.0, 30.0}));
}

TEST(QuantileForecastTest, LevelIndex) {
  QuantileForecast fc = MakeForecast();
  EXPECT_EQ(fc.LevelIndex(0.5), 1);
  EXPECT_EQ(fc.LevelIndex(0.42), -1);
}

TEST(QuantileForecastTest, SortQuantilesFixesCrossing) {
  QuantileForecast fc({0.1, 0.5, 0.9}, {{3.0, 2.0, 4.0}});
  fc.SortQuantilesPerStep();
  EXPECT_DOUBLE_EQ(fc.ValueAtIndex(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(fc.ValueAtIndex(0, 1), 3.0);  // raised to monotone
  EXPECT_DOUBLE_EQ(fc.ValueAtIndex(0, 2), 4.0);
}

// ----------------------------------------------------------------- Metrics ---

TEST(MetricsTest, PinballLossKnownValues) {
  // Underestimation (y > yhat): loss = tau * (y - yhat).
  EXPECT_DOUBLE_EQ(PinballLoss(0.9, 10.0, 8.0), 0.9 * 2.0);
  // Overestimation (y < yhat): loss = (1 - tau) * (yhat - y).
  EXPECT_DOUBLE_EQ(PinballLoss(0.9, 8.0, 10.0), 0.1 * 2.0);
  EXPECT_DOUBLE_EQ(PinballLoss(0.5, 4.0, 4.0), 0.0);
}

TEST(MetricsTest, PinballLossNonNegative) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double tau = rng.Uniform(0.05, 0.95);
    EXPECT_GE(PinballLoss(tau, rng.Normal(), rng.Normal()), 0.0);
  }
}

TEST(MetricsTest, PerfectForecastScoresZero) {
  QuantileForecast fc({0.5}, {{5.0}, {6.0}});
  auto report = EvaluateForecasts({fc}, {{5.0, 6.0}}, {0.5});
  EXPECT_DOUBLE_EQ(report.mse, 0.0);
  EXPECT_DOUBLE_EQ(report.mae, 0.0);
  EXPECT_DOUBLE_EQ(report.wql.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(report.mean_wql, 0.0);
}

TEST(MetricsTest, CoverageCountsExceedances) {
  // Forecast at 0.9 = 10; actuals 5 (covered) and 15 (not covered).
  QuantileForecast fc({0.5, 0.9}, {{8.0, 10.0}, {8.0, 10.0}});
  auto report = EvaluateForecasts({fc}, {{5.0, 15.0}}, {0.9});
  EXPECT_DOUBLE_EQ(report.coverage.at(0.9), 0.5);
}

TEST(MetricsTest, WqlMatchesHandComputation) {
  // One step, actual 10, forecast at 0.9 = 8 -> pinball = 0.9*2 = 1.8.
  // wQL = 2 * 1.8 / 10 = 0.36.
  QuantileForecast fc({0.5, 0.9}, {{9.0, 8.0}});
  auto report = EvaluateForecasts({fc}, {{10.0}}, {0.9});
  EXPECT_NEAR(report.wql.at(0.9), 0.36, 1e-12);
}

TEST(MetricsTest, MseUsesMedianTrajectory) {
  QuantileForecast fc({0.5, 0.9}, {{4.0, 100.0}});
  auto report = EvaluateForecasts({fc}, {{6.0}}, {0.5});
  EXPECT_DOUBLE_EQ(report.mse, 4.0);
  EXPECT_DOUBLE_EQ(report.mae, 2.0);
}

TEST(MetricsTest, PerStepLosses) {
  QuantileForecast fc({0.5}, {{5.0}, {7.0}});
  auto ql = PerStepQuantileLoss(fc, {5.0, 9.0});
  ASSERT_EQ(ql.size(), 2u);
  EXPECT_DOUBLE_EQ(ql[0], 0.0);
  EXPECT_DOUBLE_EQ(ql[1], 0.5 * 2.0);
  auto se = PerStepSquaredError(fc, {5.0, 9.0});
  EXPECT_DOUBLE_EQ(se[0], 0.0);
  EXPECT_DOUBLE_EQ(se[1], 4.0);
}

TEST(MetricsTest, PearsonCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

// Property sweep: a forecast that always over-predicts has coverage 1 at
// every level; one that always under-predicts has coverage 0.
class CoverageSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(CoverageSweepTest, ExtremeForecastsHaveExtremeCoverage) {
  const double tau = GetParam();
  QuantileForecast over({tau}, {{100.0}, {100.0}});
  QuantileForecast under({tau}, {{-100.0}, {-100.0}});
  auto report_over = EvaluateForecasts({over}, {{1.0, 2.0}}, {tau});
  auto report_under = EvaluateForecasts({under}, {{1.0, 2.0}}, {tau});
  EXPECT_DOUBLE_EQ(report_over.coverage.at(tau), 1.0);
  EXPECT_DOUBLE_EQ(report_under.coverage.at(tau), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Levels, CoverageSweepTest,
                         ::testing::Values(0.1, 0.5, 0.9));

}  // namespace
}  // namespace rpas::ts
