#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/csv.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace rpas {
namespace {

// ---------------------------------------------------------------- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    RPAS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    RPAS_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Result ---

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) {
      return Status::Internal("boom");
    }
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    RPAS_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(outer(false).value(), 10);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kInternal);
}

// --------------------------------------------------------------- Strings ---

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = StrSplit("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = StrSplit("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim("\t\ny\r "), "y");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringsTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" -2e3 ").value(), -2000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("0").value(), 0.0);
}

TEST(StringsTest, ParseDoubleInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.2x").ok());
}

TEST(StringsTest, ParseInt64Valid) {
  EXPECT_EQ(ParseInt64("123").value(), 123);
  EXPECT_EQ(ParseInt64(" -45 ").value(), -45);
}

TEST(StringsTest, ParseInt64Invalid) {
  EXPECT_FALSE(ParseInt64("12.5").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringsTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
  EXPECT_TRUE(StartsWith("x", ""));
}

// ------------------------------------------------------------------- RNG ---

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.Normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(10), 10u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(19);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.UniformInt(8)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);  // expected 1000 each
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(2.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GammaMeanAndVariance) {
  Rng rng(29);
  const double shape = 3.0;
  const double scale = 2.0;
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gamma(shape, scale);
    EXPECT_GT(g, 0.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, shape * scale, 0.1);         // 6.0
  EXPECT_NEAR(var, shape * scale * scale, 0.5);  // 12.0
}

TEST(RngTest, GammaSmallShape) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gamma(0.5, 1.0);
    EXPECT_GE(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(RngTest, StudentTSymmetricHeavyTails) {
  Rng rng(37);
  const int n = 100000;
  double sum = 0.0;
  int beyond3 = 0;
  for (int i = 0; i < n; ++i) {
    const double t = rng.StudentT(4.0);
    sum += t;
    if (std::fabs(t) > 3.0) {
      ++beyond3;
    }
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  // P(|t_4| > 3) ~ 0.04; Gaussian would be ~0.0027.
  EXPECT_GT(static_cast<double>(beyond3) / n, 0.01);
}

TEST(RngTest, ParetoMinimumRespected) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, PoissonMean) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Poisson(3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(47);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int k = rng.Poisson(100.0);
    EXPECT_GE(k, 0);
    sum += k;
  }
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, ForkIsIndependentOfPosition) {
  Rng a(99);
  Rng b(99);
  b.NextUint64();  // advance b
  Rng fa = a.Fork(5);
  Rng fb = b.Fork(5);
  EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
}

TEST(RngTest, ForkStreamsDiffer) {
  Rng a(99);
  Rng f1 = a.Fork(1);
  Rng f2 = a.Fork(2);
  EXPECT_NE(f1.NextUint64(), f2.NextUint64());
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(53);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// ------------------------------------------------------------------- CSV ---

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("rpas_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_str() const { return path_.string(); }
  std::filesystem::path path_;
};

TEST_F(CsvTest, RoundTrip) {
  CsvTable table;
  table.header = {"step", "value"};
  table.rows = {{"0", "1.5"}, {"1", "2.25"}};
  ASSERT_TRUE(WriteCsv(path_str(), table).ok());
  auto loaded = ReadCsv(path_str());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->header, table.header);
  EXPECT_EQ(loaded->rows, table.rows);
}

TEST_F(CsvTest, NumericColumn) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{"1", "10.5"}, {"2", "20.5"}};
  ASSERT_TRUE(WriteCsv(path_str(), table).ok());
  auto loaded = ReadCsv(path_str());
  ASSERT_TRUE(loaded.ok());
  auto col = CsvNumericColumn(*loaded, "b");
  ASSERT_TRUE(col.ok());
  ASSERT_EQ(col->size(), 2u);
  EXPECT_DOUBLE_EQ((*col)[0], 10.5);
  EXPECT_DOUBLE_EQ((*col)[1], 20.5);
}

TEST_F(CsvTest, MissingColumnIsNotFound) {
  CsvTable table;
  table.header = {"a"};
  table.rows = {{"1"}};
  EXPECT_EQ(CsvNumericColumn(table, "zzz").status().code(),
            StatusCode::kNotFound);
}

TEST_F(CsvTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadCsv("/nonexistent/file.csv").status().code(),
            StatusCode::kIoError);
}

TEST_F(CsvTest, RaggedRowRejected) {
  {
    std::FILE* f = std::fopen(path_str().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("a,b\n1,2\n3\n", f);
    std::fclose(f);
  }
  EXPECT_EQ(ReadCsv(path_str()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, ColumnIndexLookup) {
  CsvTable table;
  table.header = {"x", "y", "z"};
  EXPECT_EQ(table.ColumnIndex("y"), 1);
  EXPECT_EQ(table.ColumnIndex("nope"), -1);
}

TEST_F(CsvTest, CrlfLineEndingsAccepted) {
  {
    std::FILE* f = std::fopen(path_str().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("a,b\r\n1,2\r\n3,4\r\n", f);
    std::fclose(f);
  }
  auto loaded = ReadCsv(path_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(loaded->rows.size(), 2u);
  EXPECT_EQ(loaded->rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST_F(CsvTest, QuotedFieldMayContainCommas) {
  {
    std::FILE* f = std::fopen(path_str().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("name,value\n\"cpu,max\",3.5\nplain,4\n", f);
    std::fclose(f);
  }
  auto loaded = ReadCsv(path_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->rows.size(), 2u);
  EXPECT_EQ(loaded->rows[0][0], "cpu,max");
  EXPECT_EQ(loaded->rows[0][1], "3.5");
  EXPECT_EQ(loaded->rows[1][0], "plain");
}

TEST_F(CsvTest, DoubledQuoteDecodesToLiteralQuote) {
  {
    std::FILE* f = std::fopen(path_str().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("msg\n\"say \"\"hi\"\", then leave\"\n", f);
    std::fclose(f);
  }
  auto loaded = ReadCsv(path_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->rows.size(), 1u);
  EXPECT_EQ(loaded->rows[0][0], "say \"hi\", then leave");
}

TEST_F(CsvTest, QuotedFieldsPreserveWhitespaceUnquotedAreTrimmed) {
  {
    std::FILE* f = std::fopen(path_str().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("a,b\n\"  padded  \",  trimmed  \n", f);
    std::fclose(f);
  }
  auto loaded = ReadCsv(path_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->rows[0][0], "  padded  ");
  EXPECT_EQ(loaded->rows[0][1], "trimmed");
}

TEST_F(CsvTest, UnterminatedQuoteRejected) {
  {
    std::FILE* f = std::fopen(path_str().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("a\n\"never closed\n", f);
    std::fclose(f);
  }
  EXPECT_EQ(ReadCsv(path_str()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, TextAfterClosingQuoteRejected) {
  {
    std::FILE* f = std::fopen(path_str().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("a\n\"x\"junk\n", f);
    std::fclose(f);
  }
  EXPECT_EQ(ReadCsv(path_str()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, WriterQuotesFieldsThatNeedIt) {
  CsvTable table;
  table.header = {"name", "note"};
  table.rows = {{"cpu,max", "has \"quotes\""}, {"plain", "  padded  "}};
  ASSERT_TRUE(WriteCsv(path_str(), table).ok());
  auto loaded = ReadCsv(path_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->header, table.header);
  EXPECT_EQ(loaded->rows, table.rows);
}

TEST(CsvRecordTest, SplitHandlesEmptyAndQuotedEmptyFields) {
  auto fields = SplitCsvRecord("a,,\"\",d");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields,
            (std::vector<std::string>{"a", "", "", "d"}));
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(61);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Poisson(0.0), 0);
  }
}

TEST(RngTest, NormalZeroStddevIsMean) {
  Rng rng(67);
  EXPECT_DOUBLE_EQ(rng.Normal(5.0, 0.0), 5.0);
}

TEST(RngTest, UniformIntOfOneIsZero) {
  Rng rng(71);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(1), 0u);
  }
}

TEST(StatusTest, CopyPreservesState) {
  Status original = Status::OutOfRange("limit");
  Status copy = original;
  EXPECT_EQ(copy.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(copy.message(), "limit");
  EXPECT_EQ(original.code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, CopyableResultSupportsReassignment) {
  Result<int> r(1);
  r = Result<int>(Status::Internal("x"));
  EXPECT_FALSE(r.ok());
  r = Result<int>(7);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
}

// -------------------------------------------------------------- Stopwatch ---

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  // Burn some cycles.
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) {
    x += std::sqrt(static_cast<double>(i));
  }
  const double first = sw.ElapsedMillis();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(sw.ElapsedMillis(), first);  // monotonic
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch sw;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) {
    x += std::sqrt(static_cast<double>(i));
  }
  const double before = sw.ElapsedMillis();
  sw.Reset();
  EXPECT_LE(sw.ElapsedMillis(), before + 1.0);
}

}  // namespace
}  // namespace rpas
