#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "solver/autoscaling.h"
#include "solver/simplex.h"

namespace rpas::solver {
namespace {

// ----------------------------------------------------------------- Simplex ---

TEST(SimplexTest, SimpleMaximizationAsMinimization) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6  =>  min -(x + y).
  // Optimum at intersection: x = 8/5, y = 6/5, value 14/5.
  LinearProgram lp;
  lp.objective = {-1.0, -1.0};
  lp.constraints.push_back({{1.0, 2.0}, Relation::kLessEqual, 4.0});
  lp.constraints.push_back({{3.0, 1.0}, Relation::kLessEqual, 6.0});
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, -14.0 / 5.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 8.0 / 5.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 6.0 / 5.0, 1e-9);
}

TEST(SimplexTest, GreaterEqualConstraintsNeedPhase1) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1  =>  x = 4? cost: put everything on
  // x (cheaper): x = 4, y = 0, value 8.
  LinearProgram lp;
  lp.objective = {2.0, 3.0};
  lp.constraints.push_back({{1.0, 1.0}, Relation::kGreaterEqual, 4.0});
  lp.constraints.push_back({{1.0, 0.0}, Relation::kGreaterEqual, 1.0});
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, 8.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 4.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 0.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + 2y s.t. x + y = 3, y >= 1  =>  x = 2, y = 1, value 4.
  LinearProgram lp;
  lp.objective = {1.0, 2.0};
  lp.constraints.push_back({{1.0, 1.0}, Relation::kEqual, 3.0});
  lp.constraints.push_back({{0.0, 1.0}, Relation::kGreaterEqual, 1.0});
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, 4.0, 1e-9);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 2 cannot both hold.
  LinearProgram lp;
  lp.objective = {1.0};
  lp.constraints.push_back({{1.0}, Relation::kLessEqual, 1.0});
  lp.constraints.push_back({{1.0}, Relation::kGreaterEqual, 2.0});
  EXPECT_EQ(SolveSimplex(lp).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SimplexTest, UnboundedDetected) {
  // min -x with only x >= 1: x can grow forever.
  LinearProgram lp;
  lp.objective = {-1.0};
  lp.constraints.push_back({{1.0}, Relation::kGreaterEqual, 1.0});
  EXPECT_EQ(SolveSimplex(lp).status().code(), StatusCode::kOutOfRange);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // x - y <= -2  <=>  y - x >= 2. min y s.t. that and x >= 0 => y = 2.
  LinearProgram lp;
  lp.objective = {0.0, 1.0};
  lp.constraints.push_back({{1.0, -1.0}, Relation::kLessEqual, -2.0});
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, 2.0, 1e-9);
}

TEST(SimplexTest, RaggedConstraintRejected) {
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.constraints.push_back({{1.0}, Relation::kLessEqual, 1.0});
  EXPECT_EQ(SolveSimplex(lp).status().code(), StatusCode::kInvalidArgument);
}

TEST(SimplexTest, EmptyProgramRejected) {
  LinearProgram lp;
  EXPECT_EQ(SolveSimplex(lp).status().code(), StatusCode::kInvalidArgument);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex (degeneracy);
  // Bland's rule must still terminate.
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.constraints.push_back({{1.0, 1.0}, Relation::kGreaterEqual, 2.0});
  lp.constraints.push_back({{2.0, 2.0}, Relation::kGreaterEqual, 4.0});
  lp.constraints.push_back({{1.0, 0.0}, Relation::kGreaterEqual, 1.0});
  lp.constraints.push_back({{0.0, 1.0}, Relation::kGreaterEqual, 1.0});
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, 2.0, 1e-9);
}

TEST(SimplexTest, SolutionSatisfiesConstraints) {
  Rng rng(3);
  // Random feasible covering problems: min 1.x s.t. x_i >= b_i.
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.UniformInt(8);
    LinearProgram lp;
    lp.objective.assign(n, 1.0);
    std::vector<double> b(n);
    for (size_t i = 0; i < n; ++i) {
      b[i] = rng.Uniform(0.0, 10.0);
      Constraint c;
      c.coeffs.assign(n, 0.0);
      c.coeffs[i] = 1.0;
      c.relation = Relation::kGreaterEqual;
      c.rhs = b[i];
      lp.constraints.push_back(std::move(c));
    }
    auto sol = SolveSimplex(lp);
    ASSERT_TRUE(sol.ok());
    double expected = 0.0;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_GE(sol->x[i], b[i] - 1e-9);
      expected += b[i];
    }
    EXPECT_NEAR(sol->objective_value, expected, 1e-6);
  }
}

// ------------------------------------------------------------- AutoScaling ---

TEST(AutoScalingTest, IntegerSolutionIsCeiling) {
  AutoScalingProblem problem;
  problem.workloads = {0.0, 0.5, 1.0, 1.5, 7.3};
  problem.thresholds = {1.0};
  problem.min_nodes = 1;
  auto alloc = SolveAutoScalingInteger(problem);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(*alloc, (std::vector<int>{1, 1, 1, 2, 8}));
}

TEST(AutoScalingTest, ExactMultipleDoesNotRoundUp) {
  AutoScalingProblem problem;
  problem.workloads = {2.0};
  problem.thresholds = {0.5};
  auto alloc = SolveAutoScalingInteger(problem);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ((*alloc)[0], 4);
}

TEST(AutoScalingTest, PerStepThresholds) {
  AutoScalingProblem problem;
  problem.workloads = {4.0, 4.0};
  problem.thresholds = {1.0, 2.0};
  auto alloc = SolveAutoScalingInteger(problem);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(*alloc, (std::vector<int>{4, 2}));
}

TEST(AutoScalingTest, MinNodesEnforced) {
  AutoScalingProblem problem;
  problem.workloads = {0.0, 0.1};
  problem.thresholds = {1.0};
  problem.min_nodes = 3;
  auto alloc = SolveAutoScalingInteger(problem);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(*alloc, (std::vector<int>{3, 3}));
}

TEST(AutoScalingTest, MaxNodesCapViolationDetected) {
  AutoScalingProblem problem;
  problem.workloads = {100.0};
  problem.thresholds = {1.0};
  problem.max_nodes = 10;
  EXPECT_EQ(SolveAutoScalingInteger(problem).status().code(),
            StatusCode::kOutOfRange);
}

TEST(AutoScalingTest, RejectsNonPositiveThreshold) {
  AutoScalingProblem problem;
  problem.workloads = {1.0};
  problem.thresholds = {0.0};
  EXPECT_EQ(SolveAutoScalingInteger(problem).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AutoScalingTest, RejectsNegativeWorkload) {
  AutoScalingProblem problem;
  problem.workloads = {-1.0};
  problem.thresholds = {1.0};
  EXPECT_FALSE(SolveAutoScalingInteger(problem).ok());
}

TEST(AutoScalingTest, RejectsEmpty) {
  AutoScalingProblem problem;
  problem.thresholds = {1.0};
  EXPECT_FALSE(SolveAutoScalingInteger(problem).ok());
}

TEST(AutoScalingTest, LpRelaxationMatchesContinuousDemand) {
  AutoScalingProblem problem;
  problem.workloads = {3.0, 0.2, 5.5};
  problem.thresholds = {2.0};
  problem.min_nodes = 1;
  auto lp = SolveAutoScalingLp(problem);
  ASSERT_TRUE(lp.ok());
  EXPECT_NEAR((*lp)[0], 1.5, 1e-9);
  EXPECT_NEAR((*lp)[1], 1.0, 1e-9);  // floor binds
  EXPECT_NEAR((*lp)[2], 2.75, 1e-9);
}

TEST(AutoScalingTest, IntegerIsCeilOfLpRelaxation) {
  // Cross-check on random instances: the integral solution equals
  // max(min_nodes, ceil(LP relaxation per step)).
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    AutoScalingProblem problem;
    const size_t h = 1 + rng.UniformInt(12);
    for (size_t t = 0; t < h; ++t) {
      problem.workloads.push_back(rng.Uniform(0.0, 20.0));
    }
    problem.thresholds = {rng.Uniform(0.5, 3.0)};
    problem.min_nodes = 1 + static_cast<int>(rng.UniformInt(3));
    auto integer = SolveAutoScalingInteger(problem);
    auto lp = SolveAutoScalingLp(problem);
    ASSERT_TRUE(integer.ok());
    ASSERT_TRUE(lp.ok());
    for (size_t t = 0; t < h; ++t) {
      const int expected = std::max(
          problem.min_nodes,
          static_cast<int>(std::ceil((*lp)[t] - 1e-6)));
      EXPECT_EQ((*integer)[t], expected) << "trial " << trial << " t=" << t;
    }
  }
}

TEST(AutoScalingTest, BuildLpShape) {
  AutoScalingProblem problem;
  problem.workloads = {1.0, 2.0};
  problem.thresholds = {1.0};
  problem.min_nodes = 1;
  problem.max_nodes = 5;
  LinearProgram lp = BuildAutoScalingLp(problem);
  EXPECT_EQ(lp.num_vars(), 2u);
  // Per step: demand + floor + cap = 3 constraints.
  EXPECT_EQ(lp.constraints.size(), 6u);
}

TEST(SimplexTest, IterationCapReportsResourceExhausted) {
  // A perfectly solvable LP, but with a 1-iteration budget.
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.constraints.push_back({{1.0, 0.0}, Relation::kGreaterEqual, 3.0});
  lp.constraints.push_back({{0.0, 1.0}, Relation::kGreaterEqual, 4.0});
  EXPECT_EQ(SolveSimplex(lp, /*max_iterations=*/1).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(SimplexTest, ZeroRhsConstraintsHandled) {
  // min x s.t. x >= 0 (degenerate at the origin).
  LinearProgram lp;
  lp.objective = {1.0};
  lp.constraints.push_back({{1.0}, Relation::kGreaterEqual, 0.0});
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 0.0, 1e-9);
}

TEST(SimplexTest, RedundantEqualityKeptConsistent) {
  // Duplicated equality rows leave a zero-row artificial in the basis;
  // the solver must still return the right optimum.
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.constraints.push_back({{1.0, 1.0}, Relation::kEqual, 2.0});
  lp.constraints.push_back({{1.0, 1.0}, Relation::kEqual, 2.0});
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, 2.0, 1e-9);
}

// Monotonicity sweep: higher workloads can never need fewer nodes.
class AutoScalingMonotonicityTest
    : public ::testing::TestWithParam<double> {};

TEST_P(AutoScalingMonotonicityTest, NodesMonotoneInWorkload) {
  const double theta = GetParam();
  AutoScalingProblem low;
  AutoScalingProblem high;
  low.thresholds = {theta};
  high.thresholds = {theta};
  for (int w = 0; w < 30; ++w) {
    low.workloads = {static_cast<double>(w)};
    high.workloads = {static_cast<double>(w) + 0.7};
    auto a = SolveAutoScalingInteger(low);
    auto b = SolveAutoScalingInteger(high);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_LE((*a)[0], (*b)[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, AutoScalingMonotonicityTest,
                         ::testing::Values(0.5, 0.7, 1.0, 2.5));

}  // namespace
}  // namespace rpas::solver
