#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "autodiff/tape.h"
#include "common/rng.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "tensor/ops.h"

namespace rpas::nn {
namespace {

using autodiff::Parameter;
using autodiff::Tape;
using autodiff::Var;
using tensor::Matrix;

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m[i] = scale * rng->Normal();
  }
  return m;
}

// ------------------------------------------------------------------- init ---

TEST(InitTest, XavierBounds) {
  Rng rng(1);
  Matrix w = XavierUniform(10, 20, &rng);
  const double bound = std::sqrt(6.0 / 30.0);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::fabs(w[i]), bound);
  }
}

TEST(InitTest, ZerosAndConstant) {
  EXPECT_DOUBLE_EQ(Zeros(2, 2)(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(Constant(2, 2, 3.0)(0, 1), 3.0);
}

// ------------------------------------------------------------------ Dense ---

TEST(DenseTest, ForwardAndApplyAgree) {
  Rng rng(2);
  Dense layer(3, 4, Dense::Activation::kTanh, &rng);
  Matrix x = RandomMatrix(5, 3, &rng);
  Tape tape;
  Var out = layer.Forward(&tape, tape.Constant(x));
  Matrix raw = layer.Apply(x);
  ASSERT_EQ(out.value().rows(), raw.rows());
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(out.value()[i], raw[i], 1e-12);
  }
}

TEST(DenseTest, AllActivationsAgreeAcrossPaths) {
  Rng rng(3);
  for (auto act : {Dense::Activation::kNone, Dense::Activation::kRelu,
                   Dense::Activation::kTanh, Dense::Activation::kSigmoid,
                   Dense::Activation::kSoftplus}) {
    Dense layer(2, 2, act, &rng);
    Matrix x = RandomMatrix(3, 2, &rng);
    Tape tape;
    Var out = layer.Forward(&tape, tape.Constant(x));
    Matrix raw = layer.Apply(x);
    for (size_t i = 0; i < raw.size(); ++i) {
      EXPECT_NEAR(out.value()[i], raw[i], 1e-12);
    }
  }
}

TEST(DenseTest, ParamCount) {
  Rng rng(4);
  Dense layer(3, 5, Dense::Activation::kNone, &rng);
  EXPECT_EQ(layer.NumParams(), 3u * 5u + 5u);
  EXPECT_EQ(layer.Params().size(), 2u);
}

// --------------------------------------------------------------- LstmCell ---

TEST(LstmTest, TapeAndRawAgree) {
  Rng rng(5);
  LstmCell cell(3, 4, &rng);
  Matrix x1 = RandomMatrix(2, 3, &rng);
  Matrix x2 = RandomMatrix(2, 3, &rng);

  Tape tape;
  auto st = cell.ZeroState(&tape, 2);
  st = cell.Step(&tape, tape.Constant(x1), st);
  st = cell.Step(&tape, tape.Constant(x2), st);

  auto raw = cell.ZeroRawState(2);
  raw = cell.Step(x1, raw);
  raw = cell.Step(x2, raw);

  for (size_t i = 0; i < raw.h.size(); ++i) {
    EXPECT_NEAR(st.h.value()[i], raw.h[i], 1e-12);
    EXPECT_NEAR(st.c.value()[i], raw.c[i], 1e-12);
  }
}

TEST(LstmTest, StateShapes) {
  Rng rng(6);
  LstmCell cell(2, 8, &rng);
  auto raw = cell.ZeroRawState(4);
  EXPECT_EQ(raw.h.rows(), 4u);
  EXPECT_EQ(raw.h.cols(), 8u);
  raw = cell.Step(RandomMatrix(4, 2, &rng), raw);
  EXPECT_EQ(raw.h.rows(), 4u);
  EXPECT_EQ(raw.c.cols(), 8u);
}

TEST(LstmTest, HiddenStateBounded) {
  // h = o * tanh(c) is always in (-1, 1).
  Rng rng(7);
  LstmCell cell(2, 4, &rng);
  auto raw = cell.ZeroRawState(1);
  for (int t = 0; t < 50; ++t) {
    raw = cell.Step(RandomMatrix(1, 2, &rng, 3.0), raw);
    for (size_t i = 0; i < raw.h.size(); ++i) {
      EXPECT_LT(std::fabs(raw.h[i]), 1.0);
    }
  }
}

TEST(LstmTest, GradientsFlowThroughTime) {
  Rng rng(8);
  LstmCell cell(2, 3, &rng);
  Matrix x = RandomMatrix(1, 2, &rng);
  Tape tape;
  auto st = cell.ZeroState(&tape, 1);
  for (int t = 0; t < 5; ++t) {
    st = cell.Step(&tape, tape.Constant(x), st);
  }
  Var loss = tape.Sum(tape.Square(st.h));
  tape.Backward(loss);
  double grad_norm = 0.0;
  for (Parameter* p : cell.Params()) {
    for (size_t i = 0; i < p->grad.size(); ++i) {
      grad_norm += p->grad[i] * p->grad[i];
    }
  }
  EXPECT_GT(grad_norm, 0.0);
}

// -------------------------------------------------------------- LayerNorm ---

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm ln(4);
  Matrix x{{1.0, 2.0, 3.0, 4.0}, {10.0, 10.0, 30.0, 30.0}};
  Matrix out = ln.Apply(x);
  for (size_t r = 0; r < out.rows(); ++r) {
    double mean = 0.0;
    for (size_t c = 0; c < out.cols(); ++c) {
      mean += out(r, c);
    }
    EXPECT_NEAR(mean / 4.0, 0.0, 1e-9);
  }
}

TEST(LayerNormTest, ForwardAndApplyAgree) {
  Rng rng(9);
  LayerNorm ln(5);
  Matrix x = RandomMatrix(3, 5, &rng, 2.0);
  Tape tape;
  Var out = ln.Forward(&tape, tape.Constant(x));
  Matrix raw = ln.Apply(x);
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(out.value()[i], raw[i], 1e-12);
  }
}

TEST(LayerNormTest, GradientCheck) {
  Rng rng(10);
  Parameter input(RandomMatrix(2, 4, &rng));
  LayerNorm ln(4);
  std::vector<Parameter*> params = {&input};
  for (Parameter* p : ln.Params()) {
    params.push_back(p);
  }
  for (Parameter* p : params) {
    p->ZeroGrad();
  }
  Matrix weight = RandomMatrix(2, 4, &rng);
  auto graph = [&](Tape* t) {
    return t->Sum(
        t->Mul(ln.Forward(t, t->Bind(&input)), t->Constant(weight)));
  };
  Tape tape;
  Var loss = graph(&tape);
  tape.Backward(loss);
  for (Parameter* p : params) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      const double orig = p->value[i];
      const double h = 1e-6;
      p->value[i] = orig + h;
      Tape t_up;
      const double up = graph(&t_up).value()(0, 0);
      p->value[i] = orig - h;
      Tape t_down;
      const double down = graph(&t_down).value()(0, 0);
      p->value[i] = orig;
      EXPECT_NEAR(p->grad[i], (up - down) / (2.0 * h), 1e-5);
    }
  }
}

// ---------------------------------------------------- GatedResidualNetwork ---

TEST(GrnTest, ForwardAndApplyAgree) {
  Rng rng(11);
  GatedResidualNetwork grn(6, 8, 4, &rng);
  Matrix x = RandomMatrix(3, 6, &rng);
  Tape tape;
  Var out = grn.Forward(&tape, tape.Constant(x));
  Matrix raw = grn.Apply(x);
  ASSERT_EQ(raw.cols(), 4u);
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(out.value()[i], raw[i], 1e-12);
  }
}

TEST(GrnTest, SameDimSkipsProjection) {
  Rng rng(12);
  GatedResidualNetwork grn(4, 8, 4, &rng);
  Matrix x = RandomMatrix(2, 4, &rng);
  Matrix out = grn.Apply(x);
  EXPECT_EQ(out.cols(), 4u);
}

// -------------------------------------------------------------- Attention ---

TEST(AttentionTest, UniformKeysGiveMeanOfValues) {
  // With all keys identical the attention weights are uniform, so the
  // output equals the mean of the value rows.
  Matrix q{{1.0, 0.0}};
  Matrix k{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  Matrix v{{3.0, 0.0}, {6.0, 3.0}, {0.0, 0.0}};
  Matrix out = ScaledDotAttention(q, k, v);
  EXPECT_NEAR(out(0, 0), 3.0, 1e-12);
  EXPECT_NEAR(out(0, 1), 1.0, 1e-12);
}

TEST(AttentionTest, TapeAndRawAgree) {
  Rng rng(13);
  Matrix q = RandomMatrix(4, 6, &rng);
  Matrix k = RandomMatrix(7, 6, &rng);
  Matrix v = RandomMatrix(7, 6, &rng);
  Tape tape;
  Var out = ScaledDotAttention(&tape, tape.Constant(q), tape.Constant(k),
                               tape.Constant(v));
  Matrix raw = ScaledDotAttention(q, k, v);
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(out.value()[i], raw[i], 1e-12);
  }
}

TEST(AttentionTest, InterpretableMhaForwardApplyAgree) {
  Rng rng(14);
  InterpretableMultiHeadAttention mha(8, 2, &rng);
  Matrix q = RandomMatrix(3, 8, &rng);
  Matrix kv = RandomMatrix(5, 8, &rng);
  Tape tape;
  Var out = mha.Forward(&tape, tape.Constant(q), tape.Constant(kv));
  Matrix raw = mha.Apply(q, kv);
  ASSERT_EQ(raw.rows(), 3u);
  ASSERT_EQ(raw.cols(), 8u);
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(out.value()[i], raw[i], 1e-12);
  }
}

TEST(AttentionTest, MhaGradientsFlow) {
  Rng rng(15);
  InterpretableMultiHeadAttention mha(4, 2, &rng);
  Matrix q = RandomMatrix(2, 4, &rng);
  Matrix kv = RandomMatrix(3, 4, &rng);
  Tape tape;
  Var out = mha.Forward(&tape, tape.Constant(q), tape.Constant(kv));
  tape.Backward(tape.Sum(tape.Square(out)));
  double norm = 0.0;
  for (Parameter* p : mha.Params()) {
    for (size_t i = 0; i < p->grad.size(); ++i) {
      norm += p->grad[i] * p->grad[i];
    }
  }
  EXPECT_GT(norm, 0.0);
}

// ----------------------------------------------------------------- Losses ---

TEST(LossTest, MseKnownValue) {
  Tape tape;
  Var pred = tape.Constant(Matrix{{1.0, 2.0}});
  Var target = tape.Constant(Matrix{{3.0, 2.0}});
  Var loss = MseLoss(&tape, pred, target);
  EXPECT_DOUBLE_EQ(loss.value()(0, 0), 2.0);  // (4 + 0) / 2
}

TEST(LossTest, GaussianNllMatchesFormula) {
  Tape tape;
  const double mu = 1.0;
  const double sigma = 2.0;
  const double y = 2.5;
  Var loss = GaussianNllLoss(&tape, tape.Constant(Matrix{{mu}}),
                             tape.Constant(Matrix{{sigma}}),
                             tape.Constant(Matrix{{y}}));
  const double z = (y - mu) / sigma;
  const double expected =
      0.5 * std::log(2.0 * M_PI) + std::log(sigma) + 0.5 * z * z;
  EXPECT_NEAR(loss.value()(0, 0), expected, 1e-12);
}

TEST(LossTest, GaussianNllMinimizedAtTarget) {
  // NLL as a function of mu is minimized when mu == y.
  Tape t1;
  Var at_target = GaussianNllLoss(&t1, t1.Constant(Matrix{{5.0}}),
                                  t1.Constant(Matrix{{1.0}}),
                                  t1.Constant(Matrix{{5.0}}));
  Tape t2;
  Var off_target = GaussianNllLoss(&t2, t2.Constant(Matrix{{4.0}}),
                                   t2.Constant(Matrix{{1.0}}),
                                   t2.Constant(Matrix{{5.0}}));
  EXPECT_LT(at_target.value()(0, 0), off_target.value()(0, 0));
}

TEST(LossTest, StudentTNllMatchesDistribution) {
  // Must equal -LogPdf of the location-scale Student-t.
  const double mu = 0.5;
  const double sigma = 1.5;
  const double dof = 4.0;
  const double y = 2.0;
  Tape tape;
  Var loss = StudentTNllLoss(&tape, tape.Constant(Matrix{{mu}}),
                             tape.Constant(Matrix{{sigma}}),
                             tape.Constant(Matrix{{y}}), dof);
  const double z = (y - mu) / sigma;
  const double expected = -(std::lgamma((dof + 1.0) / 2.0) -
                            std::lgamma(dof / 2.0) -
                            0.5 * std::log(dof * M_PI) - std::log(sigma) -
                            (dof + 1.0) / 2.0 * std::log1p(z * z / dof));
  EXPECT_NEAR(loss.value()(0, 0), expected, 1e-12);
}

TEST(LossTest, StudentTNllHandlesOutliersBetterThanGaussian) {
  // For a far outlier, Student-t NLL grows much slower (log vs quadratic) —
  // the paper's §III-B rationale for choosing it.
  Tape t1;
  const double outlier = 50.0;
  Var g = GaussianNllLoss(&t1, t1.Constant(Matrix{{0.0}}),
                          t1.Constant(Matrix{{1.0}}),
                          t1.Constant(Matrix{{outlier}}));
  Tape t2;
  Var st = StudentTNllLoss(&t2, t2.Constant(Matrix{{0.0}}),
                           t2.Constant(Matrix{{1.0}}),
                           t2.Constant(Matrix{{outlier}}), 4.0);
  EXPECT_LT(st.value()(0, 0), g.value()(0, 0) / 10.0);
}

TEST(LossTest, QuantileGridLossKnownValue) {
  // One row, grid {0.5}: pinball(0.5) = 0.5 * |y - yhat|; loss sums over
  // quantiles and averages rows.
  Tape tape;
  Var pred = tape.Constant(Matrix{{3.0}});
  Var target = tape.Constant(Matrix{{5.0}});
  Var loss = QuantileGridLoss(&tape, pred, target, {0.5});
  EXPECT_DOUBLE_EQ(loss.value()(0, 0), 1.0);
}

TEST(LossTest, QuantileGridLossAsymmetry) {
  // tau = 0.9 penalizes under-prediction 9x more than over-prediction.
  Tape t1;
  Var under = QuantileGridLoss(&t1, t1.Constant(Matrix{{0.0}}),
                               t1.Constant(Matrix{{1.0}}), {0.9});
  Tape t2;
  Var over = QuantileGridLoss(&t2, t2.Constant(Matrix{{1.0}}),
                              t2.Constant(Matrix{{0.0}}), {0.9});
  EXPECT_NEAR(under.value()(0, 0) / over.value()(0, 0), 9.0, 1e-9);
}

TEST(LossTest, QuantileGridLossGradientCheck) {
  Rng rng(16);
  Parameter pred(RandomMatrix(4, 3, &rng));
  Matrix target = RandomMatrix(4, 1, &rng);
  const std::vector<double> taus = {0.1, 0.5, 0.9};
  pred.ZeroGrad();
  auto graph = [&](Tape* t) {
    return QuantileGridLoss(t, t->Bind(&pred), t->Constant(target), taus);
  };
  Tape tape;
  tape.Backward(graph(&tape));
  for (size_t i = 0; i < pred.value.size(); ++i) {
    const double orig = pred.value[i];
    const double h = 1e-6;
    pred.value[i] = orig + h;
    Tape up_tape;
    const double up = graph(&up_tape).value()(0, 0);
    pred.value[i] = orig - h;
    Tape down_tape;
    const double down = graph(&down_tape).value()(0, 0);
    pred.value[i] = orig;
    EXPECT_NEAR(pred.grad[i], (up - down) / (2.0 * h), 1e-5);
  }
}

// -------------------------------------------------------------- Optimizer ---

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Parameter p(Matrix{{3.0, 4.0}});
  p.grad(0, 0) = 3.0;
  p.grad(0, 1) = 4.0;  // norm 5
  const double before = ClipGradNorm({&p}, 1.0);
  EXPECT_DOUBLE_EQ(before, 5.0);
  EXPECT_NEAR(std::hypot(p.grad(0, 0), p.grad(0, 1)), 1.0, 1e-12);
}

TEST(OptimizerTest, ClipGradNormLeavesSmallGradients) {
  Parameter p(Matrix{{1.0}});
  p.grad(0, 0) = 0.5;
  ClipGradNorm({&p}, 10.0);
  EXPECT_DOUBLE_EQ(p.grad(0, 0), 0.5);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  // min (w - 3)^2.
  Parameter w(Matrix{{0.0}});
  Adam adam(Adam::Options{.lr = 0.1});
  for (int step = 0; step < 500; ++step) {
    Tape tape;
    Var loss = tape.Square(tape.AddScalar(tape.Bind(&w), -3.0));
    tape.Backward(loss);
    adam.Step({&w});
  }
  EXPECT_NEAR(w.value(0, 0), 3.0, 1e-3);
}

TEST(OptimizerTest, AdamZeroesGradAfterStep) {
  Parameter w(Matrix{{1.0}});
  w.grad(0, 0) = 2.0;
  Adam adam;
  adam.Step({&w});
  EXPECT_DOUBLE_EQ(w.grad(0, 0), 0.0);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  Parameter w(Matrix{{10.0}});
  Sgd sgd(0.1, 0.5);
  for (int step = 0; step < 300; ++step) {
    Tape tape;
    Var loss = tape.Square(tape.AddScalar(tape.Bind(&w), -2.0));
    tape.Backward(loss);
    sgd.Step({&w});
  }
  EXPECT_NEAR(w.value(0, 0), 2.0, 1e-3);
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  Parameter w(Matrix{{5.0}});
  Adam adam(Adam::Options{.lr = 0.05, .weight_decay = 1.0});
  for (int step = 0; step < 400; ++step) {
    // Zero data gradient: only weight decay acts.
    w.ZeroGrad();
    adam.Step({&w});
  }
  EXPECT_LT(std::fabs(w.value(0, 0)), 0.5);
}

// ---------------------------------------------------------------- Trainer ---

TEST(TrainerTest, LearnsLinearRegression) {
  // y = x * [2, -1]^T + 0.5.
  Rng data_rng(17);
  Matrix x = RandomMatrix(64, 2, &data_rng);
  Matrix y(64, 1);
  for (size_t r = 0; r < 64; ++r) {
    y(r, 0) = 2.0 * x(r, 0) - 1.0 * x(r, 1) + 0.5;
  }
  Rng init_rng(18);
  Dense layer(2, 1, Dense::Activation::kNone, &init_rng);

  TrainConfig config;
  config.steps = 400;
  config.lr = 0.05;
  auto summary = TrainLoop(config, layer.Params(), [&](Tape* t, Rng*) {
    Var pred = layer.Forward(t, t->Constant(x));
    return MseLoss(t, pred, t->Constant(y));
  });
  EXPECT_LT(summary.final_loss, 1e-4);
  EXPECT_EQ(summary.steps_run, 400);
}

TEST(TrainerTest, LearnsNonlinearFunction) {
  // y = tanh(x0) * 2 needs the hidden layer.
  Rng data_rng(19);
  Matrix x = RandomMatrix(128, 1, &data_rng);
  Matrix y(128, 1);
  for (size_t r = 0; r < 128; ++r) {
    y(r, 0) = 2.0 * std::tanh(3.0 * x(r, 0));
  }
  Rng init_rng(20);
  Dense l1(1, 16, Dense::Activation::kTanh, &init_rng);
  Dense l2(16, 1, Dense::Activation::kNone, &init_rng);
  std::vector<Parameter*> params;
  for (auto* p : l1.Params()) params.push_back(p);
  for (auto* p : l2.Params()) params.push_back(p);

  TrainConfig config;
  config.steps = 800;
  config.lr = 0.01;
  auto summary = TrainLoop(config, params, [&](Tape* t, Rng*) {
    Var pred = l2.Forward(t, l1.Forward(t, t->Constant(x)));
    return MseLoss(t, pred, t->Constant(y));
  });
  EXPECT_LT(summary.final_loss, 0.01);
}

TEST(TrainerTest, QuantileHeadsLearnDistinctQuantiles) {
  // Data: y ~ N(0, 1). A constant predictor per quantile trained with
  // pinball loss must converge to the respective normal quantiles.
  Rng data_rng(21);
  Matrix y(512, 1);
  for (size_t r = 0; r < 512; ++r) {
    y(r, 0) = data_rng.Normal();
  }
  Parameter heads(Matrix(1, 3));  // predicts quantiles 0.1, 0.5, 0.9
  const std::vector<double> taus = {0.1, 0.5, 0.9};

  TrainConfig config;
  config.steps = 1500;
  config.lr = 0.02;
  TrainLoop(config, {&heads}, [&](Tape* t, Rng*) {
    // Broadcast the constant heads across all rows.
    Var ones = t->Constant(Matrix(512, 1, 1.0));
    Var pred = t->MatMul(ones, t->Bind(&heads));
    return QuantileGridLoss(t, pred, t->Constant(y), taus);
  });
  EXPECT_NEAR(heads.value(0, 0), -1.2816, 0.15);
  EXPECT_NEAR(heads.value(0, 1), 0.0, 0.15);
  EXPECT_NEAR(heads.value(0, 2), 1.2816, 0.15);
}

TEST(TrainerTest, RecordLossCapturesTrajectoryAndMetricsAgree) {
  Rng data_rng(22);
  Matrix x = RandomMatrix(64, 2, &data_rng);
  Matrix y(64, 1);
  for (size_t r = 0; r < 64; ++r) {
    y(r, 0) = x(r, 0) - 0.5 * x(r, 1);
  }
  Rng init_rng(23);
  Dense layer(2, 1, Dense::Activation::kNone, &init_rng);

  obs::MetricsRegistry registry;
  TrainConfig config;
  config.steps = 50;
  config.lr = 0.05;
  config.record_loss = true;
  config.metrics = &registry;
  auto summary = TrainLoop(config, layer.Params(), [&](Tape* t, Rng*) {
    Var pred = layer.Forward(t, t->Constant(x));
    return MseLoss(t, pred, t->Constant(y));
  });

  // The recorded trajectory and the summary scalars are the same data.
  ASSERT_EQ(summary.loss_history.size(), 50u);
  EXPECT_DOUBLE_EQ(summary.loss_history.back(), summary.final_loss);
  EXPECT_DOUBLE_EQ(*std::min_element(summary.loss_history.begin(),
                                     summary.loss_history.end()),
                   summary.best_loss);
  EXPECT_GT(summary.final_grad_norm, 0.0);

  // The metrics hooks observed exactly one sample per step, and the clip
  // counter matches the summary's clip_events.
  EXPECT_EQ(registry.GetCounter("nn.train.steps")->value(), 50);
  EXPECT_EQ(registry.GetCounter("nn.train.clip_events")->value(),
            summary.clip_events);
  EXPECT_EQ(registry.GetHistogram("nn.train.loss")->count(), 50u);
  EXPECT_EQ(registry.GetHistogram("nn.train.grad_norm")->count(), 50u);
}

TEST(TrainerTest, LossHistoryStaysEmptyByDefault) {
  Rng data_rng(24);
  Matrix x = RandomMatrix(16, 2, &data_rng);
  Matrix y(16, 1);
  for (size_t r = 0; r < 16; ++r) {
    y(r, 0) = x(r, 0);
  }
  Rng init_rng(25);
  Dense layer(2, 1, Dense::Activation::kNone, &init_rng);
  TrainConfig config;
  config.steps = 5;
  auto summary = TrainLoop(config, layer.Params(), [&](Tape* t, Rng*) {
    Var pred = layer.Forward(t, t->Constant(x));
    return MseLoss(t, pred, t->Constant(y));
  });
  EXPECT_EQ(summary.steps_run, 5);
  EXPECT_TRUE(summary.loss_history.empty());
}

}  // namespace
}  // namespace rpas::nn
