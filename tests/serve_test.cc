#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/strings.h"
#include "forecast/deepar.h"
#include "forecast/mlp.h"
#include "nn/qcheckpoint.h"
#include "serve/admission.h"
#include "serve/batching.h"
#include "serve/fleet.h"
#include "serve/registry.h"
#include "ts/metrics.h"

namespace rpas::serve {
namespace {

using forecast::DeepArForecaster;
using forecast::ForecastInput;
using forecast::MlpForecaster;

constexpr size_t kContext = 12;
constexpr size_t kHorizon = 6;

ts::TimeSeries SineSeries(size_t num_steps, uint64_t seed) {
  ts::TimeSeries s;
  s.step_minutes = 10.0;
  s.name = "sine";
  Rng rng(seed);
  for (size_t i = 0; i < num_steps; ++i) {
    const double phase =
        2.0 * M_PI * static_cast<double>(i % 144) / 144.0;
    s.values.push_back(10.0 + 4.0 * std::sin(phase) + 0.3 * rng.Normal());
  }
  return s;
}

MlpForecaster::Options SmallMlpOptions() {
  MlpForecaster::Options options;
  options.context_length = kContext;
  options.horizon = kHorizon;
  options.hidden_dim = 8;
  options.num_hidden_layers = 1;
  options.batch_size = 16;
  options.train.steps = 40;
  options.train.lr = 2e-3;
  return options;
}

DeepArForecaster::Options SmallDeepArOptions() {
  DeepArForecaster::Options options;
  options.context_length = kContext;
  options.horizon = kHorizon;
  options.hidden_dim = 8;
  options.batch_size = 8;
  options.num_samples = 16;
  options.train.steps = 30;
  options.train.lr = 5e-3;
  return options;
}

/// Checkpoints of one tiny trained MLP and one tiny trained DeepAR,
/// written once per test binary (training dominates the suite's runtime).
struct TrainedCheckpoints {
  std::string mlp_path;
  std::string deepar_path;
};

/// SaveCheckpoint truncates and rewrites `path` in place, and ctest runs
/// this binary's cases as separate concurrent processes that all lazily
/// rebuild these shared /tmp checkpoints — a sibling reading a
/// half-written file would fail its registry setup and abort. Writing a
/// pid-suffixed temp and renaming it into place keeps the shared path
/// complete at every instant (rename(2) is atomic on one filesystem, and
/// training is deterministic, so every process produces identical bytes).
void SaveCheckpointAtomically(const forecast::Forecaster& model,
                              const std::string& path) {
  const std::string tmp =
      path + "." + std::to_string(static_cast<long>(getpid())) + ".tmp";
  RPAS_CHECK(model.SaveCheckpoint(tmp).ok());
  RPAS_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0);
}

const TrainedCheckpoints& Checkpoints() {
  static const TrainedCheckpoints* checkpoints = [] {
    auto* c = new TrainedCheckpoints;
    c->mlp_path = "/tmp/rpas_serve_test_mlp.ckpt";
    c->deepar_path = "/tmp/rpas_serve_test_deepar.ckpt";
    const ts::TimeSeries train = SineSeries(400, 7);
    MlpForecaster mlp(SmallMlpOptions());
    RPAS_CHECK(mlp.Fit(train).ok());
    SaveCheckpointAtomically(mlp, c->mlp_path);
    DeepArForecaster deepar(SmallDeepArOptions());
    RPAS_CHECK(deepar.Fit(train).ok());
    SaveCheckpointAtomically(deepar, c->deepar_path);
    return c;
  }();
  return *checkpoints;
}

ForecasterFactory MlpFactory() {
  return [] { return std::make_unique<MlpForecaster>(SmallMlpOptions()); };
}

ForecasterFactory DeepArFactory() {
  return [] {
    return std::make_unique<DeepArForecaster>(SmallDeepArOptions());
  };
}

/// Registry with `versions` MLP versions named "mlp" (all sharing one
/// checkpoint file's content, copied so each version has its own path)
/// plus one DeepAR version "deepar@v1".
struct TestRegistry {
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<ModelRegistry> registry;
};

TestRegistry MakeRegistry(size_t cache_budget_bytes) {
  TestRegistry r;
  r.metrics = std::make_unique<obs::MetricsRegistry>(true);
  ModelRegistry::Options options;
  options.cache_budget_bytes = cache_budget_bytes;
  options.metrics = r.metrics.get();
  r.registry = std::make_unique<ModelRegistry>(options);
  RPAS_CHECK(r.registry
                 ->RegisterVersion({"mlp", 1}, Checkpoints().mlp_path,
                                   MlpFactory())
                 .ok());
  RPAS_CHECK(r.registry
                 ->RegisterVersion({"deepar", 1}, Checkpoints().deepar_path,
                                   DeepArFactory())
                 .ok());
  return r;
}

ForecastInput MakeInput(uint64_t variant) {
  const ts::TimeSeries s = SineSeries(kContext + 40, 100 + variant);
  ForecastInput input;
  input.start_index = s.size() - kContext;
  input.step_minutes = s.step_minutes;
  input.context.assign(s.values.end() - static_cast<long>(kContext),
                       s.values.end());
  return input;
}

void ExpectForecastsBitIdentical(const ts::QuantileForecast& a,
                                 const ts::QuantileForecast& b) {
  ASSERT_EQ(a.Horizon(), b.Horizon());
  ASSERT_EQ(a.Levels(), b.Levels());
  for (size_t h = 0; h < a.Horizon(); ++h) {
    for (size_t q = 0; q < a.Levels().size(); ++q) {
      EXPECT_EQ(a.ValueAtIndex(h, q), b.ValueAtIndex(h, q))
          << "mismatch at step " << h << " level " << q;
    }
  }
}

// --------------------------------------------------------------- Registry ---

TEST(ModelRegistryTest, AcquireLoadsAndServesCheckpoint) {
  TestRegistry r = MakeRegistry(1 << 20);
  auto model = r.registry->Acquire({"mlp", 1});
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto forecast = (*model)->PredictSeeded(MakeInput(0), 1);
  ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
  EXPECT_EQ(forecast->Horizon(), kHorizon);

  // The checkpoint round-trip serves the same function as the fitted
  // model: an identically configured instance loaded from disk predicts
  // bit-identically.
  MlpForecaster fresh(SmallMlpOptions());
  ASSERT_TRUE(fresh.LoadCheckpoint(Checkpoints().mlp_path).ok());
  auto direct = fresh.PredictSeeded(MakeInput(0), 1);
  ASSERT_TRUE(direct.ok());
  ExpectForecastsBitIdentical(*forecast, *direct);
}

TEST(ModelRegistryTest, UnknownVersionIsNotFound) {
  TestRegistry r = MakeRegistry(1 << 20);
  EXPECT_EQ(r.registry->Acquire({"mlp", 99}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(r.registry->Acquire({"nope", 1}).status().code(),
            StatusCode::kNotFound);
}

TEST(ModelRegistryTest, DuplicateAndMissingRegistrationsRejected) {
  TestRegistry r = MakeRegistry(1 << 20);
  EXPECT_EQ(r.registry
                ->RegisterVersion({"mlp", 1}, Checkpoints().mlp_path,
                                  MlpFactory())
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(r.registry
                ->RegisterVersion({"mlp", 2}, "/tmp/does_not_exist.ckpt",
                                  MlpFactory())
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ModelRegistryTest, LatestReturnsHighestVersion) {
  TestRegistry r = MakeRegistry(1 << 20);
  ASSERT_TRUE(r.registry
                  ->RegisterVersion({"mlp", 7}, Checkpoints().mlp_path,
                                    MlpFactory())
                  .ok());
  auto latest = r.registry->Latest("mlp");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->version, 7u);
  EXPECT_EQ(r.registry->Latest("absent").status().code(),
            StatusCode::kNotFound);
}

TEST(ModelRegistryTest, LruRespectsByteBudgetAndCountsEvictions) {
  // Budget fits exactly one model: every alternation evicts.
  TestRegistry r = MakeRegistry(1 << 20);
  ASSERT_TRUE(r.registry->Acquire({"mlp", 1}).ok());
  const size_t one_model_bytes = r.registry->GetCacheStats().resident_bytes;
  ASSERT_GT(one_model_bytes, 0u);

  TestRegistry tight = MakeRegistry(one_model_bytes);
  ASSERT_TRUE(tight.registry->Acquire({"mlp", 1}).ok());     // miss
  ASSERT_TRUE(tight.registry->Acquire({"mlp", 1}).ok());     // hit
  ASSERT_TRUE(tight.registry->Acquire({"deepar", 1}).ok());  // miss + evict
  ASSERT_TRUE(tight.registry->Acquire({"mlp", 1}).ok());     // miss + evict

  const ModelRegistry::CacheStats stats = tight.registry->GetCacheStats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.loads, 3);
  EXPECT_GE(stats.evictions, 2);
  EXPECT_LE(stats.resident_bytes, one_model_bytes);
  EXPECT_EQ(stats.resident_models, 1u);

  // The stats agree exactly with the injected metrics registry.
  EXPECT_EQ(tight.metrics->GetCounter("serve.registry.hits")->value(),
            stats.hits);
  EXPECT_EQ(tight.metrics->GetCounter("serve.registry.misses")->value(),
            stats.misses);
  EXPECT_EQ(tight.metrics->GetCounter("serve.registry.evictions")->value(),
            stats.evictions);
  EXPECT_EQ(tight.metrics->GetCounter("serve.registry.loads")->value(),
            stats.loads);
}

TEST(ModelRegistryTest, EvictedModelStaysAliveForHolders) {
  TestRegistry r = MakeRegistry(1 << 20);
  ASSERT_TRUE(r.registry->Acquire({"mlp", 1}).ok());
  const size_t one_model_bytes = r.registry->GetCacheStats().resident_bytes;

  TestRegistry tight = MakeRegistry(one_model_bytes);
  auto held = tight.registry->Acquire({"mlp", 1});
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(tight.registry->Acquire({"deepar", 1}).ok());  // evicts mlp
  // The holder's reference still serves.
  auto forecast = (*held)->PredictSeeded(MakeInput(1), 3);
  ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
}

TEST(ModelRegistryTest, EvictionPrefersUnpinnedVictimsAndReportsPinned) {
  // Regression: eviction used to pick the plain LRU victim even when that
  // model was pinned by in-flight requests, which dropped the registry's
  // reference without freeing a byte while an unpinned (truly freeable)
  // model stayed resident. Budget fits exactly two MLP versions; mlp@1 is
  // the LRU-oldest resident but pinned by `held`, so loading mlp@3 must
  // evict the unpinned mlp@2 instead.
  TestRegistry sized = MakeRegistry(1 << 20);
  ASSERT_TRUE(sized.registry->Acquire({"mlp", 1}).ok());
  const size_t mlp_bytes = sized.registry->GetCacheStats().resident_bytes;
  ASSERT_GT(mlp_bytes, 0u);

  TestRegistry r = MakeRegistry(2 * mlp_bytes);
  for (uint64_t version : {2, 3}) {
    ASSERT_TRUE(r.registry
                    ->RegisterVersion({"mlp", version}, Checkpoints().mlp_path,
                                      MlpFactory())
                    .ok());
  }
  auto held = r.registry->Acquire({"mlp", 1});
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(r.registry->Acquire({"mlp", 2}).ok());  // resident, unpinned

  ModelRegistry::CacheStats stats = r.registry->GetCacheStats();
  EXPECT_EQ(stats.resident_models, 2u);
  EXPECT_EQ(stats.pinned_models, 1u);
  EXPECT_EQ(stats.pinned_bytes, mlp_bytes);

  auto also_held = r.registry->Acquire({"mlp", 3});  // over budget: evict one
  ASSERT_TRUE(also_held.ok());
  stats = r.registry->GetCacheStats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.resident_models, 2u);
  EXPECT_EQ(stats.pinned_models, 2u);
  EXPECT_EQ(stats.pinned_bytes, 2 * mlp_bytes);
  // The pinned mlp@1 survived the eviction pass: acquiring it again is a
  // warm-cache hit (pre-fix it was the victim and this was a miss).
  const int64_t hits_before = stats.hits;
  ASSERT_TRUE(r.registry->Acquire({"mlp", 1}).ok());
  EXPECT_EQ(r.registry->GetCacheStats().hits, hits_before + 1);
  // The injected metrics registry tracks the pinned footprint.
  EXPECT_EQ(r.metrics->GetGauge("serve.registry.pinned_bytes")->value(),
            static_cast<double>(2 * mlp_bytes));
}

TEST(ModelRegistryTest, OversizedModelServedButNotCached) {
  TestRegistry tiny = MakeRegistry(/*cache_budget_bytes=*/1);
  auto model = tiny.registry->Acquire({"mlp", 1});
  ASSERT_TRUE(model.ok());
  const ModelRegistry::CacheStats stats = tiny.registry->GetCacheStats();
  EXPECT_EQ(stats.resident_models, 0u);
  EXPECT_LE(stats.resident_bytes, 1u);
  auto forecast = (*model)->PredictSeeded(MakeInput(2), 5);
  EXPECT_TRUE(forecast.ok());
}

// ------------------------------------------------------------ PredictSeeded ---

TEST(PredictSeededTest, DeepArIsPureFunctionOfSeed) {
  DeepArForecaster model(SmallDeepArOptions());
  ASSERT_TRUE(model.LoadCheckpoint(Checkpoints().deepar_path).ok());
  const ForecastInput input = MakeInput(3);
  auto a = model.PredictSeeded(input, 17);
  auto b = model.PredictSeeded(input, 17);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectForecastsBitIdentical(*a, *b);
  // A different seed samples different trajectories.
  auto c = model.PredictSeeded(input, 18);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (size_t h = 0; h < a->Horizon() && !any_diff; ++h) {
    for (size_t q = 0; q < a->Levels().size() && !any_diff; ++q) {
      any_diff = a->ValueAtIndex(h, q) != c->ValueAtIndex(h, q);
    }
  }
  EXPECT_TRUE(any_diff);
}

// ------------------------------------------------------------- BatchEngine ---

std::vector<ForecastRequest> MixedSlate(size_t n) {
  std::vector<ForecastRequest> requests;
  for (size_t i = 0; i < n; ++i) {
    ForecastRequest request;
    request.tenant_id = i;
    request.model =
        (i % 3 == 0) ? ModelId{"deepar", 1} : ModelId{"mlp", 1};
    request.input = MakeInput(i);
    request.seed = 1000 + i;
    requests.push_back(std::move(request));
  }
  return requests;
}

std::vector<ForecastResponse> RunEngine(bool batched, int threads,
                                        const std::vector<ForecastRequest>& slate) {
  SetRpasThreads(threads);
  TestRegistry r = MakeRegistry(1 << 20);
  BatchEngine::Options options;
  options.batch_across_tenants = batched;
  options.metrics = r.metrics.get();
  BatchEngine engine(r.registry.get(), options);
  std::vector<ForecastResponse> responses = engine.Execute(slate);
  SetRpasThreads(0);
  return responses;
}

TEST(BatchEngineTest, BatchedMatchesUnbatchedBitIdenticallyAcrossThreads) {
  const std::vector<ForecastRequest> slate = MixedSlate(9);
  const std::vector<ForecastResponse> unbatched_1 =
      RunEngine(/*batched=*/false, /*threads=*/1, slate);
  const std::vector<ForecastResponse> batched_1 =
      RunEngine(/*batched=*/true, /*threads=*/1, slate);
  const std::vector<ForecastResponse> batched_8 =
      RunEngine(/*batched=*/true, /*threads=*/8, slate);
  ASSERT_EQ(unbatched_1.size(), slate.size());
  for (size_t i = 0; i < slate.size(); ++i) {
    ASSERT_TRUE(unbatched_1[i].ok());
    ASSERT_TRUE(batched_1[i].ok());
    ASSERT_TRUE(batched_8[i].ok());
    ExpectForecastsBitIdentical(unbatched_1[i].forecast,
                                batched_1[i].forecast);
    ExpectForecastsBitIdentical(batched_1[i].forecast, batched_8[i].forecast);
  }
}

TEST(BatchEngineTest, ResponseIndependentOfBatchComposition) {
  // The same (model, input, seed) request must get a bit-identical answer
  // whether it is served alone or embedded in a larger mixed slate.
  const std::vector<ForecastRequest> big = MixedSlate(9);
  const std::vector<ForecastResponse> big_responses =
      RunEngine(/*batched=*/true, /*threads=*/2, big);
  for (size_t i : {0u, 4u, 8u}) {
    const std::vector<ForecastRequest> alone{big[i]};
    const std::vector<ForecastResponse> alone_response =
        RunEngine(/*batched=*/true, /*threads=*/2, alone);
    ASSERT_TRUE(alone_response[0].ok());
    ExpectForecastsBitIdentical(alone_response[0].forecast,
                                big_responses[i].forecast);
  }
}

TEST(BatchEngineTest, PerRequestErrorsDoNotPoisonTheBatch) {
  TestRegistry r = MakeRegistry(1 << 20);
  BatchEngine engine(r.registry.get(), {true, r.metrics.get()});
  std::vector<ForecastRequest> slate = MixedSlate(3);
  slate[1].model = ModelId{"unknown", 1};       // unregistered version
  slate[2].input.context.resize(kContext - 2);  // malformed context
  const std::vector<ForecastResponse> responses = engine.Execute(slate);
  EXPECT_TRUE(responses[0].ok());
  EXPECT_EQ(responses[1].status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(responses[2].ok());
  EXPECT_EQ(r.metrics->GetCounter("serve.engine.request_errors")->value(), 2);
}

// --------------------------------------------------------------- Admission ---

TEST(AdmissionTest, TokenBucketThrottlesAndRecovers) {
  AdmissionController::Options options;
  options.bucket_capacity = 1.0;
  options.refill_per_round = 0.25;
  options.cost_per_request = 1.0;
  auto metrics = std::make_unique<obs::MetricsRegistry>(true);
  options.metrics = metrics.get();
  AdmissionController admission(options, 1);

  admission.BeginRound();
  EXPECT_EQ(admission.AdmitRound({0})[0], AdmissionVerdict::kAdmitted);
  // Bucket empty; 0.25/round refill needs three more rounds.
  for (int round = 0; round < 3; ++round) {
    admission.BeginRound();
    EXPECT_EQ(admission.AdmitRound({0})[0], AdmissionVerdict::kThrottled);
  }
  admission.BeginRound();
  EXPECT_EQ(admission.AdmitRound({0})[0], AdmissionVerdict::kAdmitted);
  EXPECT_EQ(metrics->GetCounter("serve.admission.admitted")->value(), 2);
  EXPECT_EQ(metrics->GetCounter("serve.admission.throttled")->value(), 3);
}

TEST(AdmissionTest, DeadlineShedRotatesFairly) {
  AdmissionController::Options options;
  options.bucket_capacity = 100.0;
  options.refill_per_round = 100.0;
  options.round_budget = 2;
  AdmissionController admission(options, 4);

  std::vector<int> admitted_count(4, 0);
  const std::vector<uint64_t> all{0, 1, 2, 3};
  for (int round = 0; round < 8; ++round) {
    admission.BeginRound();
    const std::vector<AdmissionVerdict> verdicts = admission.AdmitRound(all);
    int admitted = 0;
    for (size_t t = 0; t < all.size(); ++t) {
      if (verdicts[t] == AdmissionVerdict::kAdmitted) {
        ++admitted_count[t];
        ++admitted;
      } else {
        EXPECT_EQ(verdicts[t], AdmissionVerdict::kDeadlineShed);
      }
    }
    EXPECT_EQ(admitted, 2);
  }
  // Rotation shares the budget evenly: 8 rounds x 2 slots / 4 tenants.
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(admitted_count[t], 4) << "tenant " << t;
  }
}

TEST(AdmissionTest, UnboundedBudgetAdmitsAllWithTokens) {
  AdmissionController admission({}, 8);
  admission.BeginRound();
  const std::vector<AdmissionVerdict> verdicts =
      admission.AdmitRound({0, 1, 2, 3, 4, 5, 6, 7});
  for (AdmissionVerdict v : verdicts) {
    EXPECT_EQ(v, AdmissionVerdict::kAdmitted);
  }
}

// ------------------------------------------------------------------- Fleet ---

FleetOptions SmallFleetOptions() {
  FleetOptions options;
  options.num_tenants = 4;
  options.num_steps = 24;
  options.history_steps = 24;
  options.replan_every = 6;
  options.seed = 99;
  options.collect_decisions = true;
  return options;
}

TEST(FleetTest, ServesEveryTenantEveryRound) {
  TestRegistry r = MakeRegistry(1 << 20);
  FleetOptions options = SmallFleetOptions();
  options.metrics = r.metrics.get();
  auto result = RunFleet(r.registry.get(),
                         {{"mlp", 1}, {"deepar", 1}}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rounds, 4u);
  ASSERT_EQ(result->tenants.size(), 4u);
  for (const TenantSummary& tenant : result->tenants) {
    EXPECT_EQ(tenant.rounds, 4u);
    // Every round is served by exactly one disposition.
    EXPECT_EQ(tenant.rounds, tenant.fresh_rounds + tenant.stale_rounds +
                                 tenant.fallback_rounds);
    EXPECT_GE(tenant.mean_utilization, 0.0);
  }
  // One decision record per tenant per step.
  EXPECT_EQ(result->decisions.size(), 4u * 24u);
}

TEST(FleetTest, ResultIdenticalAcrossBatchingModeAndThreadCount) {
  auto run = [](bool batched, int threads) {
    SetRpasThreads(threads);
    TestRegistry r = MakeRegistry(1 << 20);
    FleetOptions options = SmallFleetOptions();
    options.batched = batched;
    options.metrics = r.metrics.get();
    auto result = RunFleet(r.registry.get(),
                           {{"mlp", 1}, {"deepar", 1}}, options);
    SetRpasThreads(0);
    RPAS_CHECK(result.ok());
    return std::move(*result);
  };
  const FleetResult batched_1 = run(true, 1);
  const FleetResult batched_8 = run(true, 8);
  const FleetResult unbatched = run(false, 1);
  for (const FleetResult* other : {&batched_8, &unbatched}) {
    ASSERT_EQ(batched_1.tenants.size(), other->tenants.size());
    for (size_t t = 0; t < batched_1.tenants.size(); ++t) {
      EXPECT_EQ(batched_1.tenants[t].under_provision_rate,
                other->tenants[t].under_provision_rate);
      EXPECT_EQ(batched_1.tenants[t].over_provision_rate,
                other->tenants[t].over_provision_rate);
      EXPECT_EQ(batched_1.tenants[t].mean_utilization,
                other->tenants[t].mean_utilization);
      EXPECT_EQ(batched_1.tenants[t].fresh_rounds,
                other->tenants[t].fresh_rounds);
    }
    ASSERT_EQ(batched_1.decisions.size(), other->decisions.size());
    for (size_t i = 0; i < batched_1.decisions.size(); ++i) {
      EXPECT_EQ(batched_1.decisions[i].target_nodes,
                other->decisions[i].target_nodes);
      EXPECT_EQ(batched_1.decisions[i].workload, other->decisions[i].workload);
      EXPECT_EQ(batched_1.decisions[i].utilization,
                other->decisions[i].utilization);
    }
  }
}

TEST(FleetTest, ShardAssignmentIsStableAndSpreadsTenants) {
  // Pure function of the id: one shard maps everything to 0, and repeated
  // calls agree (a tenant's shard — and so the composition of every
  // per-shard cache — never changes across runs).
  std::vector<size_t> counts(4, 0);
  for (uint64_t t = 0; t < 100; ++t) {
    EXPECT_EQ(ShardOfTenant(t, 1), 0u);
    const size_t shard = ShardOfTenant(t, 4);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, ShardOfTenant(t, 4));
    ++counts[shard];
  }
  // The SplitMix64 finalizer spreads consecutive ids: no empty shards.
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_GT(counts[s], 0u) << "shard " << s;
  }
}

void ExpectSameFleetResult(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.requests_submitted, b.requests_submitted);
  EXPECT_EQ(a.requests_admitted, b.requests_admitted);
  EXPECT_EQ(a.requests_throttled, b.requests_throttled);
  EXPECT_EQ(a.requests_shed, b.requests_shed);
  EXPECT_EQ(a.mean_under_provision_rate, b.mean_under_provision_rate);
  EXPECT_EQ(a.mean_over_provision_rate, b.mean_over_provision_rate);
  EXPECT_EQ(a.mean_utilization, b.mean_utilization);
  EXPECT_EQ(a.mean_slo_violation_rate, b.mean_slo_violation_rate);
  EXPECT_EQ(a.stream_points, b.stream_points);
  EXPECT_EQ(a.stream_dropped, b.stream_dropped);
  EXPECT_EQ(a.mean_staleness_steps, b.mean_staleness_steps);
  EXPECT_EQ(a.max_staleness_steps, b.max_staleness_steps);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (size_t t = 0; t < a.tenants.size(); ++t) {
    SCOPED_TRACE(::testing::Message() << "tenant " << t);
    EXPECT_EQ(a.tenants[t].tenant_id, b.tenants[t].tenant_id);
    EXPECT_EQ(a.tenants[t].under_provision_rate,
              b.tenants[t].under_provision_rate);
    EXPECT_EQ(a.tenants[t].over_provision_rate,
              b.tenants[t].over_provision_rate);
    EXPECT_EQ(a.tenants[t].mean_utilization, b.tenants[t].mean_utilization);
    EXPECT_EQ(a.tenants[t].slo_violation_rate,
              b.tenants[t].slo_violation_rate);
    EXPECT_EQ(a.tenants[t].rounds, b.tenants[t].rounds);
    EXPECT_EQ(a.tenants[t].fresh_rounds, b.tenants[t].fresh_rounds);
    EXPECT_EQ(a.tenants[t].stale_rounds, b.tenants[t].stale_rounds);
    EXPECT_EQ(a.tenants[t].fallback_rounds, b.tenants[t].fallback_rounds);
    EXPECT_EQ(a.tenants[t].shed_rounds, b.tenants[t].shed_rounds);
    EXPECT_EQ(a.tenants[t].throttled_rounds, b.tenants[t].throttled_rounds);
    EXPECT_EQ(a.tenants[t].fault_rounds, b.tenants[t].fault_rounds);
    EXPECT_EQ(a.tenants[t].error_rounds, b.tenants[t].error_rounds);
    EXPECT_EQ(a.tenants[t].faulted_steps, b.tenants[t].faulted_steps);
    EXPECT_EQ(a.tenants[t].stream_points, b.tenants[t].stream_points);
    EXPECT_EQ(a.tenants[t].stream_dropped, b.tenants[t].stream_dropped);
    EXPECT_EQ(a.tenants[t].mean_staleness_steps,
              b.tenants[t].mean_staleness_steps);
    EXPECT_EQ(a.tenants[t].max_staleness_steps,
              b.tenants[t].max_staleness_steps);
  }
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].target_nodes, b.decisions[i].target_nodes);
    EXPECT_EQ(a.decisions[i].workload, b.decisions[i].workload);
    EXPECT_EQ(a.decisions[i].utilization, b.decisions[i].utilization);
  }
}

TEST(FleetTest, ResultIdenticalAcrossShardAndThreadCounts) {
  // Sharding changes scheduling, never results: the deadline shed runs
  // globally over the merged per-shard candidate lists and token buckets
  // are per-tenant, so every (num_shards, threads, registry topology)
  // combination must reproduce the unsharded serial run bit-for-bit. A
  // finite round budget forces sheds every round so the cross-shard
  // admission merge is actually exercised.
  auto run = [](size_t shards, int threads, bool sharded_registries) {
    SetRpasThreads(threads);
    TestRegistry r = MakeRegistry(1 << 20);
    FleetOptions options = SmallFleetOptions();
    options.num_tenants = 6;
    options.admission.round_budget = 4;  // 6 tenants want in: 2 shed
    options.metrics = r.metrics.get();
    options.num_shards = shards;
    if (sharded_registries) {
      obs::MetricsRegistry* metrics = r.metrics.get();
      options.shard_registry_factory = [metrics] {
        ModelRegistry::Options shard_options;
        shard_options.cache_budget_bytes = 1 << 20;
        shard_options.metrics = metrics;
        auto shard = std::make_unique<ModelRegistry>(shard_options);
        RPAS_CHECK(shard
                       ->RegisterVersion({"mlp", 1}, Checkpoints().mlp_path,
                                         MlpFactory())
                       .ok());
        RPAS_CHECK(shard
                       ->RegisterVersion({"deepar", 1},
                                         Checkpoints().deepar_path,
                                         DeepArFactory())
                       .ok());
        return shard;
      };
    }
    auto result = RunFleet(r.registry.get(),
                           {{"mlp", 1}, {"deepar", 1}}, options);
    SetRpasThreads(0);
    RPAS_CHECK(result.ok());
    return std::move(*result);
  };
  const FleetResult baseline = run(1, 1, false);
  EXPECT_GT(baseline.requests_shed, 0u);

  struct Case {
    size_t shards;
    int threads;
    bool sharded_registries;
  };
  for (const Case c : {Case{2, 1, false}, Case{3, 8, false},
                       Case{2, 8, true}, Case{3, 2, true},
                       Case{6, 4, true}}) {
    SCOPED_TRACE(::testing::Message()
                 << "shards=" << c.shards << " threads=" << c.threads
                 << " sharded_registries=" << c.sharded_registries);
    ExpectSameFleetResult(baseline,
                          run(c.shards, c.threads, c.sharded_registries));
  }
}

TEST(FleetTest, DeadlineShedTenantsFallBackAndAreCounted) {
  TestRegistry r = MakeRegistry(1 << 20);
  FleetOptions options = SmallFleetOptions();
  options.metrics = r.metrics.get();
  options.admission.round_budget = 2;  // 4 tenants want in: 2 shed per round
  auto result = RunFleet(r.registry.get(),
                         {{"mlp", 1}, {"deepar", 1}}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->requests_shed, result->rounds * 2);
  size_t total_shed = 0;
  for (const TenantSummary& tenant : result->tenants) {
    total_shed += tenant.shed_rounds;
    // Shed rounds were served by the fallback, never dropped.
    EXPECT_EQ(tenant.rounds, tenant.fresh_rounds + tenant.stale_rounds +
                                 tenant.fallback_rounds);
    EXPECT_GE(tenant.fallback_rounds, tenant.shed_rounds);
  }
  EXPECT_EQ(total_shed, result->requests_shed);
  EXPECT_EQ(r.metrics->GetCounter("serve.admission.shed")->value(),
            static_cast<int64_t>(result->requests_shed));
}

TEST(FleetTest, InjectedFaultsDegradeGracefully) {
  TestRegistry r = MakeRegistry(1 << 20);
  FleetOptions options = SmallFleetOptions();
  options.num_steps = 36;
  options.metrics = r.metrics.get();
  options.faults = simdb::FaultPlan::Uniform(0.3, 77);
  auto result = RunFleet(r.registry.get(),
                         {{"mlp", 1}, {"deepar", 1}}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  size_t fault_rounds = 0;
  size_t faulted_steps = 0;
  for (const TenantSummary& tenant : result->tenants) {
    fault_rounds += tenant.fault_rounds + tenant.stale_rounds;
    faulted_steps += tenant.faulted_steps;
    EXPECT_EQ(tenant.rounds, tenant.fresh_rounds + tenant.stale_rounds +
                                 tenant.fallback_rounds);
  }
  // At a 30% per-type rate some rounds and steps must be affected.
  EXPECT_GT(fault_rounds + faulted_steps, 0u);
}

TEST(FleetTest, StreamIngestAndStalenessAccounted) {
  // Every realized workload observation flows through the tenant's ingest
  // ring and is drained once per round: with the default drop-free ring
  // (2 * replan_every) every tenant streams exactly num_steps points.
  TestRegistry r = MakeRegistry(1 << 20);
  FleetOptions options = SmallFleetOptions();
  options.metrics = r.metrics.get();
  auto result = RunFleet(r.registry.get(),
                         {{"mlp", 1}, {"deepar", 1}}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const TenantSummary& tenant : result->tenants) {
    EXPECT_EQ(tenant.stream_points, options.num_steps);
    EXPECT_EQ(tenant.stream_dropped, 0u);
    // Every round got a fresh plan, so staleness resets each round and is
    // bounded by the round length.
    EXPECT_EQ(tenant.rounds, tenant.fresh_rounds);
    EXPECT_LT(tenant.max_staleness_steps, options.replan_every);
  }
  EXPECT_EQ(result->stream_points,
            static_cast<uint64_t>(options.num_tenants * options.num_steps));
  EXPECT_EQ(result->stream_dropped, 0u);
  // Drop-free rounds of length L have per-step staleness 0..L-1.
  EXPECT_EQ(result->mean_staleness_steps,
            static_cast<double>(options.replan_every - 1) / 2.0);
  // The staleness histogram saw one observation per tenant-step.
  EXPECT_EQ(r.metrics->GetHistogram("serve.stream.staleness_steps")->count(),
            static_cast<uint64_t>(options.num_tenants * options.num_steps));

  // A one-slot ring cannot hold a round's worth of points: the drop-oldest
  // path must engage, and drops are reported per tenant and fleet-wide.
  TestRegistry tiny = MakeRegistry(1 << 20);
  options.metrics = tiny.metrics.get();
  options.stream_ring_capacity = 1;
  auto dropped = RunFleet(tiny.registry.get(),
                          {{"mlp", 1}, {"deepar", 1}}, options);
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  uint64_t total = 0;
  for (const TenantSummary& tenant : dropped->tenants) {
    // A one-slot ring retains only the newest point: each round's poll
    // reads exactly one and misses the rest — every pushed point is
    // accounted as read or missed.
    EXPECT_EQ(tenant.stream_points, dropped->rounds);
    EXPECT_EQ(tenant.stream_points + tenant.stream_dropped,
              options.num_steps);
    total += tenant.stream_dropped;
  }
  EXPECT_EQ(dropped->stream_dropped, total);
  // Provisioning results are untouched by the ring capacity — streaming
  // accounting observes the run, it never alters plans.
  EXPECT_EQ(result->mean_utilization, dropped->mean_utilization);
  EXPECT_EQ(result->mean_under_provision_rate,
            dropped->mean_under_provision_rate);
}

TEST(FleetTest, CacheThrashUnderTightBudgetStillServes) {
  TestRegistry sized = MakeRegistry(1 << 20);
  ASSERT_TRUE(sized.registry->Acquire({"mlp", 1}).ok());
  const size_t one_model = sized.registry->GetCacheStats().resident_bytes;

  TestRegistry tight = MakeRegistry(one_model);
  FleetOptions options = SmallFleetOptions();
  options.batched = false;  // arrival-order serving alternates versions
  options.metrics = tight.metrics.get();
  auto result = RunFleet(tight.registry.get(),
                         {{"mlp", 1}, {"deepar", 1}}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->cache.evictions, 0);
  EXPECT_GT(result->cache.misses, result->cache.hits);
  EXPECT_LE(result->cache.resident_bytes, one_model);
}

TEST(FleetTest, InvalidOptionsRejected) {
  TestRegistry r = MakeRegistry(1 << 20);
  FleetOptions options = SmallFleetOptions();
  options.history_steps = kContext - 1;  // cannot cover the context
  EXPECT_EQ(RunFleet(r.registry.get(), {{"mlp", 1}}, options).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunFleet(r.registry.get(), {}, SmallFleetOptions())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunFleet(nullptr, {{"mlp", 1}}, SmallFleetOptions())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // A shard registry factory that produces no registry is a configuration
  // error, not a crash.
  FleetOptions null_factory = SmallFleetOptions();
  null_factory.num_shards = 2;
  null_factory.shard_registry_factory = [] {
    return std::unique_ptr<ModelRegistry>();
  };
  EXPECT_EQ(RunFleet(r.registry.get(), {{"mlp", 1}}, null_factory)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// -------------------------------------------------- Adaptive selection ---

TEST(FleetSelectionTest, DisabledSelectionIsBitIdenticalAcrossShardsAndThreads) {
  // A fully populated but disabled selection config must leave the fleet
  // byte-for-byte on the pre-selection path at every (shards, threads)
  // combination — the regression gate for the selection_mode=off contract.
  auto run = [](bool populate_selection, size_t shards, int threads) {
    SetRpasThreads(threads);
    TestRegistry r = MakeRegistry(1 << 20);
    FleetOptions options = SmallFleetOptions();
    options.num_tenants = 6;
    options.admission.round_budget = 4;  // force sheds: full merge path
    options.metrics = r.metrics.get();
    options.num_shards = shards;
    if (populate_selection) {
      options.selection.enabled = false;  // populated but OFF
      options.selection.ladder = {{"mlp", 1}, {"deepar", 1}};
      options.selection.selector.wql_bound = 0.01;
      options.selection.prescaler.lead_steps = 1;
    }
    auto result = RunFleet(r.registry.get(),
                           {{"mlp", 1}, {"deepar", 1}}, options);
    SetRpasThreads(0);
    RPAS_CHECK(result.ok());
    return std::move(*result);
  };
  const FleetResult baseline = run(false, 1, 1);
  EXPECT_GT(baseline.requests_shed, 0u);
  struct Case {
    size_t shards;
    int threads;
  };
  for (const Case c : {Case{1, 1}, Case{2, 8}, Case{3, 4}}) {
    SCOPED_TRACE(::testing::Message()
                 << "shards=" << c.shards << " threads=" << c.threads);
    ExpectSameFleetResult(baseline, run(true, c.shards, c.threads));
  }
}

TEST(FleetSelectionTest, SelectionDoesNotPerturbAdmission) {
  // The selector is RNG-free and request seeds derive only from
  // (options.seed, tenant, round), so enabling selection may change which
  // model serves a tenant but never which requests are admitted, throttled,
  // or deadline-shed — the shed rotation must be unperturbed.
  auto run = [](bool enabled) {
    TestRegistry r = MakeRegistry(1 << 20);
    FleetOptions options = SmallFleetOptions();
    options.num_tenants = 6;
    options.num_steps = 48;
    options.admission.round_budget = 4;
    options.metrics = r.metrics.get();
    options.selection.enabled = enabled;
    options.selection.ladder = {{"mlp", 1}, {"deepar", 1}};
    auto result = RunFleet(r.registry.get(),
                           {{"mlp", 1}, {"deepar", 1}}, options);
    RPAS_CHECK(result.ok());
    return std::move(*result);
  };
  const FleetResult off = run(false);
  const FleetResult on = run(true);
  EXPECT_GT(off.requests_shed, 0u);
  EXPECT_EQ(on.requests_submitted, off.requests_submitted);
  EXPECT_EQ(on.requests_admitted, off.requests_admitted);
  EXPECT_EQ(on.requests_throttled, off.requests_throttled);
  EXPECT_EQ(on.requests_shed, off.requests_shed);
  ASSERT_EQ(on.tenants.size(), off.tenants.size());
  for (size_t t = 0; t < on.tenants.size(); ++t) {
    SCOPED_TRACE(::testing::Message() << "tenant " << t);
    EXPECT_EQ(on.tenants[t].shed_rounds, off.tenants[t].shed_rounds);
    EXPECT_EQ(on.tenants[t].throttled_rounds,
              off.tenants[t].throttled_rounds);
  }
}

TEST(FleetSelectionTest, SelectionOutcomeAccountedPerTenantAndFleetWide) {
  TestRegistry r = MakeRegistry(1 << 20);
  FleetOptions options = SmallFleetOptions();
  options.num_steps = 48;
  options.metrics = r.metrics.get();
  options.selection.enabled = true;
  options.selection.ladder = {{"mlp", 1}, {"deepar", 1}};
  auto result = RunFleet(r.registry.get(),
                         {{"mlp", 1}, {"deepar", 1}}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  uint64_t switches = 0;
  uint64_t activations = 0;
  uint64_t rollbacks = 0;
  for (const TenantSummary& tenant : result->tenants) {
    EXPECT_EQ(tenant.selector.rounds, tenant.rounds);
    EXPECT_LT(tenant.final_tier, 2u);
    // Every pre-scale raise rolled back by the end of the run.
    EXPECT_EQ(tenant.prescale.activations, tenant.prescale.rollbacks);
    switches += tenant.selector.switches;
    activations += tenant.prescale.activations;
    rollbacks += tenant.prescale.rollbacks;
  }
  EXPECT_EQ(result->tier_switches, switches);
  EXPECT_EQ(result->prescale_activations, activations);
  EXPECT_EQ(result->prescale_rollbacks, rollbacks);
  EXPECT_EQ(
      r.metrics->GetCounter("serve.select.switches")->value(),
      static_cast<int64_t>(switches));
}

TEST(FleetSelectionTest, SelectionOptionsValidated) {
  TestRegistry r = MakeRegistry(1 << 20);
  // Enabled selection with an empty ladder is a configuration error.
  FleetOptions empty_ladder = SmallFleetOptions();
  empty_ladder.selection.enabled = true;
  EXPECT_EQ(RunFleet(r.registry.get(), {{"mlp", 1}}, empty_ladder)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Selection and incremental refresh are mutually exclusive.
  FleetOptions combo = SmallFleetOptions();
  combo.selection.enabled = true;
  combo.selection.ladder = {{"mlp", 1}};
  combo.refresh_mode = core::RefreshMode::kIncremental;
  combo.refresh_model_factory = [](const ModelId&) {
    return std::unique_ptr<forecast::Forecaster>(
        new MlpForecaster(SmallMlpOptions()));
  };
  EXPECT_EQ(RunFleet(r.registry.get(), {{"mlp", 1}}, combo).status().code(),
            StatusCode::kInvalidArgument);
  // Incremental refresh without a model factory cannot build per-tenant
  // forecasters.
  FleetOptions no_factory = SmallFleetOptions();
  no_factory.refresh_mode = core::RefreshMode::kIncremental;
  EXPECT_EQ(
      RunFleet(r.registry.get(), {{"mlp", 1}}, no_factory).status().code(),
      StatusCode::kInvalidArgument);
}

// ------------------------------------------------- Incremental refresh ---

TEST(FleetRefreshTest, IncrementalModeServesRefreshedModelsNotStaleRegistry) {
  // The PR 8 wiring-gap regression: with refresh_mode=incremental, rounds
  // must be served from each tenant's refreshed private forecaster, so
  // model staleness pins to zero while the batch fleet's registry model
  // ages by replan_every per round.
  auto run = [](core::RefreshMode mode) {
    TestRegistry r = MakeRegistry(1 << 20);
    FleetOptions options = SmallFleetOptions();
    options.metrics = r.metrics.get();
    options.refresh_mode = mode;
    if (mode == core::RefreshMode::kIncremental) {
      options.refresh_model_factory = [](const ModelId& id) {
        RPAS_CHECK(id.name == "mlp");
        return std::unique_ptr<forecast::Forecaster>(
            new MlpForecaster(SmallMlpOptions()));
      };
    }
    auto result = RunFleet(r.registry.get(), {{"mlp", 1}}, options);
    RPAS_CHECK(result.ok()) << result.status().ToString();
    return std::move(*result);
  };
  const FleetResult batch = run(core::RefreshMode::kBatch);
  const FleetResult incremental = run(core::RefreshMode::kIncremental);

  // Batch rounds replan at steps 0, 6, 12, 18 from a frozen registry
  // model: staleness grows linearly. Incremental folds the ring into the
  // tenant's own forecaster at the top of every round: staleness is 0.
  EXPECT_EQ(batch.max_model_staleness_steps, 18u);
  EXPECT_EQ(batch.mean_model_staleness_steps, 9.0);
  EXPECT_EQ(incremental.max_model_staleness_steps, 0u);
  EXPECT_EQ(incremental.mean_model_staleness_steps, 0.0);

  // The refresher actually ran and consumed the streamed points.
  EXPECT_EQ(batch.refresh.refreshes, 0u);
  EXPECT_GT(incremental.refresh.refreshes, 0u);
  EXPECT_GT(incremental.refresh.points_consumed, 0u);

  // Serving really switched source: the per-tenant forecasters (fitted on
  // each tenant's own short history) cannot reproduce the registry model's
  // allocations for every tenant.
  bool any_differs = false;
  ASSERT_EQ(batch.tenants.size(), incremental.tenants.size());
  for (size_t t = 0; t < batch.tenants.size(); ++t) {
    any_differs = any_differs ||
                  batch.tenants[t].mean_utilization !=
                      incremental.tenants[t].mean_utilization;
    // Every round still served, whatever the serving source.
    EXPECT_EQ(incremental.tenants[t].rounds,
              incremental.tenants[t].fresh_rounds +
                  incremental.tenants[t].stale_rounds +
                  incremental.tenants[t].fallback_rounds);
  }
  EXPECT_TRUE(any_differs);
}

TEST(FleetRefreshTest, IncrementalModeIsDeterministicAcrossThreads) {
  auto run = [](int threads) {
    SetRpasThreads(threads);
    TestRegistry r = MakeRegistry(1 << 20);
    FleetOptions options = SmallFleetOptions();
    options.metrics = r.metrics.get();
    options.refresh_mode = core::RefreshMode::kIncremental;
    options.refresh_model_factory = [](const ModelId&) {
      return std::unique_ptr<forecast::Forecaster>(
          new MlpForecaster(SmallMlpOptions()));
    };
    auto result = RunFleet(r.registry.get(), {{"mlp", 1}}, options);
    SetRpasThreads(0);
    RPAS_CHECK(result.ok()) << result.status().ToString();
    return std::move(*result);
  };
  const FleetResult serial = run(1);
  const FleetResult parallel = run(8);
  ExpectSameFleetResult(serial, parallel);
  EXPECT_EQ(serial.refresh.refreshes, parallel.refresh.refreshes);
  EXPECT_EQ(serial.refresh.points_consumed, parallel.refresh.points_consumed);
}

// ----------------------------------------------------- Quantized serving ---

size_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    return 0;
  }
  const std::streamoff size = in.tellg();
  return size > 0 ? static_cast<size_t>(size) : 0;
}

/// rpasq.v1 conversions of the shared trained checkpoints, one pair per
/// storage dtype. Shared /tmp paths are safe for the same reason the text
/// checkpoints are: conversion is deterministic and the writer commits via
/// atomic rename, so concurrent ctest processes always see complete,
/// identical bytes.
struct QuantCheckpoints {
  std::string mlp_q8, deepar_q8;
  std::string mlp_f16, deepar_f16;
};

const QuantCheckpoints& QuantCkpts() {
  static const QuantCheckpoints* paths = [] {
    auto* p = new QuantCheckpoints;
    p->mlp_q8 = "/tmp/rpas_serve_test_mlp_q8.rpasq";
    p->deepar_q8 = "/tmp/rpas_serve_test_deepar_q8.rpasq";
    p->mlp_f16 = "/tmp/rpas_serve_test_mlp_f16.rpasq";
    p->deepar_f16 = "/tmp/rpas_serve_test_deepar_f16.rpasq";
    using tensor::DType;
    RPAS_CHECK(nn::QuantizeCheckpointFile(Checkpoints().mlp_path, p->mlp_q8,
                                          DType::kQ8)
                   .ok());
    RPAS_CHECK(nn::QuantizeCheckpointFile(Checkpoints().deepar_path,
                                          p->deepar_q8, DType::kQ8)
                   .ok());
    RPAS_CHECK(nn::QuantizeCheckpointFile(Checkpoints().mlp_path, p->mlp_f16,
                                          DType::kF16)
                   .ok());
    RPAS_CHECK(nn::QuantizeCheckpointFile(Checkpoints().deepar_path,
                                          p->deepar_f16, DType::kF16)
                   .ok());
    return p;
  }();
  return *paths;
}

/// Like MakeRegistry() but with explicit checkpoint paths, so a test can
/// serve the same architectures from any on-disk format. The default
/// mapped_byte_weight of 1.0 keeps byte-accounting assertions in terms of
/// raw file sizes; pass the weight explicitly to exercise the discounted
/// eviction budget.
TestRegistry MakeRegistryAt(const std::string& mlp_path,
                            const std::string& deepar_path,
                            size_t cache_budget_bytes,
                            double mapped_byte_weight = 1.0) {
  TestRegistry r;
  r.metrics = std::make_unique<obs::MetricsRegistry>(true);
  ModelRegistry::Options options;
  options.cache_budget_bytes = cache_budget_bytes;
  options.mapped_byte_weight = mapped_byte_weight;
  options.metrics = r.metrics.get();
  r.registry = std::make_unique<ModelRegistry>(options);
  RPAS_CHECK(
      r.registry->RegisterVersion({"mlp", 1}, mlp_path, MlpFactory()).ok());
  RPAS_CHECK(r.registry
                 ->RegisterVersion({"deepar", 1}, deepar_path, DeepArFactory())
                 .ok());
  return r;
}

/// Scores a model over a fixed, seeded set of evaluation windows. The
/// window set and the per-window sampling seeds are identical across
/// calls, so any wQL difference between two models is due to their
/// weights alone (for quantized models: the storage dtype).
ts::AccuracyReport EvalWql(const forecast::Forecaster& model) {
  const ts::TimeSeries series = SineSeries(kContext + kHorizon + 60, 4242);
  std::vector<ts::QuantileForecast> forecasts;
  std::vector<std::vector<double>> actuals;
  for (size_t start = 0; start + kContext + kHorizon <= series.size();
       start += 3) {
    ForecastInput input;
    input.start_index = start + kContext;
    input.step_minutes = series.step_minutes;
    input.context.assign(
        series.values.begin() + static_cast<long>(start),
        series.values.begin() + static_cast<long>(start + kContext));
    auto forecast = model.PredictSeeded(input, 1000 + start);
    RPAS_CHECK(forecast.ok()) << forecast.status().ToString();
    forecasts.push_back(*forecast);
    actuals.emplace_back(
        series.values.begin() + static_cast<long>(start + kContext),
        series.values.begin() +
            static_cast<long>(start + kContext + kHorizon));
  }
  return ts::EvaluateForecasts(forecasts, actuals, {0.5, 0.9});
}

double RegistryWql(const std::string& mlp_path,
                   const std::string& deepar_path) {
  TestRegistry r = MakeRegistryAt(mlp_path, deepar_path, 1 << 20);
  double total = 0.0;
  for (const char* name : {"mlp", "deepar"}) {
    auto model = r.registry->Acquire({name, 1});
    RPAS_CHECK(model.ok()) << model.status().ToString();
    total += EvalWql(**model).mean_wql;
  }
  return total / 2.0;
}

// The ISSUE's serving accuracy contract: quantizing the fleet's weights
// must not move wQL by more than 0.5% (int8) / 0.05% (fp16) relative to
// the exact fp64 text checkpoints.
TEST(QuantizedServingTest, WqlDeltaWithinDtypeBounds) {
  const double base =
      RegistryWql(Checkpoints().mlp_path, Checkpoints().deepar_path);
  ASSERT_GT(base, 0.0);
  const double q8 = RegistryWql(QuantCkpts().mlp_q8, QuantCkpts().deepar_q8);
  const double f16 =
      RegistryWql(QuantCkpts().mlp_f16, QuantCkpts().deepar_f16);
  EXPECT_LE(std::fabs(q8 - base) / base, 0.005)
      << "q8 wQL " << q8 << " vs fp64 " << base;
  EXPECT_LE(std::fabs(f16 - base) / base, 0.0005)
      << "f16 wQL " << f16 << " vs fp64 " << base;
}

TEST(QuantizedServingTest, MappedBytesAccountedSeparatelyFromHeap) {
  TestRegistry text = MakeRegistry(1 << 20);
  ASSERT_TRUE(text.registry->Acquire({"mlp", 1}).ok());
  const ModelRegistry::CacheStats text_stats =
      text.registry->GetCacheStats();
  EXPECT_EQ(text_stats.mapped_bytes, 0u);  // text models live on the heap
  EXPECT_EQ(text_stats.heap_bytes, text_stats.resident_bytes);

  TestRegistry quant =
      MakeRegistryAt(QuantCkpts().mlp_q8, QuantCkpts().deepar_q8, 1 << 20);
  ASSERT_TRUE(quant.registry->Acquire({"mlp", 1}).ok());
  ASSERT_TRUE(quant.registry->Acquire({"deepar", 1}).ok());
  const ModelRegistry::CacheStats stats = quant.registry->GetCacheStats();
  EXPECT_GT(stats.mapped_bytes, 0u);
  EXPECT_EQ(stats.mapped_bytes + stats.heap_bytes, stats.resident_bytes);
  EXPECT_EQ(stats.resident_bytes,
            FileBytes(QuantCkpts().mlp_q8) + FileBytes(QuantCkpts().deepar_q8));
  EXPECT_EQ(quant.metrics->GetGauge("serve.registry.mapped_bytes")->value(),
            static_cast<double>(stats.mapped_bytes));
  EXPECT_EQ(quant.metrics->GetGauge("serve.registry.heap_bytes")->value(),
            static_cast<double>(stats.heap_bytes));
}

// Admission and deadline-shed decisions depend on request flow, not on
// forecast values, so swapping the fleet's checkpoints for quantized ones
// must leave every admission outcome unchanged.
TEST(QuantizedServingTest, AdmissionAndShedInvariantAcrossDtypes) {
  FleetOptions options = SmallFleetOptions();
  options.admission.round_budget = 2;  // force sheds every round

  TestRegistry text = MakeRegistry(1 << 20);
  options.metrics = text.metrics.get();
  auto base = RunFleet(text.registry.get(), {{"mlp", 1}, {"deepar", 1}},
                       options);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  TestRegistry quant =
      MakeRegistryAt(QuantCkpts().mlp_q8, QuantCkpts().deepar_q8, 1 << 20);
  options.metrics = quant.metrics.get();
  auto q8 = RunFleet(quant.registry.get(), {{"mlp", 1}, {"deepar", 1}},
                     options);
  ASSERT_TRUE(q8.ok()) << q8.status().ToString();

  EXPECT_EQ(base->requests_admitted, q8->requests_admitted);
  EXPECT_EQ(base->requests_throttled, q8->requests_throttled);
  EXPECT_EQ(base->requests_shed, q8->requests_shed);
  ASSERT_EQ(base->tenants.size(), q8->tenants.size());
  for (size_t i = 0; i < base->tenants.size(); ++i) {
    EXPECT_EQ(base->tenants[i].shed_rounds, q8->tenants[i].shed_rounds)
        << "tenant " << i;
    EXPECT_EQ(base->tenants[i].fallback_rounds,
              q8->tenants[i].fallback_rounds)
        << "tenant " << i;
  }
}

// Regression for the registered-size-goes-stale eviction bug: the byte
// count charged to the cache (and later credited back by eviction) must be
// the size of the file actually loaded, not the size recorded at
// registration time — the file can be atomically replaced in between.
TEST(ModelRegistryTest, CacheChargesLoadedBytesNotRegisteredBytes) {
  const std::string swap = StrFormat("/tmp/rpas_serve_swap_%ld.rpasq",
                                     static_cast<long>(getpid()));
  // Measure the f64 size up front (the budget must be fixed at registry
  // construction), then register while the file holds the smaller q8 form.
  ASSERT_TRUE(nn::QuantizeCheckpointFile(Checkpoints().mlp_path, swap,
                                         tensor::DType::kF64)
                  .ok());
  const size_t f64_bytes = FileBytes(swap);
  ASSERT_TRUE(nn::QuantizeCheckpointFile(Checkpoints().mlp_path, swap,
                                         tensor::DType::kQ8)
                  .ok());
  const size_t q8_bytes = FileBytes(swap);
  ASSERT_GT(f64_bytes, q8_bytes);

  const size_t deepar_bytes = FileBytes(QuantCkpts().deepar_q8);
  TestRegistry r =
      MakeRegistryAt(swap, QuantCkpts().deepar_q8,
                     f64_bytes + deepar_bytes - 1);
  // Grow the file before the first load: the size recorded at registration
  // time (q8_bytes) is now stale.
  ASSERT_TRUE(nn::QuantizeCheckpointFile(Checkpoints().mlp_path, swap,
                                         tensor::DType::kF64)
                  .ok());
  ASSERT_EQ(FileBytes(swap), f64_bytes);

  {
    auto model = r.registry->Acquire({"mlp", 1});
    ASSERT_TRUE(model.ok()) << model.status().ToString();
  }
  EXPECT_EQ(r.registry->GetCacheStats().resident_bytes, f64_bytes);

  // The budget fits the f64 model xor the DeepAR model. Loading DeepAR
  // must evict the swapped model and credit back its *loaded* size: a
  // registry that charged q8_bytes would now report a phantom residue
  // (f64_bytes - q8_bytes) that eventually pins the cache.
  auto deepar = r.registry->Acquire({"deepar", 1});
  ASSERT_TRUE(deepar.ok()) << deepar.status().ToString();
  const ModelRegistry::CacheStats stats = r.registry->GetCacheStats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.resident_bytes, deepar_bytes);
  EXPECT_EQ(stats.mapped_bytes, deepar_bytes);
  EXPECT_EQ(stats.heap_bytes, 0u);
  std::remove(swap.c_str());
}

// The eviction budget is charged in weighted bytes: mapped (page-cache
// backed, kernel-reclaimable) checkpoint bytes cost mapped_byte_weight of
// a heap byte. Under a budget that evicts when every byte costs full
// price, discounted mapped models must both stay resident — and the
// charged_bytes accounting must agree between CacheStats and the gauge.
TEST(ModelRegistryTest, MappedBytesChargedAtDiscountAgainstBudget) {
  const size_t mlp_bytes = FileBytes(QuantCkpts().mlp_q8);
  const size_t deepar_bytes = FileBytes(QuantCkpts().deepar_q8);
  const size_t budget = mlp_bytes + deepar_bytes - 1;
  const double weight = 0.25;

  // Full price: the second load must evict the first.
  TestRegistry full = MakeRegistryAt(QuantCkpts().mlp_q8,
                                     QuantCkpts().deepar_q8, budget,
                                     /*mapped_byte_weight=*/1.0);
  ASSERT_TRUE(full.registry->Acquire({"mlp", 1}).ok());
  ASSERT_TRUE(full.registry->Acquire({"deepar", 1}).ok());
  const ModelRegistry::CacheStats full_stats =
      full.registry->GetCacheStats();
  EXPECT_EQ(full_stats.evictions, 1);
  EXPECT_EQ(full_stats.resident_models, 1u);
  EXPECT_EQ(full_stats.charged_bytes, full_stats.resident_bytes);

  // Discounted: both models fit — the budget bounds charged, not raw,
  // bytes, so resident_bytes may exceed the budget by design.
  TestRegistry disc = MakeRegistryAt(QuantCkpts().mlp_q8,
                                     QuantCkpts().deepar_q8, budget, weight);
  ASSERT_TRUE(disc.registry->Acquire({"mlp", 1}).ok());
  ASSERT_TRUE(disc.registry->Acquire({"deepar", 1}).ok());
  const ModelRegistry::CacheStats stats = disc.registry->GetCacheStats();
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.resident_models, 2u);
  EXPECT_EQ(stats.resident_bytes, mlp_bytes + deepar_bytes);
  const size_t expect_charged =
      static_cast<size_t>(std::llround(mlp_bytes * weight)) +
      static_cast<size_t>(std::llround(deepar_bytes * weight));
  EXPECT_EQ(stats.charged_bytes, expect_charged);
  EXPECT_LE(stats.charged_bytes, budget);
  EXPECT_EQ(disc.metrics->GetGauge("serve.registry.charged_bytes")->value(),
            static_cast<double>(stats.charged_bytes));

  // Eviction credits the weighted charge back: acquiring a third version
  // under a one-model budget leaves charged == the survivor's charge.
  TestRegistry tight = MakeRegistryAt(
      QuantCkpts().mlp_q8, QuantCkpts().deepar_q8,
      static_cast<size_t>(std::llround(deepar_bytes * weight)), weight);
  ASSERT_TRUE(tight.registry->Acquire({"mlp", 1}).ok());
  ASSERT_TRUE(tight.registry->Acquire({"deepar", 1}).ok());
  const ModelRegistry::CacheStats tight_stats =
      tight.registry->GetCacheStats();
  EXPECT_GE(tight_stats.evictions, 1);
  EXPECT_EQ(tight_stats.resident_models, 1u);
  EXPECT_EQ(tight_stats.charged_bytes,
            static_cast<size_t>(std::llround(deepar_bytes * weight)));
}

// A model whose checkpoint vanishes between registration and first load
// must fail with a typed IoError and leave the cache untouched; recreating
// the file heals the version with no re-registration.
TEST(ModelRegistryTest, DeletedCheckpointFailsTypedThenRecovers) {
  const std::string path = StrFormat("/tmp/rpas_serve_gone_%ld.rpasq",
                                     static_cast<long>(getpid()));
  ASSERT_TRUE(nn::QuantizeCheckpointFile(Checkpoints().mlp_path, path,
                                         tensor::DType::kQ8)
                  .ok());
  TestRegistry r = MakeRegistryAt(path, QuantCkpts().deepar_q8, 1 << 20);
  ASSERT_EQ(::unlink(path.c_str()), 0);

  auto missing = r.registry->Acquire({"mlp", 1});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
  const ModelRegistry::CacheStats after_fail = r.registry->GetCacheStats();
  EXPECT_EQ(after_fail.resident_models, 0u);
  EXPECT_EQ(after_fail.resident_bytes, 0u);
  EXPECT_EQ(after_fail.mapped_bytes, 0u);

  ASSERT_TRUE(nn::QuantizeCheckpointFile(Checkpoints().mlp_path, path,
                                         tensor::DType::kQ8)
                  .ok());
  auto healed = r.registry->Acquire({"mlp", 1});
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_TRUE((*healed)->PredictSeeded(MakeInput(0), 1).ok());
  EXPECT_EQ(r.registry->GetCacheStats().resident_models, 1u);
  std::remove(path.c_str());
}

// Race a checkpoint's deletion/atomic replacement against concurrent
// Acquires (run under TSan in CI). Every Acquire must either succeed and
// serve a usable model — mmap keeps the replaced inode's pages valid — or
// fail with a typed IoError while the file is briefly absent.
TEST(ModelRegistryTest, AcquireRacesCheckpointReplacement) {
  const std::string path = StrFormat("/tmp/rpas_serve_race_%ld.rpasq",
                                     static_cast<long>(getpid()));
  ASSERT_TRUE(nn::QuantizeCheckpointFile(Checkpoints().mlp_path, path,
                                         tensor::DType::kQ8)
                  .ok());
  // Budget 0: nothing stays resident, so every Acquire re-opens the file.
  TestRegistry r = MakeRegistryAt(path, QuantCkpts().deepar_q8, 0);

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    for (int i = 0; i < 25; ++i) {
      ::unlink(path.c_str());
      RPAS_CHECK(nn::QuantizeCheckpointFile(Checkpoints().mlp_path, path,
                                            tensor::DType::kQ8)
                     .ok());
      // Leave the file in place long enough for the readers to land some
      // successful loads between replacements.
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  std::atomic<int> served{0};
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load()) {
        auto model = r.registry->Acquire({"mlp", 1});
        if (model.ok()) {
          auto forecast =
              (*model)->PredictSeeded(MakeInput(static_cast<uint64_t>(t)), 1);
          ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
          served.fetch_add(1);
        } else {
          ASSERT_EQ(model.status().code(), StatusCode::kIoError)
              << model.status().ToString();
        }
      }
    });
  }
  mutator.join();
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_GT(served.load(), 0);
  auto final_model = r.registry->Acquire({"mlp", 1});
  EXPECT_TRUE(final_model.ok()) << final_model.status().ToString();
  std::remove(path.c_str());
}

// ------------------------------------------------- Snapshot concurrency ---

// The headline property of the snapshot registry: once a version is warm,
// Acquire() never takes a mutex. MutexAcquisitions() counts every registry
// mutex and per-version latch acquisition, so the probe catches any lock
// sneaking back onto the hit path.
TEST(ModelRegistryTest, WarmHitAcquireTakesNoMutex) {
  TestRegistry r = MakeRegistry(1 << 20);
  ASSERT_TRUE(r.registry->Acquire({"mlp", 1}).ok());

  const uint64_t locks_after_load = r.registry->MutexAcquisitions();
  ASSERT_GT(locks_after_load, 0u);  // the cold load itself took locks
  constexpr int kWarmHits = 200;
  for (int i = 0; i < kWarmHits; ++i) {
    auto model = r.registry->Acquire({"mlp", 1});
    ASSERT_TRUE(model.ok());
  }
  EXPECT_EQ(r.registry->MutexAcquisitions(), locks_after_load);

  const ModelRegistry::CacheStats stats = r.registry->GetCacheStats();
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kWarmHits));
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.loads, 1u);
}

// Concurrent Acquires of one cold version collapse onto a single load via
// the per-version latch: exactly one thread loads, the riders block on the
// latch and count as hits (they are served from cache, just a cache that
// was filled microseconds ago). loads == misses stays an invariant.
TEST(ModelRegistryTest, LatchCollapsesConcurrentColdLoads) {
  TestRegistry r = MakeRegistry(1 << 20);
  constexpr int kThreads = 4;
  std::vector<std::shared_ptr<const forecast::Forecaster>> models(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      auto model = r.registry->Acquire({"mlp", 1});
      ASSERT_TRUE(model.ok()) << model.status().ToString();
      models[static_cast<size_t>(t)] = *model;
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(models[static_cast<size_t>(t)].get(), models[0].get());
  }
  const ModelRegistry::CacheStats stats = r.registry->GetCacheStats();
  EXPECT_EQ(stats.loads, stats.misses);
  EXPECT_EQ(stats.hits + stats.misses, static_cast<uint64_t>(kThreads));
  EXPECT_GE(stats.loads, 1u);
  // Whatever interleaving happened, at most one thread can have loaded:
  // the latch serializes same-version loads and the re-check under the
  // latch turns every rider into a hit.
  EXPECT_EQ(stats.loads, 1u);
}

// Readers racing version registration, eviction churn, and cold loads (run
// under TSan in CI). A tight budget forces the mlp/deepar alternation to
// evict continuously while a mutator registers fresh versions; every
// Acquire must succeed and the hit/miss/load ledger must stay consistent.
TEST(ModelRegistryTest, ReadersRaceRegistrationAndEviction) {
  // Budget fits roughly one model, so concurrent Acquires of two models
  // keep the eviction path hot.
  TestRegistry r = MakeRegistry(10000);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> acquires{0};

  std::thread mutator([&] {
    for (uint32_t v = 2; v <= 20; ++v) {
      ASSERT_TRUE(r.registry
                      ->RegisterVersion({"mlp", v}, Checkpoints().mlp_path,
                                        MlpFactory())
                      .ok());
      ASSERT_TRUE(r.registry->Acquire({"mlp", v}).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load()) {
        const ModelId id = (t + i) % 2 == 0 ? ModelId{"mlp", 1}
                                            : ModelId{"deepar", 1};
        auto model = r.registry->Acquire(id);
        ASSERT_TRUE(model.ok()) << model.status().ToString();
        acquires.fetch_add(1);
        ++i;
        // Latest() and NumRegistered() are lock-free snapshot reads; mix
        // them in so TSan sees them racing the mutator's republishes.
        ASSERT_TRUE(r.registry->Latest("mlp").ok());
        ASSERT_GE(r.registry->NumRegistered(), 2u);
      }
    });
  }
  mutator.join();
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_GT(acquires.load(), 0u);
  const ModelRegistry::CacheStats stats = r.registry->GetCacheStats();
  EXPECT_EQ(stats.loads, stats.misses);
  // 19 mutator acquires + everything the readers did.
  EXPECT_EQ(stats.hits + stats.misses, acquires.load() + 19u);
  EXPECT_GT(stats.evictions, 0u);
}

}  // namespace
}  // namespace rpas::serve
