#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "forecast/arima.h"
#include "forecast/deepar.h"
#include "forecast/forecaster.h"
#include "forecast/mlp.h"
#include "forecast/qb5000.h"
#include "forecast/seasonal_naive.h"
#include "forecast/tft.h"
#include "forecast/time_features.h"
#include "ts/metrics.h"

namespace rpas::forecast {
namespace {

constexpr size_t kDay = 144;  // steps per day at 10-minute interval

/// Noisy daily sinusoid: the canonical easy workload.
ts::TimeSeries SineSeries(size_t num_steps, double noise, uint64_t seed) {
  ts::TimeSeries s;
  s.step_minutes = 10.0;
  s.name = "sine";
  Rng rng(seed);
  for (size_t i = 0; i < num_steps; ++i) {
    const double phase = 2.0 * M_PI * static_cast<double>(i % kDay) /
                         static_cast<double>(kDay);
    s.values.push_back(10.0 + 4.0 * std::sin(phase) +
                       noise * rng.Normal());
  }
  return s;
}

ForecastInput InputFromTail(const ts::TimeSeries& s, size_t context) {
  ForecastInput input;
  input.start_index = s.size() - context;
  input.step_minutes = s.step_minutes;
  input.context.assign(s.values.end() - static_cast<long>(context),
                       s.values.end());
  return input;
}

void ExpectQuantilesMonotone(const ts::QuantileForecast& fc) {
  for (size_t h = 0; h < fc.Horizon(); ++h) {
    for (size_t q = 1; q < fc.Levels().size(); ++q) {
      EXPECT_GE(fc.ValueAtIndex(h, q), fc.ValueAtIndex(h, q - 1))
          << "crossing quantiles at step " << h;
    }
  }
}

// ------------------------------------------------------------ TimeFeatures ---

TEST(TimeFeaturesTest, UnitCircle) {
  for (size_t i : {0u, 17u, 100u, 1000u}) {
    const auto tf = TimeFeatures(i, 10.0);
    EXPECT_NEAR(tf[0] * tf[0] + tf[1] * tf[1], 1.0, 1e-12);
    EXPECT_NEAR(tf[2] * tf[2] + tf[3] * tf[3], 1.0, 1e-12);
  }
}

TEST(TimeFeaturesTest, DailyPeriodicity) {
  const auto a = TimeFeatures(5, 10.0);
  const auto b = TimeFeatures(5 + kDay, 10.0);  // one day later
  EXPECT_NEAR(a[0], b[0], 1e-9);
  EXPECT_NEAR(a[1], b[1], 1e-9);
}

TEST(TimeFeaturesTest, WeeklyPeriodicity) {
  const auto a = TimeFeatures(3, 10.0);
  const auto b = TimeFeatures(3 + 7 * kDay, 10.0);
  EXPECT_NEAR(a[2], b[2], 1e-9);
  EXPECT_NEAR(a[3], b[3], 1e-9);
}

TEST(TimeFeaturesTest, MidDayDiffersFromMidnight) {
  const auto midnight = TimeFeatures(0, 10.0);
  const auto noon = TimeFeatures(kDay / 2, 10.0);
  EXPECT_GT(std::fabs(midnight[1] - noon[1]), 1.0);
}

// ----------------------------------------------------------- SeasonalNaive ---

TEST(SeasonalNaiveTest, ExactOnPureSeasonalSeries) {
  ts::TimeSeries s = SineSeries(6 * kDay, /*noise=*/0.0, 1);
  SeasonalNaiveForecaster::Options options;
  options.context_length = kDay;
  options.horizon = 36;
  options.season = kDay;
  SeasonalNaiveForecaster model(options);
  ASSERT_TRUE(model.Fit(s.Slice(0, 4 * kDay)).ok());

  ForecastInput input = InputFromTail(s.Slice(0, 5 * kDay), kDay);
  auto fc = model.Predict(input);
  ASSERT_TRUE(fc.ok());
  for (size_t h = 0; h < 36; ++h) {
    EXPECT_NEAR(fc->Value(h, 0.5), s.values[5 * kDay + h], 1e-6);
  }
}

TEST(SeasonalNaiveTest, RequiresFit) {
  SeasonalNaiveForecaster model({});
  ForecastInput input;
  input.context.assign(72, 1.0);
  EXPECT_EQ(model.Predict(input).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SeasonalNaiveTest, NoisierSeriesWiderIntervals) {
  auto fit_width = [](double noise) {
    ts::TimeSeries s = SineSeries(5 * kDay, noise, 2);
    SeasonalNaiveForecaster::Options options;
    options.context_length = kDay;
    options.horizon = 12;
    options.season = kDay;
    SeasonalNaiveForecaster model(options);
    EXPECT_TRUE(model.Fit(s.Slice(0, 4 * kDay)).ok());
    ForecastInput input;
    input.start_index = 4 * kDay - kDay;
    input.step_minutes = 10.0;
    input.context.assign(
        s.values.begin() + static_cast<long>(4 * kDay - kDay),
        s.values.begin() + static_cast<long>(4 * kDay));
    auto fc = model.Predict(input);
    EXPECT_TRUE(fc.ok());
    return fc->Value(0, 0.9) - fc->Value(0, 0.1);
  };
  EXPECT_GT(fit_width(2.0), fit_width(0.2));
}

// ------------------------------------------------------------------ ARIMA ---

TEST(ArimaTest, RecoversAr2Coefficients) {
  // Simulate a stationary AR(2): x_t = 0.6 x_{t-1} - 0.2 x_{t-2} + e.
  Rng rng(3);
  std::vector<double> x = {0.0, 0.0};
  for (int t = 2; t < 6000; ++t) {
    x.push_back(0.6 * x[t - 1] - 0.2 * x[t - 2] + rng.Normal());
  }
  ts::TimeSeries s;
  s.values = x;
  ArimaForecaster::Options options;
  options.p = 2;
  options.d = 0;
  options.q = 0;
  options.context_length = 48;
  options.horizon = 8;
  ArimaForecaster model(options);
  ASSERT_TRUE(model.Fit(s).ok());
  ASSERT_EQ(model.phi().size(), 2u);
  EXPECT_NEAR(model.phi()[0], 0.6, 0.05);
  EXPECT_NEAR(model.phi()[1], -0.2, 0.05);
  EXPECT_NEAR(model.sigma2(), 1.0, 0.1);
}

TEST(ArimaTest, IntervalsWidenWithHorizon) {
  ts::TimeSeries s = SineSeries(5 * kDay, 1.0, 4);
  ArimaForecaster::Options options;
  options.context_length = 72;
  options.horizon = 36;
  ArimaForecaster model(options);
  ASSERT_TRUE(model.Fit(s.Slice(0, 4 * kDay)).ok());
  auto fc = model.Predict(InputFromTail(s, 72));
  ASSERT_TRUE(fc.ok());
  const double early = fc->Value(0, 0.9) - fc->Value(0, 0.1);
  const double late = fc->Value(35, 0.9) - fc->Value(35, 0.1);
  EXPECT_GT(late, early);
  ExpectQuantilesMonotone(*fc);
}

TEST(ArimaTest, DifferencedModelTracksTrend) {
  // Linear trend + noise; with d=1 the forecast should keep climbing.
  Rng rng(5);
  ts::TimeSeries s;
  for (int t = 0; t < 2000; ++t) {
    s.values.push_back(0.05 * t + 0.3 * rng.Normal());
  }
  ArimaForecaster::Options options;
  options.p = 2;
  options.d = 1;
  options.q = 1;
  options.context_length = 72;
  options.horizon = 24;
  ArimaForecaster model(options);
  ASSERT_TRUE(model.Fit(s.Slice(0, 1800)).ok());
  auto fc = model.Predict(InputFromTail(s, 72));
  ASSERT_TRUE(fc.ok());
  const auto median = fc->Median();
  const double last = s.values.back();
  EXPECT_GT(median[23], last);  // trend continues upward
  // Roughly the right slope over 24 steps: 24*0.05 = 1.2.
  EXPECT_NEAR(median[23] - last, 1.2, 0.8);
}

TEST(ArimaTest, RequiresFitBeforePredict) {
  ArimaForecaster model({});
  ForecastInput input;
  input.context.assign(72, 1.0);
  EXPECT_EQ(model.Predict(input).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ArimaTest, RejectsTooShortTrainingSeries) {
  ts::TimeSeries tiny;
  tiny.values.assign(20, 1.0);
  ArimaForecaster model({});
  EXPECT_EQ(model.Fit(tiny).code(), StatusCode::kInvalidArgument);
}

TEST(ArimaTest, GaussianCoverageApproximatelyCalibrated) {
  // Pure white noise around a level: ARIMA(1,0,1) intervals should cover
  // roughly the right fraction one step ahead.
  Rng rng(6);
  ts::TimeSeries s;
  for (int t = 0; t < 4000; ++t) {
    s.values.push_back(10.0 + rng.Normal());
  }
  ArimaForecaster::Options options;
  options.p = 1;
  options.d = 0;
  options.q = 1;
  options.context_length = 48;
  options.horizon = 1;
  ArimaForecaster model(options);
  auto [train, test] = s.SplitTail(500);
  ASSERT_TRUE(model.Fit(train).ok());
  auto rolled = RollForecasts(model, train, test, /*stride=*/1);
  ASSERT_TRUE(rolled.ok());
  auto report = ts::EvaluateForecasts(rolled->forecasts, rolled->actuals,
                                      {0.1, 0.5, 0.9});
  EXPECT_NEAR(report.coverage.at(0.9), 0.9, 0.05);
  EXPECT_NEAR(report.coverage.at(0.1), 0.1, 0.05);
  EXPECT_NEAR(report.coverage.at(0.5), 0.5, 0.06);
}

TEST(SarimaTest, SeasonalDifferencingTracksTheCycle) {
  // A strongly seasonal series over a 72-step horizon: SARIMA-lite
  // (seasonal_d=1) must beat the plain ARIMA(3,1,2) materially.
  ts::TimeSeries s = SineSeries(8 * kDay, /*noise=*/0.4, 20);
  auto [train, test] = s.SplitTail(kDay);

  auto evaluate = [&](int seasonal_d) {
    ArimaForecaster::Options options;
    options.p = 3;
    options.d = seasonal_d == 1 ? 0 : 1;
    options.q = 2;
    options.seasonal_d = seasonal_d;
    options.season = kDay;
    options.context_length = 2 * kDay;  // two full seasons of context
    options.horizon = 72;
    ArimaForecaster model(options);
    EXPECT_TRUE(model.Fit(train).ok());
    auto rolled = RollForecasts(model, train, test, 72);
    EXPECT_TRUE(rolled.ok());
    auto report =
        ts::EvaluateForecasts(rolled->forecasts, rolled->actuals, {0.5});
    return report.mse;
  };
  const double plain = evaluate(0);
  const double seasonal = evaluate(1);
  EXPECT_LT(seasonal, 0.5 * plain);
  EXPECT_LT(seasonal, 1.0);  // near the noise floor (0.4^2 = 0.16)
}

TEST(SarimaTest, SeasonalPredictionQuantilesMonotone) {
  ts::TimeSeries s = SineSeries(8 * kDay, 0.4, 21);
  ArimaForecaster::Options options;
  options.p = 2;
  options.d = 0;
  options.q = 1;
  options.seasonal_d = 1;
  options.season = kDay;
  options.context_length = 2 * kDay;
  options.horizon = 36;
  ArimaForecaster model(options);
  ASSERT_TRUE(model.Fit(s.Slice(0, 7 * kDay)).ok());
  auto fc = model.Predict(InputFromTail(s, 2 * kDay));
  ASSERT_TRUE(fc.ok());
  ExpectQuantilesMonotone(*fc);
}

TEST(SarimaTest, RejectsContextShorterThanSeason) {
  ts::TimeSeries s = SineSeries(8 * kDay, 0.4, 22);
  ArimaForecaster::Options options;
  options.seasonal_d = 1;
  options.season = kDay;
  options.context_length = 2 * kDay;
  options.horizon = 12;
  ArimaForecaster model(options);
  ASSERT_TRUE(model.Fit(s.Slice(0, 7 * kDay)).ok());
  ForecastInput input;
  input.context.assign(kDay / 2, 1.0);  // shorter than one season
  EXPECT_FALSE(model.Predict(input).ok());
}

// -------------------------------------------------------------------- MLP ---

class MlpFixture : public ::testing::Test {
 protected:
  static constexpr size_t kContext = 36;
  static constexpr size_t kHorizon = 12;

  void SetUp() override {
    series_ = SineSeries(5 * kDay, /*noise=*/0.3, 7);
    MlpForecaster::Options options;
    options.context_length = kContext;
    options.horizon = kHorizon;
    options.hidden_dim = 32;
    options.batch_size = 32;
    options.train.steps = 250;
    options.train.lr = 2e-3;
    model_ = std::make_unique<MlpForecaster>(options);
    auto [train, test] = series_.SplitTail(kDay);
    train_ = train;
    test_ = test;
    ASSERT_TRUE(model_->Fit(train_).ok());
  }

  ts::TimeSeries series_;
  ts::TimeSeries train_;
  ts::TimeSeries test_;
  std::unique_ptr<MlpForecaster> model_;
};

TEST_F(MlpFixture, LearnsSinusoidReasonably) {
  auto rolled = RollForecasts(*model_, train_, test_, /*stride=*/kHorizon);
  ASSERT_TRUE(rolled.ok());
  auto report = ts::EvaluateForecasts(rolled->forecasts, rolled->actuals,
                                      {0.5});
  // Series mean 10, amplitude 4; an untrained predictor would have MSE ~ 8.
  EXPECT_LT(report.mse, 3.0);
}

TEST_F(MlpFixture, QuantilesMonotoneAndFiniteEverywhere) {
  auto fc = model_->Predict(InputFromTail(train_, kContext));
  ASSERT_TRUE(fc.ok());
  ExpectQuantilesMonotone(*fc);
  for (size_t h = 0; h < fc->Horizon(); ++h) {
    for (size_t q = 0; q < fc->Levels().size(); ++q) {
      EXPECT_TRUE(std::isfinite(fc->ValueAtIndex(h, q)));
    }
  }
}

TEST_F(MlpFixture, PredictRejectsWrongContextLength) {
  ForecastInput input;
  input.context.assign(5, 1.0);
  EXPECT_EQ(model_->Predict(input).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MlpFixture, DistributionSigmaPositive) {
  auto dist = model_->PredictDistribution(InputFromTail(train_, kContext));
  ASSERT_TRUE(dist.ok());
  for (double sd : dist->stddev) {
    EXPECT_GT(sd, 0.0);
  }
}

// ----------------------------------------------------------------- DeepAR ---

class DeepArFixture : public ::testing::Test {
 protected:
  static constexpr size_t kContext = 36;
  static constexpr size_t kHorizon = 12;

  void SetUp() override {
    series_ = SineSeries(4 * kDay, /*noise=*/0.3, 8);
    DeepArForecaster::Options options;
    options.context_length = kContext;
    options.horizon = kHorizon;
    options.hidden_dim = 16;
    options.batch_size = 8;
    options.num_samples = 60;
    options.train.steps = 120;
    options.train.lr = 5e-3;
    model_ = std::make_unique<DeepArForecaster>(options);
    auto [train, test] = series_.SplitTail(kDay);
    train_ = train;
    test_ = test;
    ASSERT_TRUE(model_->Fit(train_).ok());
  }

  ts::TimeSeries series_;
  ts::TimeSeries train_;
  ts::TimeSeries test_;
  std::unique_ptr<DeepArForecaster> model_;
};

TEST_F(DeepArFixture, TracksSinusoidBetterThanConstant) {
  auto rolled = RollForecasts(*model_, train_, test_, /*stride=*/kHorizon);
  ASSERT_TRUE(rolled.ok());
  auto report =
      ts::EvaluateForecasts(rolled->forecasts, rolled->actuals, {0.5});
  // Variance of the signal is 4^2/2 = 8; the model must beat a constant.
  EXPECT_LT(report.mse, 6.0);
}

TEST_F(DeepArFixture, QuantilesMonotone) {
  auto fc = model_->Predict(InputFromTail(train_, kContext));
  ASSERT_TRUE(fc.ok());
  ExpectQuantilesMonotone(*fc);
}

TEST_F(DeepArFixture, SampleTrajectoriesShape) {
  auto trajectories =
      model_->SampleTrajectories(InputFromTail(train_, kContext), 17);
  ASSERT_TRUE(trajectories.ok());
  EXPECT_EQ(trajectories->size(), 17u);
  EXPECT_EQ((*trajectories)[0].size(), kHorizon);
}

TEST_F(DeepArFixture, SamplingSpreadGrowsWithHorizon) {
  // Ancestral sampling accumulates error: later steps spread at least as
  // wide as the first step (paper Fig. 8 rationale).
  auto fc = model_->Predict(InputFromTail(train_, kContext));
  ASSERT_TRUE(fc.ok());
  const double first = fc->Value(0, 0.9) - fc->Value(0, 0.1);
  const double last =
      fc->Value(kHorizon - 1, 0.9) - fc->Value(kHorizon - 1, 0.1);
  EXPECT_GT(last, 0.3 * first);  // must not collapse
}

TEST_F(DeepArFixture, RequiresFitBeforePredict) {
  DeepArForecaster fresh(DeepArForecaster::Options{});
  ForecastInput input;
  input.context.assign(72, 1.0);
  EXPECT_EQ(fresh.Predict(input).status().code(),
            StatusCode::kFailedPrecondition);
}

// -------------------------------------------------------------------- TFT ---

class TftFixture : public ::testing::Test {
 protected:
  static constexpr size_t kContext = 36;
  static constexpr size_t kHorizon = 12;

  void SetUp() override {
    series_ = SineSeries(4 * kDay, /*noise=*/0.3, 9);
    TftForecaster::Options options;
    options.context_length = kContext;
    options.horizon = kHorizon;
    options.d_model = 8;
    options.num_heads = 2;
    options.batch_size = 2;
    options.train.steps = 150;
    options.train.lr = 5e-3;
    options.levels = {0.1, 0.5, 0.9};
    model_ = std::make_unique<TftForecaster>(options);
    auto [train, test] = series_.SplitTail(kDay);
    train_ = train;
    test_ = test;
    ASSERT_TRUE(model_->Fit(train_).ok());
  }

  ts::TimeSeries series_;
  ts::TimeSeries train_;
  ts::TimeSeries test_;
  std::unique_ptr<TftForecaster> model_;
};

TEST_F(TftFixture, LearnsSinusoidReasonably) {
  auto rolled = RollForecasts(*model_, train_, test_, /*stride=*/kHorizon);
  ASSERT_TRUE(rolled.ok());
  auto report =
      ts::EvaluateForecasts(rolled->forecasts, rolled->actuals, {0.5});
  EXPECT_LT(report.mse, 6.0);
}

TEST_F(TftFixture, QuantilesMonotoneAfterSorting) {
  auto fc = model_->Predict(InputFromTail(train_, kContext));
  ASSERT_TRUE(fc.ok());
  ExpectQuantilesMonotone(*fc);
}

TEST_F(TftFixture, UpperQuantileAboveLower) {
  // The pinball loss pushes the 0.9 head above the 0.1 head on average.
  auto rolled = RollForecasts(*model_, train_, test_, /*stride=*/kHorizon);
  ASSERT_TRUE(rolled.ok());
  double spread = 0.0;
  size_t n = 0;
  for (const auto& fc : rolled->forecasts) {
    for (size_t h = 0; h < fc.Horizon(); ++h) {
      spread += fc.Value(h, 0.9) - fc.Value(h, 0.1);
      ++n;
    }
  }
  EXPECT_GT(spread / static_cast<double>(n), 0.05);
}

TEST(TftPointTest, SingleLevelActsAsPointForecaster) {
  ts::TimeSeries series = SineSeries(3 * kDay, 0.3, 10);
  TftForecaster::Options options;
  options.context_length = 36;
  options.horizon = 12;
  options.d_model = 8;
  options.num_heads = 2;
  options.batch_size = 2;
  options.train.steps = 60;
  options.levels = {0.5};
  options.name = "TFT-point";
  TftForecaster model(options);
  ASSERT_TRUE(model.Fit(series).ok());
  EXPECT_EQ(model.Name(), "TFT-point");
  auto fc = model.Predict(InputFromTail(series, 36));
  ASSERT_TRUE(fc.ok());
  EXPECT_EQ(fc->Levels().size(), 1u);
  auto point = model.PredictPoint(InputFromTail(series, 36));
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->size(), 12u);
}

// ----------------------------------------------------------------- QB5000 ---

class Qb5000Fixture : public ::testing::Test {
 protected:
  static constexpr size_t kContext = 36;
  static constexpr size_t kHorizon = 12;

  void SetUp() override {
    series_ = SineSeries(4 * kDay, /*noise=*/0.3, 11);
    Qb5000Forecaster::Options options;
    options.context_length = kContext;
    options.horizon = kHorizon;
    options.lstm_hidden = 12;
    options.batch_size = 8;
    options.train.steps = 80;
    options.train.lr = 5e-3;
    options.max_kernel_windows = 128;
    model_ = std::make_unique<Qb5000Forecaster>(options);
    auto [train, test] = series_.SplitTail(kDay);
    train_ = train;
    test_ = test;
    ASSERT_TRUE(model_->Fit(train_).ok());
  }

  ts::TimeSeries series_;
  ts::TimeSeries train_;
  ts::TimeSeries test_;
  std::unique_ptr<Qb5000Forecaster> model_;
};

TEST_F(Qb5000Fixture, EnsembleIsMeanOfComponents) {
  ForecastInput input = InputFromTail(train_, kContext);
  auto lr = model_->PredictLinear(input);
  auto lstm = model_->PredictLstm(input);
  auto kernel = model_->PredictKernel(input);
  auto ensemble = model_->PredictPoint(input);
  ASSERT_TRUE(lr.ok() && lstm.ok() && kernel.ok() && ensemble.ok());
  for (size_t h = 0; h < kHorizon; ++h) {
    EXPECT_NEAR((*ensemble)[h],
                ((*lr)[h] + (*lstm)[h] + (*kernel)[h]) / 3.0, 1e-9);
  }
}

TEST_F(Qb5000Fixture, PointForecastReasonable) {
  auto rolled = RollForecasts(*model_, train_, test_, /*stride=*/kHorizon);
  ASSERT_TRUE(rolled.ok());
  auto report =
      ts::EvaluateForecasts(rolled->forecasts, rolled->actuals, {0.5});
  EXPECT_LT(report.mse, 4.0);
}

TEST_F(Qb5000Fixture, PredictExposesSingleLevel) {
  auto fc = model_->Predict(InputFromTail(train_, kContext));
  ASSERT_TRUE(fc.ok());
  EXPECT_EQ(fc->Levels(), (std::vector<double>{0.5}));
}

TEST_F(Qb5000Fixture, KernelComponentInterpolatesTrainingData) {
  // On an exact repeat of a training context, kernel regression must be
  // close to the matching future.
  ForecastInput input;
  input.start_index = kDay;  // aligned with training data
  input.step_minutes = 10.0;
  input.context.assign(
      train_.values.begin() + static_cast<long>(kDay),
      train_.values.begin() + static_cast<long>(kDay + kContext));
  auto kernel = model_->PredictKernel(input);
  ASSERT_TRUE(kernel.ok());
  for (size_t h = 0; h < 3; ++h) {
    EXPECT_NEAR((*kernel)[h], train_.values[kDay + kContext + h], 2.5);
  }
}

// ----------------------------------------------------------- RollForecasts ---

TEST(RollForecastsTest, AlignsActualsWithForecasts) {
  ts::TimeSeries s = SineSeries(6 * kDay, 0.0, 12);
  SeasonalNaiveForecaster::Options options;
  options.context_length = kDay;
  options.horizon = 24;
  options.season = kDay;
  SeasonalNaiveForecaster model(options);
  auto [train, test] = s.SplitTail(kDay);
  ASSERT_TRUE(model.Fit(train).ok());
  auto rolled = RollForecasts(model, train, test, /*stride=*/24);
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(rolled->forecasts.size(), rolled->actuals.size());
  EXPECT_EQ(rolled->forecasts.size(), kDay / 24);
  // Noiseless seasonal data: median forecast equals the actual.
  for (size_t i = 0; i < rolled->forecasts.size(); ++i) {
    for (size_t h = 0; h < 24; ++h) {
      EXPECT_NEAR(rolled->forecasts[i].Value(h, 0.5),
                  rolled->actuals[i][h], 1e-6);
    }
  }
}

TEST(RollForecastsTest, RejectsShortHistory) {
  ts::TimeSeries s = SineSeries(2 * kDay, 0.0, 13);
  SeasonalNaiveForecaster::Options options;
  options.context_length = kDay;
  options.horizon = 24;
  options.season = kDay;
  SeasonalNaiveForecaster model(options);
  ASSERT_TRUE(model.Fit(s).ok());
  ts::TimeSeries tiny = s.Slice(0, 10);
  EXPECT_FALSE(RollForecasts(model, tiny, s, 24).ok());
}

TEST(RollForecastsTest, RejectsZeroStride) {
  ts::TimeSeries s = SineSeries(2 * kDay, 0.0, 14);
  SeasonalNaiveForecaster::Options options;
  options.season = kDay;
  SeasonalNaiveForecaster model(options);
  ASSERT_TRUE(model.Fit(s).ok());
  EXPECT_FALSE(RollForecasts(model, s, s, 0).ok());
}

}  // namespace
}  // namespace rpas::forecast
