// Tests for the rpas_obs observability subsystem: metrics registry
// (including concurrent mutation and the disabled fast path), histogram
// quantiles, scoped span tracing on pool workers, the bounded trace
// buffer, and the deterministic-export contract — byte-identical JSONL
// for the same seeds at RPAS_NUM_THREADS=1 vs 4, and exact agreement
// between OnlineLoopResult fault counters and the registry.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/manager.h"
#include "core/online_loop.h"
#include "core/strategies.h"
#include "forecast/backtest.h"
#include "forecast/mlp.h"
#include "forecast/seasonal_naive.h"
#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "trace/generator.h"

namespace rpas::obs {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterGaugeHistogramBasics) {
  MetricsRegistry registry(/*enabled=*/true);
  Counter* counter = registry.GetCounter("c");
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42);

  Gauge* gauge = registry.GetGauge("g");
  gauge->Set(3.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 3.5);
  gauge->Max(2.0);  // no-op: below current
  EXPECT_DOUBLE_EQ(gauge->value(), 3.5);
  gauge->Max(7.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 7.0);

  Histogram* hist = registry.GetHistogram("h");
  hist->Observe(0.5);
  hist->Observe(2.0);
  EXPECT_EQ(hist->count(), 2u);
  EXPECT_DOUBLE_EQ(hist->min(), 0.5);
  EXPECT_DOUBLE_EQ(hist->max(), 2.0);
  EXPECT_DOUBLE_EQ(hist->sum(), 2.5);
}

TEST(MetricsRegistryTest, HandlesAreStableAcrossLookups) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("x"), registry.GetCounter("x"));
  EXPECT_EQ(registry.GetGauge("x"), registry.GetGauge("x"));
  EXPECT_EQ(registry.GetHistogram("x"), registry.GetHistogram("x"));
  // The first registration fixes the determinism flag; later calls with a
  // different flag return the existing instrument unchanged.
  Counter* det = registry.GetCounter("det", /*deterministic=*/true);
  EXPECT_EQ(registry.GetCounter("det", /*deterministic=*/false), det);
  EXPECT_TRUE(det->deterministic());
}

TEST(MetricsRegistryTest, DisabledPathIsANoOp) {
  MetricsRegistry registry(/*enabled=*/false);
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* hist = registry.GetHistogram("h");
  counter->Increment(100);
  gauge->Set(1.0);
  gauge->Max(5.0);
  hist->Observe(1.0);
  EXPECT_EQ(counter->value(), 0);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
  EXPECT_EQ(hist->count(), 0u);

  // Re-enabling makes the same cached handles live.
  registry.SetEnabled(true);
  counter->Increment();
  EXPECT_EQ(counter->value(), 1);
}

TEST(MetricsRegistryTest, ConcurrentMutationIsExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Histogram* hist = registry.GetHistogram("h");
  constexpr size_t kItems = 10000;
  SetRpasThreads(4);
  ParallelFor(0, kItems, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      counter->Increment();
      hist->Observe(static_cast<double>(i % 10));
      // Lookups may race with mutations (handle caching is per-site, not
      // global, so Get* runs on workers too).
      registry.GetGauge("worker")->Set(1.0);
    }
  });
  SetRpasThreads(0);
  EXPECT_EQ(counter->value(), static_cast<int64_t>(kItems));
  EXPECT_EQ(hist->count(), kItems);
  EXPECT_DOUBLE_EQ(hist->min(), 0.0);
  EXPECT_DOUBLE_EQ(hist->max(), 9.0);
}

TEST(StripedMetricsTest, StripedCounterMergesExactlyUnderConcurrency) {
  MetricsRegistry registry;
  Counter* counter = registry.GetStripedCounter("striped.c");
  EXPECT_TRUE(counter->striped());
  // Same namespace as plain counters: a later plain lookup returns the
  // striped instrument unchanged.
  EXPECT_EQ(registry.GetCounter("striped.c"), counter);

  constexpr size_t kItems = 20000;
  SetRpasThreads(4);
  ParallelFor(0, kItems, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      counter->Increment();
    }
  });
  SetRpasThreads(0);
  EXPECT_EQ(counter->value(), static_cast<int64_t>(kItems));
}

TEST(StripedMetricsTest, StripedHistogramMatchesUnstripedReadout) {
  MetricsRegistry registry;
  Histogram* striped = registry.GetStripedHistogram("striped.h");
  Histogram* plain = registry.GetHistogram("plain.h");
  EXPECT_TRUE(striped->striped());
  EXPECT_FALSE(plain->striped());

  constexpr size_t kItems = 10000;
  SetRpasThreads(4);
  ParallelFor(0, kItems, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      striped->Observe(static_cast<double>(i % 17));
    }
  });
  SetRpasThreads(0);
  for (size_t i = 0; i < kItems; ++i) {
    plain->Observe(static_cast<double>(i % 17));
  }

  // Everything a deterministic export reads — bucket counts, total count,
  // min, max, quantiles — merges exactly, independent of how observations
  // landed on stripes.
  EXPECT_EQ(striped->count(), plain->count());
  EXPECT_DOUBLE_EQ(striped->min(), plain->min());
  EXPECT_DOUBLE_EQ(striped->max(), plain->max());
  ASSERT_EQ(striped->NumBuckets(), plain->NumBuckets());
  for (size_t i = 0; i < plain->NumBuckets(); ++i) {
    EXPECT_EQ(striped->BucketCount(i), plain->BucketCount(i)) << i;
  }
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(striped->Quantile(q), plain->Quantile(q)) << q;
  }
  // The float sum is order-dependent in general but exact here (small
  // integers), and single-threaded striping is a plain reordering of
  // exact sums.
  EXPECT_DOUBLE_EQ(striped->sum(), plain->sum());
}

TEST(StripedMetricsTest, DisabledRegistrySkipsStripedWrites) {
  MetricsRegistry registry(/*enabled=*/false);
  Counter* counter = registry.GetStripedCounter("off.c");
  Histogram* hist = registry.GetStripedHistogram("off.h");
  counter->Increment(5);
  hist->Observe(1.0);
  EXPECT_EQ(counter->value(), 0);
  EXPECT_EQ(hist->count(), 0u);
}

// ---------------------------------------------------------------------------
// Histogram quantiles
// ---------------------------------------------------------------------------

TEST(HistogramTest, QuantilesInterpolateWithinBuckets) {
  MetricsRegistry registry;
  std::vector<double> bounds;
  for (int i = 10; i <= 100; i += 10) {
    bounds.push_back(static_cast<double>(i));
  }
  Histogram* hist = registry.GetHistogram("q", bounds);
  for (int v = 1; v <= 100; ++v) {
    hist->Observe(static_cast<double>(v));
  }
  EXPECT_EQ(hist->count(), 100u);
  EXPECT_DOUBLE_EQ(hist->min(), 1.0);
  EXPECT_DOUBLE_EQ(hist->max(), 100.0);
  // Uniform 1..100 over decade-wide buckets: the q-quantile estimate must
  // land within one bucket width of the exact order statistic.
  EXPECT_NEAR(hist->Quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(hist->Quantile(0.9), 90.0, 10.0);
  EXPECT_NEAR(hist->Quantile(0.99), 99.0, 10.0);
  // Quantiles are clamped to the observed range.
  EXPECT_GE(hist->Quantile(0.0), 1.0);
  EXPECT_LE(hist->Quantile(1.0), 100.0);
}

TEST(HistogramTest, OverflowBucketFallsBackToMax) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("o", {1.0, 2.0});
  hist->Observe(50.0);  // above every bound -> overflow bucket
  hist->Observe(60.0);
  EXPECT_EQ(hist->BucketCount(2), 2u);
  // The overflow bucket has no upper bound, so interpolation runs between
  // the observed extrema.
  EXPECT_DOUBLE_EQ(hist->Quantile(1.0), 60.0);
  EXPECT_DOUBLE_EQ(hist->Quantile(0.5), 55.0);
  EXPECT_NEAR(hist->Quantile(0.99), 59.9, 1e-9);
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("e");
  EXPECT_DOUBLE_EQ(hist->Quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Spans and the trace buffer
// ---------------------------------------------------------------------------

TEST(SpanTest, NestingOnOneThreadLinksParentAndDepth) {
  TraceBuffer buffer(64);
  {
    Span outer(&buffer, "outer", 7);
    { Span inner(&buffer, "inner"); }
  }
  std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 2u);  // inner closes (and records) first
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.tag, 7);
  EXPECT_EQ(inner.tag, -1);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_LE(outer.start_ns, inner.start_ns);
}

TEST(SpanTest, PoolWorkerSpansRecordSafely) {
  TraceBuffer buffer(256);
  constexpr size_t kTasks = 16;
  SetRpasThreads(4);
  ParallelFor(0, kTasks, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Span span(&buffer, "task", static_cast<int64_t>(i));
    }
  });
  SetRpasThreads(0);
  std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), kTasks);
  std::vector<int64_t> tags;
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.name, "task");
    // Each chunk opens a fresh nesting root on whichever thread ran it.
    EXPECT_EQ(e.depth, 0u);
    EXPECT_EQ(e.parent, 0u);
    tags.push_back(e.tag);
  }
  std::sort(tags.begin(), tags.end());
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(tags[i], static_cast<int64_t>(i));
  }
}

TEST(SpanTest, DisabledBufferCostsNothingAndRecordsNothing) {
  TraceBuffer buffer(16, /*enabled=*/false);
  {
    Span span(&buffer, "never");
  }
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(TraceBufferTest, DropsNewestEventsWhenFull) {
  TraceBuffer buffer(2);
  { Span a(&buffer, "a"); }
  { Span b(&buffer, "b"); }
  { Span c(&buffer, "c"); }
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.dropped(), 1u);
  std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // The run's beginning is kept; the overflowing tail is dropped.
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

TEST(ExportTest, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.0, -2.5, 0.1, 1e-9, 123456.789, 1.0 / 3.0}) {
    const std::string s = FormatDouble(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

TEST(ExportTest, JsonlStructureAndIdempotence) {
  MetricsRegistry registry;
  registry.GetCounter("alpha")->Increment(3);
  registry.GetGauge("beta", /*deterministic=*/true)->Set(1.5);
  registry.GetHistogram("gamma")->Observe(2.0);
  TraceBuffer buffer(16);
  { Span span(&buffer, "work", 1); }

  std::vector<ScalingDecision> decisions(1);
  decisions[0].run = "test";
  decisions[0].step = 9;
  decisions[0].target_nodes = 4;

  RunExport run_export(&registry, &buffer, decisions);
  const std::string jsonl = run_export.ToJsonl();
  EXPECT_EQ(jsonl, run_export.ToJsonl());  // rendering is idempotent

  // Header first, then one line per record.
  EXPECT_EQ(jsonl.rfind("{\"type\":\"run\",\"schema\":\"rpas_obs.v1\"", 0),
            0u);
  EXPECT_NE(jsonl.find("{\"type\":\"counter\",\"name\":\"alpha\","
                       "\"value\":3}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("{\"type\":\"gauge\",\"name\":\"beta\","
                       "\"value\":1.5}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"histogram\",\"name\":\"gamma\","
                       "\"count\":1"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"span\",\"name\":\"work\",\"tag\":1"),
            std::string::npos);
  EXPECT_NE(jsonl.find("{\"type\":\"decision\",\"run\":\"test\",\"step\":9,"
                       "\"target\":4,"),
            std::string::npos);

  // The CSV rows all carry the full 19-column header's comma count.
  const std::string csv = run_export.ToCsv();
  size_t line_start = 0;
  while (line_start < csv.size()) {
    size_t line_end = csv.find('\n', line_start);
    ASSERT_NE(line_end, std::string::npos);
    const std::string line = csv.substr(line_start, line_end - line_start);
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 18) << line;
    line_start = line_end + 1;
  }
}

TEST(ExportTest, DeterministicModeSkipsNonDeterministicMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("det.counter")->Increment();
  registry.GetHistogram("det.hist")->Observe(1.0);
  registry.GetHistogram("timing_ms", {}, /*deterministic=*/false)
      ->Observe(12.0);
  registry.GetGauge("sched.gauge")->Set(4.0);  // gauges default non-det
  TraceBuffer buffer(16);

  ExportOptions det_options;
  det_options.deterministic = true;
  RunExport det_export(&registry, &buffer, {}, det_options);
  const std::string jsonl = det_export.ToJsonl();
  EXPECT_NE(jsonl.find("det.counter"), std::string::npos);
  EXPECT_NE(jsonl.find("det.hist"), std::string::npos);
  EXPECT_EQ(jsonl.find("timing_ms"), std::string::npos);
  EXPECT_EQ(jsonl.find("sched.gauge"), std::string::npos);
  // Histogram sum is accumulation-order dependent -> absent in det mode.
  EXPECT_EQ(jsonl.find("\"sum\""), std::string::npos);

  RunExport full_export(&registry, &buffer);
  const std::string full = full_export.ToJsonl();
  EXPECT_NE(full.find("timing_ms"), std::string::npos);
  EXPECT_NE(full.find("sched.gauge"), std::string::npos);
  EXPECT_NE(full.find("\"sum\""), std::string::npos);
}

// Runs a small parallel MLP backtest with explicit sinks and returns the
// deterministic JSONL export.
std::string BacktestExport(int num_threads, uint64_t seed) {
  MetricsRegistry registry;
  TraceBuffer buffer(1 << 12);

  trace::SyntheticTraceGenerator gen(trace::AlibabaProfile(), seed);
  const ts::TimeSeries series = gen.GenerateCpu(4 * 144);

  forecast::BacktestOptions options;
  options.folds = 3;
  options.fold_steps = 72;
  options.base_seed = seed;
  options.parallel = true;
  options.metrics = &registry;
  options.trace = &buffer;
  const forecast::SeededForecasterFactory factory = [&](size_t,
                                                        uint64_t fold_seed) {
    forecast::MlpForecaster::Options mlp;
    mlp.context_length = 24;
    mlp.horizon = 6;
    mlp.hidden_dim = 8;
    mlp.num_hidden_layers = 1;
    mlp.batch_size = 8;
    mlp.train.steps = 30;
    mlp.train.metrics = &registry;  // nn.train.* lands in the same export
    mlp.use_time_features = false;
    mlp.seed = fold_seed;
    return std::make_unique<forecast::MlpForecaster>(mlp);
  };

  SetRpasThreads(num_threads);
  auto result = forecast::Backtest(factory, series, options);
  SetRpasThreads(0);
  EXPECT_TRUE(result.ok()) << result.status().ToString();

  ExportOptions det;
  det.deterministic = true;
  return RunExport(&registry, &buffer, {}, det).ToJsonl();
}

TEST(ExportTest, DeterministicJsonlIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = BacktestExport(1, 2024);
  const std::string parallel = BacktestExport(4, 2024);
  EXPECT_EQ(serial, parallel);
  // Sanity: the export actually contains the instrumented metrics.
  EXPECT_NE(serial.find("backtest.folds"), std::string::npos);
  EXPECT_NE(serial.find("nn.train.steps"), std::string::npos);
  EXPECT_NE(serial.find("\"type\":\"span\",\"name\":\"backtest.fold\","
                        "\"tag\":0"),
            std::string::npos);
  // The wall-clock fold timing histogram must NOT leak into a
  // deterministic export.
  EXPECT_EQ(serial.find("backtest.fold_ms"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Online-loop fault counters vs. registry agreement (regression for the
// bulk-increment contract in core::RunOnlineLoop).
// ---------------------------------------------------------------------------

struct FaultRun {
  core::OnlineLoopResult result;
  int64_t forecaster_faults = 0;
  int64_t retried_plans = 0;
  int64_t fallback_plans = 0;
  int64_t stale_plans = 0;
  int64_t faulted_steps = 0;
  int64_t degraded_steps = 0;
  int64_t plans_made = 0;
  int64_t steps = 0;
};

FaultRun RunFaultedLoop(int num_threads, uint64_t seed) {
  MetricsRegistry registry;

  trace::SyntheticTraceGenerator gen(trace::AlibabaProfile(), seed);
  const ts::TimeSeries series = gen.GenerateCpu(8 * 144);
  const size_t eval_start = 6 * 144;
  const size_t num_steps = 144;

  forecast::SeasonalNaiveForecaster::Options fc_options;
  fc_options.context_length = 72;
  fc_options.horizon = 72;
  fc_options.season = 144;
  fc_options.levels = {0.5, 0.9, 0.95};
  forecast::SeasonalNaiveForecaster model(fc_options);
  EXPECT_TRUE(model.Fit(series.Slice(0, eval_start)).ok());

  core::ScalingConfig config;
  config.theta = series.Mean() / 4.0;
  config.min_nodes = 1;
  core::RobustAutoScalingManager manager(
      &model, std::make_unique<core::RobustQuantileAllocator>(0.9), config);
  manager.SetObservability(&registry, nullptr);

  core::OnlineLoopOptions loop;
  loop.replan_every = 6;  // many planning rounds -> faults hit planning too
  loop.cluster.node_capacity = config.theta;
  loop.cluster.initial_nodes = config.min_nodes;
  loop.cluster.metrics = &registry;
  loop.faults = simdb::FaultPlan::Uniform(0.2, seed + 7);
  loop.metrics = &registry;

  SetRpasThreads(num_threads);
  auto result =
      core::RunOnlineLoop(manager, series, eval_start, num_steps, loop);
  SetRpasThreads(0);
  EXPECT_TRUE(result.ok()) << result.status().ToString();

  FaultRun run;
  run.result = std::move(result).value();
  run.forecaster_faults =
      registry.GetCounter("online.forecaster_faults")->value();
  run.retried_plans = registry.GetCounter("online.retried_plans")->value();
  run.fallback_plans = registry.GetCounter("online.fallback_plans")->value();
  run.stale_plans = registry.GetCounter("online.stale_plans")->value();
  run.faulted_steps = registry.GetCounter("online.faulted_steps")->value();
  run.degraded_steps = registry.GetCounter("online.degraded_steps")->value();
  run.plans_made = registry.GetCounter("online.plans_made")->value();
  run.steps = registry.GetCounter("online.steps")->value();
  return run;
}

TEST(ObsOnlineLoopTest, RegistryCountersAgreeExactlyWithResult) {
  for (int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    const FaultRun run = RunFaultedLoop(threads, 2024);
    const core::OnlineLoopResult& r = run.result;
    // A 20% uniform fault plan over 144 steps must actually exercise the
    // degradation machinery, otherwise this test proves nothing.
    EXPECT_GT(r.faulted_steps, 0u);
    EXPECT_GT(r.forecaster_faults + r.stale_plans, 0u);

    EXPECT_EQ(run.forecaster_faults,
              static_cast<int64_t>(r.forecaster_faults));
    EXPECT_EQ(run.retried_plans, static_cast<int64_t>(r.retried_plans));
    EXPECT_EQ(run.fallback_plans, static_cast<int64_t>(r.fallback_plans));
    EXPECT_EQ(run.stale_plans, static_cast<int64_t>(r.stale_plans));
    EXPECT_EQ(run.faulted_steps, static_cast<int64_t>(r.faulted_steps));
    EXPECT_EQ(run.degraded_steps, static_cast<int64_t>(r.degraded_steps));
    EXPECT_EQ(run.plans_made, static_cast<int64_t>(r.plans_made));
    EXPECT_EQ(run.steps, 144);
  }
  // And the counters themselves are thread-count invariant.
  const FaultRun serial = RunFaultedLoop(1, 2024);
  const FaultRun parallel = RunFaultedLoop(4, 2024);
  EXPECT_EQ(serial.forecaster_faults, parallel.forecaster_faults);
  EXPECT_EQ(serial.fallback_plans, parallel.fallback_plans);
  EXPECT_EQ(serial.faulted_steps, parallel.faulted_steps);
  EXPECT_EQ(serial.plans_made, parallel.plans_made);
}

TEST(ObsOnlineLoopTest, CollectDecisionsFlattensStepsAndFaultFlags) {
  const FaultRun run = RunFaultedLoop(1, 2024);
  const std::vector<ScalingDecision> decisions =
      core::CollectDecisions(run.result, "unit");
  ASSERT_EQ(decisions.size(), run.result.steps.size());
  size_t faulted = 0;
  for (size_t i = 0; i < decisions.size(); ++i) {
    EXPECT_EQ(decisions[i].run, "unit");
    EXPECT_EQ(decisions[i].step, run.result.steps[i].step);
    EXPECT_EQ(decisions[i].target_nodes, run.result.steps[i].target_nodes);
    EXPECT_EQ(decisions[i].utilization, run.result.steps[i].avg_utilization);
    if (decisions[i].faulted) {
      ++faulted;
    }
  }
  EXPECT_GT(faulted, 0u);
  // Every logged fault event maps onto a flagged decision step.
  for (const simdb::FaultEvent& event : run.result.fault_events) {
    ASSERT_LT(event.step, decisions.size());
    EXPECT_TRUE(decisions[event.step].faulted);
  }
}

TEST(ObsPoolTest, RecordPoolStatsSnapshotsGauges) {
  MetricsRegistry registry;
  SetRpasThreads(4);
  ParallelFor(0, 64, 1, [](size_t, size_t) {});
  SetRpasThreads(0);
  RecordPoolStats(&registry);
  EXPECT_GE(registry.GetGauge("pool.threads")->value(), 1.0);
  // Submission counts update synchronously inside ParallelFor; execution
  // counts lag behind (a helper may still be draining when we snapshot),
  // so only the former is asserted.
  EXPECT_GT(registry.GetGauge("pool.tasks_submitted")->value(), 0.0);
  EXPECT_GE(registry.GetGauge("pool.tasks_submitted")->value(),
            registry.GetGauge("pool.tasks_executed")->value());
}

TEST(ObsPoolTest, StatsNeverObserveExecutedAheadOfSubmitted) {
  // Regression: ThreadPool::Submit used to bump tasks_submitted after
  // releasing the queue lock, so a worker could run the task — and count
  // it executed — before the submission was counted, letting a concurrent
  // GetStats() observe executed > submitted and breaking the monotonic
  // invariant the rpas_obs pool gauges export.
  ThreadPool pool(3);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> violations{0};
  std::thread checker([&] {
    while (!done.load(std::memory_order_acquire)) {
      const ThreadPool::Stats stats = pool.GetStats();
      if (stats.tasks_executed > stats.tasks_submitted) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  constexpr uint64_t kTasks = 20000;
  for (uint64_t i = 0; i < kTasks; ++i) {
    pool.Submit([] {});
  }
  done.store(true, std::memory_order_release);
  checker.join();
  EXPECT_EQ(violations.load(), 0u);
  const ThreadPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.tasks_submitted, kTasks);
  EXPECT_LE(stats.tasks_executed, stats.tasks_submitted);
}

}  // namespace
}  // namespace rpas::obs
