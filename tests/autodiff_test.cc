#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autodiff/tape.h"
#include "common/rng.h"
#include "tensor/ops.h"

namespace rpas::autodiff {
namespace {

using tensor::Matrix;

/// Verifies analytic gradients against central finite differences for every
/// element of every parameter. `loss_fn` must build a fresh graph from the
/// parameters' *current* values and return the scalar loss value.
void CheckGradients(std::vector<Parameter*> params,
                    const std::function<double()>& loss_fn,
                    double h = 1e-6, double tol = 1e-5) {
  // Each parameter's `grad` must already hold the analytic gradient
  // (callers run Backward first); loss_fn only re-evaluates the loss value
  // from the parameters' current values.
  for (Parameter* p : params) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      const double orig = p->value[i];
      p->value[i] = orig + h;
      const double up = loss_fn();
      p->value[i] = orig - h;
      const double down = loss_fn();
      p->value[i] = orig;
      const double numeric = (up - down) / (2.0 * h);
      EXPECT_NEAR(p->grad[i], numeric, tol)
          << "param element " << i << " grad mismatch";
    }
  }
}

/// Convenience wrapper: builds the graph with `graph_fn`, backprops, then
/// finite-differences.
void CheckGraph(std::vector<Parameter*> params,
                const std::function<Var(Tape*)>& graph_fn, double tol = 1e-5) {
  for (Parameter* p : params) {
    p->ZeroGrad();
  }
  Tape tape;
  Var loss = graph_fn(&tape);
  tape.Backward(loss);
  CheckGradients(
      params,
      [&]() {
        Tape t2;
        return graph_fn(&t2).value()(0, 0);
      },
      1e-6, tol);
}

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m[i] = scale * rng->Normal();
  }
  return m;
}

TEST(TapeTest, ConstantHasValue) {
  Tape tape;
  Var c = tape.Constant(Matrix{{1, 2}});
  EXPECT_DOUBLE_EQ(c.value()(0, 1), 2.0);
  EXPECT_EQ(c.rows(), 1u);
  EXPECT_EQ(c.cols(), 2u);
}

TEST(TapeTest, BindDeduplicates) {
  Parameter p(Matrix{{1.0}});
  Tape tape;
  Var a = tape.Bind(&p);
  Var b = tape.Bind(&p);
  EXPECT_EQ(a.id(), b.id());
}

TEST(TapeTest, SimpleChainRule) {
  // f(w) = mean((w * 3)^2), w = [2] => f = 36, df/dw = 2*3w*3 = 36.
  Parameter w(Matrix{{2.0}});
  Tape tape;
  Var loss = tape.Mean(tape.Square(tape.Scale(tape.Bind(&w), 3.0)));
  EXPECT_DOUBLE_EQ(loss.value()(0, 0), 36.0);
  tape.Backward(loss);
  EXPECT_DOUBLE_EQ(w.grad(0, 0), 36.0);
}

TEST(TapeTest, GradAccumulatesAcrossUses) {
  // f(w) = sum(w + w) => df/dw = 2.
  Parameter w(Matrix{{1.0, 2.0}});
  Tape tape;
  Var v = tape.Bind(&w);
  Var loss = tape.Sum(tape.Add(v, v));
  tape.Backward(loss);
  EXPECT_DOUBLE_EQ(w.grad(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(w.grad(0, 1), 2.0);
}

TEST(TapeGradCheck, MatMul) {
  Rng rng(1);
  Parameter a(RandomMatrix(3, 4, &rng));
  Parameter b(RandomMatrix(4, 2, &rng));
  CheckGraph({&a, &b}, [&](Tape* t) {
    return t->Sum(t->MatMul(t->Bind(&a), t->Bind(&b)));
  });
}

TEST(TapeGradCheck, MatMulThroughSquare) {
  Rng rng(2);
  Parameter a(RandomMatrix(2, 3, &rng));
  Parameter b(RandomMatrix(3, 2, &rng));
  CheckGraph({&a, &b}, [&](Tape* t) {
    return t->Sum(t->Square(t->MatMul(t->Bind(&a), t->Bind(&b))));
  });
}

TEST(TapeGradCheck, ElementwiseBinary) {
  Rng rng(3);
  Parameter a(RandomMatrix(2, 3, &rng));
  Parameter b(RandomMatrix(2, 3, &rng));
  CheckGraph({&a, &b}, [&](Tape* t) {
    Var va = t->Bind(&a);
    Var vb = t->Bind(&b);
    return t->Sum(t->Mul(t->Add(va, vb), t->Sub(va, vb)));
  });
}

TEST(TapeGradCheck, Div) {
  Rng rng(4);
  Parameter a(RandomMatrix(2, 2, &rng));
  Matrix b_val = RandomMatrix(2, 2, &rng);
  for (size_t i = 0; i < b_val.size(); ++i) {
    b_val[i] = 2.0 + std::fabs(b_val[i]);  // keep well away from zero
  }
  Parameter b(b_val);
  CheckGraph({&a, &b}, [&](Tape* t) {
    return t->Sum(t->Div(t->Bind(&a), t->Bind(&b)));
  });
}

TEST(TapeGradCheck, MaxRoutesSubgradient) {
  Parameter a(Matrix{{1.0, 5.0}});
  Parameter b(Matrix{{3.0, 2.0}});
  Tape tape;
  Var loss = tape.Sum(tape.Max(tape.Bind(&a), tape.Bind(&b)));
  tape.Backward(loss);
  EXPECT_DOUBLE_EQ(a.grad(0, 0), 0.0);  // b wins
  EXPECT_DOUBLE_EQ(a.grad(0, 1), 1.0);  // a wins
  EXPECT_DOUBLE_EQ(b.grad(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(b.grad(0, 1), 0.0);
}

TEST(TapeGradCheck, Broadcasts) {
  Rng rng(5);
  Parameter a(RandomMatrix(3, 4, &rng));
  Parameter row(RandomMatrix(1, 4, &rng));
  CheckGraph({&a, &row}, [&](Tape* t) {
    return t->Sum(t->Square(t->AddRowBroadcast(t->Bind(&a), t->Bind(&row))));
  });
  CheckGraph({&a, &row}, [&](Tape* t) {
    return t->Sum(t->Square(t->MulRowBroadcast(t->Bind(&a), t->Bind(&row))));
  });
}

TEST(TapeGradCheck, UnaryActivations) {
  Rng rng(6);
  Parameter a(RandomMatrix(2, 3, &rng, 0.8));
  CheckGraph({&a}, [&](Tape* t) { return t->Sum(t->Tanh(t->Bind(&a))); });
  CheckGraph({&a}, [&](Tape* t) { return t->Sum(t->Sigmoid(t->Bind(&a))); });
  CheckGraph({&a}, [&](Tape* t) { return t->Sum(t->Softplus(t->Bind(&a))); });
  CheckGraph({&a}, [&](Tape* t) { return t->Sum(t->Exp(t->Bind(&a))); });
}

TEST(TapeGradCheck, ReluSubgradient) {
  // Keep values away from the kink for finite differences.
  Parameter a(Matrix{{1.5, -2.0, 0.7}});
  CheckGraph({&a}, [&](Tape* t) {
    return t->Sum(t->Square(t->Relu(t->Bind(&a))));
  });
}

TEST(TapeGradCheck, LogSqrtOnPositives) {
  Rng rng(7);
  Matrix v = RandomMatrix(2, 2, &rng);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 1.0 + std::fabs(v[i]);
  }
  Parameter a(v);
  CheckGraph({&a}, [&](Tape* t) { return t->Sum(t->Log(t->Bind(&a))); });
  CheckGraph({&a}, [&](Tape* t) { return t->Sum(t->Sqrt(t->Bind(&a))); });
}

TEST(TapeGradCheck, SoftmaxRows) {
  Rng rng(8);
  Parameter a(RandomMatrix(2, 4, &rng));
  Parameter weight(RandomMatrix(2, 4, &rng));
  // Weighted sum so the gradient is not trivially zero (softmax rows sum
  // to 1, so Sum(softmax) has zero gradient).
  CheckGraph({&a}, [&](Tape* t) {
    return t->Sum(
        t->Mul(t->SoftmaxRows(t->Bind(&a)), t->Constant(weight.value)));
  });
}

TEST(TapeGradCheck, SoftmaxRowsSumIsConstant) {
  Rng rng(9);
  Parameter a(RandomMatrix(1, 5, &rng));
  Tape tape;
  Var sm = tape.SoftmaxRows(tape.Bind(&a));
  Var loss = tape.Sum(sm);
  EXPECT_NEAR(loss.value()(0, 0), 1.0, 1e-12);
  tape.Backward(loss);
  for (size_t i = 0; i < a.grad.size(); ++i) {
    EXPECT_NEAR(a.grad[i], 0.0, 1e-10);
  }
}

TEST(TapeGradCheck, ConcatAndSlice) {
  Rng rng(10);
  Parameter a(RandomMatrix(2, 3, &rng));
  Parameter b(RandomMatrix(2, 2, &rng));
  CheckGraph({&a, &b}, [&](Tape* t) {
    Var cat = t->ConcatCols(t->Bind(&a), t->Bind(&b));
    return t->Sum(t->Square(t->SliceCols(cat, 1, 4)));
  });
  Parameter c(RandomMatrix(2, 3, &rng));
  Parameter d(RandomMatrix(3, 3, &rng));
  CheckGraph({&c, &d}, [&](Tape* t) {
    Var cat = t->ConcatRows(t->Bind(&c), t->Bind(&d));
    return t->Sum(t->Square(t->SliceRows(cat, 1, 4)));
  });
}

TEST(TapeGradCheck, Reshape) {
  Rng rng(11);
  Parameter a(RandomMatrix(2, 6, &rng));
  CheckGraph({&a}, [&](Tape* t) {
    return t->Sum(t->Square(t->Reshape(t->Bind(&a), 3, 4)));
  });
}

TEST(TapeGradCheck, Transpose) {
  Rng rng(12);
  Parameter a(RandomMatrix(2, 3, &rng));
  Parameter b(RandomMatrix(2, 3, &rng));
  CheckGraph({&a, &b}, [&](Tape* t) {
    return t->Sum(
        t->Square(t->MatMul(t->Transpose(t->Bind(&a)), t->Bind(&b))));
  });
}

TEST(TapeGradCheck, MeanMatchesScaledSum) {
  Rng rng(13);
  Parameter a(RandomMatrix(3, 3, &rng));
  Tape tape;
  Var loss = tape.Mean(tape.Bind(&a));
  tape.Backward(loss);
  for (size_t i = 0; i < a.grad.size(); ++i) {
    EXPECT_NEAR(a.grad[i], 1.0 / 9.0, 1e-12);
  }
}

TEST(TapeGradCheck, CustomOp) {
  // Custom cube op: y = x^3, dy/dx = 3x^2.
  Rng rng(14);
  Parameter a(RandomMatrix(2, 2, &rng));
  CheckGraph({&a}, [&](Tape* t) {
    Var x = t->Bind(&a);
    const Matrix& xv = x.value();
    Matrix cubed(xv.rows(), xv.cols());
    for (size_t i = 0; i < xv.size(); ++i) {
      cubed[i] = xv[i] * xv[i] * xv[i];
    }
    const size_t xi = x.id();
    Var y = t->Custom({x}, cubed, [xi](const Matrix& g, Tape* tp) {
      const Matrix& xval = tp->ValueOf(xi);
      Matrix gx(g.rows(), g.cols());
      for (size_t i = 0; i < g.size(); ++i) {
        gx[i] = g[i] * 3.0 * xval[i] * xval[i];
      }
      tp->AccumulateGrad(xi, gx);
    });
    return t->Sum(y);
  });
}

TEST(TapeGradCheck, WeightSharingAcrossSteps) {
  // Unrolled recurrence x_{t+1} = tanh(x_t * w): the same parameter is
  // bound and used three times; gradients must accumulate.
  Rng rng(15);
  Parameter w(RandomMatrix(2, 2, &rng, 0.5));
  Matrix x0 = RandomMatrix(1, 2, &rng);
  CheckGraph({&w}, [&](Tape* t) {
    Var x = t->Constant(x0);
    for (int step = 0; step < 3; ++step) {
      x = t->Tanh(t->MatMul(x, t->Bind(&w)));
    }
    return t->Sum(t->Square(x));
  });
}

TEST(TapeGradCheck, DeepCompositeGraph) {
  Rng rng(16);
  Parameter w1(RandomMatrix(3, 4, &rng, 0.5));
  Parameter b1(RandomMatrix(1, 4, &rng, 0.1));
  Parameter w2(RandomMatrix(4, 1, &rng, 0.5));
  Matrix x = RandomMatrix(5, 3, &rng);
  Matrix y = RandomMatrix(5, 1, &rng);
  CheckGraph({&w1, &b1, &w2}, [&](Tape* t) {
    Var h = t->Tanh(t->AddRowBroadcast(
        t->MatMul(t->Constant(x), t->Bind(&w1)), t->Bind(&b1)));
    Var pred = t->MatMul(h, t->Bind(&w2));
    return t->Mean(t->Square(t->Sub(pred, t->Constant(y))));
  });
}

TEST(TapeTest, BackwardTwiceOnDifferentTapesAccumulatesIntoParam) {
  Parameter w(Matrix{{1.0}});
  for (int i = 0; i < 2; ++i) {
    Tape tape;
    Var loss = tape.Sum(tape.Square(tape.Bind(&w)));
    tape.Backward(loss);
  }
  // dw = 2w = 2 per pass; two passes accumulate to 4.
  EXPECT_DOUBLE_EQ(w.grad(0, 0), 4.0);
}

}  // namespace
}  // namespace rpas::autodiff
