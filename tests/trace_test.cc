#include <gtest/gtest.h>

#include <cmath>

#include "trace/generator.h"

namespace rpas::trace {
namespace {

constexpr size_t kWeek = 6 * 24 * 7;  // steps per week at 10-minute interval
constexpr size_t kDay = 6 * 24;

double LagAutocorrelation(const std::vector<double>& x, size_t lag) {
  const size_t n = x.size();
  double mean = 0.0;
  for (double v : x) {
    mean += v;
  }
  mean /= static_cast<double>(n);
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < n; ++i) {
    den += (x[i] - mean) * (x[i] - mean);
    if (i + lag < n) {
      num += (x[i] - mean) * (x[i + lag] - mean);
    }
  }
  return den > 0.0 ? num / den : 0.0;
}

double CoefficientOfVariation(const ts::TimeSeries& s) {
  return s.Stddev() / s.Mean();
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  SyntheticTraceGenerator a(AlibabaProfile(), 42);
  SyntheticTraceGenerator b(AlibabaProfile(), 42);
  auto ta = a.GenerateCpu(200);
  auto tb = b.GenerateCpu(200);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta[i], tb[i]);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  SyntheticTraceGenerator a(AlibabaProfile(), 1);
  SyntheticTraceGenerator b(AlibabaProfile(), 2);
  auto ta = a.GenerateCpu(100);
  auto tb = b.GenerateCpu(100);
  double diff = 0.0;
  for (size_t i = 0; i < ta.size(); ++i) {
    diff += std::fabs(ta[i] - tb[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(GeneratorTest, RequestedLengthAndMetadata) {
  SyntheticTraceGenerator gen(AlibabaProfile(), 3);
  auto trace = gen.Generate(500);
  EXPECT_EQ(trace.cpu.size(), 500u);
  EXPECT_EQ(trace.memory.size(), 500u);
  EXPECT_EQ(trace.disk.size(), 500u);
  EXPECT_DOUBLE_EQ(trace.cpu.step_minutes, 10.0);
  EXPECT_EQ(trace.cpu.name, "alibaba-cpu");
}

TEST(GeneratorTest, LoadsAreNonNegativeAndBounded) {
  SyntheticTraceGenerator gen(GoogleProfile(), 4);
  auto cpu = gen.GenerateCpu(kWeek);
  const TraceProfile& p = gen.profile();
  const double cap =
      p.machine_capacity * static_cast<double>(p.num_machines);
  for (size_t i = 0; i < cpu.size(); ++i) {
    EXPECT_GE(cpu[i], 0.0);
    EXPECT_LE(cpu[i], cap);
  }
}

TEST(GeneratorTest, AlibabaHasStrongDailyCycle) {
  SyntheticTraceGenerator gen(AlibabaProfile(), 5);
  auto cpu = gen.GenerateCpu(2 * kWeek);
  // Autocorrelation at one-day lag should be strongly positive.
  EXPECT_GT(LagAutocorrelation(cpu.values, kDay), 0.5);
}

TEST(GeneratorTest, GoogleCycleWeakerThanAlibaba) {
  SyntheticTraceGenerator ali(AlibabaProfile(), 6);
  SyntheticTraceGenerator goo(GoogleProfile(), 6);
  auto a = ali.GenerateCpu(2 * kWeek);
  auto g = goo.GenerateCpu(2 * kWeek);
  EXPECT_GT(LagAutocorrelation(a.values, kDay),
            LagAutocorrelation(g.values, kDay));
}

TEST(GeneratorTest, GoogleIsNoisierThanAlibaba) {
  // The paper's Table I shows an order-of-magnitude accuracy gap between
  // the two traces; our stand-ins must preserve the dispersion ordering.
  SyntheticTraceGenerator ali(AlibabaProfile(), 7);
  SyntheticTraceGenerator goo(GoogleProfile(), 7);
  auto a = ali.GenerateCpu(2 * kWeek);
  auto g = goo.GenerateCpu(2 * kWeek);
  // Remove the daily cycle by first-differencing, then compare residual
  // variability relative to the mean level.
  auto residual_cv = [](const ts::TimeSeries& s) {
    double ss = 0.0;
    for (size_t i = 1; i < s.size(); ++i) {
      const double d = s.values[i] - s.values[i - 1];
      ss += d * d;
    }
    return std::sqrt(ss / static_cast<double>(s.size() - 1)) / s.Mean();
  };
  EXPECT_GT(residual_cv(g), residual_cv(a));
}

TEST(GeneratorTest, WeekendLoadLowerForAlibaba) {
  SyntheticTraceGenerator gen(AlibabaProfile(), 8);
  auto cpu = gen.GenerateCpu(4 * kWeek);
  double weekday_sum = 0.0;
  size_t weekday_n = 0;
  double weekend_sum = 0.0;
  size_t weekend_n = 0;
  for (size_t i = 0; i < cpu.size(); ++i) {
    const double week_pos =
        std::fmod(static_cast<double>(i) / kWeek, 1.0);
    if (week_pos >= 5.0 / 7.0) {
      weekend_sum += cpu[i];
      ++weekend_n;
    } else {
      weekday_sum += cpu[i];
      ++weekday_n;
    }
  }
  EXPECT_LT(weekend_sum / weekend_n, 0.9 * weekday_sum / weekday_n);
}

TEST(GeneratorTest, BurstsCreateHeavyTailedIncrements) {
  // Pareto bursts make the distribution of step-to-step increments heavy
  // tailed; excess kurtosis of first differences separates the two regimes
  // robustly (unlike variance, which noise realizations can dominate).
  auto diff_kurtosis = [](const ts::TimeSeries& s) {
    std::vector<double> d;
    for (size_t i = 1; i < s.size(); ++i) {
      d.push_back(s.values[i] - s.values[i - 1]);
    }
    double mean = 0.0;
    for (double v : d) {
      mean += v;
    }
    mean /= static_cast<double>(d.size());
    double m2 = 0.0;
    double m4 = 0.0;
    for (double v : d) {
      const double z = v - mean;
      m2 += z * z;
      m4 += z * z * z * z;
    }
    m2 /= static_cast<double>(d.size());
    m4 /= static_cast<double>(d.size());
    return m4 / (m2 * m2) - 3.0;
  };
  TraceProfile bursty = GoogleProfile();
  bursty.cluster_burst_rate = 0.05;
  bursty.cluster_burst_magnitude = 0.4;
  TraceProfile calm = GoogleProfile();
  calm.burst_rate = 0.0;
  calm.cluster_burst_rate = 0.0;
  auto with = SyntheticTraceGenerator(bursty, 9).GenerateCpu(4 * kWeek);
  auto without = SyntheticTraceGenerator(calm, 9).GenerateCpu(4 * kWeek);
  EXPECT_GT(diff_kurtosis(with), diff_kurtosis(without) + 1.0);
}

TEST(GeneratorTest, MemoryIsSmootherThanCpu) {
  SyntheticTraceGenerator gen(AlibabaProfile(), 10);
  auto trace = gen.Generate(kWeek);
  auto roughness = [](const ts::TimeSeries& s) {
    double ss = 0.0;
    for (size_t i = 1; i < s.size(); ++i) {
      const double d = s.values[i] - s.values[i - 1];
      ss += d * d;
    }
    return std::sqrt(ss / static_cast<double>(s.size() - 1)) / s.Mean();
  };
  EXPECT_LT(roughness(trace.memory), roughness(trace.cpu));
}

TEST(GeneratorTest, TrendIncreasesLoadOverTime) {
  TraceProfile p = AlibabaProfile();
  p.trend_per_day = 0.5;
  p.burst_rate = 0.0;
  SyntheticTraceGenerator gen(p, 11);
  auto cpu = gen.GenerateCpu(4 * kWeek);
  const size_t half = cpu.size() / 2;
  double first = 0.0;
  double second = 0.0;
  for (size_t i = 0; i < half; ++i) {
    first += cpu[i];
    second += cpu[half + i];
  }
  EXPECT_GT(second, first);
}

TEST(GeneratorTest, MoreMachinesMoreLoad) {
  TraceProfile small = AlibabaProfile();
  small.num_machines = 8;
  TraceProfile large = AlibabaProfile();
  large.num_machines = 32;
  auto s = SyntheticTraceGenerator(small, 12).GenerateCpu(kDay);
  auto l = SyntheticTraceGenerator(large, 12).GenerateCpu(kDay);
  EXPECT_GT(l.Mean(), 2.0 * s.Mean());
}

}  // namespace
}  // namespace rpas::trace
