#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/evaluator.h"
#include "core/manager.h"
#include "core/scaling_config.h"
#include "core/strategies.h"
#include "core/uncertainty.h"
#include "forecast/seasonal_naive.h"
#include "ts/quantile_forecast.h"

namespace rpas::core {
namespace {

using ts::QuantileForecast;

ScalingConfig UnitConfig() {
  ScalingConfig config;
  config.theta = 1.0;
  config.min_nodes = 1;
  return config;
}

// ------------------------------------------------------------ Uncertainty ---

TEST(UncertaintyTest, SymmetricSpreadMatchesHandComputation) {
  // Levels {0.1, 0.5, 0.9}, values {8, 10, 12} at one step; standard
  // pinball orientation against the median (see uncertainty.cc for the
  // Eq. 8 sign-convention note):
  //   0.1 term: indicator(8 < 10) = 1 -> (0.1 - 1) * (8 - 10) = 1.8
  //   0.5 term: 0
  //   0.9 term: indicator 0 -> 0.9 * (12 - 10) = 1.8
  // U = 3.6.
  QuantileForecast fc({0.1, 0.5, 0.9}, {{8.0, 10.0, 12.0}});
  EXPECT_NEAR(QuantileUncertainty(fc, 0), 3.6, 1e-12);
}

TEST(UncertaintyTest, DegenerateForecastHasZeroUncertainty) {
  QuantileForecast fc({0.1, 0.5, 0.9}, {{10.0, 10.0, 10.0}});
  EXPECT_DOUBLE_EQ(QuantileUncertainty(fc, 0), 0.0);
}

TEST(UncertaintyTest, WiderSpreadLargerMagnitude) {
  QuantileForecast narrow({0.1, 0.5, 0.9}, {{9.0, 10.0, 11.0}});
  QuantileForecast wide({0.1, 0.5, 0.9}, {{5.0, 10.0, 15.0}});
  EXPECT_GT(std::fabs(QuantileUncertainty(wide, 0)),
            std::fabs(QuantileUncertainty(narrow, 0)));
}

TEST(UncertaintyTest, PerStepVector) {
  QuantileForecast fc({0.1, 0.5, 0.9},
                      {{9.0, 10.0, 11.0}, {5.0, 10.0, 15.0}});
  auto u = QuantileUncertaintyPerStep(fc);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_GT(std::fabs(u[1]), std::fabs(u[0]));
}

// ------------------------------------------------------------ RequiredNodes ---

TEST(ScalingConfigTest, RequiredNodesCeiling) {
  ScalingConfig config = UnitConfig();
  EXPECT_EQ(RequiredNodes(0.0, config), 1);   // min_nodes floor
  EXPECT_EQ(RequiredNodes(1.0, config), 1);   // exact
  EXPECT_EQ(RequiredNodes(1.01, config), 2);
  EXPECT_EQ(RequiredNodes(7.3, config), 8);
}

TEST(ScalingConfigTest, MaxNodesCap) {
  ScalingConfig config = UnitConfig();
  config.max_nodes = 3;
  EXPECT_EQ(RequiredNodes(100.0, config), 3);
}

// --------------------------------------------------------------- Reactive ---

TEST(ReactiveMaxTest, UsesWindowMaximum) {
  ReactiveMaxStrategy strategy(3);
  // History: only the last 3 values {2, 9, 4} matter -> max 9.
  EXPECT_EQ(strategy.Decide({1.0, 20.0, 2.0, 9.0, 4.0}, UnitConfig()), 9);
}

TEST(ReactiveMaxTest, ShortHistoryUsesAllOfIt) {
  ReactiveMaxStrategy strategy(10);
  EXPECT_EQ(strategy.Decide({3.2}, UnitConfig()), 4);
}

TEST(ReactiveAvgTest, WeightsRecentMoreHeavily) {
  ReactiveAvgStrategy strategy(6, 6.0);
  // Rising workload: the weighted average must be between min and max, and
  // higher than the plain mean of the oldest values.
  const int rising = strategy.Decide({1, 1, 1, 1, 1, 10}, UnitConfig());
  const int falling = strategy.Decide({10, 1, 1, 1, 1, 1}, UnitConfig());
  EXPECT_GE(rising, falling);
}

TEST(ReactiveAvgTest, ConstantWorkloadIsExact) {
  ReactiveAvgStrategy strategy(6, 6.0);
  EXPECT_EQ(strategy.Decide({2.0, 2.0, 2.0, 2.0}, UnitConfig()), 2);
}

TEST(ReactiveAvgTest, LagsBehindSpikes) {
  // The core weakness the paper exploits (Fig. 9): an abrupt spike is
  // averaged away, so the reactive-avg node count undershoots demand.
  ReactiveAvgStrategy strategy(6, 6.0);
  const int nodes = strategy.Decide({1, 1, 1, 1, 1, 12}, UnitConfig());
  EXPECT_LT(nodes, 12);
}

// ------------------------------------------------------------- Allocators ---

QuantileForecast ThreeLevelForecast() {
  // Two steps; levels 0.5 / 0.8 / 0.9.
  return QuantileForecast({0.5, 0.8, 0.9},
                          {{2.0, 3.0, 4.0}, {5.0, 6.5, 9.0}});
}

TEST(PointAllocatorTest, UsesMedian) {
  PointForecastAllocator allocator;
  auto alloc = allocator.Allocate(ThreeLevelForecast(), UnitConfig());
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(*alloc, (std::vector<int>{2, 5}));
}

TEST(RobustAllocatorTest, UsesRequestedQuantile) {
  RobustQuantileAllocator allocator(0.9);
  auto alloc = allocator.Allocate(ThreeLevelForecast(), UnitConfig());
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(*alloc, (std::vector<int>{4, 9}));
}

TEST(RobustAllocatorTest, InterpolatesOffGridLevels) {
  RobustQuantileAllocator allocator(0.65);  // halfway 0.5 -> 0.8
  auto alloc = allocator.Allocate(ThreeLevelForecast(), UnitConfig());
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ((*alloc)[0], 3);  // 2.5 -> ceil 3
}

TEST(RobustAllocatorTest, HigherTauNeverAllocatesFewer) {
  // Core robustness property (paper Fig. 10): conservatism is monotone.
  const QuantileForecast fc = ThreeLevelForecast();
  const ScalingConfig config = UnitConfig();
  std::vector<int> prev;
  for (double tau : {0.5, 0.6, 0.7, 0.8, 0.85, 0.9}) {
    auto alloc = RobustQuantileAllocator(tau).Allocate(fc, config);
    ASSERT_TRUE(alloc.ok());
    if (!prev.empty()) {
      for (size_t t = 0; t < prev.size(); ++t) {
        EXPECT_GE((*alloc)[t], prev[t]) << "tau=" << tau << " t=" << t;
      }
    }
    prev = *alloc;
  }
}

TEST(RobustAllocatorTest, NegativeForecastClampedToMinNodes) {
  QuantileForecast fc({0.5, 0.9}, {{-3.0, -1.0}});
  RobustQuantileAllocator allocator(0.9);
  auto alloc = allocator.Allocate(fc, UnitConfig());
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ((*alloc)[0], 1);
}

TEST(AdaptiveAllocatorTest, PicksLevelByUncertainty) {
  AdaptiveQuantileAllocator allocator(0.6, 0.9, /*rho=*/1.0);
  EXPECT_DOUBLE_EQ(allocator.LevelForUncertainty(0.5), 0.6);
  EXPECT_DOUBLE_EQ(allocator.LevelForUncertainty(1.0), 0.9);
  EXPECT_DOUBLE_EQ(allocator.LevelForUncertainty(5.0), 0.9);
}

TEST(AdaptiveAllocatorTest, StaircaseLevels) {
  AdaptiveQuantileAllocator allocator({0.5, 0.7, 0.9}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(allocator.LevelForUncertainty(0.0), 0.5);
  EXPECT_DOUBLE_EQ(allocator.LevelForUncertainty(1.5), 0.7);
  EXPECT_DOUBLE_EQ(allocator.LevelForUncertainty(99.0), 0.9);
}

TEST(AdaptiveAllocatorTest, BoundedByItsTwoLevels) {
  // Allocation always lies between the tau1-fixed and tau2-fixed plans.
  const QuantileForecast fc = ThreeLevelForecast();
  const ScalingConfig config = UnitConfig();
  AdaptiveQuantileAllocator adaptive(0.5, 0.9, 1.8);
  auto a = adaptive.Allocate(fc, config);
  auto lo = RobustQuantileAllocator(0.5).Allocate(fc, config);
  auto hi = RobustQuantileAllocator(0.9).Allocate(fc, config);
  ASSERT_TRUE(a.ok() && lo.ok() && hi.ok());
  for (size_t t = 0; t < a->size(); ++t) {
    EXPECT_GE((*a)[t], (*lo)[t]);
    EXPECT_LE((*a)[t], (*hi)[t]);
  }
}

TEST(AdaptiveAllocatorTest, ZeroThresholdAlwaysConservative) {
  // U is <= 0 for degenerate forecasts... use rho very negative so every
  // step exceeds it -> always the conservative level.
  const QuantileForecast fc = ThreeLevelForecast();
  AdaptiveQuantileAllocator adaptive(0.5, 0.9, -1e9);
  auto a = adaptive.Allocate(fc, UnitConfig());
  auto hi = RobustQuantileAllocator(0.9).Allocate(fc, UnitConfig());
  ASSERT_TRUE(a.ok() && hi.ok());
  EXPECT_EQ(*a, *hi);
}

TEST(AdaptiveAllocatorTest, HugeThresholdAlwaysOptimistic) {
  const QuantileForecast fc = ThreeLevelForecast();
  AdaptiveQuantileAllocator adaptive(0.5, 0.9, 1e9);
  auto a = adaptive.Allocate(fc, UnitConfig());
  auto lo = RobustQuantileAllocator(0.5).Allocate(fc, UnitConfig());
  ASSERT_TRUE(a.ok() && lo.ok());
  EXPECT_EQ(*a, *lo);
}

// ---------------------------------------------------------------- Padding ---

TEST(PaddingTest, NoObservationsMeansNoPad) {
  PaddingEnhancement padding(PaddingEnhancement::Options{});
  EXPECT_DOUBLE_EQ(padding.CurrentPad(), 0.0);
  auto padded = padding.Pad({1.0, 2.0});
  EXPECT_EQ(padded, (std::vector<double>{1.0, 2.0}));
}

TEST(PaddingTest, TracksUnderestimationErrors) {
  PaddingEnhancement padding(
      PaddingEnhancement::Options{.error_window = 10, .quantile = 1.0});
  padding.Observe(/*actual=*/10.0, /*predicted=*/8.0);  // under by 2
  padding.Observe(/*actual=*/5.0, /*predicted=*/9.0);   // over (no error)
  EXPECT_DOUBLE_EQ(padding.CurrentPad(), 2.0);
}

TEST(PaddingTest, QuantileOfErrors) {
  PaddingEnhancement padding(
      PaddingEnhancement::Options{.error_window = 10, .quantile = 0.5});
  padding.Observe(10.0, 9.0);  // 1
  padding.Observe(10.0, 7.0);  // 3
  padding.Observe(10.0, 5.0);  // 5
  EXPECT_DOUBLE_EQ(padding.CurrentPad(), 3.0);
}

TEST(PaddingTest, WindowEvictsOldErrors) {
  PaddingEnhancement padding(
      PaddingEnhancement::Options{.error_window = 2, .quantile = 1.0});
  padding.Observe(10.0, 0.0);  // 10
  padding.Observe(10.0, 9.0);  // 1
  padding.Observe(10.0, 9.5);  // 0.5, evicts the 10
  EXPECT_DOUBLE_EQ(padding.CurrentPad(), 1.0);
}

TEST(PaddingTest, PadAddsToEveryStep) {
  PaddingEnhancement padding(
      PaddingEnhancement::Options{.error_window = 4, .quantile = 1.0});
  padding.Observe(10.0, 8.5);
  auto padded = padding.Pad({1.0, 2.0});
  EXPECT_DOUBLE_EQ(padded[0], 2.5);
  EXPECT_DOUBLE_EQ(padded[1], 3.5);
}

// -------------------------------------------------------------- Evaluator ---

TEST(EvaluatorTest, RatesComputedCorrectly) {
  // workloads {2, 2, 2}; theta 1 -> required {2, 2, 2}.
  // allocation {1, 2, 3} -> under, exact, over.
  auto report =
      EvaluateAllocation({2.0, 2.0, 2.0}, {1, 2, 3}, UnitConfig());
  EXPECT_NEAR(report.under_provision_rate, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(report.over_provision_rate, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(report.mean_allocated_nodes, 2.0, 1e-12);
  EXPECT_NEAR(report.mean_required_nodes, 2.0, 1e-12);
}

TEST(EvaluatorTest, EmptyInputIsZeroed) {
  auto report = EvaluateAllocation({}, {}, UnitConfig());
  EXPECT_EQ(report.num_steps, 0u);
  EXPECT_DOUBLE_EQ(report.under_provision_rate, 0.0);
}

ts::TimeSeries StepSeries() {
  ts::TimeSeries s;
  // Flat then a spike at index 8.
  s.values = {1, 1, 1, 1, 1, 1, 1, 1, 6, 1, 1, 1};
  s.step_minutes = 10.0;
  return s;
}

TEST(EvaluatorTest, ReactiveRunLagsSpike) {
  ts::TimeSeries s = StepSeries();
  ReactiveMaxStrategy strategy(3);
  auto alloc = RunReactiveStrategy(strategy, s, /*eval_start=*/4,
                                   /*num_steps=*/8, UnitConfig());
  ASSERT_TRUE(alloc.ok());
  // At the spike step (index 8 -> alloc position 4) the reactive strategy
  // only saw flat history, so it under-provisions.
  EXPECT_LT((*alloc)[4], 6);
  // The step *after* the spike it overreacts.
  EXPECT_EQ((*alloc)[5], 6);
}

TEST(EvaluatorTest, ReactiveRunRejectsBadRange) {
  ts::TimeSeries s = StepSeries();
  ReactiveMaxStrategy strategy(3);
  EXPECT_FALSE(RunReactiveStrategy(strategy, s, 0, 4, UnitConfig()).ok());
  EXPECT_FALSE(RunReactiveStrategy(strategy, s, 4, 100, UnitConfig()).ok());
  EXPECT_FALSE(RunReactiveStrategy(strategy, s, 4, 0, UnitConfig()).ok());
}

class TestForecasterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // A long daily-cycle series the seasonal-naive forecaster nails.
    series_.step_minutes = 10.0;
    const size_t day = 144;
    for (size_t i = 0; i < 6 * day; ++i) {
      const double phase =
          2.0 * M_PI * static_cast<double>(i % day) / static_cast<double>(day);
      series_.values.push_back(5.0 + 3.0 * std::sin(phase));
    }
    forecast::SeasonalNaiveForecaster::Options options;
    options.context_length = day;
    options.horizon = 36;
    options.season = day;
    model_ = std::make_unique<forecast::SeasonalNaiveForecaster>(options);
    ASSERT_TRUE(model_->Fit(series_.Slice(0, 4 * day)).ok());
  }

  ts::TimeSeries series_;
  std::unique_ptr<forecast::SeasonalNaiveForecaster> model_;
};

TEST_F(TestForecasterFixture, PredictiveRunCoversRange) {
  RobustQuantileAllocator allocator(0.9);
  auto alloc = RunPredictiveStrategy(*model_, allocator, series_,
                                     /*eval_start=*/4 * 144,
                                     /*num_steps=*/100, UnitConfig());
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->size(), 100u);
  for (int nodes : *alloc) {
    EXPECT_GE(nodes, 1);
  }
}

TEST_F(TestForecasterFixture, RobustCoversMoreThanPoint) {
  RobustQuantileAllocator robust(0.9);
  PointForecastAllocator point;
  auto ra = RunPredictiveStrategy(*model_, robust, series_, 4 * 144, 144,
                                  UnitConfig());
  auto pa = RunPredictiveStrategy(*model_, point, series_, 4 * 144, 144,
                                  UnitConfig());
  ASSERT_TRUE(ra.ok() && pa.ok());
  long robust_total = 0;
  long point_total = 0;
  for (size_t i = 0; i < ra->size(); ++i) {
    robust_total += (*ra)[i];
    point_total += (*pa)[i];
  }
  EXPECT_GE(robust_total, point_total);
}

TEST_F(TestForecasterFixture, PaddedRunProducesPlan) {
  PaddingEnhancement padding(
      PaddingEnhancement::Options{.error_window = 36, .quantile = 0.9});
  auto alloc = RunPaddedPointStrategy(*model_, &padding, series_, 4 * 144,
                                      72, UnitConfig());
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->size(), 72u);
  // After the first window the pad has observations.
  EXPECT_GE(padding.CurrentPad(), 0.0);
}

// ----------------------------------------------------------------- Manager ---

TEST(SmootherTest, LimitsStepDelta) {
  ScalingSmoother smoother({.max_step_delta = 2, .scale_in_cooldown = 0});
  auto out = smoother.Smooth({10, 10, 10}, /*current=*/1);
  EXPECT_EQ(out, (std::vector<int>{3, 5, 7}));
}

TEST(SmootherTest, CooldownBlocksRepeatedScaleIn) {
  ScalingSmoother smoother({.max_step_delta = 0, .scale_in_cooldown = 2});
  // Plan wants to drop immediately and keep dropping.
  auto out = smoother.Smooth({5, 4, 3, 2, 1}, /*current=*/5);
  // First drop allowed (5 -> 4... wait plan[0] is 5 = no change), then the
  // drop at 4 starts a cooldown of 2 steps.
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], 4);   // drop allowed, cooldown starts
  EXPECT_EQ(out[2], 4);   // held
  EXPECT_EQ(out[3], 4);   // held
  EXPECT_EQ(out[4], 1);   // cooldown expired
}

TEST(SmootherTest, ScaleOutNotDelayed) {
  ScalingSmoother smoother({.max_step_delta = 0, .scale_in_cooldown = 5});
  auto out = smoother.Smooth({3, 2, 8}, /*current=*/3);
  EXPECT_EQ(out[2], 8);  // scale-out passes through cooldown
}

TEST_F(TestForecasterFixture, ManagerProducesPlan) {
  RobustAutoScalingManager manager(
      model_.get(), std::make_unique<RobustQuantileAllocator>(0.9),
      UnitConfig());
  auto plan = manager.PlanNext(series_.Slice(0, 5 * 144));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->nodes.size(), model_->Horizon());
  EXPECT_EQ(plan->uncertainty.size(), model_->Horizon());
  for (int n : plan->nodes) {
    EXPECT_GE(n, 1);
  }
}

TEST_F(TestForecasterFixture, ManagerRejectsShortHistory) {
  RobustAutoScalingManager manager(
      model_.get(), std::make_unique<RobustQuantileAllocator>(0.9),
      UnitConfig());
  EXPECT_FALSE(manager.PlanNext(series_.Slice(0, 10)).ok());
}

TEST_F(TestForecasterFixture, ManagerSmootherLimitsJumps) {
  RobustAutoScalingManager manager(
      model_.get(), std::make_unique<RobustQuantileAllocator>(0.9),
      UnitConfig());
  manager.SetSmoother({.max_step_delta = 1, .scale_in_cooldown = 0});
  auto plan = manager.PlanNext(series_.Slice(0, 5 * 144), /*current=*/1);
  ASSERT_TRUE(plan.ok());
  int prev = 1;
  for (int n : plan->nodes) {
    EXPECT_LE(std::abs(n - prev), 1);
    prev = n;
  }
}

}  // namespace
}  // namespace rpas::core
