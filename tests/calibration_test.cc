// Tests for the quantile-recalibration wrapper and the rolling-origin
// backtester (library extensions, DESIGN.md §6).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "forecast/backtest.h"
#include "forecast/recalibrated.h"
#include "forecast/seasonal_naive.h"
#include "ts/metrics.h"

namespace rpas::forecast {
namespace {

constexpr size_t kDay = 144;

ts::TimeSeries NoisySine(size_t num_steps, double noise, uint64_t seed) {
  ts::TimeSeries s;
  s.step_minutes = 10.0;
  Rng rng(seed);
  for (size_t i = 0; i < num_steps; ++i) {
    const double phase = 2.0 * M_PI * static_cast<double>(i % kDay) /
                         static_cast<double>(kDay);
    s.values.push_back(10.0 + 4.0 * std::sin(phase) + noise * rng.Normal());
  }
  return s;
}

/// A deliberately *overconfident* forecaster: seasonal-naive point forecast
/// with intervals shrunk to a fraction of the honest residual spread. Its
/// nominal 0.9 quantile covers far less than 90% — exactly the failure the
/// recalibration wrapper must repair.
class OverconfidentForecaster final : public Forecaster {
 public:
  OverconfidentForecaster(size_t horizon, double shrink)
      : horizon_(horizon), shrink_(shrink) {
    SeasonalNaiveForecaster::Options options;
    options.context_length = kDay;
    options.horizon = horizon;
    options.season = kDay;
    options.levels = {0.1,  0.2,  0.3,  0.4,  0.5,   0.6, 0.7,
                      0.8,  0.9,  0.95, 0.98, 0.995};
    inner_ = std::make_unique<SeasonalNaiveForecaster>(options);
  }

  Status Fit(const ts::TimeSeries& train) override {
    return inner_->Fit(train);
  }

  Result<ts::QuantileForecast> Predict(
      const ForecastInput& input) const override {
    RPAS_ASSIGN_OR_RETURN(ts::QuantileForecast fc, inner_->Predict(input));
    // Shrink every quantile toward the median.
    std::vector<std::vector<double>> values(fc.Horizon());
    for (size_t h = 0; h < fc.Horizon(); ++h) {
      const double median = fc.Value(h, 0.5);
      values[h].reserve(fc.Levels().size());
      for (size_t q = 0; q < fc.Levels().size(); ++q) {
        values[h].push_back(median +
                            shrink_ * (fc.ValueAtIndex(h, q) - median));
      }
    }
    return ts::QuantileForecast(fc.Levels(), std::move(values));
  }

  size_t Horizon() const override { return horizon_; }
  size_t ContextLength() const override { return kDay; }
  const std::vector<double>& Levels() const override {
    return inner_->Levels();
  }
  std::string Name() const override { return "Overconfident"; }

 private:
  size_t horizon_;
  double shrink_;
  std::unique_ptr<SeasonalNaiveForecaster> inner_;
};

TEST(RecalibratedTest, RepairsOverconfidentCoverage) {
  ts::TimeSeries series = NoisySine(14 * kDay, 1.0, 1);
  auto [train, test] = series.SplitTail(2 * kDay);

  // Raw overconfident model: nominal 0.9 covers far less than 0.9.
  auto raw = std::make_unique<OverconfidentForecaster>(36, 0.6);
  ASSERT_TRUE(raw->Fit(train).ok());
  auto raw_rolled = RollForecasts(*raw, train, test, 36);
  ASSERT_TRUE(raw_rolled.ok());
  auto raw_report = ts::EvaluateForecasts(raw_rolled->forecasts,
                                          raw_rolled->actuals, {0.9});
  ASSERT_LT(raw_report.coverage.at(0.9), 0.85) << "premise: miscalibrated";

  // Wrapped model: coverage at nominal 0.9 must move close to 0.9.
  RecalibratedForecaster::Options options;
  options.calibration_steps = 3 * kDay;
  options.stride = 36;
  RecalibratedForecaster wrapped(
      std::make_unique<OverconfidentForecaster>(36, 0.6), options);
  ASSERT_TRUE(wrapped.Fit(train).ok());
  auto cal_rolled = RollForecasts(wrapped, train, test, 36);
  ASSERT_TRUE(cal_rolled.ok());
  auto cal_report = ts::EvaluateForecasts(cal_rolled->forecasts,
                                          cal_rolled->actuals, {0.9});
  EXPECT_GT(cal_report.coverage.at(0.9),
            raw_report.coverage.at(0.9) + 0.05);
  EXPECT_NEAR(cal_report.coverage.at(0.9), 0.9, 0.1);
}

TEST(RecalibratedTest, RemappedLevelMonotone) {
  ts::TimeSeries series = NoisySine(10 * kDay, 1.0, 2);
  RecalibratedForecaster::Options options;
  options.calibration_steps = 2 * kDay;
  options.stride = 36;
  RecalibratedForecaster wrapped(
      std::make_unique<OverconfidentForecaster>(36, 0.4), options);
  ASSERT_TRUE(wrapped.Fit(series).ok());
  double prev = 0.0;
  for (double nominal : {0.1, 0.3, 0.5, 0.7, 0.9, 0.95}) {
    const double mapped = wrapped.RemappedLevel(nominal);
    EXPECT_GE(mapped, prev);
    EXPECT_GT(mapped, 0.0);
    EXPECT_LT(mapped, 1.0);
    prev = mapped;
  }
}

TEST(RecalibratedTest, OverconfidentModelMapsToMoreExtremeLevels) {
  ts::TimeSeries series = NoisySine(10 * kDay, 1.0, 3);
  RecalibratedForecaster::Options options;
  options.calibration_steps = 2 * kDay;
  options.stride = 36;
  RecalibratedForecaster wrapped(
      std::make_unique<OverconfidentForecaster>(36, 0.6), options);
  ASSERT_TRUE(wrapped.Fit(series).ok());
  // To reach true 0.9 coverage an overconfident model must be queried
  // beyond its nominal 0.9.
  EXPECT_GT(wrapped.RemappedLevel(0.9), 0.9);
}

TEST(RecalibratedTest, NameAndPlumbing) {
  RecalibratedForecaster::Options options;
  RecalibratedForecaster wrapped(
      std::make_unique<OverconfidentForecaster>(36, 0.5), options);
  EXPECT_EQ(wrapped.Name(), "Overconfident+recalibrated");
  EXPECT_EQ(wrapped.Horizon(), 36u);
  ForecastInput input;
  input.context.assign(kDay, 1.0);
  EXPECT_EQ(wrapped.Predict(input).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RecalibratedTest, RejectsTooShortSeries) {
  RecalibratedForecaster::Options options;
  options.calibration_steps = 5 * kDay;
  RecalibratedForecaster wrapped(
      std::make_unique<OverconfidentForecaster>(36, 0.5), options);
  ts::TimeSeries tiny = NoisySine(5 * kDay, 1.0, 4);
  EXPECT_FALSE(wrapped.Fit(tiny).ok());
}

// ---------------------------------------------------------------- Backtest ---

TEST(BacktestTest, RunsRequestedFolds) {
  ts::TimeSeries series = NoisySine(16 * kDay, 0.5, 5);
  BacktestOptions options;
  options.folds = 3;
  options.fold_steps = kDay;
  auto result = Backtest(
      []() -> std::unique_ptr<Forecaster> {
        SeasonalNaiveForecaster::Options o;
        o.context_length = kDay;
        o.horizon = 36;
        o.season = kDay;
        return std::make_unique<SeasonalNaiveForecaster>(o);
      },
      series, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->fold_reports.size(), 3u);
  EXPECT_GT(result->mean_wql.mean, 0.0);
  EXPECT_GE(result->mean_wql.stddev, 0.0);
  EXPECT_FALSE(result->coverage.empty());
}

TEST(BacktestTest, PerfectModelHasZeroErrorAndZeroVariance) {
  ts::TimeSeries series = NoisySine(16 * kDay, 0.0, 6);  // noiseless
  BacktestOptions options;
  options.folds = 2;
  options.fold_steps = kDay;
  options.levels = {0.5};
  auto result = Backtest(
      []() -> std::unique_ptr<Forecaster> {
        SeasonalNaiveForecaster::Options o;
        o.context_length = kDay;
        o.horizon = 36;
        o.season = kDay;
        return std::make_unique<SeasonalNaiveForecaster>(o);
      },
      series, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->mse.mean, 0.0, 1e-9);
  EXPECT_NEAR(result->mse.stddev, 0.0, 1e-9);
}

TEST(BacktestTest, RejectsBadConfigs) {
  ts::TimeSeries series = NoisySine(4 * kDay, 0.5, 7);
  BacktestOptions options;
  options.folds = 0;
  auto factory = []() -> std::unique_ptr<Forecaster> {
    return std::make_unique<SeasonalNaiveForecaster>(
        SeasonalNaiveForecaster::Options{});
  };
  EXPECT_FALSE(Backtest(factory, series, options).ok());
  options.folds = 50;
  options.fold_steps = kDay;
  EXPECT_FALSE(Backtest(factory, series, options).ok());  // too short
}

TEST(BacktestTest, NullFactoryRejected) {
  ts::TimeSeries series = NoisySine(16 * kDay, 0.5, 8);
  BacktestOptions options;
  options.folds = 1;
  options.fold_steps = kDay;
  auto result = Backtest(
      []() -> std::unique_ptr<Forecaster> { return nullptr; }, series,
      options);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace rpas::forecast
