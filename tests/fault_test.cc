// Fault-injection harness and graceful degradation of the online scaling
// loop: per-fault-type coverage (actuation delay, partial scale-out,
// transient crash, workload spike, forecaster timeout / NaN / stale) with
// seed-deterministic assertions, plus the degradation-policy guarantees —
// bounded retry, reactive/last-known-good fallback, never aborting, and an
// inert all-zero plan.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "common/rng.h"
#include "core/manager.h"
#include "core/online_loop.h"
#include "core/strategies.h"
#include "forecast/seasonal_naive.h"
#include "simdb/cluster.h"
#include "simdb/faults.h"

namespace rpas {
namespace {

constexpr size_t kDay = 144;

ts::TimeSeries SineSeries(size_t num_steps, double noise, uint64_t seed) {
  ts::TimeSeries s;
  s.step_minutes = 10.0;
  Rng rng(seed);
  for (size_t i = 0; i < num_steps; ++i) {
    const double phase = 2.0 * M_PI * static_cast<double>(i % kDay) /
                         static_cast<double>(kDay);
    s.values.push_back(10.0 + 4.0 * std::sin(phase) + noise * rng.Normal());
  }
  return s;
}

// -------------------------------------------------------- FaultInjector ---

TEST(FaultInjectorTest, ZeroPlanIsInert) {
  simdb::FaultPlan plan;
  EXPECT_FALSE(plan.Any());
  simdb::FaultInjector injector(plan);
  for (size_t step = 0; step < 200; ++step) {
    EXPECT_FALSE(injector.FaultsForStep(step).Any()) << "step " << step;
  }
}

TEST(FaultInjectorTest, ScheduleIsPurePerStep) {
  simdb::FaultPlan plan = simdb::FaultPlan::Uniform(0.3, 77);
  simdb::FaultInjector a(plan);
  simdb::FaultInjector b(plan);
  // Query b in reverse order; per-step faults must match a's exactly.
  std::vector<simdb::StepFaults> forward;
  for (size_t step = 0; step < 100; ++step) {
    forward.push_back(a.FaultsForStep(step));
  }
  for (size_t step = 100; step-- > 0;) {
    const simdb::StepFaults f = b.FaultsForStep(step);
    EXPECT_EQ(f.actuation_delayed, forward[step].actuation_delayed);
    EXPECT_EQ(f.partial_fraction, forward[step].partial_fraction);
    EXPECT_EQ(f.crash_nodes, forward[step].crash_nodes);
    EXPECT_EQ(f.workload_multiplier, forward[step].workload_multiplier);
    EXPECT_EQ(f.forecaster_timeout_attempts,
              forward[step].forecaster_timeout_attempts);
    EXPECT_EQ(f.forecaster_nan, forward[step].forecaster_nan);
    EXPECT_EQ(f.stale_forecast, forward[step].stale_forecast);
  }
}

TEST(FaultInjectorTest, SeedsProduceDifferentSchedules) {
  simdb::FaultInjector a(simdb::FaultPlan::Uniform(0.2, 1));
  simdb::FaultInjector b(simdb::FaultPlan::Uniform(0.2, 2));
  size_t differing = 0;
  for (size_t step = 0; step < 200; ++step) {
    if (a.FaultsForStep(step).Any() != b.FaultsForStep(step).Any()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultInjectorTest, DelayFaultCoversConsecutiveSteps) {
  simdb::FaultPlan plan;
  plan.actuation_delay_rate = 0.1;
  plan.actuation_delay_steps = 3;
  plan.seed = 5;
  simdb::FaultInjector injector(plan);
  // Every firing must extend over the next actuation_delay_steps steps.
  simdb::FaultPlan single = plan;
  single.actuation_delay_steps = 1;
  simdb::FaultInjector origin(single);
  for (size_t step = 0; step < 300; ++step) {
    if (origin.FaultsForStep(step).actuation_delayed) {
      for (size_t k = 0; k < 3; ++k) {
        EXPECT_TRUE(injector.FaultsForStep(step + k).actuation_delayed)
            << "fault at " << step << " must still hold at +" << k;
      }
    }
  }
}

TEST(FaultInjectorTest, RatesScaleFaultFrequency) {
  size_t low = 0;
  size_t high = 0;
  simdb::FaultInjector sparse(simdb::FaultPlan::Uniform(0.02, 9));
  simdb::FaultInjector dense(simdb::FaultPlan::Uniform(0.5, 9));
  for (size_t step = 0; step < 500; ++step) {
    low += sparse.FaultsForStep(step).Any() ? 1 : 0;
    high += dense.FaultsForStep(step).Any() ? 1 : 0;
  }
  EXPECT_LT(low, high);
  EXPECT_GT(low, 0u);
}

// ------------------------------------------------------- Cluster faults ---

simdb::Cluster::Options ClusterOptions() {
  simdb::Cluster::Options options;
  options.step_seconds = 600.0;
  options.node_capacity = 1.0;
  options.utilization_threshold = 0.7;
  options.checkpoint_gb = 4.0;
  options.initial_nodes = 1;
  return options;
}

TEST(ClusterFaultTest, ActuationDelayDefersScaleOut) {
  simdb::Cluster cluster(ClusterOptions());
  simdb::StepFaults delayed;
  delayed.actuation_delayed = true;
  simdb::StepStats stats = cluster.Step(4, 1.0, delayed);
  EXPECT_EQ(stats.nodes_added, 0);
  EXPECT_EQ(stats.nodes_delayed, 3);
  EXPECT_EQ(cluster.NumNodes(), 1);
  // Outage clears; the re-request lands.
  stats = cluster.Step(4, 1.0);
  EXPECT_EQ(stats.nodes_added, 3);
  EXPECT_EQ(stats.nodes_delayed, 0);
  EXPECT_EQ(cluster.NumNodes(), 4);
}

TEST(ClusterFaultTest, DelayDoesNotBlockScaleIn) {
  simdb::Cluster cluster(ClusterOptions());
  cluster.Step(5, 1.0);
  simdb::StepFaults delayed;
  delayed.actuation_delayed = true;
  simdb::StepStats stats = cluster.Step(2, 1.0, delayed);
  EXPECT_EQ(stats.nodes_removed, 3);
  EXPECT_EQ(cluster.NumNodes(), 2);
}

TEST(ClusterFaultTest, PartialScaleOutGrantsFraction) {
  simdb::Cluster cluster(ClusterOptions());
  simdb::StepFaults partial;
  partial.partial_fraction = 0.5;
  // Requested 4 new nodes, got floor(4 * 0.5) = 2.
  simdb::StepStats stats = cluster.Step(5, 1.0, partial);
  EXPECT_EQ(stats.nodes_added, 2);
  EXPECT_EQ(stats.nodes_denied, 2);
  EXPECT_EQ(cluster.NumNodes(), 3);
}

TEST(ClusterFaultTest, CrashDropsNodesButNeverBelowOne) {
  simdb::Cluster cluster(ClusterOptions());
  cluster.Step(4, 1.0);
  simdb::StepFaults crash;
  crash.crash_nodes = 2;
  simdb::StepStats stats = cluster.Step(4, 1.0, crash);
  EXPECT_EQ(stats.nodes_failed, 2);
  EXPECT_EQ(cluster.NumNodes(), 2);
  EXPECT_EQ(cluster.total_failures(), 2);

  crash.crash_nodes = 100;
  stats = cluster.Step(2, 1.0, crash);
  EXPECT_GE(cluster.NumNodes(), 1);
}

TEST(ClusterFaultTest, SpikeMultipliesRealizedWorkload) {
  simdb::Cluster cluster(ClusterOptions());
  cluster.Step(2, 0.5);
  simdb::StepFaults spike;
  spike.workload_multiplier = 3.0;
  simdb::StepStats stats = cluster.Step(2, 0.5, spike);
  EXPECT_DOUBLE_EQ(stats.workload, 1.5);
  EXPECT_DOUBLE_EQ(stats.spike_multiplier, 3.0);
  EXPECT_NEAR(stats.avg_utilization, 0.75, 1e-9);
  EXPECT_TRUE(stats.under_provisioned);
}

TEST(ClusterFaultTest, DefaultFaultsMatchPlainStepBitwise) {
  simdb::Cluster plain(ClusterOptions());
  simdb::Cluster faulted(ClusterOptions());
  for (int i = 0; i < 30; ++i) {
    const int target = 1 + (i * 7) % 5;
    const double w = 0.3 * static_cast<double>(1 + i % 4);
    const simdb::StepStats a = plain.Step(target, w);
    const simdb::StepStats b = faulted.Step(target, w, simdb::StepFaults{});
    EXPECT_EQ(a.effective_nodes, b.effective_nodes);
    EXPECT_EQ(a.avg_utilization, b.avg_utilization);
    EXPECT_EQ(a.nodes_added, b.nodes_added);
    EXPECT_EQ(a.nodes_removed, b.nodes_removed);
    EXPECT_EQ(a.p_latency_ms, b.p_latency_ms);
  }
}

// --------------------------------------------------- Online loop faults ---

class FaultLoopFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    series_ = SineSeries(8 * kDay, 0.3, 11);
    forecast::SeasonalNaiveForecaster::Options options;
    options.context_length = kDay;
    options.horizon = 36;
    options.season = kDay;
    model_ = std::make_unique<forecast::SeasonalNaiveForecaster>(options);
    ASSERT_TRUE(model_->Fit(series_.Slice(0, 6 * kDay)).ok());
    config_.theta = 2.0;
    config_.min_nodes = 1;
    manager_ = std::make_unique<core::RobustAutoScalingManager>(
        model_.get(), std::make_unique<core::RobustQuantileAllocator>(0.9),
        config_);
  }

  core::OnlineLoopOptions LoopOptions() const {
    core::OnlineLoopOptions options;
    options.cluster.node_capacity = config_.theta;
    options.cluster.utilization_threshold = 1.0;
    options.cluster.initial_nodes = 5;
    return options;
  }

  ts::TimeSeries series_;
  std::unique_ptr<forecast::SeasonalNaiveForecaster> model_;
  core::ScalingConfig config_;
  std::unique_ptr<core::RobustAutoScalingManager> manager_;
};

TEST_F(FaultLoopFixture, ZeroFaultPlanLeavesOutputUntouched) {
  core::OnlineLoopOptions clean = LoopOptions();
  core::OnlineLoopOptions zeroed = LoopOptions();
  zeroed.faults = simdb::FaultPlan{};  // explicit all-zero plan
  zeroed.faults.seed = 999;            // seed alone must not matter
  auto a = core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay, clean);
  auto b = core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay, zeroed);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->allocation, b->allocation);
  ASSERT_EQ(a->steps.size(), b->steps.size());
  for (size_t i = 0; i < a->steps.size(); ++i) {
    EXPECT_EQ(a->steps[i].effective_nodes, b->steps[i].effective_nodes);
    EXPECT_EQ(a->steps[i].avg_utilization, b->steps[i].avg_utilization);
  }
  EXPECT_EQ(a->slo_violation_rate, b->slo_violation_rate);
  EXPECT_TRUE(b->fault_events.empty());
  EXPECT_EQ(b->forecaster_faults, 0u);
  EXPECT_EQ(b->fallback_plans, 0u);
  EXPECT_EQ(b->faulted_steps, 0u);
  EXPECT_EQ(b->degraded_steps, 0u);
}

TEST_F(FaultLoopFixture, TimeoutWithinRetryBudgetRecoversExactPlan) {
  // Every planning round times out once; one retry (budget 2) recovers the
  // same forecast, so the applied allocation is bit-identical to the clean
  // run while the event log records the recoveries.
  core::OnlineLoopOptions faulty = LoopOptions();
  faulty.faults.forecaster_timeout_rate = 1.0;
  faulty.faults.forecaster_timeout_attempts = 1;
  faulty.degradation.max_retries = 2;
  auto clean =
      core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay, LoopOptions());
  auto faulted =
      core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay, faulty);
  ASSERT_TRUE(clean.ok() && faulted.ok());
  EXPECT_EQ(clean->allocation, faulted->allocation);
  EXPECT_EQ(faulted->retried_plans, faulted->plans_made);
  EXPECT_EQ(faulted->forecaster_faults, faulted->plans_made);
  EXPECT_EQ(faulted->fallback_plans, 0u);
  ASSERT_FALSE(faulted->fault_events.empty());
  for (const simdb::FaultEvent& e : faulted->fault_events) {
    EXPECT_EQ(e.type, simdb::FaultType::kForecasterTimeout);
    EXPECT_EQ(e.action, simdb::FaultAction::kRetrySucceeded);
    EXPECT_EQ(e.retries, 1);
  }
}

TEST_F(FaultLoopFixture, TimeoutBeyondRetryBudgetFallsBack) {
  core::OnlineLoopOptions faulty = LoopOptions();
  faulty.faults.forecaster_timeout_rate = 1.0;
  faulty.faults.forecaster_timeout_attempts = 5;
  faulty.degradation.max_retries = 2;
  auto result =
      core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay, faulty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->allocation.size(), kDay);
  EXPECT_GT(result->fallback_plans, 0u);
  EXPECT_EQ(result->retried_plans, 0u);
  EXPECT_GT(result->degraded_steps, 0u);
  // No plan ever succeeded, so the very first fallback (and every later
  // one) is reactive.
  bool saw_reactive = false;
  for (const simdb::FaultEvent& e : result->fault_events) {
    EXPECT_EQ(e.type, simdb::FaultType::kForecasterTimeout);
    if (e.action == simdb::FaultAction::kFallbackReactive) {
      saw_reactive = true;
    }
  }
  EXPECT_TRUE(saw_reactive);
  // Degraded operation stays conservative: never below the initial count.
  for (int nodes : result->allocation) {
    EXPECT_GE(nodes, 5);
  }
}

TEST_F(FaultLoopFixture, NanFaultCountsOneAttemptAndRecovers) {
  core::OnlineLoopOptions faulty = LoopOptions();
  faulty.faults.forecaster_nan_rate = 1.0;
  faulty.degradation.max_retries = 1;
  auto clean =
      core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay, LoopOptions());
  auto result =
      core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay, faulty);
  ASSERT_TRUE(clean.ok() && result.ok());
  // NaN output is detected, retried once, and the retry recovers the
  // clean forecast.
  EXPECT_EQ(clean->allocation, result->allocation);
  EXPECT_EQ(result->retried_plans, result->plans_made);
  for (const simdb::FaultEvent& e : result->fault_events) {
    EXPECT_EQ(e.type, simdb::FaultType::kForecasterNan);
    EXPECT_EQ(e.action, simdb::FaultAction::kRetrySucceeded);
  }
}

TEST_F(FaultLoopFixture, NanFallbackIsReactiveWhenNoPlanEverSucceeded) {
  core::OnlineLoopOptions faulty = LoopOptions();
  faulty.faults.forecaster_nan_rate = 1.0;
  faulty.degradation.max_retries = 0;  // no retries: every round degrades
  faulty.replan_every = 12;
  auto result =
      core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay, faulty);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->fallback_plans, result->plans_made);
  for (const simdb::FaultEvent& e : result->fault_events) {
    EXPECT_EQ(e.type, simdb::FaultType::kForecasterNan);
    // No plan ever succeeds, so every fallback is reactive.
    EXPECT_EQ(e.action, simdb::FaultAction::kFallbackReactive);
  }
}

TEST_F(FaultLoopFixture, FallbackUsesLastGoodPlanAfterOneSuccess) {
  // Intermittent timeouts that outlast the retry budget: rounds that fall
  // after a successful round must fall back to the last known-good level,
  // not the purely reactive plan.
  core::OnlineLoopOptions faulty = LoopOptions();
  faulty.faults.forecaster_timeout_rate = 0.6;
  faulty.faults.forecaster_timeout_attempts = 5;
  faulty.faults.seed = 7;
  faulty.degradation.max_retries = 1;
  faulty.replan_every = 6;
  auto result =
      core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay, faulty);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->fallback_plans, 0u);
  EXPECT_LT(result->fallback_plans, result->plans_made);  // some succeeded
  bool saw_last_good = false;
  for (const simdb::FaultEvent& e : result->fault_events) {
    if (e.action == simdb::FaultAction::kFallbackLastGood) {
      saw_last_good = true;
    }
  }
  EXPECT_TRUE(saw_last_good);
}

TEST_F(FaultLoopFixture, StaleForecastReplaysLastGoodPlan) {
  core::OnlineLoopOptions faulty = LoopOptions();
  faulty.faults.stale_forecast_rate = 1.0;
  faulty.replan_every = 12;
  auto result =
      core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay, faulty);
  ASSERT_TRUE(result.ok());
  // First round has no cache and plans normally; every later round is
  // stale.
  EXPECT_EQ(result->stale_plans, result->plans_made - 1);
  size_t stale_events = 0;
  for (const simdb::FaultEvent& e : result->fault_events) {
    if (e.type == simdb::FaultType::kStaleForecast) {
      ++stale_events;
    }
  }
  EXPECT_EQ(stale_events, result->stale_plans);
  // The replayed plan is the first 12 steps of the last good plan, so the
  // allocation repeats the first round's prefix.
  for (size_t i = 12; i < 2 * 12; ++i) {
    EXPECT_EQ(result->allocation[i], result->allocation[i - 12]);
  }
}

TEST_F(FaultLoopFixture, CompositeFaultsDegradeGracefully) {
  core::OnlineLoopOptions faulty = LoopOptions();
  faulty.faults = simdb::FaultPlan::Uniform(0.15, 2024);
  faulty.faults.forecaster_timeout_attempts = 4;
  faulty.degradation.max_retries = 1;
  auto clean = core::RunOnlineLoop(*manager_, series_, 6 * kDay, 2 * kDay,
                                   LoopOptions());
  auto result = core::RunOnlineLoop(*manager_, series_, 6 * kDay, 2 * kDay,
                                    faulty);
  ASSERT_TRUE(clean.ok() && result.ok());
  EXPECT_EQ(result->allocation.size(), 2 * kDay);
  EXPECT_EQ(result->steps.size(), 2 * kDay);
  EXPECT_GT(result->faulted_steps, 0u);
  EXPECT_FALSE(result->fault_events.empty());
  // Faults hurt but do not break: SLO violations stay a minority of steps.
  EXPECT_GE(result->slo_violation_rate, clean->slo_violation_rate);
  EXPECT_LT(result->slo_violation_rate, 0.5);
  // Deterministic: the same options reproduce the run bit-for-bit.
  auto replay = core::RunOnlineLoop(*manager_, series_, 6 * kDay, 2 * kDay,
                                    faulty);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(result->allocation, replay->allocation);
  ASSERT_EQ(result->fault_events.size(), replay->fault_events.size());
  for (size_t i = 0; i < result->fault_events.size(); ++i) {
    EXPECT_EQ(result->fault_events[i].step, replay->fault_events[i].step);
    EXPECT_EQ(result->fault_events[i].type, replay->fault_events[i].type);
    EXPECT_EQ(result->fault_events[i].action,
              replay->fault_events[i].action);
  }
}

TEST_F(FaultLoopFixture, CrashAndSpikeEventsCarryMagnitudes) {
  core::OnlineLoopOptions faulty = LoopOptions();
  faulty.faults.crash_rate = 0.3;
  faulty.faults.crash_nodes = 2;
  faulty.faults.spike_rate = 0.3;
  faulty.faults.spike_multiplier = 2.5;
  faulty.faults.seed = 31;
  auto result =
      core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay, faulty);
  ASSERT_TRUE(result.ok());
  bool saw_crash = false;
  bool saw_spike = false;
  for (const simdb::FaultEvent& e : result->fault_events) {
    if (e.type == simdb::FaultType::kNodeCrash) {
      saw_crash = true;
      EXPECT_GE(e.magnitude, 1.0);
      EXPECT_LE(e.magnitude, 2.0);
    }
    if (e.type == simdb::FaultType::kWorkloadSpike) {
      saw_spike = true;
      EXPECT_DOUBLE_EQ(e.magnitude, 2.5);
    }
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_spike);
}

// ------------------------------------------- Manager fault validation ---

// Forecaster stub whose quantile output is poisoned with NaN.
class NanForecaster final : public forecast::Forecaster {
 public:
  Status Fit(const ts::TimeSeries&) override { return Status::OK(); }
  Result<ts::QuantileForecast> Predict(
      const forecast::ForecastInput&) const override {
    const std::vector<double> levels = {0.5, 0.9};
    std::vector<std::vector<double>> values(
        4, {1.0, std::numeric_limits<double>::quiet_NaN()});
    return ts::QuantileForecast(levels, std::move(values));
  }
  size_t Horizon() const override { return 4; }
  size_t ContextLength() const override { return 4; }
  const std::vector<double>& Levels() const override { return levels_; }
  std::string Name() const override { return "NanStub"; }

 private:
  std::vector<double> levels_ = {0.5, 0.9};
};

TEST(ManagerValidationTest, NanForecastRejectedAsInternal) {
  NanForecaster model;
  core::ScalingConfig config;
  core::RobustAutoScalingManager manager(
      &model, std::make_unique<core::RobustQuantileAllocator>(0.9), config);
  ts::TimeSeries history;
  history.values = {1.0, 2.0, 3.0, 4.0, 5.0};
  auto plan = manager.PlanNext(history, 1);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInternal);
}

TEST(ManagerValidationTest, GenuinePlannerErrorDegradesUnderFaultPlan) {
  // A forecaster that always errors: without a fault plan the loop
  // propagates the error; with one it degrades reactively and completes.
  class FailingForecaster final : public forecast::Forecaster {
   public:
    Status Fit(const ts::TimeSeries&) override { return Status::OK(); }
    Result<ts::QuantileForecast> Predict(
        const forecast::ForecastInput&) const override {
      return Status::Internal("model unavailable");
    }
    size_t Horizon() const override { return 4; }
    size_t ContextLength() const override { return 4; }
    const std::vector<double>& Levels() const override { return levels_; }
    std::string Name() const override { return "FailStub"; }

   private:
    std::vector<double> levels_ = {0.5, 0.9};
  } model;

  core::ScalingConfig config;
  config.theta = 2.0;
  core::RobustAutoScalingManager manager(
      &model, std::make_unique<core::RobustQuantileAllocator>(0.9), config);
  ts::TimeSeries series = SineSeries(64, 0.1, 3);

  core::OnlineLoopOptions clean;
  clean.cluster.node_capacity = config.theta;
  auto failing = core::RunOnlineLoop(manager, series, 8, 16, clean);
  ASSERT_FALSE(failing.ok());
  EXPECT_EQ(failing.status().code(), StatusCode::kInternal);

  core::OnlineLoopOptions faulted = clean;
  faulted.faults.spike_rate = 1e-9;  // non-zero plan arms degradation
  auto degraded = core::RunOnlineLoop(manager, series, 8, 16, faulted);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->allocation.size(), 16u);
  EXPECT_GT(degraded->fallback_plans, 0u);
  bool saw_planner_error = false;
  for (const simdb::FaultEvent& e : degraded->fault_events) {
    if (e.type == simdb::FaultType::kPlannerError) {
      saw_planner_error = true;
      EXPECT_EQ(e.action, simdb::FaultAction::kFallbackReactive);
    }
  }
  EXPECT_TRUE(saw_planner_error);
}

// ------------------------------------------------ Up-front validation ---

TEST_F(FaultLoopFixture, RejectsRangePastSeriesUpFront) {
  auto result = core::RunOnlineLoop(*manager_, series_, series_.size() - 10,
                                    20, LoopOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FaultLoopFixture, RejectsInsufficientContextUpFront) {
  // Context length is one day; starting earlier must fail before any
  // simulation work, as InvalidArgument.
  auto result =
      core::RunOnlineLoop(*manager_, series_, kDay / 2, 10, LoopOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rpas
