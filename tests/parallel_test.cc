// Tests for the deterministic parallel execution layer: ThreadPool /
// ParallelFor semantics and the bit-determinism guarantee that
// RPAS_NUM_THREADS=1 and RPAS_NUM_THREADS=4 produce identical results for
// the parallel GEMM and the parallel rolling-origin backtest.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/manager.h"
#include "core/online_loop.h"
#include "core/strategies.h"
#include "forecast/backtest.h"
#include "forecast/mlp.h"
#include "forecast/seasonal_naive.h"
#include "simdb/faults.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "trace/generator.h"

namespace rpas {
namespace {

// Restores the default thread count even when a test fails mid-way.
class ThreadOverrideGuard {
 public:
  ~ThreadOverrideGuard() { SetRpasThreads(0); }
};

// ------------------------------------------------------- thread config ---

TEST(ThreadConfigTest, ParseThreadCountAcceptsOnlyWholeValidTokens) {
  // Valid counts parse.
  EXPECT_EQ(1, ParseThreadCount("1", -1));
  EXPECT_EQ(8, ParseThreadCount("8", -1));
  EXPECT_EQ(kMaxRpasThreads, ParseThreadCount("256", -1));
  // Regression: "8x" used to silently parse as 8 because the endptr was
  // never checked. Any trailing garbage must reject the whole token.
  EXPECT_EQ(-1, ParseThreadCount("8x", -1));
  EXPECT_EQ(-1, ParseThreadCount("2,4", -1));
  EXPECT_EQ(-1, ParseThreadCount("8 threads", -1));
  EXPECT_EQ(-1, ParseThreadCount("threads", -1));
  EXPECT_EQ(-1, ParseThreadCount("", -1));
  EXPECT_EQ(-1, ParseThreadCount(nullptr, -1));
  // Non-positive counts are meaningless for a pool size.
  EXPECT_EQ(-1, ParseThreadCount("0", -1));
  EXPECT_EQ(-1, ParseThreadCount("-3", -1));
  // Regression: values above INT_MAX used to be truncated by the cast.
  // Overflow of strtol itself rejects; merely-huge values clamp (the
  // intent — as many threads as possible — is clear).
  EXPECT_EQ(-1, ParseThreadCount("99999999999999999999999", -1));
  EXPECT_EQ(kMaxRpasThreads, ParseThreadCount("4096", -1));
  EXPECT_EQ(kMaxRpasThreads, ParseThreadCount("2147483647", -1));
  // The fallback is caller-chosen.
  EXPECT_EQ(7, ParseThreadCount("garbage", 7));
}

// ------------------------------------------------------------- ThreadPool ---

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  constexpr int kTasks = 64;
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (done.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return done.load() == kTasks; }));
}

TEST(ThreadPoolTest, EnsureThreadsGrowsButNeverShrinks) {
  ThreadPool pool(1);
  pool.EnsureThreads(4);
  EXPECT_EQ(pool.num_threads(), 4);
  pool.EnsureThreads(2);
  EXPECT_EQ(pool.num_threads(), 4);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue drained
  EXPECT_EQ(done.load(), 32);
}

// ------------------------------------------------------------ ParallelFor ---

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  ThreadOverrideGuard guard;
  SetRpasThreads(4);
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 2, [&](size_t, size_t) { calls.fetch_add(1); });
  ParallelFor(7, 3, 2, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeIsOneChunk) {
  ThreadOverrideGuard guard;
  SetRpasThreads(4);
  std::vector<std::pair<size_t, size_t>> chunks;
  std::mutex mu;
  ParallelFor(2, 9, 100, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 2u);
  EXPECT_EQ(chunks[0].second, 9u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadOverrideGuard guard;
  SetRpasThreads(4);
  constexpr size_t kN = 1003;  // deliberately not a multiple of the grain
  std::vector<int> hits(kN, 0);
  ParallelFor(0, kN, 17, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ++hits[i];  // chunks are disjoint, so no synchronization needed
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroGrainTreatedAsOne) {
  ThreadOverrideGuard guard;
  SetRpasThreads(2);
  std::atomic<size_t> total{0};
  ParallelFor(0, 10, 0, [&](size_t begin, size_t end) {
    EXPECT_EQ(end, begin + 1);
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 10u);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ThreadOverrideGuard guard;
  SetRpasThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [&](size_t begin, size_t) {
                    if (begin == 37) {
                      throw std::runtime_error("chunk 37 failed");
                    }
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, ExceptionPropagatesOnSerialPathToo) {
  ThreadOverrideGuard guard;
  SetRpasThreads(1);
  EXPECT_THROW(ParallelFor(0, 4, 1,
                           [&](size_t, size_t) {
                             throw std::runtime_error("serial failure");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, NestedCallsRunWithoutDeadlock) {
  ThreadOverrideGuard guard;
  SetRpasThreads(4);
  std::atomic<int> total{0};
  ParallelFor(0, 8, 1, [&](size_t, size_t) {
    // The inner call lands on a pool worker (or the caller) and must fall
    // back to serial execution instead of blocking on pool capacity.
    ParallelFor(0, 8, 1, [&](size_t, size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

// ------------------------------------------------------------ Determinism ---

TEST(DeterminismTest, MatMulBitIdenticalAcrossThreadCounts) {
  ThreadOverrideGuard guard;
  Rng rng(123);
  tensor::Matrix a(200, 150);
  tensor::Matrix b(150, 170);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Normal();
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = rng.Normal();
  }
  SetRpasThreads(1);
  tensor::Matrix serial = tensor::MatMul(a, b);
  SetRpasThreads(4);
  tensor::Matrix parallel = tensor::MatMul(a, b);
  ASSERT_TRUE(serial.SameShape(parallel));
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "flat index " << i;
  }
}

forecast::SeededForecasterFactory SmallMlpFactory() {
  return [](size_t, uint64_t seed) {
    forecast::MlpForecaster::Options options;
    options.context_length = 24;
    options.horizon = 6;
    options.hidden_dim = 8;
    options.num_hidden_layers = 1;
    options.batch_size = 8;
    options.train.steps = 30;
    options.train.lr = 1e-3;
    options.use_time_features = false;
    options.seed = seed;
    return std::make_unique<forecast::MlpForecaster>(options);
  };
}

TEST(DeterminismTest, BacktestSerialEqualsParallelBitwise) {
  ThreadOverrideGuard guard;
  trace::SyntheticTraceGenerator gen(trace::AlibabaProfile(), 77);
  const ts::TimeSeries series = gen.GenerateCpu(5 * 144);

  forecast::BacktestOptions options;
  options.folds = 3;
  options.fold_steps = 48;
  options.base_seed = 2024;

  SetRpasThreads(1);
  options.parallel = false;
  auto serial = forecast::Backtest(SmallMlpFactory(), series, options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  SetRpasThreads(4);
  options.parallel = true;
  auto parallel = forecast::Backtest(SmallMlpFactory(), series, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ASSERT_EQ(serial->fold_reports.size(), parallel->fold_reports.size());
  for (size_t fold = 0; fold < serial->fold_reports.size(); ++fold) {
    const auto& sr = serial->fold_reports[fold];
    const auto& pr = parallel->fold_reports[fold];
    EXPECT_EQ(sr.mean_wql, pr.mean_wql) << "fold " << fold;
    EXPECT_EQ(sr.mse, pr.mse) << "fold " << fold;
    EXPECT_EQ(sr.mae, pr.mae) << "fold " << fold;
    ASSERT_EQ(sr.coverage.size(), pr.coverage.size());
    for (const auto& [tau, cov] : sr.coverage) {
      EXPECT_EQ(cov, pr.coverage.at(tau)) << "fold " << fold << " tau "
                                          << tau;
    }
  }
  EXPECT_EQ(serial->mean_wql.mean, parallel->mean_wql.mean);
  EXPECT_EQ(serial->mean_wql.stddev, parallel->mean_wql.stddev);
  EXPECT_EQ(serial->mse.mean, parallel->mse.mean);
  EXPECT_EQ(serial->mae.mean, parallel->mae.mean);
}

TEST(DeterminismTest, FaultedOnlineLoopBitIdenticalAcrossThreadCounts) {
  // The fault schedule is a pure function of (plan.seed, step), so a fixed
  // FaultPlan must drive the online loop to bit-identical outputs whether
  // the process-wide pool runs 1 thread or 4.
  ThreadOverrideGuard guard;
  constexpr size_t kDay = 144;
  trace::SyntheticTraceGenerator gen(trace::AlibabaProfile(), 31);
  const ts::TimeSeries series = gen.GenerateCpu(8 * kDay);

  forecast::SeasonalNaiveForecaster::Options options;
  options.context_length = kDay;
  options.horizon = 36;
  options.season = kDay;
  forecast::SeasonalNaiveForecaster model(options);
  ASSERT_TRUE(model.Fit(series.Slice(0, 6 * kDay)).ok());
  core::ScalingConfig config;
  config.theta = 2.0;
  config.min_nodes = 1;
  core::RobustAutoScalingManager manager(
      &model, std::make_unique<core::RobustQuantileAllocator>(0.9), config);

  core::OnlineLoopOptions loop;
  loop.cluster.node_capacity = config.theta;
  loop.cluster.utilization_threshold = 1.0;
  loop.cluster.initial_nodes = 5;
  loop.faults = simdb::FaultPlan::Uniform(0.15, 2024);

  SetRpasThreads(1);
  auto serial = core::RunOnlineLoop(manager, series, 6 * kDay, kDay, loop);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  SetRpasThreads(4);
  auto parallel = core::RunOnlineLoop(manager, series, 6 * kDay, kDay, loop);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(serial->allocation, parallel->allocation);
  ASSERT_EQ(serial->steps.size(), parallel->steps.size());
  for (size_t i = 0; i < serial->steps.size(); ++i) {
    ASSERT_EQ(serial->steps[i].workload, parallel->steps[i].workload)
        << "step " << i;
    ASSERT_EQ(serial->steps[i].effective_nodes,
              parallel->steps[i].effective_nodes)
        << "step " << i;
    ASSERT_EQ(serial->steps[i].avg_utilization,
              parallel->steps[i].avg_utilization)
        << "step " << i;
    ASSERT_EQ(serial->steps[i].nodes_failed, parallel->steps[i].nodes_failed)
        << "step " << i;
  }
  ASSERT_EQ(serial->fault_events.size(), parallel->fault_events.size());
  for (size_t i = 0; i < serial->fault_events.size(); ++i) {
    EXPECT_EQ(serial->fault_events[i].step, parallel->fault_events[i].step);
    EXPECT_EQ(serial->fault_events[i].type, parallel->fault_events[i].type);
    EXPECT_EQ(serial->fault_events[i].action,
              parallel->fault_events[i].action);
    EXPECT_EQ(serial->fault_events[i].magnitude,
              parallel->fault_events[i].magnitude);
  }
  EXPECT_EQ(serial->fallback_plans, parallel->fallback_plans);
  EXPECT_EQ(serial->retried_plans, parallel->retried_plans);
  EXPECT_EQ(serial->stale_plans, parallel->stale_plans);
  EXPECT_EQ(serial->faulted_steps, parallel->faulted_steps);
  EXPECT_EQ(serial->slo_violation_rate, parallel->slo_violation_rate);
  EXPECT_EQ(serial->mean_utilization, parallel->mean_utilization);
  EXPECT_EQ(serial->total_node_steps, parallel->total_node_steps);
}

TEST(DeterminismTest, BacktestFoldSeedsAreIndependent) {
  // Distinct folds must receive distinct derived seeds, and the derivation
  // must be a pure function of (base, fold).
  EXPECT_NE(DeriveSeed(2024, 0), DeriveSeed(2024, 1));
  EXPECT_NE(DeriveSeed(2024, 1), DeriveSeed(2025, 1));
  EXPECT_EQ(DeriveSeed(2024, 3), DeriveSeed(2024, 3));
}

TEST(DeterminismTest, TraceGeneratorBitIdenticalAcrossThreadCounts) {
  // Trace synthesis feeds every bench and the serving fleet; its output
  // must be a pure function of (profile, seed) no matter how many pool
  // threads happen to be configured when it runs.
  ThreadOverrideGuard guard;
  for (const trace::TraceProfile& profile :
       {trace::AlibabaProfile(), trace::GoogleProfile()}) {
    SetRpasThreads(1);
    const ts::TimeSeries serial =
        trace::SyntheticTraceGenerator(profile, 2024).GenerateCpu(576);
    for (int threads : {2, 4, 8}) {
      SetRpasThreads(threads);
      const ts::TimeSeries parallel =
          trace::SyntheticTraceGenerator(profile, 2024).GenerateCpu(576);
      ASSERT_EQ(serial.size(), parallel.size()) << profile.name;
      for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial.values[i], parallel.values[i])
            << profile.name << " step " << i << " at " << threads
            << " threads";
      }
    }
  }
}

TEST(DeterminismTest, TraceGeneratorRepeatableAndSeedSensitive) {
  const trace::TraceProfile profile = trace::AlibabaProfile();
  const ts::TimeSeries a =
      trace::SyntheticTraceGenerator(profile, 7).GenerateCpu(288);
  const ts::TimeSeries b =
      trace::SyntheticTraceGenerator(profile, 7).GenerateCpu(288);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.values[i], b.values[i]) << "step " << i;
  }
  // A different seed must actually change the trace.
  const ts::TimeSeries c =
      trace::SyntheticTraceGenerator(profile, 8).GenerateCpu(288);
  size_t diffs = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diffs += a.values[i] != c.values[i] ? 1 : 0;
  }
  EXPECT_GT(diffs, a.size() / 2);
}

TEST(DeterminismTest, TraceGeneratorCpuViewMatchesFullTrace) {
  // GenerateCpu is documented as a view of Generate's CPU series; the two
  // entry points must never drift apart (the generator is stateless, so a
  // second call replays the same streams).
  const trace::TraceProfile profile = trace::GoogleProfile();
  const trace::SyntheticTraceGenerator generator(profile, 11);
  const ts::TimeSeries cpu_only = generator.GenerateCpu(288);
  const trace::ResourceTrace full = generator.Generate(288);
  ASSERT_EQ(cpu_only.size(), full.cpu.size());
  for (size_t i = 0; i < cpu_only.size(); ++i) {
    ASSERT_EQ(cpu_only.values[i], full.cpu.values[i]) << "step " << i;
  }
}

// Timing report for the acceptance criterion (>= 2x at 4 threads on >= 4
// cores). Informational on smaller machines: the determinism assertions
// above are the hard guarantee; wall-clock depends on the hardware the
// suite happens to run on.
TEST(DeterminismTest, ReportsGemmSpeedupAtFourThreads) {
  ThreadOverrideGuard guard;
  Rng rng(9);
  const size_t n = 256;
  tensor::Matrix a(n, n);
  tensor::Matrix b(n, n);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Normal();
    b[i] = rng.Normal();
  }
  SetRpasThreads(1);
  tensor::Matrix warm = tensor::MatMul(a, b);
  Stopwatch sw;
  for (int r = 0; r < 4; ++r) {
    warm = tensor::MatMul(a, b);
  }
  const double serial_ms = sw.ElapsedMillis() / 4;

  SetRpasThreads(4);
  warm = tensor::MatMul(a, b);  // warm-up spawns the pool threads
  sw.Reset();
  for (int r = 0; r < 4; ++r) {
    warm = tensor::MatMul(a, b);
  }
  const double parallel_ms = sw.ElapsedMillis() / 4;

  std::printf("[parallel_test] gemm %zux%zu serial %.2f ms, 4 threads "
              "%.2f ms, speedup %.2fx\n",
              n, n, serial_ms, parallel_ms, serial_ms / parallel_ms);
}

}  // namespace
}  // namespace rpas
