// rpasq.v1 format hardening: structure-aware malformed-input corpus,
// round-trip / golden-file properties, and the fp16/q8 numeric contracts.
//
// The loader treats checkpoint files as untrusted input. Every case in the
// malformed corpus below must produce a typed Status (InvalidArgument for
// malformed bytes, IoError for filesystem failures) — never a crash, UB,
// or a partially constructed checkpoint. The suite runs under ASan and
// TSan in CI; the corpus replay doubles as the deterministic fuzz corpus
// for tier-1 ctest.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "nn/qcheckpoint.h"
#include "tensor/quant.h"

#ifndef RPAS_TEST_DATA_DIR
#define RPAS_TEST_DATA_DIR "tests/data"
#endif

namespace rpas::nn {
namespace {

using tensor::DType;
using tensor::Matrix;

constexpr size_t kAlign = kQckptAlign;

// Field offsets in the fixed header (see qcheckpoint.h layout comment).
constexpr size_t kOffVersion = 8;
constexpr size_t kOffFlags = 12;
constexpr size_t kOffNumTensors = 16;
constexpr size_t kOffHeaderBytes = 20;
constexpr size_t kOffSignatureLen = 24;
constexpr size_t kFixedHeader = 28;

std::string TmpPath(const char* tag) {
  return StrFormat("/tmp/rpas_ckpt_fmt_%s_%ld.rpasq", tag,
                   static_cast<long>(::getpid()));
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  RPAS_CHECK(in.is_open()) << path;
  const std::streamoff size = in.tellg();
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  RPAS_CHECK(!in.fail());
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  RPAS_CHECK(out.is_open()) << path;
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  RPAS_CHECK(!out.fail());
}

uint32_t GetU32(const std::vector<uint8_t>& b, size_t off) {
  return static_cast<uint32_t>(b[off]) |
         (static_cast<uint32_t>(b[off + 1]) << 8) |
         (static_cast<uint32_t>(b[off + 2]) << 16) |
         (static_cast<uint32_t>(b[off + 3]) << 24);
}

void SetU16(std::vector<uint8_t>* b, size_t off, uint16_t v) {
  (*b)[off] = static_cast<uint8_t>(v & 0xFFu);
  (*b)[off + 1] = static_cast<uint8_t>(v >> 8);
}

void SetU32(std::vector<uint8_t>* b, size_t off, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*b)[off + static_cast<size_t>(i)] =
        static_cast<uint8_t>((v >> (8 * i)) & 0xFFu);
  }
}

void SetU64(std::vector<uint8_t>* b, size_t off, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*b)[off + static_cast<size_t>(i)] =
        static_cast<uint8_t>((v >> (8 * i)) & 0xFFu);
  }
}

/// Recomputes the header checksum after a deliberate header tamper, so the
/// corpus case reaches the specific validation it targets instead of
/// tripping the checksum first.
void FixHeaderCrc(std::vector<uint8_t>* b) {
  const size_t hb = GetU32(*b, kOffHeaderBytes);
  RPAS_CHECK(hb >= 4 && hb <= b->size());
  SetU32(b, hb - 4, Crc32(b->data(), hb - 4));
}

/// Writes `bytes` to a scratch file and attempts to map it.
Status MapBytes(const std::vector<uint8_t>& bytes) {
  const std::string path = TmpPath("case");
  WriteFileBytes(path, bytes);
  auto mapped = QuantizedCheckpoint::Map(path);
  std::remove(path.c_str());
  return mapped.ok() ? Status::OK() : mapped.status();
}

/// Deterministic fp64 values that are exact in every IEEE width we store
/// headers for (small rationals with power-of-two denominators), so golden
/// bytes are identical across platforms and compilers.
double RefValue(size_t i, size_t j) {
  return (static_cast<double>((i * 31 + j * 17) % 97) - 48.0) / 16.0;
}

Matrix RefMatrix(size_t rows, size_t cols) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      m(i, j) = RefValue(i, j);
    }
  }
  return m;
}

/// The reference checkpoint every corruption case starts from: a q8 weight
/// (two rows of two q8 blocks each), an f16 weight, and an exact f64 bias.
struct Reference {
  std::string path;
  std::vector<uint8_t> bytes;
  Matrix w_q8;
  Matrix w_f16;
  Matrix bias;
};

const Reference& Ref() {
  static const Reference* ref = [] {
    auto* r = new Reference;
    r->path = TmpPath("ref");
    r->w_q8 = RefMatrix(2, 128);
    r->w_f16 = RefMatrix(4, 8);
    r->bias = RefMatrix(1, 6);
    const std::vector<QTensorSpec> specs{
        {"w_q8", DType::kQ8, &r->w_q8},
        {"w_f16", DType::kF16, &r->w_f16},
        {"bias", DType::kF64, &r->bias},
    };
    RPAS_CHECK(
        WriteQuantizedCheckpoint(r->path, "FMT test v1", specs).ok());
    r->bytes = ReadFileBytes(r->path);
    return r;
  }();
  return *ref;
}

/// Byte offset of tensor table entry `index` inside the reference header.
size_t EntryOffset(const std::vector<uint8_t>& b, size_t index) {
  size_t pos = kFixedHeader + GetU32(b, kOffSignatureLen);
  for (size_t i = 0; i < index; ++i) {
    const size_t name_len = b[pos] | (b[pos + 1] << 8);
    pos += 2 + name_len + 1 + 1 + 4 * 8 + 4;
  }
  return pos;
}

/// Field offsets within one table entry, relative to the entry start.
struct EntryFields {
  size_t name_len = 0;  ///< at entry start (u16)
  size_t dtype = 0;
  size_t reserved = 0;
  size_t rows = 0;
  size_t cols = 0;
  size_t offset = 0;
  size_t payload_bytes = 0;
  size_t crc = 0;
};

EntryFields FieldsAt(const std::vector<uint8_t>& b, size_t entry_off) {
  const size_t name_len = b[entry_off] | (b[entry_off + 1] << 8);
  EntryFields f;
  f.name_len = entry_off;
  f.dtype = entry_off + 2 + name_len;
  f.reserved = f.dtype + 1;
  f.rows = f.dtype + 2;
  f.cols = f.dtype + 10;
  f.offset = f.dtype + 18;
  f.payload_bytes = f.dtype + 26;
  f.crc = f.dtype + 34;
  return f;
}

void ExpectRejected(const std::vector<uint8_t>& bytes, const char* what,
                    const char* expect_substr) {
  const Status st = MapBytes(bytes);
  EXPECT_FALSE(st.ok()) << what;
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << what << ": "
                                                     << st.ToString();
  EXPECT_NE(st.ToString().find(expect_substr), std::string::npos)
      << what << ": got '" << st.ToString() << "', wanted substring '"
      << expect_substr << "'";
}

// ---------------------------------------------------------------------------
// Malformed-input corpus: every case is a structure-aware corruption of the
// valid reference file and must be rejected with a typed InvalidArgument.
// ---------------------------------------------------------------------------

TEST(CkptFormatFuzz, ValidReferenceMaps) {
  const Status st = MapBytes(Ref().bytes);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(CkptFormatFuzz, EmptyFile) {
  ExpectRejected({}, "empty file", "file is empty");
}

TEST(CkptFormatFuzz, TruncatedFixedHeader) {
  std::vector<uint8_t> b(Ref().bytes.begin(), Ref().bytes.begin() + 10);
  ExpectRejected(b, "10-byte file", "truncated fixed header");
}

TEST(CkptFormatFuzz, BadMagicFirstByte) {
  auto b = Ref().bytes;
  b[0] ^= 0xFF;
  ExpectRejected(b, "flipped magic[0]", "bad magic");
}

TEST(CkptFormatFuzz, BadMagicTrailingNul) {
  auto b = Ref().bytes;
  b[7] = 1;
  ExpectRejected(b, "nonzero magic[7]", "bad magic");
}

TEST(CkptFormatFuzz, FutureVersionRejected) {
  auto b = Ref().bytes;
  SetU32(&b, kOffVersion, 2);
  ExpectRejected(b, "version 2", "unsupported format version");
}

TEST(CkptFormatFuzz, VersionZeroRejected) {
  auto b = Ref().bytes;
  SetU32(&b, kOffVersion, 0);
  ExpectRejected(b, "version 0", "unsupported format version");
}

TEST(CkptFormatFuzz, UnknownFlagBitLow) {
  auto b = Ref().bytes;
  SetU32(&b, kOffFlags, 1);
  ExpectRejected(b, "flags=1", "unknown flag bits");
}

TEST(CkptFormatFuzz, UnknownFlagBitHigh) {
  auto b = Ref().bytes;
  SetU32(&b, kOffFlags, 0x80000000u);
  ExpectRejected(b, "flags=MSB", "unknown flag bits");
}

TEST(CkptFormatFuzz, ZeroTensorCount) {
  auto b = Ref().bytes;
  SetU32(&b, kOffNumTensors, 0);
  ExpectRejected(b, "0 tensors", "tensor count");
}

TEST(CkptFormatFuzz, AbsurdTensorCount) {
  auto b = Ref().bytes;
  SetU32(&b, kOffNumTensors, 1u << 20);
  ExpectRejected(b, "2^20 tensors", "tensor count");
}

TEST(CkptFormatFuzz, InflatedTensorCountReadsPadding) {
  auto b = Ref().bytes;
  // The phantom fourth entry starts in the zero padding, so its name_len
  // decodes as 0 and the name check rejects it before any overrun.
  SetU32(&b, kOffNumTensors, GetU32(b, kOffNumTensors) + 1);
  FixHeaderCrc(&b);
  ExpectRejected(b, "count+1", "missing or oversized name");
}

TEST(CkptFormatFuzz, TensorTableTruncatedMidEntry) {
  auto b = Ref().bytes;
  // Growing the last entry's name_len (still within the name cap) pushes
  // its fixed fields past the checksum trailer: the entry reader must stop
  // at the header region's edge, not read into the trailer or beyond.
  SetU16(&b, FieldsAt(b, EntryOffset(b, 2)).name_len, 30);
  FixHeaderCrc(&b);
  ExpectRejected(b, "name_len grown to 30", "tensor table truncated");
}

TEST(CkptFormatFuzz, MisalignedHeaderBytes) {
  auto b = Ref().bytes;
  SetU32(&b, kOffHeaderBytes, GetU32(b, kOffHeaderBytes) + 1);
  ExpectRejected(b, "header_bytes+1", "misaligned or exceeds");
}

TEST(CkptFormatFuzz, HeaderBytesBeyondFile) {
  auto b = Ref().bytes;
  SetU32(&b, kOffHeaderBytes,
         static_cast<uint32_t>((b.size() / kAlign + 2) * kAlign));
  ExpectRejected(b, "header beyond EOF", "misaligned or exceeds");
}

TEST(CkptFormatFuzz, ZeroHeaderBytes) {
  auto b = Ref().bytes;
  SetU32(&b, kOffHeaderBytes, 0);
  ExpectRejected(b, "header_bytes=0", "misaligned or exceeds");
}

TEST(CkptFormatFuzz, ZeroSignatureLen) {
  auto b = Ref().bytes;
  SetU32(&b, kOffSignatureLen, 0);
  ExpectRejected(b, "sig_len=0", "signature length");
}

TEST(CkptFormatFuzz, OversizedSignatureLen) {
  auto b = Ref().bytes;
  SetU32(&b, kOffSignatureLen, 5000);
  ExpectRejected(b, "sig_len=5000", "signature length");
}

TEST(CkptFormatFuzz, SignatureOverrunsHeaderRegion) {
  auto b = Ref().bytes;
  // In-cap length that still overruns the region before the crc trailer.
  SetU32(&b, kOffSignatureLen, GetU32(b, kOffHeaderBytes) - 4);
  FixHeaderCrc(&b);
  ExpectRejected(b, "sig overrun", "signature overruns");
}

TEST(CkptFormatFuzz, HeaderChecksumMismatch) {
  auto b = Ref().bytes;
  b[kFixedHeader] ^= 0x01;  // first signature byte, crc left stale
  ExpectRejected(b, "flipped signature byte", "header checksum mismatch");
}

TEST(CkptFormatFuzz, HeaderChecksumFieldTampered) {
  auto b = Ref().bytes;
  b[GetU32(b, kOffHeaderBytes) - 2] ^= 0x40;
  ExpectRejected(b, "flipped crc byte", "header checksum mismatch");
}

TEST(CkptFormatFuzz, ZeroNameLen) {
  auto b = Ref().bytes;
  SetU16(&b, FieldsAt(b, EntryOffset(b, 0)).name_len, 0);
  FixHeaderCrc(&b);
  ExpectRejected(b, "name_len=0", "missing or oversized name");
}

TEST(CkptFormatFuzz, OversizedNameLen) {
  auto b = Ref().bytes;
  SetU16(&b, FieldsAt(b, EntryOffset(b, 0)).name_len, 300);
  FixHeaderCrc(&b);
  ExpectRejected(b, "name_len=300", "missing or oversized name");
}

TEST(CkptFormatFuzz, UnknownDTypeCode) {
  auto b = Ref().bytes;
  b[FieldsAt(b, EntryOffset(b, 0)).dtype] = 9;
  FixHeaderCrc(&b);
  ExpectRejected(b, "dtype=9", "unknown dtype code");
}

TEST(CkptFormatFuzz, ReservedByteNonzero) {
  auto b = Ref().bytes;
  b[FieldsAt(b, EntryOffset(b, 0)).reserved] = 1;
  FixHeaderCrc(&b);
  ExpectRejected(b, "reserved=1", "unknown dtype code");
}

TEST(CkptFormatFuzz, ZeroRows) {
  auto b = Ref().bytes;
  SetU64(&b, FieldsAt(b, EntryOffset(b, 1)).rows, 0);
  FixHeaderCrc(&b);
  ExpectRejected(b, "rows=0", "empty or exceeds the format caps");
}

TEST(CkptFormatFuzz, DimExceedsCap) {
  auto b = Ref().bytes;
  SetU64(&b, FieldsAt(b, EntryOffset(b, 1)).rows, (uint64_t{1} << 24) + 1);
  FixHeaderCrc(&b);
  ExpectRejected(b, "rows=2^24+1", "exceeds the format caps");
}

TEST(CkptFormatFuzz, ElementCountExceedsCap) {
  auto b = Ref().bytes;
  // Each dim inside the per-dim cap; the product overflows the element cap
  // (and would overflow a 32-bit multiply if the loader used one).
  const EntryFields f = FieldsAt(b, EntryOffset(b, 1));
  SetU64(&b, f.rows, uint64_t{1} << 20);
  SetU64(&b, f.cols, uint64_t{1} << 20);
  FixHeaderCrc(&b);
  ExpectRejected(b, "2^40 elements", "exceeds the format caps");
}

TEST(CkptFormatFuzz, PayloadBytesShapeMismatch) {
  auto b = Ref().bytes;
  const EntryFields f = FieldsAt(b, EntryOffset(b, 0));
  SetU64(&b, f.payload_bytes,
         GetU32(b, f.payload_bytes) + 1);
  FixHeaderCrc(&b);
  ExpectRejected(b, "payload_bytes+1", "requires");
}

TEST(CkptFormatFuzz, ShapeGrownWithoutPayload) {
  auto b = Ref().bytes;
  // Doubling the rows without touching payload_bytes must be caught by the
  // shape/payload consistency check, never by reading past the payload.
  const EntryFields f = FieldsAt(b, EntryOffset(b, 2));
  SetU64(&b, f.rows, 2);
  FixHeaderCrc(&b);
  ExpectRejected(b, "rows doubled", "requires");
}

TEST(CkptFormatFuzz, MisalignedPayloadOffset) {
  auto b = Ref().bytes;
  const EntryFields f = FieldsAt(b, EntryOffset(b, 0));
  SetU64(&b, f.offset, GetU32(b, f.offset) + 8);
  FixHeaderCrc(&b);
  ExpectRejected(b, "offset+8", "misaligned or out of the file's bounds");
}

TEST(CkptFormatFuzz, PayloadOffsetInsideHeader) {
  auto b = Ref().bytes;
  SetU64(&b, FieldsAt(b, EntryOffset(b, 0)).offset, 0);
  FixHeaderCrc(&b);
  ExpectRejected(b, "offset=0", "misaligned or out of the file's bounds");
}

TEST(CkptFormatFuzz, PayloadOffsetBeyondFile) {
  auto b = Ref().bytes;
  const uint64_t past = (b.size() / kAlign + 4) * kAlign;
  SetU64(&b, FieldsAt(b, EntryOffset(b, 0)).offset, past);
  FixHeaderCrc(&b);
  ExpectRejected(b, "offset beyond EOF",
                 "misaligned or out of the file's bounds");
}

TEST(CkptFormatFuzz, PayloadOffsetOverflowBait) {
  auto b = Ref().bytes;
  // offset + payload_bytes wraps uint64; the bounds check must be written
  // overflow-safe (payload_bytes > file - offset) to catch it.
  SetU64(&b, FieldsAt(b, EntryOffset(b, 0)).offset,
         ~uint64_t{0} - kAlign + 1);
  FixHeaderCrc(&b);
  ExpectRejected(b, "offset=2^64-64",
                 "misaligned or out of the file's bounds");
}

TEST(CkptFormatFuzz, PayloadOverrunsFileEnd) {
  auto b = Ref().bytes;
  // Consistent (shape, payload_bytes) pair that points past EOF: grow the
  // f64 bias to a row of 4096 values = 32 KiB, far beyond the small file.
  const EntryFields f = FieldsAt(b, EntryOffset(b, 2));
  SetU64(&b, f.cols, 4096);
  SetU64(&b, f.payload_bytes, 4096 * 8);
  FixHeaderCrc(&b);
  ExpectRejected(b, "payload past EOF",
                 "misaligned or out of the file's bounds");
}

TEST(CkptFormatFuzz, BitFlippedPayload) {
  auto b = Ref().bytes;
  const EntryFields f = FieldsAt(b, EntryOffset(b, 0));
  b[GetU32(b, f.offset)] ^= 0x10;
  ExpectRejected(b, "payload bit flip", "payload checksum mismatch");
}

TEST(CkptFormatFuzz, PayloadCrcFieldTampered) {
  auto b = Ref().bytes;
  b[FieldsAt(b, EntryOffset(b, 1)).crc] ^= 0x01;
  FixHeaderCrc(&b);
  ExpectRejected(b, "crc field flip", "payload checksum mismatch");
}

TEST(CkptFormatFuzz, NonzeroHeaderPadding) {
  auto b = Ref().bytes;
  // Last byte before the crc trailer is padding in the reference layout.
  const size_t hb = GetU32(b, kOffHeaderBytes);
  const size_t last_entry = EntryOffset(b, 2);
  const size_t table_end =
      last_entry + (b[last_entry] | (b[last_entry + 1] << 8)) + 2 + 38;
  ASSERT_LT(table_end, hb - 4) << "reference layout has no padding";
  b[hb - 5] = 0xAB;
  FixHeaderCrc(&b);
  ExpectRejected(b, "padding byte", "non-zero bytes in the header padding");
}

TEST(CkptFormatFuzz, TruncatedMidPayload) {
  auto b = Ref().bytes;
  b.resize(b.size() - 1);
  ExpectRejected(b, "EOF-1", "out of the file's bounds");
}

TEST(CkptFormatFuzz, TruncatedToHeaderOnly) {
  auto b = Ref().bytes;
  b.resize(GetU32(b, kOffHeaderBytes));
  ExpectRejected(b, "header only", "out of the file's bounds");
}

TEST(CkptFormatFuzz, MissingFileIsIoError) {
  auto mapped = QuantizedCheckpoint::Map("/nonexistent/rpas.rpasq");
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kIoError);
}

// Every truncation length must be rejected cleanly — no crash, no
// out-of-bounds read (ASan-checked), typed error only.
TEST(CkptFormatFuzz, EveryTruncationRejected) {
  const auto& ref = Ref().bytes;
  for (size_t len = 1; len < ref.size(); len += 3) {
    std::vector<uint8_t> b(ref.begin(), ref.begin() + static_cast<long>(len));
    const Status st = MapBytes(b);
    ASSERT_FALSE(st.ok()) << "truncation to " << len << " bytes accepted";
    ASSERT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  }
}

// Single-tensor file: every byte is covered by the header checksum, the
// checksum fields themselves, or the payload checksum, so EVERY single-bit
// flip anywhere in the file must be rejected.
TEST(CkptFormatFuzz, EverySingleBitFlipRejected) {
  const std::string path = TmpPath("flip");
  const Matrix w = RefMatrix(3, 64);
  const std::vector<QTensorSpec> specs{{"w", DType::kQ8, &w}};
  ASSERT_TRUE(WriteQuantizedCheckpoint(path, "flip test", specs).ok());
  const std::vector<uint8_t> ref = ReadFileBytes(path);
  std::remove(path.c_str());
  ASSERT_TRUE(MapBytes(ref).ok());
  for (size_t i = 0; i < ref.size(); ++i) {
    std::vector<uint8_t> b = ref;
    b[i] ^= static_cast<uint8_t>(1u << (i % 8));
    const Status st = MapBytes(b);
    ASSERT_FALSE(st.ok()) << "bit flip at byte " << i << " accepted";
    ASSERT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  }
}

// Deterministic random-mutation corpus (the fuzz replay for tier-1 ctest):
// clusters of random byte mutations across the whole file. Any outcome is
// acceptable except a crash or an untyped error; a mutant that still maps
// must dequantize cleanly (no partially-valid object).
TEST(CkptFormatFuzz, RandomMutationCorpusReplay) {
  const auto& ref = Ref().bytes;
  Rng rng(0xF422u);
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<uint8_t> b = ref;
    const int mutations = 1 + static_cast<int>(rng.Uniform() * 8.0);
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = static_cast<size_t>(
          rng.Uniform() * static_cast<double>(b.size()));
      b[pos] = static_cast<uint8_t>(rng.Uniform() * 256.0);
    }
    const std::string path = TmpPath("mut");
    WriteFileBytes(path, b);
    auto mapped = QuantizedCheckpoint::Map(path);
    if (mapped.ok()) {
      // Mutations may land in dead bytes (inter-payload alignment pad);
      // the mapped object must still be fully usable.
      for (size_t i = 0; i < (*mapped)->num_tensors(); ++i) {
        Matrix decoded;
        ASSERT_TRUE(
            tensor::DequantizeToMatrix((*mapped)->tensor(i).view, &decoded)
                .ok());
      }
    } else {
      ASSERT_EQ(mapped.status().code(), StatusCode::kInvalidArgument)
          << mapped.status().ToString();
    }
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Round-trip and golden-file properties.
// ---------------------------------------------------------------------------

TEST(CkptFormatRoundTrip, SerializationIsDeterministic) {
  const std::string a = TmpPath("det_a");
  const std::string b = TmpPath("det_b");
  const Matrix w = RefMatrix(5, 70);
  const std::vector<QTensorSpec> specs{{"w", DType::kQ8, &w}};
  ASSERT_TRUE(WriteQuantizedCheckpoint(a, "det", specs).ok());
  ASSERT_TRUE(WriteQuantizedCheckpoint(b, "det", specs).ok());
  EXPECT_EQ(ReadFileBytes(a), ReadFileBytes(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(CkptFormatRoundTrip, WriterRejectsMalformedSpecs) {
  const std::string path = TmpPath("w");
  const Matrix w = RefMatrix(2, 2);
  EXPECT_FALSE(WriteQuantizedCheckpoint(path, "", {{"w", DType::kF64, &w}})
                   .ok());
  EXPECT_FALSE(WriteQuantizedCheckpoint(path, "sig", {}).ok());
  EXPECT_FALSE(
      WriteQuantizedCheckpoint(path, "sig", {{"", DType::kF64, &w}}).ok());
  EXPECT_FALSE(WriteQuantizedCheckpoint(path, "sig",
                                        {{"w", DType::kF64, nullptr}})
                   .ok());
  EXPECT_FALSE(WriteQuantizedCheckpoint(
                   path, "sig", {{std::string(300, 'n'), DType::kF64, &w}})
                   .ok());
}

TEST(CkptFormatRoundTrip, PerDtypeRoundTripWithinBounds) {
  Rng rng(31337);
  Matrix w(6, 96);
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = 4.0 * rng.Normal();
  }
  for (DType dtype :
       {DType::kF64, DType::kF32, DType::kF16, DType::kQ8}) {
    const std::string path = TmpPath("rt");
    const std::vector<QTensorSpec> specs{{"w", dtype, &w}};
    ASSERT_TRUE(WriteQuantizedCheckpoint(path, "rt", specs).ok());
    auto mapped = QuantizedCheckpoint::Map(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    const QTensor* t = (*mapped)->Find("w");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->view.dtype, dtype);
    Matrix decoded;
    ASSERT_TRUE(tensor::DequantizeToMatrix(t->view, &decoded).ok());
    ASSERT_EQ(decoded.rows(), w.rows());
    ASSERT_EQ(decoded.cols(), w.cols());
    // The decode must agree bit-for-bit with a direct encode+decode round
    // trip (the dequant GEMM path and the checkpoint path see identical
    // numbers), and the error vs fp64 must respect the dtype's bound.
    std::vector<uint8_t> payload(tensor::PayloadBytes(dtype, w.size()));
    std::vector<double> direct(w.size());
    tensor::EncodePayload(dtype, w.data(), w.size(), payload.data());
    tensor::DecodePayload(dtype, payload.data(), w.size(), direct.data());
    double max_err = 0.0;
    for (size_t i = 0; i < w.size(); ++i) {
      ASSERT_EQ(decoded[i], direct[i]) << "index " << i;
      max_err = std::max(max_err, std::fabs(decoded[i] - w[i]));
    }
    switch (dtype) {
      case DType::kF64:
        EXPECT_EQ(max_err, 0.0);
        break;
      case DType::kF32:
        EXPECT_LE(max_err, 20.0 * 0x1p-24);
        break;
      case DType::kF16:
        EXPECT_LE(max_err, 20.0 * 0x1p-11);
        break;
      case DType::kQ8:
        // Affine 8-bit: error bounded by half a quantization step of the
        // worst 64-value block; 20 covers the value range comfortably.
        EXPECT_LE(max_err, 40.0 / 255.0);
        break;
    }
    EXPECT_EQ(max_err, tensor::MaxAbsError(dtype, w.data(), w.size()));
    std::remove(path.c_str());
  }
}

TEST(CkptFormatRoundTrip, F64ToF32RoundTripErrorBounded) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = 200.0 * (rng.Uniform() - 0.5);
    const double rt = static_cast<double>(static_cast<float>(x));
    EXPECT_LE(std::fabs(x - rt), std::fabs(x) * 0x1p-24 + 1e-300);
  }
}

TEST(CkptFormatRoundTrip, F16AllBitPatternsRoundTrip) {
  // decode(bits) -> encode must reproduce every canonical finite pattern
  // and both infinities exactly; NaNs must stay NaN.
  for (uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const uint16_t h = static_cast<uint16_t>(bits);
    const float f = tensor::F16BitsToF32(h);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(
          tensor::F16BitsToF32(tensor::F32ToF16Bits(f))));
      continue;
    }
    EXPECT_EQ(tensor::F32ToF16Bits(f), h) << "pattern 0x" << std::hex
                                          << bits;
  }
}

TEST(CkptFormatRoundTrip, Q8ConstantBlockIsExact) {
  Matrix w(1, 128);
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = 3.25;
  }
  std::vector<uint8_t> payload(tensor::PayloadBytes(DType::kQ8, w.size()));
  std::vector<double> decoded(w.size());
  tensor::EncodePayload(DType::kQ8, w.data(), w.size(), payload.data());
  tensor::DecodePayload(DType::kQ8, payload.data(), w.size(),
                        decoded.data());
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(decoded[i], 3.25);
  }
}

// A minimal valid file assembled byte-by-byte from the documented layout —
// decoding it proves the on-disk format is the literal little-endian byte
// sequence the spec prescribes, independent of host integer layout.
TEST(CkptFormatGolden, HandAssembledLittleEndianFileDecodes) {
  // One f64 tensor "w" of shape 1x2 with values {1.5, -2.0}, signature "s".
  // header: 28 fixed + 1 sig + (2+1+1+1+32+4 = 41) entry + pad + crc = 128.
  std::vector<uint8_t> b(128 + 16, 0);
  const uint8_t magic[8] = {'R', 'P', 'A', 'S', 'Q', '1', 0, 0};
  std::memcpy(b.data(), magic, 8);
  SetU32(&b, 8, 1);    // version
  SetU32(&b, 12, 0);   // flags
  SetU32(&b, 16, 1);   // num_tensors
  SetU32(&b, 20, 128); // header_bytes
  SetU32(&b, 24, 1);   // signature_len
  b[28] = 's';
  size_t e = 29;
  SetU16(&b, e, 1);  // name_len
  b[e + 2] = 'w';
  b[e + 3] = 0;  // dtype f64
  b[e + 4] = 0;  // reserved
  SetU64(&b, e + 5, 1);    // rows
  SetU64(&b, e + 13, 2);   // cols
  SetU64(&b, e + 21, 128); // offset
  SetU64(&b, e + 29, 16);  // payload_bytes
  // payload: two little-endian IEEE doubles.
  SetU64(&b, 128, 0x3FF8000000000000ull);  // 1.5
  SetU64(&b, 136, 0xC000000000000000ull);  // -2.0
  SetU32(&b, e + 37, Crc32(b.data() + 128, 16));
  SetU32(&b, 124, Crc32(b.data(), 124));

  const std::string path = TmpPath("hand");
  WriteFileBytes(path, b);
  auto mapped = QuantizedCheckpoint::Map(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ((*mapped)->signature(), "s");
  ASSERT_EQ((*mapped)->num_tensors(), 1u);
  Matrix decoded;
  ASSERT_TRUE(
      tensor::DequantizeToMatrix((*mapped)->tensor(0).view, &decoded).ok());
  EXPECT_EQ(decoded(0, 0), 1.5);
  EXPECT_EQ(decoded(0, 1), -2.0);
  std::remove(path.c_str());
}

/// The golden reference tensors: one quantizable weight and one exact
/// bias, built from platform-independent exact values.
std::vector<QTensorSpec> GoldenSpecs(const Matrix& w, const Matrix& bias,
                                     DType dtype) {
  return {{"w", dtype, &w}, {"b", DType::kF64, &bias}};
}

// Golden files committed under tests/data/ pin the byte format: any writer
// change that alters serialization breaks these, forcing a deliberate
// format-version decision. Regenerate with RPAS_REGEN_GOLDEN=1 (and commit
// the new bytes plus a version bump) only when the change is intentional.
TEST(CkptFormatGolden, GoldenFilesRoundTripByteIdentical) {
  const Matrix w = RefMatrix(8, 64);
  const Matrix bias = RefMatrix(1, 8);
  for (DType dtype :
       {DType::kF64, DType::kF32, DType::kF16, DType::kQ8}) {
    const std::string golden_path = StrFormat(
        "%s/golden_%s.rpasq", RPAS_TEST_DATA_DIR, tensor::DTypeName(dtype));
    const std::string signature =
        StrFormat("golden rpasq.v1 %s", tensor::DTypeName(dtype));
    if (std::getenv("RPAS_REGEN_GOLDEN") != nullptr) {
      ASSERT_TRUE(WriteQuantizedCheckpoint(golden_path, signature,
                                           GoldenSpecs(w, bias, dtype))
                      .ok());
    }
    // Re-serialize the same tensors and compare byte-for-byte.
    const std::string fresh = TmpPath("golden");
    ASSERT_TRUE(WriteQuantizedCheckpoint(fresh, signature,
                                         GoldenSpecs(w, bias, dtype))
                    .ok());
    const std::vector<uint8_t> golden_bytes = ReadFileBytes(golden_path);
    EXPECT_EQ(ReadFileBytes(fresh), golden_bytes)
        << "serialization of " << tensor::DTypeName(dtype)
        << " drifted from the committed golden file";
    std::remove(fresh.c_str());

    // The committed bytes must validate and decode to the reference
    // values within the dtype bound.
    auto mapped = QuantizedCheckpoint::Map(golden_path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_EQ((*mapped)->signature(), signature);
    ASSERT_EQ((*mapped)->num_tensors(), 2u);
    Matrix decoded;
    ASSERT_TRUE(
        tensor::DequantizeToMatrix((*mapped)->tensor(0).view, &decoded)
            .ok());
    const double bound = tensor::MaxAbsError(dtype, w.data(), w.size());
    for (size_t i = 0; i < w.size(); ++i) {
      ASSERT_LE(std::fabs(decoded[i] - w[i]), bound + 1e-12);
    }
    Matrix decoded_bias;
    ASSERT_TRUE(tensor::DequantizeToMatrix((*mapped)->tensor(1).view,
                                           &decoded_bias)
                    .ok());
    for (size_t i = 0; i < bias.size(); ++i) {
      ASSERT_EQ(decoded_bias[i], bias[i]);  // f64 sections decode exactly
    }
  }
}

TEST(CkptFormatGolden, MappedCheckpointReportsMappedBytes) {
  const std::string path = TmpPath("acct");
  const Matrix w = RefMatrix(4, 64);
  const std::vector<QTensorSpec> specs{{"w", DType::kQ8, &w}};
  ASSERT_TRUE(WriteQuantizedCheckpoint(path, "acct", specs).ok());
  auto mapped = QuantizedCheckpoint::Map(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_GT((*mapped)->file_bytes(), 0u);
  EXPECT_EQ((*mapped)->mapped_bytes() + (*mapped)->heap_bytes(),
            (*mapped)->file_bytes());
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE((*mapped)->is_mapped());
  EXPECT_EQ((*mapped)->mapped_bytes(), (*mapped)->file_bytes());
#endif
  std::remove(path.c_str());
}

TEST(CkptFormatGolden, AssignDequantizedChecksShape) {
  const std::string path = TmpPath("assign");
  const Matrix w = RefMatrix(2, 3);
  const std::vector<QTensorSpec> specs{{"w", DType::kF64, &w}};
  ASSERT_TRUE(WriteQuantizedCheckpoint(path, "assign", specs).ok());
  auto mapped = QuantizedCheckpoint::Map(path);
  ASSERT_TRUE(mapped.ok());
  autodiff::Parameter wrong(Matrix(3, 2));
  const Matrix before = wrong.value;
  EXPECT_FALSE(AssignDequantized((*mapped)->tensor(0), &wrong).ok());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(wrong.value[i], before[i]);  // untouched on error
  }
  autodiff::Parameter right(Matrix(2, 3));
  ASSERT_TRUE(AssignDequantized((*mapped)->tensor(0), &right).ok());
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(right.value[i], w[i]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rpas::nn
