#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "simdb/cluster.h"
#include "simdb/replay.h"
#include "simdb/warmup.h"

namespace rpas::simdb {
namespace {

Cluster::Options FastOptions() {
  Cluster::Options options;
  options.step_seconds = 600.0;
  options.node_capacity = 1.0;
  options.utilization_threshold = 0.7;
  options.checkpoint_gb = 4.0;
  options.initial_nodes = 1;
  return options;
}

// ------------------------------------------------------------------ Warmup ---

TEST(WarmupTest, DeterministicWithoutRng) {
  WarmupModel model;
  model.base_latency_seconds = 1.0;
  model.replay_gbps = 2.0;
  model.jitter_fraction = 0.1;
  EXPECT_DOUBLE_EQ(model.WarmupSeconds(4.0, nullptr), 3.0);
}

TEST(WarmupTest, ScalesWithCheckpointSize) {
  WarmupModel model;
  model.base_latency_seconds = 1.0;
  model.replay_gbps = 2.0;
  EXPECT_LT(model.WarmupSeconds(1.0, nullptr),
            model.WarmupSeconds(16.0, nullptr));
}

TEST(WarmupTest, JitterBounded) {
  WarmupModel model;
  model.base_latency_seconds = 2.0;
  model.replay_gbps = 1.0;
  model.jitter_fraction = 0.1;
  Rng rng(1);
  const double nominal = 2.0 + 8.0;
  for (int i = 0; i < 1000; ++i) {
    const double w = model.WarmupSeconds(8.0, &rng);
    EXPECT_GE(w, nominal * 0.9 - 1e-9);
    EXPECT_LE(w, nominal * 1.1 + 1e-9);
  }
}

TEST(WarmupTest, ZeroLengthWarmupIsLegalAndInstant) {
  WarmupModel model;
  model.base_latency_seconds = 0.0;
  model.replay_gbps = 2.0;
  model.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(model.WarmupSeconds(0.0, nullptr), 0.0);
  // Jitter on a zero nominal stays zero (multiplicative).
  model.jitter_fraction = 0.5;
  Rng rng(3);
  EXPECT_DOUBLE_EQ(model.WarmupSeconds(0.0, &rng), 0.0);
}

TEST(WarmupTest, ZeroWarmupNodesContributeFullCapacityImmediately) {
  Cluster::Options options;
  options.step_seconds = 600.0;
  options.node_capacity = 1.0;
  options.checkpoint_gb = 0.0;
  options.warmup.base_latency_seconds = 0.0;
  options.warmup.jitter_fraction = 0.0;
  Cluster cluster(options);
  StepStats stats = cluster.Step(4, 2.0);
  EXPECT_EQ(stats.nodes_added, 3);
  EXPECT_EQ(stats.active_nodes, 4);
  EXPECT_DOUBLE_EQ(stats.effective_nodes, 4.0);
}

TEST(WarmupTest, WarmupLongerThanStepSpansMultipleSteps) {
  // Warm-up of 1500 s against 600 s steps: a joining node contributes
  // nothing for two full steps, half a node on the third, full capacity on
  // the fourth.
  Cluster::Options options;
  options.step_seconds = 600.0;
  options.node_capacity = 1.0;
  options.checkpoint_gb = 0.0;
  options.warmup.base_latency_seconds = 1500.0;
  options.warmup.jitter_fraction = 0.0;
  Cluster cluster(options);
  StepStats s1 = cluster.Step(2, 0.5);  // one old + one warming node
  EXPECT_DOUBLE_EQ(s1.effective_nodes, 1.0);
  EXPECT_EQ(s1.active_nodes, 1);
  StepStats s2 = cluster.Step(2, 0.5);
  EXPECT_DOUBLE_EQ(s2.effective_nodes, 1.0);
  StepStats s3 = cluster.Step(2, 0.5);  // 300 s of warm-up remain
  EXPECT_DOUBLE_EQ(s3.effective_nodes, 1.5);
  EXPECT_EQ(s3.active_nodes, 1);
  StepStats s4 = cluster.Step(2, 0.5);
  EXPECT_DOUBLE_EQ(s4.effective_nodes, 2.0);
  EXPECT_EQ(s4.active_nodes, 2);
}

TEST(WarmupTest, WarmupLongerThanRunNeverActivates) {
  Cluster::Options options;
  options.step_seconds = 600.0;
  options.checkpoint_gb = 0.0;
  options.warmup.base_latency_seconds = 1e6;  // outlasts any short run
  options.warmup.jitter_fraction = 0.0;
  Cluster cluster(options);
  for (int i = 0; i < 5; ++i) {
    StepStats stats = cluster.Step(3, 0.5);
    EXPECT_EQ(stats.active_nodes, 1) << "step " << i;
    EXPECT_DOUBLE_EQ(stats.effective_nodes, 1.0) << "step " << i;
  }
}

TEST(WarmupTest, ScaleInDuringWarmupRemovesWarmingNodesFirst) {
  // Scale out to 3 with a multi-step warm-up, then scale in to 2 while the
  // two new nodes are still warming: the youngest (warming) node goes
  // first, and the survivor's fractional capacity accounting continues
  // where it left off.
  Cluster::Options options;
  options.step_seconds = 600.0;
  options.checkpoint_gb = 0.0;
  options.warmup.base_latency_seconds = 900.0;  // 1.5 steps
  options.warmup.jitter_fraction = 0.0;
  Cluster cluster(options);
  StepStats s1 = cluster.Step(3, 0.5);
  EXPECT_EQ(s1.nodes_added, 2);
  // Both new nodes contribute 0 this step (900 > 600).
  EXPECT_DOUBLE_EQ(s1.effective_nodes, 1.0);
  StepStats s2 = cluster.Step(2, 0.5);
  EXPECT_EQ(s2.nodes_removed, 1);
  EXPECT_EQ(cluster.NumNodes(), 2);
  // Survivor has 300 s of warm-up left: contributes 1 - 300/600 = 0.5.
  EXPECT_DOUBLE_EQ(s2.effective_nodes, 1.5);
  EXPECT_EQ(s2.active_nodes, 1);
  StepStats s3 = cluster.Step(2, 0.5);
  EXPECT_DOUBLE_EQ(s3.effective_nodes, 2.0);
  EXPECT_EQ(s3.active_nodes, 2);
}

TEST(WarmupTest, ScaleInToOneDuringWarmupKeepsOldestNode) {
  Cluster::Options options;
  options.step_seconds = 600.0;
  options.checkpoint_gb = 0.0;
  options.warmup.base_latency_seconds = 1200.0;
  options.warmup.jitter_fraction = 0.0;
  Cluster cluster(options);
  cluster.Step(4, 0.5);
  StepStats stats = cluster.Step(1, 0.5);
  EXPECT_EQ(stats.nodes_removed, 3);
  EXPECT_EQ(cluster.NumNodes(), 1);
  // The surviving node is the original, fully-warm one.
  EXPECT_EQ(stats.active_nodes, 1);
  EXPECT_DOUBLE_EQ(stats.effective_nodes, 1.0);
}

TEST(WarmupTest, ScaleOutIsSecondsNotMinutes) {
  // The paper's Fig. 5 claim: rebuilding in-memory components takes a few
  // seconds, negligible vs a 10-minute decision interval.
  WarmupModel model;  // defaults
  EXPECT_LT(model.WarmupSeconds(8.0, nullptr), 60.0);
}

// ----------------------------------------------------------------- Cluster ---

TEST(ClusterTest, StartsWithInitialNodes) {
  Cluster cluster(FastOptions());
  EXPECT_EQ(cluster.NumNodes(), 1);
}

TEST(ClusterTest, ScaleOutAddsWarmingNodes) {
  Cluster cluster(FastOptions());
  StepStats stats = cluster.Step(4, 1.0);
  EXPECT_EQ(stats.nodes_added, 3);
  EXPECT_EQ(cluster.NumNodes(), 4);
  // New nodes contribute most of their capacity (warm-up is seconds out of
  // a 600-second step).
  EXPECT_GT(stats.effective_nodes, 3.9);
  EXPECT_LT(stats.effective_nodes, 4.0);
}

TEST(ClusterTest, SecondStepNodesFullyWarm) {
  Cluster cluster(FastOptions());
  cluster.Step(4, 1.0);
  StepStats stats = cluster.Step(4, 1.0);
  EXPECT_EQ(stats.active_nodes, 4);
  EXPECT_DOUBLE_EQ(stats.effective_nodes, 4.0);
}

TEST(ClusterTest, ScaleInImmediate) {
  Cluster cluster(FastOptions());
  cluster.Step(5, 1.0);
  StepStats stats = cluster.Step(2, 1.0);
  EXPECT_EQ(stats.nodes_removed, 3);
  EXPECT_EQ(cluster.NumNodes(), 2);
}

TEST(ClusterTest, UnderProvisionWhenOverloaded) {
  Cluster cluster(FastOptions());
  // 1 node, threshold 0.7, workload 0.9 => utilization 0.9 > 0.7.
  StepStats stats = cluster.Step(1, 0.9);
  EXPECT_TRUE(stats.under_provisioned);
  EXPECT_NEAR(stats.avg_utilization, 0.9, 1e-9);
}

TEST(ClusterTest, NotUnderProvisionedAtThreshold) {
  Cluster cluster(FastOptions());
  cluster.Step(2, 0.0);
  StepStats stats = cluster.Step(2, 1.4);  // 0.7 exactly
  EXPECT_FALSE(stats.under_provisioned);
}

TEST(ClusterTest, LatencyBlowsUpNearSaturation) {
  Cluster cluster(FastOptions());
  cluster.Step(1, 0.0);
  StepStats low = cluster.Step(1, 0.3);
  StepStats high = cluster.Step(1, 0.97);
  EXPECT_GT(high.p_latency_ms, 5.0 * low.p_latency_ms);
  EXPECT_TRUE(high.slo_violated);
}

TEST(ClusterTest, MinNodesRespected) {
  Cluster::Options options = FastOptions();
  options.min_nodes = 2;
  options.initial_nodes = 3;
  Cluster cluster(options);
  cluster.Step(1, 0.1);  // request below floor
  EXPECT_EQ(cluster.NumNodes(), 2);
}

TEST(ClusterTest, CountsScaleEventsAndDirectionChanges) {
  Cluster cluster(FastOptions());
  cluster.Step(3, 1.0);  // up
  cluster.Step(1, 1.0);  // down (change)
  cluster.Step(4, 1.0);  // up (change)
  cluster.Step(4, 1.0);  // no change
  EXPECT_EQ(cluster.total_scale_events(), 3);
  EXPECT_EQ(cluster.total_direction_changes(), 2);
}

TEST(ClusterTest, NodeStepsAccumulate) {
  Cluster cluster(FastOptions());
  cluster.Step(2, 0.5);
  cluster.Step(2, 0.5);
  EXPECT_EQ(cluster.total_node_steps(), 4);
}

// --------------------------------------------------------- Failure inject ---

TEST(FailureTest, ManualInjectionRemovesNodes) {
  Cluster cluster(FastOptions());
  cluster.Step(5, 1.0);
  cluster.InjectNodeFailures(2);
  EXPECT_EQ(cluster.NumNodes(), 3);
  EXPECT_EQ(cluster.total_failures(), 2);
}

TEST(FailureTest, InjectionNeverDropsBelowOneNode) {
  Cluster cluster(FastOptions());
  cluster.Step(3, 1.0);
  cluster.InjectNodeFailures(100);
  EXPECT_EQ(cluster.NumNodes(), 1);
}

TEST(FailureTest, NextDecisionReplacesFailedNodesWithWarmups) {
  Cluster cluster(FastOptions());
  cluster.Step(4, 1.0);
  cluster.Step(4, 1.0);  // all warm
  cluster.InjectNodeFailures(2);
  StepStats stats = cluster.Step(4, 1.0);
  EXPECT_EQ(stats.nodes_added, 2);  // autoscaler re-provisions
  // Replacement nodes spend a warm-up inside this step.
  EXPECT_LT(stats.effective_nodes, 4.0);
  EXPECT_GT(stats.effective_nodes, 3.9);
}

TEST(FailureTest, RandomFailuresReduceCapacity) {
  Cluster::Options options = FastOptions();
  options.failure_rate = 0.5;
  options.initial_nodes = 8;
  options.seed = 99;
  Cluster cluster(options);
  StepStats stats = cluster.Step(8, 1.0);
  EXPECT_GT(stats.nodes_failed, 0);
  EXPECT_LT(cluster.NumNodes(), 8);
  EXPECT_EQ(cluster.total_failures(), stats.nodes_failed);
}

TEST(FailureTest, ZeroRateNeverFails) {
  Cluster cluster(FastOptions());
  for (int i = 0; i < 50; ++i) {
    StepStats stats = cluster.Step(4, 1.0);
    EXPECT_EQ(stats.nodes_failed, 0);
  }
  EXPECT_EQ(cluster.total_failures(), 0);
}

TEST(FailureTest, AlwaysKeepsAtLeastOneNodeUnderExtremeRate) {
  Cluster::Options options = FastOptions();
  options.failure_rate = 1.0;
  options.initial_nodes = 4;
  Cluster cluster(options);
  for (int i = 0; i < 10; ++i) {
    cluster.Step(4, 1.0);
    EXPECT_GE(cluster.NumNodes(), 1);
  }
}

// ------------------------------------------------------------------ Replay ---

TEST(ReplayTest, PerfectAllocationHasNoUnderProvisioning) {
  ts::TimeSeries workload;
  workload.values = {0.5, 1.2, 2.6, 0.3};
  Cluster::Options options = FastOptions();
  // Required nodes at theta 0.7: ceil(w / 0.7) = 1, 2, 4, 1.
  auto report =
      ReplayAllocation(workload, {1, 2, 4, 1}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->under_provision_rate, 0.0);
  EXPECT_DOUBLE_EQ(report->over_provision_rate, 0.0);
}

TEST(ReplayTest, UnderAllocationDetected) {
  ts::TimeSeries workload;
  workload.values = {2.0, 2.0};
  auto report = ReplayAllocation(workload, {1, 3}, FastOptions());
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->under_provision_rate, 0.5);
}

TEST(ReplayTest, OverAllocationDetected) {
  ts::TimeSeries workload;
  workload.values = {0.5, 0.5};
  auto report = ReplayAllocation(workload, {5, 1}, FastOptions());
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->over_provision_rate, 0.5);
}

TEST(ReplayTest, LengthMismatchRejected) {
  ts::TimeSeries workload;
  workload.values = {1.0};
  EXPECT_FALSE(ReplayAllocation(workload, {1, 2}, FastOptions()).ok());
}

TEST(ReplayTest, EmptyRejected) {
  ts::TimeSeries workload;
  EXPECT_FALSE(ReplayAllocation(workload, {}, FastOptions()).ok());
}

TEST(ReplayTest, ThrashingAllocationCountsDirectionChanges) {
  ts::TimeSeries workload;
  workload.values.assign(10, 0.5);
  std::vector<int> flapping = {1, 3, 1, 3, 1, 3, 1, 3, 1, 3};
  auto report = ReplayAllocation(workload, flapping, FastOptions());
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->direction_changes, 7);
}

TEST(ReplayTest, MeanUtilizationComputed) {
  ts::TimeSeries workload;
  workload.values = {0.5, 0.5};
  Cluster::Options options = FastOptions();
  options.initial_nodes = 1;
  auto report = ReplayAllocation(workload, {1, 1}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->mean_utilization, 0.5, 1e-9);
}

}  // namespace
}  // namespace rpas::simdb
