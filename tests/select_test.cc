// Adaptive selection layer: workload classifier, selector state machine,
// TRUE pre-scaler with auto-rollback, the rolling-wQL accessor, and the
// online loop's selection_mode wiring (off = bit-identical to the
// pre-selection loop).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/online_loop.h"
#include "core/strategies.h"
#include "forecast/arima.h"
#include "forecast/rolling_wql.h"
#include "forecast/seasonal_naive.h"
#include "obs/metrics.h"
#include "select/classifier.h"
#include "select/prescaler.h"
#include "select/selector.h"
#include "trace/generator.h"

namespace rpas {
namespace {

using select::AdaptiveSelector;
using select::ClassifierOptions;
using select::PreScaler;
using select::PreScalerOptions;
using select::SelectorEvent;
using select::SelectorOptions;
using select::WorkloadClassifier;
using select::WorkloadPattern;

// ------------------------------------------------------------ Classifier ---

ClassifierOptions SmallClassifier() {
  ClassifierOptions options;
  options.window = 96;
  options.season = 24;
  options.min_points = 16;
  return options;
}

TEST(ClassifierTest, InsufficientBelowMinPoints) {
  WorkloadClassifier classifier(SmallClassifier());
  for (int i = 0; i < 10; ++i) {
    classifier.Push(5.0);
  }
  EXPECT_EQ(classifier.Classify(), WorkloadPattern::kInsufficient);
}

TEST(ClassifierTest, SteadyFlatSeriesWithNoise) {
  WorkloadClassifier classifier(SmallClassifier());
  for (int i = 0; i < 96; ++i) {
    classifier.Push(10.0 + 0.1 * std::sin(0.7 * i) +
                    0.05 * ((i * 37) % 11));
  }
  EXPECT_EQ(classifier.Classify(), WorkloadPattern::kSteady);
}

TEST(ClassifierTest, DetectsLinearTrend) {
  WorkloadClassifier classifier(SmallClassifier());
  for (int i = 0; i < 96; ++i) {
    classifier.Push(10.0 + 0.5 * i + 0.3 * std::sin(0.9 * i));
  }
  const auto features = classifier.Features();
  EXPECT_GT(features.trend_strength,
            classifier.options().trend_strength_threshold);
  EXPECT_EQ(classifier.Classify(), WorkloadPattern::kTrending);
}

TEST(ClassifierTest, DetectsSeasonalCycle) {
  WorkloadClassifier classifier(SmallClassifier());
  for (int i = 0; i < 96; ++i) {  // four full 24-step seasons
    classifier.Push(10.0 + 5.0 * std::sin(2.0 * M_PI * i / 24.0));
  }
  const auto features = classifier.Features();
  EXPECT_GT(features.seasonal_strength, 0.9);
  EXPECT_EQ(classifier.Classify(), WorkloadPattern::kSeasonal);
}

TEST(ClassifierTest, DetectsBursts) {
  WorkloadClassifier classifier(SmallClassifier());
  for (int i = 0; i < 96; ++i) {
    // Mild noise with hard spikes every 16 steps.
    const double base = 10.0 + 0.2 * std::sin(0.5 * i);
    classifier.Push(i % 16 == 7 ? base * 8.0 : base);
  }
  const auto features = classifier.Features();
  EXPECT_GE(features.burst_fraction,
            classifier.options().burst_fraction_threshold);
  EXPECT_EQ(classifier.Classify(), WorkloadPattern::kBursty);
}

TEST(ClassifierTest, BurstyDominatesSeasonal) {
  WorkloadClassifier classifier(SmallClassifier());
  for (int i = 0; i < 96; ++i) {
    const double seasonal = 10.0 + 5.0 * std::sin(2.0 * M_PI * i / 24.0);
    classifier.Push(i % 16 == 3 ? seasonal + 200.0 : seasonal);
  }
  EXPECT_EQ(classifier.Classify(), WorkloadPattern::kBursty);
}

TEST(ClassifierTest, WindowEvictsOldest) {
  WorkloadClassifier classifier(SmallClassifier());
  // A huge prefix spike must age out of the 96-point window entirely.
  classifier.Push(1e6);
  for (int i = 0; i < 96; ++i) {
    classifier.Push(10.0);
  }
  EXPECT_EQ(classifier.size(), 96u);
  EXPECT_EQ(classifier.Features().max_spike_score, 0.0);
}

TEST(ClassifierTest, StreamingMatchesOneShotBitwise) {
  const ClassifierOptions options = SmallClassifier();
  std::vector<double> series;
  for (int i = 0; i < 300; ++i) {
    series.push_back(10.0 + 4.0 * std::sin(2.0 * M_PI * i / 24.0) +
                     0.3 * ((i * 13) % 7));
  }
  WorkloadClassifier streamed(options);
  streamed.PushAll(series);
  WorkloadClassifier oneshot(options);
  const auto a = streamed.Features();
  const auto b = oneshot.FeaturesOf(series);
  EXPECT_EQ(a.points, b.points);
  EXPECT_EQ(a.trend_strength, b.trend_strength);
  EXPECT_EQ(a.seasonal_strength, b.seasonal_strength);
  EXPECT_EQ(a.burst_fraction, b.burst_fraction);
  EXPECT_EQ(a.max_spike_score, b.max_spike_score);
}

TEST(ClassifierTest, SeasonalStrengthZeroUnderTwoSeasons) {
  ClassifierOptions options = SmallClassifier();
  options.min_points = 8;
  WorkloadClassifier classifier(options);
  for (int i = 0; i < 40; ++i) {  // < 2 * 24
    classifier.Push(10.0 + 5.0 * std::sin(2.0 * M_PI * i / 24.0));
  }
  EXPECT_EQ(classifier.Features().seasonal_strength, 0.0);
}

TEST(ClassifierTest, PatternNamesAreStable) {
  EXPECT_EQ(WorkloadPatternToString(WorkloadPattern::kInsufficient),
            "insufficient");
  EXPECT_EQ(WorkloadPatternToString(WorkloadPattern::kSteady), "steady");
  EXPECT_EQ(WorkloadPatternToString(WorkloadPattern::kTrending), "trending");
  EXPECT_EQ(WorkloadPatternToString(WorkloadPattern::kSeasonal), "seasonal");
  EXPECT_EQ(WorkloadPatternToString(WorkloadPattern::kBursty), "bursty");
}

// -------------------------------------------------------------- Selector ---

SelectorOptions SmallSelector() {
  SelectorOptions options;
  options.ladder_size = 4;
  options.wql_window = 3;
  options.wql_bound = 0.10;
  options.promote_hysteresis = 0.10;
  options.probe_fraction = 0.40;
  options.min_dwell = 3;
  options.probe_cooldown = 5;
  options.fault_trip = 2;
  return options;
}

TEST(SelectorTest, SeedsTierFromPattern) {
  {
    AdaptiveSelector s(SmallSelector());
    s.SeedFromPattern(WorkloadPattern::kSteady);
    EXPECT_EQ(s.tier(), 0u);
  }
  {
    AdaptiveSelector s(SmallSelector());
    s.SeedFromPattern(WorkloadPattern::kSeasonal);
    EXPECT_EQ(s.tier(), 0u);
  }
  {
    AdaptiveSelector s(SmallSelector());
    s.SeedFromPattern(WorkloadPattern::kTrending);
    EXPECT_EQ(s.tier(), 1u);
  }
  {
    AdaptiveSelector s(SmallSelector());
    s.SeedFromPattern(WorkloadPattern::kBursty);
    EXPECT_EQ(s.tier(), 3u);
  }
}

TEST(SelectorTest, SeedIgnoredAfterFirstObservedRound) {
  AdaptiveSelector selector(SmallSelector());
  selector.ObserveRound(0.05, true, false);
  selector.SeedFromPattern(WorkloadPattern::kBursty);
  EXPECT_EQ(selector.tier(), 0u);
}

TEST(SelectorTest, PromotesOnSustainedHighWql) {
  AdaptiveSelector selector(SmallSelector());
  SelectorEvent last = SelectorEvent::kHold;
  for (int i = 0; i < 3; ++i) {
    last = selector.ObserveRound(0.5, true, false);
  }
  EXPECT_EQ(last, SelectorEvent::kPromote);
  EXPECT_EQ(selector.tier(), 1u);
  EXPECT_EQ(selector.stats().promotions, 1u);
}

TEST(SelectorTest, NoFlapInsideHysteresisDeadBand) {
  // wQL samples inside (probe_fraction * bound, (1 + hyst) * bound) must
  // never cause a switch, no matter how many rounds pass.
  AdaptiveSelector selector(SmallSelector());
  for (int i = 0; i < 200; ++i) {
    const double wql = 0.05 + 0.05 * (i % 2);  // oscillates 0.05 / 0.10
    selector.ObserveRound(wql, true, false);
  }
  EXPECT_EQ(selector.stats().switches, 0u);
  EXPECT_EQ(selector.tier(), 0u);
}

TEST(SelectorTest, MinDwellDelaysPromotion) {
  SelectorOptions options = SmallSelector();
  options.min_dwell = 6;  // longer than the window
  AdaptiveSelector selector(options);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(selector.ObserveRound(0.5, true, false), SelectorEvent::kHold);
  }
  // Sixth round satisfies the dwell; window has been full since round 3.
  EXPECT_EQ(selector.ObserveRound(0.5, true, false), SelectorEvent::kPromote);
  EXPECT_EQ(selector.dwell(), 0u);
}

TEST(SelectorTest, ProbeDemotesOnLowWql) {
  AdaptiveSelector selector(SmallSelector());
  selector.SeedFromPattern(WorkloadPattern::kBursty);  // start at top
  SelectorEvent last = SelectorEvent::kHold;
  for (int i = 0; i < 3; ++i) {
    last = selector.ObserveRound(0.01, true, false);
  }
  EXPECT_EQ(last, SelectorEvent::kProbeDemote);
  EXPECT_EQ(selector.tier(), 2u);
  EXPECT_EQ(selector.stats().probe_demotions, 1u);
}

TEST(SelectorTest, ProbeCooldownAfterPromotion) {
  SelectorOptions options = SmallSelector();
  options.min_dwell = 1;
  options.probe_cooldown = 10;
  AdaptiveSelector selector(options);
  for (int i = 0; i < 3; ++i) {
    selector.ObserveRound(0.5, true, false);  // promote to tier 1
  }
  ASSERT_EQ(selector.tier(), 1u);
  // Excellent wQL right after the promotion: the cooldown must hold the
  // tier so the selector does not immediately undo the escalation.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(selector.ObserveRound(0.01, true, false),
              SelectorEvent::kHold);
  }
  EXPECT_EQ(selector.tier(), 1u);
  // Once the cooldown expires the probe happens.
  for (int i = 0; i < 6; ++i) {
    selector.ObserveRound(0.01, true, false);
  }
  EXPECT_EQ(selector.tier(), 0u);
}

TEST(SelectorTest, FaultTripDemotesImmediatelyBypassingDwell) {
  SelectorOptions options = SmallSelector();
  options.min_dwell = 100;  // dwell would forbid any wQL-driven switch
  AdaptiveSelector selector(options);
  selector.SeedFromPattern(WorkloadPattern::kBursty);
  EXPECT_EQ(selector.ObserveRound(0.0, false, true), SelectorEvent::kHold);
  EXPECT_EQ(selector.ObserveRound(0.0, false, true),
            SelectorEvent::kFaultDemote);
  EXPECT_EQ(selector.tier(), 2u);
  EXPECT_EQ(selector.stats().fault_demotions, 1u);
}

TEST(SelectorTest, FaultCounterResetsOnCleanRound) {
  AdaptiveSelector selector(SmallSelector());
  selector.SeedFromPattern(WorkloadPattern::kBursty);
  selector.ObserveRound(0.0, false, true);
  selector.ObserveRound(0.05, true, false);  // clean round resets counter
  selector.ObserveRound(0.0, false, true);
  EXPECT_EQ(selector.stats().fault_demotions, 0u);
  EXPECT_EQ(selector.tier(), 3u);
}

TEST(SelectorTest, DriftDemotesImmediately) {
  SelectorOptions options = SmallSelector();
  options.min_dwell = 100;
  AdaptiveSelector selector(options);
  selector.SeedFromPattern(WorkloadPattern::kBursty);
  EXPECT_EQ(selector.NoteDrift(), SelectorEvent::kDriftDemote);
  EXPECT_EQ(selector.tier(), 2u);
  EXPECT_EQ(selector.stats().drift_demotions, 1u);
}

TEST(SelectorTest, DriftAtBottomTierHoldsAndClearsWindow) {
  AdaptiveSelector selector(SmallSelector());
  selector.ObserveRound(0.05, true, false);
  ASSERT_EQ(selector.RollingCount(), 1u);
  EXPECT_EQ(selector.NoteDrift(), SelectorEvent::kHold);
  EXPECT_EQ(selector.tier(), 0u);
  EXPECT_EQ(selector.RollingCount(), 0u);
}

TEST(SelectorTest, TopTierHoldsOnHighWql) {
  AdaptiveSelector selector(SmallSelector());
  selector.SeedFromPattern(WorkloadPattern::kBursty);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(selector.ObserveRound(5.0, true, false), SelectorEvent::kHold);
  }
  EXPECT_EQ(selector.tier(), 3u);
  EXPECT_EQ(selector.stats().switches, 0u);
}

TEST(SelectorTest, BottomTierHoldsOnLowWql) {
  AdaptiveSelector selector(SmallSelector());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(selector.ObserveRound(0.001, true, false),
              SelectorEvent::kHold);
  }
  EXPECT_EQ(selector.tier(), 0u);
}

TEST(SelectorTest, SwitchResetsEvidenceWindow) {
  AdaptiveSelector selector(SmallSelector());
  for (int i = 0; i < 3; ++i) {
    selector.ObserveRound(0.5, true, false);
  }
  ASSERT_EQ(selector.tier(), 1u);
  // Evidence gathered against tier 0 must not judge tier 1.
  EXPECT_EQ(selector.RollingCount(), 0u);
  EXPECT_EQ(selector.dwell(), 0u);
}

TEST(SelectorTest, InvalidWqlRoundsDoNotFillWindow) {
  AdaptiveSelector selector(SmallSelector());
  for (int i = 0; i < 50; ++i) {
    selector.ObserveRound(9.9, false, false);  // wql_valid = false
  }
  EXPECT_EQ(selector.RollingCount(), 0u);
  EXPECT_EQ(selector.stats().switches, 0u);
}

TEST(SelectorTest, StatsSwitchesBalanceByKind) {
  AdaptiveSelector selector(SmallSelector());
  selector.SeedFromPattern(WorkloadPattern::kBursty);
  for (int i = 0; i < 3; ++i) selector.ObserveRound(0.01, true, false);
  for (int i = 0; i < 2; ++i) selector.ObserveRound(0.0, false, true);
  selector.NoteDrift();
  for (int i = 0; i < 3; ++i) selector.ObserveRound(0.5, true, false);
  const auto& stats = selector.stats();
  EXPECT_EQ(stats.switches, stats.promotions + stats.probe_demotions +
                                stats.fault_demotions +
                                stats.drift_demotions);
  EXPECT_GT(stats.switches, 0u);
}

// ------------------------------------------------------------- PreScaler ---

PreScalerOptions SmallPreScaler() {
  PreScalerOptions options;
  options.lead_steps = 2;
  options.spike_ratio = 1.5;
  options.min_spike_nodes = 2;
  options.peak_hold = 1;
  options.hold_timeout = 10;
  return options;
}

TEST(PreScalerTest, RaisesFloorAheadOfPredictedSpike) {
  PreScaler prescaler(SmallPreScaler(), /*base_floor=*/1);
  // Spike to 8 nodes at offset 5 of a plan starting at step 0.
  prescaler.ObservePlan({2, 2, 2, 2, 2, 8, 8, 2}, /*start_step=*/0);
  EXPECT_EQ(prescaler.stats().spikes_detected, 1u);
  EXPECT_EQ(prescaler.FloorAt(0), 1);
  EXPECT_EQ(prescaler.FloorAt(2), 1);
  EXPECT_EQ(prescaler.FloorAt(3), 8);  // spike_step 5 - lead 2 -> raise at 3
  EXPECT_TRUE(prescaler.active());
}

TEST(PreScalerTest, NoSpikeNoEpisode) {
  PreScaler prescaler(SmallPreScaler(), 1);
  prescaler.ObservePlan({3, 3, 4, 3, 4, 3}, 0);
  EXPECT_EQ(prescaler.stats().spikes_detected, 0u);
  for (size_t s = 0; s < 6; ++s) {
    EXPECT_EQ(prescaler.FloorAt(s), 1);
  }
}

TEST(PreScalerTest, MergeNeverLowersDecision) {
  PreScaler prescaler(SmallPreScaler(), 2);
  prescaler.ObservePlan({2, 2, 2, 2, 9, 2}, 0);
  for (size_t s = 0; s < 12; ++s) {
    const int decision = static_cast<int>(3 + (s * 7) % 11);
    EXPECT_GE(prescaler.Merge(decision, s), decision);
  }
}

TEST(PreScalerTest, RollsBackAfterPeakPassed) {
  PreScaler prescaler(SmallPreScaler(), 1);
  prescaler.ObservePlan({2, 2, 2, 2, 2, 8, 8, 2}, 0);  // spike at step 5
  for (size_t s = 0; s <= 6; ++s) {
    prescaler.FloorAt(s);
  }
  EXPECT_TRUE(prescaler.active());
  // peak_hold = 1: the raise survives through step 6, rolls back at 7.
  EXPECT_EQ(prescaler.FloorAt(7), 1);
  EXPECT_FALSE(prescaler.active());
  EXPECT_EQ(prescaler.stats().rollbacks, 1u);
  EXPECT_EQ(prescaler.stats().timeout_rollbacks, 0u);
}

TEST(PreScalerTest, TimeoutRollsBackWhenPeakNeverPasses) {
  PreScalerOptions options = SmallPreScaler();
  options.hold_timeout = 4;
  options.peak_hold = 100;  // peak-passed will not fire in this test
  PreScaler prescaler(options, 1);
  prescaler.ObservePlan({2, 2, 2, 9}, 0);  // spike at step 3, raise at 1
  int rolled_back_at = -1;
  for (size_t s = 0; s < 12; ++s) {
    if (prescaler.FloorAt(s) == 1 && s >= 1 && rolled_back_at < 0 &&
        !prescaler.active()) {
      rolled_back_at = static_cast<int>(s);
    }
  }
  EXPECT_GE(rolled_back_at, 0);
  EXPECT_EQ(prescaler.stats().timeout_rollbacks, 1u);
  EXPECT_EQ(prescaler.stats().rollbacks, 1u);
}

TEST(PreScalerTest, FinishForcesRollbackBalance) {
  PreScaler prescaler(SmallPreScaler(), 1);
  prescaler.ObservePlan({2, 2, 2, 2, 2, 8}, 0);
  prescaler.FloorAt(3);  // activates
  ASSERT_TRUE(prescaler.active());
  prescaler.Finish();
  EXPECT_FALSE(prescaler.active());
  EXPECT_EQ(prescaler.stats().activations, prescaler.stats().rollbacks);
}

TEST(PreScalerTest, ActiveEpisodeNotReplacedByNewPlan) {
  PreScaler prescaler(SmallPreScaler(), 1);
  prescaler.ObservePlan({2, 2, 2, 2, 2, 8}, 0);
  prescaler.FloorAt(3);  // active, floor 8
  prescaler.ObservePlan({2, 2, 20}, 4);
  EXPECT_EQ(prescaler.stats().spikes_detected, 2u);
  EXPECT_EQ(prescaler.FloorAt(4), 8);  // still the first episode's floor
}

TEST(PreScalerTest, PendingEpisodeReplacedByFresherPlan) {
  PreScaler prescaler(SmallPreScaler(), 1);
  prescaler.ObservePlan({2, 2, 2, 2, 2, 8}, 0);   // pending raise at 3
  prescaler.ObservePlan({2, 2, 2, 2, 2, 12}, 0);  // fresher view of spike
  EXPECT_EQ(prescaler.FloorAt(3), 12);
}

TEST(PreScalerTest, LeadClampedAtStepZero) {
  PreScalerOptions options = SmallPreScaler();
  options.lead_steps = 10;
  PreScaler prescaler(options, 1);
  prescaler.ObservePlan({2, 9, 2}, 0);  // spike at absolute step 1, lead 10
  EXPECT_EQ(prescaler.FloorAt(0), 9);   // clamped to step 0, not underflow
}

TEST(PreScalerTest, OriginalFloorRestoredAfterRollback) {
  PreScaler prescaler(SmallPreScaler(), 3);
  prescaler.ObservePlan({3, 3, 3, 3, 12}, 0);
  for (size_t s = 0; s < 12; ++s) {
    prescaler.FloorAt(s);
  }
  EXPECT_FALSE(prescaler.active());
  EXPECT_EQ(prescaler.original_floor(), 3);
  EXPECT_EQ(prescaler.FloorAt(12), 3);
}

// ------------------------------------------------------------ RollingWql ---

TEST(RollingWqlTest, WindowMeanAndReset) {
  forecast::RollingWql rolling(3);
  EXPECT_EQ(rolling.Mean(), 0.0);
  rolling.Observe(1.0);
  rolling.Observe(2.0);
  EXPECT_FALSE(rolling.Full());
  rolling.Observe(3.0);
  EXPECT_TRUE(rolling.Full());
  EXPECT_DOUBLE_EQ(rolling.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(rolling.Latest(), 3.0);
  rolling.Reset();
  EXPECT_EQ(rolling.Count(), 0u);
  EXPECT_EQ(rolling.TotalObserved(), 3u);
}

TEST(RollingWqlTest, EvictsOldestBeyondCapacity) {
  forecast::RollingWql rolling(2);
  rolling.Observe(10.0);
  rolling.Observe(2.0);
  rolling.Observe(4.0);
  EXPECT_EQ(rolling.Count(), 2u);
  EXPECT_DOUBLE_EQ(rolling.Mean(), 3.0);
  EXPECT_EQ(rolling.TotalObserved(), 3u);
}

// ------------------------------------------- Online loop selection wiring ---

constexpr size_t kDay = 144;

class SelectionLoopFixture : public ::testing::Test {
 protected:
  static constexpr size_t kContext = 48;
  static constexpr size_t kHorizon = 24;

  void SetUp() override {
    trace::SyntheticTraceGenerator gen(trace::AlibabaProfile(), 7);
    series_ = gen.GenerateCpu(6 * kDay);
    eval_start_ = 4 * kDay;

    forecast::SeasonalNaiveForecaster::Options naive_options;
    naive_options.context_length = kContext;
    naive_options.horizon = kHorizon;
    naive_ = std::make_unique<forecast::SeasonalNaiveForecaster>(
        naive_options);
    ASSERT_TRUE(naive_->Fit(series_.Slice(0, eval_start_)).ok());

    forecast::ArimaForecaster::Options arima_options;
    arima_options.context_length = kContext;
    arima_options.horizon = kHorizon;
    arima_options.p = 2;
    arima_options.q = 1;
    arima_ = std::make_unique<forecast::ArimaForecaster>(arima_options);
    ASSERT_TRUE(arima_->Fit(series_.Slice(0, eval_start_)).ok());

    config_.theta = series_.Mean() / 4.0;
    cheap_ = MakeManager(naive_.get());
    strong_ = MakeManager(arima_.get());
  }

  std::unique_ptr<core::RobustAutoScalingManager> MakeManager(
      const forecast::Forecaster* model) const {
    return std::make_unique<core::RobustAutoScalingManager>(
        model, std::make_unique<core::RobustQuantileAllocator>(0.95),
        config_);
  }

  core::OnlineLoopOptions AdaptiveOptions() const {
    core::OnlineLoopOptions options;
    options.replan_every = 6;
    options.cluster.node_capacity = config_.theta;
    options.selection.mode = core::SelectionMode::kAdaptive;
    options.selection.ladder = {cheap_.get(), strong_.get()};
    options.selection.classifier.season = kDay;
    return options;
  }

  ts::TimeSeries series_;
  size_t eval_start_ = 0;
  core::ScalingConfig config_;
  std::unique_ptr<forecast::SeasonalNaiveForecaster> naive_;
  std::unique_ptr<forecast::ArimaForecaster> arima_;
  std::unique_ptr<core::RobustAutoScalingManager> cheap_;
  std::unique_ptr<core::RobustAutoScalingManager> strong_;
};

TEST_F(SelectionLoopFixture, SelectionOffIsBitIdenticalToDefaultOptions) {
  core::OnlineLoopOptions baseline;
  baseline.replan_every = 6;
  baseline.cluster.node_capacity = config_.theta;

  // Off-mode options carry a fully populated (but inert) selection config.
  core::OnlineLoopOptions off = baseline;
  off.selection.mode = core::SelectionMode::kOff;
  off.selection.ladder = {strong_.get(), cheap_.get()};
  off.selection.prescale = true;
  off.selection.prescaler.lead_steps = 1;

  auto a = core::RunOnlineLoop(*cheap_, series_, eval_start_, kDay, baseline);
  auto b = core::RunOnlineLoop(*cheap_, series_, eval_start_, kDay, off);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->allocation, b->allocation);
  EXPECT_EQ(a->slo_violation_rate, b->slo_violation_rate);
  EXPECT_EQ(a->mean_utilization, b->mean_utilization);
  EXPECT_FALSE(b->selection.enabled);
  EXPECT_TRUE(b->selection.tier_by_round.empty());
}

TEST_F(SelectionLoopFixture, AdaptiveRunReportsSelectionOutcome) {
  auto result =
      core::RunOnlineLoop(*cheap_, series_, eval_start_, kDay,
                          AdaptiveOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->selection.enabled);
  EXPECT_EQ(result->selection.tier_by_round.size(), result->plans_made);
  EXPECT_EQ(result->selection.selector.rounds, result->plans_made);
  for (size_t tier : result->selection.tier_by_round) {
    EXPECT_LT(tier, 2u);
  }
  // Alibaba profile is strongly seasonal: the classifier should not label
  // it insufficient, and the run must finish on a valid tier.
  EXPECT_NE(result->selection.pattern, WorkloadPattern::kInsufficient);
  EXPECT_LT(result->selection.final_tier, 2u);
}

TEST_F(SelectionLoopFixture, PrescalerActivationsBalanceRollbacks) {
  core::OnlineLoopOptions options = AdaptiveOptions();
  options.selection.prescaler.lead_steps = 2;
  options.selection.prescaler.min_spike_nodes = 1;
  options.selection.prescaler.spike_ratio = 1.2;
  auto result =
      core::RunOnlineLoop(*cheap_, series_, eval_start_, 2 * kDay, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selection.prescaler.activations,
            result->selection.prescaler.rollbacks);
}

TEST_F(SelectionLoopFixture, SelectionRejectsEmptyLadder) {
  core::OnlineLoopOptions options;
  options.selection.mode = core::SelectionMode::kAdaptive;
  auto result =
      core::RunOnlineLoop(*cheap_, series_, eval_start_, kDay, options);
  EXPECT_FALSE(result.ok());
}

TEST_F(SelectionLoopFixture, SelectionRejectsNullLadderEntry) {
  core::OnlineLoopOptions options = AdaptiveOptions();
  options.selection.ladder.push_back(nullptr);
  auto result =
      core::RunOnlineLoop(*cheap_, series_, eval_start_, kDay, options);
  EXPECT_FALSE(result.ok());
}

TEST_F(SelectionLoopFixture, SelectionRejectsIncrementalRefreshCombo) {
  core::OnlineLoopOptions options = AdaptiveOptions();
  options.streaming.refresh_mode = core::RefreshMode::kIncremental;
  options.streaming.refresh_target = naive_.get();
  auto result =
      core::RunOnlineLoop(*cheap_, series_, eval_start_, kDay, options);
  EXPECT_FALSE(result.ok());
}

TEST_F(SelectionLoopFixture, SelectionMetricsAgreeWithResult) {
  obs::MetricsRegistry metrics;
  core::OnlineLoopOptions options = AdaptiveOptions();
  options.metrics = &metrics;
  auto result =
      core::RunOnlineLoop(*cheap_, series_, eval_start_, kDay, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(metrics.GetCounter("select.rounds")->value(),
            static_cast<int64_t>(result->selection.selector.rounds));
  EXPECT_EQ(metrics.GetCounter("select.switches")->value(),
            static_cast<int64_t>(result->selection.selector.switches));
  EXPECT_EQ(
      metrics.GetCounter("select.prescale.rollbacks")->value(),
      static_cast<int64_t>(result->selection.prescaler.rollbacks));
}

TEST(SelectionLoopFaultTest, FaultyRoundsDemoteFromUpperTier) {
  // A trending workload seeds the selector at tier 1; a fault plan whose
  // forecaster-timeout fires every round then forces consecutive fault
  // rounds, so the selector must fall to tier 0 (and the loop must keep
  // serving — degradation contract).
  ts::TimeSeries series;
  series.step_minutes = 10.0;
  for (size_t i = 0; i < 6 * kDay; ++i) {
    series.values.push_back(40.0 + 0.02 * static_cast<double>(i) +
                            2.0 * std::sin(0.3 * static_cast<double>(i)));
  }
  const size_t eval_start = 4 * kDay;

  forecast::SeasonalNaiveForecaster::Options naive_options;
  naive_options.context_length = 48;
  naive_options.horizon = 24;
  forecast::SeasonalNaiveForecaster cheap_model(naive_options);
  forecast::SeasonalNaiveForecaster strong_model(naive_options);
  ASSERT_TRUE(cheap_model.Fit(series.Slice(0, eval_start)).ok());
  ASSERT_TRUE(strong_model.Fit(series.Slice(0, eval_start)).ok());

  core::ScalingConfig config;
  config.theta = series.Mean() / 4.0;
  core::RobustAutoScalingManager cheap(
      &cheap_model, std::make_unique<core::RobustQuantileAllocator>(0.95),
      config);
  core::RobustAutoScalingManager strong(
      &strong_model, std::make_unique<core::RobustQuantileAllocator>(0.95),
      config);

  core::OnlineLoopOptions options;
  options.replan_every = 6;
  options.cluster.node_capacity = config.theta;
  options.selection.mode = core::SelectionMode::kAdaptive;
  options.selection.ladder = {&cheap, &strong};
  // Many seasons must fit the classifier window, or two-sample phase means
  // soak up the trend variance and the seed lands on the seasonal tier.
  options.selection.classifier.season = 24;
  options.faults.forecaster_timeout_rate = 1.0;
  options.faults.forecaster_timeout_attempts = 5;  // > max_retries
  options.faults.seed = 99;
  auto result =
      core::RunOnlineLoop(strong, series, eval_start, kDay, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->selection.tier_by_round.empty());
  EXPECT_EQ(result->selection.tier_by_round.front(), 1u);  // trending seed
  EXPECT_EQ(result->allocation.size(), kDay);
  EXPECT_GT(result->selection.selector.fault_demotions, 0u);
  EXPECT_EQ(result->selection.final_tier, 0u);
}

}  // namespace
}  // namespace rpas
