#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace rpas::tensor {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(m[i], 0.0);
  }
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 2, 3.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 3.5);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(MatrixTest, RowAndColumnVectors) {
  Matrix col = Matrix::ColumnVector({1.0, 2.0, 3.0});
  EXPECT_EQ(col.rows(), 3u);
  EXPECT_EQ(col.cols(), 1u);
  EXPECT_DOUBLE_EQ(col(2, 0), 3.0);

  Matrix row = Matrix::RowVector({4.0, 5.0});
  EXPECT_EQ(row.rows(), 1u);
  EXPECT_EQ(row.cols(), 2u);
  EXPECT_DOUBLE_EQ(row(0, 1), 5.0);
}

TEST(MatrixTest, Identity) {
  Matrix eye = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(eye(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, Reshape) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix r = m.Reshaped(3, 2);
  EXPECT_DOUBLE_EQ(r(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(r(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(r(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(r(2, 1), 6.0);
}

TEST(MatrixTest, RowAndColExtraction) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix row = m.Row(1);
  EXPECT_EQ(row.rows(), 1u);
  EXPECT_DOUBLE_EQ(row(0, 2), 6.0);
  Matrix col = m.Col(1);
  EXPECT_EQ(col.rows(), 2u);
  EXPECT_DOUBLE_EQ(col(1, 0), 5.0);
}

TEST(OpsTest, MatMulKnownValues) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(OpsTest, MatMulIdentity) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix c = MatMul(a, Matrix::Identity(2));
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 4.0);
}

TEST(OpsTest, MatMulNonSquare) {
  Matrix a{{1, 2, 3}};        // 1x3
  Matrix b{{1}, {2}, {3}};    // 3x1
  Matrix c = MatMul(a, b);    // 1x1
  EXPECT_DOUBLE_EQ(c(0, 0), 14.0);
}

TEST(OpsTest, MatMulPropagatesNanInf) {
  // Regression: the old zero-skip fast path dropped IEEE-754 propagation —
  // 0 * NaN must be NaN and 0 * Inf must be NaN, not 0.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  Matrix a{{0.0, 1.0}, {2.0, 0.0}};
  Matrix b{{nan, 1.0}, {2.0, inf}};
  Matrix c = MatMul(a, b);
  EXPECT_TRUE(std::isnan(c(0, 0)));  // 0*NaN + 1*2
  EXPECT_TRUE(std::isinf(c(0, 1)));  // 0*1 + 1*Inf
  EXPECT_TRUE(std::isnan(c(1, 0)));  // 2*NaN + 0*2
  EXPECT_TRUE(std::isnan(c(1, 1)));  // 2*1 + 0*Inf
}

TEST(OpsTest, MatMulBlockedMatchesReferenceExactly) {
  // The cache-blocked scalar kernel keeps the k-accumulation order of the
  // naive ikj loop, so results must be bit-identical, not just close. Shapes
  // chosen to span multiple k-blocks and j-blocks with ragged remainders.
  // Pinned to the scalar dispatch level: that level is the bit-exact
  // reference contract; SIMD levels are parity-bounded in kernel_test.
  kernels::ScopedSimdLevel scalar_only(kernels::SimdLevel::kScalar);
  Rng rng(17);
  Matrix a(37, 150);
  Matrix b(150, 300);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Normal();
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = rng.Normal();
  }
  Matrix reference(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t p = 0; p < a.cols(); ++p) {
      for (size_t j = 0; j < b.cols(); ++j) {
        reference(i, j) += a(i, p) * b(p, j);
      }
    }
  }
  Matrix c = MatMul(a, b);
  for (size_t i = 0; i < c.size(); ++i) {
    ASSERT_EQ(c[i], reference[i]) << "mismatch at flat index " << i;
  }
}

TEST(OpsTest, TransposeRoundTrip) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix t = Transpose(a);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  Matrix tt = Transpose(t);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(tt[i], a[i]);
  }
}

TEST(OpsTest, ElementwiseOps) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  EXPECT_DOUBLE_EQ(Add(a, b)(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(Sub(b, a)(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(Mul(a, b)(1, 0), 21.0);
  EXPECT_DOUBLE_EQ(Div(b, a)(0, 1), 3.0);
}

TEST(OpsTest, AddRowBroadcast) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix bias{{10, 20}};
  Matrix out = AddRowBroadcast(a, bias);
  EXPECT_DOUBLE_EQ(out(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(out(1, 1), 24.0);
}

TEST(OpsTest, ScaleAndAddScalar) {
  Matrix a{{1, 2}};
  EXPECT_DOUBLE_EQ(Scale(a, 3.0)(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(AddScalar(a, 1.5)(0, 0), 2.5);
}

TEST(OpsTest, MapApplies) {
  Matrix a{{1, 4}, {9, 16}};
  Matrix s = Map(a, [](double x) { return std::sqrt(x); });
  EXPECT_DOUBLE_EQ(s(1, 0), 3.0);
}

TEST(OpsTest, AxpyAccumulates) {
  Matrix x{{1, 2}};
  Matrix y{{10, 20}};
  Axpy(2.0, x, &y);
  EXPECT_DOUBLE_EQ(y(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 24.0);
}

TEST(OpsTest, Reductions) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(Sum(a), 10.0);
  EXPECT_DOUBLE_EQ(Mean(a), 2.5);
  EXPECT_DOUBLE_EQ(MaxAbs(Scale(a, -1.0)), 4.0);
  EXPECT_DOUBLE_EQ(Dot(a, a), 30.0);
  EXPECT_DOUBLE_EQ(Norm(a), std::sqrt(30.0));
}

TEST(OpsTest, ColAndRowSums) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix cs = ColSums(a);
  EXPECT_DOUBLE_EQ(cs(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(cs(0, 1), 6.0);
  Matrix rs = RowSums(a);
  EXPECT_DOUBLE_EQ(rs(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(rs(1, 0), 7.0);
}

TEST(OpsTest, Concat) {
  Matrix a{{1}, {2}};
  Matrix b{{3}, {4}};
  Matrix cols = ConcatCols(a, b);
  EXPECT_EQ(cols.cols(), 2u);
  EXPECT_DOUBLE_EQ(cols(1, 1), 4.0);
  Matrix rows = ConcatRows(a, b);
  EXPECT_EQ(rows.rows(), 4u);
  EXPECT_DOUBLE_EQ(rows(3, 0), 4.0);
}

TEST(OpsTest, Slices) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix c = SliceCols(a, 1, 3);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(1, 0), 5.0);
  Matrix r = SliceRows(a, 1, 2);
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_DOUBLE_EQ(r(0, 2), 6.0);
}

TEST(OpsTest, SolveLinearSystemKnown) {
  // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1.
  Matrix a{{2, 1}, {1, -1}};
  Matrix b{{5}, {1}};
  auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*x)(1, 0), 1.0, 1e-12);
}

TEST(OpsTest, SolveLinearSystemNeedsPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a{{0, 1}, {1, 0}};
  Matrix b{{2}, {3}};
  auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)(0, 0), 3.0, 1e-12);
  EXPECT_NEAR((*x)(1, 0), 2.0, 1e-12);
}

TEST(OpsTest, SolveLinearSystemSingular) {
  Matrix a{{1, 2}, {2, 4}};
  Matrix b{{1}, {2}};
  EXPECT_EQ(SolveLinearSystem(a, b).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(OpsTest, SolveLinearSystemTinyScaleWellConditioned) {
  // Regression: the absolute 1e-12 pivot threshold misclassified
  // well-conditioned but small-scaled systems as singular. The tolerance
  // is now relative to the matrix's largest entry.
  const double s = 1e-20;
  Matrix a{{2.0 * s, 1.0 * s}, {1.0 * s, 3.0 * s}};
  Matrix b{{3.0 * s}, {4.0 * s}};
  auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  EXPECT_NEAR((*x)(0, 0), 1.0, 1e-10);
  EXPECT_NEAR((*x)(1, 0), 1.0, 1e-10);
}

TEST(OpsTest, SolveLinearSystemZeroMatrixSingular) {
  Matrix a(2, 2);
  Matrix b{{1}, {2}};
  EXPECT_EQ(SolveLinearSystem(a, b).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(OpsTest, SolveLinearSystemRejectsNonSquare) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix b{{1}, {2}};
  EXPECT_EQ(SolveLinearSystem(a, b).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OpsTest, SolveLinearSystemRandomRoundTrip) {
  Rng rng(5);
  const size_t n = 12;
  Matrix a(n, n);
  Matrix x_true(n, 1);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Normal();
  }
  for (size_t i = 0; i < n; ++i) {
    a(i, i) += 5.0;  // well-conditioned
    x_true(i, 0) = rng.Normal();
  }
  Matrix b = MatMul(a, x_true);
  auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR((*x)(i, 0), x_true(i, 0), 1e-9);
  }
}

TEST(OpsTest, LeastSquaresExactFit) {
  // y = 2x + 1 sampled without noise.
  Matrix a(4, 2);
  Matrix b(4, 1);
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = i;
    a(i, 1) = 1.0;
    b(i, 0) = 2.0 * i + 1.0;
  }
  auto coeffs = SolveLeastSquares(a, b);
  ASSERT_TRUE(coeffs.ok());
  EXPECT_NEAR((*coeffs)(0, 0), 2.0, 1e-10);
  EXPECT_NEAR((*coeffs)(1, 0), 1.0, 1e-10);
}

TEST(OpsTest, LeastSquaresRidgeShrinks) {
  Matrix a(3, 1);
  Matrix b(3, 1);
  for (int i = 0; i < 3; ++i) {
    a(i, 0) = 1.0;
    b(i, 0) = 3.0;
  }
  auto no_ridge = SolveLeastSquares(a, b, 0.0);
  auto ridge = SolveLeastSquares(a, b, 10.0);
  ASSERT_TRUE(no_ridge.ok());
  ASSERT_TRUE(ridge.ok());
  EXPECT_NEAR((*no_ridge)(0, 0), 3.0, 1e-10);
  EXPECT_LT((*ridge)(0, 0), 3.0);
}

TEST(OpsTest, LeastSquaresRejectsNegativeRidge) {
  Matrix a(2, 1, 1.0);
  Matrix b(2, 1, 1.0);
  EXPECT_FALSE(SolveLeastSquares(a, b, -1.0).ok());
}

}  // namespace
}  // namespace rpas::tensor
