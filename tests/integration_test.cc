// End-to-end integration tests: synthetic cluster trace -> probabilistic
// forecaster -> robust auto-scaling -> provisioning metrics / simulator
// replay. These exercise the full pipeline the paper's evaluation uses and
// assert its *qualitative* findings (robust > point > reactive on
// under-provisioning; higher tau trades under- for over-provisioning).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/evaluator.h"
#include "core/manager.h"
#include "core/strategies.h"
#include "forecast/tft.h"
#include "simdb/replay.h"
#include "trace/generator.h"

namespace rpas {
namespace {

constexpr size_t kDay = 144;

class PipelineFixture : public ::testing::Test {
 protected:
  static constexpr size_t kContext = 48;
  static constexpr size_t kHorizon = 24;
  static constexpr size_t kEvalSteps = 2 * kDay;

  void SetUp() override {
    trace::SyntheticTraceGenerator gen(trace::AlibabaProfile(), 2024);
    series_ = gen.GenerateCpu(10 * kDay);

    forecast::TftForecaster::Options options;
    options.context_length = kContext;
    options.horizon = kHorizon;
    options.d_model = 8;
    options.num_heads = 2;
    options.batch_size = 2;
    options.train.steps = 200;
    options.train.lr = 5e-3;
    options.levels = {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99};
    model_ = std::make_unique<forecast::TftForecaster>(options);

    eval_start_ = series_.size() - kEvalSteps;
    ts::TimeSeries train = series_.Slice(0, eval_start_);
    ASSERT_TRUE(model_->Fit(train).ok());

    config_.theta = series_.Mean() / 4.0;  // ~4 nodes on average
    config_.min_nodes = 1;

    realized_.assign(
        series_.values.begin() + static_cast<long>(eval_start_),
        series_.values.end());
  }

  core::ProvisioningReport Evaluate(const std::vector<int>& alloc) const {
    return core::EvaluateAllocation(realized_, alloc, config_);
  }

  ts::TimeSeries series_;
  std::unique_ptr<forecast::TftForecaster> model_;
  size_t eval_start_ = 0;
  core::ScalingConfig config_;
  std::vector<double> realized_;
};

TEST_F(PipelineFixture, RobustReducesUnderProvisioningVsPoint) {
  core::RobustQuantileAllocator robust(0.9);
  core::PointForecastAllocator point;
  auto robust_alloc = core::RunPredictiveStrategy(
      *model_, robust, series_, eval_start_, kEvalSteps, config_);
  auto point_alloc = core::RunPredictiveStrategy(
      *model_, point, series_, eval_start_, kEvalSteps, config_);
  ASSERT_TRUE(robust_alloc.ok());
  ASSERT_TRUE(point_alloc.ok());
  const auto robust_report = Evaluate(*robust_alloc);
  const auto point_report = Evaluate(*point_alloc);
  EXPECT_LT(robust_report.under_provision_rate,
            point_report.under_provision_rate);
}

TEST_F(PipelineFixture, HigherQuantileMonotoneTradeoff) {
  double prev_under = 1.1;
  double prev_over = -0.1;
  for (double tau : {0.5, 0.8, 0.95}) {
    core::RobustQuantileAllocator allocator(tau);
    auto alloc = core::RunPredictiveStrategy(
        *model_, allocator, series_, eval_start_, kEvalSteps, config_);
    ASSERT_TRUE(alloc.ok());
    const auto report = Evaluate(*alloc);
    EXPECT_LE(report.under_provision_rate, prev_under + 1e-9)
        << "tau=" << tau;
    EXPECT_GE(report.over_provision_rate, prev_over - 1e-9)
        << "tau=" << tau;
    prev_under = report.under_provision_rate;
    prev_over = report.over_provision_rate;
  }
}

TEST_F(PipelineFixture, AdaptiveBoundedByItsTwoFixedLevels) {
  core::RobustQuantileAllocator lo(0.8);
  core::RobustQuantileAllocator hi(0.95);
  core::AdaptiveQuantileAllocator adaptive(0.8, 0.95, /*rho=*/0.0);
  auto alloc_lo = core::RunPredictiveStrategy(*model_, lo, series_,
                                              eval_start_, kEvalSteps,
                                              config_);
  auto alloc_hi = core::RunPredictiveStrategy(*model_, hi, series_,
                                              eval_start_, kEvalSteps,
                                              config_);
  auto alloc_ad = core::RunPredictiveStrategy(*model_, adaptive, series_,
                                              eval_start_, kEvalSteps,
                                              config_);
  ASSERT_TRUE(alloc_lo.ok() && alloc_hi.ok() && alloc_ad.ok());
  const auto r_lo = Evaluate(*alloc_lo);
  const auto r_hi = Evaluate(*alloc_hi);
  const auto r_ad = Evaluate(*alloc_ad);
  // The adaptive plan sits between the two fixed plans on both axes.
  EXPECT_LE(r_ad.under_provision_rate, r_lo.under_provision_rate + 1e-9);
  EXPECT_GE(r_ad.under_provision_rate, r_hi.under_provision_rate - 1e-9);
  EXPECT_LE(r_ad.over_provision_rate, r_hi.over_provision_rate + 1e-9);
  EXPECT_GE(r_ad.over_provision_rate, r_lo.over_provision_rate - 1e-9);
}

TEST_F(PipelineFixture, ReactiveWorseThanRobustOnUnderProvisioning) {
  core::ReactiveAvgStrategy reactive(6, 6.0);
  auto reactive_alloc = core::RunReactiveStrategy(
      reactive, series_, eval_start_, kEvalSteps, config_);
  core::RobustQuantileAllocator robust(0.9);
  auto robust_alloc = core::RunPredictiveStrategy(
      *model_, robust, series_, eval_start_, kEvalSteps, config_);
  ASSERT_TRUE(reactive_alloc.ok() && robust_alloc.ok());
  EXPECT_GT(Evaluate(*reactive_alloc).under_provision_rate,
            Evaluate(*robust_alloc).under_provision_rate);
}

TEST_F(PipelineFixture, SimulatorReplayAgreesWithAnalyticRates) {
  core::RobustQuantileAllocator robust(0.9);
  auto alloc = core::RunPredictiveStrategy(*model_, robust, series_,
                                           eval_start_, kEvalSteps, config_);
  ASSERT_TRUE(alloc.ok());

  ts::TimeSeries eval_series;
  eval_series.values = realized_;
  eval_series.step_minutes = series_.step_minutes;

  simdb::Cluster::Options cluster_options;
  cluster_options.node_capacity = config_.theta;
  cluster_options.utilization_threshold = 1.0;
  // With capacity = theta and threshold 1.0, the simulator's
  // under-provision criterion coincides with the analytic one up to the
  // warm-up capacity loss on scale-out steps.
  auto replay =
      simdb::ReplayAllocation(eval_series, *alloc, cluster_options);
  ASSERT_TRUE(replay.ok());
  const auto analytic = Evaluate(*alloc);
  EXPECT_NEAR(replay->under_provision_rate, analytic.under_provision_rate,
              0.05);
  EXPECT_NEAR(replay->over_provision_rate, analytic.over_provision_rate,
              0.02);
}

TEST_F(PipelineFixture, ManagerEndToEndPlansAndSimulates) {
  core::RobustAutoScalingManager manager(
      model_.get(), std::make_unique<core::RobustQuantileAllocator>(0.9),
      config_);
  manager.SetSmoother({.max_step_delta = 4, .scale_in_cooldown = 2});
  auto plan = manager.PlanNext(series_.Slice(0, eval_start_));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->nodes.size(), kHorizon);

  ts::TimeSeries window = series_.Slice(eval_start_, eval_start_ + kHorizon);
  simdb::Cluster::Options cluster_options;
  cluster_options.node_capacity = config_.theta;
  cluster_options.utilization_threshold = 1.0;
  cluster_options.initial_nodes = plan->nodes[0];
  auto replay = simdb::ReplayAllocation(window, plan->nodes,
                                        cluster_options);
  ASSERT_TRUE(replay.ok());
  // A 0.9-quantile plan on this easy trace should mostly avoid saturation.
  EXPECT_LT(replay->under_provision_rate, 0.5);
}

}  // namespace
}  // namespace rpas
