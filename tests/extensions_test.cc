// Tests for the library extensions beyond the paper's core experiments:
// Holt-Winters forecaster, model checkpointing, the online auto-scaling
// loop, and multi-resource allocation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "common/rng.h"
#include "core/multi_resource.h"
#include "core/online_loop.h"
#include "forecast/deepar.h"
#include "forecast/holt_winters.h"
#include "forecast/mlp.h"
#include "forecast/seasonal_naive.h"
#include "forecast/tft.h"
#include "nn/checkpoint.h"
#include "obs/metrics.h"
#include "trace/generator.h"
#include "ts/metrics.h"

namespace rpas {
namespace {

constexpr size_t kDay = 144;

ts::TimeSeries SineSeries(size_t num_steps, double noise, uint64_t seed) {
  ts::TimeSeries s;
  s.step_minutes = 10.0;
  Rng rng(seed);
  for (size_t i = 0; i < num_steps; ++i) {
    const double phase = 2.0 * M_PI * static_cast<double>(i % kDay) /
                         static_cast<double>(kDay);
    s.values.push_back(10.0 + 4.0 * std::sin(phase) + noise * rng.Normal());
  }
  return s;
}

// ------------------------------------------------------------ HoltWinters ---

TEST(HoltWintersTest, NailsCleanSeasonalSeries) {
  ts::TimeSeries s = SineSeries(8 * kDay, /*noise=*/0.05, 1);
  forecast::HoltWintersForecaster::Options options;
  options.context_length = 2 * kDay;
  options.horizon = 72;
  options.season = kDay;
  forecast::HoltWintersForecaster model(options);
  auto [train, test] = s.SplitTail(kDay);
  ASSERT_TRUE(model.Fit(train).ok());

  auto rolled = forecast::RollForecasts(model, train, test, 72);
  ASSERT_TRUE(rolled.ok());
  auto report =
      ts::EvaluateForecasts(rolled->forecasts, rolled->actuals, {0.5});
  // Signal variance is 8; HW should be near the noise floor.
  EXPECT_LT(report.mse, 0.5);
}

TEST(HoltWintersTest, TracksLevelShift) {
  // Seasonal series whose level jumps halfway: the smoother must adapt.
  ts::TimeSeries s = SineSeries(8 * kDay, 0.05, 2);
  for (size_t i = 4 * kDay; i < s.size(); ++i) {
    s.values[i] += 5.0;
  }
  forecast::HoltWintersForecaster::Options options;
  options.context_length = 2 * kDay;
  options.horizon = 36;
  options.season = kDay;
  forecast::HoltWintersForecaster model(options);
  ASSERT_TRUE(model.Fit(s.Slice(0, 7 * kDay)).ok());
  forecast::ForecastInput input;
  input.start_index = 7 * kDay - 2 * kDay;
  input.step_minutes = 10.0;
  input.context.assign(
      s.values.begin() + static_cast<long>(5 * kDay),
      s.values.begin() + static_cast<long>(7 * kDay));
  auto fc = model.Predict(input);
  ASSERT_TRUE(fc.ok());
  // Median forecast should live at the shifted level (15 +- amplitude).
  const double median0 = fc->Value(0, 0.5);
  EXPECT_GT(median0, 9.0);
}

TEST(HoltWintersTest, IntervalsWidenWithHorizon) {
  ts::TimeSeries s = SineSeries(8 * kDay, 1.0, 3);
  forecast::HoltWintersForecaster::Options options;
  options.context_length = 2 * kDay;
  options.horizon = 72;
  options.season = kDay;
  forecast::HoltWintersForecaster model(options);
  ASSERT_TRUE(model.Fit(s).ok());
  forecast::ForecastInput input;
  input.start_index = s.size() - 2 * kDay;
  input.step_minutes = 10.0;
  input.context.assign(s.values.end() - 2 * kDay, s.values.end());
  auto fc = model.Predict(input);
  ASSERT_TRUE(fc.ok());
  const double early = fc->Value(0, 0.9) - fc->Value(0, 0.1);
  const double late = fc->Value(71, 0.9) - fc->Value(71, 0.1);
  EXPECT_GT(late, early);
}

TEST(HoltWintersTest, RejectsShortTrainOrContext) {
  forecast::HoltWintersForecaster::Options options;
  options.season = kDay;
  forecast::HoltWintersForecaster model(options);
  ts::TimeSeries tiny = SineSeries(kDay, 0.1, 4);
  EXPECT_FALSE(model.Fit(tiny).ok());
  ASSERT_TRUE(model.Fit(SineSeries(6 * kDay, 0.1, 5)).ok());
  forecast::ForecastInput input;
  input.context.assign(10, 1.0);
  EXPECT_FALSE(model.Predict(input).ok());
}

TEST(HoltWintersTest, GridSearchPicksFromGrid) {
  ts::TimeSeries s = SineSeries(6 * kDay, 0.3, 6);
  forecast::HoltWintersForecaster::Options options;
  options.season = kDay;
  forecast::HoltWintersForecaster model(options);
  ASSERT_TRUE(model.Fit(s).ok());
  auto contains = [](const std::vector<double>& grid, double v) {
    for (double g : grid) {
      if (g == v) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(contains(options.alpha_grid, model.alpha()));
  EXPECT_TRUE(contains(options.beta_grid, model.beta()));
  EXPECT_TRUE(contains(options.gamma_grid, model.gamma()));
  EXPECT_GT(model.residual_stddev(), 0.0);
}

// ------------------------------------------------------------- Checkpoint ---

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("rpas_ckpt_" + std::to_string(::getpid()) + ".txt");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path() const { return path_.string(); }
  std::filesystem::path path_;
};

TEST_F(CheckpointTest, RawRoundTrip) {
  Rng rng(7);
  autodiff::Parameter a(tensor::Matrix(3, 4));
  autodiff::Parameter b(tensor::Matrix(1, 2));
  for (size_t i = 0; i < a.value.size(); ++i) {
    a.value[i] = rng.Normal();
  }
  b.value(0, 0) = 1.5;
  b.value(0, 1) = -2.25;
  ASSERT_TRUE(nn::SaveParameters(path(), "sig", {&a, &b}).ok());

  autodiff::Parameter a2(tensor::Matrix(3, 4));
  autodiff::Parameter b2(tensor::Matrix(1, 2));
  ASSERT_TRUE(nn::LoadParameters(path(), "sig", {&a2, &b2}).ok());
  for (size_t i = 0; i < a.value.size(); ++i) {
    EXPECT_DOUBLE_EQ(a2.value[i], a.value[i]);
  }
  EXPECT_DOUBLE_EQ(b2.value(0, 1), -2.25);
}

TEST_F(CheckpointTest, SignatureMismatchRejected) {
  autodiff::Parameter a(tensor::Matrix(1, 1));
  ASSERT_TRUE(nn::SaveParameters(path(), "model-v1", {&a}).ok());
  EXPECT_EQ(nn::LoadParameters(path(), "model-v2", {&a}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, ShapeMismatchRejected) {
  autodiff::Parameter a(tensor::Matrix(2, 2));
  ASSERT_TRUE(nn::SaveParameters(path(), "sig", {&a}).ok());
  autodiff::Parameter wrong(tensor::Matrix(2, 3));
  EXPECT_EQ(nn::LoadParameters(path(), "sig", {&wrong}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, CountMismatchRejected) {
  autodiff::Parameter a(tensor::Matrix(1, 1));
  ASSERT_TRUE(nn::SaveParameters(path(), "sig", {&a}).ok());
  autodiff::Parameter b(tensor::Matrix(1, 1));
  EXPECT_EQ(nn::LoadParameters(path(), "sig", {&a, &b}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, MissingFileIsIoError) {
  autodiff::Parameter a(tensor::Matrix(1, 1));
  EXPECT_EQ(nn::LoadParameters("/nonexistent/ckpt", "sig", {&a}).code(),
            StatusCode::kIoError);
}

TEST_F(CheckpointTest, TftSaveLoadPreservesPredictions) {
  ts::TimeSeries s = SineSeries(3 * kDay, 0.3, 8);
  forecast::TftForecaster::Options options;
  options.context_length = 36;
  options.horizon = 12;
  options.d_model = 8;
  options.batch_size = 2;
  options.train.steps = 60;
  options.levels = {0.1, 0.5, 0.9};
  forecast::TftForecaster original(options);
  ASSERT_TRUE(original.Fit(s).ok());
  ASSERT_TRUE(original.Save(path()).ok());

  forecast::TftForecaster restored(options);
  ASSERT_TRUE(restored.Load(path()).ok());

  forecast::ForecastInput input;
  input.start_index = s.size() - 36;
  input.step_minutes = 10.0;
  input.context.assign(s.values.end() - 36, s.values.end());
  auto fc1 = original.Predict(input);
  auto fc2 = restored.Predict(input);
  ASSERT_TRUE(fc1.ok() && fc2.ok());
  for (size_t h = 0; h < 12; ++h) {
    for (size_t q = 0; q < 3; ++q) {
      EXPECT_DOUBLE_EQ(fc1->ValueAtIndex(h, q), fc2->ValueAtIndex(h, q));
    }
  }
}

TEST_F(CheckpointTest, TftRejectsDifferentArchitecture) {
  ts::TimeSeries s = SineSeries(3 * kDay, 0.3, 9);
  forecast::TftForecaster::Options options;
  options.context_length = 36;
  options.horizon = 12;
  options.d_model = 8;
  options.batch_size = 2;
  options.train.steps = 30;
  options.levels = {0.1, 0.5, 0.9};
  forecast::TftForecaster original(options);
  ASSERT_TRUE(original.Fit(s).ok());
  ASSERT_TRUE(original.Save(path()).ok());

  options.d_model = 16;  // different architecture
  forecast::TftForecaster other(options);
  EXPECT_FALSE(other.Load(path()).ok());
}

TEST_F(CheckpointTest, MlpSaveLoadPreservesScalerAndWeights) {
  ts::TimeSeries s = SineSeries(3 * kDay, 0.3, 10);
  forecast::MlpForecaster::Options options;
  options.context_length = 36;
  options.horizon = 12;
  options.hidden_dim = 16;
  options.train.steps = 60;
  forecast::MlpForecaster original(options);
  ASSERT_TRUE(original.Fit(s).ok());
  ASSERT_TRUE(original.Save(path()).ok());

  forecast::MlpForecaster restored(options);
  ASSERT_TRUE(restored.Load(path()).ok());
  forecast::ForecastInput input;
  input.start_index = s.size() - 36;
  input.step_minutes = 10.0;
  input.context.assign(s.values.end() - 36, s.values.end());
  auto d1 = original.PredictDistribution(input);
  auto d2 = restored.PredictDistribution(input);
  ASSERT_TRUE(d1.ok() && d2.ok());
  for (size_t h = 0; h < 12; ++h) {
    EXPECT_DOUBLE_EQ(d1->mean[h], d2->mean[h]);
    EXPECT_DOUBLE_EQ(d1->stddev[h], d2->stddev[h]);
  }
}

TEST_F(CheckpointTest, DeepArSaveLoadGivesBitIdenticalForecast) {
  ts::TimeSeries s = SineSeries(3 * kDay, 0.3, 12);
  forecast::DeepArForecaster::Options options;
  options.context_length = 36;
  options.horizon = 12;
  options.hidden_dim = 8;
  options.batch_size = 4;
  options.num_samples = 25;
  options.train.steps = 40;
  options.levels = {0.1, 0.5, 0.9};
  // Train through an explicitly disabled registry: the metrics-off fast
  // path must leave the forecast untouched and record nothing.
  obs::MetricsRegistry off(/*enabled=*/false);
  options.train.metrics = &off;

  forecast::DeepArForecaster original(options);
  ASSERT_TRUE(original.Fit(s).ok());
  ASSERT_TRUE(original.Save(path()).ok());

  forecast::DeepArForecaster restored(options);
  ASSERT_TRUE(restored.Load(path()).ok());

  // DeepAR's sampling RNG is seeded at construction and untouched by Fit /
  // Save / Load, so one Predict on each instance must agree bit-for-bit.
  forecast::ForecastInput input;
  input.start_index = s.size() - 36;
  input.step_minutes = 10.0;
  input.context.assign(s.values.end() - 36, s.values.end());
  auto fc1 = original.Predict(input);
  auto fc2 = restored.Predict(input);
  ASSERT_TRUE(fc1.ok() && fc2.ok());
  for (size_t h = 0; h < 12; ++h) {
    for (size_t q = 0; q < 3; ++q) {
      EXPECT_DOUBLE_EQ(fc1->ValueAtIndex(h, q), fc2->ValueAtIndex(h, q));
    }
  }
  EXPECT_EQ(off.GetCounter("nn.train.steps")->value(), 0);
  EXPECT_EQ(off.GetHistogram("nn.train.loss")->count(), 0u);
}

TEST_F(CheckpointTest, SaveUnfittedModelFails) {
  forecast::TftForecaster model(forecast::TftForecaster::Options{});
  EXPECT_EQ(model.Save(path()).code(), StatusCode::kFailedPrecondition);
}

// -------------------------------------------------------------- OnlineLoop ---

class OnlineLoopFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    series_ = SineSeries(8 * kDay, 0.3, 11);
    forecast::SeasonalNaiveForecaster::Options options;
    options.context_length = kDay;
    options.horizon = 36;
    options.season = kDay;
    model_ = std::make_unique<forecast::SeasonalNaiveForecaster>(options);
    ASSERT_TRUE(model_->Fit(series_.Slice(0, 6 * kDay)).ok());
    config_.theta = 2.0;
    config_.min_nodes = 1;
    manager_ = std::make_unique<core::RobustAutoScalingManager>(
        model_.get(), std::make_unique<core::RobustQuantileAllocator>(0.9),
        config_);
  }

  core::OnlineLoopOptions LoopOptions() const {
    core::OnlineLoopOptions options;
    options.cluster.node_capacity = config_.theta;
    options.cluster.utilization_threshold = 1.0;
    options.cluster.initial_nodes = 5;
    return options;
  }

  ts::TimeSeries series_;
  std::unique_ptr<forecast::SeasonalNaiveForecaster> model_;
  core::ScalingConfig config_;
  std::unique_ptr<core::RobustAutoScalingManager> manager_;
};

TEST_F(OnlineLoopFixture, RunsAndReplansEveryHorizon) {
  auto result = core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay,
                                    LoopOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->allocation.size(), kDay);
  EXPECT_EQ(result->steps.size(), kDay);
  // 144 steps at horizon 36 -> 4 plans.
  EXPECT_EQ(result->plans_made, 4u);
}

TEST_F(OnlineLoopFixture, CustomReplanInterval) {
  core::OnlineLoopOptions options = LoopOptions();
  options.replan_every = 12;
  auto result =
      core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plans_made, kDay / 12);
}

TEST_F(OnlineLoopFixture, RobustLoopMostlyAvoidsUnderProvisioning) {
  auto result = core::RunOnlineLoop(*manager_, series_, 6 * kDay, 2 * kDay,
                                    LoopOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->under_provision_rate, 0.15);
  EXPECT_GT(result->mean_utilization, 0.0);
  EXPECT_GT(result->total_node_steps, 0);
}

// Allocator stub that violates the planner contract by returning no steps.
class EmptyPlanAllocator final : public core::QuantileAllocator {
 public:
  Result<std::vector<int>> Allocate(
      const ts::QuantileForecast&,
      const core::ScalingConfig&) const override {
    return std::vector<int>{};
  }
  std::string Name() const override { return "EmptyPlan"; }
};

TEST_F(OnlineLoopFixture, EmptyPlanIsInternalErrorNotUb) {
  // Regression: the loop used to index current_plan[0] on an empty plan —
  // out-of-bounds UB. It must surface Internal instead.
  core::RobustAutoScalingManager manager(
      model_.get(), std::make_unique<EmptyPlanAllocator>(), config_);
  auto result =
      core::RunOnlineLoop(manager, series_, 6 * kDay, 10, LoopOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST_F(OnlineLoopFixture, RejectsBadRanges) {
  auto empty =
      core::RunOnlineLoop(*manager_, series_, 6 * kDay, 0, LoopOptions());
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  auto past_end = core::RunOnlineLoop(*manager_, series_, series_.size(), 10,
                                      LoopOptions());
  ASSERT_FALSE(past_end.ok());
  EXPECT_EQ(past_end.status().code(), StatusCode::kInvalidArgument);
  // Off-by-one boundaries: one step past the end fails up front, the exact
  // end is accepted.
  auto one_past = core::RunOnlineLoop(*manager_, series_,
                                      series_.size() - kDay, kDay + 1,
                                      LoopOptions());
  ASSERT_FALSE(one_past.ok());
  EXPECT_EQ(one_past.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(core::RunOnlineLoop(*manager_, series_, series_.size() - kDay,
                                  kDay, LoopOptions())
                  .ok());
}

TEST_F(OnlineLoopFixture, RejectsEvalStartInsideForecasterContext) {
  // eval_start must leave at least context_length points of history; the
  // loop reports this up front instead of failing on the first PlanNext.
  ASSERT_GT(manager_->ContextLength(), 0u);
  auto result = core::RunOnlineLoop(*manager_, series_,
                                    manager_->ContextLength() - 1, 10,
                                    LoopOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------- MultiResource ---

TEST(MultiResourceTest, BindingResourceWins) {
  core::ScalingConfig config;
  config.theta = 1.0;  // ignored
  std::vector<core::ResourceDemand> demands = {
      {"cpu", {4.0, 1.0}, 2.0},     // needs 2, 1
      {"memory", {3.0, 9.0}, 3.0},  // needs 1, 3
  };
  auto alloc = core::AllocateMultiResource(demands, config);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(*alloc, (std::vector<int>{2, 3}));
  auto binding = core::BindingResourcePerStep(demands, config);
  ASSERT_TRUE(binding.ok());
  EXPECT_EQ(*binding, (std::vector<int>{0, 1}));
}

TEST(MultiResourceTest, MinNodesFloor) {
  core::ScalingConfig config;
  config.min_nodes = 2;
  std::vector<core::ResourceDemand> demands = {{"cpu", {0.1}, 1.0}};
  auto alloc = core::AllocateMultiResource(demands, config);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ((*alloc)[0], 2);
  auto binding = core::BindingResourcePerStep(demands, config);
  ASSERT_TRUE(binding.ok());
  EXPECT_EQ((*binding)[0], -1);  // floor binds, not a resource
}

TEST(MultiResourceTest, CapViolationReported) {
  core::ScalingConfig config;
  config.max_nodes = 2;
  std::vector<core::ResourceDemand> demands = {{"cpu", {10.0}, 1.0}};
  EXPECT_EQ(core::AllocateMultiResource(demands, config).status().code(),
            StatusCode::kOutOfRange);
}

TEST(MultiResourceTest, MismatchedLengthsRejected) {
  core::ScalingConfig config;
  std::vector<core::ResourceDemand> demands = {{"cpu", {1.0, 2.0}, 1.0},
                                               {"mem", {1.0}, 1.0}};
  EXPECT_FALSE(core::AllocateMultiResource(demands, config).ok());
}

TEST(MultiResourceTest, QuantileVariantUsesTauTrajectories) {
  core::ScalingConfig config;
  ts::QuantileForecast cpu({0.5, 0.9}, {{2.0, 4.0}});
  ts::QuantileForecast mem({0.5, 0.9}, {{1.0, 9.0}});
  auto alloc = core::AllocateMultiResourceQuantile(
      {{cpu, 1.0}, {mem, 3.0}}, 0.9, config);
  ASSERT_TRUE(alloc.ok());
  // cpu: ceil(4/1) = 4; mem: ceil(9/3) = 3 -> 4.
  EXPECT_EQ((*alloc)[0], 4);
}

TEST(MultiResourceTest, SingleResourceMatchesScalarPath) {
  core::ScalingConfig config;
  std::vector<core::ResourceDemand> demands = {{"cpu", {7.3, 0.0, 2.0}, 1.0}};
  auto alloc = core::AllocateMultiResource(demands, config);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(*alloc, (std::vector<int>{8, 1, 2}));
}

}  // namespace
}  // namespace rpas
