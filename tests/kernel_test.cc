#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "autodiff/tape.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "nn/layers.h"
#include "nn/losses.h"
#include "nn/trainer.h"
#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/quant.h"

namespace rpas::tensor::kernels {
namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();

/// Maps a double's bit pattern to a monotonically ordered signed integer so
/// ULP distances can be computed by subtraction (-0.0 and +0.0 map to the
/// same key).
int64_t OrderedBits(double x) {
  int64_t i;
  std::memcpy(&i, &x, sizeof(i));
  return i >= 0 ? i : std::numeric_limits<int64_t>::min() - i;
}

uint64_t UlpDistance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<uint64_t>::max();
  }
  const int64_t x = OrderedBits(a);
  const int64_t y = OrderedBits(b);
  return x >= y ? static_cast<uint64_t>(x) - static_cast<uint64_t>(y)
                : static_cast<uint64_t>(y) - static_cast<uint64_t>(x);
}

/// Every level that can actually execute on this machine, scalar first.
std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  for (SimdLevel l : {SimdLevel::kSse2, SimdLevel::kAvx2}) {
    if (LevelSupported(l)) {
      levels.push_back(l);
    }
  }
  return levels;
}

void FillUniform(Matrix* m, Rng* rng, double lo, double hi) {
  for (size_t i = 0; i < m->size(); ++i) {
    (*m)[i] = rng->Uniform(lo, hi);
  }
}

/// Bit-exact legacy GEMM reference (the pre-kernel-layer blocked loops).
Matrix GemmScalarRef(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  GemmRowsScalar(0, a.rows(), b.cols(), a.cols(), a.data(), a.cols(),
                 b.data(), b.cols(), c.data(), b.cols());
  return c;
}

// Ragged shapes straddling the 2/4-wide vector widths, the 8-wide panel
// width, and the cache-block boundaries.
struct GemmShape {
  size_t m, k, n;
};
const GemmShape kGemmShapes[] = {
    {1, 1, 1},  {1, 13, 9},  {3, 5, 7},    {5, 17, 3},  {8, 8, 8},
    {7, 9, 16}, {9, 24, 11}, {13, 31, 33}, {17, 40, 1}, {2, 3, 65},
};

// ------------------------------------------------------------- dispatch ---

TEST(KernelDispatchTest, ScalarLevelAlwaysAvailable) {
  EXPECT_TRUE(LevelCompiled(SimdLevel::kScalar));
  EXPECT_TRUE(LevelSupported(SimdLevel::kScalar));
  EXPECT_TRUE(LevelSupported(ActiveLevel()));
}

TEST(KernelDispatchTest, LevelNames) {
  EXPECT_STREQ("scalar", LevelName(SimdLevel::kScalar));
  EXPECT_STREQ("sse2", LevelName(SimdLevel::kSse2));
  EXPECT_STREQ("avx2", LevelName(SimdLevel::kAvx2));
}

TEST(KernelDispatchTest, ScopedOverrideRestoresPreviousLevel) {
  const SimdLevel before = ActiveLevel();
  {
    ScopedSimdLevel outer(SimdLevel::kScalar);
    EXPECT_EQ(SimdLevel::kScalar, ActiveLevel());
    for (SimdLevel l : SupportedLevels()) {
      ScopedSimdLevel inner(l);
      EXPECT_EQ(l, ActiveLevel());
    }
    EXPECT_EQ(SimdLevel::kScalar, ActiveLevel());
  }
  EXPECT_EQ(before, ActiveLevel());
}

// ----------------------------------------------------------------- GEMM ---

TEST(GemmParityTest, RaggedShapesWithinConditionBound) {
  Rng rng(0xA11CE);
  for (const GemmShape& s : kGemmShapes) {
    Matrix a(s.m, s.k);
    Matrix b(s.k, s.n);
    FillUniform(&a, &rng, -2.0, 2.0);
    FillUniform(&b, &rng, -2.0, 2.0);
    const Matrix ref = GemmScalarRef(a, b);
    for (SimdLevel level : SupportedLevels()) {
      ScopedSimdLevel scoped(level);
      Matrix c(s.m, s.n);
      MatMulInto(a, b, &c);
      for (size_t i = 0; i < s.m; ++i) {
        for (size_t j = 0; j < s.n; ++j) {
          double abs_sum = 0.0;
          for (size_t p = 0; p < s.k; ++p) {
            abs_sum += std::fabs(a(i, p) * b(p, j));
          }
          // Reordered/FMA'd accumulation differs from the scalar order by at
          // most a few eps per term of the absolute sum.
          const double tol = 4.0 * static_cast<double>(s.k) * kEps * abs_sum;
          EXPECT_LE(std::fabs(c(i, j) - ref(i, j)), tol)
              << LevelName(level) << " gemm " << s.m << "x" << s.k << "x"
              << s.n << " at (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(GemmParityTest, Sse2BitIdenticalToScalar) {
  if (!LevelSupported(SimdLevel::kSse2)) {
    GTEST_SKIP() << "SSE2 not supported on this machine";
  }
  Rng rng(0xB0B);
  for (const GemmShape& s : kGemmShapes) {
    Matrix a(s.m, s.k);
    Matrix b(s.k, s.n);
    FillUniform(&a, &rng, -3.0, 3.0);
    FillUniform(&b, &rng, -3.0, 3.0);
    const Matrix ref = GemmScalarRef(a, b);
    ScopedSimdLevel scoped(SimdLevel::kSse2);
    Matrix c(s.m, s.n);
    MatMulInto(a, b, &c);
    for (size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(ref[i], c[i]) << "sse2 gemm diverged at flat index " << i
                              << " for " << s.m << "x" << s.k << "x" << s.n;
    }
  }
}

TEST(GemmParityTest, TransposedVariantsBitIdenticalToCompositionAtScalar) {
  ScopedSimdLevel scoped(SimdLevel::kScalar);
  Rng rng(0xC0FFEE);
  Matrix a(11, 7);
  Matrix b(11, 5);
  FillUniform(&a, &rng, -2.0, 2.0);
  FillUniform(&b, &rng, -2.0, 2.0);
  const Matrix tn = MatMulTN(a, b);
  const Matrix tn_ref = MatMul(Transpose(a), b);
  ASSERT_EQ(tn.rows(), tn_ref.rows());
  ASSERT_EQ(tn.cols(), tn_ref.cols());
  for (size_t i = 0; i < tn.size(); ++i) {
    EXPECT_EQ(tn_ref[i], tn[i]) << "GemmTN flat index " << i;
  }

  Matrix c(9, 13);
  Matrix d(6, 13);
  FillUniform(&c, &rng, -2.0, 2.0);
  FillUniform(&d, &rng, -2.0, 2.0);
  const Matrix nt = MatMulNT(c, d);
  const Matrix nt_ref = MatMul(c, Transpose(d));
  ASSERT_EQ(nt.rows(), nt_ref.rows());
  ASSERT_EQ(nt.cols(), nt_ref.cols());
  for (size_t i = 0; i < nt.size(); ++i) {
    EXPECT_EQ(nt_ref[i], nt[i]) << "GemmNT flat index " << i;
  }
}

TEST(GemmParityTest, TransposedVariantsWithinConditionBoundAtAllLevels) {
  Rng rng(0xDEAD);
  Matrix a(14, 9);
  Matrix b(14, 10);
  FillUniform(&a, &rng, -2.0, 2.0);
  FillUniform(&b, &rng, -2.0, 2.0);
  Matrix ref_tn;
  Matrix ref_nt;
  {
    ScopedSimdLevel scalar(SimdLevel::kScalar);
    ref_tn = MatMulTN(a, b);
    ref_nt = MatMulNT(Transpose(a), Transpose(b));
  }
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    const Matrix tn = MatMulTN(a, b);
    const Matrix nt = MatMulNT(Transpose(a), Transpose(b));
    const double k = static_cast<double>(a.rows());
    for (size_t i = 0; i < tn.size(); ++i) {
      const double tol = 4.0 * k * kEps * (std::fabs(ref_tn[i]) + k * 4.0);
      EXPECT_NEAR(ref_tn[i], tn[i], tol) << LevelName(level) << " GemmTN";
      EXPECT_NEAR(ref_nt[i], nt[i], tol) << LevelName(level) << " GemmNT";
    }
  }
}

// The serve layer's batched-vs-unbatched bit-identity reduces to this
// kernel-level property: each output row depends only on that row of A.
TEST(GemmParityTest, RowResultsIndependentOfBatchSize) {
  Rng rng(0xFEED);
  const size_t m = 6, k = 13, n = 9;
  Matrix a(m, k);
  Matrix b(k, n);
  FillUniform(&a, &rng, -2.0, 2.0);
  FillUniform(&b, &rng, -2.0, 2.0);
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    Matrix full(m, n);
    MatMulInto(a, b, &full);
    for (size_t r = 0; r < m; ++r) {
      Matrix row(1, k);
      for (size_t p = 0; p < k; ++p) {
        row(0, p) = a(r, p);
      }
      Matrix out(1, n);
      MatMulInto(row, b, &out);
      for (size_t j = 0; j < n; ++j) {
        EXPECT_EQ(full(r, j), out(0, j))
            << LevelName(level) << " row " << r << " col " << j;
      }
    }
  }
}

// ------------------------------------------------------------- int8 GEMM ---

/// Encodes a k x n row-major weight matrix as a kQ8 payload.
std::vector<uint8_t> EncodeQ8(const Matrix& w) {
  std::vector<uint8_t> payload(PayloadBytes(DType::kQ8, w.size()));
  EncodePayload(DType::kQ8, w.data(), w.size(), payload.data());
  return payload;
}

/// The weights the dequant path actually multiplies by: the exact decode of
/// the stored q8 blocks (NOT the original fp64 weights).
Matrix DecodeQ8(const std::vector<uint8_t>& payload, size_t k, size_t n) {
  Matrix w(k, n);
  DecodePayload(DType::kQ8, payload.data(), w.size(), w.data());
  return w;
}

// Shapes straddling the 64-wide int8 k-block: partial single block, exact
// block, partial second block, multiple blocks.
const GemmShape kInt8Shapes[] = {
    {1, 1, 1},   {3, 13, 9},  {5, 63, 7},   {4, 64, 8},
    {7, 65, 16}, {2, 100, 5}, {6, 200, 33},
};

// The int8 fast path applies per-block scales in ascending k order for
// every output element at every level, and the integer block dots are
// exact (maddubs pair sums bounded below i16 saturation), so results are
// bit-identical across scalar/SSE2/AVX2.
TEST(GemmQuantInt8Test, BitIdenticalAcrossSimdLevels) {
  ScopedGemmQuantInt8 int8_on(true);
  Rng rng(0x18A7);
  for (const GemmShape& s : kInt8Shapes) {
    Matrix a(s.m, s.k);
    Matrix w(s.k, s.n);
    FillUniform(&a, &rng, -2.0, 2.0);
    FillUniform(&w, &rng, -2.0, 2.0);
    const std::vector<uint8_t> payload = EncodeQ8(w);
    Matrix ref(s.m, s.n);
    GemmQuant(SimdLevel::kScalar, s.m, s.n, s.k, a.data(), s.k,
              DType::kQ8, payload.data(), ref.data(), s.n);
    for (SimdLevel level : SupportedLevels()) {
      Matrix c(s.m, s.n);
      GemmQuant(level, s.m, s.n, s.k, a.data(), s.k, DType::kQ8,
                payload.data(), c.data(), s.n);
      for (size_t i = 0; i < c.size(); ++i) {
        EXPECT_EQ(ref[i], c[i])
            << LevelName(level) << " int8 gemm " << s.m << "x" << s.k << "x"
            << s.n << " flat index " << i;
      }
    }
  }
}

// The int8 result tracks the dequant reference within the analytic
// quantization-error bound: requantizing decoded weights and quantizing
// activations each round to within half a step of their 64-wide block's
// symmetric grid, so per term |Δ(a*w)| <= |a|*wstep/2 + |w|*astep/2 +
// (astep/2)*(wstep/2) with step = blockmax/127.
TEST(GemmQuantInt8Test, WithinQuantizationErrorBoundOfDequantPath) {
  Rng rng(0xBEEF);
  for (const GemmShape& s : kInt8Shapes) {
    Matrix a(s.m, s.k);
    Matrix w(s.k, s.n);
    FillUniform(&a, &rng, -2.0, 2.0);
    FillUniform(&w, &rng, -2.0, 2.0);
    const std::vector<uint8_t> payload = EncodeQ8(w);
    const Matrix w_dec = DecodeQ8(payload, s.k, s.n);

    Matrix dequant(s.m, s.n);
    {
      ScopedGemmQuantInt8 int8_off(false);
      GemmQuant(SimdLevel::kScalar, s.m, s.n, s.k, a.data(), s.k,
                DType::kQ8, payload.data(), dequant.data(), s.n);
    }
    Matrix int8(s.m, s.n);
    {
      ScopedGemmQuantInt8 int8_on(true);
      GemmQuant(SimdLevel::kScalar, s.m, s.n, s.k, a.data(), s.k,
                DType::kQ8, payload.data(), int8.data(), s.n);
    }

    const size_t blocks = (s.k + 63) / 64;
    for (size_t i = 0; i < s.m; ++i) {
      for (size_t j = 0; j < s.n; ++j) {
        double bound = 1e-9;
        for (size_t t = 0; t < blocks; ++t) {
          const size_t p0 = t * 64;
          const size_t p1 = std::min(p0 + 64, s.k);
          double amax = 0.0;
          double wmax = 0.0;
          for (size_t p = p0; p < p1; ++p) {
            amax = std::max(amax, std::fabs(a(i, p)));
            wmax = std::max(wmax, std::fabs(w_dec(p, j)));
          }
          const double astep2 = amax / 254.0;  // astep / 2
          const double wstep2 = wmax / 254.0;
          for (size_t p = p0; p < p1; ++p) {
            bound += std::fabs(a(i, p)) * wstep2 +
                     std::fabs(w_dec(p, j)) * astep2 + astep2 * wstep2;
          }
        }
        EXPECT_LE(std::fabs(int8(i, j) - dequant(i, j)), bound)
            << "int8 vs dequant " << s.m << "x" << s.k << "x" << s.n
            << " at (" << i << "," << j << ")";
      }
    }
  }
}

// Off-mode regression: with the flag off (the default), GemmQuant on q8
// payloads is bit-identical to an explicit decode + Gemm — the fast path's
// existence changes nothing for callers who did not opt in. Also checks
// both paths accumulate (C +=) and that the scoped override nests.
TEST(GemmQuantInt8Test, OffModeBitIdenticalToDecodePlusGemmAndAccumulates) {
  Rng rng(0x0FF);
  const size_t m = 5, k = 70, n = 9;
  Matrix a(m, k);
  Matrix w(k, n);
  FillUniform(&a, &rng, -2.0, 2.0);
  FillUniform(&w, &rng, -2.0, 2.0);
  const std::vector<uint8_t> payload = EncodeQ8(w);
  const Matrix w_dec = DecodeQ8(payload, k, n);

  Matrix expected(m, n);
  for (size_t i = 0; i < expected.size(); ++i) {
    expected[i] = 0.25;
  }
  Gemm(SimdLevel::kScalar, m, n, k, a.data(), k, w_dec.data(), n,
       expected.data(), n);

  Matrix c(m, n);
  for (size_t i = 0; i < c.size(); ++i) {
    c[i] = 0.25;
  }
  {
    // Pin the flag off so the regression holds even under RPAS_INT8_GEMM=1.
    ScopedGemmQuantInt8 int8_off(false);
    GemmQuant(SimdLevel::kScalar, m, n, k, a.data(), k, DType::kQ8,
              payload.data(), c.data(), n);
  }
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(expected[i], c[i]) << "off-mode q8 flat index " << i;
  }

  // The int8 path accumulates too: running it on a prefilled C shifts the
  // result by exactly the prefill.
  Matrix z0(m, n);
  Matrix z1(m, n);
  for (size_t i = 0; i < z1.size(); ++i) {
    z1[i] = 1.5;
  }
  {
    ScopedGemmQuantInt8 int8_on(true);
    EXPECT_TRUE(GemmQuantInt8Enabled());
    {
      ScopedGemmQuantInt8 int8_off(false);
      EXPECT_FALSE(GemmQuantInt8Enabled());
    }
    EXPECT_TRUE(GemmQuantInt8Enabled());
    GemmQuant(SimdLevel::kScalar, m, n, k, a.data(), k, DType::kQ8,
              payload.data(), z0.data(), n);
    GemmQuant(SimdLevel::kScalar, m, n, k, a.data(), k, DType::kQ8,
              payload.data(), z1.data(), n);
  }
  for (size_t i = 0; i < z0.size(); ++i) {
    EXPECT_EQ(z0[i] + 1.5, z1[i]) << "int8 accumulate flat index " << i;
  }
}

// ----------------------------------------------------- vector primitives ---

TEST(VectorOpsTest, AxpyWithinFmaBoundOfScalar) {
  Rng rng(0x1234);
  for (size_t n : {1u, 2u, 3u, 7u, 16u, 33u}) {
    std::vector<double> x(n), y0(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(-2.0, 2.0);
      y0[i] = rng.Uniform(-2.0, 2.0);
    }
    const double alpha = rng.Uniform(-1.5, 1.5);
    std::vector<double> ref = y0;
    Axpy(SimdLevel::kScalar, n, alpha, x.data(), ref.data());
    for (SimdLevel level : SupportedLevels()) {
      std::vector<double> y = y0;
      Axpy(level, n, alpha, x.data(), y.data());
      for (size_t i = 0; i < n; ++i) {
        // FMA single-rounds alpha*x[i] + y[i]; the two-rounding scalar path
        // differs by at most one eps of each operand magnitude.
        const double tol =
            2.0 * kEps * (std::fabs(alpha * x[i]) + std::fabs(y0[i]));
        EXPECT_LE(std::fabs(y[i] - ref[i]), tol)
            << LevelName(level) << " axpy n=" << n << " i=" << i;
        if (level == SimdLevel::kSse2) {
          EXPECT_EQ(ref[i], y[i]) << "sse2 axpy must be bit-identical";
        }
      }
    }
  }
}

TEST(VectorOpsTest, ReductionsWithinConditionBoundOfScalar) {
  Rng rng(0x5678);
  for (size_t n : {1u, 3u, 4u, 9u, 17u, 64u, 129u}) {
    std::vector<double> x(n), y(n);
    double abs_dot = 0.0, abs_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(-2.0, 2.0);
      y[i] = rng.Uniform(-2.0, 2.0);
      abs_dot += std::fabs(x[i] * y[i]);
      abs_sum += std::fabs(x[i]);
    }
    const double ref_dot = Dot(SimdLevel::kScalar, n, x.data(), y.data());
    const double ref_sum = Sum(SimdLevel::kScalar, n, x.data());
    for (SimdLevel level : SupportedLevels()) {
      const double tol_dot = 4.0 * static_cast<double>(n) * kEps * abs_dot;
      const double tol_sum = 4.0 * static_cast<double>(n) * kEps * abs_sum;
      EXPECT_LE(std::fabs(Dot(level, n, x.data(), y.data()) - ref_dot),
                tol_dot)
          << LevelName(level) << " dot n=" << n;
      EXPECT_LE(std::fabs(Sum(level, n, x.data()) - ref_sum), tol_sum)
          << LevelName(level) << " sum n=" << n;
      if (level == SimdLevel::kSse2) {
        // SSE2 keeps the scalar reduction order.
        EXPECT_EQ(ref_dot, Dot(level, n, x.data(), y.data()));
        EXPECT_EQ(ref_sum, Sum(level, n, x.data()));
      }
    }
  }
}

// -------------------------------------------------- elementwise kernels ---

std::vector<double> TranscendentalProbe() {
  std::vector<double> xs = {0.0,   -0.0,  1e-300, -1e-300, 0.5,  -0.5,
                            1.0,   -1.0,  3.75,   -3.75,   19.5, -19.5,
                            25.0,  -25.0, 37.0,   -37.0};
  Rng rng(0x9999);
  for (int i = 0; i < 512; ++i) {
    xs.push_back(rng.Uniform(-20.0, 20.0));
  }
  return xs;
}

TEST(ElementwiseTest, TranscendentalsWithinFourUlpOfScalar) {
  const std::vector<double> xs = TranscendentalProbe();
  const size_t n = xs.size();
  std::vector<double> ref(n), out(n);
  for (SimdLevel level : SupportedLevels()) {
    EwTanh(SimdLevel::kScalar, n, xs.data(), ref.data());
    EwTanh(level, n, xs.data(), out.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_LE(UlpDistance(ref[i], out[i]), 4u)
          << LevelName(level) << " tanh(" << xs[i] << ") = " << out[i]
          << " vs " << ref[i];
    }
    EwSigmoid(SimdLevel::kScalar, n, xs.data(), ref.data());
    EwSigmoid(level, n, xs.data(), out.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_LE(UlpDistance(ref[i], out[i]), 4u)
          << LevelName(level) << " sigmoid(" << xs[i] << ") = " << out[i]
          << " vs " << ref[i];
    }
    if (level == SimdLevel::kSse2) {
      // SSE2 routes transcendentals to the scalar formulas.
      EwTanh(level, n, xs.data(), out.data());
      EwTanh(SimdLevel::kScalar, n, xs.data(), ref.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(ref[i], out[i]);
      }
    }
  }
}

TEST(ElementwiseTest, SoftplusAndReluBitIdenticalAtAllLevels) {
  const std::vector<double> xs = TranscendentalProbe();
  const size_t n = xs.size();
  std::vector<double> ref(n), out(n);
  EwSoftplus(SimdLevel::kScalar, n, xs.data(), ref.data());
  for (SimdLevel level : SupportedLevels()) {
    EwSoftplus(level, n, xs.data(), out.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(ref[i], out[i]) << LevelName(level) << " softplus";
    }
  }
  EwRelu(SimdLevel::kScalar, n, xs.data(), ref.data());
  for (SimdLevel level : SupportedLevels()) {
    EwRelu(level, n, xs.data(), out.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(ref[i], out[i]) << LevelName(level) << " relu";
    }
  }
}

// A row of a batched activation matrix starts at an arbitrary offset in the
// flat buffer, so each element's result must not depend on where the buffer
// was split — that is what keeps batched and unbatched serving bit-identical.
TEST(ElementwiseTest, ResultsIndependentOfBufferSplit) {
  const std::vector<double> xs = TranscendentalProbe();
  const size_t n = xs.size();
  std::vector<double> whole(n), split(n);
  for (SimdLevel level : SupportedLevels()) {
    for (size_t cut : {1u, 3u, 5u, 17u}) {
      EwTanh(level, n, xs.data(), whole.data());
      EwTanh(level, cut, xs.data(), split.data());
      EwTanh(level, n - cut, xs.data() + cut, split.data() + cut);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(whole[i], split[i])
            << LevelName(level) << " tanh split at " << cut;
      }
      EwSigmoid(level, n, xs.data(), whole.data());
      EwSigmoid(level, cut, xs.data(), split.data());
      EwSigmoid(level, n - cut, xs.data() + cut, split.data() + cut);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(whole[i], split[i])
            << LevelName(level) << " sigmoid split at " << cut;
      }
    }
  }
}

// ------------------------------------------------------ fused LSTM cell ---

struct LstmFixture {
  size_t batch;
  size_t hidden;
  Matrix gates;   // batch x 4H pre-activations
  Matrix c_prev;  // batch x H
};

LstmFixture MakeLstmFixture(size_t batch, size_t hidden, uint64_t seed) {
  LstmFixture f{batch, hidden, Matrix(batch, 4 * hidden),
                Matrix(batch, hidden)};
  Rng rng(seed);
  FillUniform(&f.gates, &rng, -3.0, 3.0);
  FillUniform(&f.c_prev, &rng, -1.5, 1.5);
  return f;
}

TEST(LstmKernelTest, ForwardMatchesScalarWithinBound) {
  for (size_t hidden : {1u, 3u, 4u, 6u, 11u}) {
    LstmFixture f = MakeLstmFixture(5, hidden, 0x77 + hidden);
    Matrix act_ref = f.gates;
    Matrix h_ref(f.batch, hidden), c_ref(f.batch, hidden);
    Matrix tc_ref(f.batch, hidden);
    LstmCellForward(SimdLevel::kScalar, f.batch, hidden, act_ref.data(),
                    f.c_prev.data(), hidden, h_ref.data(), hidden,
                    c_ref.data(), hidden, tc_ref.data());
    for (SimdLevel level : SupportedLevels()) {
      Matrix act = f.gates;
      Matrix h(f.batch, hidden), c(f.batch, hidden), tc(f.batch, hidden);
      LstmCellForward(level, f.batch, hidden, act.data(), f.c_prev.data(),
                      hidden, h.data(), hidden, c.data(), hidden, tc.data());
      for (size_t i = 0; i < act.size(); ++i) {
        EXPECT_LE(UlpDistance(act_ref[i], act[i]), 4u)
            << LevelName(level) << " activated gate " << i;
      }
      // c and h combine few-ULP-different gate values with plain mul/add;
      // a loose relative envelope keeps the bound condition-aware without
      // re-deriving per-element error terms.
      for (size_t i = 0; i < c.size(); ++i) {
        EXPECT_NEAR(c_ref[i], c[i], 1e-12 * (1.0 + std::fabs(c_ref[i])))
            << LevelName(level) << " c[" << i << "]";
        EXPECT_NEAR(h_ref[i], h[i], 1e-12 * (1.0 + std::fabs(h_ref[i])))
            << LevelName(level) << " h[" << i << "]";
        EXPECT_NEAR(tc_ref[i], tc[i], 1e-12)
            << LevelName(level) << " tanh_c[" << i << "]";
      }
    }
  }
}

TEST(LstmKernelTest, ForwardRowsIndependentOfBatchSize) {
  const size_t hidden = 7;
  LstmFixture f = MakeLstmFixture(4, hidden, 0x31337);
  for (SimdLevel level : SupportedLevels()) {
    Matrix act_full = f.gates;
    Matrix h_full(f.batch, hidden), c_full(f.batch, hidden);
    LstmCellForward(level, f.batch, hidden, act_full.data(), f.c_prev.data(),
                    hidden, h_full.data(), hidden, c_full.data(), hidden,
                    nullptr);
    for (size_t r = 0; r < f.batch; ++r) {
      Matrix act_row(1, 4 * hidden);
      Matrix cp_row(1, hidden);
      for (size_t j = 0; j < 4 * hidden; ++j) {
        act_row(0, j) = f.gates(r, j);
      }
      for (size_t j = 0; j < hidden; ++j) {
        cp_row(0, j) = f.c_prev(r, j);
      }
      Matrix h_row(1, hidden), c_row(1, hidden);
      LstmCellForward(level, 1, hidden, act_row.data(), cp_row.data(),
                      hidden, h_row.data(), hidden, c_row.data(), hidden,
                      nullptr);
      for (size_t j = 0; j < hidden; ++j) {
        EXPECT_EQ(h_full(r, j), h_row(0, j))
            << LevelName(level) << " h row " << r;
        EXPECT_EQ(c_full(r, j), c_row(0, j))
            << LevelName(level) << " c row " << r;
      }
    }
  }
}

TEST(LstmKernelTest, BackwardBitIdenticalAcrossLevels) {
  const size_t batch = 4, hidden = 6;
  LstmFixture f = MakeLstmFixture(batch, hidden, 0xABCD);
  // Activate the gates once at the scalar level so every backward call sees
  // identical inputs.
  Matrix act = f.gates;
  Matrix h(batch, hidden), c(batch, hidden), tc(batch, hidden);
  LstmCellForward(SimdLevel::kScalar, batch, hidden, act.data(),
                  f.c_prev.data(), hidden, h.data(), hidden, c.data(),
                  hidden, tc.data());
  Rng rng(0xEF);
  Matrix dh(batch, hidden), dc(batch, hidden);
  FillUniform(&dh, &rng, -1.0, 1.0);
  FillUniform(&dc, &rng, -1.0, 1.0);

  Matrix dgates_ref(batch, 4 * hidden), dcp_ref(batch, hidden);
  LstmCellBackward(SimdLevel::kScalar, batch, hidden, act.data(),
                   f.c_prev.data(), hidden, tc.data(), dh.data(), hidden,
                   dc.data(), hidden, dgates_ref.data(), dcp_ref.data());
  for (SimdLevel level : SupportedLevels()) {
    Matrix dgates(batch, 4 * hidden), dcp(batch, hidden);
    LstmCellBackward(level, batch, hidden, act.data(), f.c_prev.data(),
                     hidden, tc.data(), dh.data(), hidden, dc.data(), hidden,
                     dgates.data(), dcp.data());
    for (size_t i = 0; i < dgates.size(); ++i) {
      EXPECT_EQ(dgates_ref[i], dgates[i])
          << LevelName(level) << " dgates[" << i << "]";
    }
    for (size_t i = 0; i < dcp.size(); ++i) {
      EXPECT_EQ(dcp_ref[i], dcp[i])
          << LevelName(level) << " dc_prev[" << i << "]";
    }
  }
}

// ------------------------------------------- fused LSTM step on the tape ---

// Replicates the pre-kernel-layer LstmCell::Step graph op for op; at the
// scalar level the fused step must reproduce its values and parameter
// gradients bit-for-bit.
autodiff::Var UnfusedLstmStep(autodiff::Tape* tape, autodiff::Var x,
                              autodiff::Var h_prev, autodiff::Var c_prev,
                              autodiff::Parameter* wx, autodiff::Parameter* wh,
                              autodiff::Parameter* b, size_t hidden,
                              autodiff::Var* c_out) {
  using autodiff::Var;
  Var gates = tape->AddRowBroadcast(
      tape->Add(tape->MatMul(x, tape->Bind(wx)),
                tape->MatMul(h_prev, tape->Bind(wh))),
      tape->Bind(b));
  Var i = tape->Sigmoid(tape->SliceCols(gates, 0, hidden));
  Var f = tape->Sigmoid(tape->SliceCols(gates, hidden, 2 * hidden));
  Var g = tape->Tanh(tape->SliceCols(gates, 2 * hidden, 3 * hidden));
  Var o = tape->Sigmoid(tape->SliceCols(gates, 3 * hidden, 4 * hidden));
  Var c = tape->Add(tape->Mul(f, c_prev), tape->Mul(i, g));
  *c_out = c;
  return tape->Mul(o, tape->Tanh(c));
}

TEST(FusedLstmTapeTest, ScalarValuesAndGradsBitIdenticalToUnfusedReference) {
  ScopedSimdLevel scalar_only(SimdLevel::kScalar);
  using autodiff::Parameter;
  using autodiff::Tape;
  using autodiff::Var;

  const size_t in_dim = 3, hidden = 4, batch = 2, unroll = 3;
  Rng init(0x515);
  nn::LstmCell cell(in_dim, hidden, &init);
  std::vector<Parameter*> cell_params = cell.Params();
  ASSERT_EQ(3u, cell_params.size());
  // Reference copies of (w_x, w_h, b), matched by shape.
  Parameter wx(cell_params[0]->value);
  Parameter wh(cell_params[1]->value);
  Parameter b(cell_params[2]->value);
  ASSERT_EQ(in_dim, wx.value.rows());
  ASSERT_EQ(hidden, wh.value.rows());
  ASSERT_EQ(1u, b.value.rows());

  Rng data_rng(0x7777);
  std::vector<Matrix> inputs;
  for (size_t t = 0; t < unroll; ++t) {
    Matrix x(batch, in_dim);
    FillUniform(&x, &data_rng, -1.0, 1.0);
    inputs.push_back(std::move(x));
  }

  // Fused graph (the production LstmCell::Step).
  cell.ZeroGrads();
  Tape fused_tape;
  nn::LstmCell::State state = cell.ZeroState(&fused_tape, batch);
  for (size_t t = 0; t < unroll; ++t) {
    Var x = fused_tape.Input(batch, in_dim);
    Matrix& xm = *fused_tape.MutableValue(x);
    for (size_t i = 0; i < xm.size(); ++i) {
      xm[i] = inputs[t][i];
    }
    state = cell.Step(&fused_tape, x, state);
  }
  Var fused_loss = fused_tape.Add(
      fused_tape.Sum(fused_tape.Mul(state.h, state.h)),
      fused_tape.Sum(state.c));
  fused_tape.Backward(fused_loss);

  // Unfused legacy reference graph.
  Tape ref_tape;
  Var h = ref_tape.Zeros(batch, hidden);
  Var c = ref_tape.Zeros(batch, hidden);
  for (size_t t = 0; t < unroll; ++t) {
    Var x = ref_tape.Input(batch, in_dim);
    Matrix& xm = *ref_tape.MutableValue(x);
    for (size_t i = 0; i < xm.size(); ++i) {
      xm[i] = inputs[t][i];
    }
    Var c_next;
    h = UnfusedLstmStep(&ref_tape, x, h, c, &wx, &wh, &b, hidden, &c_next);
    c = c_next;
  }
  Var ref_loss = ref_tape.Add(ref_tape.Sum(ref_tape.Mul(h, h)),
                              ref_tape.Sum(c));
  ref_tape.Backward(ref_loss);

  // Forward values and loss must agree bit-for-bit.
  EXPECT_EQ(ref_loss.value()(0, 0), fused_loss.value()(0, 0));
  for (size_t i = 0; i < state.h.value().size(); ++i) {
    EXPECT_EQ(h.value()[i], state.h.value()[i]) << "h[" << i << "]";
    EXPECT_EQ(c.value()[i], state.c.value()[i]) << "c[" << i << "]";
  }
  // Parameter gradients must agree bit-for-bit.
  const Parameter* refs[] = {&wx, &wh, &b};
  for (size_t p = 0; p < 3; ++p) {
    const Matrix& got = cell_params[p]->grad;
    const Matrix& want = refs[p]->grad;
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i], got[i]) << "param " << p << " grad[" << i << "]";
    }
  }
}

// --------------------------------------------------- train-loop parity ---

nn::TrainSummary RunTinyLstmTraining(SimdLevel level) {
  ScopedSimdLevel scoped(level);
  using autodiff::Tape;
  using autodiff::Var;

  Rng init(7);
  nn::LstmCell cell(1, 6, &init);
  nn::Dense head(6, 1, nn::Dense::Activation::kNone, &init);
  std::vector<autodiff::Parameter*> params;
  for (auto* p : cell.Params()) {
    params.push_back(p);
  }
  for (auto* p : head.Params()) {
    params.push_back(p);
  }

  const size_t batch = 4, unroll = 6;
  auto loss_fn = [&](Tape* tape, Rng* /*rng*/) -> Var {
    // Fixed full-batch sine-prediction data: deterministic across levels.
    nn::LstmCell::State state = cell.ZeroState(tape, batch);
    Var loss;
    for (size_t t = 0; t < unroll; ++t) {
      Var x = tape->Input(batch, 1);
      Var y = tape->Input(batch, 1);
      Matrix& xm = *tape->MutableValue(x);
      Matrix& ym = *tape->MutableValue(y);
      for (size_t r = 0; r < batch; ++r) {
        const double phase = 0.7 * static_cast<double>(r);
        xm(r, 0) = std::sin(0.4 * static_cast<double>(t) + phase);
        ym(r, 0) = std::sin(0.4 * static_cast<double>(t + 1) + phase);
      }
      state = cell.Step(tape, x, state);
      Var mse = nn::MseLoss(tape, head.Forward(tape, state.h), y);
      loss = t == 0 ? mse : tape->Add(loss, mse);
    }
    return tape->Scale(loss, 1.0 / static_cast<double>(unroll));
  };

  nn::TrainConfig config;
  config.steps = 40;
  config.lr = 1e-2;
  config.record_loss = true;
  return nn::TrainLoop(config, params, loss_fn);
}

TEST(TrainLoopParityTest, FinalLossAgreesAcrossLevelsAndArenaStaysFlat) {
  const nn::TrainSummary base = RunTinyLstmTraining(SimdLevel::kScalar);
  ASSERT_FALSE(base.loss_history.empty());
  // The model must actually learn, and the tape arena must stop allocating
  // after the first (warmup) step — the O(1)-allocation property.
  EXPECT_LT(base.final_loss, base.loss_history.front());
  EXPECT_EQ(base.arena_allocs_after_warmup, base.arena_allocs_final);
  for (SimdLevel level : SupportedLevels()) {
    if (level == SimdLevel::kScalar) {
      continue;
    }
    const nn::TrainSummary run = RunTinyLstmTraining(level);
    EXPECT_NEAR(base.final_loss, run.final_loss, 1e-6)
        << "final loss diverged at level " << LevelName(level);
    EXPECT_EQ(run.arena_allocs_after_warmup, run.arena_allocs_final)
        << "steady-state allocation at level " << LevelName(level);
  }
}

// ---------------------------------------------------- parallel drivers ---

/// Restores the environment/hardware thread default on scope exit.
class ThreadOverrideGuard {
 public:
  ~ThreadOverrideGuard() { SetRpasThreads(0); }
};

TEST(ParallelKernelTest, GrainCostModelIsShapeOnly) {
  ThreadOverrideGuard guard;
  // Below the flop threshold: one chunk covering the whole range, which
  // ParallelFor runs serially on the calling thread.
  EXPECT_EQ(8u, GemmRowGrain(8, 8, 8));
  EXPECT_EQ(1u, GemmRowGrain(1, 1, 1));
  EXPECT_EQ(4u, LstmRowGrain(4, 8));
  // Above it: the fixed row grain, never derived from the thread count.
  EXPECT_EQ(16u, GemmRowGrain(512, 64, 64));
  EXPECT_EQ(8u, LstmRowGrain(512, 64));
  for (int threads : {1, 2, 8}) {
    SetRpasThreads(threads);
    EXPECT_EQ(16u, GemmRowGrain(512, 64, 64)) << threads << " threads";
    EXPECT_EQ(8u, GemmRowGrain(8, 8, 8)) << threads << " threads";
    EXPECT_EQ(8u, LstmRowGrain(512, 64)) << threads << " threads";
  }
}

TEST(ParallelKernelTest, GemmBitIdenticalAcrossThreadCountsAtEveryLevel) {
  ThreadOverrideGuard guard;
  Rng rng(0xFEED);
  // Big enough that 2*m*n*k clears the cost-model threshold, so the
  // parallel row-panel path genuinely engages; ragged in every dimension.
  Matrix a(130, 70);
  Matrix b(70, 91);
  FillUniform(&a, &rng, -2.0, 2.0);
  FillUniform(&b, &rng, -2.0, 2.0);
  ASSERT_EQ(16u, GemmRowGrain(a.rows(), b.cols(), a.cols()));
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    SetRpasThreads(1);
    Matrix ref(a.rows(), b.cols());
    MatMulInto(a, b, &ref);
    for (int threads : {2, 8}) {
      SetRpasThreads(threads);
      Matrix c(a.rows(), b.cols());
      MatMulInto(a, b, &c);
      for (size_t i = 0; i < c.size(); ++i) {
        ASSERT_EQ(ref[i], c[i])
            << LevelName(level) << " gemm diverged at flat index " << i
            << " with " << threads << " threads";
      }
    }
  }
}

TEST(ParallelKernelTest, TransposedGemmsBitIdenticalAcrossThreadCounts) {
  ThreadOverrideGuard guard;
  Rng rng(0xD1CE);
  const size_t m = 128, n = 66, k = 97;
  Matrix a_tn(k, m);  // GemmTN reads A as (k x m)
  Matrix a_nt(m, k);
  Matrix b_tn(k, n);
  Matrix b_nt(n, k);  // GemmNT reads B as (n x k)
  FillUniform(&a_tn, &rng, -2.0, 2.0);
  FillUniform(&a_nt, &rng, -2.0, 2.0);
  FillUniform(&b_tn, &rng, -2.0, 2.0);
  FillUniform(&b_nt, &rng, -2.0, 2.0);
  ASSERT_EQ(16u, GemmRowGrain(m, n, k));
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    SetRpasThreads(1);
    Matrix tn_ref(m, n), nt_ref(m, n);
    GemmTN(ActiveLevel(), m, n, k, a_tn.data(), m, b_tn.data(), n,
           tn_ref.data(), n);
    GemmNT(ActiveLevel(), m, n, k, a_nt.data(), k, b_nt.data(), k,
           nt_ref.data(), n);
    for (int threads : {2, 8}) {
      SetRpasThreads(threads);
      Matrix tn(m, n), nt(m, n);
      GemmTN(ActiveLevel(), m, n, k, a_tn.data(), m, b_tn.data(), n,
             tn.data(), n);
      GemmNT(ActiveLevel(), m, n, k, a_nt.data(), k, b_nt.data(), k,
             nt.data(), n);
      for (size_t i = 0; i < tn.size(); ++i) {
        ASSERT_EQ(tn_ref[i], tn[i])
            << LevelName(level) << " GemmTN diverged at " << i << " with "
            << threads << " threads";
        ASSERT_EQ(nt_ref[i], nt[i])
            << LevelName(level) << " GemmNT diverged at " << i << " with "
            << threads << " threads";
      }
    }
  }
}

TEST(ParallelKernelTest, LstmCellBitIdenticalAcrossThreadCounts) {
  ThreadOverrideGuard guard;
  Rng rng(0x1234);
  const size_t batch = 96, hidden = 64;
  ASSERT_EQ(8u, LstmRowGrain(batch, hidden));
  std::vector<double> gates0(batch * 4 * hidden);
  std::vector<double> c_prev(batch * hidden);
  std::vector<double> dh(batch * hidden), dc(batch * hidden);
  for (double& v : gates0) v = rng.Uniform(-2.0, 2.0);
  for (double& v : c_prev) v = rng.Uniform(-1.0, 1.0);
  for (double& v : dh) v = rng.Uniform(-1.0, 1.0);
  for (double& v : dc) v = rng.Uniform(-1.0, 1.0);
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    struct Run {
      std::vector<double> act, h, c, tanh_c, dgates, dc_prev;
    };
    auto run_at = [&](int threads) {
      SetRpasThreads(threads);
      Run r;
      r.act = gates0;
      r.h.assign(batch * hidden, 0.0);
      r.c.assign(batch * hidden, 0.0);
      r.tanh_c.assign(batch * hidden, 0.0);
      r.dgates.assign(batch * 4 * hidden, 0.0);
      r.dc_prev.assign(batch * hidden, 0.0);
      LstmCellForward(ActiveLevel(), batch, hidden, r.act.data(),
                      c_prev.data(), hidden, r.h.data(), hidden, r.c.data(),
                      hidden, r.tanh_c.data());
      LstmCellBackward(ActiveLevel(), batch, hidden, r.act.data(),
                       c_prev.data(), hidden, r.tanh_c.data(), dh.data(),
                       hidden, dc.data(), hidden, r.dgates.data(),
                       r.dc_prev.data());
      return r;
    };
    const Run ref = run_at(1);
    for (int threads : {2, 8}) {
      const Run got = run_at(threads);
      for (size_t i = 0; i < ref.h.size(); ++i) {
        ASSERT_EQ(ref.h[i], got.h[i]) << LevelName(level) << " h @ " << i;
        ASSERT_EQ(ref.c[i], got.c[i]) << LevelName(level) << " c @ " << i;
        ASSERT_EQ(ref.dc_prev[i], got.dc_prev[i])
            << LevelName(level) << " dc_prev @ " << i;
      }
      for (size_t i = 0; i < ref.dgates.size(); ++i) {
        ASSERT_EQ(ref.act[i], got.act[i]) << LevelName(level) << " act @ " << i;
        ASSERT_EQ(ref.dgates[i], got.dgates[i])
            << LevelName(level) << " dgates @ " << i;
      }
    }
  }
}

}  // namespace
}  // namespace rpas::tensor::kernels
