// Property-based sweeps over randomized inputs: invariants that must hold
// for any data, exercised across seeds/parameters with TEST_P.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/manager.h"
#include "select/classifier.h"
#include "select/prescaler.h"
#include "simdb/faults.h"
#include "forecast/seasonal_naive.h"
#include "dist/empirical.h"
#include "dist/student_t.h"
#include "core/strategies.h"
#include "core/uncertainty.h"
#include "simdb/warmup.h"
#include "solver/autoscaling.h"
#include "solver/simplex.h"
#include "ts/incremental.h"
#include "ts/metrics.h"
#include "ts/quantile_forecast.h"
#include "ts/scaler.h"
#include "ts/time_series.h"

namespace rpas {
namespace {

/// Random non-crossing quantile forecast over the scaling grid.
ts::QuantileForecast RandomForecast(Rng* rng, size_t horizon) {
  const std::vector<double> levels = {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99};
  std::vector<std::vector<double>> values(horizon);
  for (size_t h = 0; h < horizon; ++h) {
    const double base = rng->Uniform(0.5, 20.0);
    double v = base;
    values[h].reserve(levels.size());
    for (size_t q = 0; q < levels.size(); ++q) {
      values[h].push_back(v);
      v += rng->Uniform(0.0, 3.0);
    }
  }
  return ts::QuantileForecast(levels, std::move(values));
}

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededProperty, RobustAllocationMonotoneInTau) {
  Rng rng(GetParam());
  const ts::QuantileForecast fc = RandomForecast(&rng, 24);
  core::ScalingConfig config;
  config.theta = rng.Uniform(0.5, 3.0);
  std::vector<int> prev;
  for (double tau : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    auto alloc = core::RobustQuantileAllocator(tau).Allocate(fc, config);
    ASSERT_TRUE(alloc.ok());
    if (!prev.empty()) {
      for (size_t t = 0; t < prev.size(); ++t) {
        EXPECT_GE((*alloc)[t], prev[t]);
      }
    }
    prev = *alloc;
  }
}

TEST_P(SeededProperty, AdaptiveAllocationBetweenItsLevels) {
  Rng rng(GetParam() ^ 0xAD);
  const ts::QuantileForecast fc = RandomForecast(&rng, 24);
  core::ScalingConfig config;
  config.theta = rng.Uniform(0.5, 3.0);
  const double rho = rng.Uniform(0.0, 40.0);
  core::AdaptiveQuantileAllocator adaptive(0.6, 0.95, rho);
  auto a = adaptive.Allocate(fc, config);
  auto lo = core::RobustQuantileAllocator(0.6).Allocate(fc, config);
  auto hi = core::RobustQuantileAllocator(0.95).Allocate(fc, config);
  ASSERT_TRUE(a.ok() && lo.ok() && hi.ok());
  for (size_t t = 0; t < a->size(); ++t) {
    EXPECT_GE((*a)[t], (*lo)[t]);
    EXPECT_LE((*a)[t], (*hi)[t]);
  }
}

TEST_P(SeededProperty, AllocationSatisfiesDemandConstraint) {
  // The defining constraint of Definition 4: w_t^tau / c_t <= theta.
  Rng rng(GetParam() ^ 0x51);
  const ts::QuantileForecast fc = RandomForecast(&rng, 16);
  core::ScalingConfig config;
  config.theta = rng.Uniform(0.5, 3.0);
  const double tau = 0.9;
  auto alloc = core::RobustQuantileAllocator(tau).Allocate(fc, config);
  ASSERT_TRUE(alloc.ok());
  for (size_t t = 0; t < alloc->size(); ++t) {
    const double w = std::max(fc.Value(t, tau), 0.0);
    EXPECT_LE(w / (*alloc)[t], config.theta + 1e-9);
  }
}

TEST_P(SeededProperty, UncertaintyEqualsPinballAgainstMedian) {
  // Cross-check Eq. 8 against the shared pinball implementation.
  Rng rng(GetParam() ^ 0xEE);
  const ts::QuantileForecast fc = RandomForecast(&rng, 8);
  for (size_t h = 0; h < fc.Horizon(); ++h) {
    double expected = 0.0;
    const double median = fc.Value(h, 0.5);
    for (size_t q = 0; q < fc.Levels().size(); ++q) {
      expected +=
          ts::PinballLoss(fc.Levels()[q], fc.ValueAtIndex(h, q), median);
    }
    EXPECT_NEAR(core::QuantileUncertainty(fc, h), expected, 1e-9);
  }
}

TEST_P(SeededProperty, UncertaintyNonNegativeAndZeroOnDegenerate) {
  Rng rng(GetParam() ^ 0x77);
  const ts::QuantileForecast fc = RandomForecast(&rng, 8);
  for (size_t h = 0; h < fc.Horizon(); ++h) {
    EXPECT_GE(core::QuantileUncertainty(fc, h), 0.0);
  }
}

TEST_P(SeededProperty, SmootherRespectsDeltaAndNeverBlocksScaleOutForever) {
  Rng rng(GetParam() ^ 0x5A);
  std::vector<int> plan(32);
  for (int& v : plan) {
    v = 1 + static_cast<int>(rng.UniformInt(12));
  }
  const int delta = 1 + static_cast<int>(rng.UniformInt(3));
  core::ScalingSmoother smoother(
      {.max_step_delta = delta,
       .scale_in_cooldown = static_cast<int>(rng.UniformInt(4))});
  const int start = 1 + static_cast<int>(rng.UniformInt(6));
  const std::vector<int> out = smoother.Smooth(plan, start);
  ASSERT_EQ(out.size(), plan.size());
  int prev = start;
  for (int v : out) {
    EXPECT_LE(std::abs(v - prev), delta);
    prev = v;
  }
}

TEST_P(SeededProperty, PaddingPadBoundedByMaxObservedError) {
  Rng rng(GetParam() ^ 0xFA);
  core::PaddingEnhancement padding(
      {.error_window = 16, .quantile = rng.Uniform(0.5, 1.0)});
  double max_err = 0.0;
  for (int i = 0; i < 40; ++i) {
    const double actual = rng.Uniform(0.0, 10.0);
    const double predicted = rng.Uniform(0.0, 10.0);
    padding.Observe(actual, predicted);
    max_err = std::max(max_err, std::max(actual - predicted, 0.0));
    EXPECT_GE(padding.CurrentPad(), 0.0);
    EXPECT_LE(padding.CurrentPad(), max_err + 1e-12);
  }
}

TEST_P(SeededProperty, ScalerRoundTrip) {
  Rng rng(GetParam() ^ 0x5C);
  std::vector<double> data(64);
  for (double& v : data) {
    v = rng.Normal(5.0, 3.0);
  }
  for (const ts::AffineScaler& scaler :
       {ts::AffineScaler::FitStandard(data), ts::AffineScaler::FitMeanAbs(data),
        ts::AffineScaler::FitMinMax(data)}) {
    for (double v : data) {
      EXPECT_NEAR(scaler.Inverse(scaler.Transform(v)), v, 1e-9);
    }
  }
}

TEST_P(SeededProperty, QuantileForecastInterpolationMonotone) {
  Rng rng(GetParam() ^ 0x1F);
  const ts::QuantileForecast fc = RandomForecast(&rng, 6);
  for (size_t h = 0; h < fc.Horizon(); ++h) {
    double prev = fc.Value(h, 0.01);
    for (double tau = 0.05; tau < 1.0; tau += 0.03) {
      const double v = fc.Value(h, tau);
      EXPECT_GE(v, prev - 1e-12);
      prev = v;
    }
  }
}

TEST_P(SeededProperty, SimplexSolutionFeasibleOnRandomCoveringPrograms) {
  Rng rng(GetParam() ^ 0xC0);
  // min c.x s.t. A x >= b with non-negative A, c: always feasible, bounded.
  const size_t n = 2 + rng.UniformInt(4);
  const size_t m = 2 + rng.UniformInt(4);
  solver::LinearProgram lp;
  lp.objective.resize(n);
  for (double& c : lp.objective) {
    c = rng.Uniform(0.5, 2.0);
  }
  for (size_t i = 0; i < m; ++i) {
    solver::Constraint c;
    c.coeffs.resize(n);
    bool any = false;
    for (double& a : c.coeffs) {
      a = rng.Bernoulli(0.7) ? rng.Uniform(0.1, 2.0) : 0.0;
      any = any || a > 0.0;
    }
    if (!any) {
      c.coeffs[0] = 1.0;
    }
    c.relation = solver::Relation::kGreaterEqual;
    c.rhs = rng.Uniform(0.0, 5.0);
    lp.constraints.push_back(std::move(c));
  }
  auto solution = solver::SolveSimplex(lp);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  for (const solver::Constraint& c : lp.constraints) {
    double lhs = 0.0;
    for (size_t j = 0; j < n; ++j) {
      lhs += c.coeffs[j] * solution->x[j];
    }
    EXPECT_GE(lhs, c.rhs - 1e-7);
  }
  for (double x : solution->x) {
    EXPECT_GE(x, -1e-9);
  }
}

TEST_P(SeededProperty, EmpiricalQuantileMonotoneInQ) {
  Rng rng(GetParam() ^ 0xE0);
  const size_t n = 20 + rng.UniformInt(200);
  std::vector<double> samples(n);
  for (double& v : samples) {
    // Mix a continuous part with rounding so duplicates occur too.
    v = rng.Bernoulli(0.3) ? std::round(rng.Normal(0.0, 2.0))
                           : rng.Normal(0.0, 2.0);
  }
  dist::Empirical e(std::move(samples));
  double prev = e.Quantile(0.001);
  for (double q = 0.01; q < 1.0; q += 0.01) {
    const double v = e.Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST_P(SeededProperty, EmpiricalCdfQuantileRoundTrip) {
  // The step ECDF evaluated at the interpolated (type-7) quantile can fall
  // below q by at most one sample's probability mass — and is exact (>= q)
  // whenever q sits on the interpolation grid k/(n-1).
  Rng rng(GetParam() ^ 0xE1);
  const size_t n = 10 + rng.UniformInt(150);
  std::vector<double> samples(n);
  for (double& v : samples) {
    v = rng.Bernoulli(0.25) ? std::round(rng.Uniform(-3.0, 3.0))
                            : rng.Normal(1.0, 4.0);
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  dist::Empirical e(std::move(samples));
  const double nd = static_cast<double>(n);
  for (int i = 0; i < 50; ++i) {
    const double q = rng.Uniform(0.001, 0.999);
    EXPECT_GE(e.Cdf(e.Quantile(q)) + 1.0 / nd, q) << "q=" << q;
  }
  // On the interpolation grid q = k/(n-1) the type-7 quantile is the k-th
  // order statistic, where the ECDF covers at least (k+1)/n > q.  (Evaluating
  // Cdf at Quantile(q) directly can shed one sample's mass when q*(n-1)
  // rounds a hair below k.)
  for (size_t k = 1; k + 1 < n; ++k) {
    const double q = static_cast<double>(k) / (nd - 1.0);
    EXPECT_NEAR(e.Quantile(q), sorted[k], 1e-9) << "grid q=" << q;
    EXPECT_GE(e.Cdf(sorted[k]), q) << "grid q=" << q;
  }
}

TEST_P(SeededProperty, AggregateBlocksPreservesTotalMean) {
  Rng rng(GetParam() ^ 0xA6);
  ts::TimeSeries s;
  s.step_minutes = 1.0;
  const size_t block = 2 + rng.UniformInt(5);
  const size_t blocks = 10 + rng.UniformInt(20);
  for (size_t i = 0; i < block * blocks; ++i) {
    s.values.push_back(rng.Uniform(0.0, 100.0));
  }
  const ts::TimeSeries agg = AggregateBlocks(s, block);
  ASSERT_EQ(agg.size(), blocks);
  EXPECT_NEAR(agg.Mean(), s.Mean(), 1e-9);
}

TEST_P(SeededProperty, StudentTQuantileFiniteOnClosedUnitInterval) {
  Rng rng(GetParam() ^ 0x57);
  const double location = rng.Uniform(-10.0, 10.0);
  const double scale = rng.Uniform(0.1, 5.0);
  const double dof = rng.Uniform(1.0, 30.0);
  const dist::StudentT t(location, scale, dof);
  // The exact endpoints are the satellite case: they must clamp to a far
  // tail instead of aborting, and stay ordered against interior quantiles.
  const double q0 = t.Quantile(0.0);
  const double q1 = t.Quantile(1.0);
  EXPECT_TRUE(std::isfinite(q0));
  EXPECT_TRUE(std::isfinite(q1));
  EXPECT_LT(q0, t.Quantile(0.01));
  EXPECT_GT(q1, t.Quantile(0.99));
  double prev = q0;
  for (double p : {0.001, 0.1, 0.5, 0.9, 0.999, 1.0}) {
    const double q = t.Quantile(p);
    EXPECT_TRUE(std::isfinite(q)) << "p=" << p;
    EXPECT_GE(q, prev) << "p=" << p;
    prev = q;
  }
}

TEST_P(SeededProperty, StudentTQuantileCdfRoundTrip) {
  Rng rng(GetParam() ^ 0x58);
  const dist::StudentT t(rng.Uniform(-5.0, 5.0), rng.Uniform(0.5, 3.0),
                         rng.Uniform(2.0, 20.0));
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_NEAR(t.Cdf(t.Quantile(p)), p, 1e-6) << "p=" << p;
  }
}

// ---------------------------------------------- streaming state trackers ---

/// Batch recompute of SeasonalAccumulator's statistic: the seasonal-naive
/// residual stddev over the whole series in one pass.
double BatchSeasonalStddev(const std::vector<double>& x, size_t season) {
  double ss = 0.0;
  size_t n = 0;
  for (size_t t = season; t < x.size(); ++t) {
    const double d = x[t] - x[t - season];
    ss += d * d;
    ++n;
  }
  return std::max(std::sqrt(ss / static_cast<double>(n)), 1e-9);
}

/// Batch recompute of ArimaResidualState's statistic: difference the whole
/// series, run the ARMA residual recursion over it, average the squares.
double BatchArimaSigma2(const std::vector<double>& raw,
                        const ts::ArimaStateConfig& config) {
  std::vector<double> z = raw;
  for (size_t lag : config.diff_lags) {
    std::vector<double> out;
    for (size_t t = lag; t < z.size(); ++t) {
      out.push_back(z[t] - z[t - lag]);
    }
    z = std::move(out);
  }
  const size_t p = config.phi.size();
  const size_t q = config.theta.size();
  const size_t warmup = std::max(p, q);
  std::vector<double> e(z.size(), 0.0);
  double ss = 0.0;
  size_t n = 0;
  for (size_t t = warmup; t < z.size(); ++t) {
    double pred = config.intercept;
    for (size_t i = 0; i < p; ++i) {
      pred += config.phi[i] * z[t - 1 - i];
    }
    for (size_t j = 0; j < q; ++j) {
      pred += config.theta[j] * e[t - 1 - j];
    }
    e[t] = z[t] - pred;
    ss += e[t] * e[t];
    ++n;
  }
  return n > 0 ? std::max(ss / static_cast<double>(n), 1e-12) : 1.0;
}

/// Splits [0, total) into random-sized chunks (at least one point each).
std::vector<size_t> RandomChunks(Rng* rng, size_t total) {
  std::vector<size_t> chunks;
  size_t at = 0;
  while (at < total) {
    const size_t n = std::min<size_t>(
        total - at, 1 + static_cast<size_t>(rng->Uniform(0.0, 30.0)));
    chunks.push_back(n);
    at += n;
  }
  return chunks;
}

TEST_P(SeededProperty, SeasonalAccumulatorChunkedAppendsMatchBatch) {
  Rng rng(GetParam() ^ 0x5EA);
  const size_t season = 2 + static_cast<size_t>(rng.Uniform(0.0, 22.0));
  const size_t total = 3 * season + static_cast<size_t>(rng.Uniform(0.0, 200.0));
  std::vector<double> values;
  double walk = rng.Uniform(5.0, 15.0);
  for (size_t i = 0; i < total; ++i) {
    walk += rng.Normal();
    values.push_back(walk);
  }

  ts::SeasonalAccumulator chunked(season);
  ts::SeasonalAccumulator one_shot(season);
  size_t at = 0;
  for (size_t n : RandomChunks(&rng, total)) {
    for (size_t i = 0; i < n; ++i) {
      chunked.Push(values[at + i]);
    }
    at += n;
  }
  for (double v : values) {
    one_shot.Push(v);
  }

  // Chunking is invisible: the streaming state is a pure fold over the
  // sequence, so any append pattern lands on identical bits.
  EXPECT_EQ(chunked.count(), total);
  EXPECT_EQ(chunked.num_diffs(), total - season);
  EXPECT_EQ(chunked.sum_squares(), one_shot.sum_squares());
  EXPECT_EQ(chunked.Stddev(), one_shot.Stddev());
  EXPECT_NEAR(chunked.Stddev(), BatchSeasonalStddev(values, season), 1e-9);
}

TEST_P(SeededProperty, ArimaStateChunkedAppendsMatchBatch) {
  Rng rng(GetParam() ^ 0xA21);
  ts::ArimaStateConfig config;
  const size_t p = static_cast<size_t>(rng.Uniform(0.0, 3.99));
  const size_t q = static_cast<size_t>(rng.Uniform(0.0, 3.99));
  for (size_t i = 0; i < p; ++i) {
    config.phi.push_back(rng.Uniform(-0.3, 0.3));
  }
  for (size_t j = 0; j < q; ++j) {
    config.theta.push_back(rng.Uniform(-0.3, 0.3));
  }
  config.intercept = rng.Uniform(-0.1, 0.1);
  if (rng.Uniform() < 0.5) {
    config.diff_lags.push_back(7);  // "seasonal" stage first
  }
  config.diff_lags.push_back(1);

  const size_t total = 64 + static_cast<size_t>(rng.Uniform(0.0, 400.0));
  std::vector<double> values;
  for (size_t i = 0; i < total; ++i) {
    values.push_back(rng.Normal() + 0.05 * static_cast<double>(i % 7));
  }

  ts::ArimaResidualState chunked(config);
  ts::ArimaResidualState one_shot(config);
  one_shot.PushAll(values);
  size_t at = 0;
  for (size_t n : RandomChunks(&rng, total)) {
    for (size_t i = 0; i < n; ++i) {
      chunked.Push(values[at + i]);
    }
    at += n;
  }

  EXPECT_EQ(chunked.count(), total);
  EXPECT_EQ(chunked.num_residuals(), one_shot.num_residuals());
  EXPECT_EQ(chunked.sum_squares(), one_shot.sum_squares());
  EXPECT_EQ(chunked.Sigma2(), one_shot.Sigma2());
  EXPECT_NEAR(chunked.Sigma2(), BatchArimaSigma2(values, config), 1e-9);
}

TEST_P(SeededProperty, IncrementalChunksEqualOneResyncAfterDrop) {
  // Path independence of the forecaster streaming state: a model updated
  // through a random chunk pattern and a model that slept through the whole
  // stream and resynced once from history (the post-drop recovery path)
  // hold identical state.
  Rng rng(GetParam() ^ 0xD120);
  const size_t season = 24;
  const size_t prefix = 4 * season;
  const size_t total = prefix + season +
                       static_cast<size_t>(rng.Uniform(0.0, 120.0));
  ts::TimeSeries series;
  series.step_minutes = 10.0;
  for (size_t i = 0; i < total; ++i) {
    const double phase = 2.0 * M_PI * static_cast<double>(i % season) /
                         static_cast<double>(season);
    series.values.push_back(10.0 + 3.0 * std::sin(phase) + rng.Normal());
  }

  forecast::SeasonalNaiveForecaster::Options options;
  options.context_length = season;
  options.horizon = 6;
  options.season = season;

  forecast::SeasonalNaiveForecaster incremental(options);
  forecast::SeasonalNaiveForecaster resynced(options);
  ASSERT_TRUE(incremental.Fit(series.Slice(0, prefix)).ok());
  ASSERT_TRUE(resynced.Fit(series.Slice(0, prefix)).ok());

  size_t at = prefix;
  for (size_t n : RandomChunks(&rng, total - prefix)) {
    at += n;
    ASSERT_TRUE(incremental.IncrementalUpdate(series.Slice(0, at), n).ok());
  }
  ASSERT_TRUE(resynced.ResyncState(series).ok());
  EXPECT_EQ(incremental.residual_stddev(), resynced.residual_stddev());

  // And both equal a from-scratch fit over everything.
  forecast::SeasonalNaiveForecaster fresh(options);
  ASSERT_TRUE(fresh.Fit(series).ok());
  EXPECT_EQ(incremental.residual_stddev(), fresh.residual_stddev());
}

TEST_P(SeededProperty, ClassifierFeaturesInvariantToChunking) {
  // The workload classifier's features are a pure function of the trailing
  // window — any push pattern (point-by-point, random chunks, one PushAll)
  // lands on identical bits, and matches the one-shot FeaturesOf.
  Rng rng(GetParam() ^ 0xC1A5);
  const size_t total = 96 + static_cast<size_t>(rng.Uniform(0.0, 400.0));
  std::vector<double> values;
  double walk = rng.Uniform(5.0, 15.0);
  for (size_t i = 0; i < total; ++i) {
    walk += rng.Normal();
    values.push_back(
        walk + 4.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 24.0) +
        (rng.Uniform() < 0.02 ? 40.0 : 0.0));
  }

  select::ClassifierOptions options;
  options.window = 96;
  options.season = 24;
  options.min_points = 16;

  select::WorkloadClassifier chunked(options);
  size_t at = 0;
  for (size_t n : RandomChunks(&rng, total)) {
    chunked.PushAll(
        std::vector<double>(values.begin() + static_cast<long>(at),
                            values.begin() + static_cast<long>(at + n)));
    at += n;
  }
  select::WorkloadClassifier pointwise(options);
  for (double v : values) {
    pointwise.Push(v);
  }
  select::WorkloadClassifier oneshot(options);

  const auto a = chunked.Features();
  const auto b = pointwise.Features();
  const auto c = oneshot.FeaturesOf(values);
  EXPECT_EQ(a.points, b.points);
  EXPECT_EQ(a.trend_strength, b.trend_strength);
  EXPECT_EQ(a.seasonal_strength, b.seasonal_strength);
  EXPECT_EQ(a.burst_fraction, b.burst_fraction);
  EXPECT_EQ(a.max_spike_score, b.max_spike_score);
  EXPECT_EQ(a.trend_strength, c.trend_strength);
  EXPECT_EQ(a.seasonal_strength, c.seasonal_strength);
  EXPECT_EQ(a.burst_fraction, c.burst_fraction);
  EXPECT_EQ(a.max_spike_score, c.max_spike_score);
  EXPECT_EQ(chunked.Classify(), pointwise.Classify());
  EXPECT_EQ(chunked.Classify(), oneshot.ClassifyFeatures(c));
}

TEST_P(SeededProperty, ClassifierFeaturesInvariantToThreadCount) {
  // Classifying a batch of series fanned across the pool produces the same
  // bits at every thread count (the classifier holds no shared state and
  // each cell writes only its own slot).
  Rng rng(GetParam() ^ 0x7D3A);
  constexpr size_t kSeries = 24;
  std::vector<std::vector<double>> series(kSeries);
  for (auto& s : series) {
    const size_t n = 64 + static_cast<size_t>(rng.Uniform(0.0, 200.0));
    double walk = rng.Uniform(5.0, 15.0);
    for (size_t i = 0; i < n; ++i) {
      walk += rng.Normal();
      s.push_back(walk +
                  (rng.Uniform() < 0.03 ? rng.Uniform(20.0, 60.0) : 0.0));
    }
  }
  select::ClassifierOptions options;
  options.window = 128;
  options.season = 24;
  options.min_points = 16;

  auto classify_all = [&](int threads) {
    SetRpasThreads(threads);
    std::vector<select::WorkloadFeatures> features(kSeries);
    std::vector<select::WorkloadPattern> patterns(kSeries);
    ParallelFor(0, kSeries, 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        select::WorkloadClassifier classifier(options);
        classifier.PushAll(series[i]);
        features[i] = classifier.Features();
        patterns[i] = classifier.Classify();
      }
    });
    SetRpasThreads(0);
    return std::make_pair(std::move(features), std::move(patterns));
  };

  const auto serial = classify_all(1);
  for (int threads : {2, 4, 7}) {
    const auto parallel = classify_all(threads);
    for (size_t i = 0; i < kSeries; ++i) {
      EXPECT_EQ(parallel.first[i].trend_strength,
                serial.first[i].trend_strength);
      EXPECT_EQ(parallel.first[i].seasonal_strength,
                serial.first[i].seasonal_strength);
      EXPECT_EQ(parallel.first[i].burst_fraction,
                serial.first[i].burst_fraction);
      EXPECT_EQ(parallel.first[i].max_spike_score,
                serial.first[i].max_spike_score);
      EXPECT_EQ(parallel.second[i], serial.second[i]);
    }
  }
}

/// Single-fault plans covering every FaultType in simdb/faults.h.
/// kIngestBurst (9) is the clear-step flush of kIngestStall's plan, and
/// kPlannerError (7) has no standalone rate — the composite Uniform plan
/// at the end stands in for both alongside every other type at once.
std::vector<std::pair<std::string, simdb::FaultPlan>> AllFaultTypePlans(
    uint64_t seed) {
  std::vector<std::pair<std::string, simdb::FaultPlan>> plans;
  auto add = [&](simdb::FaultType type,
                 const std::function<void(simdb::FaultPlan&)>& set) {
    simdb::FaultPlan plan;
    plan.seed = seed;
    set(plan);
    plans.emplace_back(std::string(simdb::FaultTypeToString(type)), plan);
  };
  add(simdb::FaultType::kActuationDelay,
      [](simdb::FaultPlan& p) { p.actuation_delay_rate = 0.4; });
  add(simdb::FaultType::kPartialScaleOut,
      [](simdb::FaultPlan& p) { p.partial_scaleout_rate = 0.4; });
  add(simdb::FaultType::kNodeCrash,
      [](simdb::FaultPlan& p) { p.crash_rate = 0.3; });
  add(simdb::FaultType::kWorkloadSpike, [](simdb::FaultPlan& p) {
    p.spike_rate = 0.3;
    p.spike_multiplier = 3.0;
  });
  add(simdb::FaultType::kForecasterTimeout,
      [](simdb::FaultPlan& p) { p.forecaster_timeout_rate = 0.4; });
  add(simdb::FaultType::kForecasterNan,
      [](simdb::FaultPlan& p) { p.forecaster_nan_rate = 0.4; });
  add(simdb::FaultType::kStaleForecast,
      [](simdb::FaultPlan& p) { p.stale_forecast_rate = 0.4; });
  add(simdb::FaultType::kIngestStall,
      [](simdb::FaultPlan& p) { p.ingest_stall_rate = 0.4; });
  plans.emplace_back("composite_all", simdb::FaultPlan::Uniform(0.3, seed));
  return plans;
}

TEST_P(SeededProperty, PreScalerRoundTripsFloorUnderEveryFaultType) {
  // Whatever fault-perturbed plan/decision sequence reaches the pre-scaler
  // — dropped rounds under forecaster faults, spiky plans under workload
  // faults, shrunken decisions under crash/partial faults — every raise
  // rolls back to the original base floor and the merged decision is never
  // below what the reactive controller asked for.
  Rng rng(GetParam() ^ 0xF1E5);
  const int base_floor = 1 + static_cast<int>(rng.Uniform(0.0, 3.0));
  constexpr size_t kSteps = 240;
  constexpr size_t kReplan = 6;

  for (const auto& [name, plan] : AllFaultTypePlans(GetParam() * 31 + 7)) {
    simdb::FaultInjector injector(plan);
    select::PreScalerOptions options;
    options.lead_steps = 2;
    options.spike_ratio = 1.3;
    options.min_spike_nodes = 1;
    options.peak_hold = 2;
    options.hold_timeout = 3 * kReplan;
    select::PreScaler prescaler(options, base_floor);

    for (size_t step = 0; step < kSteps; ++step) {
      const simdb::StepFaults faults = injector.FaultsForStep(step);
      if (step % kReplan == 0 && faults.forecaster_timeout_attempts == 0 &&
          !faults.forecaster_nan && !faults.stale_forecast) {
        // Fresh plan: a daily-peak shape scaled by any workload fault.
        std::vector<int> fresh;
        for (size_t h = 0; h < 2 * kReplan; ++h) {
          const size_t phase = (step + h) % 48;
          double nodes = (phase >= 20 && phase < 28) ? 9.0 : 2.0;
          nodes *= faults.workload_multiplier;
          fresh.push_back(static_cast<int>(nodes));
        }
        prescaler.ObservePlan(fresh, step);
      }
      int decision =
          2 + static_cast<int>(3.0 * rng.Uniform()) - faults.crash_nodes;
      if (faults.partial_fraction < 1.0) {
        decision = static_cast<int>(decision * faults.partial_fraction);
      }
      decision = std::max(decision, 1);
      const int merged = prescaler.Merge(decision, step);
      EXPECT_GE(merged, decision) << name;
      EXPECT_GE(merged, 0) << name;
    }
    prescaler.Finish();
    EXPECT_EQ(prescaler.stats().activations, prescaler.stats().rollbacks)
        << name;
    EXPECT_FALSE(prescaler.active()) << name;
    EXPECT_EQ(prescaler.original_floor(), base_floor) << name;
    // Post-rollback the floor sits exactly at the original base again.
    EXPECT_EQ(prescaler.FloorAt(kSteps), base_floor) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

// ------------------------------------------------------- parameter sweeps ---

class WarmupSweep : public ::testing::TestWithParam<double> {};

TEST_P(WarmupSweep, WarmupMonotoneInCheckpointSize) {
  simdb::WarmupModel model;
  model.replay_gbps = GetParam();
  model.jitter_fraction = 0.0;
  double prev = -1.0;
  for (double gb : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double w = model.WarmupSeconds(gb, nullptr);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, WarmupSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 8.0));

class PinballSweep : public ::testing::TestWithParam<double> {};

TEST_P(PinballSweep, EmpiricalQuantileMinimizesPinballLoss) {
  // The tau-quantile of a sample minimizes mean pinball loss at level tau —
  // the property that makes quantile regression work (paper Eq. 1).
  const double tau = GetParam();
  Rng rng(42);
  std::vector<double> sample(400);
  for (double& v : sample) {
    v = rng.Normal(0.0, 2.0);
  }
  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  const double q =
      sorted[static_cast<size_t>(tau * (sorted.size() - 1))];
  auto mean_loss = [&](double pred) {
    double total = 0.0;
    for (double y : sample) {
      total += ts::PinballLoss(tau, y, pred);
    }
    return total / static_cast<double>(sample.size());
  };
  const double at_quantile = mean_loss(q);
  for (double offset : {-1.0, -0.3, 0.3, 1.0}) {
    EXPECT_GE(mean_loss(q + offset), at_quantile - 1e-9)
        << "tau=" << tau << " offset=" << offset;
  }
}

INSTANTIATE_TEST_SUITE_P(Taus, PinballSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace rpas
