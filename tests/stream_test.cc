// Streaming ingestion subsystem (src/stream) and its online-loop wiring:
// ring sequencing / wraparound / drop-oldest with exact counts, cursor
// semantics under a racing producer (1 and 4 threads), the incremental
// accumulators' bitwise batch equivalence, IncrementalRefresher dispatch
// (recursive / fine-tune / resync / drift retrain), and RunOnlineLoop's
// refresh_mode wiring including ingest-stall/burst fault composition.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/manager.h"
#include "core/online_loop.h"
#include "core/strategies.h"
#include "forecast/arima.h"
#include "forecast/holt_winters.h"
#include "forecast/mlp.h"
#include "forecast/seasonal_naive.h"
#include "obs/metrics.h"
#include "stream/refresher.h"
#include "stream/ring.h"
#include "ts/incremental.h"
#include "ts/metrics.h"

namespace rpas {
namespace {

constexpr size_t kDay = 144;

/// Deterministic value for sequence `seq`, so any delivered point can be
/// checked against the sequence it claims to carry.
double ValueOf(uint64_t seq) {
  return static_cast<double>(seq) * 1.5 + 0.25;
}

ts::TimeSeries SineSeries(size_t num_steps, double noise, uint64_t seed) {
  ts::TimeSeries s;
  s.step_minutes = 10.0;
  Rng rng(seed);
  for (size_t i = 0; i < num_steps; ++i) {
    const double phase = 2.0 * M_PI * static_cast<double>(i % kDay) /
                         static_cast<double>(kDay);
    s.values.push_back(10.0 + 4.0 * std::sin(phase) + noise * rng.Normal());
  }
  return s;
}

// ------------------------------------------------------------ IngestRing ---

TEST(IngestRingTest, SequencesAreDenseAndMonotonic) {
  stream::IngestRing ring(16);
  EXPECT_EQ(ring.capacity(), 16u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(ring.Push(ValueOf(i)), i);
  }
  EXPECT_EQ(ring.head_seq(), 10u);
  EXPECT_EQ(ring.tail_seq(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.size(), 10u);

  std::vector<double> out;
  const stream::IngestRing::ReadResult r = ring.ReadSince(0, &out);
  EXPECT_EQ(r.first_seq, 0u);
  EXPECT_EQ(r.count, 10u);
  EXPECT_EQ(r.missed, 0u);
  ASSERT_EQ(out.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i], ValueOf(i)) << "seq " << i;
  }
}

TEST(IngestRingTest, WraparoundDropsOldestWithExactCounts) {
  stream::IngestRing ring(8);
  for (uint64_t i = 0; i < 20; ++i) {
    ring.Push(ValueOf(i));
  }
  // 20 pushed into 8 slots: seqs 12..19 retained, 0..11 dropped.
  EXPECT_EQ(ring.head_seq(), 20u);
  EXPECT_EQ(ring.tail_seq(), 12u);
  EXPECT_EQ(ring.dropped(), 12u);
  EXPECT_EQ(ring.size(), 8u);

  std::vector<double> out;
  const stream::IngestRing::ReadResult r = ring.ReadSince(0, &out);
  EXPECT_EQ(r.first_seq, 12u);
  EXPECT_EQ(r.count, 8u);
  EXPECT_EQ(r.missed, 12u);
  ASSERT_EQ(out.size(), 8u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], ValueOf(12 + i)) << "slot " << i;
  }
}

TEST(IngestRingTest, ReadSinceStartsMidStreamAndAppends) {
  stream::IngestRing ring(16);
  for (uint64_t i = 0; i < 12; ++i) {
    ring.Push(ValueOf(i));
  }
  std::vector<double> out = {-1.0};  // pre-existing content must survive
  const stream::IngestRing::ReadResult r = ring.ReadSince(7, &out);
  EXPECT_EQ(r.first_seq, 7u);
  EXPECT_EQ(r.count, 5u);
  EXPECT_EQ(r.missed, 0u);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], -1.0);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[1 + i], ValueOf(7 + i));
  }

  // Nothing new past the head: empty read anchored at the head.
  const stream::IngestRing::ReadResult empty = ring.ReadSince(12, &out);
  EXPECT_EQ(empty.first_seq, 12u);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.missed, 0u);

  // nullptr out advances without copying and still reports exact counts.
  const stream::IngestRing::ReadResult dry = ring.ReadSince(3, nullptr);
  EXPECT_EQ(dry.first_seq, 3u);
  EXPECT_EQ(dry.count, 9u);
  EXPECT_EQ(dry.missed, 0u);
}

TEST(StreamCursorTest, PollDeliversEveryPointExactlyOnce) {
  stream::IngestRing ring(64);
  stream::StreamCursor cursor(&ring);
  std::vector<double> out;

  // Nothing yet.
  stream::StreamCursor::Batch batch = cursor.Poll(&out);
  EXPECT_EQ(batch.count, 0u);
  EXPECT_EQ(batch.missed, 0u);

  uint64_t next_check = 0;
  size_t total = 0;
  for (size_t chunk : {3, 1, 7, 25, 64}) {
    for (size_t i = 0; i < chunk; ++i) {
      ring.Push(ValueOf(ring.head_seq()));
    }
    out.clear();
    batch = cursor.Poll(&out);
    EXPECT_EQ(batch.count, chunk);
    EXPECT_EQ(batch.missed, 0u);
    ASSERT_EQ(out.size(), chunk);
    for (double v : out) {
      EXPECT_EQ(v, ValueOf(next_check));
      ++next_check;
    }
    total += chunk;
    EXPECT_EQ(cursor.next_seq(), total);
  }
  EXPECT_EQ(cursor.missed_total(), 0u);
}

TEST(StreamCursorTest, FreshCursorStartsAtTailNotZero) {
  stream::IngestRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Push(ValueOf(i));
  }
  // Seqs 0..5 are already gone; a cursor attached now must not count them
  // as missed.
  stream::StreamCursor cursor(&ring);
  EXPECT_EQ(cursor.next_seq(), 6u);
  std::vector<double> out;
  const stream::StreamCursor::Batch batch = cursor.Poll(&out);
  EXPECT_EQ(batch.count, 4u);
  EXPECT_EQ(batch.missed, 0u);
  ASSERT_EQ(out.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i], ValueOf(6 + i));
  }
}

TEST(StreamCursorTest, LappedCursorReportsExactMissedGap) {
  stream::IngestRing ring(4);
  stream::StreamCursor cursor(&ring);
  for (uint64_t i = 0; i < 4; ++i) {
    ring.Push(ValueOf(i));
  }
  std::vector<double> out;
  stream::StreamCursor::Batch batch = cursor.Poll(&out);
  EXPECT_EQ(batch.count, 4u);

  // Producer laps the cursor by 6: seqs 4..9 are gone, 10..13 retained.
  for (uint64_t i = 4; i < 14; ++i) {
    ring.Push(ValueOf(i));
  }
  out.clear();
  batch = cursor.Poll(&out);
  EXPECT_EQ(batch.missed, 6u);
  EXPECT_EQ(batch.count, 4u);
  ASSERT_EQ(out.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i], ValueOf(10 + i));
  }
  EXPECT_EQ(cursor.missed_total(), 6u);
  EXPECT_EQ(cursor.next_seq(), 14u);
}

TEST(StreamCursorTest, CountPlusMissedCoversEveryPush) {
  // Randomized single-threaded interleave: across any push/poll pattern,
  // delivered + missed must equal pushed, and every delivered value must
  // match its sequence.
  Rng rng(123);
  stream::IngestRing ring(8);
  stream::StreamCursor cursor(&ring);
  uint64_t pushed = 0;
  uint64_t delivered = 0;
  std::vector<double> out;
  for (int round = 0; round < 200; ++round) {
    const size_t burst = 1 + static_cast<size_t>(15.0 * rng.Uniform());
    for (size_t i = 0; i < burst; ++i) {
      ring.Push(ValueOf(pushed));
      ++pushed;
    }
    if (rng.Uniform() < 0.7) {
      out.clear();
      const uint64_t before = cursor.next_seq();
      const stream::StreamCursor::Batch batch = cursor.Poll(&out);
      ASSERT_EQ(out.size(), batch.count);
      for (size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i], ValueOf(before + batch.missed + i));
      }
      delivered += batch.count;
    }
  }
  out.clear();
  delivered += cursor.Poll(&out).count;
  EXPECT_EQ(delivered + cursor.missed_total(), pushed);
}

TEST(StreamRaceTest, FourThreadsObserveConsistentStream) {
  // One producer, three concurrent consumers. Each consumer must account
  // for every sequence exactly once (delivered or missed) and never
  // observe a torn/misordered value. Run under TSan in CI.
  constexpr uint64_t kTotal = 40000;
  constexpr size_t kConsumers = 3;
  stream::IngestRing ring(128);

  std::atomic<bool> done{false};
  std::vector<std::thread> consumers;
  std::vector<uint64_t> seen(kConsumers, 0);
  std::vector<uint64_t> missed(kConsumers, 0);
  // Per-consumer slots; plain bytes, not vector<bool> (bit-packing would
  // make concurrent per-consumer writes race on shared words).
  std::vector<uint8_t> values_ok(kConsumers, 1);

  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      stream::StreamCursor cursor(&ring);
      const uint64_t base = cursor.next_seq();  // dropped before attach
      std::vector<double> out;
      bool ok = true;
      while (true) {
        const bool final_pass = done.load(std::memory_order_acquire);
        out.clear();
        const uint64_t before = cursor.next_seq();
        const stream::StreamCursor::Batch batch = cursor.Poll(&out);
        if (out.size() != batch.count) {
          ok = false;
        }
        for (size_t i = 0; i < out.size() && ok; ++i) {
          if (out[i] != ValueOf(before + batch.missed + i)) {
            ok = false;
          }
        }
        seen[c] += batch.count;
        if (final_pass && batch.count == 0) {
          break;
        }
      }
      missed[c] = cursor.missed_total();
      values_ok[c] = ok ? 1 : 0;
      // Every sequence from attach to the end is either seen or missed.
      if (seen[c] + missed[c] + base != kTotal) {
        values_ok[c] = 0;
      }
    });
  }

  for (uint64_t i = 0; i < kTotal; ++i) {
    ring.Push(ValueOf(i));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : consumers) {
    t.join();
  }
  for (size_t c = 0; c < kConsumers; ++c) {
    EXPECT_TRUE(values_ok[c] != 0)
        << "consumer " << c << " saw a torn value or "
                              << "inconsistent accounting: seen=" << seen[c]
                              << " missed=" << missed[c];
  }
  EXPECT_EQ(ring.head_seq(), kTotal);
}

// --------------------------------------------- Incremental accumulators ---

TEST(RunningMomentsTest, MatchesDirectComputation) {
  Rng rng(7);
  std::vector<double> values;
  ts::RunningMoments moments;
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.Normal() * 3.0 + 10.0);
    moments.Push(values.back());
  }
  double mean = 0.0;
  for (double v : values) {
    mean += v;
  }
  mean /= static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) {
    ss += (v - mean) * (v - mean);
  }
  EXPECT_EQ(moments.count(), values.size());
  EXPECT_NEAR(moments.mean(), mean, 1e-9);
  EXPECT_NEAR(moments.variance(), ss / values.size(), 1e-9);
  EXPECT_NEAR(moments.sample_variance(), ss / (values.size() - 1), 1e-9);
}

TEST(SeasonalAccumulatorTest, BitwiseMatchesSeasonalNaiveFit) {
  const ts::TimeSeries series = SineSeries(5 * kDay, 0.5, 11);
  forecast::SeasonalNaiveForecaster::Options options;
  options.context_length = kDay;
  options.horizon = 36;
  options.season = kDay;
  forecast::SeasonalNaiveForecaster model(options);
  ASSERT_TRUE(model.Fit(series).ok());

  ts::SeasonalAccumulator acc(kDay);
  for (double v : series.values) {
    acc.Push(v);
  }
  EXPECT_EQ(acc.count(), series.size());
  EXPECT_EQ(acc.num_diffs(), series.size() - kDay);
  // Bit-identical, not merely close: the accumulator performs the batch
  // fit's arithmetic in the batch fit's order.
  EXPECT_EQ(acc.Stddev(), model.residual_stddev());
}

TEST(ArimaResidualStateTest, BitwiseMatchesArimaFitSigma2) {
  const ts::TimeSeries series = SineSeries(6 * kDay, 0.4, 13);
  forecast::ArimaForecaster::Options options;
  options.p = 2;
  options.q = 1;
  options.d = 1;
  options.seasonal_d = 1;
  options.season = kDay;
  options.context_length = 2 * kDay;
  options.horizon = 36;
  forecast::ArimaForecaster model(options);
  ASSERT_TRUE(model.Fit(series).ok());
  // Fit seeds the model's own streaming state from the training series;
  // its Sigma2 must equal the batch sigma2 bit-for-bit.
  EXPECT_EQ(model.sigma2(), model.sigma2());  // self-check placeholder

  // A fresh state built from the fitted coefficients and replayed over the
  // same series reproduces sigma2 exactly.
  ts::ArimaStateConfig config;
  config.phi = model.phi();
  config.theta = model.theta();
  config.intercept = model.intercept();
  config.diff_lags = {kDay, 1};  // seasonal first, then regular
  ts::ArimaResidualState state(config);
  state.PushAll(series.values);
  EXPECT_GT(state.num_residuals(), 0u);
  EXPECT_EQ(state.Sigma2(), model.sigma2());
}

TEST(ArimaResidualStateTest, ChunkedPushesEqualOneShot) {
  Rng rng(17);
  std::vector<double> values;
  for (int i = 0; i < 700; ++i) {
    values.push_back(rng.Normal());
  }
  ts::ArimaStateConfig config;
  config.phi = {0.4, -0.2};
  config.theta = {0.3};
  config.intercept = 0.05;
  config.diff_lags = {1};
  ts::ArimaResidualState one_shot(config);
  one_shot.PushAll(values);

  ts::ArimaResidualState chunked(config);
  size_t at = 0;
  Rng chunker(18);
  while (at < values.size()) {
    const size_t n = std::min<size_t>(
        values.size() - at, 1 + static_cast<size_t>(9.0 * chunker.Uniform()));
    for (size_t i = 0; i < n; ++i) {
      chunked.Push(values[at + i]);
    }
    at += n;
  }
  EXPECT_EQ(chunked.count(), one_shot.count());
  EXPECT_EQ(chunked.num_residuals(), one_shot.num_residuals());
  EXPECT_EQ(chunked.sum_squares(), one_shot.sum_squares());
  EXPECT_EQ(chunked.Sigma2(), one_shot.Sigma2());
}

// -------------------------------------------- Forecaster IncrementalUpdate ---

TEST(IncrementalUpdateTest, SeasonalNaiveMatchesFullRefitBitwise) {
  const ts::TimeSeries series = SineSeries(6 * kDay, 0.5, 21);
  const size_t prefix = 4 * kDay;

  forecast::SeasonalNaiveForecaster::Options options;
  options.context_length = kDay;
  options.horizon = 36;
  options.season = kDay;

  forecast::SeasonalNaiveForecaster incremental(options);
  ASSERT_TRUE(incremental.Fit(series.Slice(0, prefix)).ok());
  // Append the remaining points in uneven chunks.
  size_t at = prefix;
  for (size_t chunk : {1, 37, 144, 106}) {
    at += chunk;
    auto report = incremental.IncrementalUpdate(series.Slice(0, at), chunk);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->points, chunk);
    EXPECT_EQ(report->gradient_steps, 0);
  }
  ASSERT_EQ(at, series.size());

  forecast::SeasonalNaiveForecaster refit(options);
  ASSERT_TRUE(refit.Fit(series).ok());
  EXPECT_EQ(incremental.residual_stddev(), refit.residual_stddev());
}

TEST(IncrementalUpdateTest, ArimaIncrementalEqualsResyncReplay) {
  const ts::TimeSeries series = SineSeries(6 * kDay, 0.4, 23);
  const size_t prefix = 4 * kDay;

  forecast::ArimaForecaster::Options options;
  options.p = 2;
  options.q = 2;
  options.d = 1;
  options.context_length = kDay;
  options.horizon = 36;

  forecast::ArimaForecaster incremental(options);
  ASSERT_TRUE(incremental.Fit(series.Slice(0, prefix)).ok());
  size_t at = prefix;
  while (at < series.size()) {
    const size_t chunk = std::min<size_t>(97, series.size() - at);
    at += chunk;
    auto report = incremental.IncrementalUpdate(series.Slice(0, at), chunk);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  const double incremental_sigma2 = incremental.sigma2();

  // The same model replaying the whole history from scratch (the post-drop
  // resync path) must land on the exact same sigma2: the per-point
  // recursion is the replay arithmetic.
  forecast::ArimaForecaster resynced(options);
  ASSERT_TRUE(resynced.Fit(series.Slice(0, prefix)).ok());
  ASSERT_TRUE(resynced.ResyncState(series).ok());
  EXPECT_EQ(incremental_sigma2, resynced.sigma2());
}

TEST(IncrementalUpdateTest, GuardsRejectMisuse) {
  forecast::SeasonalNaiveForecaster::Options options;
  options.context_length = kDay;
  options.horizon = 36;
  options.season = kDay;
  forecast::SeasonalNaiveForecaster model(options);
  const ts::TimeSeries series = SineSeries(3 * kDay, 0.5, 29);

  // Before Fit: FailedPrecondition.
  EXPECT_EQ(model.IncrementalUpdate(series, 1).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(model.Fit(series).ok());
  // More new points than the history holds: InvalidArgument.
  EXPECT_EQ(
      model.IncrementalUpdate(series, series.size() + 1).status().code(),
      StatusCode::kInvalidArgument);
  // Models without an incremental path: Unimplemented, and they say so.
  forecast::HoltWintersForecaster::Options hw;
  hw.context_length = 2 * kDay;
  hw.horizon = 36;
  hw.season = kDay;
  forecast::HoltWintersForecaster holt(hw);
  EXPECT_FALSE(holt.SupportsIncrementalUpdate());
  ASSERT_TRUE(holt.Fit(series).ok());
  EXPECT_EQ(holt.IncrementalUpdate(series, 1).status().code(),
            StatusCode::kUnimplemented);
}

TEST(IncrementalUpdateTest, MlpFineTuneRunsBoundedGradientSteps) {
  ts::TimeSeries series = SineSeries(300, 0.3, 31);
  forecast::MlpForecaster::Options options;
  options.context_length = 12;
  options.horizon = 6;
  options.hidden_dim = 8;
  options.num_hidden_layers = 1;
  options.batch_size = 16;
  options.train.steps = 30;
  options.train.lr = 2e-3;
  options.fine_tune_steps = 5;
  forecast::MlpForecaster model(options);
  ASSERT_TRUE(model.Fit(series.Slice(0, 260)).ok());

  auto report = model.IncrementalUpdate(series, 40);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->points, 40u);
  EXPECT_EQ(report->gradient_steps, 5);

  // The fine-tuned model still forecasts finite quantiles.
  forecast::ForecastInput input;
  input.start_index = series.size();
  input.step_minutes = series.step_minutes;
  input.context.assign(series.values.end() - 12, series.values.end());
  auto forecast = model.PredictSeeded(input, 99);
  ASSERT_TRUE(forecast.ok());
  for (size_t h = 0; h < forecast->Horizon(); ++h) {
    for (size_t q = 0; q < forecast->Levels().size(); ++q) {
      EXPECT_TRUE(std::isfinite(forecast->ValueAtIndex(h, q)));
    }
  }

  // Zero new points is a no-op report, not an error.
  auto empty = model.IncrementalUpdate(series, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->points, 0u);
  EXPECT_EQ(empty->gradient_steps, 0);
}

// -------------------------------------------------- IncrementalRefresher ---

TEST(RefresherTest, DispatchesRecursiveResyncAndNoop) {
  const ts::TimeSeries series = SineSeries(5 * kDay, 0.5, 37);
  forecast::SeasonalNaiveForecaster::Options options;
  options.context_length = kDay;
  options.horizon = 36;
  options.season = kDay;
  forecast::SeasonalNaiveForecaster model(options);
  ASSERT_TRUE(model.Fit(series.Slice(0, 3 * kDay)).ok());

  stream::IncrementalRefresher refresher(&model, {});
  ASSERT_TRUE(refresher.Prime(series.Slice(0, 3 * kDay)).ok());

  // New points, no drops: recursive state update.
  auto outcome = refresher.Refresh(series.Slice(0, 3 * kDay + 50), 50, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, stream::RefreshKind::kRecursive);
  EXPECT_EQ(outcome->points, 50u);

  // No new points: nothing happens, nothing is counted.
  outcome = refresher.Refresh(series.Slice(0, 3 * kDay + 50), 0, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, stream::RefreshKind::kNone);

  // Dropped points: resync from history, defer the new points.
  outcome = refresher.Refresh(series.Slice(0, 3 * kDay + 120), 40, 30);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, stream::RefreshKind::kResync);

  const stream::RefreshStats& stats = refresher.stats();
  EXPECT_EQ(stats.refreshes, 2u);
  EXPECT_EQ(stats.recursive_updates, 1u);
  EXPECT_EQ(stats.resyncs, 1u);
  EXPECT_EQ(stats.points_consumed, 90u);
  EXPECT_EQ(stats.full_retrains, 0u);

  // The refresher's state matches a full refit after all that.
  forecast::SeasonalNaiveForecaster refit(options);
  ASSERT_TRUE(refit.Fit(series.Slice(0, 3 * kDay + 120)).ok());
  EXPECT_EQ(model.residual_stddev(), refit.residual_stddev());
}

TEST(RefresherTest, UnsupportedModelFallsBackToFullRetrain) {
  const ts::TimeSeries series = SineSeries(5 * kDay, 0.5, 41);
  forecast::HoltWintersForecaster::Options options;
  options.context_length = 2 * kDay;
  options.horizon = 36;
  options.season = kDay;
  forecast::HoltWintersForecaster model(options);
  ASSERT_TRUE(model.Fit(series.Slice(0, 3 * kDay)).ok());

  stream::IncrementalRefresher refresher(&model, {});
  ASSERT_TRUE(refresher.Prime(series.Slice(0, 3 * kDay)).ok());
  auto outcome = refresher.Refresh(series.Slice(0, 3 * kDay + 50), 50, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, stream::RefreshKind::kFullRetrain);
  EXPECT_EQ(refresher.stats().full_retrains, 1u);
}

TEST(RefresherTest, DriftGuardSchedulesRetrainAndResets) {
  const ts::TimeSeries series = SineSeries(5 * kDay, 0.5, 43);
  forecast::SeasonalNaiveForecaster::Options options;
  options.context_length = kDay;
  options.horizon = 36;
  options.season = kDay;
  forecast::SeasonalNaiveForecaster model(options);
  ASSERT_TRUE(model.Fit(series.Slice(0, 3 * kDay)).ok());

  stream::RefresherOptions ropts;
  ropts.drift_window = 3;
  ropts.drift_threshold = 2.0;
  stream::IncrementalRefresher refresher(&model, ropts);
  ASSERT_TRUE(refresher.Prime(series.Slice(0, 3 * kDay)).ok());

  // Baseline: three healthy losses.
  for (int i = 0; i < 3; ++i) {
    refresher.ObserveForecastLoss(0.1);
  }
  EXPECT_FALSE(refresher.drift_pending());
  // Quality collapses: rolling mean 0.5 > 2.0 * baseline 0.1.
  for (int i = 0; i < 3; ++i) {
    refresher.ObserveForecastLoss(0.5);
  }
  EXPECT_TRUE(refresher.drift_pending());

  auto outcome = refresher.Refresh(series.Slice(0, 3 * kDay + 60), 60, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, stream::RefreshKind::kFullRetrain);
  EXPECT_FALSE(refresher.drift_pending());  // guard re-arms after retrain
  EXPECT_EQ(refresher.stats().full_retrains, 1u);

  // Healthy losses again: no retrain scheduled.
  for (int i = 0; i < 3; ++i) {
    refresher.ObserveForecastLoss(0.1);
  }
  EXPECT_FALSE(refresher.drift_pending());
  outcome = refresher.Refresh(series.Slice(0, 3 * kDay + 90), 30, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, stream::RefreshKind::kRecursive);
}

// ------------------------------------------- Online loop streaming wiring ---

class StreamingLoopFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    series_ = SineSeries(8 * kDay, 0.5, 4242);
    forecast::SeasonalNaiveForecaster::Options options;
    options.context_length = 2 * kDay;
    options.horizon = 36;
    options.season = kDay;
    model_ = std::make_unique<forecast::SeasonalNaiveForecaster>(options);
    ASSERT_TRUE(model_->Fit(series_.Slice(0, 6 * kDay)).ok());
    config_.theta = 2.0;
    config_.min_nodes = 1;
    manager_ = std::make_unique<core::RobustAutoScalingManager>(
        model_.get(), std::make_unique<core::RobustQuantileAllocator>(0.9),
        config_);
  }

  core::OnlineLoopOptions LoopOptions() const {
    core::OnlineLoopOptions options;
    options.replan_every = 12;
    options.cluster.node_capacity = config_.theta;
    options.cluster.utilization_threshold = 1.0;
    options.cluster.initial_nodes = 5;
    return options;
  }

  core::OnlineLoopOptions StreamingOptions() const {
    core::OnlineLoopOptions options = LoopOptions();
    options.streaming.refresh_mode = core::RefreshMode::kIncremental;
    options.streaming.refresh_target = model_.get();
    // Pin the drift guard off so refresh counts are exact; the guard's
    // trigger/reset behavior has its own unit test above.
    options.streaming.refresher.drift_threshold = 1e9;
    return options;
  }

  ts::TimeSeries series_;
  std::unique_ptr<forecast::SeasonalNaiveForecaster> model_;
  core::ScalingConfig config_;
  std::unique_ptr<core::RobustAutoScalingManager> manager_;
};

TEST_F(StreamingLoopFixture, BatchModeIsDefaultAndLeavesStreamFieldsZero) {
  auto a = core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay,
                               LoopOptions());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  // Re-fit to restore state, then run again: batch mode mutates nothing,
  // so two runs are bit-identical.
  auto b = core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay,
                               LoopOptions());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->allocation, b->allocation);
  ASSERT_EQ(a->steps.size(), b->steps.size());
  for (size_t i = 0; i < a->steps.size(); ++i) {
    EXPECT_EQ(a->steps[i].avg_utilization, b->steps[i].avg_utilization);
  }

  // Stream accounting is inert in batch mode...
  EXPECT_EQ(a->points_ingested, 0u);
  EXPECT_EQ(a->points_dropped, 0u);
  EXPECT_EQ(a->points_pending, 0u);
  EXPECT_EQ(a->refresh.refreshes, 0u);
  EXPECT_TRUE(a->round_refresh_millis.empty());
  EXPECT_EQ(a->total_refresh_millis, 0.0);
  // ...while plan timing and staleness are tracked in both modes.
  EXPECT_EQ(a->round_plan_millis.size(), a->plans_made);
  EXPECT_GE(a->total_plan_millis, 0.0);
  // A fresh plan lands every replan_every=12 steps: staleness 0..11.
  EXPECT_EQ(a->max_staleness_points, 11u);
  EXPECT_EQ(a->mean_staleness_points, 5.5);
}

TEST_F(StreamingLoopFixture, IncrementalModeIngestsRefreshesAndReports) {
  obs::MetricsRegistry metrics(true);
  core::OnlineLoopOptions options = StreamingOptions();
  options.metrics = &metrics;
  auto result = core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay,
                                    options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every realized point was ingested; nothing stalled or dropped.
  EXPECT_EQ(result->points_ingested, static_cast<uint64_t>(kDay));
  EXPECT_EQ(result->points_pending, 0u);
  EXPECT_EQ(result->points_dropped, 0u);
  EXPECT_EQ(result->ingest_stall_steps, 0u);
  EXPECT_EQ(result->ingest_bursts, 0u);

  // Rounds fire every 12 steps over 144: 12 rounds; the first sees no new
  // points (kNone), the rest each consume 12.
  EXPECT_EQ(result->plans_made, 12u);
  EXPECT_EQ(result->refresh.refreshes, 11u);
  EXPECT_EQ(result->refresh.recursive_updates, 11u);
  EXPECT_EQ(result->refresh.points_consumed, static_cast<uint64_t>(132));
  EXPECT_EQ(result->refresh.full_retrains, 0u);
  EXPECT_EQ(result->refresh.resyncs, 0u);

  // Per-round wall time for both phases, one entry per round.
  EXPECT_EQ(result->round_refresh_millis.size(), result->plans_made);
  EXPECT_EQ(result->round_plan_millis.size(), result->plans_made);

  // Counters agree exactly with the result fields.
  EXPECT_EQ(metrics.GetCounter("stream.ingested")->value(),
            static_cast<int64_t>(result->points_ingested));
  EXPECT_EQ(metrics.GetCounter("stream.refresh.recursive_updates")->value(),
            static_cast<int64_t>(result->refresh.recursive_updates));
  // Staleness histogram saw one observation per step.
  EXPECT_EQ(metrics.GetHistogram("online.staleness_points")->count(),
            static_cast<uint64_t>(kDay));

  // The refresher kept the model's state equal to a full refit over
  // everything the stream delivered (training prefix + consumed points).
  forecast::SeasonalNaiveForecaster refit(
      forecast::SeasonalNaiveForecaster::Options{
          2 * kDay, 36, kDay, {}});
  ASSERT_TRUE(refit.Fit(series_.Slice(0, 6 * kDay + 132)).ok());
  EXPECT_EQ(model_->residual_stddev(), refit.residual_stddev());
}

TEST_F(StreamingLoopFixture, IncrementalModeNeedsRefreshTarget) {
  core::OnlineLoopOptions options = StreamingOptions();
  options.streaming.refresh_target = nullptr;
  auto result = core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay,
                                    options);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(StreamingLoopFixture, IngestStallQueuesAndBurstFlushes) {
  core::OnlineLoopOptions options = StreamingOptions();
  options.faults.ingest_stall_rate = 0.15;
  options.faults.ingest_stall_steps = 3;
  options.faults.seed = 71;
  auto result = core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay,
                                    options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Stalls fired, bursts flushed, and every realized point is accounted
  // for: ingested or still queued at the stalled producer.
  EXPECT_GT(result->ingest_stall_steps, 0u);
  EXPECT_GT(result->ingest_bursts, 0u);
  EXPECT_EQ(result->points_ingested + result->points_pending,
            static_cast<uint64_t>(kDay));

  // The event log records both fault types with step indices in range.
  size_t stalls = 0;
  size_t bursts = 0;
  for (const simdb::FaultEvent& e : result->fault_events) {
    EXPECT_LT(e.step, kDay);
    if (e.type == simdb::FaultType::kIngestStall) {
      ++stalls;
    } else if (e.type == simdb::FaultType::kIngestBurst) {
      ++bursts;
    }
  }
  EXPECT_EQ(stalls, result->ingest_stall_steps);
  EXPECT_EQ(bursts, result->ingest_bursts);

  // An ingest-stall-only plan never touches the planner/cluster fault
  // paths in batch mode: allocation matches the fault-free batch run.
  auto clean = core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay,
                                   LoopOptions());
  core::OnlineLoopOptions batch_with_stalls = LoopOptions();
  batch_with_stalls.faults = options.faults;
  auto batch = core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay,
                                   batch_with_stalls);
  ASSERT_TRUE(clean.ok() && batch.ok());
  EXPECT_EQ(clean->allocation, batch->allocation);
  EXPECT_EQ(batch->points_ingested, 0u);  // stall plan inert in batch mode
}

TEST_F(StreamingLoopFixture, StalledProducerStarvesPlannerDeterministically) {
  // A permanent stall means the stream never delivers: every round plans
  // from the training prefix alone and all points stay pending.
  core::OnlineLoopOptions options = StreamingOptions();
  options.faults.ingest_stall_rate = 1.0;
  auto result = core::RunOnlineLoop(*manager_, series_, 6 * kDay, kDay,
                                    options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->points_ingested, 0u);
  EXPECT_EQ(result->points_pending, static_cast<uint64_t>(kDay));
  EXPECT_EQ(result->ingest_bursts, 0u);
  EXPECT_EQ(result->ingest_stall_steps, static_cast<size_t>(kDay));
  EXPECT_EQ(result->refresh.refreshes, 0u);
}

TEST(StreamingWqlTest, IncrementalForecastsStayWithinOnePercentOfBatch) {
  // Model-level acceptance: serving forecasts from incrementally refreshed
  // state must hold wQL within 1% of full per-round refits. For ARIMA the
  // coefficients stay frozen while sigma2 tracks the stream, so the two
  // genuinely diverge — the bound is the contract.
  const ts::TimeSeries series = SineSeries(8 * kDay, 0.5, 97);
  const size_t train_end = 6 * kDay;

  forecast::ArimaForecaster::Options options;
  options.p = 2;
  options.q = 1;
  options.d = 0;
  options.seasonal_d = 1;
  options.season = kDay;
  options.context_length = 2 * kDay;
  options.horizon = 36;

  forecast::ArimaForecaster incremental(options);
  ASSERT_TRUE(incremental.Fit(series.Slice(0, train_end)).ok());

  std::vector<ts::QuantileForecast> inc_forecasts;
  std::vector<ts::QuantileForecast> batch_forecasts;
  std::vector<std::vector<double>> actuals;
  const size_t step = 36;
  for (size_t at = train_end; at + step <= 8 * kDay - 36; at += step) {
    if (at > train_end) {
      ASSERT_TRUE(
          incremental.IncrementalUpdate(series.Slice(0, at), step).ok());
    }
    forecast::ArimaForecaster batch(options);
    ASSERT_TRUE(batch.Fit(series.Slice(0, at)).ok());

    forecast::ForecastInput input;
    input.start_index = at;
    input.step_minutes = series.step_minutes;
    input.context.assign(
        series.values.begin() + static_cast<long>(at - 2 * kDay),
        series.values.begin() + static_cast<long>(at));
    auto inc = incremental.PredictSeeded(input, 7);
    auto full = batch.PredictSeeded(input, 7);
    ASSERT_TRUE(inc.ok() && full.ok());
    inc_forecasts.push_back(*inc);
    batch_forecasts.push_back(*full);
    actuals.emplace_back(
        series.values.begin() + static_cast<long>(at),
        series.values.begin() + static_cast<long>(at + 36));
  }
  ASSERT_GT(inc_forecasts.size(), 3u);
  const double inc_wql =
      ts::EvaluateForecasts(inc_forecasts, actuals, {0.5, 0.9}).mean_wql;
  const double batch_wql =
      ts::EvaluateForecasts(batch_forecasts, actuals, {0.5, 0.9}).mean_wql;
  ASSERT_GT(batch_wql, 0.0);
  EXPECT_LE(std::fabs(inc_wql - batch_wql) / batch_wql, 0.01)
      << "incremental wQL " << inc_wql << " vs batch " << batch_wql;
}

}  // namespace
}  // namespace rpas
