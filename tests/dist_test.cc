#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dist/empirical.h"
#include "dist/gaussian.h"
#include "dist/special.h"
#include "dist/student_t.h"

namespace rpas::dist {
namespace {

// ------------------------------------------------------ special functions ---

TEST(SpecialTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.96), 0.024997895148220435, 1e-9);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-9);
}

TEST(SpecialTest, NormalQuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(SpecialTest, NormalQuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.9), 1.2815515655446004, 1e-8);
}

TEST(SpecialTest, DigammaRecurrenceIdentity) {
  // psi(x+1) = psi(x) + 1/x.
  for (double x : {0.5, 1.0, 2.3, 7.7}) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-10) << "x=" << x;
  }
}

TEST(SpecialTest, DigammaKnownValues) {
  // psi(1) = -gamma (Euler-Mascheroni).
  EXPECT_NEAR(Digamma(1.0), -0.5772156649015329, 1e-9);
  // psi(0.5) = -gamma - 2 ln 2.
  EXPECT_NEAR(Digamma(0.5), -1.9635100260214235, 1e-9);
}

TEST(SpecialTest, LogBetaSymmetry) {
  EXPECT_NEAR(LogBeta(2.0, 3.0), LogBeta(3.0, 2.0), 1e-12);
  // B(2,3) = 1/12.
  EXPECT_NEAR(std::exp(LogBeta(2.0, 3.0)), 1.0 / 12.0, 1e-10);
}

TEST(SpecialTest, IncompleteBetaBoundaries) {
  EXPECT_DOUBLE_EQ(IncompleteBetaRegularized(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(IncompleteBetaRegularized(2.0, 3.0, 1.0), 1.0);
}

TEST(SpecialTest, IncompleteBetaUniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.3, 0.5, 0.9}) {
    EXPECT_NEAR(IncompleteBetaRegularized(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(SpecialTest, StudentTCdfSymmetry) {
  for (double x : {0.5, 1.0, 2.5}) {
    EXPECT_NEAR(StudentTCdf(x, 5.0) + StudentTCdf(-x, 5.0), 1.0, 1e-10);
  }
  EXPECT_NEAR(StudentTCdf(0.0, 3.0), 0.5, 1e-12);
}

TEST(SpecialTest, StudentTCdfKnownValue) {
  // t_1 (Cauchy): CDF(1) = 0.75.
  EXPECT_NEAR(StudentTCdf(1.0, 1.0), 0.75, 1e-8);
  // Large dof approaches the normal CDF.
  EXPECT_NEAR(StudentTCdf(1.0, 1e6), NormalCdf(1.0), 1e-4);
}

TEST(SpecialTest, StudentTQuantileInvertsCdf) {
  for (double dof : {1.0, 2.0, 4.0, 30.0}) {
    for (double p : {0.05, 0.25, 0.5, 0.75, 0.9, 0.99}) {
      EXPECT_NEAR(StudentTCdf(StudentTQuantile(p, dof), dof), p, 1e-8)
          << "dof=" << dof << " p=" << p;
    }
  }
}

TEST(SpecialTest, StudentTQuantileKnownValue) {
  // t_{0.975, 4} = 2.776445.
  EXPECT_NEAR(StudentTQuantile(0.975, 4.0), 2.7764451051977987, 1e-5);
}

// ---------------------------------------------------------------- Gaussian ---

TEST(GaussianTest, Moments) {
  Gaussian g(3.0, 2.0);
  EXPECT_DOUBLE_EQ(g.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(g.Variance(), 4.0);
}

TEST(GaussianTest, LogPdfKnown) {
  Gaussian g(0.0, 1.0);
  EXPECT_NEAR(g.LogPdf(0.0), -0.5 * std::log(2.0 * M_PI), 1e-12);
}

TEST(GaussianTest, QuantileCdfRoundTrip) {
  Gaussian g(5.0, 3.0);
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(g.Cdf(g.Quantile(p)), p, 1e-9);
  }
  EXPECT_DOUBLE_EQ(g.Quantile(0.5), 5.0);
}

TEST(GaussianTest, SampleMoments) {
  Gaussian g(-2.0, 0.5);
  Rng rng(77);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = g.Sample(&rng);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, -2.0, 0.02);
  EXPECT_NEAR(sq / n - mean * mean, 0.25, 0.01);
}

// ---------------------------------------------------------------- StudentT ---

TEST(StudentTTest, Moments) {
  StudentT t(1.0, 2.0, 5.0);
  EXPECT_DOUBLE_EQ(t.Mean(), 1.0);
  EXPECT_NEAR(t.Variance(), 4.0 * 5.0 / 3.0, 1e-12);
  StudentT heavy(0.0, 1.0, 2.0);
  EXPECT_TRUE(std::isinf(heavy.Variance()));
}

TEST(StudentTTest, QuantileCdfRoundTrip) {
  StudentT t(10.0, 2.0, 4.0);
  for (double p : {0.05, 0.5, 0.95}) {
    EXPECT_NEAR(t.Cdf(t.Quantile(p)), p, 1e-7);
  }
  EXPECT_NEAR(t.Quantile(0.5), 10.0, 1e-9);
}

TEST(StudentTTest, HeavierTailsThanGaussian) {
  Gaussian g(0.0, 1.0);
  StudentT t(0.0, 1.0, 3.0);
  // Same scale: the t distribution puts more mass beyond 3.
  EXPECT_GT(1.0 - t.Cdf(3.0), 1.0 - g.Cdf(3.0));
}

TEST(StudentTTest, LogPdfIntegratesConsistently) {
  // Check pdf via numeric derivative of cdf at a few points.
  StudentT t(0.0, 1.0, 6.0);
  for (double x : {-1.0, 0.0, 2.0}) {
    const double h = 1e-5;
    const double numeric_pdf = (t.Cdf(x + h) - t.Cdf(x - h)) / (2.0 * h);
    EXPECT_NEAR(std::exp(t.LogPdf(x)), numeric_pdf, 1e-5) << "x=" << x;
  }
}

TEST(StudentTTest, SampleLocation) {
  StudentT t(7.0, 1.0, 8.0);
  Rng rng(123);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += t.Sample(&rng);
  }
  EXPECT_NEAR(sum / n, 7.0, 0.05);
}

// --------------------------------------------------------------- Empirical ---

TEST(EmpiricalTest, QuantilesOfKnownSample) {
  Empirical e({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(e.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(e.Quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(e.Quantile(0.75), 4.0);
  // Interpolation between order statistics.
  EXPECT_DOUBLE_EQ(e.Quantile(0.625), 3.5);
}

TEST(EmpiricalTest, MeanVariance) {
  Empirical e({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(e.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(e.Variance(), 4.0);  // sample variance
}

TEST(EmpiricalTest, CdfStepFunction) {
  Empirical e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.Cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(e.Cdf(10.0), 1.0);
}

TEST(EmpiricalTest, SingleSample) {
  Empirical e({42.0});
  EXPECT_DOUBLE_EQ(e.Quantile(0.1), 42.0);
  EXPECT_DOUBLE_EQ(e.Quantile(0.9), 42.0);
  EXPECT_DOUBLE_EQ(e.Variance(), 0.0);
}

TEST(EmpiricalTest, QuantileMonotone) {
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back(rng.Normal());
  }
  Empirical e(samples);
  double prev = e.Quantile(0.01);
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double q = e.Quantile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(EmpiricalTest, LargeSampleQuantilesMatchSource) {
  Gaussian g(0.0, 1.0);
  Rng rng(6);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) {
    samples.push_back(g.Sample(&rng));
  }
  Empirical e(std::move(samples));
  EXPECT_NEAR(e.Quantile(0.9), g.Quantile(0.9), 0.03);
  EXPECT_NEAR(e.Quantile(0.5), 0.0, 0.02);
}

TEST(EmpiricalTest, SampleDrawsFromData) {
  Empirical e({1.0, 2.0, 3.0});
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const double s = e.Sample(&rng);
    EXPECT_TRUE(s == 1.0 || s == 2.0 || s == 3.0);
  }
}

// Parameterized calibration sweep: for each distribution, the fraction of
// samples below Quantile(p) must approximate p.
class QuantileCalibrationTest : public ::testing::TestWithParam<double> {};

TEST_P(QuantileCalibrationTest, GaussianCalibrated) {
  const double p = GetParam();
  Gaussian g(1.0, 2.0);
  Rng rng(91);
  const double q = g.Quantile(p);
  int below = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (g.Sample(&rng) <= q) {
      ++below;
    }
  }
  EXPECT_NEAR(static_cast<double>(below) / n, p, 0.01);
}

TEST_P(QuantileCalibrationTest, StudentTCalibrated) {
  const double p = GetParam();
  StudentT t(0.0, 1.5, 4.0);
  Rng rng(92);
  const double q = t.Quantile(p);
  int below = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (t.Sample(&rng) <= q) {
      ++below;
    }
  }
  EXPECT_NEAR(static_cast<double>(below) / n, p, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Levels, QuantileCalibrationTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9, 0.95));

}  // namespace
}  // namespace rpas::dist
