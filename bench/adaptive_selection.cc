// Adaptive selection benchmark: strategy x tenant-mix grid.
//
// A mixed tenant fleet (mostly Alibaba-like seasonal tenants plus a
// minority of Google-like bursty ones) runs the online scaling loop under
// four planning strategies:
//   - all-seasonal:       every round planned by the seasonal-naive tier;
//   - all-deepar:         every round planned by the DeepAR tier;
//   - adaptive:           per-tenant ladder (seasonal-naive -> ARIMA ->
//                         MLP -> DeepAR) driven by rolling wQL, with TRUE
//                         pre-scaling (raised capacity floor ahead of
//                         predicted spikes, auto-rollback);
//   - adaptive-noprescale: the same ladder with the pre-scaler disabled
//                         (isolates the floor-raise contribution).
// The ladder is fitted ONCE per profile class and shared by that class's
// tenants; runs inject actuation-delay faults so scale-out lag (the
// situation pre-scaling exists for) is realistic.
//
// Each class's selector accuracy SLO (wql_bound) is derived from tier
// baselines measured on the class's pre-eval calibration window, the way
// an operator would budget it: target the cheapest tier competitive with
// the top tier, and place the promote trigger between that tier's observed
// prefix wQL and the next cheaper tier's.
//
// The primary accuracy metric is IN-FORCE wQL: each plan is scored on the
// kReplanEvery steps it actually controls before the next replan replaces
// it — the same prefix window the selector observes and the only part of a
// forecast that ever drives scaling. Full-horizon wQL is reported alongside
// for context (it includes forecast steps that are never acted on).
//
// Reported per (tenant, strategy): steady-state held-out in-force wQL of
// the plans the strategy actually served (the adaptive row re-scores the
// tier that was active each round; the leading adaptation-warmup rounds
// are excluded for every strategy alike), planning microseconds per
// round, a static $-cost proxy (per-round tier cost units), overall and
// spike-window SLO violations, and the selector/pre-scaler accounting.
//
// Asserted invariants (exit 1 on violation):
//   - fleet-mean adaptive in-force wQL <= 1.02 x all-DeepAR's;
//   - fleet-mean all-DeepAR planning us/round >= 3 x adaptive us/round;
//   - adaptive spike-window SLO violations <= adaptive-noprescale;
//   - every pre-scaler activation rolled back (activations == rollbacks).
//
// --json=PATH writes a machine-readable summary for the CI smoke step.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "core/online_loop.h"
#include "core/strategies.h"
#include "forecast/seasonal_naive.h"
#include "select/selector.h"
#include "trace/generator.h"
#include "ts/metrics.h"

namespace rpas::bench {
namespace {

constexpr size_t kSelHorizon = 36;    // 6 hours: tighter replan cadence
constexpr size_t kReplanEvery = 12;   // 2 hours between planning rounds
constexpr uint64_t kEvalSeedBase = 0xADA7;
constexpr double kSpikeWorkloadRatio = 1.15;  // spike step: >= ratio * mean
/// A cheaper tier is "competitive" when its calibration-window in-force
/// wQL is within this slack of the top tier's; the class SLO targets the
/// cheapest competitive tier.
constexpr double kCompetitiveSlack = 0.05;
/// The promote trigger sits at least this far above the settle tier's own
/// prefix wQL, so rolling-window noise does not push the settled tenant up
/// the ladder.
constexpr double kHoldMargin = 1.4;

/// Static $-cost proxy per planning round by ladder tier (relative serving
/// cost of keeping that model hot: table lookup, closed-form recursion,
/// small net, sampled RNN rollout).
constexpr double kTierCostUnits[] = {1.0, 4.0, 20.0, 100.0};

constexpr const char* kTierNames[] = {"seasonal-naive", "arima", "mlp",
                                      "deepar"};

enum class Strategy {
  kAllSeasonal = 0,
  kAllDeepar = 1,
  kAdaptive = 2,
  kAdaptiveNoPrescale = 3,
};

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kAllSeasonal: return "all-seasonal";
    case Strategy::kAllDeepar: return "all-deepar";
    case Strategy::kAdaptive: return "adaptive";
    case Strategy::kAdaptiveNoPrescale: return "adaptive-noprescale";
  }
  return "?";
}

constexpr Strategy kStrategies[] = {
    Strategy::kAllSeasonal, Strategy::kAllDeepar, Strategy::kAdaptive,
    Strategy::kAdaptiveNoPrescale};

/// One profile class: the ladder is fitted once on a representative trace
/// of the class and shared by every tenant drawn from that profile.
struct ProfileClass {
  std::string name;
  trace::TraceProfile profile;
  core::ScalingConfig config;
  std::vector<std::unique_ptr<forecast::Forecaster>> models;
  std::vector<std::unique_ptr<core::RobustAutoScalingManager>> managers;
  /// Accuracy SLO the selector is run with, derived per class from the
  /// calibration-window tier baselines (see DeriveWqlBound).
  double wql_bound = 0.15;
};

ProfileClass MakeProfileClass(const trace::TraceProfile& profile,
                              const BenchOptions& options) {
  ProfileClass cls;
  cls.name = profile.name;
  cls.profile = profile;
  const Dataset dataset = MakeDataset(profile, options.seed);
  cls.config = MakeScalingConfig(dataset);

  forecast::SeasonalNaiveForecaster::Options naive;
  naive.context_length = kContext;
  naive.horizon = kSelHorizon;
  naive.season = kStepsPerDay;
  naive.levels = ScalingLevels();
  cls.models.push_back(
      std::make_unique<forecast::SeasonalNaiveForecaster>(naive));
  cls.models.push_back(MakeArima(kSelHorizon, ScalingLevels()));
  cls.models.push_back(
      MakeMlp(kSelHorizon, ScalingLevels(), options.quick, /*run=*/0));
  cls.models.push_back(
      MakeDeepAr(kSelHorizon, ScalingLevels(), options.quick, /*run=*/0));
  for (auto& model : cls.models) {
    RPAS_CHECK(model->Fit(dataset.train).ok()) << cls.name;
    cls.managers.push_back(std::make_unique<core::RobustAutoScalingManager>(
        model.get(),
        std::make_unique<core::RobustQuantileAllocator>(0.95), cls.config));
  }
  return cls;
}

struct CellResult {
  std::string cls;
  size_t tenant = 0;
  Strategy strategy = Strategy::kAllSeasonal;
  double wql = 0.0;          ///< in-force (prefix-window) wQL — primary
  double horizon_wql = 0.0;  ///< full-horizon wQL — context
  double us_per_round = 0.0;
  double cost_units = 0.0;
  double slo_violation_rate = 0.0;
  size_t spike_steps = 0;
  size_t spike_violations = 0;
  size_t rounds = 0;
  size_t final_tier = 0;
  std::string pattern = "-";
  uint64_t switches = 0;
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  uint64_t prescale_activations = 0;
  uint64_t prescale_rollbacks = 0;
  uint64_t floor_raised_steps = 0;
  bool rollback_ok = true;
};

core::SelectionOptions MakeSelection(const ProfileClass& cls,
                                     bool prescale) {
  core::SelectionOptions selection;
  selection.mode = core::SelectionMode::kAdaptive;
  for (const auto& manager : cls.managers) {
    selection.ladder.push_back(manager.get());
  }
  selection.classifier.season = kStepsPerDay;
  selection.selector.wql_window = 6;
  selection.selector.min_dwell = 2;
  selection.selector.probe_cooldown = 6;
  selection.selector.wql_bound = cls.wql_bound;
  selection.prescale = prescale;
  selection.prescaler.lead_steps = 3;
  selection.prescaler.spike_ratio = 1.2;
  selection.prescaler.min_spike_nodes = 1;
  selection.prescaler.peak_hold = 2;
  selection.prescaler.hold_timeout = 4 * kReplanEvery;
  return selection;
}

struct ServedScore {
  double wql = 0.0;         ///< full-horizon mean wQL
  double prefix_wql = 0.0;  ///< first-replan-window wQL (what the selector sees)
};

/// Re-scores the forecasts the strategy actually served: for each planning
/// round past the warmup, predict from the tier that was active that round
/// (fixed for the all-X strategies, `tier_by_round` for adaptive) with a
/// deterministic per-round seed, and evaluate against the realized horizon.
/// `warmup_rounds` excludes the adaptation transient uniformly for every
/// strategy, so the comparison is between steady-state operating points.
ServedScore ScoreServedWql(const ProfileClass& cls,
                           const ts::TimeSeries& series, size_t eval_start,
                           size_t rounds,
                           const std::vector<size_t>& tier_by_round,
                           size_t warmup_rounds) {
  std::vector<ts::QuantileForecast> forecasts;
  std::vector<std::vector<double>> actuals;
  double prefix_sum = 0.0;
  for (size_t r = warmup_rounds; r < rounds; ++r) {
    const size_t at = eval_start + r * kReplanEvery;
    if (at + kSelHorizon > series.size() || at < kContext) {
      continue;
    }
    const forecast::Forecaster* model =
        cls.models[tier_by_round.empty() ? 0 : tier_by_round[r]].get();
    forecast::ForecastInput input;
    input.start_index = at - kContext;
    input.step_minutes = series.step_minutes;
    input.context.assign(
        series.values.begin() + static_cast<long>(at - kContext),
        series.values.begin() + static_cast<long>(at));
    auto forecast = model->PredictSeeded(input, kEvalSeedBase + r);
    RPAS_CHECK(forecast.ok()) << forecast.status().ToString();
    std::vector<double> prefix(
        series.values.begin() + static_cast<long>(at),
        series.values.begin() + static_cast<long>(at + kReplanEvery));
    prefix_sum += ts::PrefixMeanWql(*forecast, prefix);
    forecasts.push_back(std::move(*forecast));
    actuals.emplace_back(
        series.values.begin() + static_cast<long>(at),
        series.values.begin() + static_cast<long>(at + kSelHorizon));
  }
  RPAS_CHECK(!forecasts.empty());
  ServedScore score;
  score.wql = ts::EvaluateForecasts(forecasts, actuals, ScalingLevels()).mean_wql;
  score.prefix_wql = prefix_sum / static_cast<double>(forecasts.size());
  return score;
}

/// Steady-state accuracy of every ladder tier on a class-representative
/// tenant trace: the data the bench derives each class's accuracy SLO from
/// (and the numbers an operator would budget tiers with).
std::vector<ServedScore> MeasureTierBaselines(const ProfileClass& cls,
                                              const ts::TimeSeries& series,
                                              size_t eval_start,
                                              size_t rounds,
                                              size_t warmup_rounds) {
  std::vector<ServedScore> baselines;
  for (size_t tier = 0; tier < cls.models.size(); ++tier) {
    const std::vector<size_t> fixed(rounds, tier);
    baselines.push_back(ScoreServedWql(cls, series, eval_start, rounds,
                                       fixed, warmup_rounds));
  }
  return baselines;
}

/// Derives the class accuracy SLO from calibration-window tier baselines,
/// emulating an operator that budgets per-tenant targets: the settle tier
/// is the cheapest tier whose full-horizon wQL is competitive with the top
/// tier's, and the promote trigger is placed between the settle tier's
/// prefix wQL (what the selector observes) and the next cheaper tier's, so
/// the ladder climbs exactly that far and holds in the dead band.
double DeriveWqlBound(const std::vector<ServedScore>& baselines) {
  const size_t top = baselines.size() - 1;
  size_t settle = top;
  for (size_t t = 0; t < top; ++t) {
    if (baselines[t].prefix_wql <=
        (1.0 + kCompetitiveSlack) * baselines[top].prefix_wql) {
      settle = t;
      break;
    }
  }
  double trigger = 0.0;
  if (settle == top) {
    // Nothing cheaper is competitive: place the trigger safely below every
    // lower tier's accuracy so the ladder climbs briskly to the top (which
    // cannot promote further, so no hold margin is needed there).
    double floor = baselines[0].prefix_wql;
    for (size_t t = 1; t < top; ++t) {
      floor = std::min(floor, baselines[t].prefix_wql);
    }
    trigger = 0.8 * floor;
  } else if (settle == 0) {
    trigger = kHoldMargin * baselines[0].prefix_wql;
  } else {
    // Hold at the settle tier with margin against rolling-window noise,
    // while staying below the next cheaper tier so it still promotes.
    trigger = std::max(kHoldMargin * baselines[settle].prefix_wql,
                       std::sqrt(baselines[settle].prefix_wql *
                                 baselines[settle - 1].prefix_wql));
    trigger = std::min(trigger, 0.9 * baselines[settle - 1].prefix_wql);
  }
  return trigger / (1.0 + select::SelectorOptions().promote_hysteresis);
}

CellResult RunCell(const ProfileClass& cls, size_t tenant,
                   Strategy strategy, const ts::TimeSeries& series,
                   size_t eval_start, size_t num_steps) {
  core::OnlineLoopOptions loop;
  loop.replan_every = kReplanEvery;
  loop.cluster.node_capacity = cls.config.theta;
  loop.cluster.initial_nodes = 2;
  // Scale-out lag: 40% of steps defer requested adds by two steps — the
  // actuation environment TRUE pre-scaling is designed for (capacity must
  // be requested ahead of the spike to be standing when it arrives).
  loop.faults.actuation_delay_rate = 0.4;
  loop.faults.actuation_delay_steps = 2;
  loop.faults.seed = 77 + tenant;

  const core::RobustAutoScalingManager* base = cls.managers[0].get();
  size_t fixed_tier = 0;
  switch (strategy) {
    case Strategy::kAllSeasonal:
      fixed_tier = 0;
      break;
    case Strategy::kAllDeepar:
      fixed_tier = cls.managers.size() - 1;
      break;
    case Strategy::kAdaptive:
      loop.selection = MakeSelection(cls, /*prescale=*/true);
      break;
    case Strategy::kAdaptiveNoPrescale:
      loop.selection = MakeSelection(cls, /*prescale=*/false);
      break;
  }
  const bool adaptive = loop.selection.mode == core::SelectionMode::kAdaptive;
  base = adaptive ? cls.managers[0].get() : cls.managers[fixed_tier].get();

  auto result =
      core::RunOnlineLoop(*base, series, eval_start, num_steps, loop);
  RPAS_CHECK(result.ok()) << result.status().ToString();

  CellResult cell;
  cell.cls = cls.name;
  cell.tenant = tenant;
  cell.strategy = strategy;
  cell.rounds = result->plans_made;
  cell.us_per_round = 1000.0 * result->total_plan_millis /
                      static_cast<double>(std::max<size_t>(1, cell.rounds));
  cell.slo_violation_rate = result->slo_violation_rate;

  // Spike-window SLO violations: steps whose realized workload runs at or
  // above kSpikeWorkloadRatio x the tenant's history mean.
  const double spike_level =
      kSpikeWorkloadRatio * series.Slice(0, eval_start).Mean();
  for (const auto& step : result->steps) {
    if (step.workload >= spike_level) {
      ++cell.spike_steps;
      cell.spike_violations += step.slo_violated ? 1 : 0;
    }
  }

  std::vector<size_t> tier_by_round;
  if (adaptive) {
    tier_by_round = result->selection.tier_by_round;
    const auto& sel = result->selection;
    cell.final_tier = sel.final_tier;
    cell.pattern = std::string(WorkloadPatternToString(sel.pattern));
    cell.switches = sel.selector.switches;
    cell.promotions = sel.selector.promotions;
    cell.demotions = sel.selector.probe_demotions +
                     sel.selector.fault_demotions +
                     sel.selector.drift_demotions;
    cell.prescale_activations = sel.prescaler.activations;
    cell.prescale_rollbacks = sel.prescaler.rollbacks;
    cell.floor_raised_steps = sel.prescaler.floor_raised_steps;
    cell.rollback_ok = sel.prescaler.activations == sel.prescaler.rollbacks;
    for (size_t tier : tier_by_round) {
      cell.cost_units += kTierCostUnits[tier];
    }
  } else {
    cell.final_tier = fixed_tier;
    tier_by_round.assign(cell.rounds, fixed_tier);
    cell.cost_units =
        static_cast<double>(cell.rounds) * kTierCostUnits[fixed_tier];
  }
  // Steady state: the leading 40% of rounds is adaptation warmup
  // (classifier seeding + ladder climb) and is excluded from the wQL
  // comparison for every strategy alike.
  const ServedScore score = ScoreServedWql(
      cls, series, eval_start, cell.rounds, tier_by_round,
      2 * cell.rounds / 5);
  cell.wql = score.prefix_wql;
  cell.horizon_wql = score.wql;
  return cell;
}

struct Aggregate {
  Strategy strategy = Strategy::kAllSeasonal;
  double mean_wql = 0.0;
  double mean_us_per_round = 0.0;
  double cost_units = 0.0;
  size_t spike_steps = 0;
  size_t spike_violations = 0;
  double mean_slo_violation_rate = 0.0;
};

/// Per-class tier accuracy on the representative tenant: the calibration
/// window feeds DeriveWqlBound; the eval window shows where each tier lands
/// on the scored period.
struct ClassBaselines {
  std::string name;
  double wql_bound = 0.0;
  std::vector<ServedScore> calib;
  std::vector<ServedScore> eval;
};

void WriteJson(const std::string& path, const BenchOptions& options,
               const std::vector<ClassBaselines>& baselines,
               const std::vector<CellResult>& cells,
               const std::vector<Aggregate>& aggregates, double speedup,
               bool wql_ok, bool speedup_ok, bool prescale_ok,
               bool rollback_ok, bool bounds_ok) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "adaptive_selection: cannot write %s\n",
                 path.c_str());
    return;
  }
  out << StrFormat(
      "{\"bench\":\"adaptive_selection\",\"quick\":%s,\"baselines\":[",
      options.quick ? "true" : "false");
  for (size_t i = 0; i < baselines.size(); ++i) {
    const ClassBaselines& b = baselines[i];
    out << (i > 0 ? "," : "")
        << StrFormat("{\"class\":\"%s\",\"wql_bound\":%.6f,\"tiers\":[",
                     b.name.c_str(), b.wql_bound);
    for (size_t t = 0; t < b.calib.size(); ++t) {
      out << (t > 0 ? "," : "")
          << StrFormat(
                 "{\"tier\":%zu,\"model\":\"%s\",\"calib_wql\":%.6f,"
                 "\"calib_prefix_wql\":%.6f,\"eval_wql\":%.6f,"
                 "\"eval_prefix_wql\":%.6f}",
                 t, kTierNames[t], b.calib[t].wql, b.calib[t].prefix_wql,
                 b.eval[t].wql, b.eval[t].prefix_wql);
    }
    out << "]}";
  }
  out << "],\"rows\":[";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << (i > 0 ? "," : "")
        << StrFormat(
               "{\"class\":\"%s\",\"tenant\":%zu,\"strategy\":\"%s\","
               "\"wql\":%.6f,\"horizon_wql\":%.6f,"
               "\"us_per_round\":%.2f,\"cost_units\":%.1f,"
               "\"slo_violation_rate\":%.5f,\"spike_steps\":%zu,"
               "\"spike_violations\":%zu,\"rounds\":%zu,\"final_tier\":%zu,"
               "\"pattern\":\"%s\",\"switches\":%llu,"
               "\"prescale_activations\":%llu,\"prescale_rollbacks\":%llu,"
               "\"floor_raised_steps\":%llu,\"rollback_ok\":%s}",
               c.cls.c_str(), c.tenant, StrategyName(c.strategy), c.wql,
               c.horizon_wql, c.us_per_round, c.cost_units,
               c.slo_violation_rate,
               c.spike_steps, c.spike_violations, c.rounds, c.final_tier,
               c.pattern.c_str(),
               static_cast<unsigned long long>(c.switches),
               static_cast<unsigned long long>(c.prescale_activations),
               static_cast<unsigned long long>(c.prescale_rollbacks),
               static_cast<unsigned long long>(c.floor_raised_steps),
               c.rollback_ok ? "true" : "false");
  }
  out << "],\"aggregates\":[";
  for (size_t i = 0; i < aggregates.size(); ++i) {
    const Aggregate& a = aggregates[i];
    out << (i > 0 ? "," : "")
        << StrFormat(
               "{\"strategy\":\"%s\",\"mean_wql\":%.6f,"
               "\"mean_us_per_round\":%.2f,\"cost_units\":%.1f,"
               "\"spike_steps\":%zu,\"spike_violations\":%zu,"
               "\"mean_slo_violation_rate\":%.5f}",
               StrategyName(a.strategy), a.mean_wql, a.mean_us_per_round,
               a.cost_units, a.spike_steps, a.spike_violations,
               a.mean_slo_violation_rate);
  }
  out << StrFormat(
      "],\"speedup\":%.2f,\"wql_ok\":%s,\"speedup_ok\":%s,"
      "\"prescale_ok\":%s,\"rollback_ok\":%s,\"bounds_ok\":%s}\n",
      speedup, wql_ok ? "true" : "false", speedup_ok ? "true" : "false",
      prescale_ok ? "true" : "false", rollback_ok ? "true" : "false",
      bounds_ok ? "true" : "false");
}

int RunAdaptiveSelection(const BenchOptions& options,
                         const std::string& json_path) {
  std::vector<ProfileClass> classes;
  classes.push_back(MakeProfileClass(trace::AlibabaProfile(), options));
  classes.push_back(MakeProfileClass(trace::GoogleProfile(), options));

  // Fleet mix skews easy: most tenants are seasonal Alibaba-like, a
  // minority are bursty Google-like (index = count per class).
  const size_t easy_tenants = options.quick ? 3 : 6;
  const size_t hard_tenants = options.quick ? 1 : 2;
  const size_t history_days = 2;
  const size_t eval_days = options.quick ? 2 : 4;
  const size_t eval_start = history_days * kStepsPerDay;
  const size_t num_steps = eval_days * kStepsPerDay;

  // Per-class tier baselines on the class's first tenant. The calibration
  // window (tenant history before eval_start) is what an operator has at
  // budgeting time; it derives the class accuracy SLO. The eval window is
  // reported for context only.
  const size_t eval_rounds = num_steps / kReplanEvery;
  const size_t calib_rounds =
      (eval_start - kSelHorizon - kContext) / kReplanEvery + 1;
  std::vector<ClassBaselines> baselines;
  TablePrinter tiers_table({"class", "tier", "model", "calib_wQL",
                            "calib_prefix", "eval_wQL", "eval_prefix"});
  for (size_t c = 0; c < classes.size(); ++c) {
    ProfileClass& cls = classes[c];
    const size_t first_tenant = c == 0 ? 0 : easy_tenants;
    trace::SyntheticTraceGenerator gen(
        cls.profile, options.seed + 7919 * (first_tenant + 1));
    const ts::TimeSeries series = gen.GenerateCpu(
        (history_days + eval_days) * kStepsPerDay + kSelHorizon);
    ClassBaselines b;
    b.name = cls.name;
    b.calib = MeasureTierBaselines(cls, series, kContext, calib_rounds,
                                   /*warmup_rounds=*/0);
    b.eval = MeasureTierBaselines(cls, series, eval_start, eval_rounds,
                                  2 * eval_rounds / 5);
    cls.wql_bound = DeriveWqlBound(b.calib);
    b.wql_bound = cls.wql_bound;
    for (size_t t = 0; t < b.calib.size(); ++t) {
      tiers_table.AddRow({cls.name, StrFormat("%zu", t), kTierNames[t],
                          Num(b.calib[t].wql, 5), Num(b.calib[t].prefix_wql, 5),
                          Num(b.eval[t].wql, 5), Num(b.eval[t].prefix_wql, 5)});
    }
    baselines.push_back(std::move(b));
  }
  tiers_table.Print("Tier baselines (calibration window derives the SLO)");
  for (const ClassBaselines& b : baselines) {
    std::printf("%s: derived selector wql_bound = %.5f\n", b.name.c_str(),
                b.wql_bound);
  }
  std::fflush(stdout);

  struct TenantSpec {
    const ProfileClass* cls = nullptr;
    size_t tenant = 0;
  };
  std::vector<TenantSpec> tenants;
  for (size_t t = 0; t < easy_tenants; ++t) {
    tenants.push_back({&classes[0], t});
  }
  for (size_t t = 0; t < hard_tenants; ++t) {
    tenants.push_back({&classes[1], easy_tenants + t});
  }

  // One cell per tenant; the four strategies run back-to-back inside a
  // cell so their wall-clock ratios see the same pool contention.
  std::vector<std::vector<CellResult>> per_tenant(tenants.size());
  RunScenarios(tenants.size(), [&](size_t i) {
    const TenantSpec& spec = tenants[i];
    trace::SyntheticTraceGenerator gen(
        spec.cls->profile, options.seed + 7919 * (spec.tenant + 1));
    const ts::TimeSeries series = gen.GenerateCpu(
        (history_days + eval_days) * kStepsPerDay + kSelHorizon);
    for (Strategy strategy : kStrategies) {
      per_tenant[i].push_back(RunCell(*spec.cls, spec.tenant, strategy,
                                      series, eval_start, num_steps));
    }
  });

  TablePrinter table({"class", "tenant", "strategy", "wQL", "hzn_wQL",
                      "us/round", "$cost", "slo_viol", "spike_viol", "tier",
                      "pattern", "switches", "prescale"});
  std::vector<CellResult> cells;
  std::vector<Aggregate> aggregates;
  for (Strategy strategy : kStrategies) {
    Aggregate agg;
    agg.strategy = strategy;
    aggregates.push_back(agg);
  }
  bool rollback_ok = true;
  for (const auto& tenant_cells : per_tenant) {
    for (const CellResult& c : tenant_cells) {
      table.AddRow(
          {c.cls, StrFormat("%zu", c.tenant), StrategyName(c.strategy),
           Num(c.wql, 5), Num(c.horizon_wql, 5), Num(c.us_per_round),
           Num(c.cost_units),
           Num(c.slo_violation_rate),
           StrFormat("%zu/%zu", c.spike_violations, c.spike_steps),
           StrFormat("%zu", c.final_tier), c.pattern,
           StrFormat("%llu", static_cast<unsigned long long>(c.switches)),
           StrFormat("%llu/%llu",
                     static_cast<unsigned long long>(c.prescale_rollbacks),
                     static_cast<unsigned long long>(
                         c.prescale_activations))});
      Aggregate& agg = aggregates[static_cast<size_t>(c.strategy)];
      agg.mean_wql += c.wql;
      agg.mean_us_per_round += c.us_per_round;
      agg.cost_units += c.cost_units;
      agg.spike_steps += c.spike_steps;
      agg.spike_violations += c.spike_violations;
      agg.mean_slo_violation_rate += c.slo_violation_rate;
      rollback_ok = rollback_ok && c.rollback_ok;
      cells.push_back(c);
    }
  }
  const double n = static_cast<double>(tenants.size());
  for (Aggregate& agg : aggregates) {
    agg.mean_wql /= n;
    agg.mean_us_per_round /= n;
    agg.mean_slo_violation_rate /= n;
  }

  const Aggregate& deepar =
      aggregates[static_cast<size_t>(Strategy::kAllDeepar)];
  const Aggregate& adaptive =
      aggregates[static_cast<size_t>(Strategy::kAdaptive)];
  const Aggregate& noprescale =
      aggregates[static_cast<size_t>(Strategy::kAdaptiveNoPrescale)];
  const double speedup =
      adaptive.mean_us_per_round > 0.0
          ? deepar.mean_us_per_round / adaptive.mean_us_per_round
          : 0.0;
  const bool wql_ok = adaptive.mean_wql <= 1.02 * deepar.mean_wql;
  const bool speedup_ok = speedup >= 3.0;
  const bool prescale_ok =
      adaptive.spike_violations <= noprescale.spike_violations;
  const bool bounds_ok = wql_ok && speedup_ok && prescale_ok && rollback_ok;

  table.Print("Adaptive selection: strategy x tenant-mix grid");
  if (options.csv) {
    table.PrintCsv();
  }
  std::printf(
      "\nfleet means: adaptive in-force wQL %.5f vs all-deepar %.5f "
      "(%.1f%%), "
      "us/round %.1f vs %.1f (%.1fx), $cost %.0f vs %.0f, spike "
      "violations %zu (prescale) vs %zu (noprescale)\n",
      adaptive.mean_wql, deepar.mean_wql,
      deepar.mean_wql > 0.0
          ? 100.0 * (adaptive.mean_wql - deepar.mean_wql) / deepar.mean_wql
          : 0.0,
      adaptive.mean_us_per_round, deepar.mean_us_per_round, speedup,
      adaptive.cost_units, deepar.cost_units, adaptive.spike_violations,
      noprescale.spike_violations);
  if (!wql_ok) {
    std::fprintf(stderr,
                 "BOUND VIOLATION: adaptive in-force wQL %.5f > 1.02 x "
                 "all-deepar %.5f\n",
                 adaptive.mean_wql, deepar.mean_wql);
  }
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "BOUND VIOLATION: planning speedup %.2fx < 3x\n", speedup);
  }
  if (!prescale_ok) {
    std::fprintf(stderr,
                 "BOUND VIOLATION: prescale spike violations %zu > "
                 "noprescale %zu\n",
                 adaptive.spike_violations, noprescale.spike_violations);
  }
  if (!rollback_ok) {
    std::fprintf(stderr, "BOUND VIOLATION: unbalanced floor rollbacks\n");
  }
  if (!json_path.empty()) {
    WriteJson(json_path, options, baselines, cells, aggregates, speedup,
              wql_ok, speedup_ok, prescale_ok, rollback_ok, bounds_ok);
  }
  WriteRunArtifacts(options);
  if (!bounds_ok) {
    std::fprintf(stderr, "adaptive_selection: bounds violated\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  std::string json_path;
  const rpas::bench::BenchOptions options = rpas::bench::ParseArgs(
      argc, argv,
      "Adaptive selection: per-tenant classifier + forecaster ladder + TRUE "
      "pre-scaling vs fixed all-seasonal / all-DeepAR strategies",
      {{"--json=", "write a machine-readable summary to PATH",
        [&json_path](const std::string& value) { json_path = value; }}});
  rpas::bench::EnableMetricsIfRequested(options);
  return rpas::bench::RunAdaptiveSelection(options, json_path);
}
