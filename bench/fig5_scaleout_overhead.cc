// Reproduces paper Fig. 5: "Scale-out Overhead — it only takes a few
// seconds to scale out, i.e., to build in-memory components from the
// checkpoints." The paper's data came from Alibaba Cloud production; we
// sweep the simulator's warm-up model over checkpoint sizes and report the
// warm-up distribution, plus the fraction of a 10-minute decision interval
// the warm-up consumes (the quantity that justifies ignoring scaling
// overhead in the optimization, §III-C).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "simdb/warmup.h"

namespace rpas::bench {
namespace {

void RunFig5(const BenchOptions& options) {
  simdb::WarmupModel model;
  model.base_latency_seconds = 1.2;
  model.replay_gbps = 2.0;
  model.jitter_fraction = 0.10;

  const int trials = options.quick ? 200 : 2000;
  TablePrinter table({"checkpoint_gb", "warmup_p50_s", "warmup_p95_s",
                      "warmup_max_s", "pct_of_10min_step"});
  Rng rng(options.seed);
  for (double gb : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    std::vector<double> samples;
    samples.reserve(trials);
    for (int i = 0; i < trials; ++i) {
      samples.push_back(model.WarmupSeconds(gb, &rng));
    }
    std::sort(samples.begin(), samples.end());
    const double p50 = samples[samples.size() / 2];
    const double p95 = samples[samples.size() * 95 / 100];
    const double mx = samples.back();
    table.AddRow({Num(gb), Num(p50, 3), Num(p95, 3), Num(mx, 3),
                  Num(100.0 * p50 / 600.0, 2)});
  }
  table.Print("Fig. 5: scale-out warm-up vs checkpoint size");
  if (options.csv) {
    table.PrintCsv();
  }
  std::printf(
      "\nObservation: warm-up stays in the seconds range — negligible\n"
      "against the 10-minute scaling interval, matching the paper's\n"
      "justification for omitting scaling overhead from the optimization.\n");
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::RunFig5(rpas::bench::ParseArgs(argc, argv, "Fig. 5: scale-out warm-up overhead in the cluster simulator"));
  return 0;
}
