// Quantized checkpoint serving: storage dtype x tenant-count grid.
//
// Each cell registers one model version per tenant (alternating MLP /
// DeepAR architectures) backed by checkpoints in one storage format —
// the fp64 text format, or rpasq.v1 at f64 / f32 / f16 / q8 — and
// reports, per warm tenant: resident cache bytes (split into mmap-backed
// and heap), cold-start milliseconds (registry Acquire of a cold
// version: parse-or-map + validate), and the wQL delta against the fp64
// text baseline on a held-out window set with fixed sampling seeds.
//
// Asserted invariants (exit 1 on violation):
//   - batched PredictBatch is bit-identical to unbatched PredictSeeded
//     within every dtype (the kernel dequant path preserves the serving
//     determinism contract);
//   - q8 AND q8-int8 (the opt-in true-int8 GEMM core) wQL deltas <= 0.5%
//     and f16 wQL delta <= 0.05% vs fp64;
//   - q8 warm-cache bytes/tenant is >= 4x smaller than the fp64 text
//     baseline.
//
// --json=PATH writes a machine-readable summary for the CI smoke step.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "nn/qcheckpoint.h"
#include "serve/registry.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"
#include "trace/generator.h"
#include "ts/metrics.h"

namespace rpas::bench {
namespace {

constexpr size_t kServeContext = 24;
constexpr size_t kServeHorizon = 12;
constexpr uint64_t kEvalSeedBase = 0x51CED;

forecast::MlpForecaster::Options ServeMlpOptions(const BenchOptions& options) {
  forecast::MlpForecaster::Options mlp;
  mlp.context_length = kServeContext;
  mlp.horizon = kServeHorizon;
  mlp.hidden_dim = 48;
  mlp.num_hidden_layers = 1;
  mlp.batch_size = 16;
  mlp.train.steps = options.quick ? 30 : 80;
  mlp.train.lr = 1e-3;
  return mlp;
}

forecast::DeepArForecaster::Options ServeDeepArOptions(
    const BenchOptions& options) {
  forecast::DeepArForecaster::Options deepar;
  deepar.context_length = kServeContext;
  deepar.horizon = kServeHorizon;
  deepar.hidden_dim = 20;
  deepar.batch_size = 8;
  deepar.num_samples = options.quick ? 12 : 16;
  deepar.train.steps = options.quick ? 30 : 80;
  deepar.train.lr = 1e-3;
  return deepar;
}

/// Evaluation windows carved from the trace tail (context + horizon each,
/// stride = horizon), shared by every dtype row.
struct EvalSet {
  std::vector<forecast::ForecastInput> inputs;
  std::vector<std::vector<double>> actuals;
  std::vector<uint64_t> seeds;
};

EvalSet BuildEvalSet(const ts::TimeSeries& series, size_t eval_steps) {
  EvalSet set;
  const size_t first = series.size() - eval_steps;
  for (size_t target = first; target + kServeHorizon <= series.size();
       target += kServeHorizon) {
    forecast::ForecastInput input;
    input.start_index = target - kServeContext;
    input.step_minutes = series.step_minutes;
    input.context.assign(
        series.values.begin() + static_cast<long>(target - kServeContext),
        series.values.begin() + static_cast<long>(target));
    set.inputs.push_back(std::move(input));
    set.actuals.emplace_back(
        series.values.begin() + static_cast<long>(target),
        series.values.begin() + static_cast<long>(target + kServeHorizon));
    set.seeds.push_back(kEvalSeedBase + set.seeds.size());
  }
  return set;
}

/// Mean wQL of `model` over the eval windows, served via the batched path.
/// Also asserts batched == unbatched bit-identity within this model.
double EvalWql(const forecast::Forecaster& model, const EvalSet& eval,
               bool* identical) {
  auto batched = model.PredictBatch(eval.inputs, eval.seeds);
  RPAS_CHECK(batched.ok()) << batched.status().ToString();
  for (size_t i = 0; i < eval.inputs.size(); ++i) {
    auto single = model.PredictSeeded(eval.inputs[i], eval.seeds[i]);
    RPAS_CHECK(single.ok()) << single.status().ToString();
    const ts::QuantileForecast& a = (*batched)[i];
    const ts::QuantileForecast& b = *single;
    for (size_t h = 0; h < a.Horizon(); ++h) {
      for (size_t q = 0; q < a.Levels().size(); ++q) {
        if (a.ValueAtIndex(h, q) != b.ValueAtIndex(h, q)) {
          *identical = false;
        }
      }
    }
  }
  const ts::AccuracyReport report =
      ts::EvaluateForecasts(*batched, eval.actuals, model.Levels());
  return report.mean_wql;
}

struct DtypeSpec {
  std::string label;    ///< row label ("text-f64", "q8", ...)
  bool text = false;    ///< serve the fp64 text checkpoint directly
  tensor::DType dtype = tensor::DType::kF64;  ///< rpasq storage dtype
  bool int8_gemm = false;  ///< serve q8 through the true-int8 GEMM core
};

struct RowResult {
  std::string label;
  size_t tenants = 0;
  double bytes_per_tenant = 0.0;
  size_t mapped_bytes = 0;
  size_t heap_bytes = 0;
  double cold_ms = 0.0;  ///< mean Acquire() ms for a cold version
  double wql = 0.0;
  double wql_delta_pct = 0.0;  ///< vs the text-f64 baseline
};

/// Registers `tenants` versions (alternating MLP/DeepAR) backed by
/// per-version checkpoint files in the row's format, acquires them all on
/// a cold registry, and measures byte/latency/accuracy columns.
RowResult RunRow(const BenchOptions& options, const DtypeSpec& spec,
                 size_t tenants, const std::string& mlp_text,
                 const std::string& deepar_text, const EvalSet& eval,
                 bool* identical) {
  // The q8-int8 row is the q8 row served through the opt-in true-int8
  // GEMM core (tensor/kernels.h): same checkpoints, same bytes, different
  // inner loop. Batched/unbatched bit-identity must hold within the int8
  // path too — each output row quantizes only its own activations.
  const tensor::kernels::ScopedGemmQuantInt8 int8_scope(spec.int8_gemm);
  // Per-version checkpoint files: per-tenant models, so cold-start cost
  // and cache bytes scale with the tenant count, not with two shared
  // files.
  std::vector<std::string> paths;
  std::vector<serve::ModelId> models;
  for (size_t v = 0; v < tenants; ++v) {
    const bool is_mlp = v % 2 == 0;
    const std::string& text_path = is_mlp ? mlp_text : deepar_text;
    std::string path = text_path;
    if (!spec.text) {
      path = StrFormat("/tmp/rpas_qserve_%s_%s_v%zu.rpasq",
                       spec.label.c_str(), is_mlp ? "mlp" : "deepar", v);
      RPAS_CHECK(
          nn::QuantizeCheckpointFile(text_path, path, spec.dtype).ok());
    }
    paths.push_back(std::move(path));
    models.push_back({is_mlp ? "mlp" : "deepar", v + 1});
  }

  auto make_registry = [&] {
    serve::ModelRegistry::Options reg_options;
    reg_options.cache_budget_bytes = static_cast<size_t>(-1) / 2;
    auto registry = std::make_unique<serve::ModelRegistry>(reg_options);
    for (size_t v = 0; v < tenants; ++v) {
      serve::ForecasterFactory factory;
      const BenchOptions bench = options;
      if (v % 2 == 0) {
        factory = [bench] {
          return std::make_unique<forecast::MlpForecaster>(
              ServeMlpOptions(bench));
        };
      } else {
        factory = [bench] {
          return std::make_unique<forecast::DeepArForecaster>(
              ServeDeepArOptions(bench));
        };
      }
      RPAS_CHECK(registry
                     ->RegisterVersion(models[v], paths[v],
                                       std::move(factory))
                     .ok());
    }
    return registry;
  };

  // Cold-start latency: every Acquire below parses (text) or maps +
  // validates (rpasq) a cold checkpoint. Keep the fastest of a few reps.
  constexpr int kTimingReps = 3;
  RowResult row;
  std::unique_ptr<serve::ModelRegistry> registry;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    registry = make_registry();
    const double millis = TimedMillis("quantized.cold_acquire", 1, [&] {
      for (const serve::ModelId& id : models) {
        auto model = registry->Acquire(id);
        RPAS_CHECK(model.ok()) << model.status().ToString();
      }
    });
    const double per_model = millis / static_cast<double>(tenants);
    row.cold_ms = rep == 0 ? per_model : std::min(row.cold_ms, per_model);
  }

  const serve::ModelRegistry::CacheStats stats = registry->GetCacheStats();
  RPAS_CHECK(stats.resident_models == tenants);
  row.label = spec.label;
  row.tenants = tenants;
  row.bytes_per_tenant = static_cast<double>(stats.resident_bytes) /
                         static_cast<double>(tenants);
  row.mapped_bytes = stats.mapped_bytes;
  row.heap_bytes = stats.heap_bytes;

  // Accuracy: one fitted model per architecture is enough (all versions of
  // an architecture share weights).
  auto mlp = registry->Acquire(models[0]);
  RPAS_CHECK(mlp.ok());
  row.wql = EvalWql(**mlp, eval, identical);
  if (tenants > 1) {
    auto deepar = registry->Acquire(models[1]);
    RPAS_CHECK(deepar.ok());
    row.wql = 0.5 * (row.wql + EvalWql(**deepar, eval, identical));
  }
  return row;
}

void WriteJson(const std::string& path, const std::vector<RowResult>& rows,
               bool identical, bool bounds_ok) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "quantized_serving: cannot write %s\n",
                 path.c_str());
    return;
  }
  out << "{\"bench\":\"quantized_serving\",\"rows\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const RowResult& r = rows[i];
    out << (i > 0 ? "," : "")
        << StrFormat("{\"dtype\":\"%s\",\"tenants\":%zu,"
                     "\"bytes_per_tenant\":%.1f,\"mapped_bytes\":%zu,"
                     "\"heap_bytes\":%zu,\"cold_ms\":%.4f,\"wql\":%.6f,"
                     "\"wql_delta_pct\":%.4f}",
                     r.label.c_str(), r.tenants, r.bytes_per_tenant,
                     r.mapped_bytes, r.heap_bytes, r.cold_ms, r.wql,
                     r.wql_delta_pct);
  }
  out << StrFormat("],\"batched_identical\":%s,\"bounds_ok\":%s}\n",
                   identical ? "true" : "false",
                   bounds_ok ? "true" : "false");
}

void RunQuantizedServing(const BenchOptions& options, size_t only_tenants,
                         const std::string& json_path) {
  std::vector<size_t> tenant_counts{8, 16};
  if (options.quick && only_tenants == 0) {
    tenant_counts = {8};
  }
  if (only_tenants > 0) {
    tenant_counts = {only_tenants};
  }

  // One trained model per architecture; the last 2 days are held out for
  // the wQL columns.
  trace::SyntheticTraceGenerator generator(trace::AlibabaProfile(),
                                           options.seed);
  const ts::TimeSeries series = generator.GenerateCpu(12 * kStepsPerDay);
  const size_t eval_steps = 2 * kStepsPerDay;
  ts::TimeSeries train = series;
  train.values.resize(series.size() - eval_steps);

  forecast::MlpForecaster mlp(ServeMlpOptions(options));
  RPAS_CHECK(mlp.Fit(train).ok());
  forecast::DeepArForecaster deepar(ServeDeepArOptions(options));
  RPAS_CHECK(deepar.Fit(train).ok());
  const std::string mlp_text = "/tmp/rpas_qserve_mlp.ckpt";
  const std::string deepar_text = "/tmp/rpas_qserve_deepar.ckpt";
  RPAS_CHECK(mlp.SaveCheckpoint(mlp_text).ok());
  RPAS_CHECK(deepar.SaveCheckpoint(deepar_text).ok());

  const EvalSet eval = BuildEvalSet(series, eval_steps);

  const std::vector<DtypeSpec> specs{
      {"text-f64", /*text=*/true, tensor::DType::kF64},
      {"f64", /*text=*/false, tensor::DType::kF64},
      {"f32", /*text=*/false, tensor::DType::kF32},
      {"f16", /*text=*/false, tensor::DType::kF16},
      {"q8", /*text=*/false, tensor::DType::kQ8},
      {"q8-int8", /*text=*/false, tensor::DType::kQ8, /*int8_gemm=*/true},
  };

  TablePrinter table({"dtype", "tenants", "bytes/tenant", "mapped_KiB",
                      "heap_KiB", "cold_ms", "wQL", "wQL_delta_%"});
  std::vector<RowResult> rows;
  bool identical = true;
  for (size_t tenants : tenant_counts) {
    double baseline_wql = 0.0;
    double baseline_bytes = 0.0;
    for (const DtypeSpec& spec : specs) {
      RowResult row = RunRow(options, spec, tenants, mlp_text, deepar_text,
                             eval, &identical);
      if (spec.text) {
        baseline_wql = row.wql;
        baseline_bytes = row.bytes_per_tenant;
      }
      row.wql_delta_pct =
          baseline_wql > 0.0
              ? 100.0 * std::fabs(row.wql - baseline_wql) / baseline_wql
              : 0.0;
      table.AddRow({row.label, StrFormat("%zu", row.tenants),
                    Num(row.bytes_per_tenant), Num(row.mapped_bytes / 1024.0),
                    Num(row.heap_bytes / 1024.0), Num(row.cold_ms),
                    Num(row.wql, 6), Num(row.wql_delta_pct)});
      rows.push_back(row);
    }
    // Context for the compression column: the q8 row must be >= 4x
    // smaller per tenant than the text baseline (acceptance bound).
    (void)baseline_bytes;
  }
  table.Print("Quantized checkpoint serving (per-tenant versions, warm "
              "cache fits all)");
  if (options.csv) {
    table.PrintCsv();
  }

  // Acceptance bounds (ISSUE 7): wQL deltas and the q8 compression ratio.
  bool bounds_ok = true;
  for (size_t base = 0; base < rows.size(); base += specs.size()) {
    const RowResult& text = rows[base];
    for (size_t i = 0; i < specs.size(); ++i) {
      const RowResult& row = rows[base + i];
      if (row.label == "q8" || row.label == "q8-int8") {
        // The int8 fast path inherits the q8 accuracy budget: symmetric
        // weight requantization + activation quantization must stay
        // within the same 0.5% end-to-end wQL envelope as storage
        // quantization itself (the bound tensor/kernels.h documents).
        if (row.wql_delta_pct > 0.5) {
          bounds_ok = false;
          std::fprintf(stderr,
                       "BOUND VIOLATION: %s wQL delta %.4f%% > 0.5%%\n",
                       row.label.c_str(), row.wql_delta_pct);
        }
        const double ratio = text.bytes_per_tenant / row.bytes_per_tenant;
        if (ratio < 4.0) {
          bounds_ok = false;
          std::fprintf(stderr,
                       "BOUND VIOLATION: q8 compression %.2fx < 4x vs text\n",
                       ratio);
        }
      }
      if (row.label == "f16" && row.wql_delta_pct > 0.05) {
        bounds_ok = false;
        std::fprintf(stderr, "BOUND VIOLATION: f16 wQL delta %.4f%% > 0.05%%\n",
                     row.wql_delta_pct);
      }
    }
  }
  std::printf("batched == unbatched within every dtype: %s\n",
              identical ? "identical" : "MISMATCH");
  std::printf("wQL / compression bounds: %s\n", bounds_ok ? "ok" : "VIOLATED");

  if (!json_path.empty()) {
    WriteJson(json_path, rows, identical, bounds_ok);
  }
  if (!identical || !bounds_ok) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  size_t only_tenants = 0;
  std::string json_path;
  const std::vector<rpas::bench::BenchFlagSpec> extra{
      {"--tenants=", "run only this tenant count (default grid 8,16)",
       [&](const std::string& v) {
         only_tenants = static_cast<size_t>(std::strtoull(v.c_str(),
                                                          nullptr, 10));
       }},
      {"--json=", "write a machine-readable summary to this path",
       [&](const std::string& v) { json_path = v; }},
  };
  const rpas::bench::BenchOptions options = rpas::bench::ParseArgs(
      argc, argv,
      "Quantized checkpoint serving: dtype x tenants grid "
      "(bytes/tenant, cold-start ms, wQL delta)",
      extra);
  rpas::bench::EnableMetricsIfRequested(options);
  rpas::bench::RunQuantizedServing(options, only_tenants, json_path);
  return 0;
}
