// Reproduces paper Table III: "Computation Overhead Breakdown" — the cost
// of one decision round split into its two components:
//   * workload forecasting: DeepAR (ancestral sampling over 100
//     trajectories) vs TFT (direct quantile heads);
//   * auto-scaling optimization: basic fixed-quantile vs adaptive
//     uncertainty-aware allocation (plus, as an ablation called out in
//     DESIGN.md, the same LP solved through the general two-phase simplex
//     instead of the separable closed form).
//
// Expected shape (paper): DeepAR forecasting is an order of magnitude more
// expensive than TFT; the optimization component is milliseconds and the
// basic/adaptive difference is negligible (computing U is cheap).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "core/strategies.h"
#include "core/uncertainty.h"
#include "solver/autoscaling.h"

namespace rpas::bench {
namespace {

struct Setup {
  Dataset dataset;
  core::ScalingConfig config;
  forecast::ForecastInput input;
  std::unique_ptr<forecast::Forecaster> deepar;
  std::unique_ptr<forecast::Forecaster> tft;
  ts::QuantileForecast forecast;  // a fixed forecast for the optimizers
};

Setup* g_setup = nullptr;

void BuildSetup(const BenchOptions& options) {
  auto* s = new Setup{MakeDataset(trace::AlibabaProfile(), options.seed),
                      {}, {}, nullptr, nullptr, {}};
  s->config = MakeScalingConfig(s->dataset);
  s->input.start_index = s->dataset.train.size() - kContext;
  s->input.step_minutes = s->dataset.full.step_minutes;
  s->input.context.assign(s->dataset.train.values.end() - kContext,
                          s->dataset.train.values.end());
  s->deepar = MakeDeepAr(kHorizon, ScalingLevels(), /*quick=*/true, 0);
  RPAS_CHECK(s->deepar->Fit(s->dataset.train).ok());
  s->tft = MakeTft(kHorizon, ScalingLevels(), /*quick=*/true, 0);
  RPAS_CHECK(s->tft->Fit(s->dataset.train).ok());
  auto fc = s->tft->Predict(s->input);
  RPAS_CHECK(fc.ok());
  s->forecast = *fc;
  g_setup = s;
}

// ---- Workload forecasting ----

void BM_DeepArForecast(benchmark::State& state) {
  for (auto _ : state) {
    auto fc = g_setup->deepar->Predict(g_setup->input);
    RPAS_CHECK(fc.ok());
    benchmark::DoNotOptimize(&fc);
  }
}
BENCHMARK(BM_DeepArForecast)->Name("Forecast/DeepAR(sampling)")
    ->Unit(benchmark::kMillisecond);

void BM_TftForecast(benchmark::State& state) {
  for (auto _ : state) {
    auto fc = g_setup->tft->Predict(g_setup->input);
    RPAS_CHECK(fc.ok());
    benchmark::DoNotOptimize(&fc);
  }
}
BENCHMARK(BM_TftForecast)->Name("Forecast/TFT(direct)")
    ->Unit(benchmark::kMillisecond);

// ---- Auto-scaling optimization ----

void BM_OptimizeBasic(benchmark::State& state) {
  core::RobustQuantileAllocator allocator(0.9);
  for (auto _ : state) {
    auto alloc = allocator.Allocate(g_setup->forecast, g_setup->config);
    RPAS_CHECK(alloc.ok());
    benchmark::DoNotOptimize(alloc.value().data());
  }
}
BENCHMARK(BM_OptimizeBasic)->Name("Optimize/Basic")
    ->Unit(benchmark::kMillisecond);

void BM_OptimizeAdaptive(benchmark::State& state) {
  core::AdaptiveQuantileAllocator allocator(0.6, 0.9, /*rho=*/1.0);
  for (auto _ : state) {
    auto alloc = allocator.Allocate(g_setup->forecast, g_setup->config);
    RPAS_CHECK(alloc.ok());
    benchmark::DoNotOptimize(alloc.value().data());
  }
}
BENCHMARK(BM_OptimizeAdaptive)->Name("Optimize/Adaptive")
    ->Unit(benchmark::kMillisecond);

void BM_OptimizeSimplex(benchmark::State& state) {
  // Ablation: the same robust program through the general simplex solver
  // (paper: "solved using standard linear programming solvers").
  solver::AutoScalingProblem problem;
  problem.workloads = g_setup->forecast.Trajectory(0.9);
  for (double& w : problem.workloads) {
    w = std::max(w, 0.0);
  }
  problem.thresholds = {g_setup->config.theta};
  problem.min_nodes = g_setup->config.min_nodes;
  for (auto _ : state) {
    auto solution = solver::SolveAutoScalingLp(problem);
    RPAS_CHECK(solution.ok());
    benchmark::DoNotOptimize(solution.value().data());
  }
}
BENCHMARK(BM_OptimizeSimplex)->Name("Optimize/Basic-Simplex(ablation)")
    ->Unit(benchmark::kMillisecond);

void BM_UncertaintyMetric(benchmark::State& state) {
  for (auto _ : state) {
    auto u = core::QuantileUncertaintyPerStep(g_setup->forecast);
    benchmark::DoNotOptimize(u.data());
  }
}
BENCHMARK(BM_UncertaintyMetric)->Name("Optimize/UncertaintyMetric")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::BenchOptions options = rpas::bench::ParseArgs(argc, argv, "Table III: per-stage latency breakdown (Google Benchmark)");
  rpas::bench::BuildSetup(options);
  ::benchmark::Initialize(&argc, argv);
  std::printf(
      "Table III: computation overhead breakdown — forecasting vs\n"
      "auto-scaling optimization (real_time column).\n");
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
