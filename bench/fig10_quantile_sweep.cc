// Reproduces paper Fig. 10: "Analysis across Different Quantile Levels" —
// under- and over-provisioning rates when scaling on forecasts at each
// quantile level tau in {0.5 ... 0.99}, for both quantile forecasters.
//
// Expected shape (paper): under-provisioning decreases monotonically in
// tau while over-provisioning increases — the sweep exposes the operating
// point where under-provisioning is mitigated without excessive
// over-provisioning.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "core/evaluator.h"
#include "core/strategies.h"

namespace rpas::bench {
namespace {

void RunFig10(const BenchOptions& options) {
  Dataset dataset = MakeDataset(trace::AlibabaProfile(), options.seed);
  const core::ScalingConfig config = MakeScalingConfig(dataset);
  const size_t eval_start = dataset.train.size();
  const size_t eval_steps = dataset.test.size();
  const std::vector<double> realized(
      dataset.full.values.begin() + static_cast<long>(eval_start),
      dataset.full.values.end());

  struct Entry {
    std::string name;
    std::unique_ptr<forecast::Forecaster> model;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"DeepAR", MakeDeepAr(kHorizon, ScalingLevels(), options.quick, 0)});
  entries.push_back(
      {"TFT", MakeTft(kHorizon, ScalingLevels(), options.quick, 0)});

  const std::vector<double> taus = {0.5,  0.55, 0.6,  0.65, 0.7, 0.75,
                                    0.8,  0.85, 0.9,  0.95, 0.99};
  for (Entry& entry : entries) {
    RPAS_CHECK(entry.model->Fit(dataset.train).ok());
    TablePrinter table({"tau", "under_provision_rate",
                        "over_provision_rate", "mean_nodes"});
    for (double tau : taus) {
      core::RobustQuantileAllocator allocator(tau);
      auto alloc = core::RunPredictiveStrategy(*entry.model, allocator,
                                               dataset.full, eval_start,
                                               eval_steps, config);
      RPAS_CHECK(alloc.ok()) << alloc.status().ToString();
      const auto report = core::EvaluateAllocation(realized, *alloc, config);
      table.AddRow({Num(tau, 3), Num(report.under_provision_rate, 3),
                    Num(report.over_provision_rate, 3),
                    Num(report.mean_allocated_nodes, 3)});
    }
    table.Print("Fig. 10 (" + entry.name + ", " + dataset.name +
                "): provisioning rates vs quantile level");
    if (options.csv) {
      table.PrintCsv();
    }
  }
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::RunFig10(rpas::bench::ParseArgs(argc, argv, "Fig. 10: provisioning trade-offs across the quantile grid"));
  return 0;
}
