// Parallel execution layer scaling check: times the blocked GEMM
// (512 x 512) and the rolling-origin backtest serial (RPAS_NUM_THREADS=1)
// vs parallel (4 threads), reports the speedup, and verifies the results
// are bit-identical — the determinism guarantee every later scaling PR
// relies on. On a >= 4-core machine the parallel column should be >= 2x
// faster; on fewer cores the speedup degrades toward 1x but the
// bit-identical column must stay "yes" everywhere.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "forecast/backtest.h"
#include "forecast/mlp.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "trace/generator.h"

namespace rpas::bench {
namespace {

constexpr int kParallelThreads = 4;

tensor::Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  tensor::Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m[i] = rng->Normal();
  }
  return m;
}

bool BitIdentical(const tensor::Matrix& a, const tensor::Matrix& b) {
  if (!a.SameShape(b)) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

void RunParallelScaling(const BenchOptions& options) {
  std::printf("hardware threads available: %d (RPAS_NUM_THREADS default)\n",
              RpasThreads());

  TablePrinter table({"workload", "serial_ms", "parallel_ms@4", "speedup",
                      "bit_identical"});

  // --- GEMM 512 x 512 -----------------------------------------------------
  {
    Rng rng(options.seed);
    const size_t n = 512;
    const tensor::Matrix a = RandomMatrix(n, n, &rng);
    const tensor::Matrix b = RandomMatrix(n, n, &rng);
    const int reps = options.quick ? 3 : 10;

    SetRpasThreads(1);
    tensor::Matrix serial = MatMul(a, b);  // warm-up + reference
    const double serial_ms =
        TimedMillis("bench.gemm.serial", reps, [&] { serial = MatMul(a, b); });

    SetRpasThreads(kParallelThreads);
    tensor::Matrix parallel = MatMul(a, b);  // warm-up (spawns the pool)
    const double parallel_ms = TimedMillis(
        "bench.gemm.parallel", reps, [&] { parallel = MatMul(a, b); });
    SetRpasThreads(0);

    table.AddRow({"gemm 512x512", Num(serial_ms), Num(parallel_ms),
                  Num(serial_ms / parallel_ms, 3),
                  BitIdentical(serial, parallel) ? "yes" : "NO"});
  }

  // --- Rolling-origin backtest -------------------------------------------
  {
    trace::SyntheticTraceGenerator gen(trace::AlibabaProfile(),
                                       options.seed);
    const ts::TimeSeries series = gen.GenerateCpu(12 * kStepsPerDay);

    forecast::BacktestOptions bt;
    bt.folds = 4;
    bt.fold_steps = kStepsPerDay;
    bt.base_seed = options.seed;
    const forecast::SeededForecasterFactory factory =
        [&](size_t, uint64_t seed) {
          forecast::MlpForecaster::Options mlp;
          mlp.context_length = 36;
          mlp.horizon = 12;
          mlp.hidden_dim = 16;
          mlp.num_hidden_layers = 1;
          mlp.batch_size = 16;
          mlp.train.steps = options.quick ? 40 : 120;
          mlp.train.lr = 1e-3;
          mlp.use_time_features = false;
          mlp.seed = seed;
          return std::make_unique<forecast::MlpForecaster>(mlp);
        };

    SetRpasThreads(1);
    bt.parallel = false;
    Result<forecast::BacktestResult> serial = Status::Internal("unset");
    const double serial_ms =
        TimedMillis("bench.backtest.serial", 1,
                    [&] { serial = forecast::Backtest(factory, series, bt); });
    RPAS_CHECK(serial.ok()) << serial.status().ToString();

    SetRpasThreads(kParallelThreads);
    bt.parallel = true;
    Result<forecast::BacktestResult> parallel = Status::Internal("unset");
    const double parallel_ms = TimedMillis(
        "bench.backtest.parallel", 1,
        [&] { parallel = forecast::Backtest(factory, series, bt); });
    SetRpasThreads(0);
    RPAS_CHECK(parallel.ok()) << parallel.status().ToString();

    const bool identical =
        serial->mean_wql.mean == parallel->mean_wql.mean &&
        serial->mean_wql.stddev == parallel->mean_wql.stddev &&
        serial->mse.mean == parallel->mse.mean &&
        serial->mae.mean == parallel->mae.mean;
    table.AddRow({"backtest 4 folds", Num(serial_ms), Num(parallel_ms),
                  Num(serial_ms / parallel_ms, 3),
                  identical ? "yes" : "NO"});
  }

  table.Print("Parallel execution layer: serial vs 4-thread timings");
  if (options.csv) {
    table.PrintCsv();
  }
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::RunParallelScaling(rpas::bench::ParseArgs(argc, argv, "Thread-pool scaling of training and planning kernels"));
  return 0;
}
