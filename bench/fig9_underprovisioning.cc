// Reproduces paper Fig. 9: "Under-Provisioning Rate Evaluation" — the
// under-provisioning rate (and, for context, over-provisioning rate) of
// every compared scaler on both traces:
//   reactive:   Reactive-Max, Reactive-Avg (window 6, half-life 6)
//   point:      QB5000, TFT-point, and their padding-enhanced variants
//   robust:     DeepAR-tau and TFT-tau for tau in {0.6, 0.8, 0.9}
//
// Expected shape (paper): predictive beats reactive; quantile-robust beats
// point forecasts (even DeepAR quantiles beat TFT point forecasts); padding
// helps point forecasting but stays behind the robust strategies; higher
// tau monotonically lowers the under-provisioning rate.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "core/evaluator.h"
#include "core/strategies.h"

namespace rpas::bench {
namespace {

void RunFig9(const BenchOptions& options) {
  for (const Dataset& dataset : MakeBothDatasets(options.seed)) {
    const core::ScalingConfig config = MakeScalingConfig(dataset);
    const size_t eval_start = dataset.train.size();
    const size_t eval_steps = dataset.test.size();
    const std::vector<double> realized(
        dataset.full.values.begin() + static_cast<long>(eval_start),
        dataset.full.values.end());

    TablePrinter table(
        {"Strategy", "under_provision_rate", "over_provision_rate",
         "mean_nodes"});
    auto add = [&](const std::string& name,
                   const Result<std::vector<int>>& alloc) {
      RPAS_CHECK(alloc.ok()) << name << ": " << alloc.status().ToString();
      const auto report =
          core::EvaluateAllocation(realized, alloc.value(), config);
      table.AddRow({name, Num(report.under_provision_rate, 3),
                    Num(report.over_provision_rate, 3),
                    Num(report.mean_allocated_nodes, 3)});
      std::printf("[fig9] %s / %s done\n", dataset.name.c_str(),
                  name.c_str());
      std::fflush(stdout);
    };

    // --- Reactive scalers ---
    core::ReactiveMaxStrategy reactive_max(6);
    core::ReactiveAvgStrategy reactive_avg(6, 6.0);
    add("Reactive-Max",
        core::RunReactiveStrategy(reactive_max, dataset.full, eval_start,
                                  eval_steps, config));
    add("Reactive-Avg",
        core::RunReactiveStrategy(reactive_avg, dataset.full, eval_start,
                                  eval_steps, config));

    // --- Point-forecast scalers (QB5000 hybrid, TFT-point) + padding ---
    auto qb5000 = MakeQb5000(kHorizon, options.quick, 0);
    RPAS_CHECK(qb5000->Fit(dataset.train).ok());
    core::PointForecastAllocator point;
    add("QB5000",
        core::RunPredictiveStrategy(*qb5000, point, dataset.full, eval_start,
                                    eval_steps, config));
    {
      core::PaddingEnhancement padding(
          core::PaddingEnhancement::Options{.error_window = 72,
                                            .quantile = 0.9});
      add("QB5000-padding",
          core::RunPaddedPointStrategy(*qb5000, &padding, dataset.full,
                                       eval_start, eval_steps, config));
    }

    auto tft_point = MakeTft(kHorizon, {0.5}, options.quick, 0, "TFT-point");
    RPAS_CHECK(tft_point->Fit(dataset.train).ok());
    add("TFT-point",
        core::RunPredictiveStrategy(*tft_point, point, dataset.full,
                                    eval_start, eval_steps, config));
    {
      core::PaddingEnhancement padding(
          core::PaddingEnhancement::Options{.error_window = 72,
                                            .quantile = 0.9});
      add("TFT-point-padding",
          core::RunPaddedPointStrategy(*tft_point, &padding, dataset.full,
                                       eval_start, eval_steps, config));
    }

    // --- Robust quantile scalers ---
    auto deepar = MakeDeepAr(kHorizon, ScalingLevels(), options.quick, 0);
    RPAS_CHECK(deepar->Fit(dataset.train).ok());
    auto tft = MakeTft(kHorizon, ScalingLevels(), options.quick, 0);
    RPAS_CHECK(tft->Fit(dataset.train).ok());
    for (double tau : {0.6, 0.8, 0.9}) {
      core::RobustQuantileAllocator robust(tau);
      add("DeepAR-" + Num(tau, 2),
          core::RunPredictiveStrategy(*deepar, robust, dataset.full,
                                      eval_start, eval_steps, config));
      add("TFT-" + Num(tau, 2),
          core::RunPredictiveStrategy(*tft, robust, dataset.full, eval_start,
                                      eval_steps, config));
    }

    table.Print("Fig. 9 (" + dataset.name +
                "): under-/over-provisioning per strategy");
    if (options.csv) {
      table.PrintCsv();
    }
  }
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::RunFig9(rpas::bench::ParseArgs(argc, argv, "Fig. 9: under-provisioning rate vs allocation strategy"));
  return 0;
}
