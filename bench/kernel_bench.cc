// Kernel-layer microbenchmarks: GEMM, vector primitives, elementwise
// transcendentals, the fused LSTM cell step, and a DeepAR-shaped training
// step, each swept across every SIMD dispatch level this machine supports.
//
// Besides the human-readable table, the run is written as JSON (default
// BENCH_kernels.json, override with --json-out=PATH) with one record per
// (op, shape, dispatch level): {op, shape, dispatch, ns_per_iter, gflops}.
// CI uploads the file as an artifact so kernel regressions are visible per
// commit. GFLOP/s uses nominal flop counts (2mnk for GEMM, n-ish for the
// transcendentals); 0 marks ops where a flop rate is not meaningful.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "nn/layers.h"
#include "nn/losses.h"
#include "nn/trainer.h"
#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace rpas::bench {
namespace {

namespace kernels = ::rpas::tensor::kernels;
using kernels::SimdLevel;
using tensor::Matrix;

struct Record {
  std::string op;
  std::string shape;
  std::string dispatch;
  double ns_per_iter;
  double gflops;  // 0 when a flop rate is not meaningful for the op
};

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  for (SimdLevel l : {SimdLevel::kSse2, SimdLevel::kAvx2}) {
    if (kernels::LevelSupported(l)) {
      levels.push_back(l);
    }
  }
  return levels;
}

/// Mean ns per invocation of `fn`, with automatic rep calibration: repeats
/// until the timed block is long enough for the Stopwatch resolution to be
/// noise (quick mode accepts a shorter block).
double NsPerIter(bool quick, const std::function<void()>& fn) {
  fn();  // warmup (first-touch, lazy allocations)
  const double target_ms = quick ? 15.0 : 80.0;
  long reps = 1;
  for (;;) {
    Stopwatch w;
    for (long i = 0; i < reps; ++i) {
      fn();
    }
    const double ms = w.ElapsedMillis();
    if (ms >= target_ms || reps >= (1l << 24)) {
      return ms * 1e6 / static_cast<double>(reps);
    }
    reps = ms < target_ms / 16.0
               ? reps * 16
               : static_cast<long>(static_cast<double>(reps) *
                                   (1.2 * target_ms / ms)) +
                     1;
  }
}

void FillUniform(Matrix* m, Rng* rng) {
  for (size_t i = 0; i < m->size(); ++i) {
    (*m)[i] = rng->Uniform() - 0.5;
  }
}

// --------------------------------------------------------------- GEMM ---

void BenchGemm(bool quick, std::vector<Record>* out) {
  struct Shape {
    size_t m, k, n;
  };
  const std::vector<Shape> shapes = quick
                                        ? std::vector<Shape>{{64, 64, 64},
                                                             {8, 32, 128}}
                                        : std::vector<Shape>{{64, 64, 64},
                                                             {128, 128, 128},
                                                             {256, 256, 256},
                                                             {8, 32, 128}};
  Rng rng(1);
  for (const Shape& s : shapes) {
    Matrix a(s.m, s.k), b(s.k, s.n), c(s.m, s.n);
    FillUniform(&a, &rng);
    FillUniform(&b, &rng);
    const double flops = 2.0 * static_cast<double>(s.m) *
                         static_cast<double>(s.k) * static_cast<double>(s.n);
    for (SimdLevel level : SupportedLevels()) {
      kernels::ScopedSimdLevel scoped(level);
      const double ns = NsPerIter(quick, [&] {
        c.Fill(0.0);
        tensor::MatMulInto(a, b, &c);
      });
      out->push_back({"gemm",
                      StrFormat("%zux%zux%zu", s.m, s.k, s.n),
                      kernels::LevelName(level), ns, flops / ns});
    }
  }
  // Transposed variants at the autodiff-backward shape (dW = x^T g).
  Matrix x(128, 64), g(128, 96), dw(64, 96);
  FillUniform(&x, &rng);
  FillUniform(&g, &rng);
  const double flops_tn = 2.0 * 64 * 128 * 96;
  for (SimdLevel level : SupportedLevels()) {
    kernels::ScopedSimdLevel scoped(level);
    const double ns = NsPerIter(quick, [&] {
      dw.Fill(0.0);
      tensor::MatMulTNInto(x, g, &dw);
    });
    out->push_back({"gemm_tn", "64x128x96", kernels::LevelName(level), ns,
                    flops_tn / ns});
  }
}

// -------------------------------------------- vector + elementwise ops ---

void BenchVectorOps(bool quick, std::vector<Record>* out) {
  const size_t n = 65536;
  std::vector<double> xs(n), ys(n), dst(n);
  Rng rng(2);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.Uniform(-3.0, 3.0);
    ys[i] = rng.Uniform(-3.0, 3.0);
  }
  const std::string shape = StrFormat("n=%zu", n);
  double sink = 0.0;
  for (SimdLevel level : SupportedLevels()) {
    const char* name = kernels::LevelName(level);
    out->push_back({"axpy", shape, name, NsPerIter(quick, [&] {
                      kernels::Axpy(level, n, 1e-9, xs.data(), ys.data());
                    }),
                    0.0});
    out->back().gflops = 2.0 * static_cast<double>(n) / out->back().ns_per_iter;
    out->push_back({"dot", shape, name, NsPerIter(quick, [&] {
                      sink += kernels::Dot(level, n, xs.data(), ys.data());
                    }),
                    0.0});
    out->back().gflops = 2.0 * static_cast<double>(n) / out->back().ns_per_iter;
    out->push_back({"ew_tanh", shape, name, NsPerIter(quick, [&] {
                      kernels::EwTanh(level, n, xs.data(), dst.data());
                    }),
                    0.0});
    out->back().gflops = static_cast<double>(n) / out->back().ns_per_iter;
    out->push_back({"ew_sigmoid", shape, name, NsPerIter(quick, [&] {
                      kernels::EwSigmoid(level, n, xs.data(), dst.data());
                    }),
                    0.0});
    out->back().gflops = static_cast<double>(n) / out->back().ns_per_iter;
  }
  RPAS_CHECK(sink == sink);  // keep the reductions observable
}

// ---------------------------------------------------- fused LSTM cell ---

void BenchLstmCell(bool quick, std::vector<Record>* out) {
  const size_t batch = 8, hidden = 32;
  Matrix gates(batch, 4 * hidden), act(batch, 4 * hidden);
  Matrix cp(batch, hidden), h(batch, hidden), c(batch, hidden);
  Matrix tc(batch, hidden), dh(batch, hidden), dc(batch, hidden);
  Matrix dgates(batch, 4 * hidden), dcp(batch, hidden);
  Rng rng(3);
  FillUniform(&gates, &rng);
  FillUniform(&cp, &rng);
  FillUniform(&dh, &rng);
  FillUniform(&dc, &rng);
  const std::string shape = StrFormat("b=%zu h=%zu", batch, hidden);
  // Nominal per-element flop counts: forward ~= 4 activations + 4 mul/add,
  // backward ~= 23 mul/add/sub.
  const double fwd_flops = 8.0 * static_cast<double>(batch * hidden);
  const double bwd_flops = 23.0 * static_cast<double>(batch * hidden);
  for (SimdLevel level : SupportedLevels()) {
    const char* name = kernels::LevelName(level);
    out->push_back({"lstm_cell_fwd", shape, name, NsPerIter(quick, [&] {
                      act = gates;
                      kernels::LstmCellForward(level, batch, hidden,
                                               act.data(), cp.data(), hidden,
                                               h.data(), hidden, c.data(),
                                               hidden, tc.data());
                    }),
                    0.0});
    out->back().gflops = fwd_flops / out->back().ns_per_iter;
    out->push_back({"lstm_cell_bwd", shape, name, NsPerIter(quick, [&] {
                      kernels::LstmCellBackward(
                          level, batch, hidden, act.data(), cp.data(), hidden,
                          tc.data(), dh.data(), hidden, dc.data(), hidden,
                          dgates.data(), dcp.data());
                    }),
                    0.0});
    out->back().gflops = bwd_flops / out->back().ns_per_iter;
  }
}

// ------------------------------------------------- DeepAR train step ---

/// One optimizer step of a DeepAR-shaped model: LSTM(14->32), mu/sigma
/// heads, 143 unroll steps, batch 8, Student-t NLL — the end-to-end number
/// the kernel layer exists to improve.
void BenchTrainStep(bool quick, std::vector<Record>* out) {
  for (SimdLevel level : SupportedLevels()) {
    kernels::ScopedSimdLevel scoped(level);
    Rng init(7);
    nn::LstmCell lstm(14, 32, &init);
    nn::Dense mu_head(32, 1, nn::Dense::Activation::kNone, &init);
    nn::Dense sigma_head(32, 1, nn::Dense::Activation::kNone, &init);
    std::vector<autodiff::Parameter*> params;
    for (auto* p : lstm.Params()) params.push_back(p);
    for (auto* p : mu_head.Params()) params.push_back(p);
    for (auto* p : sigma_head.Params()) params.push_back(p);
    auto loss_fn = [&](autodiff::Tape* tape, Rng* r) -> autodiff::Var {
      const size_t batch = 8, total = 144;
      nn::LstmCell::State state = lstm.ZeroState(tape, batch);
      autodiff::Var total_nll;
      for (size_t t = 1; t < total; ++t) {
        autodiff::Var xv = tape->Input(batch, 14);
        autodiff::Var yv = tape->Input(batch, 1);
        Matrix& x = *tape->MutableValue(xv);
        Matrix& y = *tape->MutableValue(yv);
        for (size_t i = 0; i < x.size(); ++i) x[i] = r->Uniform() - 0.5;
        for (size_t i = 0; i < y.size(); ++i) y[i] = r->Uniform();
        state = lstm.Step(tape, xv, state);
        autodiff::Var m = mu_head.Forward(tape, state.h);
        autodiff::Var s = tape->AddScalar(
            tape->Softplus(sigma_head.Forward(tape, state.h)), 1e-3);
        autodiff::Var nll = nn::StudentTNllLoss(tape, m, s, yv, 3.0);
        total_nll = t == 1 ? nll : tape->Add(total_nll, nll);
      }
      return tape->Scale(total_nll, 1.0 / 143.0);
    };
    nn::TrainConfig config;
    config.steps = quick ? 1 : 3;
    nn::TrainLoop(config, params, loss_fn);  // warmup
    const int steps = quick ? 5 : 20;
    config.steps = steps;
    Stopwatch w;
    const nn::TrainSummary summary = nn::TrainLoop(config, params, loss_fn);
    const double ns = w.ElapsedMillis() * 1e6 / steps;
    RPAS_CHECK(summary.arena_allocs_after_warmup == summary.arena_allocs_final)
        << "train step is expected to be allocation-free in steady state";
    out->push_back({"deepar_train_step", "lstm14->32 b=8 u=143",
                    kernels::LevelName(level), ns, 0.0});
  }
}

// ----------------------------------------------------------- reporting ---

void WriteJson(const std::string& path, const std::vector<Record>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "kernel_bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"active_level\": \"%s\",\n  \"results\": [\n",
               kernels::LevelName(kernels::ActiveLevel()));
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"shape\": \"%s\", \"dispatch\": "
                 "\"%s\", \"ns_per_iter\": %.1f, \"gflops\": %.3f}%s\n",
                 r.op.c_str(), r.shape.c_str(), r.dispatch.c_str(),
                 r.ns_per_iter, r.gflops, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu records)\n", path.c_str(), records.size());
}

int Run(const BenchOptions& options, const std::string& json_out) {
  std::vector<Record> records;
  BenchGemm(options.quick, &records);
  BenchVectorOps(options.quick, &records);
  BenchLstmCell(options.quick, &records);
  BenchTrainStep(options.quick, &records);

  TablePrinter table({"op", "shape", "dispatch", "ns/iter", "GFLOP/s"});
  for (const Record& r : records) {
    table.AddRow({r.op, r.shape, r.dispatch, Num(r.ns_per_iter),
                  r.gflops > 0.0 ? Num(r.gflops) : "-"});
  }
  table.Print(StrFormat("Kernel-layer microbenchmarks (active level: %s)",
                        kernels::LevelName(kernels::ActiveLevel())));
  if (options.csv) {
    table.PrintCsv();
  }
  WriteJson(json_out, records);
  return 0;
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  std::string json_out = "BENCH_kernels.json";
  std::vector<rpas::bench::BenchFlagSpec> extra = {
      {"--json-out=", "output path for the JSON report",
       [&json_out](const std::string& value) { json_out = value; }},
  };
  rpas::bench::BenchOptions options = rpas::bench::ParseArgs(
      argc, argv,
      "Kernel-layer microbenchmarks across SIMD dispatch levels", extra);
  return rpas::bench::Run(options, json_out);
}
