// Reproduces paper Table II: "Computation Overhead Comparison" — the
// end-to-end execution time of one auto-scaling decision round (workload
// forecasting + scaling optimization for a 72-step horizon) per method:
// Reactive-Max, Reactive-Avg, Hybrid (QB5000), DeepAR, TFT.
//
// Expected shape (paper): every method is far below the 10-minute decision
// interval; DeepAR is the most expensive (hundreds of ms — ancestral
// sampling of 100 trajectories), TFT tens of ms (direct quantile heads),
// the hybrid in between, reactive scalers the cheapest.
//
// Implemented with google-benchmark; the reported real_time per iteration
// is the Table II row. Training uses the --quick budget by default here:
// trained-weight values do not affect inference cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "core/evaluator.h"
#include "core/strategies.h"
#include "obs/metrics.h"

namespace rpas::bench {
namespace {

struct Setup {
  Dataset dataset;
  core::ScalingConfig config;
  std::vector<double> recent;          // trailing window for reactive
  forecast::ForecastInput input;       // context for predictive methods
  std::unique_ptr<forecast::Forecaster> qb5000;
  std::unique_ptr<forecast::Forecaster> deepar;
  std::unique_ptr<forecast::Forecaster> tft;
};

Setup* g_setup = nullptr;

void BuildSetup(const BenchOptions& options) {
  auto* s = new Setup{MakeDataset(trace::AlibabaProfile(), options.seed),
                      {},
                      {},
                      {},
                      nullptr,
                      nullptr,
                      nullptr};
  s->config = MakeScalingConfig(s->dataset);
  s->recent.assign(s->dataset.train.values.end() - 6,
                   s->dataset.train.values.end());
  s->input.start_index = s->dataset.train.size() - kContext;
  s->input.step_minutes = s->dataset.full.step_minutes;
  s->input.context.assign(s->dataset.train.values.end() - kContext,
                          s->dataset.train.values.end());
  s->qb5000 = MakeQb5000(kHorizon, /*quick=*/true, 0);
  RPAS_CHECK(s->qb5000->Fit(s->dataset.train).ok());
  s->deepar = MakeDeepAr(kHorizon, ScalingLevels(), /*quick=*/true, 0);
  RPAS_CHECK(s->deepar->Fit(s->dataset.train).ok());
  s->tft = MakeTft(kHorizon, ScalingLevels(), /*quick=*/true, 0);
  RPAS_CHECK(s->tft->Fit(s->dataset.train).ok());
  g_setup = s;
}

void BM_ReactiveMax(benchmark::State& state) {
  core::ReactiveMaxStrategy strategy(6);
  for (auto _ : state) {
    // One decision per horizon step (reactive methods re-decide each step).
    int total = 0;
    for (size_t i = 0; i < kHorizon; ++i) {
      total += strategy.Decide(g_setup->recent, g_setup->config);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ReactiveMax)->Name("Reactive-Max")->Unit(benchmark::kMillisecond);

void BM_ReactiveAvg(benchmark::State& state) {
  core::ReactiveAvgStrategy strategy(6, 6.0);
  for (auto _ : state) {
    int total = 0;
    for (size_t i = 0; i < kHorizon; ++i) {
      total += strategy.Decide(g_setup->recent, g_setup->config);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ReactiveAvg)->Name("Reactive-Average")
    ->Unit(benchmark::kMillisecond);

void PredictiveRound(const forecast::Forecaster& model,
                     const core::QuantileAllocator& allocator,
                     benchmark::State& state) {
  for (auto _ : state) {
    auto fc = model.Predict(g_setup->input);
    RPAS_CHECK(fc.ok());
    auto alloc = allocator.Allocate(*fc, g_setup->config);
    RPAS_CHECK(alloc.ok());
    benchmark::DoNotOptimize(alloc.value().data());
  }
}

void BM_Qb5000(benchmark::State& state) {
  core::PointForecastAllocator allocator;
  PredictiveRound(*g_setup->qb5000, allocator, state);
}
BENCHMARK(BM_Qb5000)->Name("Hybrid(QB5000)")->Unit(benchmark::kMillisecond);

void BM_DeepAr(benchmark::State& state) {
  core::RobustQuantileAllocator allocator(0.9);
  PredictiveRound(*g_setup->deepar, allocator, state);
}
BENCHMARK(BM_DeepAr)->Name("DeepAR")->Unit(benchmark::kMillisecond);

void BM_Tft(benchmark::State& state) {
  core::RobustQuantileAllocator allocator(0.9);
  PredictiveRound(*g_setup->tft, allocator, state);
}
BENCHMARK(BM_Tft)->Name("TFT")->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::BenchOptions options = rpas::bench::ParseArgs(argc, argv, "Table II: planning-path overhead microbenchmarks (Google Benchmark)");
  rpas::bench::EnableMetricsIfRequested(options);
  rpas::bench::BuildSetup(options);
  ::benchmark::Initialize(&argc, argv);
  std::printf(
      "Table II: end-to-end execution time of one auto-scaling decision\n"
      "round per method (real_time column).\n");
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  rpas::obs::RecordPoolStats();
  rpas::bench::WriteRunArtifacts(options);
  return 0;
}
