// Reproduces paper Fig. 7: "Prediction Results" — one sampled 72-step
// forecasting horizon for MLP, DeepAR and TFT, printing the mean forecast,
// the 80% interval (0.1–0.9 quantiles) and the 30%/60% inner intervals
// together with the realized workload, plus the interval-quality summary
// (empirical coverage and mean width) that the figure conveys visually:
// DeepAR and TFT keep good coverage with much narrower intervals than MLP.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "forecast/forecaster.h"

namespace rpas::bench {
namespace {

struct IntervalSummary {
  double coverage80 = 0.0;
  double mean_width80 = 0.0;
};

IntervalSummary Summarize(const ts::QuantileForecast& fc,
                          const std::vector<double>& actual) {
  IntervalSummary s;
  size_t covered = 0;
  double width = 0.0;
  for (size_t h = 0; h < fc.Horizon(); ++h) {
    const double lo = fc.Value(h, 0.1);
    const double hi = fc.Value(h, 0.9);
    if (actual[h] >= lo && actual[h] <= hi) {
      ++covered;
    }
    width += hi - lo;
  }
  s.coverage80 =
      static_cast<double>(covered) / static_cast<double>(fc.Horizon());
  s.mean_width80 = width / static_cast<double>(fc.Horizon());
  return s;
}

void RunFig7(const BenchOptions& options) {
  Dataset dataset = MakeDataset(trace::AlibabaProfile(), options.seed);

  struct Entry {
    std::string name;
    std::unique_ptr<forecast::Forecaster> model;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"MLP", MakeMlp(kHorizon, AccuracyLevels(), options.quick, 0)});
  entries.push_back(
      {"DeepAR", MakeDeepAr(kHorizon, AccuracyLevels(), options.quick, 0)});
  entries.push_back(
      {"TFT", MakeTft(kHorizon, AccuracyLevels(), options.quick, 0)});

  // One sampled horizon: the first test window.
  forecast::ForecastInput input;
  input.start_index = dataset.train.size() - kContext;
  input.step_minutes = dataset.full.step_minutes;
  input.context.assign(dataset.train.values.end() - kContext,
                       dataset.train.values.end());
  std::vector<double> actual(dataset.test.values.begin(),
                             dataset.test.values.begin() + kHorizon);

  TablePrinter summary({"Model", "coverage80", "mean_width80"});
  for (Entry& entry : entries) {
    RPAS_CHECK(entry.model->Fit(dataset.train).ok());
    auto fc = entry.model->Predict(input);
    RPAS_CHECK(fc.ok()) << fc.status().ToString();

    TablePrinter series({"step", "actual", "mean", "q0.1", "q0.35", "q0.65",
                         "q0.9"});
    for (size_t h = 0; h < kHorizon; h += options.quick ? 12 : 6) {
      series.AddRow({Num(static_cast<double>(h), 3), Num(actual[h]),
                     Num(fc->Value(h, 0.5)), Num(fc->Value(h, 0.1)),
                     Num(fc->Value(h, 0.35)), Num(fc->Value(h, 0.65)),
                     Num(fc->Value(h, 0.9))});
    }
    series.Print("Fig. 7 (" + entry.name +
                 "): sampled 72-step horizon with prediction intervals");
    if (options.csv) {
      series.PrintCsv();
    }
    const IntervalSummary s = Summarize(*fc, actual);
    summary.AddRow({entry.name, Num(s.coverage80, 3), Num(s.mean_width80)});
  }
  summary.Print("Fig. 7 summary: 80% interval coverage and width");
  std::printf(
      "\nExpected shape (paper): DeepAR and TFT maintain high coverage\n"
      "within much narrower intervals than MLP.\n");
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::RunFig7(rpas::bench::ParseArgs(argc, argv, "Fig. 7: prediction-interval visualization data"));
  return 0;
}
