// Ablation bench (DESIGN.md §5/§6) — two design choices the paper argues
// for but does not isolate:
//
//   1. DeepAR observation head: Student-t vs Gaussian. The paper picks
//      Student-t "because it has longer tails ..., allowing it to better
//      handle outliers and noise" (§III-B). We compare both heads on the
//      bursty Google-like trace.
//   2. Quantile recalibration (library extension): wrapping DeepAR so its
//      nominal quantile levels match empirical coverage, and the effect on
//      the robust 0.9-quantile scaling strategy.
//
// Uses reduced training budgets regardless of --quick: ablations compare
// configurations under identical settings, so the absolute budget only
// needs to be large enough for the contrast to show.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "core/evaluator.h"
#include "core/strategies.h"
#include "forecast/deepar.h"
#include "forecast/recalibrated.h"
#include "ts/metrics.h"

namespace rpas::bench {
namespace {

std::unique_ptr<forecast::DeepArForecaster> MakeHeadModel(
    forecast::DeepArForecaster::Head head, std::vector<double> levels) {
  forecast::DeepArForecaster::Options options;
  options.context_length = kContext;
  options.horizon = kHorizon;
  options.hidden_dim = 32;
  options.batch_size = 8;
  options.num_samples = 100;
  options.head = head;
  options.student_t_dof = 3.0;
  options.train.steps = 150;
  options.train.lr = 1e-3;
  options.levels = std::move(levels);
  options.seed = 11;
  return std::make_unique<forecast::DeepArForecaster>(options);
}

void RunAblation(const BenchOptions& options) {
  Dataset dataset = MakeDataset(trace::GoogleProfile(), options.seed + 1);
  const std::vector<double> levels = AccuracyLevels();

  // --- Ablation 1: observation head. ---
  TablePrinter heads({"Head", "mean_wQL", "wQL[0.9]", "Cov[0.9]", "MSE"});
  for (auto [name, head] :
       {std::pair{"Student-t", forecast::DeepArForecaster::Head::kStudentT},
        std::pair{"Gaussian", forecast::DeepArForecaster::Head::kGaussian}}) {
    auto model = MakeHeadModel(head, levels);
    RPAS_CHECK(model->Fit(dataset.train).ok());
    auto rolled = forecast::RollForecasts(*model, dataset.train,
                                          dataset.test, kHorizon);
    RPAS_CHECK(rolled.ok());
    auto report =
        ts::EvaluateForecasts(rolled->forecasts, rolled->actuals, levels);
    heads.AddRow({name, Num(report.mean_wql), Num(report.wql.at(0.9)),
                  Num(report.coverage.at(0.9), 3), Num(report.mse)});
    std::printf("[ablation] head %s done\n", name);
    std::fflush(stdout);
  }
  heads.Print(
      "Ablation 1: DeepAR observation head on the bursty Google-like "
      "trace");
  if (options.csv) {
    heads.PrintCsv();
  }

  // --- Ablation 2: quantile recalibration. ---
  const core::ScalingConfig config = MakeScalingConfig(dataset);
  const size_t eval_start = dataset.train.size();
  const size_t eval_steps = dataset.test.size();
  const std::vector<double> realized(
      dataset.full.values.begin() + static_cast<long>(eval_start),
      dataset.full.values.end());
  TablePrinter recal({"Model", "Cov[0.9]", "under_rate@0.9-strategy",
                      "over_rate@0.9-strategy"});
  auto evaluate = [&](const std::string& name,
                      const forecast::Forecaster& model) {
    auto rolled = forecast::RollForecasts(model, dataset.train, dataset.test,
                                          kHorizon);
    RPAS_CHECK(rolled.ok());
    auto report =
        ts::EvaluateForecasts(rolled->forecasts, rolled->actuals, {0.9});
    core::RobustQuantileAllocator robust(0.9);
    auto alloc = core::RunPredictiveStrategy(model, robust, dataset.full,
                                             eval_start, eval_steps, config);
    RPAS_CHECK(alloc.ok());
    auto prov = core::EvaluateAllocation(realized, *alloc, config);
    recal.AddRow({name, Num(report.coverage.at(0.9), 3),
                  Num(prov.under_provision_rate, 3),
                  Num(prov.over_provision_rate, 3)});
    std::printf("[ablation] %s done\n", name.c_str());
    std::fflush(stdout);
  };

  {
    auto raw = MakeHeadModel(forecast::DeepArForecaster::Head::kStudentT,
                             forecast::ScalingQuantileLevels());
    RPAS_CHECK(raw->Fit(dataset.train).ok());
    evaluate("DeepAR (raw)", *raw);
  }
  {
    forecast::RecalibratedForecaster::Options recal_options;
    recal_options.calibration_steps = 3 * kStepsPerDay;
    recal_options.stride = kHorizon / 2;
    forecast::RecalibratedForecaster wrapped(
        MakeHeadModel(forecast::DeepArForecaster::Head::kStudentT,
                      forecast::ScalingQuantileLevels()),
        recal_options);
    RPAS_CHECK(wrapped.Fit(dataset.train).ok());
    evaluate("DeepAR (recalibrated)", wrapped);
  }
  recal.Print(
      "Ablation 2: recalibration effect on coverage and the tau=0.9 "
      "robust strategy");
  if (options.csv) {
    recal.PrintCsv();
  }
  std::printf(
      "\nExpected shape: the Student-t head is better calibrated in the\n"
      "upper tail (Cov[0.9] closer to 0.9, lower wQL[0.9]) on the bursty\n"
      "trace — the paper's rationale for choosing it. Recalibration moves\n"
      "Cov[0.9] toward the nominal 0.9 from either side, aligning the\n"
      "robust strategy's realized risk with its configured tau.\n");
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::RunAblation(rpas::bench::ParseArgs(argc, argv, "Robust-allocation ablation under workload perturbations"));
  return 0;
}
