// Reproduces paper Fig. 12: "Sensitivity Analysis of Uncertainty
// Threshold" — under-/over-provisioning rates of the adaptive strategy as
// the uncertainty threshold rho sweeps the observed range of U, on the
// Google-like trace, for selected (tau1, tau2) combinations.
//
// Expected shape (paper): moving rho from "always conservative" (rho below
// every U) to "always optimistic" (rho above every U) trades
// under-provisioning for over-provisioning in distinct step-like changes —
// ranges of rho with identical effect, because only the thresholds that
// cross observed U values change any decision.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "core/evaluator.h"
#include "core/strategies.h"
#include "core/uncertainty.h"

namespace rpas::bench {
namespace {

void RunFig12(const BenchOptions& options) {
  Dataset dataset = MakeDataset(trace::GoogleProfile(), options.seed + 1);
  const core::ScalingConfig config = MakeScalingConfig(dataset);
  const size_t eval_start = dataset.train.size();
  const size_t eval_steps = dataset.test.size();
  const std::vector<double> realized(
      dataset.full.values.begin() + static_cast<long>(eval_start),
      dataset.full.values.end());

  auto model = MakeTft(kHorizon, ScalingLevels(), options.quick, 0);
  RPAS_CHECK(model->Fit(dataset.train).ok());

  // Observed range of U on a calibration slice drives the sweep grid.
  std::vector<double> all_u;
  {
    const size_t calib_steps = 2 * kStepsPerDay;
    ts::TimeSeries head =
        dataset.train.Slice(0, dataset.train.size() - calib_steps);
    ts::TimeSeries calib = dataset.train.Slice(
        dataset.train.size() - calib_steps, dataset.train.size());
    auto rolled = forecast::RollForecasts(*model, head, calib, kHorizon);
    RPAS_CHECK(rolled.ok());
    for (const auto& fc : rolled->forecasts) {
      const auto u = core::QuantileUncertaintyPerStep(fc);
      all_u.insert(all_u.end(), u.begin(), u.end());
    }
    std::sort(all_u.begin(), all_u.end());
  }
  auto u_quantile = [&](double p) {
    return all_u[static_cast<size_t>(
        p * static_cast<double>(all_u.size() - 1))];
  };

  const std::vector<std::pair<double, double>> combos = {
      {0.6, 0.9}, {0.7, 0.95}, {0.8, 0.99}};
  for (const auto& [tau1, tau2] : combos) {
    TablePrinter table({"rho (U-percentile)", "rho", "under_provision_rate",
                        "over_provision_rate", "mean_nodes"});
    for (double p : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      // Sweep slightly past both ends so the all-conservative and
      // all-optimistic extremes are included.
      const double rho = p == 0.0   ? u_quantile(0.0) - 1.0
                         : p == 1.0 ? u_quantile(1.0) + 1.0
                                    : u_quantile(p);
      core::AdaptiveQuantileAllocator adaptive(tau1, tau2, rho);
      auto alloc = core::RunPredictiveStrategy(*model, adaptive,
                                               dataset.full, eval_start,
                                               eval_steps, config);
      RPAS_CHECK(alloc.ok()) << alloc.status().ToString();
      const auto report = core::EvaluateAllocation(realized, *alloc, config);
      table.AddRow({Num(p, 3), Num(rho), Num(report.under_provision_rate, 3),
                    Num(report.over_provision_rate, 3),
                    Num(report.mean_allocated_nodes, 3)});
    }
    table.Print("Fig. 12 (TFT, " + dataset.name + "): sensitivity to rho, "
                "tau1=" + Num(tau1, 3) + " tau2=" + Num(tau2, 3));
    if (options.csv) {
      table.PrintCsv();
    }
  }
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::RunFig12(rpas::bench::ParseArgs(argc, argv, "Fig. 12: utilization-threshold sensitivity of the scaling loop"));
  return 0;
}
