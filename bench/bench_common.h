#ifndef RPAS_BENCH_BENCH_COMMON_H_
#define RPAS_BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scaling_config.h"
#include "forecast/arima.h"
#include "forecast/deepar.h"
#include "forecast/forecaster.h"
#include "forecast/mlp.h"
#include "forecast/qb5000.h"
#include "forecast/tft.h"
#include "obs/export.h"
#include "trace/generator.h"
#include "ts/time_series.h"

namespace rpas::bench {

/// Paper experimental constants (§IV-A/B): context and prediction length of
/// 12 hours at 10-minute aggregation = 72 steps.
inline constexpr size_t kContext = 72;
inline constexpr size_t kHorizon = 72;
inline constexpr size_t kStepsPerDay = 144;

/// Quantile grids from the paper: A = {0.1..0.9} for forecasting accuracy
/// (§IV-B), {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99} for scaling (§IV-C).
std::vector<double> AccuracyLevels();
std::vector<double> ScalingLevels();

/// Run-mode knobs shared by every bench binary. `--quick` shrinks training
/// budgets for smoke runs; `--csv` emits machine-readable rows after the
/// human-readable table; `--metrics-out=PATH` enables the global metrics
/// registry + trace buffer for the run and writes a structured JSONL
/// export to PATH (plus a flat CSV next to it) at exit.
struct BenchOptions {
  bool quick = false;
  bool csv = false;
  uint64_t seed = 2024;
  std::string metrics_out;
};

/// A bench-specific flag understood by ParseArgs in addition to the shared
/// set. A `flag` ending in '=' takes a value (the handler receives the text
/// after '='); otherwise it is boolean (the handler receives "").
struct BenchFlagSpec {
  std::string flag;  ///< e.g. "--tenants=" (value) or "--all-warm" (bool)
  std::string help;  ///< one-line description for --help
  std::function<void(const std::string& value)> handler;
};

/// Parses the shared flags (--quick, --csv, --seed=N, --metrics-out=PATH)
/// plus any `extra` bench-specific flags. `--help`/`-h` prints a usage
/// summary built from `description` and the flag table, then exits 0. Any
/// other unknown argument is an error: usage goes to stderr and the
/// process exits 2 — a typoed flag must never silently run the default
/// configuration. `--benchmark_*` flags are passed through untouched for
/// binaries that hand argv to Google Benchmark afterwards.
BenchOptions ParseArgs(int argc, char** argv,
                       const std::string& description = "",
                       const std::vector<BenchFlagSpec>& extra = {});

/// Turns on the global obs::MetricsRegistry and obs::TraceBuffer when
/// `--metrics-out` was given (equivalent to running with RPAS_METRICS=1).
/// Call once, before any instrumented work.
void EnableMetricsIfRequested(const BenchOptions& options);

/// Writes the run export (global registry + trace snapshot + `decisions`)
/// as JSONL to `options.metrics_out` and as CSV to the same path with a
/// ".csv" extension. No-op when `--metrics-out` was not given. Logs and
/// continues on I/O failure — telemetry must never fail a bench.
void WriteRunArtifacts(const BenchOptions& options,
                       std::vector<obs::ScalingDecision> decisions = {});

/// Times `reps` invocations of `fn` under an obs::Span named `span_name`
/// and returns the mean wall-clock milliseconds per invocation. The single
/// timing idiom for the bench binaries (common::Stopwatch underneath), so
/// hand-rolled Stopwatch loops and span instrumentation cannot drift apart.
double TimedMillis(const char* span_name, int reps,
                   const std::function<void()>& fn);

/// One benchmark dataset: the full trace plus its train/test split
/// (test = last `test_days` days).
struct Dataset {
  std::string name;
  ts::TimeSeries full;
  ts::TimeSeries train;
  ts::TimeSeries test;
};

/// Builds the Alibaba-like and Google-like CPU traces used throughout the
/// benches (35 days of 10-minute samples; last 6 days held out).
Dataset MakeDataset(const trace::TraceProfile& profile, uint64_t seed);
std::vector<Dataset> MakeBothDatasets(uint64_t seed);

/// Paper model lineup with fixed hyperparameters (the paper fixes
/// hyperparameters across horizons and sets lr = 1e-3 for all models).
/// `levels` selects the quantile grid each model is trained/queried for;
/// `run` perturbs initialization seeds (Table I averages 3 runs).
std::unique_ptr<forecast::Forecaster> MakeArima(
    size_t horizon, std::vector<double> levels);
std::unique_ptr<forecast::Forecaster> MakeMlp(
    size_t horizon, std::vector<double> levels, bool quick, int run);
std::unique_ptr<forecast::Forecaster> MakeDeepAr(
    size_t horizon, std::vector<double> levels, bool quick, int run);
std::unique_ptr<forecast::Forecaster> MakeTft(
    size_t horizon, std::vector<double> levels, bool quick, int run,
    const std::string& name = "TFT");
std::unique_ptr<forecast::Forecaster> MakeQb5000(size_t horizon, bool quick,
                                                 int run);

/// Scaling configuration used by the auto-scaling benches: theta chosen so
/// the average trace demands ~4 compute nodes.
core::ScalingConfig MakeScalingConfig(const Dataset& dataset);

/// Parallel scenario runner: executes `fn(i)` for every i in [0, count),
/// fanning the cells across the RPAS thread pool (RPAS_NUM_THREADS
/// workers; 1 = serial). Cells must be independent: each writes only its
/// own result slot and derives any randomness from its own index, so the
/// emitted tables are identical at every thread count. Used by the bench
/// binaries to sweep model x dataset x run grids concurrently.
void RunScenarios(size_t count, const std::function<void(size_t)>& fn);

// ---------------------------------------------------------------------------
// Minimal aligned-text table printer (every bench prints the same rows the
// paper's tables/figures report).
// ---------------------------------------------------------------------------
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Prints the aligned table to stdout.
  void Print(const std::string& title) const;
  /// Prints rows as CSV (after the table) when enabled.
  void PrintCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with %.4g-style compactness.
std::string Num(double value, int precision = 4);

}  // namespace rpas::bench

#endif  // RPAS_BENCH_BENCH_COMMON_H_
