// Multi-tenant forecast-serving throughput: cross-tenant batching vs
// per-request serving over a tenants x threads grid.
//
// The fleet assigns each tenant one of `--versions` registered model
// versions (alternating MLP / DeepAR architectures). The registry's warm
// cache is budgeted to hold only half of the version set, so per-request
// arrival-order serving cycles through more versions than fit — the LRU
// worst case, one checkpoint load per request — while batched serving
// loads each version at most once per round and amortizes it across that
// version's tenants with a row-stacked forward pass. An all-warm control
// row (cache fits every version) separates the cache-amortization win
// from the stacked-forward win. Answers are bit-identical in both modes
// (BatchEngine's determinism contract); the bench asserts this.
//
// A contended all-warm section times hit-only serving with one registry
// shared across shards (the snapshot registry's lock-free Acquire path)
// and reports the registry lock-probe delta alongside throughput.
// --json=PATH writes a machine-readable summary for the CI smoke step.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "serve/fleet.h"
#include "serve/registry.h"
#include "trace/generator.h"

namespace rpas::bench {
namespace {

constexpr size_t kServeContext = 24;
constexpr size_t kServeHorizon = 12;
constexpr size_t kReplanEvery = 4;

size_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    return 0;
  }
  const std::streamoff size = in.tellg();
  return size > 0 ? static_cast<size_t>(size) : 0;
}

forecast::MlpForecaster::Options ServeMlpOptions(const BenchOptions& options) {
  forecast::MlpForecaster::Options mlp;
  mlp.context_length = kServeContext;
  mlp.horizon = kServeHorizon;
  mlp.hidden_dim = 48;
  mlp.num_hidden_layers = 1;
  mlp.batch_size = 16;
  mlp.train.steps = options.quick ? 30 : 80;
  mlp.train.lr = 1e-3;
  return mlp;
}

forecast::DeepArForecaster::Options ServeDeepArOptions(
    const BenchOptions& options) {
  forecast::DeepArForecaster::Options deepar;
  deepar.context_length = kServeContext;
  deepar.horizon = kServeHorizon;
  deepar.hidden_dim = 20;
  deepar.batch_size = 8;
  deepar.num_samples = options.quick ? 12 : 16;
  deepar.train.steps = options.quick ? 30 : 80;
  deepar.train.lr = 1e-3;
  return deepar;
}

/// The registered version universe: `num_versions` checkpoints alternating
/// the two neural architectures, plus everything needed to rebuild a fresh
/// registry per grid cell.
struct VersionSet {
  std::vector<serve::ModelId> models;       ///< arrival-order assignment
  std::vector<std::string> paths;           ///< checkpoint per version
  size_t total_bytes = 0;
  BenchOptions bench;
};

VersionSet BuildVersions(const BenchOptions& options, size_t num_versions) {
  // Train one model per architecture; version v re-saves the same weights
  // under its own checkpoint file (standing in for per-tenant retraining —
  // the serving cost of a version switch is the checkpoint parse, which is
  // what the warm cache exists to amortize).
  trace::SyntheticTraceGenerator generator(trace::AlibabaProfile(),
                                           options.seed);
  const ts::TimeSeries train = generator.GenerateCpu(10 * kStepsPerDay);

  forecast::MlpForecaster mlp(ServeMlpOptions(options));
  RPAS_CHECK(mlp.Fit(train).ok());
  forecast::DeepArForecaster deepar(ServeDeepArOptions(options));
  RPAS_CHECK(deepar.Fit(train).ok());

  VersionSet set;
  set.bench = options;
  for (size_t v = 0; v < num_versions; ++v) {
    const bool is_mlp = v % 2 == 0;
    const std::string path = StrFormat("/tmp/rpas_fleet_%s_v%zu.ckpt",
                                       is_mlp ? "mlp" : "deepar", v);
    if (is_mlp) {
      RPAS_CHECK(mlp.SaveCheckpoint(path).ok());
    } else {
      RPAS_CHECK(deepar.SaveCheckpoint(path).ok());
    }
    set.models.push_back({is_mlp ? "mlp" : "deepar", v + 1});
    set.paths.push_back(path);
    set.total_bytes += FileBytes(path);
  }
  return set;
}

std::unique_ptr<serve::ModelRegistry> MakeRegistry(const VersionSet& set,
                                                   size_t budget_bytes) {
  serve::ModelRegistry::Options options;
  options.cache_budget_bytes = budget_bytes;
  auto registry = std::make_unique<serve::ModelRegistry>(options);
  const BenchOptions bench = set.bench;
  for (size_t v = 0; v < set.models.size(); ++v) {
    serve::ForecasterFactory factory;
    if (v % 2 == 0) {
      factory = [bench] {
        return std::make_unique<forecast::MlpForecaster>(
            ServeMlpOptions(bench));
      };
    } else {
      factory = [bench] {
        return std::make_unique<forecast::DeepArForecaster>(
            ServeDeepArOptions(bench));
      };
    }
    RPAS_CHECK(registry
                   ->RegisterVersion(set.models[v], set.paths[v],
                                     std::move(factory))
                   .ok());
  }
  return registry;
}

struct CellResult {
  double millis = 0.0;
  serve::FleetResult fleet;
};

/// Machine-readable rows for --json (the CI perf-smoke artifact). Each row
/// carries its section so downstream tooling can filter the grid, the
/// all-warm controls, and the shard-scaling sweep out of one file.
struct JsonRow {
  std::string section;
  size_t tenants = 0;
  size_t shards = 1;
  int threads = 1;
  std::string mode;
  double millis = 0.0;
  double req_per_s = 0.0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t loads = 0;
  double speedup = 0.0;
  uint64_t mutex_locks = 0;
};

void WriteJson(const std::string& path, const std::vector<JsonRow>& rows,
               bool identical) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "fleet_serving: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\"bench\":\"fleet_serving\",\"rows\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    out << (i > 0 ? "," : "")
        << StrFormat(
               "{\"section\":\"%s\",\"tenants\":%zu,\"shards\":%zu,"
               "\"threads\":%d,\"mode\":\"%s\",\"ms\":%.4f,"
               "\"req_per_s\":%.2f,\"cache_hits\":%llu,"
               "\"cache_misses\":%llu,\"ckpt_loads\":%llu,"
               "\"speedup\":%.4f,\"mutex_locks\":%llu}",
               r.section.c_str(), r.tenants, r.shards, r.threads,
               r.mode.c_str(), r.millis, r.req_per_s,
               static_cast<unsigned long long>(r.hits),
               static_cast<unsigned long long>(r.misses),
               static_cast<unsigned long long>(r.loads), r.speedup,
               static_cast<unsigned long long>(r.mutex_locks));
  }
  out << StrFormat("],\"identical\":%s}\n", identical ? "true" : "false");
}

double ReqPerSec(const CellResult& cell) {
  const double seconds = cell.millis / 1000.0;
  return seconds > 0.0
             ? static_cast<double>(cell.fleet.requests_admitted) / seconds
             : 0.0;
}

CellResult RunCell(const VersionSet& set, size_t tenants, int threads,
                   bool batched, size_t budget_bytes, size_t rounds,
                   size_t shards = 1, bool per_shard_registries = false) {
  // Single-shot wall timings are noisy on small machines, so time the cell
  // a few times and keep the fastest run. Each repetition rebuilds the
  // registry so the warm cache starts cold every time; the FleetResult is
  // identical across repetitions (RunFleet is deterministic), so any one
  // of them can be reported.
  constexpr int kTimingReps = 3;
  SetRpasThreads(threads);
  serve::FleetOptions fleet_options;
  fleet_options.num_tenants = tenants;
  fleet_options.num_steps = rounds * kReplanEvery;
  fleet_options.history_steps = kServeContext;
  fleet_options.replan_every = kReplanEvery;
  fleet_options.seed = set.bench.seed;
  fleet_options.batched = batched;
  fleet_options.num_shards = shards;
  if (per_shard_registries && shards > 1) {
    // Each shard owns its own registry (same version universe, same
    // budget), so shards never contend on one registry mutex.
    const VersionSet* set_ptr = &set;
    fleet_options.shard_registry_factory = [set_ptr, budget_bytes] {
      return MakeRegistry(*set_ptr, budget_bytes);
    };
  }
  CellResult cell;
  cell.millis = 0.0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    std::unique_ptr<serve::ModelRegistry> registry =
        MakeRegistry(set, budget_bytes);
    const double millis = TimedMillis("fleet.serve", 1, [&] {
      auto result = serve::RunFleet(registry.get(), set.models, fleet_options);
      RPAS_CHECK(result.ok()) << result.status().ToString();
      cell.fleet = std::move(*result);
    });
    cell.millis = rep == 0 ? millis : std::min(cell.millis, millis);
  }
  SetRpasThreads(0);
  return cell;
}

/// All-warm, hit-only contended cell: ONE registry shared by every shard,
/// warmed by acquiring each version once before timing, so the timed runs
/// never miss — every shard's Acquire() is a concurrent warm hit on the
/// same snapshot. `lock_delta` returns the registry lock-probe delta
/// across the timed runs: warm hits take no mutex, so the residue is the
/// per-run CacheStats snapshot, not the serving path.
CellResult RunWarmCell(const VersionSet& set, size_t tenants, int threads,
                       size_t shards, bool batched, size_t rounds,
                       uint64_t* lock_delta) {
  constexpr int kTimingReps = 3;
  SetRpasThreads(threads);
  serve::FleetOptions fleet_options;
  fleet_options.num_tenants = tenants;
  fleet_options.num_steps = rounds * kReplanEvery;
  fleet_options.history_steps = kServeContext;
  fleet_options.replan_every = kReplanEvery;
  fleet_options.seed = set.bench.seed;
  fleet_options.batched = batched;
  fleet_options.num_shards = shards;
  std::unique_ptr<serve::ModelRegistry> registry =
      MakeRegistry(set, set.total_bytes);
  for (const serve::ModelId& id : set.models) {
    auto model = registry->Acquire(id);
    RPAS_CHECK(model.ok()) << model.status().ToString();
  }
  CellResult cell;
  const uint64_t locks_before = registry->MutexAcquisitions();
  for (int rep = 0; rep < kTimingReps; ++rep) {
    const double millis = TimedMillis("fleet.serve_warm", 1, [&] {
      auto result = serve::RunFleet(registry.get(), set.models, fleet_options);
      RPAS_CHECK(result.ok()) << result.status().ToString();
      cell.fleet = std::move(*result);
    });
    cell.millis = rep == 0 ? millis : std::min(cell.millis, millis);
  }
  *lock_delta = registry->MutexAcquisitions() - locks_before;
  SetRpasThreads(0);
  return cell;
}

void RunFleetServing(const BenchOptions& options, size_t only_tenants,
                     int only_threads, size_t rounds_flag,
                     size_t num_versions, size_t only_shards,
                     const std::string& json_path) {
  const size_t rounds = rounds_flag > 0 ? rounds_flag
                        : options.quick ? 3
                                        : 6;
  std::vector<size_t> tenant_counts{8, 16, 64};
  if (options.quick && only_tenants == 0) {
    tenant_counts = {8, 16};
  }
  if (only_tenants > 0) {
    tenant_counts = {only_tenants};
  }
  std::vector<int> thread_counts{1, 2};
  if (only_threads > 0) {
    thread_counts = {only_threads};
  }

  const VersionSet set = BuildVersions(options, num_versions);
  // Warm cache holds only half the version universe: per-request serving
  // that cycles through more versions than fit reloads on every request.
  const size_t tight_budget = set.total_bytes / 2;

  TablePrinter table({"tenants", "threads", "mode", "ms/run", "req/s",
                      "cache_hits", "cache_misses", "ckpt_loads",
                      "speedup"});
  bool all_identical = true;
  std::vector<JsonRow> json_rows;
  auto record_json = [&](const std::string& section, size_t tenants,
                         size_t shards, int threads, const std::string& mode,
                         const CellResult& cell, double speedup,
                         uint64_t mutex_locks) {
    JsonRow row;
    row.section = section;
    row.tenants = tenants;
    row.shards = shards;
    row.threads = threads;
    row.mode = mode;
    row.millis = cell.millis;
    row.req_per_s = ReqPerSec(cell);
    row.hits = static_cast<uint64_t>(cell.fleet.cache.hits);
    row.misses = static_cast<uint64_t>(cell.fleet.cache.misses);
    row.loads = static_cast<uint64_t>(cell.fleet.cache.loads);
    row.speedup = speedup;
    row.mutex_locks = mutex_locks;
    json_rows.push_back(std::move(row));
  };
  for (size_t tenants : tenant_counts) {
    for (int threads : thread_counts) {
      const CellResult unbatched =
          RunCell(set, tenants, threads, /*batched=*/false, tight_budget,
                  rounds);
      const CellResult batched =
          RunCell(set, tenants, threads, /*batched=*/true, tight_budget,
                  rounds);
      all_identical =
          all_identical &&
          batched.fleet.mean_under_provision_rate ==
              unbatched.fleet.mean_under_provision_rate &&
          batched.fleet.mean_utilization == unbatched.fleet.mean_utilization;
      auto add_row = [&](const char* mode, const CellResult& cell,
                         double speedup) {
        const double seconds = cell.millis / 1000.0;
        const double rate =
            seconds > 0.0
                ? static_cast<double>(cell.fleet.requests_admitted) / seconds
                : 0.0;
        table.AddRow({StrFormat("%zu", tenants), StrFormat("%d", threads),
                      mode, Num(cell.millis), Num(rate),
                      StrFormat("%lld", static_cast<long long>(cell.fleet.cache.hits)),
                      StrFormat("%lld", static_cast<long long>(cell.fleet.cache.misses)),
                      StrFormat("%lld", static_cast<long long>(cell.fleet.cache.loads)),
                      speedup > 0.0 ? Num(speedup) : std::string("-")});
        record_json("grid", tenants, 1, threads, mode, cell, speedup, 0);
      };
      add_row("unbatched", unbatched, 0.0);
      add_row("batched", batched,
              batched.millis > 0.0 ? unbatched.millis / batched.millis : 0.0);
    }
  }
  // Control: every version fits warm, isolating the stacked-forward win
  // from the cache-amortization win at the largest tenant count.
  {
    const size_t tenants = tenant_counts.back();
    const CellResult unbatched = RunCell(set, tenants, 1, /*batched=*/false,
                                         set.total_bytes, rounds);
    const CellResult batched = RunCell(set, tenants, 1, /*batched=*/true,
                                       set.total_bytes, rounds);
    auto add_row = [&](const char* mode, const CellResult& cell,
                       double speedup) {
      const double seconds = cell.millis / 1000.0;
      const double rate =
          seconds > 0.0
              ? static_cast<double>(cell.fleet.requests_admitted) / seconds
              : 0.0;
      table.AddRow({StrFormat("%zu", tenants), "1",
                    StrFormat("%s/all-warm", mode), Num(cell.millis),
                    Num(rate), StrFormat("%lld", static_cast<long long>(cell.fleet.cache.hits)),
                    StrFormat("%lld", static_cast<long long>(cell.fleet.cache.misses)),
                    StrFormat("%lld", static_cast<long long>(cell.fleet.cache.loads)),
                    speedup > 0.0 ? Num(speedup) : std::string("-")});
      record_json("all_warm", tenants, 1, 1, StrFormat("%s/all-warm", mode),
                  cell, speedup, 0);
    };
    add_row("unbatched", unbatched, 0.0);
    add_row("batched", batched,
            batched.millis > 0.0 ? unbatched.millis / batched.millis : 0.0);
  }
  table.Print(StrFormat(
      "Fleet serving throughput (%zu versions, %zu rounds, warm cache "
      "budget %zu KiB of %zu KiB)",
      set.models.size(), rounds, tight_budget >> 10,
      set.total_bytes >> 10));
  if (options.csv) {
    table.PrintCsv();
  }

  // Contended hit path: one registry shared by every shard, every version
  // warm before timing, so the serving loop is 100% warm hits racing on
  // the same snapshot — the configuration the lock-free Acquire() exists
  // for (pre-snapshot, these cells serialized on the registry mutex). The
  // mutex_locks column is the registry lock-probe delta across the timed
  // runs: it stays flat in the shard count because warm hits take no lock
  // (the residue is the per-run CacheStats snapshot).
  {
    const size_t tenants = tenant_counts.back();
    std::vector<size_t> contended_shards{1, 2, 4};
    if (only_shards > 0) {
      contended_shards = {only_shards};
    }
    TablePrinter contended({"tenants", "shards", "threads", "mode", "ms/run",
                            "req/s", "cache_hits", "cache_misses",
                            "mutex_locks", "speedup_vs_serial"});
    CellResult serial;
    for (size_t shards : contended_shards) {
      const int threads = static_cast<int>(shards);
      uint64_t lock_delta = 0;
      const CellResult cell = RunWarmCell(set, tenants, threads, shards,
                                          /*batched=*/true, rounds,
                                          &lock_delta);
      if (shards == contended_shards.front()) {
        serial = cell;
      }
      all_identical =
          all_identical &&
          cell.fleet.mean_under_provision_rate ==
              serial.fleet.mean_under_provision_rate &&
          cell.fleet.mean_utilization == serial.fleet.mean_utilization;
      const double speedup =
          cell.millis > 0.0 ? serial.millis / cell.millis : 0.0;
      contended.AddRow(
          {StrFormat("%zu", tenants), StrFormat("%zu", shards),
           StrFormat("%d", threads), "batched/all-warm", Num(cell.millis),
           Num(ReqPerSec(cell)),
           StrFormat("%lld", static_cast<long long>(cell.fleet.cache.hits)),
           StrFormat("%lld", static_cast<long long>(cell.fleet.cache.misses)),
           StrFormat("%llu", static_cast<unsigned long long>(lock_delta)),
           Num(speedup)});
      record_json("all_warm_contended", tenants, shards, threads,
                  "batched/all-warm", cell, speedup, lock_delta);
    }
    contended.Print(StrFormat(
        "Contended all-warm hit path (shared registry, %zu rounds)",
        rounds));
    if (options.csv) {
      contended.PrintCsv();
    }
  }

  // Shard scaling: batched serving at the largest tenant count with one
  // registry per shard, swept over a shards x threads grid. The speedup
  // column is measured against the 1-shard serial run of the same
  // configuration — the thread-scaling numbers EXPERIMENTS.md reports.
  // Results must be bit-identical to the serial run in every cell
  // (sharding changes scheduling, never verdicts or forecasts).
  {
    const size_t tenants = tenant_counts.back();
    std::vector<size_t> shard_counts{1, 2, 4};
    if (only_shards > 0) {
      shard_counts = {only_shards};
    }
    std::vector<int> scale_threads = thread_counts;
    const CellResult serial =
        RunCell(set, tenants, /*threads=*/1, /*batched=*/true, tight_budget,
                rounds, /*shards=*/1);
    TablePrinter scaling({"tenants", "shards", "threads", "ms/run", "req/s",
                          "speedup_vs_serial"});
    for (size_t shards : shard_counts) {
      for (int threads : scale_threads) {
        const CellResult cell =
            (shards == 1 && threads == 1)
                ? serial
                : RunCell(set, tenants, threads, /*batched=*/true,
                          tight_budget, rounds, shards,
                          /*per_shard_registries=*/true);
        all_identical =
            all_identical &&
            cell.fleet.mean_under_provision_rate ==
                serial.fleet.mean_under_provision_rate &&
            cell.fleet.mean_utilization == serial.fleet.mean_utilization &&
            cell.fleet.requests_admitted == serial.fleet.requests_admitted;
        const double seconds = cell.millis / 1000.0;
        const double rate =
            seconds > 0.0
                ? static_cast<double>(cell.fleet.requests_admitted) / seconds
                : 0.0;
        scaling.AddRow(
            {StrFormat("%zu", tenants), StrFormat("%zu", shards),
             StrFormat("%d", threads), Num(cell.millis), Num(rate),
             cell.millis > 0.0 ? Num(serial.millis / cell.millis)
                               : std::string("-")});
        record_json("shard_scaling", tenants, shards, threads, "batched",
                    cell,
                    cell.millis > 0.0 ? serial.millis / cell.millis : 0.0,
                    0);
      }
    }
    scaling.Print(StrFormat(
        "Sharded fleet scaling (batched, per-shard registries, %zu rounds)",
        rounds));
    if (options.csv) {
      scaling.PrintCsv();
    }
  }
  std::printf("sharded == batched == unbatched results: %s\n",
              all_identical ? "identical" : "MISMATCH");
  if (!json_path.empty()) {
    WriteJson(json_path, json_rows, all_identical);
  }

  // Export one instrumented run for the artifact pipeline (metrics are
  // global; the timed grid above ran with the same registry sinks).
  if (!options.metrics_out.empty()) {
    serve::FleetOptions fleet_options;
    fleet_options.num_tenants = tenant_counts.front();
    fleet_options.num_steps = rounds * kReplanEvery;
    fleet_options.history_steps = kServeContext;
    fleet_options.replan_every = kReplanEvery;
    fleet_options.seed = options.seed;
    fleet_options.collect_decisions = true;
    std::unique_ptr<serve::ModelRegistry> registry =
        MakeRegistry(set, tight_budget);
    auto result = serve::RunFleet(registry.get(), set.models, fleet_options);
    RPAS_CHECK(result.ok()) << result.status().ToString();
    WriteRunArtifacts(options, std::move(result->decisions));
  }
  if (!all_identical) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  size_t only_tenants = 0;
  int only_threads = 0;
  size_t rounds = 0;
  size_t versions = 12;
  size_t only_shards = 0;
  std::string json_path;
  const std::vector<rpas::bench::BenchFlagSpec> extra{
      {"--tenants=", "run only this tenant count (default grid 8,16,64)",
       [&](const std::string& v) {
         only_tenants = static_cast<size_t>(std::strtoull(v.c_str(),
                                                          nullptr, 10));
       }},
      {"--threads=", "run only this thread count (default grid 1,2)",
       [&](const std::string& v) {
         only_threads = static_cast<int>(std::strtol(v.c_str(), nullptr, 10));
       }},
      {"--rounds=", "planning rounds per run (default 6; 3 with --quick)",
       [&](const std::string& v) {
         rounds = static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
       }},
      {"--versions=", "registered model versions (default 12)",
       [&](const std::string& v) {
         versions = static_cast<size_t>(std::strtoull(v.c_str(), nullptr,
                                                      10));
       }},
      {"--shards=",
       "run only this shard count in the scaling section (default grid "
       "1,2,4)",
       [&](const std::string& v) {
         only_shards = static_cast<size_t>(std::strtoull(v.c_str(), nullptr,
                                                         10));
       }},
      {"--json=", "write a machine-readable summary to this path",
       [&](const std::string& v) { json_path = v; }},
  };
  const rpas::bench::BenchOptions options = rpas::bench::ParseArgs(
      argc, argv,
      "Multi-tenant forecast-serving throughput: batched vs unbatched",
      extra);
  rpas::bench::EnableMetricsIfRequested(options);
  rpas::bench::RunFleetServing(options, only_tenants, only_threads, rounds,
                               versions, only_shards, json_path);
  return 0;
}
