#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace rpas::bench {

std::vector<double> AccuracyLevels() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

std::vector<double> ScalingLevels() {
  return {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99};
}

namespace {

void PrintUsage(std::FILE* out, const char* program,
                const std::string& description,
                const std::vector<BenchFlagSpec>& extra) {
  std::fprintf(out, "usage: %s [flags]\n", program);
  if (!description.empty()) {
    std::fprintf(out, "%s\n", description.c_str());
  }
  std::fprintf(out, "\nflags:\n");
  std::fprintf(out, "  --quick             shrink training budgets (smoke run)\n");
  std::fprintf(out, "  --csv               emit machine-readable rows after the table\n");
  std::fprintf(out, "  --seed=N            base seed for traces and models (default 2024)\n");
  std::fprintf(out, "  --metrics-out=PATH  write a structured JSONL+CSV run export\n");
  for (const BenchFlagSpec& spec : extra) {
    std::fprintf(out, "  %-18s  %s\n",
                 (spec.flag.back() == '=' ? spec.flag + "V" : spec.flag)
                     .c_str(),
                 spec.help.c_str());
  }
  std::fprintf(out, "  --help, -h          print this message and exit\n");
}

}  // namespace

BenchOptions ParseArgs(int argc, char** argv, const std::string& description,
                       const std::vector<BenchFlagSpec>& extra) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage(stdout, argv[0], description, extra);
      std::exit(0);
    }
    if (std::strcmp(arg, "--quick") == 0) {
      options.quick = true;
      continue;
    }
    if (std::strcmp(arg, "--csv") == 0) {
      options.csv = true;
      continue;
    }
    if (StartsWith(arg, "--seed=")) {
      options.seed =
          static_cast<uint64_t>(std::strtoull(arg + 7, nullptr, 10));
      continue;
    }
    if (StartsWith(arg, "--metrics-out=")) {
      options.metrics_out = arg + std::strlen("--metrics-out=");
      continue;
    }
    // Google Benchmark flags are parsed later by benchmark::Initialize in
    // the binaries that use it.
    if (StartsWith(arg, "--benchmark_")) {
      continue;
    }
    bool matched = false;
    for (const BenchFlagSpec& spec : extra) {
      if (spec.flag.back() == '=') {
        if (StartsWith(arg, spec.flag.c_str())) {
          spec.handler(arg + spec.flag.size());
          matched = true;
          break;
        }
      } else if (spec.flag == arg) {
        spec.handler("");
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::fprintf(stderr, "%s: unknown flag '%s'\n\n", argv[0], arg);
      PrintUsage(stderr, argv[0], description, extra);
      std::exit(2);
    }
  }
  return options;
}

void EnableMetricsIfRequested(const BenchOptions& options) {
  if (options.metrics_out.empty()) {
    return;
  }
  obs::MetricsRegistry::Global().SetEnabled(true);
  obs::TraceBuffer::Global().SetEnabled(true);
}

void WriteRunArtifacts(const BenchOptions& options,
                       std::vector<obs::ScalingDecision> decisions) {
  if (options.metrics_out.empty()) {
    return;
  }
  obs::RunExport run_export(&obs::MetricsRegistry::Global(),
                            &obs::TraceBuffer::Global(),
                            std::move(decisions));
  std::string csv_path = options.metrics_out;
  const size_t dot = csv_path.find_last_of('.');
  const size_t slash = csv_path.find_last_of('/');
  if (dot != std::string::npos &&
      (slash == std::string::npos || dot > slash)) {
    csv_path.resize(dot);
  }
  csv_path += ".csv";
  const Status jsonl = run_export.WriteJsonl(options.metrics_out);
  const Status csv = run_export.WriteCsv(csv_path);
  if (!jsonl.ok() || !csv.ok()) {
    std::fprintf(stderr, "metrics export failed: %s\n",
                 (!jsonl.ok() ? jsonl : csv).ToString().c_str());
    return;
  }
  std::printf("metrics export: %s (+ %s)\n", options.metrics_out.c_str(),
              csv_path.c_str());
}

double TimedMillis(const char* span_name, int reps,
                   const std::function<void()>& fn) {
  if (reps <= 0) {
    return 0.0;
  }
  obs::Span span(span_name, reps);
  Stopwatch watch;
  for (int r = 0; r < reps; ++r) {
    fn();
  }
  return watch.ElapsedMillis() / static_cast<double>(reps);
}

Dataset MakeDataset(const trace::TraceProfile& profile, uint64_t seed) {
  constexpr size_t kTotalDays = 35;
  constexpr size_t kTestDays = 6;
  trace::SyntheticTraceGenerator gen(profile, seed);
  Dataset dataset;
  dataset.name = profile.name;
  dataset.full = gen.GenerateCpu(kTotalDays * kStepsPerDay);
  auto [train, test] = dataset.full.SplitTail(kTestDays * kStepsPerDay);
  dataset.train = std::move(train);
  dataset.test = std::move(test);
  return dataset;
}

std::vector<Dataset> MakeBothDatasets(uint64_t seed) {
  std::vector<Dataset> datasets;
  datasets.push_back(MakeDataset(trace::AlibabaProfile(), seed));
  datasets.push_back(MakeDataset(trace::GoogleProfile(), seed + 1));
  return datasets;
}

std::unique_ptr<forecast::Forecaster> MakeArima(size_t horizon,
                                                std::vector<double> levels) {
  forecast::ArimaForecaster::Options options;
  options.p = 3;
  options.d = 1;
  options.q = 2;
  options.context_length = kContext;
  options.horizon = horizon;
  options.levels = std::move(levels);
  return std::make_unique<forecast::ArimaForecaster>(options);
}

std::unique_ptr<forecast::Forecaster> MakeMlp(size_t horizon,
                                              std::vector<double> levels,
                                              bool quick, int run) {
  forecast::MlpForecaster::Options options;
  options.context_length = kContext;
  options.horizon = horizon;
  options.hidden_dim = 24;
  options.num_hidden_layers = 1;      // GluonTS SimpleFeedForward parity
  options.batch_size = 32;
  options.train.steps = quick ? 100 : 200;
  options.train.lr = 1e-3;  // paper §IV-A
  options.use_time_features = false;  // GluonTS SimpleFeedForward parity
  options.levels = std::move(levels);
  options.seed = 7 + static_cast<uint64_t>(run) * 1000;
  return std::make_unique<forecast::MlpForecaster>(options);
}

std::unique_ptr<forecast::Forecaster> MakeDeepAr(size_t horizon,
                                                 std::vector<double> levels,
                                                 bool quick, int run) {
  forecast::DeepArForecaster::Options options;
  options.context_length = kContext;
  options.horizon = horizon;
  options.hidden_dim = 32;
  options.batch_size = 8;
  options.num_samples = 100;
  options.student_t_dof = 3.0;
  options.train.steps = quick ? 60 : 300;
  options.train.lr = 1e-3;
  options.levels = std::move(levels);
  options.seed = 11 + static_cast<uint64_t>(run) * 1000;
  return std::make_unique<forecast::DeepArForecaster>(options);
}

std::unique_ptr<forecast::Forecaster> MakeTft(size_t horizon,
                                              std::vector<double> levels,
                                              bool quick, int run,
                                              const std::string& name) {
  forecast::TftForecaster::Options options;
  options.context_length = kContext;
  options.horizon = horizon;
  options.d_model = 16;
  options.num_heads = 2;
  options.batch_size = 3;
  options.train.steps = quick ? 80 : 900;
  options.train.lr = 1e-3;
  options.levels = std::move(levels);
  options.seed = 23 + static_cast<uint64_t>(run) * 1000;
  options.name = name;
  return std::make_unique<forecast::TftForecaster>(options);
}

std::unique_ptr<forecast::Forecaster> MakeQb5000(size_t horizon, bool quick,
                                                 int run) {
  forecast::Qb5000Forecaster::Options options;
  options.context_length = kContext;
  options.horizon = horizon;
  options.lstm_hidden = 24;
  options.batch_size = 8;
  options.train.steps = quick ? 60 : 250;
  options.train.lr = 1e-3;
  options.seed = 31 + static_cast<uint64_t>(run) * 1000;
  return std::make_unique<forecast::Qb5000Forecaster>(options);
}

core::ScalingConfig MakeScalingConfig(const Dataset& dataset) {
  core::ScalingConfig config;
  config.theta = dataset.full.Mean() / 4.0;
  config.min_nodes = 1;
  return config;
}

void RunScenarios(size_t count, const std::function<void(size_t)>& fn) {
  // Grain 1: scenario cells (full train/evaluate pipelines) are heavyweight
  // and few, so each gets its own pool task.
  ParallelFor(0, count, 1, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      fn(i);
    }
  });
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(const std::string& title) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n=== %s ===\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  for (size_t i = 0; i < total; ++i) {
    std::printf("-");
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    print_row(row);
  }
  std::fflush(stdout);
}

void TablePrinter::PrintCsv() const {
  auto print_row = [](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%s", c > 0 ? "," : "", row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  for (const auto& row : rows_) {
    print_row(row);
  }
  std::fflush(stdout);
}

std::string Num(double value, int precision) {
  return StrFormat("%.*g", precision, value);
}

}  // namespace rpas::bench
