// Fault-robustness bench: sweeps the online scaling loop over a grid of
// fault rates x allocation strategies and reports how gracefully each
// strategy degrades. Every cell runs the same seed-deterministic FaultPlan
// (actuation delay, partial scale-out, transient crashes, workload spikes,
// forecaster timeout / NaN / stale), so rows are directly comparable and
// the table reproduces bit-for-bit across runs and thread counts.
//
// Uses the SeasonalNaive forecaster: the bench measures the *scaling loop's*
// robustness under injected faults, not forecast accuracy, and the cheap
// forecaster keeps the 16-cell grid fast enough for CI-adjacent runs.
#include <cstdio>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/manager.h"
#include "core/online_loop.h"
#include "core/strategies.h"
#include "forecast/seasonal_naive.h"
#include "obs/metrics.h"
#include "simdb/faults.h"

namespace rpas::bench {
namespace {

struct StrategyCell {
  std::string name;
  std::unique_ptr<core::QuantileAllocator> allocator;
};

struct CellResult {
  std::string strategy;
  double fault_rate = 0.0;
  core::OnlineLoopResult loop;
};

std::vector<StrategyCell> MakeStrategies(double adaptive_rho) {
  std::vector<StrategyCell> cells;
  cells.push_back({"Point", std::make_unique<core::PointForecastAllocator>()});
  cells.push_back(
      {"Robust-0.75", std::make_unique<core::RobustQuantileAllocator>(0.75)});
  cells.push_back(
      {"Robust-0.9", std::make_unique<core::RobustQuantileAllocator>(0.9)});
  cells.push_back({"Adaptive",
                   std::make_unique<core::AdaptiveQuantileAllocator>(
                       0.6, 0.95, adaptive_rho)});
  return cells;
}

void RunFaultRobustness(const BenchOptions& options) {
  Dataset dataset = MakeDataset(trace::AlibabaProfile(), options.seed);
  const size_t eval_start = dataset.train.size();
  const size_t eval_steps =
      options.quick ? 2 * kStepsPerDay : dataset.test.size();

  forecast::SeasonalNaiveForecaster::Options fc_options;
  fc_options.context_length = kContext;
  fc_options.horizon = kHorizon;
  fc_options.season = kStepsPerDay;
  fc_options.levels = ScalingLevels();
  forecast::SeasonalNaiveForecaster model(fc_options);
  RPAS_CHECK(model.Fit(dataset.train).ok());

  const core::ScalingConfig config = MakeScalingConfig(dataset);

  // Calibrate the adaptive strategy's uncertainty threshold from a clean
  // probe run: rho = mean forecast uncertainty of the robust-0.9 plan, so
  // roughly half the adaptive steps land on each side of the cut.
  double adaptive_rho;
  {
    core::RobustAutoScalingManager probe(
        &model, std::make_unique<core::RobustQuantileAllocator>(0.9), config);
    core::OnlineLoopOptions loop;
    loop.cluster.node_capacity = config.theta;
    loop.cluster.initial_nodes = config.min_nodes;
    auto result = core::RunOnlineLoop(probe, dataset.full, eval_start,
                                      eval_steps, loop);
    RPAS_CHECK(result.ok());
    adaptive_rho = result->mean_uncertainty;
  }
  std::printf("[fault_robustness] adaptive rho = %s (probe mean "
              "uncertainty)\n",
              Num(adaptive_rho).c_str());
  std::fflush(stdout);

  const std::vector<double> fault_rates = {0.0, 0.05, 0.1, 0.2};
  const size_t num_strategies = MakeStrategies(adaptive_rho).size();
  const size_t cells = num_strategies * fault_rates.size();
  std::vector<CellResult> results(cells);

  RunScenarios(cells, [&](size_t i) {
    const size_t strategy_idx = i / fault_rates.size();
    const double rate = fault_rates[i % fault_rates.size()];
    // Allocators are stateless across cells but cheap; each cell builds its
    // own so the fan-out shares nothing mutable.
    StrategyCell cell = std::move(MakeStrategies(adaptive_rho)[strategy_idx]);
    core::RobustAutoScalingManager manager(&model, std::move(cell.allocator),
                                           config);
    core::OnlineLoopOptions loop;
    loop.cluster.node_capacity = config.theta;
    loop.cluster.initial_nodes = config.min_nodes;
    // Same seed for every cell: each row faces the identical fault draw
    // pattern, scaled by its rate.
    loop.faults = simdb::FaultPlan::Uniform(rate, options.seed + 7);
    auto result = core::RunOnlineLoop(manager, dataset.full, eval_start,
                                      eval_steps, loop);
    RPAS_CHECK(result.ok()) << result.status().ToString();
    results[i] = {cell.name, rate, std::move(result).value()};
    std::printf("[fault_robustness] %s @ rate %s done\n",
                results[i].strategy.c_str(), Num(rate).c_str());
    std::fflush(stdout);
  });

  TablePrinter table({"Strategy", "fault_rate", "slo_rate", "under_rate",
                      "fallbacks", "retries", "stale", "faulted_steps",
                      "node_steps"});
  for (const CellResult& r : results) {
    table.AddRow({r.strategy, Num(r.fault_rate, 3),
                  Num(r.loop.slo_violation_rate, 3),
                  Num(r.loop.under_provision_rate, 3),
                  Num(static_cast<double>(r.loop.fallback_plans)),
                  Num(static_cast<double>(r.loop.retried_plans)),
                  Num(static_cast<double>(r.loop.stale_plans)),
                  Num(static_cast<double>(r.loop.faulted_steps)),
                  Num(static_cast<double>(r.loop.total_node_steps))});
  }
  table.Print(
      "Fault robustness: graceful degradation of the online scaling loop "
      "(fault rate x strategy, identical fault seed per row)");
  if (options.csv) {
    table.PrintCsv();
  }
  std::printf(
      "\nExpected shape: slo_rate and under_rate grow with the fault rate\n"
      "for every strategy, but the loop never aborts — forecaster faults\n"
      "become retries/fallbacks/stale replays instead of errors. The robust\n"
      "and adaptive strategies hold lower under_rate than Point at every\n"
      "fault rate because their head-room also absorbs actuation delays and\n"
      "crash-induced capacity dips.\n");

  if (!options.metrics_out.empty()) {
    // Per-step decision records, one labeled run per grid cell.
    std::vector<obs::ScalingDecision> decisions;
    for (const CellResult& r : results) {
      const std::string label =
          StrFormat("%s@%s", r.strategy.c_str(), Num(r.fault_rate, 3).c_str());
      std::vector<obs::ScalingDecision> cell =
          core::CollectDecisions(r.loop, label);
      decisions.insert(decisions.end(),
                       std::make_move_iterator(cell.begin()),
                       std::make_move_iterator(cell.end()));
    }
    obs::RecordPoolStats();
    WriteRunArtifacts(options, std::move(decisions));
  }
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::BenchOptions options = rpas::bench::ParseArgs(argc, argv, "Online-loop robustness under injected fault schedules");
  rpas::bench::EnableMetricsIfRequested(options);
  rpas::bench::RunFaultRobustness(options);
  return 0;
}
