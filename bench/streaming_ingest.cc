// Streaming ingestion benchmark: refresh-mode x ingest-rate grid.
//
// Each cell streams the trace tail through a stream::IngestRing at `rate`
// points per round and keeps a fitted forecaster current with one of two
// refresh modes:
//   - batch: full Fit() on the whole history every round (the
//     pre-streaming behavior — cost tied to the window size);
//   - incremental: stream::IncrementalRefresher (recursive state updates
//     for seasonal-naive/ARIMA, bounded warm-start fine-tune for MLP) —
//     cost tied to the number of new points.
// and reports, per cell: mean refresh wall time per round, refresh
// microseconds per ingested point, point staleness at refresh time
// (arrival-to-fold delay in points: mean (rate-1)/2, max rate-1), and
// the held-out wQL of forecasts served from the refreshed state.
//
// Asserted invariant (exit 1 on violation): for every recursive-update
// model (seasonal naive, ARIMA), incremental wQL stays within 1% of the
// batch-refit wQL at every ingest rate. The MLP fine-tune rows are
// reported but unbounded — warm-started SGD and from-scratch refits are
// different estimators, and the drift guard (not a static bound) owns
// that gap in production. MLP cells run only at rates >= 16 and only
// without --quick: a per-round from-scratch refit at rate 1 is exactly
// the cost this subsystem exists to avoid.
//
// --json=PATH writes a machine-readable summary for the CI smoke step.
// Timing columns are reported for humans; CI asserts only the schema and
// the wQL bounds, never timings.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "forecast/seasonal_naive.h"
#include "obs/metrics.h"
#include "stream/refresher.h"
#include "stream/ring.h"
#include "trace/generator.h"
#include "ts/metrics.h"

namespace rpas::bench {
namespace {

constexpr size_t kStreamContext = 288;  // 2 days of 10-minute samples
constexpr size_t kStreamHorizon = 36;
constexpr uint64_t kEvalSeedBase = 0x57E4;

enum class Mode { kBatch, kIncremental };

const char* ModeName(Mode mode) {
  return mode == Mode::kBatch ? "batch" : "incremental";
}

struct CellResult {
  std::string model;
  Mode mode = Mode::kBatch;
  size_t rate = 0;
  size_t rounds = 0;
  size_t points = 0;
  double mean_refresh_ms = 0.0;
  double total_refresh_ms = 0.0;
  double us_per_point = 0.0;
  double mean_staleness = 0.0;
  uint64_t max_staleness = 0;
  double wql = 0.0;
};

struct ModelSpec {
  std::string name;
  bool recursive = false;  ///< recursive state path (wQL bound applies)
  size_t min_rate = 1;     ///< skip cells below this ingest rate
  bool quick_ok = true;
  size_t context = kStreamContext;  ///< ForecastInput context length
  std::function<std::unique_ptr<forecast::Forecaster>()> make;
};

std::vector<ModelSpec> MakeModelSpecs(const BenchOptions& options) {
  std::vector<ModelSpec> specs;
  specs.push_back(
      {"seasonal_naive", /*recursive=*/true, /*min_rate=*/1,
       /*quick_ok=*/true, kStreamContext, [] {
         forecast::SeasonalNaiveForecaster::Options o;
         o.context_length = kStreamContext;
         o.horizon = kStreamHorizon;
         o.season = kStepsPerDay;
         return std::make_unique<forecast::SeasonalNaiveForecaster>(o);
       }});
  specs.push_back(
      {"arima", /*recursive=*/true, /*min_rate=*/1, /*quick_ok=*/true,
       kStreamContext, [] {
         forecast::ArimaForecaster::Options o;
         o.p = 2;
         o.q = 1;
         o.d = 0;
         o.seasonal_d = 1;
         o.season = kStepsPerDay;
         o.context_length = kStreamContext;
         o.horizon = kStreamHorizon;
         return std::make_unique<forecast::ArimaForecaster>(o);
       }});
  const bool quick = options.quick;
  specs.push_back(
      {"mlp", /*recursive=*/false, /*min_rate=*/16, /*quick_ok=*/false,
       /*context=*/72, [quick] {
         forecast::MlpForecaster::Options o;
         o.context_length = 72;
         o.horizon = kStreamHorizon;
         o.hidden_dim = 32;
         o.num_hidden_layers = 1;
         o.batch_size = 16;
         o.train.steps = quick ? 30 : 60;
         o.train.lr = 1e-3;
         o.fine_tune_steps = 8;
         return std::make_unique<forecast::MlpForecaster>(o);
       }});
  // DeepAR fine-tune rows: warm-start gradient steps against per-round
  // from-scratch refits, the autoregressive counterpart of the MLP rows.
  // Sized small enough (hidden 16, short training) to run under --quick at
  // rate >= 8, so the CI smoke always sees a deepar row with a wQL column.
  specs.push_back(
      {"deepar", /*recursive=*/false, /*min_rate=*/8, /*quick_ok=*/true,
       /*context=*/72, [quick] {
         forecast::DeepArForecaster::Options o;
         o.context_length = 72;
         o.horizon = kStreamHorizon;
         o.hidden_dim = 16;
         o.batch_size = 4;
         o.num_samples = 24;
         o.train.steps = quick ? 15 : 40;
         o.train.lr = 1e-3;
         o.fine_tune_steps = 6;
         return std::make_unique<forecast::DeepArForecaster>(o);
       }});
  return specs;
}

/// Streams `stream_steps` tail points at `rate` points per round and keeps
/// `model` current in the given mode; forecasts from the refreshed state on
/// a fixed round stride feed the wQL column.
CellResult RunCell(const ModelSpec& spec, Mode mode, size_t rate,
                   const ts::TimeSeries& series, size_t train_end,
                   size_t stream_steps) {
  std::unique_ptr<forecast::Forecaster> model = spec.make();
  RPAS_CHECK(model->Fit(series.Slice(0, train_end)).ok());

  stream::RefresherOptions refresher_options;
  refresher_options.drift_window = 0;  // guard off: measure the pure modes
  stream::IncrementalRefresher refresher(model.get(), refresher_options);
  if (mode == Mode::kIncremental) {
    RPAS_CHECK(refresher.Prime(series.Slice(0, train_end)).ok());
  }

  stream::IngestRing ring(std::max<size_t>(2 * rate, 8));
  stream::StreamCursor cursor(&ring);
  std::vector<double> drained;

  const size_t rounds = stream_steps / rate;
  const size_t forecast_stride = std::max<size_t>(1, rounds / 16);

  CellResult cell;
  cell.model = spec.name;
  cell.mode = mode;
  cell.rate = rate;
  cell.rounds = rounds;

  std::vector<ts::QuantileForecast> forecasts;
  std::vector<std::vector<double>> actuals;
  uint64_t staleness_sum = 0;
  size_t consumed = 0;
  for (size_t round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < rate; ++i) {
      ring.Push(series.values[train_end + consumed + i]);
    }
    drained.clear();
    const stream::StreamCursor::Batch batch = cursor.Poll(&drained);
    RPAS_CHECK(batch.count == rate && batch.missed == 0)
        << "ring sized for drop-free per-round drains";
    // Staleness of the j-th drained point: how many points arrived after
    // it before this refresh folded it in.
    for (size_t j = 0; j < rate; ++j) {
      staleness_sum += rate - 1 - j;
    }
    cell.max_staleness = std::max(cell.max_staleness,
                                  static_cast<uint64_t>(rate - 1));
    consumed += rate;
    const ts::TimeSeries history = series.Slice(0, train_end + consumed);

    cell.total_refresh_ms += TimedMillis("stream.refresh", 1, [&] {
      if (mode == Mode::kIncremental) {
        auto outcome = refresher.Refresh(history, batch.count, batch.missed);
        RPAS_CHECK(outcome.ok()) << outcome.status().ToString();
      } else {
        // Batch mode refits on the same full history the incremental
        // state covers, so the wQL columns compare like with like and the
        // cost scales with the window, not with the new points.
        RPAS_CHECK(model->Fit(history).ok());
      }
    });

    // Serve a forecast from the refreshed state on a fixed stride (same
    // rounds and seeds in both modes, so the wQL columns are comparable).
    const size_t at = train_end + consumed;
    if (round % forecast_stride == 0 &&
        at + kStreamHorizon <= series.size()) {
      forecast::ForecastInput input;
      input.start_index = at;
      input.step_minutes = series.step_minutes;
      input.context.assign(
          series.values.begin() + static_cast<long>(at - spec.context),
          series.values.begin() + static_cast<long>(at));
      auto forecast =
          model->PredictSeeded(input, kEvalSeedBase + forecasts.size());
      RPAS_CHECK(forecast.ok()) << forecast.status().ToString();
      forecasts.push_back(std::move(*forecast));
      actuals.emplace_back(
          series.values.begin() + static_cast<long>(at),
          series.values.begin() + static_cast<long>(at + kStreamHorizon));
    }
  }

  cell.points = consumed;
  cell.mean_refresh_ms = cell.total_refresh_ms / static_cast<double>(rounds);
  cell.us_per_point =
      1000.0 * cell.total_refresh_ms / static_cast<double>(consumed);
  cell.mean_staleness =
      static_cast<double>(staleness_sum) / static_cast<double>(consumed);
  RPAS_CHECK(!forecasts.empty());
  cell.wql =
      ts::EvaluateForecasts(forecasts, actuals, model->Levels()).mean_wql;
  return cell;
}

struct PairResult {
  std::string model;
  size_t rate = 0;
  double wql_batch = 0.0;
  double wql_incremental = 0.0;
  double wql_delta_pct = 0.0;
  bool bounded = false;  ///< the 1% acceptance bound applies to this pair
  bool ok = true;
};

void WriteJson(const std::string& path, const BenchOptions& options,
               const std::vector<CellResult>& cells,
               const std::vector<PairResult>& pairs, bool bounds_ok) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "streaming_ingest: cannot write %s\n", path.c_str());
    return;
  }
  out << StrFormat("{\"bench\":\"streaming_ingest\",\"quick\":%s,\"rows\":[",
                   options.quick ? "true" : "false");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << (i > 0 ? "," : "")
        << StrFormat(
               "{\"model\":\"%s\",\"mode\":\"%s\",\"rate\":%zu,"
               "\"rounds\":%zu,\"points\":%zu,\"mean_refresh_ms\":%.5f,"
               "\"us_per_point\":%.3f,\"mean_staleness\":%.3f,"
               "\"max_staleness\":%llu,\"wql\":%.6f}",
               c.model.c_str(), ModeName(c.mode), c.rate, c.rounds, c.points,
               c.mean_refresh_ms, c.us_per_point, c.mean_staleness,
               static_cast<unsigned long long>(c.max_staleness), c.wql);
  }
  out << "],\"pairs\":[";
  for (size_t i = 0; i < pairs.size(); ++i) {
    const PairResult& p = pairs[i];
    out << (i > 0 ? "," : "")
        << StrFormat("{\"model\":\"%s\",\"rate\":%zu,\"wql_batch\":%.6f,"
                     "\"wql_incremental\":%.6f,\"wql_delta_pct\":%.4f,"
                     "\"bounded\":%s,\"bounds_ok\":%s}",
                     p.model.c_str(), p.rate, p.wql_batch, p.wql_incremental,
                     p.wql_delta_pct, p.bounded ? "true" : "false",
                     p.ok ? "true" : "false");
  }
  out << StrFormat("],\"bounds_ok\":%s}\n", bounds_ok ? "true" : "false");
}

int RunStreamingIngest(const BenchOptions& options,
                       const std::string& json_path) {
  trace::SyntheticTraceGenerator generator(trace::AlibabaProfile(),
                                           options.seed);
  // The full grid trains on a 3-week prefix: the recursive models keep
  // their coefficients frozen across the streamed tail, so the tail must
  // stay a modest fraction of what the coefficients were estimated on for
  // the 1% wQL bound to be a fair ask.
  const size_t total_days = options.quick ? 10 : 21;
  const ts::TimeSeries series =
      generator.GenerateCpu(total_days * kStepsPerDay);
  const size_t stream_steps =
      (options.quick ? 2 : 4) * kStepsPerDay;  // trailing horizon stays
  const size_t train_end = series.size() - stream_steps - kStreamHorizon;

  std::vector<size_t> rates = options.quick
                                  ? std::vector<size_t>{1, 8}
                                  : std::vector<size_t>{1, 4, 16, 64};

  TablePrinter table({"model", "mode", "rate", "rounds", "refresh_ms",
                      "us/point", "stale_mean", "stale_max", "wQL"});
  std::vector<CellResult> cells;
  std::vector<PairResult> pairs;
  bool bounds_ok = true;
  for (const ModelSpec& spec : MakeModelSpecs(options)) {
    if (options.quick && !spec.quick_ok) {
      std::printf("streaming_ingest: skipping %s under --quick\n",
                  spec.name.c_str());
      continue;
    }
    for (size_t rate : rates) {
      if (rate < spec.min_rate) {
        std::printf("streaming_ingest: skipping %s at rate %zu "
                    "(per-round refits below rate %zu are the cost this "
                    "subsystem avoids)\n",
                    spec.name.c_str(), rate, spec.min_rate);
        continue;
      }
      PairResult pair;
      pair.model = spec.name;
      pair.rate = rate;
      pair.bounded = spec.recursive;
      for (Mode mode : {Mode::kBatch, Mode::kIncremental}) {
        CellResult cell =
            RunCell(spec, mode, rate, series, train_end, stream_steps);
        table.AddRow({cell.model, ModeName(cell.mode),
                      StrFormat("%zu", cell.rate),
                      StrFormat("%zu", cell.rounds),
                      Num(cell.mean_refresh_ms), Num(cell.us_per_point),
                      Num(cell.mean_staleness),
                      StrFormat("%llu", static_cast<unsigned long long>(
                                            cell.max_staleness)),
                      Num(cell.wql, 6)});
        (mode == Mode::kBatch ? pair.wql_batch : pair.wql_incremental) =
            cell.wql;
        cells.push_back(std::move(cell));
      }
      pair.wql_delta_pct =
          pair.wql_batch > 0.0
              ? 100.0 * std::fabs(pair.wql_incremental - pair.wql_batch) /
                    pair.wql_batch
              : 0.0;
      if (pair.bounded && pair.wql_delta_pct > 1.0) {
        pair.ok = false;
        bounds_ok = false;
        std::fprintf(stderr,
                     "BOUND VIOLATION: %s rate %zu incremental wQL delta "
                     "%.4f%% > 1%%\n",
                     pair.model.c_str(), pair.rate, pair.wql_delta_pct);
      }
      pairs.push_back(std::move(pair));
    }
  }

  table.Print("Streaming ingest: refresh cost and staleness by mode x rate");
  if (options.csv) {
    table.PrintCsv();
  }
  if (!json_path.empty()) {
    WriteJson(json_path, options, cells, pairs, bounds_ok);
  }
  WriteRunArtifacts(options);
  if (!bounds_ok) {
    std::fprintf(stderr, "streaming_ingest: wQL bounds violated\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  std::string json_path;
  const rpas::bench::BenchOptions options = rpas::bench::ParseArgs(
      argc, argv,
      "Streaming ingest: refresh-mode x ingest-rate grid (refresh cost, "
      "staleness, wQL vs batch refits)",
      {{"--json=", "write a machine-readable summary to PATH",
        [&json_path](const std::string& value) { json_path = value; }}});
  rpas::bench::EnableMetricsIfRequested(options);
  return rpas::bench::RunStreamingIngest(options, json_path);
}
