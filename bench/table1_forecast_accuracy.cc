// Reproduces paper Table I: "Performance Comparison of Different Models
// with a Context Length of 72 Steps and Prediction Length of 72 Steps" —
// mean_wQL, wQL and Coverage at {0.7, 0.8, 0.9}, and MSE for ARIMA / MLP /
// DeepAR / TFT on the Alibaba-like and Google-like traces, averaged over 3
// training runs (1 with --quick).
//
// Expected shape (paper): TFT best on every metric, DeepAR second, ARIMA
// and MLP an order of magnitude worse, with ARIMA over-covering (coverage
// well above the nominal level) thanks to very wide Gaussian intervals.
#include <cstdio>
#include <functional>
#include <map>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "forecast/forecaster.h"
#include "ts/metrics.h"

namespace rpas::bench {
namespace {

struct ModelSpec {
  std::string name;
  // run index -> freshly built model
  std::function<std::unique_ptr<forecast::Forecaster>(int run)> make;
  bool stochastic = true;  // deterministic models get a single run
};

// One (dataset, model, run) cell of the Table I grid; cells are
// independent, so the scenario runner can evaluate them concurrently.
struct GridCell {
  size_t dataset = 0;
  size_t spec = 0;
  int run = 0;
};

void RunTable1(const BenchOptions& options) {
  const int runs = options.quick ? 1 : 3;
  const std::vector<double> levels = AccuracyLevels();
  const std::vector<double> report_levels = {0.7, 0.8, 0.9};

  std::vector<ModelSpec> specs;
  specs.push_back({"ARIMA",
                   [&](int) { return MakeArima(kHorizon, levels); },
                   /*stochastic=*/false});
  specs.push_back({"MLP", [&](int run) {
                     return MakeMlp(kHorizon, levels, options.quick, run);
                   }});
  specs.push_back({"DeepAR", [&](int run) {
                     return MakeDeepAr(kHorizon, levels, options.quick, run);
                   }});
  specs.push_back({"TFT", [&](int run) {
                     return MakeTft(kHorizon, levels, options.quick, run);
                   }});

  const std::vector<Dataset> datasets = MakeBothDatasets(options.seed);
  std::vector<GridCell> cells;
  for (size_t d = 0; d < datasets.size(); ++d) {
    for (size_t s = 0; s < specs.size(); ++s) {
      const int model_runs = specs[s].stochastic ? runs : 1;
      for (int run = 0; run < model_runs; ++run) {
        cells.push_back({d, s, run});
      }
    }
  }

  // Every cell trains a fresh model from its fixed run seed and writes only
  // its own report slot, so the fan-out is deterministic: the aggregation
  // below reads the slots in grid order regardless of RPAS_NUM_THREADS.
  std::vector<ts::AccuracyReport> reports(cells.size());
  RunScenarios(cells.size(), [&](size_t i) {
    const GridCell& cell = cells[i];
    const Dataset& dataset = datasets[cell.dataset];
    const ModelSpec& spec = specs[cell.spec];
    auto model = spec.make(cell.run);
    RPAS_CHECK(model->Fit(dataset.train).ok())
        << spec.name << " fit failed on " << dataset.name;
    auto rolled = forecast::RollForecasts(*model, dataset.train,
                                          dataset.test, kHorizon);
    RPAS_CHECK(rolled.ok()) << rolled.status().ToString();
    reports[i] = ts::EvaluateForecasts(rolled->forecasts, rolled->actuals,
                                       levels);
    std::printf("[table1] %s / %s run %d done\n", dataset.name.c_str(),
                spec.name.c_str(), cell.run);
    std::fflush(stdout);
  });

  TablePrinter table({"Dataset", "Model", "mean_wQL", "wQL[0.7]", "wQL[0.8]",
                      "wQL[0.9]", "Cov[0.7]", "Cov[0.8]", "Cov[0.9]",
                      "MSE"});

  size_t cell_index = 0;
  for (const Dataset& dataset : datasets) {
    for (const ModelSpec& spec : specs) {
      const int model_runs = spec.stochastic ? runs : 1;
      double mean_wql = 0.0;
      std::map<double, double> wql{{0.7, 0.0}, {0.8, 0.0}, {0.9, 0.0}};
      std::map<double, double> cov = wql;
      double mse = 0.0;
      for (int run = 0; run < model_runs; ++run) {
        const ts::AccuracyReport& report = reports[cell_index++];
        mean_wql += report.mean_wql;
        for (double tau : report_levels) {
          wql.at(tau) += report.wql.at(tau);
          cov.at(tau) += report.coverage.at(tau);
        }
        mse += report.mse;
      }
      const double inv = 1.0 / static_cast<double>(model_runs);
      table.AddRow({dataset.name, spec.name, Num(mean_wql * inv),
                    Num(wql[0.7] * inv), Num(wql[0.8] * inv),
                    Num(wql[0.9] * inv), Num(cov[0.7] * inv, 3),
                    Num(cov[0.8] * inv, 3), Num(cov[0.9] * inv, 3),
                    Num(mse * inv)});
    }
  }

  table.Print(
      "Table I: forecasting accuracy, context 72 / horizon 72"
      " (averaged over runs)");
  if (options.csv) {
    table.PrintCsv();
  }
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::RunTable1(rpas::bench::ParseArgs(argc, argv, "Table I: probabilistic forecast accuracy across models and traces"));
  return 0;
}
