// Reproduces paper Fig. 6: "The correlation between the level of
// uncertainty indicated by quantile forecasts and forecasting accuracy" —
// per-step U (Eq. 8) alongside the MSE of the mean forecast and the
// quantile loss over sampled forecasting horizons.
//
// A single step's squared error is an extremely noisy estimate of the local
// difficulty, so in addition to raw per-step correlations we report the two
// aggregate views that make the paper's trend visible:
//   * per horizon position (averaged across evaluation windows), and
//   * by uncertainty decile (mean error within each U bin).
// Expected shape (paper): higher uncertainty accompanies less accurate
// predictions — increasing error across U deciles and positive aggregate
// correlations.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "core/uncertainty.h"
#include "forecast/forecaster.h"
#include "ts/metrics.h"

namespace rpas::bench {
namespace {

void RunFig6(const BenchOptions& options) {
  // TFT on the Google-like trace: quantile grids with meaningful spread on
  // a heteroskedastic workload.
  Dataset dataset = MakeDataset(trace::GoogleProfile(), options.seed + 1);
  auto model = MakeTft(kHorizon, AccuracyLevels(), options.quick, /*run=*/0);
  RPAS_CHECK(model->Fit(dataset.train).ok());
  // Stride of half a horizon doubles the number of windows per step
  // position without leaking training data.
  auto rolled = forecast::RollForecasts(*model, dataset.train, dataset.test,
                                        kHorizon / 2);
  RPAS_CHECK(rolled.ok()) << rolled.status().ToString();
  const size_t windows = rolled->forecasts.size();

  std::vector<double> all_u;
  std::vector<double> all_se;
  std::vector<double> all_ql;
  std::vector<double> pos_u(kHorizon, 0.0);
  std::vector<double> pos_se(kHorizon, 0.0);
  std::vector<double> pos_ql(kHorizon, 0.0);
  for (size_t w = 0; w < windows; ++w) {
    const auto& fc = rolled->forecasts[w];
    const auto& actual = rolled->actuals[w];
    const auto u = core::QuantileUncertaintyPerStep(fc);
    const auto se = ts::PerStepSquaredError(fc, actual);
    const auto ql = ts::PerStepQuantileLoss(fc, actual);
    for (size_t h = 0; h < kHorizon; ++h) {
      all_u.push_back(u[h]);
      all_se.push_back(se[h]);
      all_ql.push_back(ql[h]);
      pos_u[h] += u[h];
      pos_se[h] += se[h];
      pos_ql[h] += ql[h];
    }
  }
  for (size_t h = 0; h < kHorizon; ++h) {
    pos_u[h] /= static_cast<double>(windows);
    pos_se[h] /= static_cast<double>(windows);
    pos_ql[h] /= static_cast<double>(windows);
  }

  // --- View 1: sampled per-position series (the figure's x-axis). ---
  TablePrinter series({"step", "mean_U", "mean_sq_error", "mean_qloss"});
  for (size_t h = 0; h < kHorizon; h += options.quick ? 12 : 6) {
    series.AddRow({Num(static_cast<double>(h), 3), Num(pos_u[h]),
                   Num(pos_se[h]), Num(pos_ql[h])});
  }
  series.Print(
      "Fig. 6: per-horizon-position uncertainty vs accuracy (mean over " +
      Num(static_cast<double>(windows), 3) + " windows)");
  if (options.csv) {
    series.PrintCsv();
  }

  // --- View 2: error by uncertainty decile. ---
  std::vector<size_t> order(all_u.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return all_u[a] < all_u[b]; });
  TablePrinter bins({"U_decile", "mean_U", "mean_sq_error", "mean_qloss"});
  const size_t per_bin = order.size() / 10;
  for (int d = 0; d < 10; ++d) {
    double bu = 0.0;
    double bse = 0.0;
    double bql = 0.0;
    for (size_t i = static_cast<size_t>(d) * per_bin;
         i < static_cast<size_t>(d + 1) * per_bin; ++i) {
      bu += all_u[order[i]];
      bse += all_se[order[i]];
      bql += all_ql[order[i]];
    }
    const double inv = 1.0 / static_cast<double>(per_bin);
    bins.AddRow({Num(static_cast<double>(d + 1), 2), Num(bu * inv),
                 Num(bse * inv), Num(bql * inv)});
  }
  bins.Print("Fig. 6: accuracy by uncertainty decile");
  if (options.csv) {
    bins.PrintCsv();
  }

  std::printf("\nPearson correlations:\n");
  std::printf("  per-step      corr(U, sq_error) = %6.3f   corr(U, qloss) = %6.3f\n",
              ts::PearsonCorrelation(all_u, all_se),
              ts::PearsonCorrelation(all_u, all_ql));
  std::printf("  per-position  corr(U, sq_error) = %6.3f   corr(U, qloss) = %6.3f\n",
              ts::PearsonCorrelation(pos_u, pos_se),
              ts::PearsonCorrelation(pos_u, pos_ql));
  std::printf(
      "Expected shape (paper): positive — higher forecast uncertainty\n"
      "accompanies less accurate predictions.\n");
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::RunFig6(rpas::bench::ParseArgs(argc, argv, "Fig. 6: forecast uncertainty vs realized error correlation"));
  return 0;
}
