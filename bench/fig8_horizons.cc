// Reproduces paper Fig. 8: "Forecasting Horizons Evaluation" — mean_wQL of
// each model for prediction lengths of 10 minutes, 1 hour, 2 hours, 6 hours
// and 12 hours (1, 6, 12, 36, 72 steps) at a fixed 12-hour context.
//
// Expected shape (paper): DeepAR and TFT beat ARIMA/MLP at every horizon;
// DeepAR is strongest at very short horizons (it is a one-step model
// applied iteratively) and degrades as iterative errors accumulate, while
// TFT's hyperparameters favour long horizons.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "forecast/forecaster.h"
#include "ts/metrics.h"

namespace rpas::bench {
namespace {

void RunFig8(const BenchOptions& options) {
  const std::vector<size_t> horizons = {1, 6, 12, 36, 72};
  const std::vector<double> levels = AccuracyLevels();

  Dataset dataset = MakeDataset(trace::AlibabaProfile(), options.seed);

  TablePrinter table({"horizon_steps", "ARIMA", "MLP", "DeepAR", "TFT"});
  for (size_t horizon : horizons) {
    std::vector<std::string> row = {Num(static_cast<double>(horizon), 3)};
    struct Spec {
      std::string name;
      std::unique_ptr<forecast::Forecaster> model;
    };
    std::vector<Spec> specs;
    specs.push_back({"ARIMA", MakeArima(horizon, levels)});
    specs.push_back({"MLP", MakeMlp(horizon, levels, options.quick, 0)});
    specs.push_back(
        {"DeepAR", MakeDeepAr(horizon, levels, options.quick, 0)});
    specs.push_back({"TFT", MakeTft(horizon, levels, options.quick, 0)});
    for (Spec& spec : specs) {
      RPAS_CHECK(spec.model->Fit(dataset.train).ok())
          << spec.name << " fit failed at horizon " << horizon;
      // Stride chosen so every horizon scores a comparable number of
      // points without rolling thousands of windows at horizon 1.
      const size_t stride = horizon >= 12 ? horizon : 12;
      auto rolled = forecast::RollForecasts(*spec.model, dataset.train,
                                            dataset.test, stride);
      RPAS_CHECK(rolled.ok()) << rolled.status().ToString();
      auto report =
          ts::EvaluateForecasts(rolled->forecasts, rolled->actuals, levels);
      row.push_back(Num(report.mean_wql));
    }
    table.AddRow(std::move(row));
    std::printf("[fig8] horizon %zu done\n", horizon);
    std::fflush(stdout);
  }
  table.Print("Fig. 8: mean_wQL vs prediction horizon (context 72 steps)");
  if (options.csv) {
    table.PrintCsv();
  }
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::RunFig8(rpas::bench::ParseArgs(argc, argv));
  return 0;
}
