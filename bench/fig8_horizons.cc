// Reproduces paper Fig. 8: "Forecasting Horizons Evaluation" — mean_wQL of
// each model for prediction lengths of 10 minutes, 1 hour, 2 hours, 6 hours
// and 12 hours (1, 6, 12, 36, 72 steps) at a fixed 12-hour context.
//
// Expected shape (paper): DeepAR and TFT beat ARIMA/MLP at every horizon;
// DeepAR is strongest at very short horizons (it is a one-step model
// applied iteratively) and degrades as iterative errors accumulate, while
// TFT's hyperparameters favour long horizons.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "forecast/forecaster.h"
#include "ts/metrics.h"

namespace rpas::bench {
namespace {

void RunFig8(const BenchOptions& options) {
  const std::vector<size_t> horizons = {1, 6, 12, 36, 72};
  const std::vector<std::string> models = {"ARIMA", "MLP", "DeepAR", "TFT"};
  const std::vector<double> levels = AccuracyLevels();

  const Dataset dataset = MakeDataset(trace::AlibabaProfile(), options.seed);

  // Flat horizon x model grid fanned across the thread pool; every cell
  // builds and trains its own model and writes only its own wQL slot, so
  // the table is identical at every RPAS_NUM_THREADS.
  std::vector<double> wql(horizons.size() * models.size(), 0.0);
  RunScenarios(wql.size(), [&](size_t i) {
    const size_t horizon = horizons[i / models.size()];
    const size_t model_index = i % models.size();
    std::unique_ptr<forecast::Forecaster> model;
    switch (model_index) {
      case 0: model = MakeArima(horizon, levels); break;
      case 1: model = MakeMlp(horizon, levels, options.quick, 0); break;
      case 2: model = MakeDeepAr(horizon, levels, options.quick, 0); break;
      default: model = MakeTft(horizon, levels, options.quick, 0); break;
    }
    RPAS_CHECK(model->Fit(dataset.train).ok())
        << models[model_index] << " fit failed at horizon " << horizon;
    // Stride chosen so every horizon scores a comparable number of
    // points without rolling thousands of windows at horizon 1.
    const size_t stride = horizon >= 12 ? horizon : 12;
    auto rolled = forecast::RollForecasts(*model, dataset.train,
                                          dataset.test, stride);
    RPAS_CHECK(rolled.ok()) << rolled.status().ToString();
    auto report =
        ts::EvaluateForecasts(rolled->forecasts, rolled->actuals, levels);
    wql[i] = report.mean_wql;
    std::printf("[fig8] horizon %zu / %s done\n", horizon,
                models[model_index].c_str());
    std::fflush(stdout);
  });

  TablePrinter table({"horizon_steps", "ARIMA", "MLP", "DeepAR", "TFT"});
  for (size_t h = 0; h < horizons.size(); ++h) {
    std::vector<std::string> row = {
        Num(static_cast<double>(horizons[h]), 3)};
    for (size_t m = 0; m < models.size(); ++m) {
      row.push_back(Num(wql[h * models.size() + m]));
    }
    table.AddRow(std::move(row));
  }
  table.Print("Fig. 8: mean_wQL vs prediction horizon (context 72 steps)");
  if (options.csv) {
    table.PrintCsv();
  }
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::RunFig8(rpas::bench::ParseArgs(argc, argv, "Fig. 8: accuracy degradation across forecast horizons"));
  return 0;
}
