// Reproduces paper Fig. 11: "Evaluation of Adaptive Approach" — heatmaps of
// under- and over-provisioning rates for every combination (tau1, tau2),
// tau1 < tau2, of two optional quantile levels driving the
// uncertainty-aware adaptive strategy (Algorithm 1), for both DeepAR and
// TFT. Diagonal entries are the basic fixed-quantile strategy.
//
// Expected shape (paper): relative to the conservative fixed level
// (tau2, tau2), the adaptive combination (tau1, tau2) reduces
// over-provisioning without increasing under-provisioning.
//
// The uncertainty threshold rho is calibrated per model as the median
// per-step U observed on a calibration slice of the training data (the
// paper selects rho from historical data, §III-C2).
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "core/evaluator.h"
#include "core/strategies.h"
#include "core/uncertainty.h"

namespace rpas::bench {
namespace {

/// Median per-step uncertainty over forecasts rolled on the tail of the
/// training series (historical calibration of rho, paper §III-C2).
double CalibrateRho(const forecast::Forecaster& model,
                    const Dataset& dataset) {
  const size_t calib_steps = 2 * kStepsPerDay;
  ts::TimeSeries head = dataset.train.Slice(
      0, dataset.train.size() - calib_steps);
  ts::TimeSeries calib = dataset.train.Slice(
      dataset.train.size() - calib_steps, dataset.train.size());
  auto rolled = forecast::RollForecasts(model, head, calib, kHorizon);
  RPAS_CHECK(rolled.ok()) << rolled.status().ToString();
  std::vector<double> all_u;
  for (const auto& fc : rolled->forecasts) {
    const auto u = core::QuantileUncertaintyPerStep(fc);
    all_u.insert(all_u.end(), u.begin(), u.end());
  }
  std::sort(all_u.begin(), all_u.end());
  return all_u[all_u.size() / 2];
}

void RunFig11(const BenchOptions& options) {
  Dataset dataset = MakeDataset(trace::AlibabaProfile(), options.seed);
  const core::ScalingConfig config = MakeScalingConfig(dataset);
  const size_t eval_start = dataset.train.size();
  const size_t eval_steps = dataset.test.size();
  const std::vector<double> realized(
      dataset.full.values.begin() + static_cast<long>(eval_start),
      dataset.full.values.end());

  struct Entry {
    std::string name;
    std::unique_ptr<forecast::Forecaster> model;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"DeepAR", MakeDeepAr(kHorizon, ScalingLevels(), options.quick, 0)});
  entries.push_back(
      {"TFT", MakeTft(kHorizon, ScalingLevels(), options.quick, 0)});

  const std::vector<double> levels = ScalingLevels();
  for (Entry& entry : entries) {
    RPAS_CHECK(entry.model->Fit(dataset.train).ok());
    const double rho = CalibrateRho(*entry.model, dataset);
    std::printf("[fig11] %s calibrated rho = %s\n", entry.name.c_str(),
                Num(rho).c_str());

    TablePrinter under({"tau1\\tau2", "0.5", "0.6", "0.7", "0.8", "0.9",
                        "0.95", "0.99"});
    TablePrinter over = under;
    for (double tau1 : levels) {
      std::vector<std::string> under_row = {Num(tau1, 3)};
      std::vector<std::string> over_row = {Num(tau1, 3)};
      for (double tau2 : levels) {
        if (tau2 < tau1) {
          under_row.push_back("-");
          over_row.push_back("-");
          continue;
        }
        Result<std::vector<int>> alloc = [&]() {
          if (tau1 == tau2) {
            core::RobustQuantileAllocator fixed(tau1);
            return core::RunPredictiveStrategy(*entry.model, fixed,
                                               dataset.full, eval_start,
                                               eval_steps, config);
          }
          core::AdaptiveQuantileAllocator adaptive(tau1, tau2, rho);
          return core::RunPredictiveStrategy(*entry.model, adaptive,
                                             dataset.full, eval_start,
                                             eval_steps, config);
        }();
        RPAS_CHECK(alloc.ok()) << alloc.status().ToString();
        const auto report =
            core::EvaluateAllocation(realized, *alloc, config);
        under_row.push_back(Num(report.under_provision_rate, 3));
        over_row.push_back(Num(report.over_provision_rate, 3));
      }
      under.AddRow(std::move(under_row));
      over.AddRow(std::move(over_row));
    }
    under.Print("Fig. 11 (" + entry.name +
                "): UNDER-provisioning rate per (tau1, tau2); diagonal = "
                "fixed quantile");
    over.Print("Fig. 11 (" + entry.name +
               "): OVER-provisioning rate per (tau1, tau2); diagonal = "
               "fixed quantile");
    if (options.csv) {
      under.PrintCsv();
      over.PrintCsv();
    }
  }
}

}  // namespace
}  // namespace rpas::bench

int main(int argc, char** argv) {
  rpas::bench::RunFig11(rpas::bench::ParseArgs(argc, argv, "Fig. 11: adaptive allocator level/threshold heatmap"));
  return 0;
}
