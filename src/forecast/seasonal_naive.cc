#include "forecast/seasonal_naive.h"

#include <cmath>

#include "common/logging.h"
#include "dist/special.h"

namespace rpas::forecast {

SeasonalNaiveForecaster::SeasonalNaiveForecaster(Options options)
    : options_(std::move(options)) {
  RPAS_CHECK(options_.context_length > 0 && options_.horizon > 0);
  RPAS_CHECK(options_.season > 0);
  if (options_.levels.empty()) {
    options_.levels = DefaultQuantileLevels();
  }
}

Status SeasonalNaiveForecaster::Fit(const ts::TimeSeries& train) {
  if (train.size() <= options_.season) {
    return Status::InvalidArgument(
        "SeasonalNaive: training series shorter than one season");
  }
  double ss = 0.0;
  size_t n = 0;
  for (size_t t = options_.season; t < train.size(); ++t) {
    const double diff = train.values[t] - train.values[t - options_.season];
    ss += diff * diff;
    ++n;
  }
  residual_stddev_ = std::max(std::sqrt(ss / static_cast<double>(n)), 1e-9);
  fitted_ = true;
  return Status::OK();
}

Result<ts::QuantileForecast> SeasonalNaiveForecaster::Predict(
    const ForecastInput& input) const {
  if (!fitted_) {
    return Status::FailedPrecondition("SeasonalNaive: Fit() not called");
  }
  if (input.context.empty()) {
    return Status::InvalidArgument("SeasonalNaive: empty context");
  }
  const size_t n = input.context.size();
  std::vector<std::vector<double>> values(options_.horizon);
  for (size_t step = 0; step < options_.horizon; ++step) {
    // Index of the same phase one season earlier, counted from the context
    // end; fall back to the last observation when out of range.
    double point = input.context.back();
    const size_t steps_back = options_.season;
    const size_t offset = (step % options_.season);
    if (steps_back <= n && offset < steps_back) {
      const size_t idx = n - steps_back + offset;
      if (idx < n) {
        point = input.context[idx];
      }
    }
    values[step].reserve(options_.levels.size());
    for (double tau : options_.levels) {
      values[step].push_back(point +
                             residual_stddev_ * dist::NormalQuantile(tau));
    }
  }
  return ts::QuantileForecast(options_.levels, std::move(values));
}

}  // namespace rpas::forecast
