#include "forecast/seasonal_naive.h"

#include <cmath>

#include "common/logging.h"
#include "dist/special.h"

namespace rpas::forecast {

SeasonalNaiveForecaster::SeasonalNaiveForecaster(Options options)
    : options_(std::move(options)),
      state_(options_.season) {  // the accumulator checks season > 0
  RPAS_CHECK(options_.context_length > 0 && options_.horizon > 0);
  if (options_.levels.empty()) {
    options_.levels = DefaultQuantileLevels();
  }
}

Status SeasonalNaiveForecaster::Fit(const ts::TimeSeries& train) {
  if (train.size() <= options_.season) {
    return Status::InvalidArgument(
        "SeasonalNaive: training series shorter than one season");
  }
  // Stream the series through the seasonal accumulator: the per-point
  // arithmetic (diff, square, left-to-right sum) matches the former batch
  // loop term by term, so the result is bit-identical — and the same state
  // then serves IncrementalUpdate.
  state_.Reset();
  for (double v : train.values) {
    state_.Push(v);
  }
  residual_stddev_ = state_.Stddev();
  fitted_ = true;
  return Status::OK();
}

Result<Forecaster::IncrementalUpdateReport>
SeasonalNaiveForecaster::IncrementalUpdate(const ts::TimeSeries& history,
                                           size_t new_points) {
  if (!fitted_) {
    return Status::FailedPrecondition("SeasonalNaive: Fit() not called");
  }
  if (new_points > history.size()) {
    return Status::InvalidArgument(
        "SeasonalNaive: new_points exceeds history length");
  }
  for (size_t t = history.size() - new_points; t < history.size(); ++t) {
    state_.Push(history.values[t]);
  }
  if (state_.num_diffs() > 0) {
    residual_stddev_ = state_.Stddev();
  }
  IncrementalUpdateReport report;
  report.points = new_points;
  return report;
}

Status SeasonalNaiveForecaster::ResyncState(const ts::TimeSeries& history) {
  state_.Reset();
  for (double v : history.values) {
    state_.Push(v);
  }
  if (state_.num_diffs() > 0) {
    residual_stddev_ = state_.Stddev();
  }
  return Status::OK();
}

Result<ts::QuantileForecast> SeasonalNaiveForecaster::Predict(
    const ForecastInput& input) const {
  if (!fitted_) {
    return Status::FailedPrecondition("SeasonalNaive: Fit() not called");
  }
  if (input.context.empty()) {
    return Status::InvalidArgument("SeasonalNaive: empty context");
  }
  const size_t n = input.context.size();
  std::vector<std::vector<double>> values(options_.horizon);
  for (size_t step = 0; step < options_.horizon; ++step) {
    // Index of the same phase one season earlier, counted from the context
    // end; fall back to the last observation when out of range.
    double point = input.context.back();
    const size_t steps_back = options_.season;
    const size_t offset = (step % options_.season);
    if (steps_back <= n && offset < steps_back) {
      const size_t idx = n - steps_back + offset;
      if (idx < n) {
        point = input.context[idx];
      }
    }
    values[step].reserve(options_.levels.size());
    for (double tau : options_.levels) {
      values[step].push_back(point +
                             residual_stddev_ * dist::NormalQuantile(tau));
    }
  }
  return ts::QuantileForecast(options_.levels, std::move(values));
}

}  // namespace rpas::forecast
