#include "forecast/tft.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "nn/checkpoint.h"
#include "nn/losses.h"
#include "tensor/ops.h"
#include "ts/window.h"

namespace rpas::forecast {

using autodiff::Tape;
using autodiff::Var;
using tensor::Matrix;

namespace {
constexpr double kScaleEps = 1e-6;

double WindowScale(const std::vector<double>& context) {
  double mean_abs = 0.0;
  for (double v : context) {
    mean_abs += std::fabs(v);
  }
  mean_abs /= static_cast<double>(context.size());
  return std::max(mean_abs, kScaleEps);
}
}  // namespace

TftForecaster::TftForecaster(Options options) : options_(std::move(options)) {
  RPAS_CHECK(options_.context_length > 0 && options_.horizon > 0);
  RPAS_CHECK(options_.d_model % options_.num_heads == 0)
      << "d_model must be divisible by num_heads";
  if (options_.levels.empty()) {
    options_.levels = DefaultQuantileLevels();
  }
}

Var TftForecaster::ForwardWindow(Tape* tape,
                                 const std::vector<double>& scaled_context,
                                 size_t begin_index, double step_minutes) {
  const size_t t_len = options_.context_length;
  const size_t h = options_.horizon;
  const size_t d = options_.d_model;
  RPAS_CHECK(scaled_context.size() == t_len);

  // Encoder: embed [y_t, calendar] per step and run the LSTM, stacking
  // hidden states into the attention memory E (T x d).
  Var enc_v = tape->Input(t_len, kEncInDim);
  Matrix& enc_in = *tape->MutableValue(enc_v);
  for (size_t t = 0; t < t_len; ++t) {
    enc_in(t, 0) = scaled_context[t];
    const auto tf = TimeFeatures(begin_index + t, step_minutes);
    for (size_t j = 0; j < kNumTimeFeatures; ++j) {
      enc_in(t, 1 + j) = tf[j];
    }
  }
  Var enc_embedded = enc_embed_->Forward(tape, enc_v);
  nn::LstmCell::State state = lstm_->ZeroState(tape, 1);
  Var memory;  // grows to T x d
  for (size_t t = 0; t < t_len; ++t) {
    Var x_t = tape->SliceRows(enc_embedded, t, t + 1);
    state = lstm_->Step(tape, x_t, state);
    memory = t == 0 ? state.h : tape->ConcatRows(memory, state.h);
  }

  // Decoder: embed future calendar features, continue the LSTM, stack
  // decoder states D (H x d).
  Var dec_v = tape->Input(h, kDecInDim);
  Matrix& dec_in = *tape->MutableValue(dec_v);
  for (size_t step = 0; step < h; ++step) {
    const auto tf = TimeFeatures(begin_index + t_len + step, step_minutes);
    for (size_t j = 0; j < kNumTimeFeatures; ++j) {
      dec_in(step, j) = tf[j];
    }
  }
  Var dec_embedded = dec_embed_->Forward(tape, dec_v);
  Var decoded;
  for (size_t step = 0; step < h; ++step) {
    Var x_t = tape->SliceRows(dec_embedded, step, step + 1);
    state = lstm_->Step(tape, x_t, state);
    decoded = step == 0 ? state.h : tape->ConcatRows(decoded, state.h);
  }

  // Temporal fusion: attention over the encoder memory, then a gated
  // residual fusion of decoder states with attention context.
  Var attended = attention_->Forward(tape, decoded, memory);
  Var fused = fusion_->Forward(tape, tape->ConcatCols(decoded, attended));
  (void)d;
  return head_->Forward(tape, fused);  // H x Q, scaled space
}

Matrix TftForecaster::ApplyWindow(const std::vector<double>& scaled_context,
                                  size_t begin_index,
                                  double step_minutes) const {
  const size_t t_len = options_.context_length;
  const size_t h = options_.horizon;
  RPAS_CHECK(scaled_context.size() == t_len);

  Matrix enc_in(t_len, kEncInDim);
  for (size_t t = 0; t < t_len; ++t) {
    enc_in(t, 0) = scaled_context[t];
    const auto tf = TimeFeatures(begin_index + t, step_minutes);
    for (size_t j = 0; j < kNumTimeFeatures; ++j) {
      enc_in(t, 1 + j) = tf[j];
    }
  }
  Matrix enc_embedded = enc_embed_->Apply(enc_in);
  nn::LstmCell::RawState state = lstm_->ZeroRawState(1);
  Matrix memory(t_len, options_.d_model);
  for (size_t t = 0; t < t_len; ++t) {
    state = lstm_->Step(tensor::SliceRows(enc_embedded, t, t + 1), state);
    for (size_t c = 0; c < options_.d_model; ++c) {
      memory(t, c) = state.h(0, c);
    }
  }

  Matrix dec_in(h, kDecInDim);
  for (size_t step = 0; step < h; ++step) {
    const auto tf = TimeFeatures(begin_index + t_len + step, step_minutes);
    for (size_t j = 0; j < kNumTimeFeatures; ++j) {
      dec_in(step, j) = tf[j];
    }
  }
  Matrix dec_embedded = dec_embed_->Apply(dec_in);
  Matrix decoded(h, options_.d_model);
  for (size_t step = 0; step < h; ++step) {
    state = lstm_->Step(tensor::SliceRows(dec_embedded, step, step + 1),
                        state);
    for (size_t c = 0; c < options_.d_model; ++c) {
      decoded(step, c) = state.h(0, c);
    }
  }

  Matrix attended = attention_->Apply(decoded, memory);
  Matrix fused = fusion_->Apply(tensor::ConcatCols(decoded, attended));
  return head_->Apply(fused);
}

void TftForecaster::BuildModel() {
  Rng init_rng(options_.seed);
  const size_t d = options_.d_model;
  enc_embed_ = std::make_unique<nn::Dense>(kEncInDim, d,
                                           nn::Dense::Activation::kNone,
                                           &init_rng);
  dec_embed_ = std::make_unique<nn::Dense>(kDecInDim, d,
                                           nn::Dense::Activation::kNone,
                                           &init_rng);
  lstm_ = std::make_unique<nn::LstmCell>(d, d, &init_rng);
  attention_ = std::make_unique<nn::InterpretableMultiHeadAttention>(
      d, options_.num_heads, &init_rng);
  fusion_ = std::make_unique<nn::GatedResidualNetwork>(2 * d, d, d,
                                                       &init_rng);
  head_ = std::make_unique<nn::Dense>(d, options_.levels.size(),
                                      nn::Dense::Activation::kNone,
                                      &init_rng);
}

std::vector<autodiff::Parameter*> TftForecaster::AllParams() const {
  std::vector<autodiff::Parameter*> params;
  for (nn::Module* m : std::initializer_list<nn::Module*>{
           enc_embed_.get(), dec_embed_.get(), lstm_.get(), attention_.get(),
           fusion_.get(), head_.get()}) {
    for (auto* p : m->Params()) {
      params.push_back(p);
    }
  }
  return params;
}

std::string TftForecaster::Signature() const {
  return StrFormat("TFT ctx=%zu h=%zu d=%zu heads=%zu q=%zu",
                   options_.context_length, options_.horizon,
                   options_.d_model, options_.num_heads,
                   options_.levels.size());
}

Status TftForecaster::Save(const std::string& path) const {
  if (!fitted_) {
    return Status::FailedPrecondition("TFT: cannot save an unfitted model");
  }
  return nn::SaveParameters(path, Signature(), AllParams());
}

Status TftForecaster::Load(const std::string& path) {
  BuildModel();
  RPAS_RETURN_IF_ERROR(nn::LoadParameters(path, Signature(), AllParams()));
  fitted_ = true;
  return Status::OK();
}

Status TftForecaster::Fit(const ts::TimeSeries& train) {
  const size_t t_len = options_.context_length;
  const size_t h = options_.horizon;
  ts::WindowDataset dataset(train, t_len, h, /*stride=*/1);
  if (dataset.empty()) {
    return Status::InvalidArgument("TFT: training series too short");
  }

  BuildModel();
  std::vector<autodiff::Parameter*> params = AllParams();

  const double step_minutes = train.step_minutes;
  auto loss_fn = [&, step_minutes](Tape* tape, Rng* rng) -> Var {
    const std::vector<size_t> indices =
        dataset.SampleIndices(options_.batch_size, rng);
    Var total;
    for (size_t b = 0; b < indices.size(); ++b) {
      const ts::Window& w = dataset[indices[b]];
      const double scale = WindowScale(w.context);
      std::vector<double> scaled_context(t_len);
      for (size_t t = 0; t < t_len; ++t) {
        scaled_context[t] = w.context[t] / scale;
      }
      Var pred = ForwardWindow(tape, scaled_context, w.begin, step_minutes);
      Var yv = tape->Input(h, 1);
      Matrix& target = *tape->MutableValue(yv);
      for (size_t step = 0; step < h; ++step) {
        target(step, 0) = w.target[step] / scale;
      }
      Var loss = nn::QuantileGridLoss(tape, pred, yv, options_.levels);
      total = b == 0 ? loss : tape->Add(total, loss);
    }
    return tape->Scale(total, 1.0 / static_cast<double>(indices.size()));
  };

  nn::TrainConfig config = options_.train;
  config.seed = options_.seed + 1;
  nn::TrainLoop(config, params, loss_fn);
  fitted_ = true;
  return Status::OK();
}

Result<ts::QuantileForecast> TftForecaster::Predict(
    const ForecastInput& input) const {
  if (!fitted_) {
    return Status::FailedPrecondition("TFT: Fit() not called");
  }
  if (input.context.size() != options_.context_length) {
    return Status::InvalidArgument("TFT: context length mismatch");
  }
  const double scale = WindowScale(input.context);
  std::vector<double> scaled_context(input.context.size());
  for (size_t t = 0; t < input.context.size(); ++t) {
    scaled_context[t] = input.context[t] / scale;
  }
  Matrix pred =
      ApplyWindow(scaled_context, input.start_index, input.step_minutes);
  const size_t h = options_.horizon;
  std::vector<std::vector<double>> values(h);
  for (size_t step = 0; step < h; ++step) {
    values[step].reserve(options_.levels.size());
    for (size_t q = 0; q < options_.levels.size(); ++q) {
      values[step].push_back(pred(step, q) * scale);
    }
  }
  ts::QuantileForecast forecast(options_.levels, std::move(values));
  // The per-quantile heads are trained jointly but independently; enforce
  // non-crossing quantiles per step.
  forecast.SortQuantilesPerStep();
  return forecast;
}

}  // namespace rpas::forecast
