#ifndef RPAS_FORECAST_HOLT_WINTERS_H_
#define RPAS_FORECAST_HOLT_WINTERS_H_

#include <vector>

#include "forecast/forecaster.h"

namespace rpas::forecast {

/// Additive Holt–Winters (triple exponential smoothing) forecaster with
/// Gaussian prediction intervals. Not part of the paper's lineup, but the
/// natural statistical baseline for strongly seasonal workloads — included
/// as an extension so downstream users have a cheap seasonal model and as
/// an ablation partner for the neural forecasters.
///
/// Smoothing parameters (alpha, beta, gamma) are selected by coarse grid
/// search minimizing one-step-ahead squared error on the training series.
/// Interval widths use the standard SES-style variance approximation
/// var_h = sigma^2 * (1 + (h-1) * alpha^2), with sigma estimated from
/// in-sample one-step residuals.
class HoltWintersForecaster final : public Forecaster {
 public:
  struct Options {
    /// Must cover at least two seasons (the smoother re-initializes from
    /// the context at prediction time).
    size_t context_length = 288;
    size_t horizon = 72;
    size_t season = 144;  ///< steps per season (one day at 10-minute steps)
    std::vector<double> levels;
    /// Grid-search candidates; defaults cover the usual range.
    std::vector<double> alpha_grid = {0.1, 0.3, 0.5, 0.8};
    std::vector<double> beta_grid = {0.0, 0.01, 0.1};
    std::vector<double> gamma_grid = {0.05, 0.2, 0.5};
  };

  explicit HoltWintersForecaster(Options options);

  Status Fit(const ts::TimeSeries& train) override;
  Result<ts::QuantileForecast> Predict(
      const ForecastInput& input) const override;

  size_t Horizon() const override { return options_.horizon; }
  size_t ContextLength() const override { return options_.context_length; }
  const std::vector<double>& Levels() const override {
    return options_.levels;
  }
  std::string Name() const override { return "HoltWinters"; }

  /// Selected smoothing parameters (valid after Fit).
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  double gamma() const { return gamma_; }
  double residual_stddev() const { return residual_stddev_; }

 private:
  /// Runs the smoother over `values`; returns the one-step SSE and leaves
  /// the terminal state in *level/*trend/*seasonal when non-null.
  double RunSmoother(const std::vector<double>& values, double alpha,
                     double beta, double gamma, double* level, double* trend,
                     std::vector<double>* seasonal) const;

  Options options_;
  bool fitted_ = false;
  double alpha_ = 0.3;
  double beta_ = 0.01;
  double gamma_ = 0.2;
  double residual_stddev_ = 1.0;
};

}  // namespace rpas::forecast

#endif  // RPAS_FORECAST_HOLT_WINTERS_H_
