#ifndef RPAS_FORECAST_ROLLING_WQL_H_
#define RPAS_FORECAST_ROLLING_WQL_H_

#include <cstddef>
#include <cstdint>
#include <deque>

namespace rpas::forecast {

/// Fixed-capacity rolling window over realized forecast-quality samples
/// (prefix-mean wQL of expiring plans, cf. ts::PrefixMeanWql). One instance
/// tracks one model's recent accuracy; the selection layer and the streaming
/// drift guard both consume it. Deterministic: Mean() sums the window
/// front-to-back, so the result is a pure function of the observed sequence
/// regardless of thread count.
class RollingWql {
 public:
  explicit RollingWql(size_t capacity = 8);

  /// Records one wQL sample, evicting the oldest beyond capacity.
  void Observe(double wql);
  void Reset();

  /// Mean of the retained samples (0.0 when empty).
  double Mean() const;
  /// Most recent sample (0.0 when empty).
  double Latest() const;
  size_t Count() const { return window_.size(); }
  bool Full() const { return window_.size() >= capacity_; }
  size_t capacity() const { return capacity_; }
  /// Total samples observed over the instance's lifetime.
  uint64_t TotalObserved() const { return total_observed_; }

 private:
  size_t capacity_;
  std::deque<double> window_;
  uint64_t total_observed_ = 0;
};

}  // namespace rpas::forecast

#endif  // RPAS_FORECAST_ROLLING_WQL_H_
