#include "forecast/recalibrated.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpas::forecast {

RecalibratedForecaster::RecalibratedForecaster(
    std::unique_ptr<Forecaster> base, Options options)
    : base_(std::move(base)), options_(std::move(options)) {
  RPAS_CHECK(base_ != nullptr);
  RPAS_CHECK(!options_.probe_levels.empty());
  RPAS_CHECK(options_.calibration_steps > 0 && options_.stride > 0);
  RPAS_CHECK(std::is_sorted(options_.probe_levels.begin(),
                            options_.probe_levels.end()));
}

Status RecalibratedForecaster::Fit(const ts::TimeSeries& train) {
  const size_t calib = options_.calibration_steps;
  if (train.size() <= calib + base_->ContextLength() + base_->Horizon()) {
    return Status::InvalidArgument(
        "Recalibrated: series too short for a calibration split");
  }
  ts::TimeSeries head = train.Slice(0, train.size() - calib);
  ts::TimeSeries tail = train.Slice(train.size() - calib, train.size());

  RPAS_RETURN_IF_ERROR(base_->Fit(head));

  // Trace the empirical coverage curve on the calibration window. Probes
  // outside the base model's stored grid would silently clamp to its
  // extreme quantiles, flattening the curve, so restrict to its range.
  RPAS_ASSIGN_OR_RETURN(RollingForecasts rolled,
                        RollForecasts(*base_, head, tail, options_.stride));
  const double lo_level = base_->Levels().front();
  const double hi_level = base_->Levels().back();
  std::vector<double> probes = base_->Levels();  // always probe the grid
  for (double level : options_.probe_levels) {
    if (level >= lo_level && level <= hi_level) {
      probes.push_back(level);
    }
  }
  std::sort(probes.begin(), probes.end());
  probes.erase(std::unique(probes.begin(), probes.end()), probes.end());
  coverage_curve_.clear();
  for (double level : probes) {
    size_t covered = 0;
    size_t total = 0;
    for (size_t i = 0; i < rolled.forecasts.size(); ++i) {
      const auto& fc = rolled.forecasts[i];
      const auto& actual = rolled.actuals[i];
      for (size_t h = 0; h < fc.Horizon(); ++h) {
        if (fc.Value(h, level) >= actual[h]) {
          ++covered;
        }
        ++total;
      }
    }
    coverage_curve_[level] =
        total > 0 ? static_cast<double>(covered) / static_cast<double>(total)
                  : level;
  }
  calibrated_ = true;
  return Status::OK();
}

double RecalibratedForecaster::RemappedLevel(double nominal) const {
  RPAS_CHECK(calibrated_) << "RemappedLevel before Fit";
  RPAS_CHECK(nominal > 0.0 && nominal < 1.0);
  // Find the base level whose empirical coverage equals `nominal` by
  // monotone linear interpolation of the (level, coverage) curve. The raw
  // curve can wiggle; take the running maximum to enforce monotonicity.
  double prev_level = 0.0;
  double prev_cov = 0.0;
  double running_cov = 0.0;
  for (const auto& [level, cov] : coverage_curve_) {
    running_cov = std::max(running_cov, cov);
    if (running_cov >= nominal) {
      if (running_cov == prev_cov) {
        return level;
      }
      const double frac = (nominal - prev_cov) / (running_cov - prev_cov);
      const double mapped = prev_level + frac * (level - prev_level);
      return std::clamp(mapped, 1e-4, 1.0 - 1e-4);
    }
    prev_level = level;
    prev_cov = running_cov;
  }
  // Even the highest probe under-covers: ask for the most extreme level.
  return 1.0 - 1e-4;
}

Result<ts::QuantileForecast> RecalibratedForecaster::Predict(
    const ForecastInput& input) const {
  if (!calibrated_) {
    return Status::FailedPrecondition("Recalibrated: Fit() not called");
  }
  RPAS_ASSIGN_OR_RETURN(ts::QuantileForecast raw, base_->Predict(input));
  // Answer each nominal level with the remapped base level's value.
  const std::vector<double>& levels = base_->Levels();
  std::vector<std::vector<double>> values(raw.Horizon());
  for (size_t h = 0; h < raw.Horizon(); ++h) {
    values[h].reserve(levels.size());
    for (double nominal : levels) {
      values[h].push_back(raw.Value(h, RemappedLevel(nominal)));
    }
  }
  ts::QuantileForecast out(levels, std::move(values));
  out.SortQuantilesPerStep();
  return out;
}

}  // namespace rpas::forecast
