#include "forecast/backtest.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace rpas::forecast {

namespace {

MetricSummary Summarize(const std::vector<double>& values) {
  MetricSummary s;
  if (values.empty()) {
    return s;
  }
  for (double v : values) {
    s.mean += v;
  }
  s.mean /= static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) {
      ss += (v - s.mean) * (v - s.mean);
    }
    s.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return s;
}

}  // namespace

Result<BacktestResult> Backtest(const SeededForecasterFactory& factory,
                                const ts::TimeSeries& series,
                                const BacktestOptions& options) {
  if (options.folds == 0 || options.fold_steps == 0) {
    return Status::InvalidArgument("backtest needs folds and fold_steps");
  }
  const size_t total_eval = options.folds * options.fold_steps;
  if (series.size() <= total_eval) {
    return Status::InvalidArgument(
        "series too short for the requested folds");
  }

  // Every fold writes only its own slot; aggregation below walks the slots
  // in fold order, so the parallel schedule reproduces the serial one.
  std::vector<Status> statuses(options.folds, Status());
  std::vector<ts::AccuracyReport> reports(options.folds);

  // Handles resolved once; per-fold updates are relaxed atomics. The fold
  // count is a pure function of the options, so it is deterministic; the
  // wall-clock timing histogram is not.
  obs::MetricsRegistry* metrics = obs::ResolveRegistry(options.metrics);
  obs::Counter* folds_counter = metrics->GetCounter("backtest.folds");
  obs::Histogram* fold_ms = metrics->GetHistogram(
      "backtest.fold_ms", /*bounds=*/{}, /*deterministic=*/false);
  obs::TraceBuffer* trace = obs::ResolveTrace(options.trace);
  obs::Span run_span(trace, "backtest",
                     static_cast<int64_t>(options.folds));

  auto fold_body = [&](size_t fold) {
    // Expanding origin: fold 0 evaluates the oldest evaluation block.
    const size_t origin =
        series.size() - (options.folds - fold) * options.fold_steps;
    ts::TimeSeries train = series.Slice(0, origin);
    ts::TimeSeries eval =
        series.Slice(origin, origin + options.fold_steps);

    std::unique_ptr<Forecaster> model =
        factory(fold, DeriveSeed(options.base_seed, fold));
    if (model == nullptr) {
      statuses[fold] = Status::InvalidArgument(
          "backtest factory returned null");
      return;
    }
    Status fit = model->Fit(train);
    if (!fit.ok()) {
      statuses[fold] = std::move(fit);
      return;
    }
    const size_t stride =
        options.stride > 0 ? options.stride : model->Horizon();
    Result<RollingForecasts> rolled =
        RollForecasts(*model, train, eval, stride);
    if (!rolled.ok()) {
      statuses[fold] = rolled.status();
      return;
    }
    const std::vector<double> levels =
        options.levels.empty() ? model->Levels() : options.levels;
    reports[fold] =
        ts::EvaluateForecasts(rolled->forecasts, rolled->actuals, levels);
  };

  auto run_fold = [&](size_t fold) {
    obs::Span fold_span(trace, "backtest.fold", static_cast<int64_t>(fold));
    Stopwatch watch;
    fold_body(fold);
    folds_counter->Increment();
    fold_ms->Observe(watch.ElapsedMillis());
  };

  if (options.parallel) {
    ParallelFor(0, options.folds, 1, [&](size_t begin, size_t end) {
      for (size_t fold = begin; fold < end; ++fold) {
        run_fold(fold);
      }
    });
  } else {
    for (size_t fold = 0; fold < options.folds; ++fold) {
      run_fold(fold);
    }
  }

  for (size_t fold = 0; fold < options.folds; ++fold) {
    if (!statuses[fold].ok()) {
      return statuses[fold];
    }
  }

  BacktestResult result;
  std::vector<double> wqls;
  std::vector<double> mses;
  std::vector<double> maes;
  std::map<double, std::vector<double>> coverages;
  for (ts::AccuracyReport& report : reports) {
    wqls.push_back(report.mean_wql);
    mses.push_back(report.mse);
    maes.push_back(report.mae);
    for (const auto& [tau, cov] : report.coverage) {
      coverages[tau].push_back(cov);
    }
    result.fold_reports.push_back(std::move(report));
  }

  result.mean_wql = Summarize(wqls);
  result.mse = Summarize(mses);
  result.mae = Summarize(maes);
  for (const auto& [tau, values] : coverages) {
    result.coverage[tau] = Summarize(values);
  }
  return result;
}

Result<BacktestResult> Backtest(
    const std::function<std::unique_ptr<Forecaster>()>& factory,
    const ts::TimeSeries& series, const BacktestOptions& options) {
  return Backtest(
      [&factory](size_t, uint64_t) { return factory(); }, series, options);
}

}  // namespace rpas::forecast
