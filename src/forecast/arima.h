#ifndef RPAS_FORECAST_ARIMA_H_
#define RPAS_FORECAST_ARIMA_H_

#include <optional>
#include <vector>

#include "forecast/forecaster.h"
#include "ts/incremental.h"

namespace rpas::forecast {

/// ARIMA(p, d, q) forecaster with Gaussian forecast intervals
/// (paper §IV-A: "quantile forecasts can be enabled by incorporating
/// residuals to capture the uncertainty of the forecasts").
///
/// Estimation uses the Hannan–Rissanen two-stage procedure:
///   1. fit a long autoregression by least squares and extract residuals;
///   2. regress the series on its own lags and lagged residuals to obtain
///      the AR (phi) and MA (theta) coefficients.
/// Forecast variance accumulates through the psi-weight (MA-infinity)
/// expansion of the integrated model, which yields the characteristic
/// widening intervals — and, on cyclic workloads a non-seasonal ARIMA
/// cannot track, the over-wide intervals/high coverage the paper observes.
class ArimaForecaster final : public Forecaster {
 public:
  struct Options {
    int p = 3;        ///< AR order
    int d = 1;        ///< differencing order (0 or 1 supported)
    int q = 2;        ///< MA order
    /// Seasonal differencing order D (0 or 1). With D = 1 the model first
    /// applies (1 - B^season) — a SARIMA-lite that removes the dominant
    /// cycle before the ARMA fit. Requires context_length >= season + a few
    /// ARMA lags.
    int seasonal_d = 0;
    size_t season = 144;  ///< steps per season (one day at 10-minute steps)
    size_t context_length = 72;
    size_t horizon = 72;
    std::vector<double> levels;  ///< defaults to DefaultQuantileLevels()
    double ridge = 1e-6;         ///< least-squares damping
  };

  explicit ArimaForecaster(Options options);

  Status Fit(const ts::TimeSeries& train) override;
  Result<ts::QuantileForecast> Predict(
      const ForecastInput& input) const override;

  /// Pushes the newest `new_points` of `history` through the residual
  /// recursion (coefficients stay fixed; only sigma2 is refreshed) —
  /// identical arithmetic to the Fit() residual pass, O(new_points) work.
  Result<IncrementalUpdateReport> IncrementalUpdate(
      const ts::TimeSeries& history, size_t new_points) override;
  /// Replays the residual state over all of `history` (used after the
  /// ingest ring dropped points). Keeps the previous sigma2 when `history`
  /// is too short to produce a post-warm-up residual.
  Status ResyncState(const ts::TimeSeries& history) override;
  bool SupportsIncrementalUpdate() const override { return true; }

  size_t Horizon() const override { return options_.horizon; }
  size_t ContextLength() const override { return options_.context_length; }
  const std::vector<double>& Levels() const override {
    return options_.levels;
  }
  std::string Name() const override { return "ARIMA"; }

  /// Fitted coefficients (valid after Fit).
  const std::vector<double>& phi() const { return phi_; }
  const std::vector<double>& theta() const { return theta_; }
  double intercept() const { return intercept_; }
  double sigma2() const { return sigma2_; }

 private:
  /// Lags of the differencing pipeline, in application order (seasonal
  /// first, then regular).
  std::vector<size_t> DifferenceLags() const;

  Options options_;
  bool fitted_ = false;
  std::vector<double> phi_;    // AR coefficients, phi_[0] = phi_1
  std::vector<double> theta_;  // MA coefficients
  double intercept_ = 0.0;
  double sigma2_ = 1.0;  // innovation variance
  /// Streaming residual recursion seeded by Fit() (empty before Fit).
  std::optional<ts::ArimaResidualState> state_;
};

}  // namespace rpas::forecast

#endif  // RPAS_FORECAST_ARIMA_H_
