#include "forecast/forecaster.h"

#include "common/logging.h"

namespace rpas::forecast {

Result<std::vector<double>> Forecaster::PredictPoint(
    const ForecastInput& input) const {
  RPAS_ASSIGN_OR_RETURN(ts::QuantileForecast fc, Predict(input));
  return fc.Median();
}

Result<ts::QuantileForecast> Forecaster::PredictSeeded(
    const ForecastInput& input, uint64_t /*seed*/) const {
  return Predict(input);
}

Result<std::vector<ts::QuantileForecast>> Forecaster::PredictBatch(
    const std::vector<ForecastInput>& inputs,
    const std::vector<uint64_t>& seeds) const {
  if (inputs.size() != seeds.size()) {
    return Status::InvalidArgument(
        "PredictBatch: inputs and seeds must have equal length");
  }
  std::vector<ts::QuantileForecast> forecasts;
  forecasts.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    RPAS_ASSIGN_OR_RETURN(ts::QuantileForecast fc,
                          PredictSeeded(inputs[i], seeds[i]));
    forecasts.push_back(std::move(fc));
  }
  return forecasts;
}

Status Forecaster::SaveCheckpoint(const std::string& /*path*/) const {
  return Status::Unimplemented(Name() + ": checkpointing not supported");
}

Status Forecaster::LoadCheckpoint(const std::string& /*path*/) {
  return Status::Unimplemented(Name() + ": checkpointing not supported");
}

Status Forecaster::LoadQuantizedCheckpoint(
    std::shared_ptr<const nn::QuantizedCheckpoint> /*checkpoint*/) {
  return Status::Unimplemented(Name() +
                               ": quantized checkpoints not supported");
}

Result<Forecaster::IncrementalUpdateReport> Forecaster::IncrementalUpdate(
    const ts::TimeSeries& /*history*/, size_t /*new_points*/) {
  return Status::Unimplemented(Name() +
                               ": incremental updates not supported");
}

Status Forecaster::ResyncState(const ts::TimeSeries& /*history*/) {
  return Status::OK();
}

std::vector<double> DefaultQuantileLevels() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

std::vector<double> ScalingQuantileLevels() {
  return {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99};
}

Result<RollingForecasts> RollForecasts(const Forecaster& model,
                                       const ts::TimeSeries& history,
                                       const ts::TimeSeries& test,
                                       size_t stride) {
  if (stride == 0) {
    return Status::InvalidArgument("stride must be positive");
  }
  const size_t context = model.ContextLength();
  const size_t horizon = model.Horizon();
  if (history.size() < context) {
    return Status::InvalidArgument(
        "history shorter than the model's context length");
  }
  // Work over the concatenation [history | test]; forecast windows must lie
  // entirely within test so every prediction is scored against held-out
  // data.
  ts::TimeSeries joined = history;
  joined.values.insert(joined.values.end(), test.values.begin(),
                       test.values.end());

  RollingForecasts out;
  const size_t first_target = history.size();
  for (size_t target = first_target; target + horizon <= joined.size();
       target += stride) {
    ForecastInput input;
    input.start_index = target - context;
    input.step_minutes = joined.step_minutes;
    input.context.assign(
        joined.values.begin() + static_cast<long>(target - context),
        joined.values.begin() + static_cast<long>(target));
    RPAS_ASSIGN_OR_RETURN(ts::QuantileForecast fc, model.Predict(input));
    if (fc.Horizon() != horizon) {
      return Status::Internal("forecaster returned unexpected horizon");
    }
    out.forecasts.push_back(std::move(fc));
    out.actuals.emplace_back(
        joined.values.begin() + static_cast<long>(target),
        joined.values.begin() + static_cast<long>(target + horizon));
    out.forecast_starts.push_back(target);
  }
  if (out.forecasts.empty()) {
    return Status::InvalidArgument(
        "test series shorter than the forecast horizon");
  }
  return out;
}

}  // namespace rpas::forecast
