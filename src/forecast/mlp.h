#ifndef RPAS_FORECAST_MLP_H_
#define RPAS_FORECAST_MLP_H_

#include <memory>
#include <vector>

#include "forecast/forecaster.h"
#include "nn/layers.h"
#include "nn/trainer.h"
#include "ts/scaler.h"
#include "ts/window.h"

namespace rpas::forecast {

/// Probabilistic multilayer-perceptron forecaster (paper §IV-A): a
/// feed-forward network whose "output layer can generate the mean and
/// variance of a Gaussian distribution", trained with the negative
/// log-likelihood. Direct multi-horizon: one forward pass emits
/// (mu_h, sigma_h) for every step of the horizon.
class MlpForecaster final : public Forecaster {
 public:
  struct Options {
    size_t context_length = 72;
    size_t horizon = 72;
    size_t hidden_dim = 64;
    size_t num_hidden_layers = 2;  ///< 1 or 2
    size_t batch_size = 32;
    nn::TrainConfig train;
    std::vector<double> levels;  ///< defaults to DefaultQuantileLevels()
    uint64_t seed = 7;
    double min_sigma = 1e-3;  ///< floor on the scaled stddev head
    /// When false (default) the input is the raw context window only,
    /// mirroring the GluonTS SimpleFeedForward baseline the paper
    /// evaluates; enabling calendar covariates makes the MLP notably
    /// stronger than the paper's baseline.
    bool use_time_features = false;
    /// Gradient steps per IncrementalUpdate (warm-start fine-tune budget).
    int fine_tune_steps = 8;
    /// Learning rate for fine-tune steps; <= 0 reuses train.lr.
    double fine_tune_lr = 0.0;
  };

  explicit MlpForecaster(Options options);

  Status Fit(const ts::TimeSeries& train) override;
  Result<ts::QuantileForecast> Predict(
      const ForecastInput& input) const override;

  /// Warm-start fine-tune: runs `fine_tune_steps` gradient steps on the
  /// suffix of `history` whose windows touch the newest `new_points`
  /// observations — O(new_points) work, weights continue from their current
  /// values and the fitted scaler stays frozen. Models restored from
  /// quantized checkpoints are frozen and return FailedPrecondition.
  Result<IncrementalUpdateReport> IncrementalUpdate(
      const ts::TimeSeries& history, size_t new_points) override;
  bool SupportsIncrementalUpdate() const override { return true; }

  /// Row-stacked batched inference: the whole batch runs as one forward
  /// pass (one row per request). Each output row depends only on its own
  /// input row, so element i is bit-identical to Predict(inputs[i]) for
  /// every batch composition and thread count.
  Result<std::vector<ts::QuantileForecast>> PredictBatch(
      const std::vector<ForecastInput>& inputs,
      const std::vector<uint64_t>& seeds) const override;
  bool SupportsBatchedInference() const override { return true; }

  Status SaveCheckpoint(const std::string& path) const override {
    return Save(path);
  }
  Status LoadCheckpoint(const std::string& path) override {
    return Load(path);
  }
  bool SupportsCheckpoint() const override { return true; }

  /// Serves from an rpasq.v1 checkpoint: layer weights stay in the mapped
  /// file (dequant-on-the-fly GEMM), biases and the scaler decode to fp64.
  /// The model keeps `checkpoint` alive and becomes inference-only.
  Status LoadQuantizedCheckpoint(
      std::shared_ptr<const nn::QuantizedCheckpoint> checkpoint) override;
  bool SupportsQuantizedCheckpoint() const override { return true; }

  size_t Horizon() const override { return options_.horizon; }
  size_t ContextLength() const override { return options_.context_length; }
  const std::vector<double>& Levels() const override {
    return options_.levels;
  }
  std::string Name() const override { return "MLP"; }

  /// Per-step Gaussian parameters in workload units (after Fit);
  /// exposed for tests and the Fig. 7 interval visualization.
  struct GaussianParams {
    std::vector<double> mean;
    std::vector<double> stddev;
  };
  Result<GaussianParams> PredictDistribution(const ForecastInput& input) const;

  /// Persists the trained weights and the fitted scaler (text checkpoint).
  Status Save(const std::string& path) const;
  /// Restores a model saved by an identically configured instance.
  Status Load(const std::string& path);

 private:
  void BuildModel();
  std::vector<autodiff::Parameter*> AllParams() const;
  std::string Signature() const;

  /// Runs the Gaussian-NLL training loop over `dataset` with the current
  /// weights as the starting point (shared by Fit and IncrementalUpdate).
  nn::TrainSummary RunTraining(const ts::WindowDataset& dataset,
                               double step_minutes,
                               const nn::TrainConfig& config);

  /// Input width: context length, plus calendar features when enabled.
  size_t InputDim() const;

  /// Feature vector: scaled context (+ calendar features of the first
  /// forecast step when enabled).
  std::vector<double> BuildFeatures(const ForecastInput& input) const;

  Options options_;
  bool fitted_ = false;
  ts::AffineScaler scaler_;
  std::unique_ptr<nn::Dense> fc1_;
  std::unique_ptr<nn::Dense> fc2_;
  std::unique_ptr<nn::Dense> head_;  // emits 2*horizon (mu, raw sigma)
  /// Keeps the mapped checkpoint alive while layers hold views into it.
  std::shared_ptr<const nn::QuantizedCheckpoint> qckpt_;
  /// IncrementalUpdate calls so far; salts each fine-tune's sampling seed.
  uint64_t update_count_ = 0;
};

}  // namespace rpas::forecast

#endif  // RPAS_FORECAST_MLP_H_
