#ifndef RPAS_FORECAST_BACKTEST_H_
#define RPAS_FORECAST_BACKTEST_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "forecast/forecaster.h"
#include "ts/metrics.h"

namespace rpas::forecast {

/// Rolling-origin backtesting configuration.
struct BacktestOptions {
  /// Number of expanding-origin folds. Fold k trains on the series up to
  /// origin_k and evaluates on the following `fold_steps` observations.
  size_t folds = 3;
  /// Evaluation steps per fold.
  size_t fold_steps = 432;
  /// Stride between forecasts inside a fold; 0 = the model's horizon.
  size_t stride = 0;
  /// Quantile levels to score; empty = the model's own levels.
  std::vector<double> levels;
};

/// Mean and standard deviation of a metric across folds.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Backtest outcome: per-fold reports plus cross-fold summaries.
struct BacktestResult {
  std::vector<ts::AccuracyReport> fold_reports;
  MetricSummary mean_wql;
  MetricSummary mse;
  MetricSummary mae;
  std::map<double, MetricSummary> coverage;  // per scored level
};

/// Rolling-origin (expanding-window) backtest: for each fold a *fresh*
/// model is built by `factory`, fitted on all data before the fold's
/// origin, and scored on the fold's evaluation window. Reports cross-fold
/// mean +/- stddev so model comparisons account for fit variance — the
/// multi-run averaging of the paper's Table I, systematized.
Result<BacktestResult> Backtest(
    const std::function<std::unique_ptr<Forecaster>()>& factory,
    const ts::TimeSeries& series, const BacktestOptions& options);

}  // namespace rpas::forecast

#endif  // RPAS_FORECAST_BACKTEST_H_
