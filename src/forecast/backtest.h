#ifndef RPAS_FORECAST_BACKTEST_H_
#define RPAS_FORECAST_BACKTEST_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "forecast/forecaster.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "ts/metrics.h"

namespace rpas::forecast {

/// Rolling-origin backtesting configuration.
struct BacktestOptions {
  /// Number of expanding-origin folds. Fold k trains on the series up to
  /// origin_k and evaluates on the following `fold_steps` observations.
  size_t folds = 3;
  /// Evaluation steps per fold.
  size_t fold_steps = 432;
  /// Stride between forecasts inside a fold; 0 = the model's horizon.
  size_t stride = 0;
  /// Quantile levels to score; empty = the model's own levels.
  std::vector<double> levels;
  /// Evaluate the folds concurrently on the RPAS thread pool
  /// (RPAS_NUM_THREADS workers). Results are bit-identical to the serial
  /// path: every fold derives its model seed from `base_seed` and its fold
  /// index via DeriveSeed, and aggregation always runs in fold order.
  bool parallel = false;
  /// Base seed handed to the seeded factory (per fold, after SplitMix
  /// derivation). Ignored by the unseeded factory overload.
  uint64_t base_seed = 2024;
  /// Metrics sink for fold counters and per-fold wall-clock timing; null
  /// routes to obs::MetricsRegistry::Global().
  obs::MetricsRegistry* metrics = nullptr;
  /// Trace sink for the "backtest" / "backtest.fold" spans; null routes to
  /// obs::TraceBuffer::Global().
  obs::TraceBuffer* trace = nullptr;
};

/// Mean and standard deviation of a metric across folds.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Backtest outcome: per-fold reports plus cross-fold summaries.
struct BacktestResult {
  std::vector<ts::AccuracyReport> fold_reports;
  MetricSummary mean_wql;
  MetricSummary mse;
  MetricSummary mae;
  std::map<double, MetricSummary> coverage;  // per scored level
};

/// Builds the fresh model for one fold. `seed` is derived deterministically
/// from BacktestOptions::base_seed and `fold` (SplitMix-style), so a
/// stochastic model seeded with it trains identically whether the fold runs
/// serially or on a pool worker.
using SeededForecasterFactory =
    std::function<std::unique_ptr<Forecaster>(size_t fold, uint64_t seed)>;

/// Rolling-origin (expanding-window) backtest: for each fold a *fresh*
/// model is built by `factory`, fitted on all data before the fold's
/// origin, and scored on the fold's evaluation window. Reports cross-fold
/// mean +/- stddev so model comparisons account for fit variance — the
/// multi-run averaging of the paper's Table I, systematized.
/// With `options.parallel` the independent folds are evaluated concurrently
/// and the result is bit-identical to the serial schedule.
Result<BacktestResult> Backtest(const SeededForecasterFactory& factory,
                                const ts::TimeSeries& series,
                                const BacktestOptions& options);

/// Convenience overload for deterministic models (or models carrying their
/// own fixed seed): the factory ignores the fold index and derived seed.
Result<BacktestResult> Backtest(
    const std::function<std::unique_ptr<Forecaster>()>& factory,
    const ts::TimeSeries& series, const BacktestOptions& options);

}  // namespace rpas::forecast

#endif  // RPAS_FORECAST_BACKTEST_H_
