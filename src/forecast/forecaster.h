#ifndef RPAS_FORECAST_FORECASTER_H_
#define RPAS_FORECAST_FORECASTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "nn/qcheckpoint.h"
#include "ts/quantile_forecast.h"
#include "ts/time_series.h"

namespace rpas::forecast {

/// Conditioning information for one forecast: the most recent
/// `context` observations and their absolute position in the series (used
/// to derive calendar covariates such as time-of-day).
struct ForecastInput {
  /// w_{t-T+1} .. w_t, oldest first.
  std::vector<double> context;
  /// Absolute index of context[0] within the underlying series.
  size_t start_index = 0;
  /// Sampling interval in minutes.
  double step_minutes = 10.0;

  /// Absolute index of the first forecast step (one past the context).
  size_t forecast_start() const { return start_index + context.size(); }
};

/// Probabilistic workload forecaster interface (paper §III-B). A forecaster
/// is fitted once on a training series and then queried with context
/// windows; it returns quantile forecasts over its configured horizon.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Trains the model. Must be called before Predict.
  virtual Status Fit(const ts::TimeSeries& train) = 0;

  /// Quantile forecast for the configured horizon at the configured levels.
  virtual Result<ts::QuantileForecast> Predict(
      const ForecastInput& input) const = 0;

  /// Point forecast; the default takes the median trajectory of Predict().
  virtual Result<std::vector<double>> PredictPoint(
      const ForecastInput& input) const;

  // --- Serving interface (src/serve) -------------------------------------

  /// Seed-deterministic prediction: like Predict(), but any sampling noise
  /// is drawn from a generator derived from `seed` alone — never from
  /// internal mutable state — so the result is a pure function of
  /// (fitted weights, input, seed). Must be safe to call concurrently on
  /// one fitted model; the default forwards to Predict(), which satisfies
  /// both requirements for deterministic forecasters. Sampling-based models
  /// (DeepAR) override it.
  virtual Result<ts::QuantileForecast> PredictSeeded(
      const ForecastInput& input, uint64_t seed) const;

  /// Batched inference: serves `inputs[i]` with sampling seed `seeds[i]`
  /// and returns the forecasts in the same order. Contract: element i is
  /// bit-identical to PredictSeeded(inputs[i], seeds[i]) regardless of
  /// batch composition, batch order, and thread count. The default loops
  /// over PredictSeeded; models that can stack requests into one forward
  /// pass override it and return true from SupportsBatchedInference().
  virtual Result<std::vector<ts::QuantileForecast>> PredictBatch(
      const std::vector<ForecastInput>& inputs,
      const std::vector<uint64_t>& seeds) const;

  /// True when PredictBatch() runs a genuinely batched (row-stacked)
  /// forward pass rather than the default per-request loop.
  virtual bool SupportsBatchedInference() const { return false; }

  /// Common checkpoint interface (serve::ModelRegistry). Persists the
  /// fitted state so an identically configured instance can serve without
  /// re-training. Defaults return Unimplemented; models with a trained
  /// state override and return true from SupportsCheckpoint().
  virtual Status SaveCheckpoint(const std::string& path) const;
  /// Restores state written by SaveCheckpoint() on an identically
  /// configured model; the restored model is ready to predict.
  virtual Status LoadCheckpoint(const std::string& path);
  virtual bool SupportsCheckpoint() const { return false; }

  /// Restores serving state from a validated rpasq.v1 checkpoint
  /// (nn/qcheckpoint.h). Large weight matrices stay in the mapped file and
  /// are dequantized on the fly inside the GEMM kernels; the model retains
  /// `checkpoint` so the mapping outlives every view. The restored model
  /// serves predictions but cannot be trained further. Defaults to
  /// Unimplemented; models override and return true from
  /// SupportsQuantizedCheckpoint().
  virtual Status LoadQuantizedCheckpoint(
      std::shared_ptr<const nn::QuantizedCheckpoint> checkpoint);
  virtual bool SupportsQuantizedCheckpoint() const { return false; }

  // --- Streaming interface (src/stream) -----------------------------------

  /// What an IncrementalUpdate actually did, for refresh accounting.
  struct IncrementalUpdateReport {
    /// New points consumed.
    size_t points = 0;
    /// Gradient steps run (0 for recursive-state models).
    int gradient_steps = 0;
  };

  /// Folds the newest `new_points` observations of `history` into the
  /// fitted state in O(new_points) work instead of refitting on the full
  /// window: recursive models (seasonal-naive, ARIMA) push each point
  /// through their residual accumulators; NN models (MLP, DeepAR) run a
  /// bounded number of warm-start gradient steps on the new-points suffix.
  /// `history` must be the same stream the model was fitted on, extended —
  /// the last `new_points` values are the unseen ones. Requires a fitted
  /// model; models restored from quantized checkpoints (frozen weights)
  /// return FailedPrecondition. Default: Unimplemented; models override and
  /// return true from SupportsIncrementalUpdate().
  virtual Result<IncrementalUpdateReport> IncrementalUpdate(
      const ts::TimeSeries& history, size_t new_points);

  /// Rebuilds streaming state from scratch off the full `history` (used
  /// after the ingest ring dropped points, so per-point replay is
  /// impossible). For recursive models this replays the accumulators; NN
  /// models keep their weights (the next IncrementalUpdate resumes
  /// fine-tuning). Must leave the model at the state a fresh
  /// IncrementalUpdate stream over `history` would have produced. Default:
  /// no-op success, correct for stateless-between-calls models.
  virtual Status ResyncState(const ts::TimeSeries& history);

  /// True when IncrementalUpdate() is implemented.
  virtual bool SupportsIncrementalUpdate() const { return false; }

  /// Forecast horizon H (steps).
  virtual size_t Horizon() const = 0;
  /// Expected context length T (steps).
  virtual size_t ContextLength() const = 0;
  /// Quantile levels produced by Predict().
  virtual const std::vector<double>& Levels() const = 0;

  virtual std::string Name() const = 0;
};

/// The paper's default quantile grid A = {0.1, ..., 0.9} (§IV-B).
std::vector<double> DefaultQuantileLevels();

/// The grid used for robust auto-scaling experiments
/// A = {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99} (§IV-C).
std::vector<double> ScalingQuantileLevels();

/// Rolling evaluation helper: slides a window over `test` (starting with
/// `context_length` observations of history, stepping by `stride`), calls
/// the forecaster, and returns aligned (forecast, actual) pairs.
/// `history` supplies observations preceding `test` so the first windows
/// have full context; pass the training series tail.
struct RollingForecasts {
  std::vector<ts::QuantileForecast> forecasts;
  std::vector<std::vector<double>> actuals;
  /// Absolute start index (within history+test) of each forecast's first
  /// predicted step.
  std::vector<size_t> forecast_starts;
};
Result<RollingForecasts> RollForecasts(const Forecaster& model,
                                       const ts::TimeSeries& history,
                                       const ts::TimeSeries& test,
                                       size_t stride);

}  // namespace rpas::forecast

#endif  // RPAS_FORECAST_FORECASTER_H_
