#ifndef RPAS_FORECAST_TFT_H_
#define RPAS_FORECAST_TFT_H_

#include <memory>
#include <string>
#include <vector>

#include "forecast/forecaster.h"
#include "forecast/time_features.h"
#include "nn/layers.h"
#include "nn/trainer.h"

namespace rpas::forecast {

/// Temporal-Fusion-Transformer-style quantile forecaster (Lim et al.; paper
/// §III-B "learn pre-specified grid of quantiles"): an LSTM encoder/decoder
/// with interpretable multi-head attention and gated residual networks,
/// emitting one output per quantile level and trained by jointly minimizing
/// the quantile (pinball) loss summed across the grid (paper Eq. 1-2).
///
/// Faithful simplification (documented in DESIGN.md §3): variable-selection
/// networks and static-covariate encoders are omitted because the paper
/// forecasts a single aggregated series with no static metadata — the
/// blocks that give TFT its quantile-grid behaviour (LSTM seq2seq, GRN
/// gating, interpretable attention, per-quantile heads) are retained.
///
/// Setting `levels = {0.5}` reproduces the paper's *TFT-point* baseline: the
/// same architecture "trained to exclusively output the 0.5 quantile,
/// effectively serving as a point forecasting model".
class TftForecaster final : public Forecaster {
 public:
  struct Options {
    size_t context_length = 72;
    size_t horizon = 72;
    size_t d_model = 24;    ///< embedding/state width
    size_t num_heads = 2;   ///< attention heads (d_model % num_heads == 0)
    size_t batch_size = 4;  ///< windows per optimizer step
    nn::TrainConfig train;
    std::vector<double> levels;  ///< quantile grid; default {0.1..0.9}
    uint64_t seed = 23;
    std::string name = "TFT";
  };

  explicit TftForecaster(Options options);

  Status Fit(const ts::TimeSeries& train) override;
  Result<ts::QuantileForecast> Predict(
      const ForecastInput& input) const override;

  /// Persists the trained weights (text checkpoint, see nn/checkpoint.h).
  /// Requires a fitted model.
  Status Save(const std::string& path) const;
  /// Restores weights saved by an identically configured model; the
  /// restored model is ready to Predict without calling Fit.
  Status Load(const std::string& path);

  Status SaveCheckpoint(const std::string& path) const override {
    return Save(path);
  }
  Status LoadCheckpoint(const std::string& path) override {
    return Load(path);
  }
  bool SupportsCheckpoint() const override { return true; }

  size_t Horizon() const override { return options_.horizon; }
  size_t ContextLength() const override { return options_.context_length; }
  const std::vector<double>& Levels() const override {
    return options_.levels;
  }
  std::string Name() const override { return options_.name; }

 private:
  static constexpr size_t kEncInDim = 1 + kNumTimeFeatures;
  static constexpr size_t kDecInDim = kNumTimeFeatures;

  /// (Re)creates all layers from the configured architecture and the
  /// configured seed.
  void BuildModel();
  /// Every trainable parameter, in a stable order.
  std::vector<autodiff::Parameter*> AllParams() const;
  /// Architecture fingerprint used to guard checkpoint compatibility.
  std::string Signature() const;

  /// Builds the training graph for one window; returns the H x Q
  /// prediction in scaled space.
  autodiff::Var ForwardWindow(autodiff::Tape* tape,
                              const std::vector<double>& scaled_context,
                              size_t begin_index, double step_minutes);
  /// Tape-free forward pass for inference.
  tensor::Matrix ApplyWindow(const std::vector<double>& scaled_context,
                             size_t begin_index, double step_minutes) const;

  Options options_;
  bool fitted_ = false;
  std::unique_ptr<nn::Dense> enc_embed_;
  std::unique_ptr<nn::Dense> dec_embed_;
  std::unique_ptr<nn::LstmCell> lstm_;
  std::unique_ptr<nn::InterpretableMultiHeadAttention> attention_;
  std::unique_ptr<nn::GatedResidualNetwork> fusion_;
  std::unique_ptr<nn::Dense> head_;
};

}  // namespace rpas::forecast

#endif  // RPAS_FORECAST_TFT_H_
