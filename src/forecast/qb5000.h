#ifndef RPAS_FORECAST_QB5000_H_
#define RPAS_FORECAST_QB5000_H_

#include <memory>
#include <vector>

#include "forecast/forecaster.h"
#include "forecast/time_features.h"
#include "nn/layers.h"
#include "nn/trainer.h"
#include "tensor/matrix.h"
#include "ts/scaler.h"

namespace rpas::forecast {

/// QueryBot-5000-style hybrid *point* forecaster (Ma et al., SIGMOD'18;
/// paper §IV-A): an ensemble that averages three component predictors —
///   1. direct multi-horizon linear regression on the context window,
///   2. an autoregressive LSTM point model (MSE-trained),
///   3. Nadaraya–Watson kernel regression over stored training windows.
/// Produces a single trajectory; Predict() exposes it as a degenerate
/// one-level quantile forecast so the point-forecast scaling baselines plug
/// into the same evaluation machinery.
class Qb5000Forecaster final : public Forecaster {
 public:
  struct Options {
    size_t context_length = 72;
    size_t horizon = 72;
    size_t lstm_hidden = 24;
    size_t batch_size = 16;
    nn::TrainConfig train;
    double ridge = 1e-3;          ///< LR component damping
    size_t max_kernel_windows = 512;  ///< stored windows for the kernel
    double kernel_bandwidth = 4.0;    ///< Gaussian kernel bandwidth (scaled)
    uint64_t seed = 31;
  };

  explicit Qb5000Forecaster(Options options);

  Status Fit(const ts::TimeSeries& train) override;
  Result<ts::QuantileForecast> Predict(
      const ForecastInput& input) const override;
  Result<std::vector<double>> PredictPoint(
      const ForecastInput& input) const override;

  size_t Horizon() const override { return options_.horizon; }
  size_t ContextLength() const override { return options_.context_length; }
  const std::vector<double>& Levels() const override { return levels_; }
  std::string Name() const override { return "QB5000"; }

  /// Individual component trajectories (for tests / analysis).
  Result<std::vector<double>> PredictLinear(const ForecastInput& input) const;
  Result<std::vector<double>> PredictLstm(const ForecastInput& input) const;
  Result<std::vector<double>> PredictKernel(const ForecastInput& input) const;

 private:
  std::vector<double> LinearFeatures(const std::vector<double>& context,
                                     size_t forecast_start,
                                     double step_minutes) const;

  Options options_;
  std::vector<double> levels_{0.5};
  bool fitted_ = false;
  ts::AffineScaler scaler_;

  // Linear-regression component: (T + time features + 1) x H coefficients.
  tensor::Matrix lr_coeffs_;

  // LSTM component.
  std::unique_ptr<nn::LstmCell> lstm_;
  std::unique_ptr<nn::Dense> lstm_head_;

  // Kernel component: stored (scaled context, scaled future) exemplars.
  std::vector<std::vector<double>> kernel_contexts_;
  std::vector<std::vector<double>> kernel_futures_;
};

}  // namespace rpas::forecast

#endif  // RPAS_FORECAST_QB5000_H_
