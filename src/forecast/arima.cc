#include "forecast/arima.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "dist/special.h"
#include "tensor/ops.h"

namespace rpas::forecast {

namespace {

/// One differencing pass at the given lag: y_t = x_t - x_{t-lag}.
std::vector<double> DifferenceAtLag(const std::vector<double>& x,
                                    size_t lag) {
  RPAS_CHECK(x.size() > lag);
  std::vector<double> out;
  out.reserve(x.size() - lag);
  for (size_t i = lag; i < x.size(); ++i) {
    out.push_back(x[i] - x[i - lag]);
  }
  return out;
}

/// Computes residuals of an ARMA(p, q) model over `x` (residuals for the
/// first max(p, q) points are 0).
std::vector<double> ArmaResiduals(const std::vector<double>& x,
                                  const std::vector<double>& phi,
                                  const std::vector<double>& theta,
                                  double intercept) {
  const size_t p = phi.size();
  const size_t q = theta.size();
  std::vector<double> e(x.size(), 0.0);
  const size_t warmup = std::max(p, q);
  for (size_t t = warmup; t < x.size(); ++t) {
    double pred = intercept;
    for (size_t i = 0; i < p; ++i) {
      pred += phi[i] * x[t - 1 - i];
    }
    for (size_t j = 0; j < q; ++j) {
      pred += theta[j] * e[t - 1 - j];
    }
    e[t] = x[t] - pred;
  }
  return e;
}

/// Multiplies polynomial `a` (coefficient of B^i at a[i]) by (1 - B^lag).
std::vector<double> MultiplyByOneMinusBLag(const std::vector<double>& a,
                                           size_t lag) {
  std::vector<double> out(a.size() + lag, 0.0);
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] += a[i];
    out[i + lag] -= a[i];
  }
  return out;
}

}  // namespace

ArimaForecaster::ArimaForecaster(Options options)
    : options_(std::move(options)) {
  RPAS_CHECK(options_.p >= 0 && options_.q >= 0);
  RPAS_CHECK(options_.d == 0 || options_.d == 1)
      << "only d in {0, 1} supported";
  RPAS_CHECK(options_.seasonal_d == 0 || options_.seasonal_d == 1)
      << "only seasonal D in {0, 1} supported";
  RPAS_CHECK(options_.season >= 2);
  RPAS_CHECK(options_.horizon > 0 && options_.context_length > 0);
  if (options_.levels.empty()) {
    options_.levels = DefaultQuantileLevels();
  }
}

std::vector<size_t> ArimaForecaster::DifferenceLags() const {
  std::vector<size_t> lags;
  // Seasonal differencing first, then regular.
  for (int i = 0; i < options_.seasonal_d; ++i) {
    lags.push_back(options_.season);
  }
  for (int i = 0; i < options_.d; ++i) {
    lags.push_back(1);
  }
  return lags;
}

Status ArimaForecaster::Fit(const ts::TimeSeries& train) {
  const int p = options_.p;
  const int q = options_.q;
  std::vector<double> x = train.values;
  for (size_t lag : DifferenceLags()) {
    if (x.size() <= lag) {
      return Status::InvalidArgument(
          "ARIMA: training series too short for differencing");
    }
    x = DifferenceAtLag(x, lag);
  }
  const int long_ar = std::max(20, p + q + 10);
  if (static_cast<int>(x.size()) < long_ar + p + q + 10) {
    return Status::InvalidArgument(
        "ARIMA: training series too short for Hannan-Rissanen estimation");
  }

  // Stage 1: long autoregression by least squares -> provisional residuals.
  {
    const size_t n = x.size() - static_cast<size_t>(long_ar);
    tensor::Matrix a(n, static_cast<size_t>(long_ar) + 1);
    tensor::Matrix b(n, 1);
    for (size_t t = 0; t < n; ++t) {
      a(t, 0) = 1.0;
      for (int i = 0; i < long_ar; ++i) {
        a(t, static_cast<size_t>(i) + 1) = x[t + long_ar - 1 - i];
      }
      b(t, 0) = x[t + long_ar];
    }
    RPAS_ASSIGN_OR_RETURN(tensor::Matrix coeffs,
                          tensor::SolveLeastSquares(a, b, options_.ridge));
    // Provisional residuals from the long AR.
    std::vector<double> e(x.size(), 0.0);
    for (size_t t = static_cast<size_t>(long_ar); t < x.size(); ++t) {
      double pred = coeffs(0, 0);
      for (int i = 0; i < long_ar; ++i) {
        pred += coeffs(static_cast<size_t>(i) + 1, 0) * x[t - 1 - i];
      }
      e[t] = x[t] - pred;
    }

    // Stage 2: regress x_t on p lags of x and q lags of e.
    const size_t start = static_cast<size_t>(long_ar) +
                         static_cast<size_t>(std::max(p, q));
    const size_t m = x.size() - start;
    const size_t cols = 1 + static_cast<size_t>(p) + static_cast<size_t>(q);
    tensor::Matrix a2(m, cols);
    tensor::Matrix b2(m, 1);
    for (size_t r = 0; r < m; ++r) {
      const size_t t = start + r;
      size_t c = 0;
      a2(r, c++) = 1.0;
      for (int i = 0; i < p; ++i) {
        a2(r, c++) = x[t - 1 - static_cast<size_t>(i)];
      }
      for (int j = 0; j < q; ++j) {
        a2(r, c++) = e[t - 1 - static_cast<size_t>(j)];
      }
      b2(r, 0) = x[t];
    }
    RPAS_ASSIGN_OR_RETURN(tensor::Matrix coeffs2,
                          tensor::SolveLeastSquares(a2, b2, options_.ridge));
    intercept_ = coeffs2(0, 0);
    phi_.assign(static_cast<size_t>(p), 0.0);
    theta_.assign(static_cast<size_t>(q), 0.0);
    for (int i = 0; i < p; ++i) {
      phi_[static_cast<size_t>(i)] = coeffs2(1 + static_cast<size_t>(i), 0);
    }
    for (int j = 0; j < q; ++j) {
      theta_[static_cast<size_t>(j)] =
          coeffs2(1 + static_cast<size_t>(p) + static_cast<size_t>(j), 0);
    }
  }

  // Innovation variance from the final model's residuals.
  const std::vector<double> final_e =
      ArmaResiduals(x, phi_, theta_, intercept_);
  const size_t warmup = static_cast<size_t>(std::max(p, q));
  double ss = 0.0;
  size_t count = 0;
  for (size_t t = warmup; t < final_e.size(); ++t) {
    ss += final_e[t] * final_e[t];
    ++count;
  }
  sigma2_ = count > 0 ? ss / static_cast<double>(count) : 1.0;
  sigma2_ = std::max(sigma2_, 1e-12);

  // Seed the streaming residual state with the fitted coefficients and the
  // full training series; its per-point recursion reproduces the batch
  // residual pass above bit for bit, so IncrementalUpdate can extend it.
  state_.emplace(
      ts::ArimaStateConfig{phi_, theta_, intercept_, DifferenceLags()});
  state_->PushAll(train.values);

  fitted_ = true;
  return Status::OK();
}

Result<Forecaster::IncrementalUpdateReport> ArimaForecaster::IncrementalUpdate(
    const ts::TimeSeries& history, size_t new_points) {
  if (!fitted_ || !state_.has_value()) {
    return Status::FailedPrecondition("ARIMA: Fit() not called");
  }
  if (new_points > history.size()) {
    return Status::InvalidArgument(
        "ARIMA: new_points exceeds history length");
  }
  for (size_t t = history.size() - new_points; t < history.size(); ++t) {
    state_->Push(history.values[t]);
  }
  if (state_->num_residuals() > 0) {
    sigma2_ = state_->Sigma2();
  }
  IncrementalUpdateReport report;
  report.points = new_points;
  return report;
}

Status ArimaForecaster::ResyncState(const ts::TimeSeries& history) {
  if (!fitted_ || !state_.has_value()) {
    return Status::FailedPrecondition("ARIMA: Fit() not called");
  }
  state_->Reset();
  state_->PushAll(history.values);
  if (state_->num_residuals() > 0) {
    sigma2_ = state_->Sigma2();
  }
  return Status::OK();
}

Result<ts::QuantileForecast> ArimaForecaster::Predict(
    const ForecastInput& input) const {
  if (!fitted_) {
    return Status::FailedPrecondition("ARIMA: Fit() not called");
  }
  const size_t p = phi_.size();
  const size_t q = theta_.size();
  const size_t h = options_.horizon;
  const std::vector<size_t> lags = DifferenceLags();

  // Differencing stages: stages[0] is the raw context, stages[k] the series
  // after the k-th differencing op. Kept so forecasts can be re-integrated.
  std::vector<std::vector<double>> stages;
  stages.push_back(input.context);
  for (size_t lag : lags) {
    if (stages.back().size() <= lag) {
      return Status::InvalidArgument(
          "ARIMA: context too short for differencing");
    }
    stages.push_back(DifferenceAtLag(stages.back(), lag));
  }
  const std::vector<double>& x = stages.back();
  if (x.size() < std::max(p, q) + 1) {
    return Status::InvalidArgument("ARIMA: context too short");
  }
  const std::vector<double> e = ArmaResiduals(x, phi_, theta_, intercept_);

  // Iterate the recursion forward; future innovations are zero.
  std::vector<double> ext_x = x;
  std::vector<double> ext_e = e;
  for (size_t step = 0; step < h; ++step) {
    const size_t t = ext_x.size();
    double pred = intercept_;
    for (size_t i = 0; i < p; ++i) {
      pred += phi_[i] * ext_x[t - 1 - i];
    }
    for (size_t j = 0; j < q; ++j) {
      pred += theta_[j] * ext_e[t - 1 - j];
    }
    ext_x.push_back(pred);
    ext_e.push_back(0.0);
  }
  std::vector<double> forecast(ext_x.end() - static_cast<long>(h),
                               ext_x.end());

  // Re-integrate through the differencing stages in reverse order:
  // stage k forecasts f_k satisfy f_k[t] = f_{k+1}[t] + value of stage k at
  // (t - lag_k), which is a past observation for t < lag_k and an earlier
  // forecast afterwards.
  for (size_t k = lags.size(); k-- > 0;) {
    const size_t lag = lags[k];
    const std::vector<double>& base = stages[k];
    std::vector<double> integrated(h);
    for (size_t t = 0; t < h; ++t) {
      const double previous =
          t < lag ? base[base.size() - lag + t] : integrated[t - lag];
      integrated[t] = forecast[t] + previous;
    }
    forecast = std::move(integrated);
  }
  const std::vector<double>& mean = forecast;

  // Psi weights of the integrated model: the AR polynomial is
  // phi(B) * prod_k (1 - B^{lag_k}).
  std::vector<double> poly(p + 1, 0.0);
  poly[0] = 1.0;
  for (size_t i = 1; i <= p; ++i) {
    poly[i] = -phi_[i - 1];
  }
  for (size_t lag : lags) {
    poly = MultiplyByOneMinusBLag(poly, lag);
  }
  // X_t = sum_i Phi_i X_{t-i} + ... with Phi_i = -poly[i].
  std::vector<double> big_phi(poly.size() - 1);
  for (size_t i = 1; i < poly.size(); ++i) {
    big_phi[i - 1] = -poly[i];
  }

  // Psi-weight recursion: psi_0 = 1,
  // psi_j = theta_j + sum_i Phi_i psi_{j-i}.
  std::vector<double> psi(h);
  for (size_t j = 0; j < h; ++j) {
    double value = j == 0 ? 1.0 : 0.0;
    if (j >= 1 && j <= q) {
      value += theta_[j - 1];
    }
    for (size_t i = 1; i <= big_phi.size() && i <= j; ++i) {
      value += big_phi[i - 1] * psi[j - i];
    }
    psi[j] = value;
  }

  // Forecast standard deviation at each step.
  std::vector<double> stddev(h);
  double cum = 0.0;
  for (size_t step = 0; step < h; ++step) {
    cum += psi[step] * psi[step];
    stddev[step] = std::sqrt(sigma2_ * cum);
  }

  std::vector<std::vector<double>> values(h);
  for (size_t step = 0; step < h; ++step) {
    values[step].reserve(options_.levels.size());
    for (double tau : options_.levels) {
      values[step].push_back(mean[step] +
                             stddev[step] * dist::NormalQuantile(tau));
    }
  }
  return ts::QuantileForecast(options_.levels, std::move(values));
}

}  // namespace rpas::forecast
