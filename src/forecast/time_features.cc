#include "forecast/time_features.h"

#include <cmath>

namespace rpas::forecast {

std::array<double, kNumTimeFeatures> TimeFeatures(size_t abs_index,
                                                  double step_minutes) {
  constexpr double kMinutesPerDay = 24.0 * 60.0;
  constexpr double kMinutesPerWeek = 7.0 * kMinutesPerDay;
  const double minutes = static_cast<double>(abs_index) * step_minutes;
  const double day_phase =
      2.0 * M_PI * std::fmod(minutes, kMinutesPerDay) / kMinutesPerDay;
  const double week_phase =
      2.0 * M_PI * std::fmod(minutes, kMinutesPerWeek) / kMinutesPerWeek;
  return {std::sin(day_phase), std::cos(day_phase), std::sin(week_phase),
          std::cos(week_phase)};
}

}  // namespace rpas::forecast
