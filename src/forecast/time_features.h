#ifndef RPAS_FORECAST_TIME_FEATURES_H_
#define RPAS_FORECAST_TIME_FEATURES_H_

#include <array>
#include <cstddef>

namespace rpas::forecast {

/// Number of calendar covariates produced per time step.
inline constexpr size_t kNumTimeFeatures = 4;

/// Calendar covariates for an absolute step index: sin/cos of time-of-day
/// and sin/cos of day-of-week phase. Workload traces have strong daily and
/// weekly cycles (both cluster traces the paper uses do); these features let
/// the neural forecasters model them beyond the raw context window.
std::array<double, kNumTimeFeatures> TimeFeatures(size_t abs_index,
                                                  double step_minutes);

}  // namespace rpas::forecast

#endif  // RPAS_FORECAST_TIME_FEATURES_H_
