#include "forecast/holt_winters.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "dist/special.h"

namespace rpas::forecast {

HoltWintersForecaster::HoltWintersForecaster(Options options)
    : options_(std::move(options)) {
  RPAS_CHECK(options_.context_length > 0 && options_.horizon > 0);
  RPAS_CHECK(options_.season >= 2);
  if (options_.levels.empty()) {
    options_.levels = DefaultQuantileLevels();
  }
}

double HoltWintersForecaster::RunSmoother(const std::vector<double>& values,
                                          double alpha, double beta,
                                          double gamma, double* level_out,
                                          double* trend_out,
                                          std::vector<double>* seasonal_out)
    const {
  const size_t m = options_.season;
  RPAS_CHECK(values.size() >= 2 * m);

  // Initialization: first-season mean as level; season-over-season average
  // change as trend; first-season deviations as seasonal components.
  double level = 0.0;
  for (size_t i = 0; i < m; ++i) {
    level += values[i];
  }
  level /= static_cast<double>(m);
  double second = 0.0;
  for (size_t i = m; i < 2 * m; ++i) {
    second += values[i];
  }
  second /= static_cast<double>(m);
  double trend = (second - level) / static_cast<double>(m);
  std::vector<double> seasonal(m);
  for (size_t i = 0; i < m; ++i) {
    seasonal[i] = values[i] - level;
  }

  double sse = 0.0;
  size_t count = 0;
  for (size_t t = m; t < values.size(); ++t) {
    const size_t s = t % m;
    const double forecast = level + trend + seasonal[s];
    const double error = values[t] - forecast;
    sse += error * error;
    ++count;
    const double prev_level = level;
    level = alpha * (values[t] - seasonal[s]) +
            (1.0 - alpha) * (level + trend);
    trend = beta * (level - prev_level) + (1.0 - beta) * trend;
    seasonal[s] = gamma * (values[t] - level) + (1.0 - gamma) * seasonal[s];
  }
  if (level_out != nullptr) {
    *level_out = level;
  }
  if (trend_out != nullptr) {
    *trend_out = trend;
  }
  if (seasonal_out != nullptr) {
    *seasonal_out = std::move(seasonal);
  }
  return count > 0 ? sse / static_cast<double>(count) : 0.0;
}

Status HoltWintersForecaster::Fit(const ts::TimeSeries& train) {
  if (train.size() < 2 * options_.season + options_.horizon) {
    return Status::InvalidArgument(
        "HoltWinters: training series shorter than two seasons");
  }
  double best_mse = std::numeric_limits<double>::infinity();
  for (double alpha : options_.alpha_grid) {
    for (double beta : options_.beta_grid) {
      for (double gamma : options_.gamma_grid) {
        const double mse = RunSmoother(train.values, alpha, beta, gamma,
                                       nullptr, nullptr, nullptr);
        if (mse < best_mse) {
          best_mse = mse;
          alpha_ = alpha;
          beta_ = beta;
          gamma_ = gamma;
        }
      }
    }
  }
  residual_stddev_ = std::max(std::sqrt(best_mse), 1e-9);
  fitted_ = true;
  return Status::OK();
}

Result<ts::QuantileForecast> HoltWintersForecaster::Predict(
    const ForecastInput& input) const {
  if (!fitted_) {
    return Status::FailedPrecondition("HoltWinters: Fit() not called");
  }
  if (input.context.size() < 2 * options_.season) {
    return Status::InvalidArgument(
        "HoltWinters: context must cover at least two seasons");
  }
  double level = 0.0;
  double trend = 0.0;
  std::vector<double> seasonal;
  RunSmoother(input.context, alpha_, beta_, gamma_, &level, &trend,
              &seasonal);

  const size_t m = options_.season;
  const size_t n = input.context.size();
  std::vector<std::vector<double>> values(options_.horizon);
  for (size_t h = 0; h < options_.horizon; ++h) {
    const size_t s = (n + h) % m;
    const double mean =
        level + static_cast<double>(h + 1) * trend + seasonal[s];
    const double stddev =
        residual_stddev_ *
        std::sqrt(1.0 + static_cast<double>(h) * alpha_ * alpha_);
    values[h].reserve(options_.levels.size());
    for (double tau : options_.levels) {
      values[h].push_back(mean + stddev * dist::NormalQuantile(tau));
    }
  }
  return ts::QuantileForecast(options_.levels, std::move(values));
}

}  // namespace rpas::forecast
