#include "forecast/mlp.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "dist/special.h"
#include "forecast/time_features.h"
#include "nn/checkpoint.h"
#include "nn/losses.h"
#include "tensor/ops.h"
#include "ts/window.h"

namespace rpas::forecast {

using autodiff::Tape;
using autodiff::Var;
using tensor::Matrix;

MlpForecaster::MlpForecaster(Options options) : options_(std::move(options)) {
  RPAS_CHECK(options_.context_length > 0 && options_.horizon > 0);
  if (options_.levels.empty()) {
    options_.levels = DefaultQuantileLevels();
  }
}

size_t MlpForecaster::InputDim() const {
  return options_.context_length +
         (options_.use_time_features ? kNumTimeFeatures : 0);
}

std::vector<double> MlpForecaster::BuildFeatures(
    const ForecastInput& input) const {
  RPAS_CHECK(input.context.size() == options_.context_length);
  std::vector<double> features;
  features.reserve(InputDim());
  for (double v : input.context) {
    features.push_back(scaler_.Transform(v));
  }
  if (options_.use_time_features) {
    const auto tf = TimeFeatures(input.forecast_start(), input.step_minutes);
    features.insert(features.end(), tf.begin(), tf.end());
  }
  return features;
}

void MlpForecaster::BuildModel() {
  Rng init_rng(options_.seed);
  fc1_ = std::make_unique<nn::Dense>(InputDim(), options_.hidden_dim,
                                     nn::Dense::Activation::kRelu, &init_rng);
  if (options_.num_hidden_layers >= 2) {
    fc2_ = std::make_unique<nn::Dense>(options_.hidden_dim,
                                       options_.hidden_dim,
                                       nn::Dense::Activation::kRelu,
                                       &init_rng);
  } else {
    fc2_.reset();
  }
  head_ = std::make_unique<nn::Dense>(options_.hidden_dim,
                                      2 * options_.horizon,
                                      nn::Dense::Activation::kNone,
                                      &init_rng);
}

std::vector<autodiff::Parameter*> MlpForecaster::AllParams() const {
  std::vector<autodiff::Parameter*> params;
  for (nn::Dense* layer : {fc1_.get(), fc2_.get(), head_.get()}) {
    if (layer == nullptr) {
      continue;
    }
    for (auto* p : layer->Params()) {
      params.push_back(p);
    }
  }
  return params;
}

std::string MlpForecaster::Signature() const {
  return StrFormat("MLP ctx=%zu h=%zu hidden=%zu layers=%zu tf=%d",
                   options_.context_length, options_.horizon,
                   options_.hidden_dim, options_.num_hidden_layers,
                   options_.use_time_features ? 1 : 0);
}

Status MlpForecaster::Save(const std::string& path) const {
  if (!fitted_) {
    return Status::FailedPrecondition("MLP: cannot save an unfitted model");
  }
  // The global scaler rides along as an extra 1x2 tensor [shift, scale].
  autodiff::Parameter scaler_tensor(
      Matrix{{scaler_.shift(), scaler_.scale()}});
  std::vector<autodiff::Parameter*> params = AllParams();
  params.push_back(&scaler_tensor);
  return nn::SaveParameters(path, Signature(), params);
}

Status MlpForecaster::Load(const std::string& path) {
  BuildModel();
  autodiff::Parameter scaler_tensor(Matrix(1, 2));
  std::vector<autodiff::Parameter*> params = AllParams();
  params.push_back(&scaler_tensor);
  RPAS_RETURN_IF_ERROR(nn::LoadParameters(path, Signature(), params));
  if (scaler_tensor.value(0, 1) <= 0.0) {
    return Status::InvalidArgument("checkpoint holds a non-positive scale");
  }
  scaler_ = ts::AffineScaler(scaler_tensor.value(0, 0),
                             scaler_tensor.value(0, 1));
  fitted_ = true;
  return Status::OK();
}

Status MlpForecaster::LoadQuantizedCheckpoint(
    std::shared_ptr<const nn::QuantizedCheckpoint> checkpoint) {
  if (checkpoint == nullptr) {
    return Status::InvalidArgument("MLP: null quantized checkpoint");
  }
  if (checkpoint->signature() != Signature()) {
    return Status::InvalidArgument(
        StrFormat("MLP: checkpoint signature '%s' does not match '%s'",
                  checkpoint->signature().c_str(), Signature().c_str()));
  }
  BuildModel();
  // Tensor order mirrors Save(): per layer (weight, bias), then the 1x2
  // scaler [shift, scale].
  const size_t expected = AllParams().size() + 1;
  if (checkpoint->num_tensors() != expected) {
    return Status::InvalidArgument(
        StrFormat("MLP: checkpoint holds %zu tensors, expected %zu",
                  checkpoint->num_tensors(), expected));
  }
  size_t idx = 0;
  for (nn::Dense* layer : {fc1_.get(), fc2_.get(), head_.get()}) {
    if (layer == nullptr) {
      continue;
    }
    RPAS_RETURN_IF_ERROR(
        layer->SetQuantizedWeights(checkpoint->tensor(idx++).view));
    RPAS_RETURN_IF_ERROR(
        nn::AssignDequantized(checkpoint->tensor(idx++), layer->Params()[1]));
  }
  autodiff::Parameter scaler_tensor(Matrix(1, 2));
  RPAS_RETURN_IF_ERROR(
      nn::AssignDequantized(checkpoint->tensor(idx), &scaler_tensor));
  if (scaler_tensor.value(0, 1) <= 0.0) {
    return Status::InvalidArgument("checkpoint holds a non-positive scale");
  }
  scaler_ = ts::AffineScaler(scaler_tensor.value(0, 0),
                             scaler_tensor.value(0, 1));
  qckpt_ = std::move(checkpoint);
  fitted_ = true;
  return Status::OK();
}

nn::TrainSummary MlpForecaster::RunTraining(const ts::WindowDataset& dataset,
                                            double step_minutes,
                                            const nn::TrainConfig& config) {
  const size_t t_len = options_.context_length;
  const size_t h = options_.horizon;
  std::vector<autodiff::Parameter*> params = AllParams();

  auto loss_fn = [&, step_minutes](Tape* tape, Rng* rng) -> Var {
    const std::vector<size_t> indices =
        dataset.SampleIndices(options_.batch_size, rng);
    const size_t batch = indices.size();
    // Arena-backed leaves filled in place (no per-step matrix allocation).
    Var x = tape->Input(batch, InputDim());
    Var y = tape->Input(batch, h);
    Matrix& features = *tape->MutableValue(x);
    Matrix& targets = *tape->MutableValue(y);
    for (size_t r = 0; r < batch; ++r) {
      const ts::Window& w = dataset[indices[r]];
      for (size_t j = 0; j < t_len; ++j) {
        features(r, j) = scaler_.Transform(w.context[j]);
      }
      if (options_.use_time_features) {
        const auto tf = TimeFeatures(w.begin + t_len, step_minutes);
        for (size_t j = 0; j < kNumTimeFeatures; ++j) {
          features(r, t_len + j) = tf[j];
        }
      }
      for (size_t j = 0; j < h; ++j) {
        targets(r, j) = scaler_.Transform(w.target[j]);
      }
    }
    Var hidden = fc1_->Forward(tape, x);
    if (fc2_) {
      hidden = fc2_->Forward(tape, hidden);
    }
    Var out = head_->Forward(tape, hidden);
    Var mu = tape->SliceCols(out, 0, h);
    Var sigma = tape->AddScalar(
        tape->Softplus(tape->SliceCols(out, h, 2 * h)), options_.min_sigma);
    return nn::GaussianNllLoss(tape, mu, sigma, y);
  };

  return nn::TrainLoop(config, params, loss_fn);
}

Status MlpForecaster::Fit(const ts::TimeSeries& train) {
  const size_t t_len = options_.context_length;
  const size_t h = options_.horizon;
  ts::WindowDataset dataset(train, t_len, h, /*stride=*/1);
  if (dataset.empty()) {
    return Status::InvalidArgument("MLP: training series too short");
  }
  scaler_ = ts::AffineScaler::FitStandard(train.values);

  BuildModel();
  nn::TrainConfig config = options_.train;
  config.seed = options_.seed + 1;
  RunTraining(dataset, train.step_minutes, config);
  fitted_ = true;
  return Status::OK();
}

Result<Forecaster::IncrementalUpdateReport> MlpForecaster::IncrementalUpdate(
    const ts::TimeSeries& history, size_t new_points) {
  if (!fitted_) {
    return Status::FailedPrecondition("MLP: Fit() not called");
  }
  if (qckpt_ != nullptr) {
    return Status::FailedPrecondition(
        "MLP: model restored from a quantized checkpoint is frozen");
  }
  if (new_points > history.size()) {
    return Status::InvalidArgument("MLP: new_points exceeds history length");
  }
  IncrementalUpdateReport report;
  report.points = new_points;
  if (new_points == 0) {
    return report;
  }
  // Fine-tune only on windows whose target overlaps a new observation:
  // the first such window starts new_points + horizon - 1 steps before
  // the first new point's context end.
  const size_t t_len = options_.context_length;
  const size_t h = options_.horizon;
  const size_t span = t_len + h - 1 + new_points;
  const size_t start = history.size() > span ? history.size() - span : 0;
  ts::TimeSeries suffix = history.Slice(start, history.size());
  // index_offset keeps Window::begin absolute so calendar features stay
  // phase-aligned with full-series training.
  ts::WindowDataset dataset(suffix, t_len, h, /*stride=*/1,
                            /*index_offset=*/start);
  if (dataset.empty()) {
    return report;  // not enough history for a single window yet
  }
  nn::TrainConfig config = options_.train;
  config.steps = options_.fine_tune_steps;
  if (options_.fine_tune_lr > 0.0) {
    config.lr = options_.fine_tune_lr;
  }
  // Distinct, deterministic minibatch stream per update.
  config.seed = DeriveSeed(options_.seed, 0x57EA + update_count_);
  ++update_count_;
  const nn::TrainSummary summary =
      RunTraining(dataset, history.step_minutes, config);
  report.gradient_steps = summary.steps_run;
  return report;
}

Result<MlpForecaster::GaussianParams> MlpForecaster::PredictDistribution(
    const ForecastInput& input) const {
  if (!fitted_) {
    return Status::FailedPrecondition("MLP: Fit() not called");
  }
  if (input.context.size() != options_.context_length) {
    return Status::InvalidArgument("MLP: context length mismatch");
  }
  Matrix x = Matrix::RowVector(BuildFeatures(input));
  Matrix hidden = fc1_->Apply(x);
  if (fc2_) {
    hidden = fc2_->Apply(hidden);
  }
  Matrix out = head_->Apply(hidden);
  const size_t h = options_.horizon;
  GaussianParams dist;
  dist.mean.resize(h);
  dist.stddev.resize(h);
  for (size_t step = 0; step < h; ++step) {
    const double mu_scaled = out(0, step);
    const double raw = out(0, h + step);
    const double sigma_scaled =
        (raw > 0.0 ? raw : 0.0) + std::log1p(std::exp(-std::fabs(raw))) +
        options_.min_sigma;
    dist.mean[step] = scaler_.Inverse(mu_scaled);
    dist.stddev[step] = sigma_scaled * scaler_.scale();
  }
  return dist;
}

Result<ts::QuantileForecast> MlpForecaster::Predict(
    const ForecastInput& input) const {
  RPAS_ASSIGN_OR_RETURN(GaussianParams dist, PredictDistribution(input));
  const size_t h = options_.horizon;
  std::vector<std::vector<double>> values(h);
  for (size_t step = 0; step < h; ++step) {
    values[step].reserve(options_.levels.size());
    for (double tau : options_.levels) {
      values[step].push_back(dist.mean[step] +
                             dist.stddev[step] * dist::NormalQuantile(tau));
    }
  }
  return ts::QuantileForecast(options_.levels, std::move(values));
}

Result<std::vector<ts::QuantileForecast>> MlpForecaster::PredictBatch(
    const std::vector<ForecastInput>& inputs,
    const std::vector<uint64_t>& seeds) const {
  if (inputs.size() != seeds.size()) {
    return Status::InvalidArgument(
        "MLP PredictBatch: inputs and seeds must have equal length");
  }
  if (!fitted_) {
    return Status::FailedPrecondition("MLP: Fit() not called");
  }
  const size_t batch = inputs.size();
  if (batch == 0) {
    return std::vector<ts::QuantileForecast>{};
  }
  for (const ForecastInput& input : inputs) {
    if (input.context.size() != options_.context_length) {
      return Status::InvalidArgument("MLP: context length mismatch");
    }
  }
  Matrix x(batch, InputDim());
  for (size_t r = 0; r < batch; ++r) {
    const std::vector<double> features = BuildFeatures(inputs[r]);
    for (size_t j = 0; j < features.size(); ++j) {
      x(r, j) = features[j];
    }
  }
  Matrix hidden = fc1_->Apply(x);
  if (fc2_) {
    hidden = fc2_->Apply(hidden);
  }
  Matrix out = head_->Apply(hidden);
  const size_t h = options_.horizon;
  std::vector<ts::QuantileForecast> forecasts;
  forecasts.reserve(batch);
  for (size_t r = 0; r < batch; ++r) {
    std::vector<std::vector<double>> values(h);
    for (size_t step = 0; step < h; ++step) {
      const double mu_scaled = out(r, step);
      const double raw = out(r, h + step);
      const double sigma_scaled =
          (raw > 0.0 ? raw : 0.0) + std::log1p(std::exp(-std::fabs(raw))) +
          options_.min_sigma;
      const double mean = scaler_.Inverse(mu_scaled);
      const double stddev = sigma_scaled * scaler_.scale();
      values[step].reserve(options_.levels.size());
      for (double tau : options_.levels) {
        values[step].push_back(mean + stddev * dist::NormalQuantile(tau));
      }
    }
    forecasts.emplace_back(options_.levels, std::move(values));
  }
  return forecasts;
}

}  // namespace rpas::forecast
