#ifndef RPAS_FORECAST_RECALIBRATED_H_
#define RPAS_FORECAST_RECALIBRATED_H_

#include <map>
#include <memory>
#include <vector>

#include "forecast/forecaster.h"

namespace rpas::forecast {

/// Conformal-style quantile recalibration wrapper (library extension; see
/// DESIGN.md §6). Probabilistic forecasters are often miscalibrated — the
/// paper's Table I shows DeepAR covering ~0.55 at the nominal 0.7 level.
/// Under-coverage directly translates into under-provisioning when the
/// scaling strategy trusts the nominal level.
///
/// This wrapper measures empirical coverage of the base forecaster on a
/// calibration window and remaps each requested level tau to the base
/// level whose *empirical* coverage is tau (monotone interpolation of the
/// coverage curve). The recalibrated forecaster then reports quantiles
/// whose nominal and empirical levels agree, restoring the semantics the
/// robust auto-scaling optimization assumes.
class RecalibratedForecaster final : public Forecaster {
 public:
  struct Options {
    /// Steps held out from the end of the training series for calibration.
    size_t calibration_steps = 288;
    /// Stride between calibration forecasts.
    size_t stride = 24;
    /// Dense grid of base levels probed to trace the coverage curve.
    std::vector<double> probe_levels = {0.02, 0.05, 0.1, 0.2, 0.3, 0.4,
                                        0.5,  0.6,  0.7, 0.8, 0.9, 0.95,
                                        0.98, 0.995};
  };

  /// Wraps (and owns) `base`. The wrapper exposes the base model's levels;
  /// Fit() trains the base on the head of the series and calibrates on the
  /// tail.
  RecalibratedForecaster(std::unique_ptr<Forecaster> base, Options options);

  Status Fit(const ts::TimeSeries& train) override;
  Result<ts::QuantileForecast> Predict(
      const ForecastInput& input) const override;

  size_t Horizon() const override { return base_->Horizon(); }
  size_t ContextLength() const override { return base_->ContextLength(); }
  const std::vector<double>& Levels() const override {
    return base_->Levels();
  }
  std::string Name() const override {
    return base_->Name() + "+recalibrated";
  }

  /// Remapped base level used to answer a nominal level (valid after Fit);
  /// exposed for tests and diagnostics.
  double RemappedLevel(double nominal) const;

  /// Empirical coverage measured at each probe level (valid after Fit).
  const std::map<double, double>& CoverageCurve() const {
    return coverage_curve_;
  }

 private:
  std::unique_ptr<Forecaster> base_;
  Options options_;
  bool calibrated_ = false;
  std::map<double, double> coverage_curve_;  // base level -> coverage
};

}  // namespace rpas::forecast

#endif  // RPAS_FORECAST_RECALIBRATED_H_
