#include "forecast/deepar.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "dist/empirical.h"
#include "nn/checkpoint.h"
#include "nn/losses.h"
#include "tensor/ops.h"
#include "ts/window.h"

namespace rpas::forecast {

using autodiff::Tape;
using autodiff::Var;
using tensor::Matrix;

namespace {
constexpr double kScaleEps = 1e-6;

double SoftplusScalar(double x) {
  return (x > 0.0 ? x : 0.0) + std::log1p(std::exp(-std::fabs(x)));
}

/// Per-window mean-abs scale (DeepAR's standard per-item scaling).
double WindowScale(const std::vector<double>& context) {
  double mean_abs = 0.0;
  for (double v : context) {
    mean_abs += std::fabs(v);
  }
  mean_abs /= static_cast<double>(context.size());
  return std::max(mean_abs, kScaleEps);
}
}  // namespace

DeepArForecaster::DeepArForecaster(Options options)
    : options_(std::move(options)), sample_rng_(options_.seed ^ 0xD1CEu) {
  RPAS_CHECK(options_.context_length > 0 && options_.horizon > 0);
  RPAS_CHECK(options_.num_samples >= 2);
  if (options_.levels.empty()) {
    options_.levels = DefaultQuantileLevels();
  }
}

void DeepArForecaster::BuildModel() {
  Rng init_rng(options_.seed);
  lstm_ = std::make_unique<nn::LstmCell>(kInputDim, options_.hidden_dim,
                                         &init_rng);
  mu_head_ = std::make_unique<nn::Dense>(options_.hidden_dim, 1,
                                         nn::Dense::Activation::kNone,
                                         &init_rng);
  sigma_head_ = std::make_unique<nn::Dense>(options_.hidden_dim, 1,
                                            nn::Dense::Activation::kNone,
                                            &init_rng);
}

std::vector<autodiff::Parameter*> DeepArForecaster::AllParams() const {
  std::vector<autodiff::Parameter*> params;
  for (nn::Module* m : std::initializer_list<nn::Module*>{
           lstm_.get(), mu_head_.get(), sigma_head_.get()}) {
    for (auto* p : m->Params()) {
      params.push_back(p);
    }
  }
  return params;
}

std::string DeepArForecaster::Signature() const {
  return StrFormat("DeepAR ctx=%zu h=%zu hidden=%zu head=%d",
                   options_.context_length, options_.horizon,
                   options_.hidden_dim, static_cast<int>(options_.head));
}

Status DeepArForecaster::Save(const std::string& path) const {
  if (!fitted_) {
    return Status::FailedPrecondition(
        "DeepAR: cannot save an unfitted model");
  }
  return nn::SaveParameters(path, Signature(), AllParams());
}

Status DeepArForecaster::Load(const std::string& path) {
  BuildModel();
  RPAS_RETURN_IF_ERROR(nn::LoadParameters(path, Signature(), AllParams()));
  fitted_ = true;
  return Status::OK();
}

Status DeepArForecaster::LoadQuantizedCheckpoint(
    std::shared_ptr<const nn::QuantizedCheckpoint> checkpoint) {
  if (checkpoint == nullptr) {
    return Status::InvalidArgument("DeepAR: null quantized checkpoint");
  }
  if (checkpoint->signature() != Signature()) {
    return Status::InvalidArgument(
        StrFormat("DeepAR: checkpoint signature '%s' does not match '%s'",
                  checkpoint->signature().c_str(), Signature().c_str()));
  }
  BuildModel();
  // Tensor order mirrors Save()/AllParams(): lstm (w_x, w_h, b), then
  // (weight, bias) for each head.
  constexpr size_t kExpected = 7;
  if (checkpoint->num_tensors() != kExpected) {
    return Status::InvalidArgument(
        StrFormat("DeepAR: checkpoint holds %zu tensors, expected %zu",
                  checkpoint->num_tensors(), kExpected));
  }
  RPAS_RETURN_IF_ERROR(lstm_->SetQuantizedWeights(
      checkpoint->tensor(0).view, checkpoint->tensor(1).view));
  RPAS_RETURN_IF_ERROR(
      nn::AssignDequantized(checkpoint->tensor(2), lstm_->Params()[2]));
  size_t idx = 3;
  for (nn::Dense* head : {mu_head_.get(), sigma_head_.get()}) {
    RPAS_RETURN_IF_ERROR(
        head->SetQuantizedWeights(checkpoint->tensor(idx++).view));
    RPAS_RETURN_IF_ERROR(
        nn::AssignDequantized(checkpoint->tensor(idx++), head->Params()[1]));
  }
  qckpt_ = std::move(checkpoint);
  fitted_ = true;
  return Status::OK();
}

nn::TrainSummary DeepArForecaster::RunTraining(
    const ts::WindowDataset& dataset, double step_minutes,
    const nn::TrainConfig& config) {
  const size_t t_len = options_.context_length;
  const size_t h = options_.horizon;
  std::vector<autodiff::Parameter*> params = AllParams();

  auto loss_fn = [&, step_minutes](Tape* tape, Rng* rng) -> Var {
    const std::vector<size_t> indices =
        dataset.SampleIndices(options_.batch_size, rng);
    const size_t batch = indices.size();
    const size_t total = t_len + h;

    // Whole windows (context + target), per-window scaled.
    std::vector<std::vector<double>> scaled(batch);
    std::vector<size_t> begins(batch);
    for (size_t r = 0; r < batch; ++r) {
      const ts::Window& w = dataset[indices[r]];
      begins[r] = w.begin;
      const double scale = WindowScale(w.context);
      scaled[r].reserve(total);
      for (double v : w.context) {
        scaled[r].push_back(v / scale);
      }
      for (double v : w.target) {
        scaled[r].push_back(v / scale);
      }
    }

    // Teacher-forced unroll: at step t the input is the observed value at
    // t-1 plus calendar features of t; the head predicts the value at t.
    nn::LstmCell::State state = lstm_->ZeroState(tape, batch);
    Var total_nll;
    size_t terms = 0;
    for (size_t t = 1; t < total; ++t) {
      // Arena-backed leaves filled in place: the steady-state unroll reuses
      // the previous step's buffers instead of allocating fresh matrices.
      Var xv = tape->Input(batch, kInputDim);
      Var y = tape->Input(batch, 1);
      Matrix& x = *tape->MutableValue(xv);
      Matrix& target = *tape->MutableValue(y);
      for (size_t r = 0; r < batch; ++r) {
        x(r, 0) = scaled[r][t - 1];
        const auto tf = TimeFeatures(begins[r] + t, step_minutes);
        for (size_t j = 0; j < kNumTimeFeatures; ++j) {
          x(r, 1 + j) = tf[j];
        }
        target(r, 0) = scaled[r][t];
      }
      state = lstm_->Step(tape, xv, state);
      Var mu = mu_head_->Forward(tape, state.h);
      Var sigma = tape->AddScalar(
          tape->Softplus(sigma_head_->Forward(tape, state.h)),
          options_.min_sigma);
      Var nll = options_.head == Head::kStudentT
                    ? nn::StudentTNllLoss(tape, mu, sigma, y,
                                          options_.student_t_dof)
                    : nn::GaussianNllLoss(tape, mu, sigma, y);
      total_nll = terms == 0 ? nll : tape->Add(total_nll, nll);
      ++terms;
    }
    return tape->Scale(total_nll, 1.0 / static_cast<double>(terms));
  };

  return nn::TrainLoop(config, params, loss_fn);
}

Status DeepArForecaster::Fit(const ts::TimeSeries& train) {
  const size_t t_len = options_.context_length;
  const size_t h = options_.horizon;
  ts::WindowDataset dataset(train, t_len, h, /*stride=*/1);
  if (dataset.empty()) {
    return Status::InvalidArgument("DeepAR: training series too short");
  }

  BuildModel();
  nn::TrainConfig config = options_.train;
  config.seed = options_.seed + 1;
  RunTraining(dataset, train.step_minutes, config);
  fitted_ = true;
  return Status::OK();
}

Result<Forecaster::IncrementalUpdateReport>
DeepArForecaster::IncrementalUpdate(const ts::TimeSeries& history,
                                    size_t new_points) {
  if (!fitted_) {
    return Status::FailedPrecondition("DeepAR: Fit() not called");
  }
  if (qckpt_ != nullptr) {
    return Status::FailedPrecondition(
        "DeepAR: model restored from a quantized checkpoint is frozen");
  }
  if (new_points > history.size()) {
    return Status::InvalidArgument(
        "DeepAR: new_points exceeds history length");
  }
  IncrementalUpdateReport report;
  report.points = new_points;
  if (new_points == 0) {
    return report;
  }
  // Fine-tune only on windows whose target overlaps a new observation.
  const size_t t_len = options_.context_length;
  const size_t h = options_.horizon;
  const size_t span = t_len + h - 1 + new_points;
  const size_t start = history.size() > span ? history.size() - span : 0;
  ts::TimeSeries suffix = history.Slice(start, history.size());
  // index_offset keeps Window::begin absolute so the teacher-forced
  // unroll's calendar features stay phase-aligned with full-series
  // training.
  ts::WindowDataset dataset(suffix, t_len, h, /*stride=*/1,
                            /*index_offset=*/start);
  if (dataset.empty()) {
    return report;  // not enough history for a single window yet
  }
  nn::TrainConfig config = options_.train;
  config.steps = options_.fine_tune_steps;
  if (options_.fine_tune_lr > 0.0) {
    config.lr = options_.fine_tune_lr;
  }
  // Distinct, deterministic minibatch stream per update.
  config.seed = DeriveSeed(options_.seed, 0x57EA + update_count_);
  ++update_count_;
  const nn::TrainSummary summary =
      RunTraining(dataset, history.step_minutes, config);
  report.gradient_steps = summary.steps_run;
  return report;
}

Result<std::vector<std::vector<double>>> DeepArForecaster::SampleTrajectories(
    const ForecastInput& input, size_t num_samples) const {
  return SampleWithRng(input, num_samples, &sample_rng_);
}

Rng DeepArForecaster::SamplingRng(uint64_t seed) {
  return Rng(DeriveSeed(seed, 0xD1CEu));
}

Result<std::vector<std::vector<double>>> DeepArForecaster::SampleWithRng(
    const ForecastInput& input, size_t num_samples, Rng* rng) const {
  if (!fitted_) {
    return Status::FailedPrecondition("DeepAR: Fit() not called");
  }
  if (input.context.size() != options_.context_length) {
    return Status::InvalidArgument("DeepAR: context length mismatch");
  }
  const size_t t_len = options_.context_length;
  const size_t h = options_.horizon;
  const double scale = WindowScale(input.context);

  // Encode the observed context once (batch of 1).
  nn::LstmCell::RawState encoded = lstm_->ZeroRawState(1);
  for (size_t t = 1; t < t_len; ++t) {
    Matrix x(1, kInputDim);
    x(0, 0) = input.context[t - 1] / scale;
    const auto tf = TimeFeatures(input.start_index + t, input.step_minutes);
    for (size_t j = 0; j < kNumTimeFeatures; ++j) {
      x(0, 1 + j) = tf[j];
    }
    encoded = lstm_->Step(x, encoded);
  }

  // Replicate the encoded state across sample rows and roll forward,
  // feeding each sampled value back as the next input (ancestral sampling).
  nn::LstmCell::RawState state = lstm_->ZeroRawState(num_samples);
  for (size_t r = 0; r < num_samples; ++r) {
    for (size_t c = 0; c < options_.hidden_dim; ++c) {
      state.h(r, c) = encoded.h(0, c);
      state.c(r, c) = encoded.c(0, c);
    }
  }

  std::vector<std::vector<double>> trajectories(
      num_samples, std::vector<double>(h, 0.0));
  std::vector<double> prev(num_samples, input.context.back() / scale);
  for (size_t step = 0; step < h; ++step) {
    const size_t abs_index = input.forecast_start() + step;
    const auto tf = TimeFeatures(abs_index, input.step_minutes);
    Matrix x(num_samples, kInputDim);
    for (size_t r = 0; r < num_samples; ++r) {
      x(r, 0) = prev[r];
      for (size_t j = 0; j < kNumTimeFeatures; ++j) {
        x(r, 1 + j) = tf[j];
      }
    }
    state = lstm_->Step(x, state);
    Matrix mu = mu_head_->Apply(state.h);
    Matrix sigma_raw = sigma_head_->Apply(state.h);
    for (size_t r = 0; r < num_samples; ++r) {
      const double sigma =
          SoftplusScalar(sigma_raw(r, 0)) + options_.min_sigma;
      double draw;
      if (options_.head == Head::kStudentT) {
        draw = mu(r, 0) + sigma * rng->StudentT(options_.student_t_dof);
      } else {
        draw = mu(r, 0) + sigma * rng->Normal();
      }
      trajectories[r][step] = draw * scale;
      prev[r] = draw;
    }
  }
  return trajectories;
}

ts::QuantileForecast DeepArForecaster::ReduceToQuantiles(
    const std::vector<std::vector<double>>& trajectories) const {
  const size_t h = options_.horizon;
  std::vector<std::vector<double>> values(h);
  std::vector<double> column(trajectories.size());
  for (size_t step = 0; step < h; ++step) {
    for (size_t r = 0; r < trajectories.size(); ++r) {
      column[r] = trajectories[r][step];
    }
    dist::Empirical empirical(column);
    values[step].reserve(options_.levels.size());
    for (double tau : options_.levels) {
      values[step].push_back(empirical.Quantile(tau));
    }
  }
  ts::QuantileForecast forecast(options_.levels, std::move(values));
  forecast.SortQuantilesPerStep();
  return forecast;
}

Result<ts::QuantileForecast> DeepArForecaster::Predict(
    const ForecastInput& input) const {
  RPAS_ASSIGN_OR_RETURN(std::vector<std::vector<double>> trajectories,
                        SampleTrajectories(input, options_.num_samples));
  return ReduceToQuantiles(trajectories);
}

Result<ts::QuantileForecast> DeepArForecaster::PredictSeeded(
    const ForecastInput& input, uint64_t seed) const {
  Rng rng = SamplingRng(seed);
  RPAS_ASSIGN_OR_RETURN(std::vector<std::vector<double>> trajectories,
                        SampleWithRng(input, options_.num_samples, &rng));
  return ReduceToQuantiles(trajectories);
}

Result<std::vector<ts::QuantileForecast>> DeepArForecaster::PredictBatch(
    const std::vector<ForecastInput>& inputs,
    const std::vector<uint64_t>& seeds) const {
  if (inputs.size() != seeds.size()) {
    return Status::InvalidArgument(
        "DeepAR: inputs and seeds must have equal length");
  }
  if (inputs.empty()) {
    return std::vector<ts::QuantileForecast>{};
  }
  if (!fitted_) {
    return Status::FailedPrecondition("DeepAR: Fit() not called");
  }
  for (const ForecastInput& input : inputs) {
    if (input.context.size() != options_.context_length) {
      return Status::InvalidArgument("DeepAR: context length mismatch");
    }
  }
  const size_t t_len = options_.context_length;
  const size_t h = options_.horizon;
  const size_t num_requests = inputs.size();
  const size_t samples = options_.num_samples;

  std::vector<double> scales(num_requests);
  for (size_t r = 0; r < num_requests; ++r) {
    scales[r] = WindowScale(inputs[r].context);
  }

  // Batched context encoding: one roll with one row per request. Every row
  // of an LSTM step is an independent function of that row's input and
  // state (MatMul accumulates each output element over k in a fixed order
  // regardless of the row count), so row r here is bit-identical to the
  // batch-of-1 encode PredictSeeded performs for the same request.
  nn::LstmCell::RawState encoded = lstm_->ZeroRawState(num_requests);
  for (size_t t = 1; t < t_len; ++t) {
    Matrix x(num_requests, kInputDim);
    for (size_t r = 0; r < num_requests; ++r) {
      x(r, 0) = inputs[r].context[t - 1] / scales[r];
      const auto tf =
          TimeFeatures(inputs[r].start_index + t, inputs[r].step_minutes);
      for (size_t j = 0; j < kNumTimeFeatures; ++j) {
        x(r, 1 + j) = tf[j];
      }
    }
    encoded = lstm_->Step(x, encoded);
  }

  // Stacked ancestral sampling: request r owns rows [r*S, (r+1)*S). Each
  // request draws from its own seed-derived generator in the same order as
  // the unbatched path (per step: its rows in sample order), so the draws —
  // and therefore the trajectories — match PredictSeeded exactly.
  const size_t rows = num_requests * samples;
  nn::LstmCell::RawState state = lstm_->ZeroRawState(rows);
  for (size_t r = 0; r < num_requests; ++r) {
    for (size_t s = 0; s < samples; ++s) {
      for (size_t c = 0; c < options_.hidden_dim; ++c) {
        state.h(r * samples + s, c) = encoded.h(r, c);
        state.c(r * samples + s, c) = encoded.c(r, c);
      }
    }
  }
  std::vector<Rng> rngs;
  rngs.reserve(num_requests);
  for (size_t r = 0; r < num_requests; ++r) {
    rngs.push_back(SamplingRng(seeds[r]));
  }
  std::vector<double> prev(rows);
  for (size_t r = 0; r < num_requests; ++r) {
    for (size_t s = 0; s < samples; ++s) {
      prev[r * samples + s] = inputs[r].context.back() / scales[r];
    }
  }
  std::vector<std::vector<double>> trajectories(rows,
                                                std::vector<double>(h, 0.0));
  for (size_t step = 0; step < h; ++step) {
    Matrix x(rows, kInputDim);
    for (size_t r = 0; r < num_requests; ++r) {
      const auto tf = TimeFeatures(inputs[r].forecast_start() + step,
                                   inputs[r].step_minutes);
      for (size_t s = 0; s < samples; ++s) {
        const size_t row = r * samples + s;
        x(row, 0) = prev[row];
        for (size_t j = 0; j < kNumTimeFeatures; ++j) {
          x(row, 1 + j) = tf[j];
        }
      }
    }
    state = lstm_->Step(x, state);
    Matrix mu = mu_head_->Apply(state.h);
    Matrix sigma_raw = sigma_head_->Apply(state.h);
    for (size_t r = 0; r < num_requests; ++r) {
      for (size_t s = 0; s < samples; ++s) {
        const size_t row = r * samples + s;
        const double sigma =
            SoftplusScalar(sigma_raw(row, 0)) + options_.min_sigma;
        double draw;
        if (options_.head == Head::kStudentT) {
          draw = mu(row, 0) + sigma * rngs[r].StudentT(options_.student_t_dof);
        } else {
          draw = mu(row, 0) + sigma * rngs[r].Normal();
        }
        trajectories[row][step] = draw * scales[r];
        prev[row] = draw;
      }
    }
  }

  std::vector<ts::QuantileForecast> out;
  out.reserve(num_requests);
  std::vector<std::vector<double>> block(samples);
  for (size_t r = 0; r < num_requests; ++r) {
    for (size_t s = 0; s < samples; ++s) {
      block[s] = std::move(trajectories[r * samples + s]);
    }
    out.push_back(ReduceToQuantiles(block));
  }
  return out;
}

}  // namespace rpas::forecast
