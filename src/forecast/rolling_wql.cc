#include "forecast/rolling_wql.h"

namespace rpas::forecast {

RollingWql::RollingWql(size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) capacity_ = 1;
}

void RollingWql::Observe(double wql) {
  window_.push_back(wql);
  while (window_.size() > capacity_) window_.pop_front();
  ++total_observed_;
}

void RollingWql::Reset() { window_.clear(); }

double RollingWql::Mean() const {
  if (window_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : window_) sum += v;
  return sum / static_cast<double>(window_.size());
}

double RollingWql::Latest() const {
  return window_.empty() ? 0.0 : window_.back();
}

}  // namespace rpas::forecast
