#ifndef RPAS_FORECAST_SEASONAL_NAIVE_H_
#define RPAS_FORECAST_SEASONAL_NAIVE_H_

#include <vector>

#include "forecast/forecaster.h"
#include "ts/incremental.h"

namespace rpas::forecast {

/// Seasonal-naive probabilistic baseline: the point forecast repeats the
/// observation one season ago (falling back to the last observation when
/// the context is shorter than a season), and quantiles are Gaussian with a
/// stddev estimated from seasonal differences on the training series. A
/// sanity baseline for tests and ablations; not part of the paper's lineup.
class SeasonalNaiveForecaster final : public Forecaster {
 public:
  struct Options {
    size_t context_length = 72;
    size_t horizon = 72;
    size_t season = 144;  ///< steps per season (one day at 10-minute steps)
    std::vector<double> levels;
  };

  explicit SeasonalNaiveForecaster(Options options);

  Status Fit(const ts::TimeSeries& train) override;
  Result<ts::QuantileForecast> Predict(
      const ForecastInput& input) const override;

  /// Pushes the newest `new_points` of `history` through the seasonal
  /// residual accumulator — identical arithmetic to Fit() on the full
  /// series, O(new_points) work.
  Result<IncrementalUpdateReport> IncrementalUpdate(
      const ts::TimeSeries& history, size_t new_points) override;
  /// Replays the accumulator over all of `history` (used after the ingest
  /// ring dropped points). Keeps the previous stddev when `history` is too
  /// short to produce a seasonal diff.
  Status ResyncState(const ts::TimeSeries& history) override;
  bool SupportsIncrementalUpdate() const override { return true; }

  size_t Horizon() const override { return options_.horizon; }
  size_t ContextLength() const override { return options_.context_length; }
  const std::vector<double>& Levels() const override {
    return options_.levels;
  }
  std::string Name() const override { return "SeasonalNaive"; }

  double residual_stddev() const { return residual_stddev_; }

 private:
  Options options_;
  bool fitted_ = false;
  double residual_stddev_ = 1.0;
  ts::SeasonalAccumulator state_;
};

}  // namespace rpas::forecast

#endif  // RPAS_FORECAST_SEASONAL_NAIVE_H_
