#ifndef RPAS_FORECAST_DEEPAR_H_
#define RPAS_FORECAST_DEEPAR_H_

#include <memory>
#include <vector>

#include "forecast/forecaster.h"
#include "forecast/time_features.h"
#include "nn/layers.h"
#include "nn/trainer.h"
#include "ts/window.h"

namespace rpas::forecast {

/// DeepAR-style probabilistic forecaster (Salinas et al.; paper §III-B
/// "learn parametric distributions"): an autoregressive LSTM whose output
/// head emits per-step distribution parameters. Following the paper we use
/// a Student-t observation model ("longer tails ... better handle outliers
/// and noise"); a Gaussian head is available for ablation.
///
/// Multi-step quantile forecasts are produced by ancestral sampling:
/// `num_samples` trajectories are rolled forward feeding each sampled value
/// back as the next input, and per-step empirical quantiles are taken. This
/// is the sampling cost the paper's Table III attributes DeepAR's high
/// inference latency to — and the iterative error accumulation behind its
/// long-horizon degradation (Fig. 8).
class DeepArForecaster final : public Forecaster {
 public:
  enum class Head { kStudentT, kGaussian };

  struct Options {
    size_t context_length = 72;
    size_t horizon = 72;
    size_t hidden_dim = 32;
    size_t batch_size = 16;
    size_t num_samples = 100;  ///< sample paths per forecast
    Head head = Head::kStudentT;
    double student_t_dof = 4.0;
    nn::TrainConfig train;
    std::vector<double> levels;  ///< defaults to DefaultQuantileLevels()
    uint64_t seed = 11;
    double min_sigma = 1e-3;
    /// Gradient steps per IncrementalUpdate (warm-start fine-tune budget).
    int fine_tune_steps = 8;
    /// Learning rate for fine-tune steps; <= 0 reuses train.lr.
    double fine_tune_lr = 0.0;
  };

  explicit DeepArForecaster(Options options);

  Status Fit(const ts::TimeSeries& train) override;
  Result<ts::QuantileForecast> Predict(
      const ForecastInput& input) const override;

  /// Warm-start fine-tune: runs `fine_tune_steps` gradient steps on the
  /// suffix of `history` whose windows touch the newest `new_points`
  /// observations — O(new_points) work, weights continue from their current
  /// values. Models restored from quantized checkpoints are frozen and
  /// return FailedPrecondition.
  Result<IncrementalUpdateReport> IncrementalUpdate(
      const ts::TimeSeries& history, size_t new_points) override;
  bool SupportsIncrementalUpdate() const override { return true; }

  /// Seed-deterministic, thread-safe prediction: ancestral sampling draws
  /// from a generator derived from `seed` alone, so the forecast is a pure
  /// function of (weights, input, seed) — unlike Predict(), which advances
  /// the model's internal sampling stream.
  Result<ts::QuantileForecast> PredictSeeded(const ForecastInput& input,
                                             uint64_t seed) const override;

  /// Row-stacked batched inference: all requests share one context-encoding
  /// roll (R rows) and one ancestral-sampling roll (R * num_samples rows).
  /// Each request draws from its own seed-derived generator, so element i
  /// is bit-identical to PredictSeeded(inputs[i], seeds[i]) for every batch
  /// composition and thread count (MatMul row-independence contract).
  Result<std::vector<ts::QuantileForecast>> PredictBatch(
      const std::vector<ForecastInput>& inputs,
      const std::vector<uint64_t>& seeds) const override;
  bool SupportsBatchedInference() const override { return true; }

  Status SaveCheckpoint(const std::string& path) const override {
    return Save(path);
  }
  Status LoadCheckpoint(const std::string& path) override {
    return Load(path);
  }
  bool SupportsCheckpoint() const override { return true; }

  /// Serves from an rpasq.v1 checkpoint: the LSTM recurrence matrices and
  /// head weights stay in the mapped file (dequant-on-the-fly GEMM), biases
  /// decode to fp64. The model keeps `checkpoint` alive and becomes
  /// inference-only.
  Status LoadQuantizedCheckpoint(
      std::shared_ptr<const nn::QuantizedCheckpoint> checkpoint) override;
  bool SupportsQuantizedCheckpoint() const override { return true; }

  size_t Horizon() const override { return options_.horizon; }
  size_t ContextLength() const override { return options_.context_length; }
  const std::vector<double>& Levels() const override {
    return options_.levels;
  }
  std::string Name() const override { return "DeepAR"; }

  /// Full sampled trajectories (num_samples x horizon), before reduction to
  /// quantiles; used by tests and the Fig. 7 interval visualization.
  Result<std::vector<std::vector<double>>> SampleTrajectories(
      const ForecastInput& input, size_t num_samples) const;

  /// Persists the trained weights (text checkpoint, see nn/checkpoint.h).
  Status Save(const std::string& path) const;
  /// Restores weights saved by an identically configured model.
  Status Load(const std::string& path);

 private:
  void BuildModel();
  std::vector<autodiff::Parameter*> AllParams() const;
  std::string Signature() const;

  /// Runs the teacher-forced NLL training loop over `dataset` with the
  /// current weights as the starting point (shared by Fit and
  /// IncrementalUpdate).
  nn::TrainSummary RunTraining(const ts::WindowDataset& dataset,
                               double step_minutes,
                               const nn::TrainConfig& config);

  /// Sampling core shared by every prediction path: draws noise from `rng`
  /// (never from sample_rng_).
  Result<std::vector<std::vector<double>>> SampleWithRng(
      const ForecastInput& input, size_t num_samples, Rng* rng) const;
  /// Reduces sampled trajectories to per-step quantiles at the configured
  /// levels.
  ts::QuantileForecast ReduceToQuantiles(
      const std::vector<std::vector<double>>& trajectories) const;
  /// The seed-derived generator used by PredictSeeded / PredictBatch.
  static Rng SamplingRng(uint64_t seed);

  /// Input feature layout per step: [scaled y_prev, calendar features].
  static constexpr size_t kInputDim = 1 + kNumTimeFeatures;

  Options options_;
  bool fitted_ = false;
  std::unique_ptr<nn::LstmCell> lstm_;
  std::unique_ptr<nn::Dense> mu_head_;
  std::unique_ptr<nn::Dense> sigma_head_;
  mutable Rng sample_rng_;
  /// Keeps the mapped checkpoint alive while layers hold views into it.
  std::shared_ptr<const nn::QuantizedCheckpoint> qckpt_;
  /// IncrementalUpdate calls so far; salts each fine-tune's sampling seed.
  uint64_t update_count_ = 0;
};

}  // namespace rpas::forecast

#endif  // RPAS_FORECAST_DEEPAR_H_
