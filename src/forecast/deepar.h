#ifndef RPAS_FORECAST_DEEPAR_H_
#define RPAS_FORECAST_DEEPAR_H_

#include <memory>
#include <vector>

#include "forecast/forecaster.h"
#include "forecast/time_features.h"
#include "nn/layers.h"
#include "nn/trainer.h"

namespace rpas::forecast {

/// DeepAR-style probabilistic forecaster (Salinas et al.; paper §III-B
/// "learn parametric distributions"): an autoregressive LSTM whose output
/// head emits per-step distribution parameters. Following the paper we use
/// a Student-t observation model ("longer tails ... better handle outliers
/// and noise"); a Gaussian head is available for ablation.
///
/// Multi-step quantile forecasts are produced by ancestral sampling:
/// `num_samples` trajectories are rolled forward feeding each sampled value
/// back as the next input, and per-step empirical quantiles are taken. This
/// is the sampling cost the paper's Table III attributes DeepAR's high
/// inference latency to — and the iterative error accumulation behind its
/// long-horizon degradation (Fig. 8).
class DeepArForecaster final : public Forecaster {
 public:
  enum class Head { kStudentT, kGaussian };

  struct Options {
    size_t context_length = 72;
    size_t horizon = 72;
    size_t hidden_dim = 32;
    size_t batch_size = 16;
    size_t num_samples = 100;  ///< sample paths per forecast
    Head head = Head::kStudentT;
    double student_t_dof = 4.0;
    nn::TrainConfig train;
    std::vector<double> levels;  ///< defaults to DefaultQuantileLevels()
    uint64_t seed = 11;
    double min_sigma = 1e-3;
  };

  explicit DeepArForecaster(Options options);

  Status Fit(const ts::TimeSeries& train) override;
  Result<ts::QuantileForecast> Predict(
      const ForecastInput& input) const override;

  size_t Horizon() const override { return options_.horizon; }
  size_t ContextLength() const override { return options_.context_length; }
  const std::vector<double>& Levels() const override {
    return options_.levels;
  }
  std::string Name() const override { return "DeepAR"; }

  /// Full sampled trajectories (num_samples x horizon), before reduction to
  /// quantiles; used by tests and the Fig. 7 interval visualization.
  Result<std::vector<std::vector<double>>> SampleTrajectories(
      const ForecastInput& input, size_t num_samples) const;

  /// Persists the trained weights (text checkpoint, see nn/checkpoint.h).
  Status Save(const std::string& path) const;
  /// Restores weights saved by an identically configured model.
  Status Load(const std::string& path);

 private:
  void BuildModel();
  std::vector<autodiff::Parameter*> AllParams() const;
  std::string Signature() const;

  /// Input feature layout per step: [scaled y_prev, calendar features].
  static constexpr size_t kInputDim = 1 + kNumTimeFeatures;

  Options options_;
  bool fitted_ = false;
  std::unique_ptr<nn::LstmCell> lstm_;
  std::unique_ptr<nn::Dense> mu_head_;
  std::unique_ptr<nn::Dense> sigma_head_;
  mutable Rng sample_rng_;
};

}  // namespace rpas::forecast

#endif  // RPAS_FORECAST_DEEPAR_H_
