#include "forecast/qb5000.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "nn/losses.h"
#include "tensor/ops.h"
#include "ts/window.h"

namespace rpas::forecast {

using autodiff::Tape;
using autodiff::Var;
using tensor::Matrix;

Qb5000Forecaster::Qb5000Forecaster(Options options)
    : options_(std::move(options)) {
  RPAS_CHECK(options_.context_length > 0 && options_.horizon > 0);
  RPAS_CHECK(options_.kernel_bandwidth > 0.0);
}

std::vector<double> Qb5000Forecaster::LinearFeatures(
    const std::vector<double>& context, size_t forecast_start,
    double step_minutes) const {
  std::vector<double> f;
  f.reserve(context.size() + kNumTimeFeatures + 1);
  for (double v : context) {
    f.push_back(scaler_.Transform(v));
  }
  const auto tf = TimeFeatures(forecast_start, step_minutes);
  f.insert(f.end(), tf.begin(), tf.end());
  f.push_back(1.0);  // intercept
  return f;
}

Status Qb5000Forecaster::Fit(const ts::TimeSeries& train) {
  const size_t t_len = options_.context_length;
  const size_t h = options_.horizon;
  ts::WindowDataset dataset(train, t_len, h, /*stride=*/1);
  if (dataset.empty()) {
    return Status::InvalidArgument("QB5000: training series too short");
  }
  scaler_ = ts::AffineScaler::FitStandard(train.values);
  const double step_minutes = train.step_minutes;

  // ---- Component 1: direct multi-horizon ridge regression. ----
  {
    const size_t dim = t_len + kNumTimeFeatures + 1;
    Matrix a(dataset.size(), dim);
    for (size_t r = 0; r < dataset.size(); ++r) {
      const ts::Window& w = dataset[r];
      const std::vector<double> f =
          LinearFeatures(w.context, w.begin + t_len, step_minutes);
      for (size_t c = 0; c < dim; ++c) {
        a(r, c) = f[c];
      }
    }
    // Factor A^T A + ridge once; solve one RHS per horizon step.
    Matrix at = tensor::Transpose(a);
    Matrix ata = tensor::MatMul(at, a);
    for (size_t i = 0; i < dim; ++i) {
      ata(i, i) += options_.ridge;
    }
    lr_coeffs_ = Matrix(dim, h);
    for (size_t step = 0; step < h; ++step) {
      Matrix b(dataset.size(), 1);
      for (size_t r = 0; r < dataset.size(); ++r) {
        b(r, 0) = scaler_.Transform(dataset[r].target[step]);
      }
      RPAS_ASSIGN_OR_RETURN(
          Matrix coeffs,
          tensor::SolveLinearSystem(ata, tensor::MatMul(at, b)));
      for (size_t c = 0; c < dim; ++c) {
        lr_coeffs_(c, step) = coeffs(c, 0);
      }
    }
  }

  // ---- Component 2: autoregressive LSTM point model (MSE). ----
  {
    Rng init_rng(options_.seed);
    const size_t in_dim = 1 + kNumTimeFeatures;
    lstm_ = std::make_unique<nn::LstmCell>(in_dim, options_.lstm_hidden,
                                           &init_rng);
    lstm_head_ = std::make_unique<nn::Dense>(options_.lstm_hidden, 1,
                                             nn::Dense::Activation::kNone,
                                             &init_rng);
    std::vector<autodiff::Parameter*> params;
    for (nn::Module* m :
         std::initializer_list<nn::Module*>{lstm_.get(), lstm_head_.get()}) {
      for (auto* p : m->Params()) {
        params.push_back(p);
      }
    }
    auto loss_fn = [&, step_minutes](Tape* tape, Rng* rng) -> Var {
      const std::vector<size_t> indices =
          dataset.SampleIndices(options_.batch_size, rng);
      const size_t batch = indices.size();
      const size_t total = t_len + h;
      nn::LstmCell::State state = lstm_->ZeroState(tape, batch);
      Var loss;
      size_t terms = 0;
      for (size_t t = 1; t < total; ++t) {
        Var xv = tape->Input(batch, 1 + kNumTimeFeatures);
        Var yv = tape->Input(batch, 1);
        Matrix& x = *tape->MutableValue(xv);
        Matrix& target = *tape->MutableValue(yv);
        for (size_t r = 0; r < batch; ++r) {
          const ts::Window& w = dataset[indices[r]];
          const double prev =
              t - 1 < t_len ? w.context[t - 1] : w.target[t - 1 - t_len];
          const double cur = t < t_len ? w.context[t] : w.target[t - t_len];
          x(r, 0) = scaler_.Transform(prev);
          const auto tf = TimeFeatures(w.begin + t, step_minutes);
          for (size_t j = 0; j < kNumTimeFeatures; ++j) {
            x(r, 1 + j) = tf[j];
          }
          target(r, 0) = scaler_.Transform(cur);
        }
        state = lstm_->Step(tape, xv, state);
        Var pred = lstm_head_->Forward(tape, state.h);
        Var mse = nn::MseLoss(tape, pred, yv);
        loss = terms == 0 ? mse : tape->Add(loss, mse);
        ++terms;
      }
      return tape->Scale(loss, 1.0 / static_cast<double>(terms));
    };
    nn::TrainConfig config = options_.train;
    config.seed = options_.seed + 1;
    nn::TrainLoop(config, params, loss_fn);
  }

  // ---- Component 3: kernel-regression exemplars. ----
  {
    kernel_contexts_.clear();
    kernel_futures_.clear();
    Rng rng(options_.seed + 2);
    const std::vector<size_t> indices =
        dataset.SampleIndices(options_.max_kernel_windows, &rng);
    for (size_t idx : indices) {
      const ts::Window& w = dataset[idx];
      kernel_contexts_.push_back(scaler_.Transform(w.context));
      kernel_futures_.push_back(scaler_.Transform(w.target));
    }
  }

  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> Qb5000Forecaster::PredictLinear(
    const ForecastInput& input) const {
  if (!fitted_) {
    return Status::FailedPrecondition("QB5000: Fit() not called");
  }
  const std::vector<double> f = LinearFeatures(
      input.context, input.forecast_start(), input.step_minutes);
  Matrix x = Matrix::RowVector(f);
  Matrix pred = tensor::MatMul(x, lr_coeffs_);
  std::vector<double> out(options_.horizon);
  for (size_t step = 0; step < options_.horizon; ++step) {
    out[step] = scaler_.Inverse(pred(0, step));
  }
  return out;
}

Result<std::vector<double>> Qb5000Forecaster::PredictLstm(
    const ForecastInput& input) const {
  if (!fitted_) {
    return Status::FailedPrecondition("QB5000: Fit() not called");
  }
  const size_t t_len = options_.context_length;
  nn::LstmCell::RawState state = lstm_->ZeroRawState(1);
  for (size_t t = 1; t < t_len; ++t) {
    Matrix x(1, 1 + kNumTimeFeatures);
    x(0, 0) = scaler_.Transform(input.context[t - 1]);
    const auto tf = TimeFeatures(input.start_index + t, input.step_minutes);
    for (size_t j = 0; j < kNumTimeFeatures; ++j) {
      x(0, 1 + j) = tf[j];
    }
    state = lstm_->Step(x, state);
  }
  std::vector<double> out(options_.horizon);
  double prev = scaler_.Transform(input.context.back());
  for (size_t step = 0; step < options_.horizon; ++step) {
    Matrix x(1, 1 + kNumTimeFeatures);
    x(0, 0) = prev;
    const auto tf =
        TimeFeatures(input.forecast_start() + step, input.step_minutes);
    for (size_t j = 0; j < kNumTimeFeatures; ++j) {
      x(0, 1 + j) = tf[j];
    }
    state = lstm_->Step(x, state);
    const double pred = lstm_head_->Apply(state.h)(0, 0);
    out[step] = scaler_.Inverse(pred);
    prev = pred;
  }
  return out;
}

Result<std::vector<double>> Qb5000Forecaster::PredictKernel(
    const ForecastInput& input) const {
  if (!fitted_) {
    return Status::FailedPrecondition("QB5000: Fit() not called");
  }
  const std::vector<double> query = scaler_.Transform(input.context);
  const double inv_2bw2 =
      1.0 / (2.0 * options_.kernel_bandwidth * options_.kernel_bandwidth);
  // Log-sum-exp-stable Nadaraya-Watson weights.
  std::vector<double> log_w(kernel_contexts_.size());
  double max_log_w = -1e300;
  for (size_t i = 0; i < kernel_contexts_.size(); ++i) {
    double d2 = 0.0;
    for (size_t t = 0; t < query.size(); ++t) {
      const double diff = query[t] - kernel_contexts_[i][t];
      d2 += diff * diff;
    }
    log_w[i] = -d2 * inv_2bw2;
    max_log_w = std::max(max_log_w, log_w[i]);
  }
  std::vector<double> out(options_.horizon, 0.0);
  double total_w = 0.0;
  for (size_t i = 0; i < kernel_contexts_.size(); ++i) {
    const double w = std::exp(log_w[i] - max_log_w);
    total_w += w;
    for (size_t step = 0; step < options_.horizon; ++step) {
      out[step] += w * kernel_futures_[i][step];
    }
  }
  for (size_t step = 0; step < options_.horizon; ++step) {
    out[step] = scaler_.Inverse(out[step] / total_w);
  }
  return out;
}

Result<std::vector<double>> Qb5000Forecaster::PredictPoint(
    const ForecastInput& input) const {
  if (input.context.size() != options_.context_length) {
    return Status::InvalidArgument("QB5000: context length mismatch");
  }
  RPAS_ASSIGN_OR_RETURN(std::vector<double> lr, PredictLinear(input));
  RPAS_ASSIGN_OR_RETURN(std::vector<double> lstm, PredictLstm(input));
  RPAS_ASSIGN_OR_RETURN(std::vector<double> kernel, PredictKernel(input));
  std::vector<double> out(options_.horizon);
  for (size_t step = 0; step < options_.horizon; ++step) {
    out[step] = (lr[step] + lstm[step] + kernel[step]) / 3.0;
  }
  return out;
}

Result<ts::QuantileForecast> Qb5000Forecaster::Predict(
    const ForecastInput& input) const {
  RPAS_ASSIGN_OR_RETURN(std::vector<double> point, PredictPoint(input));
  std::vector<std::vector<double>> values(point.size());
  for (size_t step = 0; step < point.size(); ++step) {
    values[step] = {point[step]};
  }
  return ts::QuantileForecast(levels_, std::move(values));
}

}  // namespace rpas::forecast
