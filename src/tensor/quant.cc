#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/strings.h"

namespace rpas::tensor {
namespace {

// --- little-endian lane helpers (host-endianness independent) -------------

void StoreU16Le(uint16_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v & 0xFFu);
  p[1] = static_cast<uint8_t>(v >> 8);
}

uint16_t LoadU16Le(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

void StoreU32Le(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v & 0xFFu);
  p[1] = static_cast<uint8_t>((v >> 8) & 0xFFu);
  p[2] = static_cast<uint8_t>((v >> 16) & 0xFFu);
  p[3] = static_cast<uint8_t>((v >> 24) & 0xFFu);
}

uint32_t LoadU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void StoreU64Le(uint64_t v, uint8_t* p) {
  StoreU32Le(static_cast<uint32_t>(v & 0xFFFFFFFFu), p);
  StoreU32Le(static_cast<uint32_t>(v >> 32), p + 4);
}

uint64_t LoadU64Le(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32Le(p)) |
         (static_cast<uint64_t>(LoadU32Le(p + 4)) << 32);
}

void StoreF32Le(float v, uint8_t* p) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  StoreU32Le(bits, p);
}

float LoadF32Le(const uint8_t* p) {
  const uint32_t bits = LoadU32Le(p);
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void StoreF64Le(double v, uint8_t* p) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  StoreU64Le(bits, p);
}

double LoadF64Le(const uint8_t* p) {
  const uint64_t bits = LoadU64Le(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Encodes one q8 block: affine [min, min + 255*scale] mapping with one
/// unsigned byte code per value. `n` <= kQ8BlockValues; the code tail is
/// zero-padded (decodes to the block minimum, never read back).
void EncodeQ8Block(const double* src, size_t n, uint8_t* dst) {
  double lo = src[0];
  double hi = src[0];
  for (size_t i = 1; i < n; ++i) {
    lo = std::min(lo, src[i]);
    hi = std::max(hi, src[i]);
  }
  // Scale/zero are stored as f32: quantize them first and code against the
  // *stored* values, so decode error is bounded by the code rounding alone.
  const float zero = static_cast<float>(lo);
  float scale = static_cast<float>((hi - static_cast<double>(zero)) / 255.0);
  if (!(scale > 0.0f) || !std::isfinite(scale)) {
    scale = 0.0f;  // constant (or degenerate) block: every code decodes to zero-point
  }
  StoreF32Le(scale, dst);
  StoreF32Le(zero, dst + sizeof(float));
  uint8_t* codes = dst + 2 * sizeof(float);
  for (size_t i = 0; i < kQ8BlockValues; ++i) {
    if (i >= n || scale == 0.0f) {
      codes[i] = 0;
      continue;
    }
    const double q = std::nearbyint(
        (src[i] - static_cast<double>(zero)) / static_cast<double>(scale));
    codes[i] = static_cast<uint8_t>(q < 0.0 ? 0.0 : (q > 255.0 ? 255.0 : q));
  }
}

void DecodeQ8Block(const uint8_t* src, size_t n, double* dst) {
  const double scale = static_cast<double>(LoadF32Le(src));
  const double zero = static_cast<double>(LoadF32Le(src + sizeof(float)));
  const uint8_t* codes = src + 2 * sizeof(float);
  for (size_t i = 0; i < n; ++i) {
    dst[i] = zero + scale * static_cast<double>(codes[i]);
  }
}

}  // namespace

const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kF64:
      return "f64";
    case DType::kF32:
      return "f32";
    case DType::kF16:
      return "f16";
    case DType::kQ8:
      return "q8";
  }
  return "unknown";
}

Result<DType> ParseDType(std::string_view name) {
  if (name == "f64") {
    return DType::kF64;
  }
  if (name == "f32") {
    return DType::kF32;
  }
  if (name == "f16") {
    return DType::kF16;
  }
  if (name == "q8") {
    return DType::kQ8;
  }
  return Status::InvalidArgument("unknown dtype '" + std::string(name) +
                                 "' (expected f64|f32|f16|q8)");
}

bool DTypeValid(uint8_t code) {
  return code <= static_cast<uint8_t>(DType::kQ8);
}

size_t PayloadBytes(DType dtype, size_t count) {
  switch (dtype) {
    case DType::kF64:
      return count * 8;
    case DType::kF32:
      return count * 4;
    case DType::kF16:
      return count * 2;
    case DType::kQ8:
      return ((count + kQ8BlockValues - 1) / kQ8BlockValues) * kQ8BlockBytes;
  }
  return 0;
}

uint16_t F32ToF16Bits(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint16_t sign = static_cast<uint16_t>((bits >> 16) & 0x8000u);
  const uint32_t exp = (bits >> 23) & 0xFFu;
  uint32_t mant = bits & 0x7FFFFFu;
  if (exp == 0xFFu) {  // inf / nan: keep the top mantissa bits, force qNaN
    if (mant == 0) {
      return static_cast<uint16_t>(sign | 0x7C00u);
    }
    return static_cast<uint16_t>(sign | 0x7C00u | 0x200u | (mant >> 13));
  }
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 0x1F) {  // overflow -> infinity
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (e <= 0) {  // subnormal half (or underflow to zero)
    if (e < -10) {
      return sign;
    }
    mant |= 0x800000u;  // make the implicit leading bit explicit
    const int shift = 14 - e;  // 14..24 bits dropped
    uint32_t half = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half & 1u))) {
      ++half;  // round to nearest, ties to even
    }
    return static_cast<uint16_t>(sign | half);
  }
  uint32_t half = static_cast<uint32_t>(e << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) {
    ++half;  // carry may bump the exponent; 0x7C00 (infinity) is then correct
  }
  return static_cast<uint16_t>(sign | half);
}

float F16BitsToF32(uint16_t bits) {
  const uint32_t sign = static_cast<uint32_t>(bits & 0x8000u) << 16;
  const uint32_t exp = (bits >> 10) & 0x1Fu;
  uint32_t mant = bits & 0x3FFu;
  uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // signed zero
    } else {
      int shift = 0;
      while (!(mant & 0x400u)) {  // normalize the subnormal
        mant <<= 1;
        ++shift;
      }
      mant &= 0x3FFu;
      out = sign | (static_cast<uint32_t>(113 - shift) << 23) | (mant << 13);
    }
  } else if (exp == 0x1Fu) {
    out = sign | 0x7F800000u | (mant << 13);  // inf / nan
  } else {
    out = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float value;
  std::memcpy(&value, &out, sizeof(value));
  return value;
}

void EncodePayload(DType dtype, const double* src, size_t count,
                   uint8_t* dst) {
  switch (dtype) {
    case DType::kF64:
      for (size_t i = 0; i < count; ++i) {
        StoreF64Le(src[i], dst + i * 8);
      }
      return;
    case DType::kF32:
      for (size_t i = 0; i < count; ++i) {
        StoreF32Le(static_cast<float>(src[i]), dst + i * 4);
      }
      return;
    case DType::kF16:
      for (size_t i = 0; i < count; ++i) {
        StoreU16Le(F32ToF16Bits(static_cast<float>(src[i])), dst + i * 2);
      }
      return;
    case DType::kQ8:
      for (size_t i = 0; i < count; i += kQ8BlockValues) {
        const size_t n = std::min(kQ8BlockValues, count - i);
        EncodeQ8Block(src + i, n, dst + (i / kQ8BlockValues) * kQ8BlockBytes);
      }
      return;
  }
}

void DecodePayload(DType dtype, const uint8_t* payload, size_t count,
                   double* dst) {
  switch (dtype) {
    case DType::kF64:
      for (size_t i = 0; i < count; ++i) {
        dst[i] = LoadF64Le(payload + i * 8);
      }
      return;
    case DType::kF32:
      for (size_t i = 0; i < count; ++i) {
        dst[i] = static_cast<double>(LoadF32Le(payload + i * 4));
      }
      return;
    case DType::kF16:
      for (size_t i = 0; i < count; ++i) {
        dst[i] = static_cast<double>(F16BitsToF32(LoadU16Le(payload + i * 2)));
      }
      return;
    case DType::kQ8:
      for (size_t i = 0; i < count; i += kQ8BlockValues) {
        const size_t n = std::min(kQ8BlockValues, count - i);
        DecodeQ8Block(payload + (i / kQ8BlockValues) * kQ8BlockBytes, n,
                      dst + i);
      }
      return;
  }
}

Status DequantizeToMatrix(const QTensorView& view, Matrix* out) {
  if (!view.valid()) {
    return Status::InvalidArgument("DequantizeToMatrix: null tensor view");
  }
  if (view.payload_bytes != PayloadBytes(view.dtype, view.size())) {
    return Status::InvalidArgument(StrFormat(
        "DequantizeToMatrix: payload is %zu bytes, %zux%zu %s needs %zu",
        view.payload_bytes, view.rows, view.cols, DTypeName(view.dtype),
        PayloadBytes(view.dtype, view.size())));
  }
  out->ResizeZero(view.rows, view.cols);
  DecodePayload(view.dtype, view.payload, view.size(), out->data());
  return Status::OK();
}

double MaxAbsError(DType dtype, const double* src, size_t count) {
  if (count == 0) {
    return 0.0;
  }
  std::vector<uint8_t> encoded(PayloadBytes(dtype, count));
  std::vector<double> decoded(count);
  EncodePayload(dtype, src, count, encoded.data());
  DecodePayload(dtype, encoded.data(), count, decoded.data());
  double max_err = 0.0;
  for (size_t i = 0; i < count; ++i) {
    max_err = std::max(max_err, std::fabs(decoded[i] - src[i]));
  }
  return max_err;
}

}  // namespace rpas::tensor
