#ifndef RPAS_TENSOR_KERNELS_INTERNAL_H_
#define RPAS_TENSOR_KERNELS_INTERNAL_H_

// Internal contract between kernels.cc (dispatch + scalar + SSE2) and
// kernels_avx2.cc (AVX2+FMA bodies compiled via function target attributes).
// Not installed / not for use outside src/tensor.

#include <cstddef>
#include <cstdint>

// The AVX2 translation unit uses GCC/Clang `__attribute__((target))` function
// multiversioning so the rest of the build keeps the portable baseline flags.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RPAS_KERNELS_HAVE_AVX2 1
#else
#define RPAS_KERNELS_HAVE_AVX2 0
#endif

#if defined(__x86_64__)
#define RPAS_KERNELS_HAVE_SSE2 1
#else
#define RPAS_KERNELS_HAVE_SSE2 0
#endif

#if RPAS_KERNELS_HAVE_AVX2

namespace rpas::tensor::kernels::avx2 {

void GemmPackedRows(size_t r0, size_t r1, size_t n, size_t k, const double* a,
                    size_t lda, const double* packed, double* c, size_t ldc);
void GemmTN(size_t m, size_t n, size_t k, const double* a, size_t lda,
            const double* b, size_t ldb, double* c, size_t ldc);
void GemmNT(size_t m, size_t n, size_t k, const double* a, size_t lda,
            const double* b, size_t ldb, double* c, size_t ldc);
void Axpy(size_t n, double alpha, const double* x, double* y);
double Dot(size_t n, const double* x, const double* y);
double Sum(size_t n, const double* x);
void EwTanh(size_t n, const double* x, double* out);
void EwSigmoid(size_t n, const double* x, double* out);
void LstmCellForward(size_t batch, size_t hidden, double* gates,
                     const double* c_prev, size_t ldcp, double* h_out,
                     size_t ldh, double* c_out, size_t ldc, double* tanh_c);
void LstmCellBackward(size_t batch, size_t hidden, const double* act,
                      const double* c_prev, size_t ldcp, const double* tanh_c,
                      const double* dh, size_t ldh, const double* dc,
                      size_t ldc, double* dgates, double* dc_prev);
/// Exact integer dot of one 64-value int8 block: maddubs on (|a|, sign(w,a))
/// — pair sums bounded by 2*127*127 < 2^15, so the i16 stage never
/// saturates and the result equals the scalar int32 dot bit-for-bit.
int32_t DotQ8Block(const int8_t* a, const int8_t* w);

}  // namespace rpas::tensor::kernels::avx2

#endif  // RPAS_KERNELS_HAVE_AVX2

#endif  // RPAS_TENSOR_KERNELS_INTERNAL_H_
