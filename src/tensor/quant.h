#ifndef RPAS_TENSOR_QUANT_H_
#define RPAS_TENSOR_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "tensor/matrix.h"

namespace rpas::tensor {

/// Storage dtypes understood by the rpasq.v1 checkpoint format and the
/// quantized serving kernels. Values are the on-disk dtype codes — never
/// renumber.
///
///  * kF64 — 8-byte IEEE double, the native compute type.
///  * kF32 — 4-byte IEEE float (weights round-tripped once at write time).
///  * kF16 — 2-byte IEEE binary16, round-to-nearest-even at write time;
///    decoding back to double is exact (every binary16 is a double).
///  * kQ8 — block-quantized 8-bit (ggml-style): blocks of kQ8BlockValues
///    values, each stored as a float32 scale, a float32 zero-point (the
///    block minimum), and one unsigned byte code per value, with
///    value ≈ zero + scale * code.
enum class DType : uint8_t {
  kF64 = 0,
  kF32 = 1,
  kF16 = 2,
  kQ8 = 3,
};

/// "f64" | "f32" | "f16" | "q8".
const char* DTypeName(DType dtype);

/// Inverse of DTypeName; InvalidArgument on anything else.
Result<DType> ParseDType(std::string_view name);

/// True for the dtype codes the loader accepts.
bool DTypeValid(uint8_t code);

/// Q8 block geometry: 64 values per block, serialized as
/// [f32 scale][f32 zero][64 u8 codes] = 72 bytes. The final block of a
/// tensor is zero-padded in the code tail.
inline constexpr size_t kQ8BlockValues = 64;
inline constexpr size_t kQ8BlockBytes = 2 * sizeof(float) + kQ8BlockValues;

/// Serialized payload size for `count` values of `dtype`. Zero only when
/// count == 0.
size_t PayloadBytes(DType dtype, size_t count);

// ---------------------------------------------------------------------------
// Scalar fp16 conversion (bit-level, no hardware dependence).
// ---------------------------------------------------------------------------

/// IEEE binary32 -> binary16 bits with round-to-nearest-even; overflow goes
/// to infinity, NaN payload top bits are preserved.
uint16_t F32ToF16Bits(float value);

/// IEEE binary16 bits -> binary32 (exact).
float F16BitsToF32(uint16_t bits);

// ---------------------------------------------------------------------------
// Payload encode/decode. All multi-byte lanes are little-endian on disk and
// are assembled byte-by-byte, so encode and decode are host-endianness
// independent. Encoding quantizes (lossy for f32/f16/q8); decoding is the
// exact inverse of the stored representation.
// ---------------------------------------------------------------------------

/// Serializes `count` doubles into `dst` (PayloadBytes(dtype, count) bytes).
void EncodePayload(DType dtype, const double* src, size_t count, uint8_t* dst);

/// Deserializes `count` doubles out of a payload produced by EncodePayload.
void DecodePayload(DType dtype, const uint8_t* payload, size_t count,
                   double* dst);

// ---------------------------------------------------------------------------
// Zero-copy tensor views into a mapped checkpoint.
// ---------------------------------------------------------------------------

/// One tensor inside a mapped rpasq.v1 checkpoint: shape plus a pointer to
/// the raw serialized payload. The view does not own the bytes — whoever
/// hands out views (nn::QuantizedCheckpoint) must outlive them.
struct QTensorView {
  DType dtype = DType::kF64;
  size_t rows = 0;
  size_t cols = 0;
  const uint8_t* payload = nullptr;
  size_t payload_bytes = 0;

  size_t size() const { return rows * cols; }
  bool valid() const { return payload != nullptr; }
};

/// Decodes a view into a freshly shaped fp64 matrix (the slow path, used
/// for biases and small tensors; large weights stay quantized and go
/// through the kernels::Gemm{F32,F16,Q8} serving paths instead).
Status DequantizeToMatrix(const QTensorView& view, Matrix* out);

/// Max |encode(decode(x)) - x| over the tensor for a dtype — the bound the
/// golden-file round-trip tests assert. For kQ8 the bound is
/// (max-min)/255/2 per block; for kF32/kF16 it is half an ULP at the
/// largest magnitude; kF64 is exact.
double MaxAbsError(DType dtype, const double* src, size_t count);

}  // namespace rpas::tensor

#endif  // RPAS_TENSOR_QUANT_H_
