#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "tensor/kernels_internal.h"

#if RPAS_KERNELS_HAVE_SSE2
#include <emmintrin.h>
#endif

namespace rpas::tensor::kernels {

// ------------------------------------------------------------- dispatch ---

namespace {

// -1 = no override; otherwise the int value of the forced SimdLevel.
std::atomic<int> g_forced_level{-1};

bool CpuSupports(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSse2:
#if RPAS_KERNELS_HAVE_SSE2
      return true;  // SSE2 is part of the x86-64 baseline.
#else
      return false;
#endif
    case SimdLevel::kAvx2:
#if RPAS_KERNELS_HAVE_AVX2
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
  }
  return false;
}

SimdLevel BestSupported() {
  if (CpuSupports(SimdLevel::kAvx2)) {
    return SimdLevel::kAvx2;
  }
  if (CpuSupports(SimdLevel::kSse2)) {
    return SimdLevel::kSse2;
  }
  return SimdLevel::kScalar;
}

bool ParseLevelName(const char* name, SimdLevel* out) {
  if (std::strcmp(name, "scalar") == 0) {
    *out = SimdLevel::kScalar;
    return true;
  }
  if (std::strcmp(name, "sse2") == 0) {
    *out = SimdLevel::kSse2;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = SimdLevel::kAvx2;
    return true;
  }
  return false;
}

// Resolved once; RPAS_SIMD is read at first kernel use, not per call.
SimdLevel ResolveDefaultLevel() {
  SimdLevel level = BestSupported();
  if (const char* env = std::getenv("RPAS_SIMD")) {
    SimdLevel requested;
    if (!ParseLevelName(env, &requested)) {
      std::fprintf(stderr,
                   "rpas: ignoring unknown RPAS_SIMD=%s "
                   "(expected scalar|sse2|avx2)\n",
                   env);
    } else if (requested > level) {
      std::fprintf(stderr,
                   "rpas: RPAS_SIMD=%s not supported on this CPU/build; "
                   "falling back to %s\n",
                   env, LevelName(level));
    } else {
      level = requested;
    }
  }
  return level;
}

}  // namespace

SimdLevel ActiveLevel() {
  const int forced = g_forced_level.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return static_cast<SimdLevel>(forced);
  }
  static const SimdLevel kDefault = ResolveDefaultLevel();
  return kDefault;
}

const char* LevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool LevelCompiled(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSse2:
      return RPAS_KERNELS_HAVE_SSE2 != 0;
    case SimdLevel::kAvx2:
      return RPAS_KERNELS_HAVE_AVX2 != 0;
  }
  return false;
}

bool LevelSupported(SimdLevel level) {
  return LevelCompiled(level) && CpuSupports(level);
}

ScopedSimdLevel::ScopedSimdLevel(SimdLevel level) : previous_(ActiveLevel()) {
  SimdLevel clamped = level;
  while (clamped > SimdLevel::kScalar && !LevelSupported(clamped)) {
    clamped = static_cast<SimdLevel>(static_cast<int>(clamped) - 1);
  }
  g_forced_level.store(static_cast<int>(clamped), std::memory_order_relaxed);
}

ScopedSimdLevel::~ScopedSimdLevel() {
  g_forced_level.store(static_cast<int>(previous_), std::memory_order_relaxed);
}

// --------------------------------------------------------- scalar kernels ---

namespace {

// Cache blocking mirrors the historical ops::MatMul loops exactly; per output
// element the k-accumulation still runs in globally increasing p order, so
// this is the bit-exact reference every other level is tested against.
constexpr size_t kBlockK = 64;
constexpr size_t kBlockJ = 256;

double ScalarSigmoid(double v) {
  return v >= 0.0 ? 1.0 / (1.0 + std::exp(-v))
                  : std::exp(v) / (1.0 + std::exp(v));
}

double ScalarSoftplus(double v) {
  // Stable: log(1 + e^x) = max(x, 0) + log1p(e^{-|x|}).
  return (v > 0.0 ? v : 0.0) + std::log1p(std::exp(-std::fabs(v)));
}

void GemmPackedRowsScalar(size_t r0, size_t r1, size_t n, size_t k,
                          const double* a, size_t lda, const double* packed,
                          double* c, size_t ldc) {
  for (size_t j0 = 0; j0 < n; j0 += kPanelWidth) {
    const size_t w = std::min(kPanelWidth, n - j0);
    const double* panel = packed + (j0 / kPanelWidth) * k * kPanelWidth;
    for (size_t i = r0; i < r1; ++i) {
      const double* a_row = a + i * lda;
      double* c_row = c + i * ldc + j0;
      for (size_t p = 0; p < k; ++p) {
        const double a_ip = a_row[p];
        const double* b_row = panel + p * kPanelWidth;
        for (size_t j = 0; j < w; ++j) {
          c_row[j] += a_ip * b_row[j];
        }
      }
    }
  }
}

void GemmTNScalar(size_t m, size_t n, size_t k, const double* a, size_t lda,
                  const double* b, size_t ldb, double* c, size_t ldc) {
  // c[i][j] += sum_p a[p][i] * b[p][j], ascending p: the exact accumulation
  // order of Transpose(a) followed by the reference GEMM.
  for (size_t p = 0; p < k; ++p) {
    const double* a_row = a + p * lda;
    const double* b_row = b + p * ldb;
    for (size_t i = 0; i < m; ++i) {
      const double a_pi = a_row[i];
      double* c_row = c + i * ldc;
      for (size_t j = 0; j < n; ++j) {
        c_row[j] += a_pi * b_row[j];
      }
    }
  }
}

void GemmNTScalar(size_t m, size_t n, size_t k, const double* a, size_t lda,
                  const double* b, size_t ldb, double* c, size_t ldc) {
  for (size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * lda;
    double* c_row = c + i * ldc;
    for (size_t j = 0; j < n; ++j) {
      const double* b_row = b + j * ldb;
      double s = c_row[j];
      for (size_t p = 0; p < k; ++p) {
        s += a_row[p] * b_row[p];
      }
      c_row[j] = s;
    }
  }
}

void LstmCellForwardScalar(size_t batch, size_t hidden, double* gates,
                           const double* c_prev, size_t ldcp, double* h_out,
                           size_t ldh, double* c_out, size_t ldc,
                           double* tanh_c) {
  for (size_t r = 0; r < batch; ++r) {
    double* g_row = gates + r * 4 * hidden;
    const double* cp_row = c_prev + r * ldcp;
    double* h_row = h_out + r * ldh;
    double* c_row = c_out + r * ldc;
    double* tc_row = tanh_c != nullptr ? tanh_c + r * hidden : nullptr;
    for (size_t j = 0; j < hidden; ++j) {
      const double i = ScalarSigmoid(g_row[j]);
      const double f = ScalarSigmoid(g_row[hidden + j]);
      const double g = std::tanh(g_row[2 * hidden + j]);
      const double o = ScalarSigmoid(g_row[3 * hidden + j]);
      // Mul-then-add in the historical shapes (f*c + i*g; no FMA) so the
      // scalar level reproduces the old per-node graph bit-for-bit.
      const double t1 = f * cp_row[j];
      const double t2 = i * g;
      const double cn = t1 + t2;
      const double tc = std::tanh(cn);
      g_row[j] = i;
      g_row[hidden + j] = f;
      g_row[2 * hidden + j] = g;
      g_row[3 * hidden + j] = o;
      c_row[j] = cn;
      h_row[j] = o * tc;
      if (tc_row != nullptr) {
        tc_row[j] = tc;
      }
    }
  }
}

void LstmCellBackwardScalar(size_t batch, size_t hidden, const double* act,
                            const double* c_prev, size_t ldcp,
                            const double* tanh_c, const double* dh, size_t ldh,
                            const double* dc, size_t ldc, double* dgates,
                            double* dc_prev) {
  for (size_t r = 0; r < batch; ++r) {
    const double* a_row = act + r * 4 * hidden;
    const double* cp_row = c_prev + r * ldcp;
    const double* tc_row = tanh_c + r * hidden;
    const double* dh_row = dh + r * ldh;
    const double* dc_row = dc + r * ldc;
    double* dg_row = dgates + r * 4 * hidden;
    double* dcp_row = dc_prev + r * hidden;
    for (size_t j = 0; j < hidden; ++j) {
      const double i = a_row[j];
      const double f = a_row[hidden + j];
      const double g = a_row[2 * hidden + j];
      const double o = a_row[3 * hidden + j];
      const double tc = tc_row[j];
      // Expression shapes replicate the old per-node backward chain exactly
      // (each rounding step preserved), so parameter gradients at the scalar
      // level match the unfused graph bit-for-bit.
      const double d_o = dh_row[j] * tc;
      const double d_tc = dh_row[j] * o;
      const double d_c = dc_row[j] + d_tc * (1.0 - tc * tc);
      const double d_f = d_c * cp_row[j];
      const double d_i = d_c * g;
      const double d_g = d_c * i;
      dcp_row[j] = d_c * f;
      dg_row[j] = (d_i * i) * (1.0 - i);
      dg_row[hidden + j] = (d_f * f) * (1.0 - f);
      dg_row[2 * hidden + j] = d_g * (1.0 - g * g);
      dg_row[3 * hidden + j] = (d_o * o) * (1.0 - o);
    }
  }
}

// Cost model for the parallel drivers. Forking the shared pool costs on the
// order of microseconds, so products below the flop threshold run as one
// chunk on the calling thread (ParallelFor's serial path) — the tiny GEMMs
// of a single decision round never pay scheduling overhead. Thresholds and
// grains depend only on operand shapes, never the thread count, keeping the
// partition (and the result) reproducible across RPAS_NUM_THREADS values.
constexpr double kMinParallelFlops = 256.0 * 1024.0;
// Rows per chunk once a product clears the threshold. Even, so chunk
// boundaries preserve the SIMD kernels' 2-row register tiling.
constexpr size_t kGemmRowGrainRows = 16;
// The fused cell step is transcendental-bound; one tanh/sigmoid costs tens
// of flops, and each batch element evaluates 4*hidden of them.
constexpr double kLstmFlopsPerGate = 16.0;
constexpr size_t kLstmRowGrainRows = 8;

#if RPAS_KERNELS_HAVE_SSE2

// SSE2 GEMM: 2-wide mul-then-add in the same per-element accumulation order
// as the scalar reference — bit-identical by construction, just wider.

void GemmPanelSse2(size_t r0, size_t r1, size_t w, size_t k, const double* a,
                   size_t lda, const double* panel, double* c, size_t ldc) {
  if (w == kPanelWidth) {
    size_t i = r0;
    for (; i + 2 <= r1; i += 2) {
      double* c0 = c + i * ldc;
      double* c1 = c + (i + 1) * ldc;
      __m128d acc00 = _mm_loadu_pd(c0);
      __m128d acc01 = _mm_loadu_pd(c0 + 2);
      __m128d acc02 = _mm_loadu_pd(c0 + 4);
      __m128d acc03 = _mm_loadu_pd(c0 + 6);
      __m128d acc10 = _mm_loadu_pd(c1);
      __m128d acc11 = _mm_loadu_pd(c1 + 2);
      __m128d acc12 = _mm_loadu_pd(c1 + 4);
      __m128d acc13 = _mm_loadu_pd(c1 + 6);
      const double* a0 = a + i * lda;
      const double* a1 = a + (i + 1) * lda;
      for (size_t p = 0; p < k; ++p) {
        const double* b_row = panel + p * kPanelWidth;
        const __m128d b0 = _mm_loadu_pd(b_row);
        const __m128d b1 = _mm_loadu_pd(b_row + 2);
        const __m128d b2 = _mm_loadu_pd(b_row + 4);
        const __m128d b3 = _mm_loadu_pd(b_row + 6);
        const __m128d av0 = _mm_set1_pd(a0[p]);
        acc00 = _mm_add_pd(acc00, _mm_mul_pd(av0, b0));
        acc01 = _mm_add_pd(acc01, _mm_mul_pd(av0, b1));
        acc02 = _mm_add_pd(acc02, _mm_mul_pd(av0, b2));
        acc03 = _mm_add_pd(acc03, _mm_mul_pd(av0, b3));
        const __m128d av1 = _mm_set1_pd(a1[p]);
        acc10 = _mm_add_pd(acc10, _mm_mul_pd(av1, b0));
        acc11 = _mm_add_pd(acc11, _mm_mul_pd(av1, b1));
        acc12 = _mm_add_pd(acc12, _mm_mul_pd(av1, b2));
        acc13 = _mm_add_pd(acc13, _mm_mul_pd(av1, b3));
      }
      _mm_storeu_pd(c0, acc00);
      _mm_storeu_pd(c0 + 2, acc01);
      _mm_storeu_pd(c0 + 4, acc02);
      _mm_storeu_pd(c0 + 6, acc03);
      _mm_storeu_pd(c1, acc10);
      _mm_storeu_pd(c1 + 2, acc11);
      _mm_storeu_pd(c1 + 4, acc12);
      _mm_storeu_pd(c1 + 6, acc13);
    }
    for (; i < r1; ++i) {
      double* c0 = c + i * ldc;
      __m128d acc0 = _mm_loadu_pd(c0);
      __m128d acc1 = _mm_loadu_pd(c0 + 2);
      __m128d acc2 = _mm_loadu_pd(c0 + 4);
      __m128d acc3 = _mm_loadu_pd(c0 + 6);
      const double* a0 = a + i * lda;
      for (size_t p = 0; p < k; ++p) {
        const double* b_row = panel + p * kPanelWidth;
        const __m128d av = _mm_set1_pd(a0[p]);
        acc0 = _mm_add_pd(acc0, _mm_mul_pd(av, _mm_loadu_pd(b_row)));
        acc1 = _mm_add_pd(acc1, _mm_mul_pd(av, _mm_loadu_pd(b_row + 2)));
        acc2 = _mm_add_pd(acc2, _mm_mul_pd(av, _mm_loadu_pd(b_row + 4)));
        acc3 = _mm_add_pd(acc3, _mm_mul_pd(av, _mm_loadu_pd(b_row + 6)));
      }
      _mm_storeu_pd(c0, acc0);
      _mm_storeu_pd(c0 + 2, acc1);
      _mm_storeu_pd(c0 + 4, acc2);
      _mm_storeu_pd(c0 + 6, acc3);
    }
    return;
  }
  // Column-tail panel: stage the row segment in a zero-padded buffer, run the
  // full-width kernel arithmetic, and copy back only the live columns. The
  // per-live-element operation sequence is identical to the full-panel case.
  for (size_t i = r0; i < r1; ++i) {
    double tmp[kPanelWidth] = {0, 0, 0, 0, 0, 0, 0, 0};
    double* c0 = c + i * ldc;
    for (size_t j = 0; j < w; ++j) {
      tmp[j] = c0[j];
    }
    __m128d acc0 = _mm_loadu_pd(tmp);
    __m128d acc1 = _mm_loadu_pd(tmp + 2);
    __m128d acc2 = _mm_loadu_pd(tmp + 4);
    __m128d acc3 = _mm_loadu_pd(tmp + 6);
    const double* a0 = a + i * lda;
    for (size_t p = 0; p < k; ++p) {
      const double* b_row = panel + p * kPanelWidth;
      const __m128d av = _mm_set1_pd(a0[p]);
      acc0 = _mm_add_pd(acc0, _mm_mul_pd(av, _mm_loadu_pd(b_row)));
      acc1 = _mm_add_pd(acc1, _mm_mul_pd(av, _mm_loadu_pd(b_row + 2)));
      acc2 = _mm_add_pd(acc2, _mm_mul_pd(av, _mm_loadu_pd(b_row + 4)));
      acc3 = _mm_add_pd(acc3, _mm_mul_pd(av, _mm_loadu_pd(b_row + 6)));
    }
    _mm_storeu_pd(tmp, acc0);
    _mm_storeu_pd(tmp + 2, acc1);
    _mm_storeu_pd(tmp + 4, acc2);
    _mm_storeu_pd(tmp + 6, acc3);
    for (size_t j = 0; j < w; ++j) {
      c0[j] = tmp[j];
    }
  }
}

void GemmPackedRowsSse2(size_t r0, size_t r1, size_t n, size_t k,
                        const double* a, size_t lda, const double* packed,
                        double* c, size_t ldc) {
  for (size_t j0 = 0; j0 < n; j0 += kPanelWidth) {
    const size_t w = std::min(kPanelWidth, n - j0);
    const double* panel = packed + (j0 / kPanelWidth) * k * kPanelWidth;
    GemmPanelSse2(r0, r1, w, k, a, lda, panel, c + j0, ldc);
  }
}

void AxpySse2(size_t n, double alpha, const double* x, double* y) {
  const __m128d av = _mm_set1_pd(alpha);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(
        y + i, _mm_add_pd(_mm_loadu_pd(y + i),
                          _mm_mul_pd(av, _mm_loadu_pd(x + i))));
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

#endif  // RPAS_KERNELS_HAVE_SSE2

}  // namespace

// ------------------------------------------------------------ entry points ---

size_t PackedSize(size_t k, size_t n) {
  const size_t panels = (n + kPanelWidth - 1) / kPanelWidth;
  return panels * k * kPanelWidth;
}

void PackB(size_t k, size_t n, const double* b, size_t ldb, double* packed) {
  for (size_t j0 = 0; j0 < n; j0 += kPanelWidth) {
    const size_t w = std::min(kPanelWidth, n - j0);
    double* dst = packed + (j0 / kPanelWidth) * k * kPanelWidth;
    for (size_t p = 0; p < k; ++p) {
      const double* src = b + p * ldb + j0;
      size_t j = 0;
      for (; j < w; ++j) {
        dst[j] = src[j];
      }
      for (; j < kPanelWidth; ++j) {
        dst[j] = 0.0;
      }
      dst += kPanelWidth;
    }
  }
}

void GemmPackedRows(SimdLevel level, size_t r0, size_t r1, size_t n, size_t k,
                    const double* a, size_t lda, const double* packed,
                    double* c, size_t ldc) {
#if RPAS_KERNELS_HAVE_AVX2
  if (level == SimdLevel::kAvx2) {
    avx2::GemmPackedRows(r0, r1, n, k, a, lda, packed, c, ldc);
    return;
  }
#endif
#if RPAS_KERNELS_HAVE_SSE2
  if (level >= SimdLevel::kSse2) {
    GemmPackedRowsSse2(r0, r1, n, k, a, lda, packed, c, ldc);
    return;
  }
#endif
  (void)level;
  GemmPackedRowsScalar(r0, r1, n, k, a, lda, packed, c, ldc);
}

void GemmRowsScalar(size_t r0, size_t r1, size_t n, size_t k, const double* a,
                    size_t lda, const double* b, size_t ldb, double* c,
                    size_t ldc) {
  for (size_t p0 = 0; p0 < k; p0 += kBlockK) {
    const size_t p1 = std::min(p0 + kBlockK, k);
    for (size_t j0 = 0; j0 < n; j0 += kBlockJ) {
      const size_t j1 = std::min(j0 + kBlockJ, n);
      for (size_t i = r0; i < r1; ++i) {
        double* c_row = c + i * ldc;
        const double* a_row = a + i * lda;
        for (size_t p = p0; p < p1; ++p) {
          const double a_ip = a_row[p];
          const double* b_row = b + p * ldb;
          for (size_t j = j0; j < j1; ++j) {
            c_row[j] += a_ip * b_row[j];
          }
        }
      }
    }
  }
}

size_t GemmRowGrain(size_t m, size_t n, size_t k) {
  if (m == 0) {
    return 1;
  }
  const double flops = 2.0 * static_cast<double>(m) *
                       static_cast<double>(n) * static_cast<double>(k);
  return flops < kMinParallelFlops ? m : kGemmRowGrainRows;
}

size_t LstmRowGrain(size_t batch, size_t hidden) {
  if (batch == 0) {
    return 1;
  }
  const double flops = kLstmFlopsPerGate * 4.0 *
                       static_cast<double>(batch) *
                       static_cast<double>(hidden);
  return flops < kMinParallelFlops ? batch : kLstmRowGrainRows;
}

void Gemm(SimdLevel level, size_t m, size_t n, size_t k, const double* a,
          size_t lda, const double* b, size_t ldb, double* c, size_t ldc) {
  if (m == 0 || n == 0) {
    return;
  }
  const size_t grain = GemmRowGrain(m, n, k);
  if (level == SimdLevel::kScalar || n < kPanelWidth) {
    // Scalar reference path (also used for very skinny outputs such as
    // head projections, where packing overhead dominates). The narrow-n
    // cutoff depends only on the operand shapes, never on the batch row
    // count, preserving batched-vs-unbatched bit-identity.
    ParallelFor(0, m, grain, [&](size_t r0, size_t r1) {
      GemmRowsScalar(r0, r1, n, k, a, lda, b, ldb, c, ldc);
    });
    return;
  }
  // Pack B once into zero-padded column panels; every worker reads the same
  // packed image. The buffer is thread_local to the *calling* thread so
  // concurrent GEMMs (serve batching, parallel backtest folds, fleet
  // shards) never contend, and its capacity is recycled across calls.
  thread_local std::vector<double> pack_buffer;
  pack_buffer.resize(PackedSize(k, n));
  PackB(k, n, b, ldb, pack_buffer.data());
  const double* packed = pack_buffer.data();
  ParallelFor(0, m, grain, [&](size_t r0, size_t r1) {
    GemmPackedRows(level, r0, r1, n, k, a, lda, packed, c, ldc);
  });
}

// ------------------------------------------------- int8 GemmQuant path ---

namespace {

// -1 = unresolved (read RPAS_INT8_GEMM once); 0 = off; 1 = on.
std::atomic<int> g_int8_mode{-1};

bool ResolveInt8Env() {
  const char* value = std::getenv("RPAS_INT8_GEMM");
  if (value == nullptr) {
    return false;
  }
  return std::strcmp(value, "") != 0 && std::strcmp(value, "0") != 0 &&
         std::strcmp(value, "false") != 0 && std::strcmp(value, "off") != 0;
}

/// Exact integer dot of one kQ8BlockValues-wide int8 block — the scalar
/// reference the AVX2 maddubs kernel must match bit-for-bit (it does:
/// both are exact integer arithmetic).
int32_t DotQ8BlockScalar(const int8_t* a, const int8_t* w) {
  int32_t acc = 0;
  for (size_t r = 0; r < kQ8BlockValues; ++r) {
    acc += static_cast<int32_t>(a[r]) * static_cast<int32_t>(w[r]);
  }
  return acc;
}

/// Symmetric int8 quantization of `len` strided doubles into one padded
/// block: scale = maxabs/127, codes = round(v/scale) in [-127, 127], tail
/// zero-padded (zero codes contribute exactly 0 to every dot). Pure
/// per-element scalar function — identical at every SIMD level.
void QuantizeBlockSymmetric(const double* src, size_t len, size_t stride,
                            int8_t* dst, double* scale_out) {
  double maxabs = 0.0;
  for (size_t r = 0; r < len; ++r) {
    maxabs = std::max(maxabs, std::fabs(src[r * stride]));
  }
  if (maxabs == 0.0) {
    std::memset(dst, 0, kQ8BlockValues);
    *scale_out = 0.0;
    return;
  }
  const double scale = maxabs / 127.0;
  for (size_t r = 0; r < len; ++r) {
    const long long code = std::llround(src[r * stride] / scale);
    dst[r] = static_cast<int8_t>(
        std::clamp<long long>(code, -127, 127));
  }
  if (len < kQ8BlockValues) {
    std::memset(dst + len, 0, kQ8BlockValues - len);
  }
  *scale_out = scale;
}

/// True int8 core for q8 weights: C += A * requant(decode(Bq)).
///
/// The stored q8 blocks run along B's flattened row-major (k x n) order —
/// j-contiguous — so a k-direction dot would cross a stored block boundary
/// every step. Instead the payload is decoded once and requantized into
/// k-major symmetric int8 blocks (ggml q8_0-style: per-block fp64 scale,
/// codes in [-127, 127]); activations quantize the same way per (row,
/// k-block). Each output element accumulates per-block
/// ascale * wscale * exact_integer_dot in ascending k-block order, so the
/// result is bit-identical across SIMD levels and thread counts (rows are
/// independent; the per-element float sequence is fixed). Accuracy vs the
/// dequant path is bounded by the weight-requantization and
/// activation-quantization steps — measured end-to-end in
/// bench/quantized_serving against the documented wQL bound.
void GemmQ8Int8(SimdLevel level, size_t m, size_t n, size_t k,
                const double* a, size_t lda, const uint8_t* b_payload,
                double* c, size_t ldc) {
  const size_t blocks = (k + kQ8BlockValues - 1) / kQ8BlockValues;
  const size_t kp = blocks * kQ8BlockValues;

  // Decode the stored blocks to fp64 once (same cost the dequant path
  // pays), then requantize k-major. All scratch is thread_local to the
  // calling thread, so concurrent GEMMs never contend.
  thread_local std::vector<double> decode_buffer;
  decode_buffer.resize(k * n);
  DecodePayload(DType::kQ8, b_payload, k * n, decode_buffer.data());
  const double* b = decode_buffer.data();

  thread_local std::vector<int8_t> wq_buffer;
  thread_local std::vector<double> wscale_buffer;
  wq_buffer.resize(n * kp);
  wscale_buffer.resize(n * blocks);
  for (size_t j = 0; j < n; ++j) {
    for (size_t t = 0; t < blocks; ++t) {
      const size_t p0 = t * kQ8BlockValues;
      const size_t len = std::min(kQ8BlockValues, k - p0);
      QuantizeBlockSymmetric(b + p0 * n + j, len, n,
                             wq_buffer.data() + j * kp + p0,
                             wscale_buffer.data() + j * blocks + t);
    }
  }

  thread_local std::vector<int8_t> aq_buffer;
  thread_local std::vector<double> ascale_buffer;
  aq_buffer.resize(m * kp);
  ascale_buffer.resize(m * blocks);
  for (size_t i = 0; i < m; ++i) {
    for (size_t t = 0; t < blocks; ++t) {
      const size_t p0 = t * kQ8BlockValues;
      const size_t len = std::min(kQ8BlockValues, k - p0);
      QuantizeBlockSymmetric(a + i * lda + p0, len, 1,
                             aq_buffer.data() + i * kp + p0,
                             ascale_buffer.data() + i * blocks + t);
    }
  }

  int32_t (*dot)(const int8_t*, const int8_t*) = DotQ8BlockScalar;
#if RPAS_KERNELS_HAVE_AVX2
  if (level == SimdLevel::kAvx2) {
    dot = avx2::DotQ8Block;
  }
#endif
  const int8_t* wq = wq_buffer.data();
  const double* wscale = wscale_buffer.data();
  const int8_t* aq = aq_buffer.data();
  const double* ascale = ascale_buffer.data();
  ParallelFor(0, m, GemmRowGrain(m, n, k), [&](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      const int8_t* arow = aq + i * kp;
      const double* arow_scale = ascale + i * blocks;
      double* crow = c + i * ldc;
      for (size_t j = 0; j < n; ++j) {
        const int8_t* wrow = wq + j * kp;
        const double* wrow_scale = wscale + j * blocks;
        double acc = 0.0;
        for (size_t t = 0; t < blocks; ++t) {
          const int32_t idot =
              dot(arow + t * kQ8BlockValues, wrow + t * kQ8BlockValues);
          acc += arow_scale[t] * wrow_scale[t] * static_cast<double>(idot);
        }
        crow[j] += acc;
      }
    }
  });
}

}  // namespace

bool GemmQuantInt8Enabled() {
  int mode = g_int8_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    mode = ResolveInt8Env() ? 1 : 0;
    g_int8_mode.store(mode, std::memory_order_relaxed);
  }
  return mode == 1;
}

void SetGemmQuantInt8Enabled(bool enabled) {
  g_int8_mode.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

ScopedGemmQuantInt8::ScopedGemmQuantInt8(bool enabled)
    : previous_(GemmQuantInt8Enabled()) {
  SetGemmQuantInt8Enabled(enabled);
}

ScopedGemmQuantInt8::~ScopedGemmQuantInt8() {
  SetGemmQuantInt8Enabled(previous_);
}

void GemmQuant(SimdLevel level, size_t m, size_t n, size_t k, const double* a,
               size_t lda, DType b_dtype, const uint8_t* b_payload, double* c,
               size_t ldc) {
  if (m == 0 || n == 0 || k == 0) {
    return;
  }
  if (b_dtype == DType::kQ8 && GemmQuantInt8Enabled()) {
    GemmQ8Int8(level, m, n, k, a, lda, b_payload, c, ldc);
    return;
  }
  // Decode the stored weights into a thread-local fp64 image once per call
  // (fp16/fp32 convert, q8 block dequant) and hand that to the ordinary
  // Gemm driver. Decoding is a pure per-element function of the payload
  // bytes, so the image — and therefore every downstream guarantee of
  // Gemm() — is independent of m, the thread count, and the host
  // endianness. The buffer is distinct from Gemm's pack_buffer, so the
  // nested call recycles both without aliasing.
  thread_local std::vector<double> dequant_buffer;
  dequant_buffer.resize(k * n);
  DecodePayload(b_dtype, b_payload, k * n, dequant_buffer.data());
  Gemm(level, m, n, k, a, lda, dequant_buffer.data(), n, c, ldc);
}

void GemmTN(SimdLevel level, size_t m, size_t n, size_t k, const double* a,
            size_t lda, const double* b, size_t ldb, double* c, size_t ldc) {
  if (m == 0 || n == 0) {
    return;
  }
  // Partition over output rows (columns of A). Within a chunk the p loop
  // still visits every k index in ascending order per element, so the
  // split changes nothing about any element's accumulation sequence.
  ParallelFor(0, m, GemmRowGrain(m, n, k), [&](size_t i0, size_t i1) {
    const size_t rows = i1 - i0;
#if RPAS_KERNELS_HAVE_AVX2
    if (level == SimdLevel::kAvx2) {
      avx2::GemmTN(rows, n, k, a + i0, lda, b, ldb, c + i0 * ldc, ldc);
      return;
    }
#endif
    (void)level;
    GemmTNScalar(rows, n, k, a + i0, lda, b, ldb, c + i0 * ldc, ldc);
  });
}

void GemmNT(SimdLevel level, size_t m, size_t n, size_t k, const double* a,
            size_t lda, const double* b, size_t ldb, double* c, size_t ldc) {
  if (m == 0 || n == 0) {
    return;
  }
  // Rows of C are independent dot products — trivially bit-stable under
  // any row partition.
  ParallelFor(0, m, GemmRowGrain(m, n, k), [&](size_t i0, size_t i1) {
    const size_t rows = i1 - i0;
#if RPAS_KERNELS_HAVE_AVX2
    if (level == SimdLevel::kAvx2) {
      avx2::GemmNT(rows, n, k, a + i0 * lda, lda, b, ldb, c + i0 * ldc, ldc);
      return;
    }
#endif
    (void)level;
    GemmNTScalar(rows, n, k, a + i0 * lda, lda, b, ldb, c + i0 * ldc, ldc);
  });
}

void Axpy(SimdLevel level, size_t n, double alpha, const double* x,
          double* y) {
#if RPAS_KERNELS_HAVE_AVX2
  if (level == SimdLevel::kAvx2) {
    avx2::Axpy(n, alpha, x, y);
    return;
  }
#endif
#if RPAS_KERNELS_HAVE_SSE2
  if (level >= SimdLevel::kSse2) {
    AxpySse2(n, alpha, x, y);
    return;
  }
#endif
  (void)level;
  for (size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

double Dot(SimdLevel level, size_t n, const double* x, const double* y) {
#if RPAS_KERNELS_HAVE_AVX2
  if (level == SimdLevel::kAvx2) {
    return avx2::Dot(n, x, y);
  }
#endif
  // SSE2 keeps the scalar reduction order (bit-identity contract).
  (void)level;
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s += x[i] * y[i];
  }
  return s;
}

double Sum(SimdLevel level, size_t n, const double* x) {
#if RPAS_KERNELS_HAVE_AVX2
  if (level == SimdLevel::kAvx2) {
    return avx2::Sum(n, x);
  }
#endif
  (void)level;
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s += x[i];
  }
  return s;
}

void EwTanh(SimdLevel level, size_t n, const double* x, double* out) {
#if RPAS_KERNELS_HAVE_AVX2
  if (level == SimdLevel::kAvx2) {
    avx2::EwTanh(n, x, out);
    return;
  }
#endif
  (void)level;
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::tanh(x[i]);
  }
}

void EwSigmoid(SimdLevel level, size_t n, const double* x, double* out) {
#if RPAS_KERNELS_HAVE_AVX2
  if (level == SimdLevel::kAvx2) {
    avx2::EwSigmoid(n, x, out);
    return;
  }
#endif
  (void)level;
  for (size_t i = 0; i < n; ++i) {
    out[i] = ScalarSigmoid(x[i]);
  }
}

void EwSoftplus(SimdLevel level, size_t n, const double* x, double* out) {
  // Softplus only touches head outputs (B x 1 per unroll step), never the
  // hot 4H gate blocks — all levels route to the stable scalar formula.
  (void)level;
  for (size_t i = 0; i < n; ++i) {
    out[i] = ScalarSoftplus(x[i]);
  }
}

void EwRelu(SimdLevel level, size_t n, const double* x, double* out) {
  (void)level;
  for (size_t i = 0; i < n; ++i) {
    out[i] = x[i] > 0.0 ? x[i] : 0.0;
  }
}

void LstmCellForward(SimdLevel level, size_t batch, size_t hidden,
                     double* gates, const double* c_prev, size_t ldcp,
                     double* h_out, size_t ldh, double* c_out, size_t ldc,
                     double* tanh_c) {
  if (batch == 0 || hidden == 0) {
    return;
  }
  // Batch rows are independent; the explicit leading dimensions let each
  // chunk address its row block with plain pointer offsets.
  ParallelFor(0, batch, LstmRowGrain(batch, hidden),
              [&](size_t r0, size_t r1) {
    const size_t rows = r1 - r0;
    double* g = gates + r0 * 4 * hidden;
    const double* cp = c_prev + r0 * ldcp;
    double* h = h_out + r0 * ldh;
    double* co = c_out + r0 * ldc;
    double* tc = tanh_c != nullptr ? tanh_c + r0 * hidden : nullptr;
#if RPAS_KERNELS_HAVE_AVX2
    if (level == SimdLevel::kAvx2) {
      avx2::LstmCellForward(rows, hidden, g, cp, ldcp, h, ldh, co, ldc, tc);
      return;
    }
#endif
    // SSE2 routes here too: the step is transcendental-bound and the scalar
    // formulas are the bit-identity reference.
    (void)level;
    LstmCellForwardScalar(rows, hidden, g, cp, ldcp, h, ldh, co, ldc, tc);
  });
}

void LstmCellBackward(SimdLevel level, size_t batch, size_t hidden,
                      const double* act, const double* c_prev, size_t ldcp,
                      const double* tanh_c, const double* dh, size_t ldh,
                      const double* dc, size_t ldc, double* dgates,
                      double* dc_prev) {
  if (batch == 0 || hidden == 0) {
    return;
  }
  ParallelFor(0, batch, LstmRowGrain(batch, hidden),
              [&](size_t r0, size_t r1) {
    const size_t rows = r1 - r0;
    const double* a = act + r0 * 4 * hidden;
    const double* cp = c_prev + r0 * ldcp;
    const double* tc = tanh_c + r0 * hidden;
    const double* dh_p = dh + r0 * ldh;
    const double* dc_p = dc + r0 * ldc;
    double* dg = dgates + r0 * 4 * hidden;
    double* dcp = dc_prev + r0 * hidden;
#if RPAS_KERNELS_HAVE_AVX2
    if (level == SimdLevel::kAvx2) {
      avx2::LstmCellBackward(rows, hidden, a, cp, ldcp, tc, dh_p, ldh, dc_p,
                             ldc, dg, dcp);
      return;
    }
#endif
    (void)level;
    LstmCellBackwardScalar(rows, hidden, a, cp, ldcp, tc, dh_p, ldh, dc_p,
                           ldc, dg, dcp);
  });
}

}  // namespace rpas::tensor::kernels
