// AVX2+FMA kernel bodies. Compiled in the baseline build via per-function
// `target` attributes (no -mavx2 translation-unit flags), so the binary stays
// runnable on pre-AVX2 CPUs — dispatch in kernels.cc only routes here after
// __builtin_cpu_supports("avx2")/"fma" both pass.
//
// Accuracy contract: GEMM variants use FMA with the same ascending-p
// per-element accumulation order as the scalar reference (parity bounded by
// the condition-aware ULP tests). exp/tanh/sigmoid are Cephes-style
// polynomial evaluations within a few ULP of libm. The LSTM backward uses
// only mul/add/sub in the scalar expression shapes and is bit-identical to
// the scalar level.

#include "tensor/kernels_internal.h"

#if RPAS_KERNELS_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"

#define RPAS_AVX2_FN __attribute__((target("avx2,fma")))

namespace rpas::tensor::kernels::avx2 {

namespace {

// Mask with the first `live` (0..4) 64-bit lanes enabled.
RPAS_AVX2_FN inline __m256i TailMask(size_t live) {
  const __m256i idx = _mm256_setr_epi64x(0, 1, 2, 3);
  return _mm256_cmpgt_epi64(_mm256_set1_epi64x(static_cast<long long>(live)),
                            idx);
}

// Fixed-order horizontal reduction: (v0 + v2) + (v1 + v3).
RPAS_AVX2_FN inline double HSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

// Cephes-style vector exp: Cody–Waite 2-part ln2 reduction + rational
// r*P(r^2) / (Q(r^2) - r*P(r^2)) approximation, 2^n rebuilt via integer ops.
// Inputs are clamped to the finite range; NaN lanes are the caller's job
// (max/min eat NaN), which Tanh4/Sigmoid4 handle with an unordered blend.
RPAS_AVX2_FN inline __m256d Exp4(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d xc = _mm256_max_pd(x, _mm256_set1_pd(-708.396418532264106224));
  xc = _mm256_min_pd(xc, _mm256_set1_pd(709.782712893383996843));
  const __m256d n = _mm256_floor_pd(_mm256_fmadd_pd(
      _mm256_set1_pd(1.4426950408889634073599), xc, _mm256_set1_pd(0.5)));
  __m256d r = _mm256_fnmadd_pd(n, _mm256_set1_pd(6.93145751953125e-1), xc);
  r = _mm256_fnmadd_pd(n, _mm256_set1_pd(1.42860682030941723212e-6), r);
  const __m256d z = _mm256_mul_pd(r, r);
  __m256d p = _mm256_set1_pd(1.26177193074810590878e-4);
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(3.02994407707441961300e-2));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(9.99999999999999999910e-1));
  p = _mm256_mul_pd(p, r);
  __m256d q = _mm256_set1_pd(3.00198505138664455042e-6);
  q = _mm256_fmadd_pd(q, z, _mm256_set1_pd(2.52448340349684104192e-3));
  q = _mm256_fmadd_pd(q, z, _mm256_set1_pd(2.27265548208155028766e-1));
  q = _mm256_fmadd_pd(q, z, _mm256_set1_pd(2.00000000000000000005e0));
  __m256d e = _mm256_div_pd(p, _mm256_sub_pd(q, p));
  e = _mm256_fmadd_pd(_mm256_set1_pd(2.0), e, one);
  const __m128i ni = _mm256_cvtpd_epi32(n);
  const __m256i bits = _mm256_slli_epi64(
      _mm256_add_epi64(_mm256_cvtepi32_epi64(ni), _mm256_set1_epi64x(1023)),
      52);
  return _mm256_mul_pd(e, _mm256_castsi256_pd(bits));
}

RPAS_AVX2_FN inline __m256d Tanh4(__m256d x) {
  const __m256d sign_bit = _mm256_set1_pd(-0.0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d ax = _mm256_andnot_pd(sign_bit, x);
  // |x| >= 0.625: 1 - 2/(exp(2|x|) + 1), with the input's sign restored.
  const __m256d e2 = Exp4(_mm256_add_pd(ax, ax));
  __m256d big = _mm256_sub_pd(
      one, _mm256_div_pd(_mm256_set1_pd(2.0), _mm256_add_pd(e2, one)));
  big = _mm256_or_pd(big, _mm256_and_pd(sign_bit, x));
  // |x| < 0.625: x + x*z*P(z)/Q1(z), z = x^2 (Cephes tanh rational).
  const __m256d z = _mm256_mul_pd(x, x);
  __m256d p = _mm256_set1_pd(-9.64399179425052238628e-1);
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(-9.92877231001918586564e1));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(-1.61468768441708447952e3));
  __m256d q = _mm256_add_pd(z, _mm256_set1_pd(1.12811678491632931402e2));
  q = _mm256_fmadd_pd(q, z, _mm256_set1_pd(2.23548839060100448583e3));
  q = _mm256_fmadd_pd(q, z, _mm256_set1_pd(4.84406305325125486048e3));
  const __m256d small = _mm256_add_pd(
      x, _mm256_div_pd(_mm256_mul_pd(_mm256_mul_pd(x, z), p), q));
  // NaN compares unordered/false, so NaN lanes take the `small` path and
  // propagate through z = x*x.
  const __m256d use_big =
      _mm256_cmp_pd(ax, _mm256_set1_pd(0.625), _CMP_GE_OQ);
  return _mm256_blendv_pd(small, big, use_big);
}

// Same sign-split form as the scalar reference: e = exp(-|x|), then
// 1/(1+e) for x >= 0 and e/(1+e) otherwise.
RPAS_AVX2_FN inline __m256d Sigmoid4(__m256d x) {
  const __m256d sign_bit = _mm256_set1_pd(-0.0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d ax = _mm256_andnot_pd(sign_bit, x);
  const __m256d e = Exp4(_mm256_or_pd(ax, sign_bit));
  const __m256d denom = _mm256_add_pd(one, e);
  const __m256d pos = _mm256_div_pd(one, denom);
  const __m256d neg = _mm256_div_pd(e, denom);
  const __m256d nonneg =
      _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_GE_OQ);
  __m256d res = _mm256_blendv_pd(neg, pos, nonneg);
  // Exp4's range clamp eats NaN; restore propagation.
  const __m256d unord = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
  return _mm256_blendv_pd(res, x, unord);
}

// 4-row x 8-column register tile over one full packed panel.
RPAS_AVX2_FN void Panel8(size_t r0, size_t r1, size_t k, const double* a,
                         size_t lda, const double* panel, double* c,
                         size_t ldc) {
  size_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    double* c0 = c + i * ldc;
    double* c1 = c + (i + 1) * ldc;
    double* c2 = c + (i + 2) * ldc;
    double* c3 = c + (i + 3) * ldc;
    __m256d acc00 = _mm256_loadu_pd(c0);
    __m256d acc01 = _mm256_loadu_pd(c0 + 4);
    __m256d acc10 = _mm256_loadu_pd(c1);
    __m256d acc11 = _mm256_loadu_pd(c1 + 4);
    __m256d acc20 = _mm256_loadu_pd(c2);
    __m256d acc21 = _mm256_loadu_pd(c2 + 4);
    __m256d acc30 = _mm256_loadu_pd(c3);
    __m256d acc31 = _mm256_loadu_pd(c3 + 4);
    const double* a0 = a + i * lda;
    const double* a1 = a + (i + 1) * lda;
    const double* a2 = a + (i + 2) * lda;
    const double* a3 = a + (i + 3) * lda;
    for (size_t p = 0; p < k; ++p) {
      const __m256d b0 = _mm256_loadu_pd(panel + p * kPanelWidth);
      const __m256d b1 = _mm256_loadu_pd(panel + p * kPanelWidth + 4);
      __m256d av = _mm256_set1_pd(a0[p]);
      acc00 = _mm256_fmadd_pd(av, b0, acc00);
      acc01 = _mm256_fmadd_pd(av, b1, acc01);
      av = _mm256_set1_pd(a1[p]);
      acc10 = _mm256_fmadd_pd(av, b0, acc10);
      acc11 = _mm256_fmadd_pd(av, b1, acc11);
      av = _mm256_set1_pd(a2[p]);
      acc20 = _mm256_fmadd_pd(av, b0, acc20);
      acc21 = _mm256_fmadd_pd(av, b1, acc21);
      av = _mm256_set1_pd(a3[p]);
      acc30 = _mm256_fmadd_pd(av, b0, acc30);
      acc31 = _mm256_fmadd_pd(av, b1, acc31);
    }
    _mm256_storeu_pd(c0, acc00);
    _mm256_storeu_pd(c0 + 4, acc01);
    _mm256_storeu_pd(c1, acc10);
    _mm256_storeu_pd(c1 + 4, acc11);
    _mm256_storeu_pd(c2, acc20);
    _mm256_storeu_pd(c2 + 4, acc21);
    _mm256_storeu_pd(c3, acc30);
    _mm256_storeu_pd(c3 + 4, acc31);
  }
  // Tail rows, one at a time: identical per-element fma sequence, so a row's
  // result does not depend on which kernel variant handled it.
  for (; i < r1; ++i) {
    double* c0 = c + i * ldc;
    __m256d acc0 = _mm256_loadu_pd(c0);
    __m256d acc1 = _mm256_loadu_pd(c0 + 4);
    const double* a0 = a + i * lda;
    for (size_t p = 0; p < k; ++p) {
      const __m256d av = _mm256_set1_pd(a0[p]);
      acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(panel + p * kPanelWidth),
                             acc0);
      acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(panel + p * kPanelWidth + 4),
                             acc1);
    }
    _mm256_storeu_pd(c0, acc0);
    _mm256_storeu_pd(c0 + 4, acc1);
  }
}

// Column-tail panel (w < 8): masked C access; the packed panel itself is
// zero-padded so its loads are always full-width and in-bounds.
RPAS_AVX2_FN void PanelTail(size_t r0, size_t r1, size_t w, size_t k,
                            const double* a, size_t lda, const double* panel,
                            double* c, size_t ldc) {
  const __m256i m0 = TailMask(std::min<size_t>(w, 4));
  const __m256i m1 = TailMask(w > 4 ? w - 4 : 0);
  for (size_t i = r0; i < r1; ++i) {
    double* c0 = c + i * ldc;
    __m256d acc0 = _mm256_maskload_pd(c0, m0);
    __m256d acc1 = w > 4 ? _mm256_maskload_pd(c0 + 4, m1)
                         : _mm256_setzero_pd();
    const double* a0 = a + i * lda;
    for (size_t p = 0; p < k; ++p) {
      const __m256d av = _mm256_set1_pd(a0[p]);
      acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(panel + p * kPanelWidth),
                             acc0);
      acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(panel + p * kPanelWidth + 4),
                             acc1);
    }
    _mm256_maskstore_pd(c0, m0, acc0);
    if (w > 4) {
      _mm256_maskstore_pd(c0 + 4, m1, acc1);
    }
  }
}

}  // namespace

RPAS_AVX2_FN void GemmPackedRows(size_t r0, size_t r1, size_t n, size_t k,
                                 const double* a, size_t lda,
                                 const double* packed, double* c, size_t ldc) {
  for (size_t j0 = 0; j0 < n; j0 += kPanelWidth) {
    const size_t w = std::min(kPanelWidth, n - j0);
    const double* panel = packed + (j0 / kPanelWidth) * k * kPanelWidth;
    if (w == kPanelWidth) {
      Panel8(r0, r1, k, a, lda, panel, c + j0, ldc);
    } else {
      PanelTail(r0, r1, w, k, a, lda, panel, c + j0, ldc);
    }
  }
}

RPAS_AVX2_FN void GemmTN(size_t m, size_t n, size_t k, const double* a,
                         size_t lda, const double* b, size_t ldb, double* c,
                         size_t ldc) {
  // c[i][j] += sum_p a[p][i] * b[p][j], ascending p — register-tiled 2x8
  // with masked edges; B rows are streamed, A is read column-wise.
  for (size_t j0 = 0; j0 < n; j0 += 8) {
    const size_t w = std::min<size_t>(8, n - j0);
    const __m256i m0 = TailMask(std::min<size_t>(w, 4));
    const __m256i m1 = TailMask(w > 4 ? w - 4 : 0);
    const bool full = w == 8;
    size_t i = 0;
    for (; i + 2 <= m; i += 2) {
      double* c0 = c + i * ldc + j0;
      double* c1 = c + (i + 1) * ldc + j0;
      __m256d acc00, acc01, acc10, acc11;
      if (full) {
        acc00 = _mm256_loadu_pd(c0);
        acc01 = _mm256_loadu_pd(c0 + 4);
        acc10 = _mm256_loadu_pd(c1);
        acc11 = _mm256_loadu_pd(c1 + 4);
      } else {
        acc00 = _mm256_maskload_pd(c0, m0);
        acc01 = w > 4 ? _mm256_maskload_pd(c0 + 4, m1) : _mm256_setzero_pd();
        acc10 = _mm256_maskload_pd(c1, m0);
        acc11 = w > 4 ? _mm256_maskload_pd(c1 + 4, m1) : _mm256_setzero_pd();
      }
      for (size_t p = 0; p < k; ++p) {
        const double* b_row = b + p * ldb + j0;
        __m256d b0, b1;
        if (full) {
          b0 = _mm256_loadu_pd(b_row);
          b1 = _mm256_loadu_pd(b_row + 4);
        } else {
          b0 = _mm256_maskload_pd(b_row, m0);
          b1 = w > 4 ? _mm256_maskload_pd(b_row + 4, m1)
                     : _mm256_setzero_pd();
        }
        const double* a_row = a + p * lda;
        __m256d av = _mm256_set1_pd(a_row[i]);
        acc00 = _mm256_fmadd_pd(av, b0, acc00);
        acc01 = _mm256_fmadd_pd(av, b1, acc01);
        av = _mm256_set1_pd(a_row[i + 1]);
        acc10 = _mm256_fmadd_pd(av, b0, acc10);
        acc11 = _mm256_fmadd_pd(av, b1, acc11);
      }
      if (full) {
        _mm256_storeu_pd(c0, acc00);
        _mm256_storeu_pd(c0 + 4, acc01);
        _mm256_storeu_pd(c1, acc10);
        _mm256_storeu_pd(c1 + 4, acc11);
      } else {
        _mm256_maskstore_pd(c0, m0, acc00);
        _mm256_maskstore_pd(c1, m0, acc10);
        if (w > 4) {
          _mm256_maskstore_pd(c0 + 4, m1, acc01);
          _mm256_maskstore_pd(c1 + 4, m1, acc11);
        }
      }
    }
    for (; i < m; ++i) {
      double* c0 = c + i * ldc + j0;
      __m256d acc0, acc1;
      if (full) {
        acc0 = _mm256_loadu_pd(c0);
        acc1 = _mm256_loadu_pd(c0 + 4);
      } else {
        acc0 = _mm256_maskload_pd(c0, m0);
        acc1 = w > 4 ? _mm256_maskload_pd(c0 + 4, m1) : _mm256_setzero_pd();
      }
      for (size_t p = 0; p < k; ++p) {
        const double* b_row = b + p * ldb + j0;
        const __m256d av = _mm256_set1_pd(a[p * lda + i]);
        if (full) {
          acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b_row), acc0);
          acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b_row + 4), acc1);
        } else {
          acc0 = _mm256_fmadd_pd(av, _mm256_maskload_pd(b_row, m0), acc0);
          if (w > 4) {
            acc1 = _mm256_fmadd_pd(av, _mm256_maskload_pd(b_row + 4, m1),
                                   acc1);
          }
        }
      }
      if (full) {
        _mm256_storeu_pd(c0, acc0);
        _mm256_storeu_pd(c0 + 4, acc1);
      } else {
        _mm256_maskstore_pd(c0, m0, acc0);
        if (w > 4) {
          _mm256_maskstore_pd(c0 + 4, m1, acc1);
        }
      }
    }
  }
}

RPAS_AVX2_FN void GemmNT(size_t m, size_t n, size_t k, const double* a,
                         size_t lda, const double* b, size_t ldb, double* c,
                         size_t ldc) {
  // c[i][j] += dot(a_row_i, b_row_j): both operands contiguous over k. The
  // reduction order depends only on k, so results are row-count independent.
  for (size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * lda;
    double* c_row = c + i * ldc;
    for (size_t j = 0; j < n; ++j) {
      const double* b_row = b + j * ldb;
      __m256d acc = _mm256_setzero_pd();
      size_t p = 0;
      for (; p + 4 <= k; p += 4) {
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(a_row + p),
                              _mm256_loadu_pd(b_row + p), acc);
      }
      double s = HSum(acc);
      for (; p < k; ++p) {
        s = std::fma(a_row[p], b_row[p], s);
      }
      c_row[j] += s;
    }
  }
}

RPAS_AVX2_FN void Axpy(size_t n, double alpha, const double* x, double* y) {
  const __m256d av = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) {
    y[i] = std::fma(alpha, x[i], y[i]);
  }
}

RPAS_AVX2_FN double Dot(size_t n, const double* x, const double* y) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                           _mm256_loadu_pd(y + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
  }
  double s = HSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    s = std::fma(x[i], y[i], s);
  }
  return s;
}

RPAS_AVX2_FN double Sum(size_t n, const double* x) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(x + i + 4));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
  }
  double s = HSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    s += x[i];
  }
  return s;
}

RPAS_AVX2_FN void EwTanh(size_t n, const double* x, double* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, Tanh4(_mm256_loadu_pd(x + i)));
  }
  if (i < n) {
    const __m256i m = TailMask(n - i);
    _mm256_maskstore_pd(out + i, m, Tanh4(_mm256_maskload_pd(x + i, m)));
  }
}

RPAS_AVX2_FN void EwSigmoid(size_t n, const double* x, double* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, Sigmoid4(_mm256_loadu_pd(x + i)));
  }
  if (i < n) {
    const __m256i m = TailMask(n - i);
    _mm256_maskstore_pd(out + i, m, Sigmoid4(_mm256_maskload_pd(x + i, m)));
  }
}

RPAS_AVX2_FN void LstmCellForward(size_t batch, size_t hidden, double* gates,
                                  const double* c_prev, size_t ldcp,
                                  double* h_out, size_t ldh, double* c_out,
                                  size_t ldc, double* tanh_c) {
  for (size_t r = 0; r < batch; ++r) {
    double* g_row = gates + r * 4 * hidden;
    const double* cp_row = c_prev + r * ldcp;
    double* h_row = h_out + r * ldh;
    double* c_row = c_out + r * ldc;
    double* tc_row = tanh_c != nullptr ? tanh_c + r * hidden : nullptr;
    for (size_t j = 0; j < hidden; j += 4) {
      const size_t live = std::min<size_t>(4, hidden - j);
      const bool full = live == 4;
      const __m256i m = TailMask(live);
      __m256d gi, gf, gg, go, cp;
      if (full) {
        gi = _mm256_loadu_pd(g_row + j);
        gf = _mm256_loadu_pd(g_row + hidden + j);
        gg = _mm256_loadu_pd(g_row + 2 * hidden + j);
        go = _mm256_loadu_pd(g_row + 3 * hidden + j);
        cp = _mm256_loadu_pd(cp_row + j);
      } else {
        gi = _mm256_maskload_pd(g_row + j, m);
        gf = _mm256_maskload_pd(g_row + hidden + j, m);
        gg = _mm256_maskload_pd(g_row + 2 * hidden + j, m);
        go = _mm256_maskload_pd(g_row + 3 * hidden + j, m);
        cp = _mm256_maskload_pd(cp_row + j, m);
      }
      const __m256d iv = Sigmoid4(gi);
      const __m256d fv = Sigmoid4(gf);
      const __m256d gv = Tanh4(gg);
      const __m256d ov = Sigmoid4(go);
      // f*c + i*g in the scalar shapes (mul, mul, add — no FMA) so the
      // level's parity error stays confined to the transcendentals.
      const __m256d cn =
          _mm256_add_pd(_mm256_mul_pd(fv, cp), _mm256_mul_pd(iv, gv));
      const __m256d tc = Tanh4(cn);
      const __m256d hv = _mm256_mul_pd(ov, tc);
      if (full) {
        _mm256_storeu_pd(g_row + j, iv);
        _mm256_storeu_pd(g_row + hidden + j, fv);
        _mm256_storeu_pd(g_row + 2 * hidden + j, gv);
        _mm256_storeu_pd(g_row + 3 * hidden + j, ov);
        _mm256_storeu_pd(c_row + j, cn);
        _mm256_storeu_pd(h_row + j, hv);
        if (tc_row != nullptr) {
          _mm256_storeu_pd(tc_row + j, tc);
        }
      } else {
        _mm256_maskstore_pd(g_row + j, m, iv);
        _mm256_maskstore_pd(g_row + hidden + j, m, fv);
        _mm256_maskstore_pd(g_row + 2 * hidden + j, m, gv);
        _mm256_maskstore_pd(g_row + 3 * hidden + j, m, ov);
        _mm256_maskstore_pd(c_row + j, m, cn);
        _mm256_maskstore_pd(h_row + j, m, hv);
        if (tc_row != nullptr) {
          _mm256_maskstore_pd(tc_row + j, m, tc);
        }
      }
    }
  }
}

RPAS_AVX2_FN void LstmCellBackward(size_t batch, size_t hidden,
                                   const double* act, const double* c_prev,
                                   size_t ldcp, const double* tanh_c,
                                   const double* dh, size_t ldh,
                                   const double* dc, size_t ldc,
                                   double* dgates, double* dc_prev) {
  const __m256d one = _mm256_set1_pd(1.0);
  for (size_t r = 0; r < batch; ++r) {
    const double* a_row = act + r * 4 * hidden;
    const double* cp_row = c_prev + r * ldcp;
    const double* tc_row = tanh_c + r * hidden;
    const double* dh_row = dh + r * ldh;
    const double* dc_row = dc + r * ldc;
    double* dg_row = dgates + r * 4 * hidden;
    double* dcp_row = dc_prev + r * hidden;
    for (size_t j = 0; j < hidden; j += 4) {
      const size_t live = std::min<size_t>(4, hidden - j);
      const bool full = live == 4;
      const __m256i m = TailMask(live);
      __m256d iv, fv, gv, ov, cp, tc, dhv, dcv;
      if (full) {
        iv = _mm256_loadu_pd(a_row + j);
        fv = _mm256_loadu_pd(a_row + hidden + j);
        gv = _mm256_loadu_pd(a_row + 2 * hidden + j);
        ov = _mm256_loadu_pd(a_row + 3 * hidden + j);
        cp = _mm256_loadu_pd(cp_row + j);
        tc = _mm256_loadu_pd(tc_row + j);
        dhv = _mm256_loadu_pd(dh_row + j);
        dcv = _mm256_loadu_pd(dc_row + j);
      } else {
        iv = _mm256_maskload_pd(a_row + j, m);
        fv = _mm256_maskload_pd(a_row + hidden + j, m);
        gv = _mm256_maskload_pd(a_row + 2 * hidden + j, m);
        ov = _mm256_maskload_pd(a_row + 3 * hidden + j, m);
        cp = _mm256_maskload_pd(cp_row + j, m);
        tc = _mm256_maskload_pd(tc_row + j, m);
        dhv = _mm256_maskload_pd(dh_row + j, m);
        dcv = _mm256_maskload_pd(dc_row + j, m);
      }
      // Pure mul/add/sub in the scalar expression shapes — bit-identical to
      // the scalar backward at every level.
      const __m256d d_o = _mm256_mul_pd(dhv, tc);
      const __m256d d_tc = _mm256_mul_pd(dhv, ov);
      const __m256d d_c = _mm256_add_pd(
          dcv,
          _mm256_mul_pd(d_tc, _mm256_sub_pd(one, _mm256_mul_pd(tc, tc))));
      const __m256d d_f = _mm256_mul_pd(d_c, cp);
      const __m256d d_i = _mm256_mul_pd(d_c, gv);
      const __m256d d_g = _mm256_mul_pd(d_c, iv);
      const __m256d dcp = _mm256_mul_pd(d_c, fv);
      const __m256d dgi = _mm256_mul_pd(_mm256_mul_pd(d_i, iv),
                                        _mm256_sub_pd(one, iv));
      const __m256d dgf = _mm256_mul_pd(_mm256_mul_pd(d_f, fv),
                                        _mm256_sub_pd(one, fv));
      const __m256d dgg =
          _mm256_mul_pd(d_g, _mm256_sub_pd(one, _mm256_mul_pd(gv, gv)));
      const __m256d dgo = _mm256_mul_pd(_mm256_mul_pd(d_o, ov),
                                        _mm256_sub_pd(one, ov));
      if (full) {
        _mm256_storeu_pd(dg_row + j, dgi);
        _mm256_storeu_pd(dg_row + hidden + j, dgf);
        _mm256_storeu_pd(dg_row + 2 * hidden + j, dgg);
        _mm256_storeu_pd(dg_row + 3 * hidden + j, dgo);
        _mm256_storeu_pd(dcp_row + j, dcp);
      } else {
        _mm256_maskstore_pd(dg_row + j, m, dgi);
        _mm256_maskstore_pd(dg_row + hidden + j, m, dgf);
        _mm256_maskstore_pd(dg_row + 2 * hidden + j, m, dgg);
        _mm256_maskstore_pd(dg_row + 3 * hidden + j, m, dgo);
        _mm256_maskstore_pd(dcp_row + j, m, dcp);
      }
    }
  }
}

RPAS_AVX2_FN int32_t DotQ8Block(const int8_t* a, const int8_t* w) {
  // maddubs multiplies u8 x s8 and adds adjacent pairs into i16. With both
  // inputs quantized to [-127, 127], |a| * sign-adjusted w keeps every pair
  // sum <= 2 * 127 * 127 = 32258 < 2^15: no saturation, so the i16 stage is
  // exact and madd_epi16 against 1 widens it exactly into i32 lanes. The
  // result is therefore the integer dot bit-for-bit — the scalar reference
  // in kernels.cc computes the identical value.
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  for (int off = 0; off < 64; off += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + off));
    const __m256i vw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + off));
    const __m256i abs_a = _mm256_abs_epi8(va);
    const __m256i signed_w = _mm256_sign_epi8(vw, va);
    const __m256i pairs = _mm256_maddubs_epi16(abs_a, signed_w);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
  }
  __m128i sum = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(sum);
}

}  // namespace rpas::tensor::kernels::avx2

#endif  // RPAS_KERNELS_HAVE_AVX2
