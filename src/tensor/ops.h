#ifndef RPAS_TENSOR_OPS_H_
#define RPAS_TENSOR_OPS_H_

#include <functional>

#include "common/result.h"
#include "tensor/matrix.h"

namespace rpas::tensor {

/// a * b (standard matrix product). Requires a.cols() == b.rows().
Matrix MatMul(const Matrix& a, const Matrix& b);

/// Accumulates a * b into `*out` (shape a.rows x b.cols; callers normally
/// pass a zeroed target, e.g. an arena matrix). SIMD-dispatched; the scalar
/// level reproduces the historical MatMul bit-for-bit.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);

/// a^T * b without materializing the transpose. Requires a.rows() ==
/// b.rows(); result is a.cols x b.cols. At the scalar level this is
/// bit-identical to MatMul(Transpose(a), b).
Matrix MatMulTN(const Matrix& a, const Matrix& b);
void MatMulTNInto(const Matrix& a, const Matrix& b, Matrix* out);

/// a * b^T without materializing the transpose. Requires a.cols() ==
/// b.cols(); result is a.rows x b.rows. At the scalar level this is
/// bit-identical to MatMul(a, Transpose(b)).
Matrix MatMulNT(const Matrix& a, const Matrix& b);
void MatMulNTInto(const Matrix& a, const Matrix& b, Matrix* out);

/// a^T.
Matrix Transpose(const Matrix& a);

/// Elementwise binary operations; shapes must match.
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Mul(const Matrix& a, const Matrix& b);
Matrix Div(const Matrix& a, const Matrix& b);

/// Adds a 1 x cols row vector to every row of `a` (bias broadcast).
Matrix AddRowBroadcast(const Matrix& a, const Matrix& row);

/// Scalar operations.
Matrix Scale(const Matrix& a, double s);
Matrix AddScalar(const Matrix& a, double s);

/// Applies `f` elementwise.
Matrix Map(const Matrix& a, const std::function<double(double)>& f);

/// In-place y += alpha * x; shapes must match.
void Axpy(double alpha, const Matrix& x, Matrix* y);

/// Reductions.
double Sum(const Matrix& a);
double Mean(const Matrix& a);
double MaxAbs(const Matrix& a);
/// Frobenius norm.
double Norm(const Matrix& a);
/// Dot product of two same-shaped matrices viewed as flat vectors.
double Dot(const Matrix& a, const Matrix& b);

/// Sums each column into a 1 x cols row vector.
Matrix ColSums(const Matrix& a);
/// Sums each row into a rows x 1 column vector.
Matrix RowSums(const Matrix& a);

/// Horizontal concatenation [a | b]; row counts must match.
Matrix ConcatCols(const Matrix& a, const Matrix& b);
/// Vertical concatenation [a ; b]; column counts must match.
Matrix ConcatRows(const Matrix& a, const Matrix& b);

/// Copies columns [begin, end) of `a`.
Matrix SliceCols(const Matrix& a, size_t begin, size_t end);
/// Copies rows [begin, end) of `a`.
Matrix SliceRows(const Matrix& a, size_t begin, size_t end);

/// Solves the linear system A x = b with partial-pivot Gaussian
/// elimination. A must be square, b a column vector. Returns
/// FailedPrecondition for (numerically) singular systems.
Result<Matrix> SolveLinearSystem(Matrix a, Matrix b);

/// Least-squares solution to min ||A x - b||_2 via normal equations with
/// Tikhonov damping `ridge` (>= 0). Used by ARIMA and kernel baselines.
Result<Matrix> SolveLeastSquares(const Matrix& a, const Matrix& b,
                                 double ridge = 0.0);

}  // namespace rpas::tensor

#endif  // RPAS_TENSOR_OPS_H_
