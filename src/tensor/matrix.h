#ifndef RPAS_TENSOR_MATRIX_H_
#define RPAS_TENSOR_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/logging.h"

namespace rpas::tensor {

/// Dense row-major matrix of doubles. The numeric substrate for the
/// autodiff/NN stack, ARIMA estimation, and the simplex solver.
///
/// Design notes:
///  * Row-major, contiguous storage; (rows()==1 or cols()==1) doubles as a
///    vector. Shapes are checked with RPAS_CHECK — shape mismatches are
///    programming errors, not data errors.
///  * Kernels (MatMul etc.) live in ops.h; the class itself stays small.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Matrix from nested initializer list: Matrix m{{1,2},{3,4}};
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  /// Column vector (n x 1) from values.
  static Matrix ColumnVector(const std::vector<double>& values);
  /// Row vector (1 x n) from values.
  static Matrix RowVector(const std::vector<double>& values);
  /// n x n identity.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    RPAS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    RPAS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Flat element access (row-major order).
  double& operator[](size_t i) {
    RPAS_DCHECK(i < data_.size());
    return data_[i];
  }
  double operator[](size_t i) const {
    RPAS_DCHECK(i < data_.size());
    return data_[i];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Raw storage (row-major).
  const std::vector<double>& values() const { return data_; }

  /// Sets every element to `value`.
  void Fill(double value);

  /// Reshapes to rows x cols and zero-fills, reusing the existing heap
  /// allocation when capacity suffices (the autodiff arena's recycling
  /// primitive — no new allocation on the steady-state training path).
  void ResizeZero(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  /// Heap capacity in doubles (used by arena stats to detect reallocation).
  size_t capacity() const { return data_.capacity(); }

  /// Reshape preserving element order; new shape must have equal size.
  Matrix Reshaped(size_t rows, size_t cols) const;

  /// Copies row r as a 1 x cols row vector.
  Matrix Row(size_t r) const;
  /// Copies column c as a rows x 1 column vector.
  Matrix Col(size_t c) const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace rpas::tensor

#endif  // RPAS_TENSOR_MATRIX_H_
