#ifndef RPAS_TENSOR_KERNELS_H_
#define RPAS_TENSOR_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "tensor/quant.h"

namespace rpas::tensor::kernels {

/// Runtime CPU dispatch levels for the vectorized kernel layer.
///
/// Contract (see DESIGN.md §10):
///  * kScalar is the bit-exact reference: it reproduces the pre-kernel-layer
///    loops operation for operation, so `RPAS_SIMD=scalar` reproduces
///    historical outputs bit-identically.
///  * kSse2 speeds up the linear-algebra kernels with 2-wide SSE2 mul/add in
///    the same per-element accumulation order and rounding as the scalar
///    path, so it is bit-identical to kScalar by construction.
///    Transcendentals route to the scalar implementations.
///  * kAvx2 uses 4-wide AVX2 with FMA plus polynomial vector
///    exp/log/tanh/sigmoid/softplus. Values may differ from the scalar
///    reference by a few ULP (property-tested bound); within the level every
///    kernel applies an identical per-element operation sequence regardless
///    of the batch row count, preserving the serve layer's
///    batched-vs-unbatched bit-identity.
enum class SimdLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Dispatch level every kernel call uses by default. Resolved once on first
/// use: the highest level that is both compiled in and supported by the CPU,
/// capped by the RPAS_SIMD environment variable ("scalar" | "sse2" | "avx2")
/// for reproducibility. An RPAS_SIMD request above what the machine supports
/// falls back (with a warning) rather than crashing, so pinned configs stay
/// portable to older hardware.
SimdLevel ActiveLevel();

/// "scalar" | "sse2" | "avx2".
const char* LevelName(SimdLevel level);

/// True when the level's kernels are compiled into this binary.
bool LevelCompiled(SimdLevel level);

/// True when the level is compiled in and the CPU can execute it.
bool LevelSupported(SimdLevel level);

/// Forces the active dispatch level for the current process until restored.
/// Used by parity tests and kernel_bench to sweep levels; requests above
/// LevelSupported() are clamped. Thread-safe (atomic), but sweeping levels
/// while compute threads are mid-kernel gives mixed-level results — tests
/// switch levels only between operations.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level);
  ~ScopedSimdLevel();
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel previous_;
};

// ---------------------------------------------------------------------------
// GEMM: C (m x n, row-major) += A (m x k, row-major) * B (k x n).
//
// Every variant accumulates each output element over p = 0..k-1 in strictly
// increasing order, so a row's result depends only on that row's inputs —
// never on m — which is what makes batched and unbatched forwards
// bit-identical at any fixed dispatch level.
// ---------------------------------------------------------------------------

/// Doubles required for a packed copy of B (k x n): column panels of width
/// kPanelWidth, zero-padded in the column tail.
size_t PackedSize(size_t k, size_t n);
inline constexpr size_t kPanelWidth = 8;

/// Packs row-major B (k x n, leading dimension ldb) into panel-major layout:
/// panel j0 holds columns [j0, j0+8) contiguously per p. Shared read-only by
/// all worker threads of one GEMM call.
void PackB(size_t k, size_t n, const double* b, size_t ldb, double* packed);

/// C rows [r0, r1) += A * B using a packed B. Serial — callers parallelize
/// over row ranges. `level` must not be kScalar (the scalar reference path
/// uses GemmRowsScalar on the unpacked B).
void GemmPackedRows(SimdLevel level, size_t r0, size_t r1, size_t n, size_t k,
                    const double* a, size_t lda, const double* packed,
                    double* c, size_t ldc);

/// Row grain the parallel GEMM drivers hand to ParallelFor: the whole row
/// range (one chunk -> ParallelFor's serial path) when the product's
/// 2*m*n*k flop count is below the parallelization threshold, a fixed
/// 16-row grain otherwise. Depends only on the operand shape — never the
/// thread count — so the partition, and with it the result, is identical
/// for every RPAS_NUM_THREADS value. The fixed grain is even, so chunk
/// boundaries preserve the 2-row register tiling of the SIMD kernels.
size_t GemmRowGrain(size_t m, size_t n, size_t k);

/// Batch-row grain for the fused LSTM cell kernels. Same contract as
/// GemmRowGrain; the per-element cost weight is much higher because the
/// cell step is transcendental-bound, so smaller batches still fan out.
size_t LstmRowGrain(size_t batch, size_t hidden);

/// Full parallel GEMM driver: C (m x n, ldc) += A (m x k, lda) * B (k x n,
/// ldb), all row-major. Packs B into column panels once (non-scalar levels
/// with n >= kPanelWidth; the scalar level and skinny outputs use the
/// unpacked reference rows) and fans GemmRowGrain()-sized row chunks
/// across the shared thread pool. Each output row is written by exactly
/// one chunk with its k-accumulation in ascending order, so the result is
/// bit-identical to the serial row kernels at any thread count and any
/// dispatch level. Small products run on the calling thread.
void Gemm(SimdLevel level, size_t m, size_t n, size_t k, const double* a,
          size_t lda, const double* b, size_t ldb, double* c, size_t ldc);

/// The pre-kernel-layer cache-blocked scalar reference (bit-exact legacy
/// MatMul inner loops) over C rows [r0, r1).
void GemmRowsScalar(size_t r0, size_t r1, size_t n, size_t k, const double* a,
                    size_t lda, const double* b, size_t ldb, double* c,
                    size_t ldc);

/// C (m x n) += A^T * B where A is (k x m) and B is (k x n), both row-major.
/// Accumulation order over p matches materializing A^T and running the
/// reference GEMM, so the scalar level is bit-identical to the old
/// Transpose+MatMul composition. Used by SolveLeastSquares (A^T A without the
/// O(n^2) transposed copy) and the autodiff MatMul backward (dB = A^T g).
/// Parallel over m (GemmRowGrain cost model); each output row keeps its
/// ascending-p accumulation, so results match the serial kernel bit-for-bit.
void GemmTN(SimdLevel level, size_t m, size_t n, size_t k, const double* a,
            size_t lda, const double* b, size_t ldb, double* c, size_t ldc);

/// C (m x n) += A * B^T where A is (m x k) and B is (n x k), both row-major.
/// Used by the autodiff MatMul backward (dA = g B^T) without materializing
/// the transpose. Parallel over m (GemmRowGrain cost model); rows are
/// independent dot products, so results match the serial kernel bit-for-bit.
void GemmNT(SimdLevel level, size_t m, size_t n, size_t k, const double* a,
            size_t lda, const double* b, size_t ldb, double* c, size_t ldc);

// ---------------------------------------------------------------------------
// Quantized-weight GEMM (the rpasq.v1 serving path).
// ---------------------------------------------------------------------------

/// C (m x n, ldc) += A (m x k, lda) * decode(Bq), where `b_payload` is the
/// serialized payload of a k x n row-major tensor in storage dtype
/// `b_dtype` (see tensor/quant.h for the per-dtype layouts). The payload is
/// decoded once per call into a thread-local fp64 scratch — fp16/fp32
/// convert-and-pack, q8 block dequant-on-the-fly — and then routed through
/// Gemm(), so every Gemm() guarantee carries over unchanged: each output
/// row depends only on its own A row and the (identical) decoded weights,
/// making batched and unbatched forwards bit-identical at any thread count
/// *within* a dtype. Decoded values are exact functions of the stored
/// bytes, so results are also identical across hosts and SIMD levels
/// modulo the documented Gemm() level contract.
///
/// kQ8 payloads take the true-int8 core instead when the opt-in
/// GemmQuantInt8Enabled() fast path is on (see above); all other dtypes
/// always use the decode path.
void GemmQuant(SimdLevel level, size_t m, size_t n, size_t k, const double* a,
               size_t lda, DType b_dtype, const uint8_t* b_payload, double* c,
               size_t ldc);

/// Opt-in true-int8 fast path for DType::kQ8 weights in GemmQuant.
///
/// When enabled, q8 payloads skip the dequantize-to-fp64 GEMM: the stored
/// blocks are requantized per call into k-major symmetric int8 blocks
/// (64-wide, per-block fp64 scale), activations are quantized to symmetric
/// int8 per (row, k-block), and the m x n x k core runs on exact integer
/// block dots — AVX2 uses the maddubs sign trick (|qa| x sign-adjusted qw;
/// pair sums bounded by 2*127*127 < 2^15, so the i16 lane never saturates
/// and the integer dot is exact), the scalar reference computes the same
/// integer dot directly. The per-block f32-scale application walks blocks
/// in ascending k order per output element at every level, so the int8
/// path is BIT-IDENTICAL across scalar/SSE2/AVX2 — but it is NOT
/// bit-identical to the default dequant path: symmetric weight
/// requantization and activation quantization add bounded error
/// (measured end-to-end as a wQL delta in bench/quantized_serving; the
/// bench enforces the documented <= 0.5% bound). Default off: every
/// existing q8 serving result is unchanged unless a caller opts in.
///
/// Resolution order: SetGemmQuantInt8Enabled() wins; otherwise the
/// RPAS_INT8_GEMM environment variable (truthy = on), read once.
bool GemmQuantInt8Enabled();
void SetGemmQuantInt8Enabled(bool enabled);

/// RAII override of the int8 fast-path flag (parity tests, benches).
class ScopedGemmQuantInt8 {
 public:
  explicit ScopedGemmQuantInt8(bool enabled);
  ~ScopedGemmQuantInt8();
  ScopedGemmQuantInt8(const ScopedGemmQuantInt8&) = delete;
  ScopedGemmQuantInt8& operator=(const ScopedGemmQuantInt8&) = delete;

 private:
  bool previous_;
};

/// Named dtype entry points (thin wrappers over GemmQuant).
inline void GemmQ8(SimdLevel level, size_t m, size_t n, size_t k,
                   const double* a, size_t lda, const uint8_t* b_payload,
                   double* c, size_t ldc) {
  GemmQuant(level, m, n, k, a, lda, DType::kQ8, b_payload, c, ldc);
}
inline void GemmF16(SimdLevel level, size_t m, size_t n, size_t k,
                    const double* a, size_t lda, const uint8_t* b_payload,
                    double* c, size_t ldc) {
  GemmQuant(level, m, n, k, a, lda, DType::kF16, b_payload, c, ldc);
}
inline void GemmF32(SimdLevel level, size_t m, size_t n, size_t k,
                    const double* a, size_t lda, const uint8_t* b_payload,
                    double* c, size_t ldc) {
  GemmQuant(level, m, n, k, a, lda, DType::kF32, b_payload, c, ldc);
}

// ---------------------------------------------------------------------------
// Vector primitives.
// ---------------------------------------------------------------------------

/// y += alpha * x.
void Axpy(SimdLevel level, size_t n, double alpha, const double* x, double* y);

/// Sum of x[i] * y[i]. The AVX2 level reduces with four partial accumulators;
/// parity with the scalar order is bounded by the standard forward-error
/// envelope (see kernel parity tests), not bit equality.
double Dot(SimdLevel level, size_t n, const double* x, const double* y);

/// Sum of x[i] (same reduction-order caveat as Dot).
double Sum(SimdLevel level, size_t n, const double* x);

// Elementwise transcendentals, out[i] = f(x[i]); out may alias x. The scalar
// implementations are the exact formulas the tape and Dense::Apply used
// before the kernel layer (std::tanh, the sign-split sigmoid, the stable
// softplus), so the scalar level stays bit-identical to history.
void EwTanh(SimdLevel level, size_t n, const double* x, double* out);
void EwSigmoid(SimdLevel level, size_t n, const double* x, double* out);
void EwSoftplus(SimdLevel level, size_t n, const double* x, double* out);
void EwRelu(SimdLevel level, size_t n, const double* x, double* out);

// ---------------------------------------------------------------------------
// Fused LSTM cell step (batch-major, gate order i, f, g, o — matching
// nn::LstmCell's fused 4H weight layout).
// ---------------------------------------------------------------------------

/// Forward: `gates` (batch x 4H, row-major, contiguous) holds pre-activations
/// on entry and activated gates (sigmoid i/f/o, tanh g) on exit.
/// For each row r, column j:
///   c_out = f * c_prev + i * g
///   h_out = o * tanh(c_out)
/// `tanh_c` (batch x hidden, contiguous) receives tanh(c_out) when non-null
/// (the training path saves it for the backward); pass nullptr in inference.
/// h_out/c_out/c_prev use explicit leading dimensions so the training path
/// can write straight into a [h | c] node value.
/// Parallel over the batch dimension (LstmRowGrain cost model): rows are
/// fully independent, so the fan-out is bit-identical to the serial step.
void LstmCellForward(SimdLevel level, size_t batch, size_t hidden,
                     double* gates, const double* c_prev, size_t ldcp,
                     double* h_out, size_t ldh, double* c_out, size_t ldc,
                     double* tanh_c);

/// Backward through one cell step. Inputs: activated gates `act`
/// (batch x 4H), previous cell state, saved tanh(c_new), and incoming
/// gradients dh (w.r.t. h_out) and dc (w.r.t. c_out, the contribution flowing
/// in from step t+1). Outputs: `dgates` (batch x 4H pre-activation grads,
/// overwritten) and `dc_prev` (batch x hidden, overwritten).
/// Uses plain mul/add in the exact expression shapes of the old per-node
/// backward chain, so the SIMD levels agree with scalar bit-for-bit here.
/// Parallel over the batch dimension like the forward.
void LstmCellBackward(SimdLevel level, size_t batch, size_t hidden,
                      const double* act, const double* c_prev, size_t ldcp,
                      const double* tanh_c, const double* dh, size_t ldh,
                      const double* dc, size_t ldc, double* dgates,
                      double* dc_prev);

}  // namespace rpas::tensor::kernels

#endif  // RPAS_TENSOR_KERNELS_H_
