#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/kernels.h"

namespace rpas::tensor {

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  RPAS_CHECK(a.cols() == b.rows())
      << "matmul shape mismatch: " << a.rows() << "x" << a.cols() << " * "
      << b.rows() << "x" << b.cols();
  RPAS_CHECK(out != nullptr && out->rows() == a.rows() &&
             out->cols() == b.cols())
      << "matmul output shape mismatch";
  // The kernels::Gemm driver packs B and row-panel-parallelizes with a
  // shape-only cost model. Each output row is written by exactly one chunk
  // and its k-accumulation runs in ascending order at every level, so
  // results are bit-identical to the serial path and independent of the
  // row count. No data-dependent skips: 0 * NaN must stay NaN (IEEE-754
  // propagation).
  kernels::Gemm(kernels::ActiveLevel(), a.rows(), b.cols(), a.cols(),
                a.data(), a.cols(), b.data(), b.cols(), out->data(),
                out->cols());
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  MatMulInto(a, b, &out);
  return out;
}

void MatMulTNInto(const Matrix& a, const Matrix& b, Matrix* out) {
  RPAS_CHECK(a.rows() == b.rows())
      << "matmul-tn shape mismatch: " << a.rows() << "x" << a.cols()
      << " ^T * " << b.rows() << "x" << b.cols();
  RPAS_CHECK(out != nullptr && out->rows() == a.cols() &&
             out->cols() == b.cols())
      << "matmul-tn output shape mismatch";
  kernels::GemmTN(kernels::ActiveLevel(), a.cols(), b.cols(), a.rows(),
                  a.data(), a.cols(), b.data(), b.cols(), out->data(),
                  out->cols());
}

Matrix MatMulTN(const Matrix& a, const Matrix& b) {
  Matrix out(a.cols(), b.cols());
  MatMulTNInto(a, b, &out);
  return out;
}

void MatMulNTInto(const Matrix& a, const Matrix& b, Matrix* out) {
  RPAS_CHECK(a.cols() == b.cols())
      << "matmul-nt shape mismatch: " << a.rows() << "x" << a.cols() << " * "
      << b.rows() << "x" << b.cols() << "^T";
  RPAS_CHECK(out != nullptr && out->rows() == a.rows() &&
             out->cols() == b.rows())
      << "matmul-nt output shape mismatch";
  kernels::GemmNT(kernels::ActiveLevel(), a.rows(), b.rows(), a.cols(),
                  a.data(), a.cols(), b.data(), b.cols(), out->data(),
                  out->cols());
}

Matrix MatMulNT(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.rows());
  MatMulNTInto(a, b, &out);
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      out(c, r) = a(r, c);
    }
  }
  return out;
}

namespace {
template <typename F>
Matrix Zip(const Matrix& a, const Matrix& b, F f, const char* name) {
  RPAS_CHECK(a.SameShape(b)) << name << " shape mismatch: " << a.rows() << "x"
                             << a.cols() << " vs " << b.rows() << "x"
                             << b.cols();
  Matrix out(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = f(a[i], b[i]);
  }
  return out;
}
}  // namespace

Matrix Add(const Matrix& a, const Matrix& b) {
  return Zip(a, b, [](double x, double y) { return x + y; }, "add");
}
Matrix Sub(const Matrix& a, const Matrix& b) {
  return Zip(a, b, [](double x, double y) { return x - y; }, "sub");
}
Matrix Mul(const Matrix& a, const Matrix& b) {
  return Zip(a, b, [](double x, double y) { return x * y; }, "mul");
}
Matrix Div(const Matrix& a, const Matrix& b) {
  return Zip(a, b, [](double x, double y) { return x / y; }, "div");
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  RPAS_CHECK(row.rows() == 1 && row.cols() == a.cols())
      << "broadcast shape mismatch";
  Matrix out = a;
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      out(r, c) += row(0, c);
    }
  }
  return out;
}

Matrix Scale(const Matrix& a, double s) {
  Matrix out = a;
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] *= s;
  }
  return out;
}

Matrix AddScalar(const Matrix& a, double s) {
  Matrix out = a;
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] += s;
  }
  return out;
}

Matrix Map(const Matrix& a, const std::function<double(double)>& f) {
  Matrix out(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = f(a[i]);
  }
  return out;
}

void Axpy(double alpha, const Matrix& x, Matrix* y) {
  RPAS_CHECK(y != nullptr && x.SameShape(*y)) << "axpy shape mismatch";
  kernels::Axpy(kernels::ActiveLevel(), x.size(), alpha, x.data(), y->data());
}

double Sum(const Matrix& a) {
  return kernels::Sum(kernels::ActiveLevel(), a.size(), a.data());
}

double Mean(const Matrix& a) {
  RPAS_CHECK(!a.empty());
  return Sum(a) / static_cast<double>(a.size());
}

double MaxAbs(const Matrix& a) {
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i]));
  }
  return m;
}

double Norm(const Matrix& a) { return std::sqrt(Dot(a, a)); }

double Dot(const Matrix& a, const Matrix& b) {
  RPAS_CHECK(a.size() == b.size()) << "dot size mismatch";
  return kernels::Dot(kernels::ActiveLevel(), a.size(), a.data(), b.data());
}

Matrix ColSums(const Matrix& a) {
  Matrix out(1, a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      out(0, c) += a(r, c);
    }
  }
  return out;
}

Matrix RowSums(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    double s = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) {
      s += a(r, c);
    }
    out(r, 0) = s;
  }
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  RPAS_CHECK(a.rows() == b.rows()) << "concat-cols row mismatch";
  Matrix out(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      out(r, c) = a(r, c);
    }
    for (size_t c = 0; c < b.cols(); ++c) {
      out(r, a.cols() + c) = b(r, c);
    }
  }
  return out;
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  RPAS_CHECK(a.cols() == b.cols()) << "concat-rows col mismatch";
  Matrix out(a.rows() + b.rows(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      out(r, c) = a(r, c);
    }
  }
  for (size_t r = 0; r < b.rows(); ++r) {
    for (size_t c = 0; c < b.cols(); ++c) {
      out(a.rows() + r, c) = b(r, c);
    }
  }
  return out;
}

Matrix SliceCols(const Matrix& a, size_t begin, size_t end) {
  RPAS_CHECK(begin <= end && end <= a.cols()) << "column slice out of range";
  Matrix out(a.rows(), end - begin);
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = begin; c < end; ++c) {
      out(r, c - begin) = a(r, c);
    }
  }
  return out;
}

Matrix SliceRows(const Matrix& a, size_t begin, size_t end) {
  RPAS_CHECK(begin <= end && end <= a.rows()) << "row slice out of range";
  Matrix out(end - begin, a.cols());
  for (size_t r = begin; r < end; ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      out(r - begin, c) = a(r, c);
    }
  }
  return out;
}

Result<Matrix> SolveLinearSystem(Matrix a, Matrix b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveLinearSystem: A must be square");
  }
  if (b.rows() != a.rows() || b.cols() != 1) {
    return Status::InvalidArgument(
        "SolveLinearSystem: b must be a column vector matching A");
  }
  const size_t n = a.rows();
  // Singularity tolerance relative to the matrix magnitude: an absolute
  // cutoff misclassifies well-conditioned but small-scaled systems (e.g.
  // 1e-20 * I). An all-zero matrix has scale 0 and fails the first pivot.
  const double tolerance = MaxAbs(a) * 1e-12;
  // Forward elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > best) {
        best = std::fabs(a(r, col));
        pivot = r;
      }
    }
    if (best <= tolerance) {
      return Status::FailedPrecondition(
          "SolveLinearSystem: matrix is singular");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(a(pivot, c), a(col, c));
      }
      std::swap(b(pivot, 0), b(col, 0));
    }
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) {
        continue;
      }
      for (size_t c = col; c < n; ++c) {
        a(r, c) -= factor * a(col, c);
      }
      b(r, 0) -= factor * b(col, 0);
    }
  }
  // Back substitution.
  Matrix x(n, 1);
  for (size_t i = n; i-- > 0;) {
    double s = b(i, 0);
    for (size_t c = i + 1; c < n; ++c) {
      s -= a(i, c) * x(c, 0);
    }
    x(i, 0) = s / a(i, i);
  }
  return x;
}

Result<Matrix> SolveLeastSquares(const Matrix& a, const Matrix& b,
                                 double ridge) {
  if (a.rows() != b.rows() || b.cols() != 1) {
    return Status::InvalidArgument(
        "SolveLeastSquares: b must be a column vector matching A's rows");
  }
  if (ridge < 0.0) {
    return Status::InvalidArgument("SolveLeastSquares: ridge must be >= 0");
  }
  // Transposed-operand GEMM: no O(rows * cols) copy of A per solver call,
  // and the scalar level matches the old Transpose+MatMul bit-for-bit.
  Matrix ata = MatMulTN(a, a);
  for (size_t i = 0; i < ata.rows(); ++i) {
    ata(i, i) += ridge;
  }
  Matrix atb = MatMulTN(a, b);
  return SolveLinearSystem(std::move(ata), std::move(atb));
}

}  // namespace rpas::tensor
