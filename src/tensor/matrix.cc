#include "tensor/matrix.h"

#include <algorithm>

namespace rpas::tensor {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    RPAS_CHECK(row.size() == cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix m(values.size(), 1);
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::Reshaped(size_t rows, size_t cols) const {
  RPAS_CHECK(rows * cols == data_.size())
      << "reshape " << rows_ << "x" << cols_ << " -> " << rows << "x" << cols;
  Matrix out = *this;
  out.rows_ = rows;
  out.cols_ = cols;
  return out;
}

Matrix Matrix::Row(size_t r) const {
  RPAS_CHECK(r < rows_);
  Matrix out(1, cols_);
  std::copy(data_.begin() + static_cast<long>(r * cols_),
            data_.begin() + static_cast<long>((r + 1) * cols_),
            out.data_.begin());
  return out;
}

Matrix Matrix::Col(size_t c) const {
  RPAS_CHECK(c < cols_);
  Matrix out(rows_, 1);
  for (size_t r = 0; r < rows_; ++r) {
    out(r, 0) = (*this)(r, c);
  }
  return out;
}

}  // namespace rpas::tensor
