#ifndef RPAS_SELECT_PRESCALER_H_
#define RPAS_SELECT_PRESCALER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rpas::select {

struct PreScalerOptions {
  /// How many steps ahead of the predicted spike the floor raise lands, so
  /// nodes finish warming up before traffic arrives.
  size_t lead_steps = 3;
  /// A step counts as a spike when the planned nodes reach
  /// `max(ref * spike_ratio, ref + min_spike_nodes)` where ref = plan[0].
  double spike_ratio = 1.5;
  int min_spike_nodes = 2;
  /// Steps past the predicted spike before the floor rolls back
  /// ("peak passed").
  size_t peak_hold = 2;
  /// Safety valve: a raised floor never outlives this many active steps
  /// even if the peak never materializes.
  size_t hold_timeout = 24;
};

struct PreScalerStats {
  uint64_t plans_observed = 0;
  uint64_t spikes_detected = 0;
  uint64_t activations = 0;
  uint64_t rollbacks = 0;
  uint64_t timeout_rollbacks = 0;
  /// Steps on which the merged decision was raised above the reactive one.
  uint64_t floor_raised_steps = 0;
};

/// TRUE pre-scaling with auto-rollback (SNIPPETS.md snippet 2 semantics):
/// scan each fresh quantile plan for a predicted spike, raise the capacity
/// floor `lead_steps` before it, remember the original floor, and roll back
/// automatically once the peak has passed or a timeout expires.
///
/// Safety argument, enforced by construction: the only interaction with the
/// reactive controller is `Merge(decision, step) = max(decision, FloorAt(step))`,
/// and `FloorAt` never returns less than the base floor. A monotone max can
/// raise capacity ahead of a spike but can never scale down below what the
/// controller asked for — the pre-scaler cannot fight reactive scale-out,
/// only pre-empt it. Rollback merely stops raising; it never lowers.
///
/// Fully deterministic (no RNG) and driven by a monotone step clock.
class PreScaler {
 public:
  PreScaler(PreScalerOptions options, int base_floor);

  /// Inspects a freshly installed plan whose first step executes at
  /// absolute step `start_step`. Detects the earliest spike and schedules a
  /// floor raise. A pending (not yet active) episode is replaced by the
  /// fresher plan's view; an active episode keeps running until rollback.
  void ObservePlan(const std::vector<int>& plan, size_t start_step);

  /// The floor in force at `step`. Advances the internal episode state
  /// machine: activates scheduled raises, rolls back after peak-passed or
  /// timeout. `step` must be monotone non-decreasing across calls.
  int FloorAt(size_t step);

  /// Merges the reactive controller's decision with the pre-scale floor.
  /// Never returns less than `decision`.
  int Merge(int decision, size_t step);

  /// Forces rollback of any in-flight episode (end of run), so that
  /// `stats().activations == stats().rollbacks` always holds after Finish.
  void Finish();

  bool active() const { return active_; }
  bool pending() const { return pending_; }
  int base_floor() const { return base_floor_; }
  /// The floor that rollback restores; equals base_floor() by invariant.
  int original_floor() const { return original_floor_; }
  const PreScalerStats& stats() const { return stats_; }
  const PreScalerOptions& options() const { return options_; }

 private:
  void Rollback(bool timeout);

  PreScalerOptions options_;
  int base_floor_ = 1;
  int original_floor_ = 1;
  int raised_floor_ = 1;
  bool pending_ = false;
  bool active_ = false;
  size_t raise_step_ = 0;    ///< absolute step at which the raise activates
  size_t spike_step_ = 0;    ///< absolute step of the predicted spike
  size_t active_steps_ = 0;  ///< steps since activation (timeout clock)
  PreScalerStats stats_;
};

}  // namespace rpas::select

#endif  // RPAS_SELECT_PRESCALER_H_
