#ifndef RPAS_SELECT_SELECTOR_H_
#define RPAS_SELECT_SELECTOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "select/classifier.h"

namespace rpas::select {

/// Why the selector changed (or kept) its tier on a given round.
enum class SelectorEvent : int {
  kHold = 0,        ///< no change
  kPromote = 1,     ///< rolling wQL breached the bound: climb one tier
  kProbeDemote = 2, ///< rolling wQL well inside the bound: try one tier down
  kFaultDemote = 3, ///< consecutive fault counter tripped: drop immediately
  kDriftDemote = 4, ///< active model's drift guard tripped: drop immediately
};

struct SelectorOptions {
  /// Number of candidate tiers (cheapest = 0, most expensive = size-1).
  size_t ladder_size = 4;
  /// Rolling-wQL window: how many scored rounds feed the decision.
  size_t wql_window = 6;
  /// Target rolling mean wQL. Promote when the mean exceeds
  /// `bound * (1 + promote_hysteresis)`; probe a cheaper tier when it is
  /// below `bound * probe_fraction`. Values in between never switch —
  /// that dead band is the no-flap guarantee.
  double wql_bound = 0.15;
  double promote_hysteresis = 0.10;
  double probe_fraction = 0.40;
  /// Minimum rounds on a tier before any wQL-driven switch (fault/drift
  /// demotions bypass the dwell: a broken model must not be dwelt on).
  size_t min_dwell = 4;
  /// Rounds to wait after a promotion before probing back down, so the
  /// selector does not immediately undo an escalation it just paid for.
  size_t probe_cooldown = 8;
  /// Consecutive faulted rounds on the active tier that force a demotion.
  size_t fault_trip = 2;
};

struct SelectorStats {
  uint64_t rounds = 0;
  uint64_t switches = 0;
  uint64_t promotions = 0;
  uint64_t probe_demotions = 0;
  uint64_t fault_demotions = 0;
  uint64_t drift_demotions = 0;
};

/// Per-tenant adaptive forecaster selection over a cost-ordered candidate
/// ladder (seasonal-naive -> ARIMA -> MLP -> DeepAR). The selector itself is
/// model-agnostic: callers map `tier()` to whatever forecaster ladder they
/// hold. Decisions are a pure function of the observed wQL/fault/drift
/// sequence — no RNG — so selection can never perturb seeded schedules.
///
/// State machine per observed round:
///   1. fault round        -> consecutive-fault counter; at `fault_trip`,
///                            demote immediately (ignores dwell), reset.
///   2. drift notification -> demote immediately (ignores dwell).
///   3. rolling wQL full + dwell satisfied:
///        mean > bound*(1+hyst)          -> promote (if not at top)
///        mean < bound*probe_fraction    -> probe demote (if not at bottom
///                                          and past the probe cooldown)
///        otherwise                      -> hold (hysteresis dead band).
/// Every switch resets the rolling window and the dwell clock: evidence
/// gathered against one model never judges another.
class AdaptiveSelector {
 public:
  explicit AdaptiveSelector(SelectorOptions options);

  /// Seeds the starting tier from a workload pattern: steady/seasonal
  /// workloads start on the cheapest model, trending on tier 1, bursty on
  /// the top tier. No-op after the first observed round.
  void SeedFromPattern(WorkloadPattern pattern);

  /// Feeds one planning round. `wql` is the realized prefix-wQL of the plan
  /// that just expired; `wql_valid` is false when no forecast was scored
  /// this round (e.g. fallback plan served). `faulted` marks a round on
  /// which the active model's degradation path fired.
  SelectorEvent ObserveRound(double wql, bool wql_valid, bool faulted);

  /// External drift signal (e.g. the streaming refresher's wQL drift
  /// guard). Demotes immediately, bypassing the dwell.
  SelectorEvent NoteDrift();

  size_t tier() const { return tier_; }
  /// Rounds spent on the current tier since the last switch.
  size_t dwell() const { return dwell_; }
  double RollingWql() const;
  size_t RollingCount() const { return window_.size(); }
  const SelectorStats& stats() const { return stats_; }
  const SelectorOptions& options() const { return options_; }

 private:
  SelectorEvent SwitchTo(size_t tier, SelectorEvent event);

  SelectorOptions options_;
  size_t tier_ = 0;
  size_t dwell_ = 0;
  size_t consecutive_faults_ = 0;
  size_t cooldown_ = 0;
  bool seeded_ = false;
  std::deque<double> window_;
  SelectorStats stats_;
};

}  // namespace rpas::select

#endif  // RPAS_SELECT_SELECTOR_H_
