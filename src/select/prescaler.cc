#include "select/prescaler.h"

#include <algorithm>
#include <cmath>

namespace rpas::select {

PreScaler::PreScaler(PreScalerOptions options, int base_floor)
    : options_(options),
      base_floor_(base_floor),
      original_floor_(base_floor),
      raised_floor_(base_floor) {
  if (base_floor_ < 0) base_floor_ = 0;
  original_floor_ = base_floor_;
  raised_floor_ = base_floor_;
}

void PreScaler::ObservePlan(const std::vector<int>& plan, size_t start_step) {
  ++stats_.plans_observed;
  if (plan.empty()) return;
  const int ref = plan[0];
  const int spike_level = std::max(
      static_cast<int>(std::ceil(static_cast<double>(ref) *
                                 options_.spike_ratio)),
      ref + options_.min_spike_nodes);
  size_t spike_offset = plan.size();
  for (size_t k = 1; k < plan.size(); ++k) {
    if (plan[k] >= spike_level) {
      spike_offset = k;
      break;
    }
  }
  if (spike_offset == plan.size()) return;  // no predicted spike
  ++stats_.spikes_detected;
  // An active raise keeps running (its rollback logic owns the floor); only
  // a pending, not-yet-applied episode is replaced by the fresher forecast.
  if (active_) return;
  const size_t spike_step = start_step + spike_offset;
  const size_t lead = std::min(options_.lead_steps, spike_step);
  pending_ = true;
  raise_step_ = spike_step - lead;
  spike_step_ = spike_step;
  raised_floor_ = plan[spike_offset];
}

int PreScaler::FloorAt(size_t step) {
  if (pending_ && !active_ && step >= raise_step_) {
    pending_ = false;
    active_ = true;
    active_steps_ = 0;
    original_floor_ = base_floor_;
    ++stats_.activations;
  }
  if (active_) {
    ++active_steps_;
    if (step > spike_step_ + options_.peak_hold) {
      Rollback(/*timeout=*/false);
    } else if (active_steps_ > options_.hold_timeout) {
      Rollback(/*timeout=*/true);
    }
  }
  return active_ ? std::max(raised_floor_, base_floor_) : base_floor_;
}

int PreScaler::Merge(int decision, size_t step) {
  const int floor = FloorAt(step);
  if (floor > decision) {
    ++stats_.floor_raised_steps;
    return floor;
  }
  return decision;
}

void PreScaler::Rollback(bool timeout) {
  active_ = false;
  active_steps_ = 0;
  raised_floor_ = original_floor_;
  ++stats_.rollbacks;
  if (timeout) ++stats_.timeout_rollbacks;
}

void PreScaler::Finish() {
  if (active_) Rollback(/*timeout=*/false);
  pending_ = false;
}

}  // namespace rpas::select
