#include "select/classifier.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace rpas::select {
namespace {

constexpr double kMadToSigma = 1.4826;
constexpr double kEps = 1e-9;

double MedianOfSorted(const std::vector<double>& sorted) {
  const size_t n = sorted.size();
  if (n == 0) return 0.0;
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

}  // namespace

std::string_view WorkloadPatternToString(WorkloadPattern pattern) {
  switch (pattern) {
    case WorkloadPattern::kInsufficient:
      return "insufficient";
    case WorkloadPattern::kSteady:
      return "steady";
    case WorkloadPattern::kTrending:
      return "trending";
    case WorkloadPattern::kSeasonal:
      return "seasonal";
    case WorkloadPattern::kBursty:
      return "bursty";
  }
  return "unknown";
}

WorkloadClassifier::WorkloadClassifier(ClassifierOptions options)
    : options_(options) {
  if (options_.window == 0) options_.window = 1;
  if (options_.season == 0) options_.season = 1;
}

void WorkloadClassifier::Push(double value) {
  window_.push_back(value);
  while (window_.size() > options_.window) window_.pop_front();
}

void WorkloadClassifier::PushAll(const std::vector<double>& values) {
  for (double v : values) Push(v);
}

void WorkloadClassifier::Reset() { window_.clear(); }

WorkloadFeatures WorkloadClassifier::Features() const {
  std::vector<double> values(window_.begin(), window_.end());
  return FeaturesOf(values);
}

WorkloadFeatures WorkloadClassifier::FeaturesOf(
    const std::vector<double>& values) const {
  WorkloadFeatures f;
  const size_t start =
      values.size() > options_.window ? values.size() - options_.window : 0;
  const std::vector<double> window(values.begin() + static_cast<long>(start),
                                   values.end());
  const size_t n = window.size();
  f.points = n;
  if (n < 2) return f;

  // Robust location/scale: median and MAD of the raw window.
  std::vector<double> sorted = window;
  std::sort(sorted.begin(), sorted.end());
  const double median = MedianOfSorted(sorted);
  std::vector<double> abs_dev(n);
  for (size_t i = 0; i < n; ++i) abs_dev[i] = std::abs(window[i] - median);
  std::sort(abs_dev.begin(), abs_dev.end());
  const double mad = MedianOfSorted(abs_dev);
  const double robust_scale = kMadToSigma * mad + kEps;

  // Spike features: fraction and max of robust z-scores.
  size_t spikes = 0;
  for (size_t i = 0; i < n; ++i) {
    const double score = std::abs(window[i] - median) / robust_scale;
    if (score > f.max_spike_score) f.max_spike_score = score;
    if (score > options_.spike_z) ++spikes;
  }
  f.burst_fraction = static_cast<double>(spikes) / static_cast<double>(n);

  // OLS slope over t = 0..n-1, expressed as total drift across the window
  // in robust-scale units.
  const double tn = static_cast<double>(n);
  const double t_mean = 0.5 * (tn - 1.0);
  double x_mean = 0.0;
  for (size_t i = 0; i < n; ++i) x_mean += window[i];
  x_mean /= tn;
  double cov = 0.0;
  double var_t = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dt = static_cast<double>(i) - t_mean;
    cov += dt * (window[i] - x_mean);
    var_t += dt * dt;
  }
  const double slope = var_t > 0.0 ? cov / var_t : 0.0;
  f.trend_strength = std::abs(slope) * (tn - 1.0) / robust_scale;

  // Variance-ratio seasonality on the detrended window: how much of the
  // detrended variance is explained by per-phase means. Needs at least two
  // full seasons so every phase has two samples.
  const size_t season = options_.season;
  if (n >= 2 * season && season >= 2) {
    std::vector<double> detrended(n);
    for (size_t i = 0; i < n; ++i) {
      const double fit = x_mean + slope * (static_cast<double>(i) - t_mean);
      detrended[i] = window[i] - fit;
    }
    std::vector<double> phase_sum(season, 0.0);
    std::vector<size_t> phase_count(season, 0);
    // Align phases to the window end so that sliding the window by a full
    // season leaves the phase assignment of surviving points unchanged.
    for (size_t i = 0; i < n; ++i) {
      const size_t phase = (i + season - (n % season)) % season;
      phase_sum[phase] += detrended[i];
      ++phase_count[phase];
    }
    double var_total = 0.0;
    double var_resid = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const size_t phase = (i + season - (n % season)) % season;
      const double mean =
          phase_sum[phase] / static_cast<double>(phase_count[phase]);
      var_total += detrended[i] * detrended[i];
      const double r = detrended[i] - mean;
      var_resid += r * r;
    }
    if (var_total > kEps) {
      f.seasonal_strength =
          std::clamp(1.0 - var_resid / var_total, 0.0, 1.0);
    }
  }
  return f;
}

WorkloadPattern WorkloadClassifier::Classify() const {
  return ClassifyFeatures(Features());
}

WorkloadPattern WorkloadClassifier::ClassifyFeatures(
    const WorkloadFeatures& features) const {
  if (features.points < options_.min_points) {
    return WorkloadPattern::kInsufficient;
  }
  if (features.burst_fraction >= options_.burst_fraction_threshold) {
    return WorkloadPattern::kBursty;
  }
  if (features.seasonal_strength >= options_.seasonal_strength_threshold) {
    return WorkloadPattern::kSeasonal;
  }
  if (features.trend_strength >= options_.trend_strength_threshold) {
    return WorkloadPattern::kTrending;
  }
  return WorkloadPattern::kSteady;
}

}  // namespace rpas::select
