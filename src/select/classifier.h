#ifndef RPAS_SELECT_CLASSIFIER_H_
#define RPAS_SELECT_CLASSIFIER_H_

#include <cstddef>
#include <deque>
#include <string_view>
#include <vector>

namespace rpas::select {

/// Workload pattern labels the per-tenant forecaster router keys on
/// (cf. the trend + seasonal + residual decomposition of the Alibaba AHPA
/// paper and the workload-pattern detection in SNIPPETS.md snippet 2).
/// Ordering matters for tier seeding: later labels are "harder" workloads.
enum class WorkloadPattern : int {
  kInsufficient = 0,  ///< too few points to classify
  kSteady = 1,        ///< flat, low-noise demand
  kTrending = 2,      ///< dominant linear drift
  kSeasonal = 3,      ///< dominant periodic cycle
  kBursty = 4,        ///< heavy-tailed spikes on top of anything else
};
std::string_view WorkloadPatternToString(WorkloadPattern pattern);

/// Deterministic features of one rolling workload window. Every field is a
/// pure function of the window contents — no RNG, no thread-dependent
/// reduction order — so features are bit-identical at any thread count and
/// for any chunking of the pushes that produced the window.
struct WorkloadFeatures {
  size_t points = 0;
  /// |OLS slope| * (n-1) in robust-scale units: how many MAD-scales the
  /// fitted line moves across the whole window.
  double trend_strength = 0.0;
  /// Variance-ratio seasonality of the detrended window:
  /// 1 - Var(detrended - phase_mean) / Var(detrended), clamped to [0, 1].
  /// 0 when the window spans fewer than two full seasons.
  double seasonal_strength = 0.0;
  /// Fraction of points whose robust spike score |x - median| / (1.4826 *
  /// MAD) exceeds the configured z threshold.
  double burst_fraction = 0.0;
  /// Largest robust spike score in the window.
  double max_spike_score = 0.0;
};

struct ClassifierOptions {
  /// Rolling window capacity in points; older points fall off the back.
  size_t window = 288;
  /// Steps per seasonal cycle (one day at 10-minute sampling).
  size_t season = 144;
  /// Below this many points the pattern is kInsufficient.
  size_t min_points = 32;
  /// Robust z threshold above which a point counts as a spike.
  double spike_z = 3.5;
  /// Spike fraction at or above which the window is kBursty.
  double burst_fraction_threshold = 0.03;
  /// Seasonal strength at or above which the window is kSeasonal.
  double seasonal_strength_threshold = 0.4;
  /// Trend strength at or above which the window is kTrending.
  double trend_strength_threshold = 1.0;
};

/// Deterministic workload-pattern classifier over a bounded rolling window.
///
/// The streaming interface (Push / Features / Classify) and the one-shot
/// interface (FeaturesOf) run the same arithmetic: pushing a series point by
/// point, in chunks of any size, or calling FeaturesOf on the trailing
/// `window` points all yield bit-identical features. The classifier never
/// draws randomness and never parallelizes, so its output is also invariant
/// to RPAS_NUM_THREADS — the property tests pin both invariants.
class WorkloadClassifier {
 public:
  explicit WorkloadClassifier(ClassifierOptions options);

  /// Appends one observation, evicting the oldest beyond the window.
  void Push(double value);
  void PushAll(const std::vector<double>& values);
  void Reset();
  size_t size() const { return window_.size(); }

  /// Features of the current window contents.
  WorkloadFeatures Features() const;
  /// Pattern label for the current window contents.
  WorkloadPattern Classify() const;

  /// One-shot: features of the trailing `options().window` points of
  /// `values` (all of them when shorter).
  WorkloadFeatures FeaturesOf(const std::vector<double>& values) const;

  /// Pure feature→label mapping. Bursty dominates (spikes break every
  /// model class equally), then seasonal, then trending, then steady.
  WorkloadPattern ClassifyFeatures(const WorkloadFeatures& features) const;

  const ClassifierOptions& options() const { return options_; }

 private:
  ClassifierOptions options_;
  std::deque<double> window_;
};

}  // namespace rpas::select

#endif  // RPAS_SELECT_CLASSIFIER_H_
