#include "select/selector.h"

#include <algorithm>

namespace rpas::select {

AdaptiveSelector::AdaptiveSelector(SelectorOptions options)
    : options_(options) {
  if (options_.ladder_size == 0) options_.ladder_size = 1;
  if (options_.wql_window == 0) options_.wql_window = 1;
}

void AdaptiveSelector::SeedFromPattern(WorkloadPattern pattern) {
  if (seeded_ || stats_.rounds > 0) return;
  seeded_ = true;
  const size_t top = options_.ladder_size - 1;
  switch (pattern) {
    case WorkloadPattern::kInsufficient:
    case WorkloadPattern::kSteady:
    case WorkloadPattern::kSeasonal:
      tier_ = 0;
      break;
    case WorkloadPattern::kTrending:
      tier_ = std::min<size_t>(1, top);
      break;
    case WorkloadPattern::kBursty:
      tier_ = top;
      break;
  }
}

SelectorEvent AdaptiveSelector::SwitchTo(size_t tier, SelectorEvent event) {
  tier_ = tier;
  dwell_ = 0;
  consecutive_faults_ = 0;
  window_.clear();
  ++stats_.switches;
  switch (event) {
    case SelectorEvent::kPromote:
      ++stats_.promotions;
      cooldown_ = options_.probe_cooldown;
      break;
    case SelectorEvent::kProbeDemote:
      ++stats_.probe_demotions;
      break;
    case SelectorEvent::kFaultDemote:
      ++stats_.fault_demotions;
      break;
    case SelectorEvent::kDriftDemote:
      ++stats_.drift_demotions;
      break;
    case SelectorEvent::kHold:
      break;
  }
  return event;
}

SelectorEvent AdaptiveSelector::NoteDrift() {
  if (tier_ == 0) {
    // Already on the cheapest model; nothing below to fall to. Reset the
    // evidence window so the drifted samples do not linger.
    window_.clear();
    return SelectorEvent::kHold;
  }
  return SwitchTo(tier_ - 1, SelectorEvent::kDriftDemote);
}

SelectorEvent AdaptiveSelector::ObserveRound(double wql, bool wql_valid,
                                             bool faulted) {
  ++stats_.rounds;
  ++dwell_;
  if (cooldown_ > 0) --cooldown_;

  if (faulted) {
    ++consecutive_faults_;
    if (consecutive_faults_ >= options_.fault_trip && tier_ > 0) {
      return SwitchTo(tier_ - 1, SelectorEvent::kFaultDemote);
    }
    return SelectorEvent::kHold;
  }
  consecutive_faults_ = 0;

  if (wql_valid) {
    window_.push_back(wql);
    while (window_.size() > options_.wql_window) window_.pop_front();
  }
  if (window_.size() < options_.wql_window) return SelectorEvent::kHold;
  if (dwell_ < options_.min_dwell) return SelectorEvent::kHold;

  const double mean = RollingWql();
  const size_t top = options_.ladder_size - 1;
  if (mean > options_.wql_bound * (1.0 + options_.promote_hysteresis)) {
    if (tier_ < top) return SwitchTo(tier_ + 1, SelectorEvent::kPromote);
    return SelectorEvent::kHold;
  }
  if (mean < options_.wql_bound * options_.probe_fraction) {
    if (tier_ > 0 && cooldown_ == 0) {
      return SwitchTo(tier_ - 1, SelectorEvent::kProbeDemote);
    }
    return SelectorEvent::kHold;
  }
  return SelectorEvent::kHold;
}

double AdaptiveSelector::RollingWql() const {
  if (window_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : window_) sum += v;
  return sum / static_cast<double>(window_.size());
}

}  // namespace rpas::select
