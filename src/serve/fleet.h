#ifndef RPAS_SERVE_FLEET_H_
#define RPAS_SERVE_FLEET_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/online_loop.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/batching.h"
#include "serve/registry.h"
#include "simdb/faults.h"
#include "trace/generator.h"

namespace rpas::serve {

/// Per-tenant outcome of a fleet run.
struct TenantSummary {
  uint64_t tenant_id = 0;
  ModelId model;
  /// Provisioning quality against realized workload (paper §IV-C metrics).
  double under_provision_rate = 0.0;
  double over_provision_rate = 0.0;
  double mean_utilization = 0.0;
  double slo_violation_rate = 0.0;
  /// Planning-round accounting. Every round is served: rounds ==
  /// fresh_rounds + stale_rounds + fallback_rounds.
  size_t rounds = 0;
  size_t fresh_rounds = 0;     ///< fresh forecast from the engine
  size_t stale_rounds = 0;     ///< injected stale fault: replayed last plan
  size_t fallback_rounds = 0;  ///< reactive fallback (any cause below)
  size_t shed_rounds = 0;      ///< deadline-shed by admission control
  size_t throttled_rounds = 0; ///< token bucket exhausted
  size_t fault_rounds = 0;     ///< forecaster fault outlasted retries
  size_t error_rounds = 0;     ///< engine/allocator returned an error
  size_t faulted_steps = 0;    ///< simulated steps with an active fault
  /// Streaming-ingest accounting: every realized workload observation is
  /// pushed through a per-tenant stream::IngestRing and drained by a
  /// cursor once per planning round, mirroring the per-tenant ingestion
  /// path of the streaming online loop (DESIGN.md §12).
  uint64_t stream_points = 0;   ///< points drained through the cursor
  /// Points overwritten before the cursor could read them (the cursor's
  /// missed count — stream_points + stream_dropped == points pushed).
  uint64_t stream_dropped = 0;
  /// Forecast staleness: per-step age (in steps) of the tenant's newest
  /// fresh forecast — 0 on steps covered by the round a fresh plan landed
  /// in, growing under stale/fallback rounds.
  double mean_staleness_steps = 0.0;
  uint64_t max_staleness_steps = 0;
  /// Model staleness: per-round age (in steps) of the serving model's
  /// fitted state. In kBatch mode the registry model never folds realized
  /// points, so staleness grows by replan_every per round; in kIncremental
  /// mode the tenant's private forecaster is refreshed at the top of every
  /// round, pinning this to 0.
  double mean_model_staleness_steps = 0.0;
  uint64_t max_model_staleness_steps = 0;
  /// Adaptive selection outcome (zeros when selection is disabled).
  size_t final_tier = 0;
  select::WorkloadPattern pattern = select::WorkloadPattern::kInsufficient;
  select::SelectorStats selector;
  select::PreScalerStats prescale;
};

/// Aggregate outcome of a fleet run.
struct FleetResult {
  std::vector<TenantSummary> tenants;
  size_t rounds = 0;  ///< planning rounds executed (shared by all tenants)
  size_t requests_submitted = 0;  ///< fresh-forecast requests made
  size_t requests_admitted = 0;
  size_t requests_throttled = 0;
  size_t requests_shed = 0;
  /// Tenant means of the per-tenant rates.
  double mean_under_provision_rate = 0.0;
  double mean_over_provision_rate = 0.0;
  double mean_utilization = 0.0;
  double mean_slo_violation_rate = 0.0;
  /// Fleet-wide streaming-ingest totals (sums over tenants) and forecast
  /// staleness (mean of tenant means / max of tenant maxima); mirrored
  /// into the "serve.stream.staleness_steps" histogram.
  uint64_t stream_points = 0;
  uint64_t stream_dropped = 0;
  double mean_staleness_steps = 0.0;
  uint64_t max_staleness_steps = 0;
  /// Model staleness (mean of tenant means / max of tenant maxima) and
  /// per-tenant refresher totals; zeros in kBatch mode.
  double mean_model_staleness_steps = 0.0;
  uint64_t max_model_staleness_steps = 0;
  stream::RefreshStats refresh;
  /// Fleet-wide adaptive-selection totals (sums over tenants; zeros when
  /// selection is disabled), mirrored into the serve.select.* counters.
  uint64_t tier_switches = 0;
  uint64_t tier_promotions = 0;
  uint64_t tier_demotions = 0;
  uint64_t prescale_activations = 0;
  uint64_t prescale_rollbacks = 0;
  uint64_t prescale_floor_raised_steps = 0;
  /// Registry cache effectiveness over the whole run (includes the warm-up
  /// Acquire() per distinct model at fleet setup). With per-shard
  /// registries this sums every registry the run touched, so loads/misses
  /// grow with the shard count even though serving results do not.
  ModelRegistry::CacheStats cache;
  /// Per-step records for the structured exporters (schema rpas_obs.v1);
  /// filled when FleetOptions::collect_decisions is set, run label
  /// "tenant<id>".
  std::vector<obs::ScalingDecision> decisions;
};

/// Configuration of a multi-tenant fleet serving run.
struct FleetOptions {
  size_t num_tenants = 8;
  /// Simulated scaling steps per tenant.
  size_t num_steps = 144;
  /// Observed history available before serving starts; must cover every
  /// model's context length.
  size_t history_steps = 96;
  /// Steps between planning rounds (every tenant replans each round).
  size_t replan_every = 6;
  uint64_t seed = 42;
  /// Workload shape; per-tenant traces draw tenant-derived seeds from it.
  trace::TraceProfile profile = trace::AlibabaProfile();
  /// Robust allocation quantile (paper Definition 4).
  double tau = 0.95;
  /// Per-tenant capacity threshold theta = mean(history) / theta_divisor,
  /// sizing each cluster so workload swings move the node count.
  double theta_divisor = 4.0;
  core::DegradationPolicy degradation;
  /// Fault schedule; each tenant runs an injector with a tenant-derived
  /// seed, so faults are independent across tenants. Inert by default.
  simdb::FaultPlan faults;
  AdmissionController::Options admission;
  /// Serve rounds through cross-tenant batching (BatchEngine); false runs
  /// the per-request baseline. The FleetResult is bit-identical either
  /// way — batching changes cost, never answers.
  bool batched = true;
  bool collect_decisions = false;
  /// Metrics sink threaded through registry consumers created by the run
  /// (engine, admission, clusters); null routes to the global registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Serving shards. Tenants are assigned to shards by a stable hash of
  /// their id; each shard owns a BatchEngine and an AdmissionController
  /// (and a ModelRegistry when `shard_registry_factory` is set), and the
  /// shards of a round execute in parallel on the RpasThreads() pool with
  /// dynamic work-stealing (an idle thread claims the next unstarted
  /// shard). 0 is treated as 1 (the unsharded single-tier fleet). The
  /// FleetResult is bit-identical across every (num_shards, thread count)
  /// combination — admission's deadline shed is computed globally over the
  /// merged per-shard candidate lists and token buckets are per-tenant, so
  /// sharding changes scheduling, never verdicts (see DESIGN.md).
  size_t num_shards = 1;
  /// Capacity (points) of each tenant's streaming ingest ring. Realized
  /// workload observations are pushed per step and drained once per
  /// planning round; 0 sizes the ring at 2 * replan_every, which is always
  /// drop-free when every round drains. Smaller capacities exercise the
  /// drop-oldest path and show up in TenantSummary::stream_dropped.
  size_t stream_ring_capacity = 0;
  /// Per-tenant adaptive model selection over a cost-ordered ladder of
  /// registered versions. Disabled leaves RunFleet bit-identical to the
  /// pre-selection fleet; enabled replaces the round-robin
  /// `models[t % models]` assignment with the tenant's current ladder tier.
  /// The selector consumes only the tenant's observed wQL/fault sequence —
  /// no RNG — so enabling it perturbs no seeded schedule: request seeds,
  /// admission verdicts, and fault draws are unchanged.
  struct SelectionOptions {
    bool enabled = false;
    /// Ladder of registered versions, cheapest first (e.g. seasonal-naive
    /// -> ARIMA -> MLP -> DeepAR). Required non-empty when enabled; every
    /// entry's context length must fit history_steps.
    std::vector<ModelId> ladder;
    select::ClassifierOptions classifier;
    /// `selector.ladder_size` is overwritten with `ladder.size()`.
    select::SelectorOptions selector;
    /// TRUE pre-scaling: raise each tenant's capacity floor ahead of a
    /// predicted spike, auto-rollback after peak or timeout.
    bool prescale = true;
    select::PreScalerOptions prescaler;
  };
  SelectionOptions selection;
  /// How tenants' serving models track realized workload. kBatch serves
  /// every round from the (frozen) registry version — bit-identical to the
  /// pre-streaming fleet. kIncremental gives each tenant a private
  /// forecaster built by `refresh_model_factory`, fitted on the tenant's
  /// own history, refreshed from its ingest ring at the top of every round
  /// via a stream::IncrementalRefresher, and served directly (bypassing the
  /// BatchEngine — per-tenant state cannot be cross-tenant batched).
  /// Cannot be combined with selection (the refresher tracks one model).
  core::RefreshMode refresh_mode = core::RefreshMode::kBatch;
  /// Builds an unfitted forecaster configured like the registered version.
  /// Required (non-null) in kIncremental mode.
  std::function<std::unique_ptr<forecast::Forecaster>(const ModelId&)>
      refresh_model_factory;
  stream::RefresherOptions refresher;
  /// Builds one model registry per shard with every referenced version
  /// registered against the same checkpoints as the registry passed to
  /// RunFleet. When null, all shards share that registry — correct, but
  /// its internal mutex stays the cross-shard serialization point, which
  /// defeats most of the sharding speedup. FleetResult::cache aggregates
  /// over every registry the run touched.
  std::function<std::unique_ptr<ModelRegistry>()> shard_registry_factory;
};

/// Stable tenant→shard assignment (SplitMix64 finalizer on the id). Pure
/// and platform-independent, so a tenant's shard — and with it the
/// composition of every per-shard cache — never changes across runs.
size_t ShardOfTenant(uint64_t tenant_id, size_t num_shards);

/// Steps `num_tenants` simulated database clusters through the online
/// scaling loop against a shared serving tier: each planning round, every
/// tenant requests a fresh quantile forecast for its own synthetic
/// workload from its assigned model version (`models[tenant % models]`),
/// the admission controller applies rate limits and the round's deadline
/// budget, admitted requests run through the batch engine, and each
/// tenant's RobustQuantileAllocator plan drives its cluster until the next
/// round. Tenants that are throttled, shed, or hit by an injected
/// forecaster fault degrade to the reactive fallback plan of PR 2
/// (core::BuildFallbackPlan) — a tenant's round is never dropped and the
/// fleet never aborts on a fault.
///
/// Determinism: the result is a pure function of `options` and the
/// registered model weights — independent of thread count and of
/// `options.batched` (see BatchEngine's contract).
Result<FleetResult> RunFleet(ModelRegistry* registry,
                             const std::vector<ModelId>& models,
                             const FleetOptions& options);

}  // namespace rpas::serve

#endif  // RPAS_SERVE_FLEET_H_
