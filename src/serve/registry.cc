#include "serve/registry.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <utility>

#include "common/strings.h"
#include "nn/qcheckpoint.h"

namespace rpas::serve {
namespace {

/// Size of the file at `path` in bytes, or 0 when missing/unreadable.
size_t FileSizeBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    return 0;
  }
  const std::streamoff size = in.tellg();
  return size > 0 ? static_cast<size_t>(size) : 0;
}

/// Budget charge of a resident entry: every heap byte at full price plus
/// the weighted share of its mapped bytes.
size_t ChargedBytes(size_t heap, size_t mapped, double weight) {
  return heap + static_cast<size_t>(std::llround(
                    static_cast<double>(mapped) * weight));
}

}  // namespace

std::string ModelId::ToString() const {
  return StrFormat("%s@v%llu", name.c_str(),
                   static_cast<unsigned long long>(version));
}

ModelRegistry::ModelRegistry(Options options) : options_(options) {
  options_.mapped_byte_weight =
      std::clamp(options_.mapped_byte_weight, 0.0, 1.0);
  obs::MetricsRegistry* metrics = obs::ResolveRegistry(options_.metrics);
  hits_ = metrics->GetCounter("serve.registry.hits");
  misses_ = metrics->GetCounter("serve.registry.misses");
  evictions_ = metrics->GetCounter("serve.registry.evictions");
  loads_ = metrics->GetCounter("serve.registry.loads");
  resident_bytes_gauge_ = metrics->GetGauge("serve.registry.resident_bytes");
  mapped_bytes_gauge_ = metrics->GetGauge("serve.registry.mapped_bytes");
  heap_bytes_gauge_ = metrics->GetGauge("serve.registry.heap_bytes");
  charged_bytes_gauge_ = metrics->GetGauge("serve.registry.charged_bytes");
  pinned_bytes_gauge_ = metrics->GetGauge("serve.registry.pinned_bytes");
}

Status ModelRegistry::RegisterVersion(const ModelId& id,
                                      const std::string& path,
                                      ForecasterFactory factory) {
  if (id.name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("model factory must be non-null");
  }
  const size_t bytes = FileSizeBytes(path);
  if (bytes == 0) {
    return Status::InvalidArgument(
        StrFormat("%s: checkpoint missing or empty: %s",
                  id.ToString().c_str(), path.c_str()));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(id) > 0) {
    return Status::FailedPrecondition(id.ToString() +
                                      ": version already registered");
  }
  Entry entry;
  entry.path = path;
  entry.factory = std::move(factory);
  entry.bytes = bytes;
  entries_.emplace(id, std::move(entry));
  return Status::OK();
}

Status ModelRegistry::RegisterTrained(const ModelId& id,
                                      const std::string& path,
                                      const forecast::Forecaster& fitted,
                                      ForecasterFactory factory) {
  if (!fitted.SupportsCheckpoint()) {
    return Status::InvalidArgument(fitted.Name() +
                                   ": model does not support checkpointing");
  }
  RPAS_RETURN_IF_ERROR(fitted.SaveCheckpoint(path));
  return RegisterVersion(id, path, std::move(factory));
}

Result<std::shared_ptr<const forecast::Forecaster>> ModelRegistry::Acquire(
    const ModelId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound(id.ToString() + ": version not registered");
  }
  Entry& entry = it->second;
  entry.last_used = ++tick_;
  if (entry.resident != nullptr) {
    ++stats_.hits;
    hits_->Increment();
    return entry.resident;
  }

  ++stats_.misses;
  ++stats_.loads;
  misses_->Increment();
  loads_->Increment();
  std::shared_ptr<const forecast::Forecaster> shared;
  RPAS_RETURN_IF_ERROR(LoadColdLocked(id, &entry, &shared));
  EvictToBudgetLocked();
  PublishBytesLocked();
  return shared;
}

Status ModelRegistry::LoadColdLocked(
    const ModelId& id, Entry* entry,
    std::shared_ptr<const forecast::Forecaster>* out) {
  std::unique_ptr<forecast::Forecaster> model = entry->factory();
  if (model == nullptr) {
    return Status::Internal(id.ToString() + ": factory returned null");
  }
  // Everything below builds into locals; entry/accounting mutate only at
  // the commit block, so any failure leaves the registry unchanged.
  //
  // Probe before sniffing the format: IsQuantizedCheckpointFile() returns
  // false for a file it cannot open, and routing a *missing* file to the
  // text parser turns "checkpoint temporarily absent" (a retryable
  // IoError — it happens while a checkpoint is being atomically replaced)
  // into a misleading parse error once the file reappears in the other
  // format.
  if (!std::ifstream(entry->path, std::ios::binary).is_open()) {
    return Status::IoError(
        StrFormat("%s: cannot open checkpoint '%s'", id.ToString().c_str(),
                  entry->path.c_str()));
  }
  size_t bytes = 0;
  size_t mapped = 0;
  size_t heap = 0;
  if (nn::IsQuantizedCheckpointFile(entry->path)) {
    RPAS_ASSIGN_OR_RETURN(std::shared_ptr<const nn::QuantizedCheckpoint> ckpt,
                          nn::QuantizedCheckpoint::Map(entry->path));
    bytes = ckpt->file_bytes();
    mapped = ckpt->mapped_bytes();
    heap = ckpt->heap_bytes();
    RPAS_RETURN_IF_ERROR(model->LoadQuantizedCheckpoint(std::move(ckpt)));
  } else {
    RPAS_RETURN_IF_ERROR(model->LoadCheckpoint(entry->path));
    // Re-stat after the successful parse: the registered size is stale
    // when the checkpoint was atomically replaced since registration.
    bytes = FileSizeBytes(entry->path);
    if (bytes == 0) {
      bytes = entry->bytes;  // replaced mid-load; keep the registered size
    }
    heap = bytes;
  }
  entry->bytes = bytes;
  entry->mapped = mapped;
  entry->heap = heap;
  entry->charged = ChargedBytes(heap, mapped, options_.mapped_byte_weight);
  std::shared_ptr<const forecast::Forecaster> shared = std::move(model);
  entry->resident = shared;
  entry->alive = shared;
  resident_bytes_ += bytes;
  mapped_bytes_ += mapped;
  heap_bytes_ += heap;
  charged_bytes_ += entry->charged;
  *out = std::move(shared);
  return Status::OK();
}

void ModelRegistry::PublishBytesLocked() {
  stats_.resident_bytes = resident_bytes_;
  stats_.mapped_bytes = mapped_bytes_;
  stats_.heap_bytes = heap_bytes_;
  stats_.charged_bytes = charged_bytes_;
  resident_bytes_gauge_->Set(static_cast<double>(resident_bytes_));
  mapped_bytes_gauge_->Set(static_cast<double>(mapped_bytes_));
  heap_bytes_gauge_->Set(static_cast<double>(heap_bytes_));
  charged_bytes_gauge_->Set(static_cast<double>(charged_bytes_));
  CacheStats pinned;
  FillPinnedLocked(&pinned);
  pinned_bytes_gauge_->Set(static_cast<double>(pinned.pinned_bytes));
}

void ModelRegistry::EvictToBudgetLocked() {
  // LRU scan over the (small) version map; the just-loaded entry carries
  // the newest tick, so it is evicted only when it alone exceeds the
  // budget — the bound holds unconditionally. The bound is on the
  // *charged* bytes (heap at full price, mapped bytes discounted by
  // mapped_byte_weight), so a fleet of mmap-served rpasq models packs
  // denser than its raw file sizes suggest. Two-tier victim choice:
  // evicting a pinned model drops only the registry's reference while
  // in-flight holders keep the weights alive, so the bytes are not really
  // freed — prefer the LRU *unpinned* victim and fall back to a pinned one
  // only when every resident model is pinned.
  while (charged_bytes_ > options_.cache_budget_bytes) {
    auto victim = entries_.end();
    auto pinned_victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.resident == nullptr) {
        continue;
      }
      if (it->second.PinnedLocked()) {
        if (pinned_victim == entries_.end() ||
            it->second.last_used < pinned_victim->second.last_used) {
          pinned_victim = it;
        }
        continue;
      }
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) {
      victim = pinned_victim;
    }
    if (victim == entries_.end()) {
      break;  // nothing resident; budget of 0 with no cache
    }
    victim->second.resident.reset();
    resident_bytes_ -= victim->second.bytes;
    mapped_bytes_ -= victim->second.mapped;
    heap_bytes_ -= victim->second.heap;
    charged_bytes_ -= victim->second.charged;
    victim->second.mapped = 0;
    victim->second.heap = 0;
    victim->second.charged = 0;
    ++stats_.evictions;
    evictions_->Increment();
  }
}

void ModelRegistry::FillPinnedLocked(CacheStats* stats) const {
  stats->pinned_models = 0;
  stats->pinned_bytes = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.PinnedLocked()) {
      ++stats->pinned_models;
      stats->pinned_bytes += entry.bytes;
    }
  }
}

Result<ModelId> ModelRegistry::Latest(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Map order is (name asc, version asc): the last entry with a matching
  // name is the highest version.
  Result<ModelId> latest = Status::NotFound(name + ": no versions registered");
  for (const auto& [id, entry] : entries_) {
    if (id.name == name) {
      latest = id;
    }
  }
  return latest;
}

size_t ModelRegistry::NumRegistered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

ModelRegistry::CacheStats ModelRegistry::GetCacheStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats stats = stats_;
  stats.resident_bytes = resident_bytes_;
  stats.mapped_bytes = mapped_bytes_;
  stats.heap_bytes = heap_bytes_;
  stats.charged_bytes = charged_bytes_;
  stats.resident_models = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.resident != nullptr) {
      ++stats.resident_models;
    }
  }
  FillPinnedLocked(&stats);
  return stats;
}

}  // namespace rpas::serve
