#include "serve/registry.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <utility>

#include "common/strings.h"
#include "nn/qcheckpoint.h"

namespace rpas::serve {
namespace {

/// Size of the file at `path` in bytes, or 0 when missing/unreadable.
size_t FileSizeBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    return 0;
  }
  const std::streamoff size = in.tellg();
  return size > 0 ? static_cast<size_t>(size) : 0;
}

/// Budget charge of a resident entry: every heap byte at full price plus
/// the weighted share of its mapped bytes.
size_t ChargedBytes(size_t heap, size_t mapped, double weight) {
  return heap + static_cast<size_t>(std::llround(
                    static_cast<double>(mapped) * weight));
}

}  // namespace

std::string ModelId::ToString() const {
  return StrFormat("%s@v%llu", name.c_str(),
                   static_cast<unsigned long long>(version));
}

ModelRegistry::ModelRegistry(Options options) : options_(options) {
  options_.mapped_byte_weight =
      std::clamp(options_.mapped_byte_weight, 0.0, 1.0);
  snapshot_.store(std::make_shared<const Snapshot>(),
                  std::memory_order_release);
  obs::MetricsRegistry* metrics = obs::ResolveRegistry(options_.metrics);
  // The hit/miss/load counters fire inside the parallel shard phase, so
  // they are striped: per-thread-slot cache lines, merged exactly on read.
  hits_ = metrics->GetStripedCounter("serve.registry.hits");
  misses_ = metrics->GetStripedCounter("serve.registry.misses");
  evictions_ = metrics->GetCounter("serve.registry.evictions");
  loads_ = metrics->GetStripedCounter("serve.registry.loads");
  resident_bytes_gauge_ = metrics->GetGauge("serve.registry.resident_bytes");
  mapped_bytes_gauge_ = metrics->GetGauge("serve.registry.mapped_bytes");
  heap_bytes_gauge_ = metrics->GetGauge("serve.registry.heap_bytes");
  charged_bytes_gauge_ = metrics->GetGauge("serve.registry.charged_bytes");
  pinned_bytes_gauge_ = metrics->GetGauge("serve.registry.pinned_bytes");
}

Status ModelRegistry::RegisterVersion(const ModelId& id,
                                      const std::string& path,
                                      ForecasterFactory factory) {
  if (id.name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("model factory must be non-null");
  }
  const size_t bytes = FileSizeBytes(path);
  if (bytes == 0) {
    return Status::InvalidArgument(
        StrFormat("%s: checkpoint missing or empty: %s",
                  id.ToString().c_str(), path.c_str()));
  }
  auto lock = LockRegistry();
  if (entries_.count(id) > 0) {
    return Status::FailedPrecondition(id.ToString() +
                                      ": version already registered");
  }
  auto info = std::make_shared<VersionInfo>();
  info->path = path;
  info->factory = std::move(factory);
  info->registered_bytes.store(bytes, std::memory_order_relaxed);
  Entry entry;
  entry.info = std::move(info);
  entries_.emplace(id, std::move(entry));
  RebuildSnapshotLocked();
  return Status::OK();
}

Status ModelRegistry::RegisterTrained(const ModelId& id,
                                      const std::string& path,
                                      const forecast::Forecaster& fitted,
                                      ForecasterFactory factory) {
  if (!fitted.SupportsCheckpoint()) {
    return Status::InvalidArgument(fitted.Name() +
                                   ": model does not support checkpointing");
  }
  RPAS_RETURN_IF_ERROR(fitted.SaveCheckpoint(path));
  return RegisterVersion(id, path, std::move(factory));
}

Result<std::shared_ptr<const forecast::Forecaster>> ModelRegistry::Acquire(
    const ModelId& id) {
  // Hot path: resolve wholly against the published snapshot. A warm hit
  // is a snapshot load, a map lookup, a relaxed LRU-tick store and a
  // striped counter increment — no mutex, no CAS loop.
  std::shared_ptr<VersionInfo> info;
  {
    std::shared_ptr<const Snapshot> snap =
        snapshot_.load(std::memory_order_acquire);
    auto it = snap->entries.find(id);
    if (it == snap->entries.end()) {
      return Status::NotFound(id.ToString() + ": version not registered");
    }
    const SnapshotEntry& se = it->second;
    se.info->last_used.store(
        tick_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    if (se.resident != nullptr) {
      stat_hits_.fetch_add(1, std::memory_order_relaxed);
      hits_->Increment();
      return se.resident;
    }
    info = se.info;
    // `snap` dies here: the cold path must not keep the pre-load snapshot
    // generation alive, or its strong references would make this call's
    // eviction victims look pinned while the new generation is published.
  }
  return AcquireCold(id, std::move(info));
}

Result<std::shared_ptr<const forecast::Forecaster>> ModelRegistry::AcquireCold(
    const ModelId& id, std::shared_ptr<VersionInfo> info) {
  {
    // Per-version latch: wait out any in-flight load of THIS version.
    // Loads of other versions hold their own latches — a cold tenant
    // never blocks a different tenant's hit or load.
    auto latch = LockLatch(info.get());
    while (info->loading) {
      info->load_cv.wait(latch);
    }
    // Re-check the snapshot: the load we waited on may have landed (then
    // this call is a hit, exactly as it would have been when the old
    // global mutex serialized it behind the loader), or it may have
    // failed (then this caller claims the latch and retries the load —
    // each failing Acquire counts its own miss+load, as before).
    std::shared_ptr<const Snapshot> snap =
        snapshot_.load(std::memory_order_acquire);
    auto it = snap->entries.find(id);
    if (it != snap->entries.end() && it->second.resident != nullptr) {
      stat_hits_.fetch_add(1, std::memory_order_relaxed);
      hits_->Increment();
      return it->second.resident;
    }
    info->loading = true;
  }

  stat_misses_.fetch_add(1, std::memory_order_relaxed);
  stat_loads_.fetch_add(1, std::memory_order_relaxed);
  misses_->Increment();
  loads_->Increment();

  // The expensive step — factory + checkpoint parse/map — runs outside
  // every lock; only same-version callers (blocked on the latch) wait.
  std::shared_ptr<const forecast::Forecaster> shared;
  size_t bytes = 0;
  size_t mapped = 0;
  size_t heap = 0;
  Status status = LoadVersion(id, info.get(), &shared, &bytes, &mapped, &heap);

  if (status.ok()) {
    // Commit on the mutator path: byte accounting, eviction and the new
    // snapshot generation, all under the registry mutex the hot path
    // never touches.
    auto lock = LockRegistry();
    auto mit = entries_.find(id);
    if (mit == entries_.end()) {
      status = Status::Internal(id.ToString() +
                                ": entry vanished during load");
    } else {
      Entry& entry = mit->second;
      if (entry.resident != nullptr) {
        // Defensive: the latch serializes loaders, so this cannot happen;
        // serve the committed model rather than double-count bytes.
        shared = entry.resident;
      } else {
        entry.bytes = bytes;
        entry.mapped = mapped;
        entry.heap = heap;
        entry.charged =
            ChargedBytes(heap, mapped, options_.mapped_byte_weight);
        entry.resident = shared;
        entry.alive = shared;
        entry.in_snapshot = false;
        info->registered_bytes.store(bytes, std::memory_order_relaxed);
        resident_bytes_ += bytes;
        mapped_bytes_ += mapped;
        heap_bytes_ += heap;
        charged_bytes_ += entry.charged;
        EvictToBudgetLocked();
        RebuildSnapshotLocked();
        PublishBytesLocked();
      }
    }
  }

  {
    auto latch = LockLatch(info.get());
    info->loading = false;
  }
  info->load_cv.notify_all();

  if (!status.ok()) {
    return status;
  }
  return shared;
}

Status ModelRegistry::LoadVersion(
    const ModelId& id, VersionInfo* info,
    std::shared_ptr<const forecast::Forecaster>* out, size_t* bytes_out,
    size_t* mapped_out, size_t* heap_out) const {
  std::unique_ptr<forecast::Forecaster> model = info->factory();
  if (model == nullptr) {
    return Status::Internal(id.ToString() + ": factory returned null");
  }
  // Everything below builds into locals; the caller commits entry state
  // and byte accounting only when every step has succeeded — any failure
  // leaves the registry unchanged.
  //
  // Probe before sniffing the format: IsQuantizedCheckpointFile() returns
  // false for a file it cannot open, and routing a *missing* file to the
  // text parser turns "checkpoint temporarily absent" (a retryable
  // IoError — it happens while a checkpoint is being atomically replaced)
  // into a misleading parse error once the file reappears in the other
  // format.
  if (!std::ifstream(info->path, std::ios::binary).is_open()) {
    return Status::IoError(
        StrFormat("%s: cannot open checkpoint '%s'", id.ToString().c_str(),
                  info->path.c_str()));
  }
  size_t bytes = 0;
  size_t mapped = 0;
  size_t heap = 0;
  if (nn::IsQuantizedCheckpointFile(info->path)) {
    RPAS_ASSIGN_OR_RETURN(std::shared_ptr<const nn::QuantizedCheckpoint> ckpt,
                          nn::QuantizedCheckpoint::Map(info->path));
    bytes = ckpt->file_bytes();
    mapped = ckpt->mapped_bytes();
    heap = ckpt->heap_bytes();
    RPAS_RETURN_IF_ERROR(model->LoadQuantizedCheckpoint(std::move(ckpt)));
  } else {
    RPAS_RETURN_IF_ERROR(model->LoadCheckpoint(info->path));
    // Re-stat after the successful parse: the registered size is stale
    // when the checkpoint was atomically replaced since registration.
    bytes = FileSizeBytes(info->path);
    if (bytes == 0) {
      // Replaced mid-load; keep the registered size.
      bytes = info->registered_bytes.load(std::memory_order_relaxed);
    }
    heap = bytes;
  }
  *out = std::shared_ptr<const forecast::Forecaster>(std::move(model));
  *bytes_out = bytes;
  *mapped_out = mapped;
  *heap_out = heap;
  return Status::OK();
}

void ModelRegistry::RebuildSnapshotLocked() {
  auto snap = std::make_shared<Snapshot>();
  for (auto& [id, entry] : entries_) {
    SnapshotEntry se;
    se.info = entry.info;
    se.resident = entry.resident;
    entry.in_snapshot = entry.resident != nullptr;
    snap->entries.emplace(id, std::move(se));
  }
  snapshot_.store(std::shared_ptr<const Snapshot>(std::move(snap)),
                  std::memory_order_release);
}

void ModelRegistry::PublishBytesLocked() {
  resident_bytes_gauge_->Set(static_cast<double>(resident_bytes_));
  mapped_bytes_gauge_->Set(static_cast<double>(mapped_bytes_));
  heap_bytes_gauge_->Set(static_cast<double>(heap_bytes_));
  charged_bytes_gauge_->Set(static_cast<double>(charged_bytes_));
  CacheStats pinned;
  FillPinnedLocked(&pinned);
  pinned_bytes_gauge_->Set(static_cast<double>(pinned.pinned_bytes));
}

void ModelRegistry::EvictToBudgetLocked() {
  // LRU scan over the (small) version map; the just-loaded entry carries
  // the newest tick, so it is evicted only when it alone exceeds the
  // budget — the bound holds unconditionally. The bound is on the
  // *charged* bytes (heap at full price, mapped bytes discounted by
  // mapped_byte_weight), so a fleet of mmap-served rpasq models packs
  // denser than its raw file sizes suggest. Two-tier victim choice:
  // evicting a pinned model drops only the registry's reference while
  // in-flight holders keep the weights alive, so the bytes are not really
  // freed — prefer the LRU *unpinned* victim and fall back to a pinned one
  // only when every resident model is pinned.
  while (charged_bytes_ > options_.cache_budget_bytes) {
    auto victim = entries_.end();
    auto pinned_victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.resident == nullptr) {
        continue;
      }
      const uint64_t used =
          it->second.info->last_used.load(std::memory_order_relaxed);
      if (it->second.PinnedLocked()) {
        if (pinned_victim == entries_.end() ||
            used < pinned_victim->second.info->last_used.load(
                       std::memory_order_relaxed)) {
          pinned_victim = it;
        }
        continue;
      }
      if (victim == entries_.end() ||
          used < victim->second.info->last_used.load(
                     std::memory_order_relaxed)) {
        victim = it;
      }
    }
    if (victim == entries_.end()) {
      victim = pinned_victim;
    }
    if (victim == entries_.end()) {
      break;  // nothing resident; budget of 0 with no cache
    }
    victim->second.resident.reset();
    victim->second.in_snapshot = false;
    resident_bytes_ -= victim->second.bytes;
    mapped_bytes_ -= victim->second.mapped;
    heap_bytes_ -= victim->second.heap;
    charged_bytes_ -= victim->second.charged;
    victim->second.mapped = 0;
    victim->second.heap = 0;
    victim->second.charged = 0;
    stat_evictions_.fetch_add(1, std::memory_order_relaxed);
    evictions_->Increment();
  }
}

void ModelRegistry::FillPinnedLocked(CacheStats* stats) const {
  stats->pinned_models = 0;
  stats->pinned_bytes = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.PinnedLocked()) {
      ++stats->pinned_models;
      stats->pinned_bytes += entry.bytes;
    }
  }
}

Result<ModelId> ModelRegistry::Latest(const std::string& name) const {
  std::shared_ptr<const Snapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  // Map order is (name asc, version asc): the last entry with a matching
  // name is the highest version.
  Result<ModelId> latest = Status::NotFound(name + ": no versions registered");
  for (const auto& [id, entry] : snap->entries) {
    if (id.name == name) {
      latest = id;
    }
  }
  return latest;
}

size_t ModelRegistry::NumRegistered() const {
  std::shared_ptr<const Snapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  return snap->entries.size();
}

ModelRegistry::CacheStats ModelRegistry::GetCacheStats() const {
  auto lock = LockRegistry();
  CacheStats stats;
  stats.hits = stat_hits_.load(std::memory_order_relaxed);
  stats.misses = stat_misses_.load(std::memory_order_relaxed);
  stats.evictions = stat_evictions_.load(std::memory_order_relaxed);
  stats.loads = stat_loads_.load(std::memory_order_relaxed);
  stats.resident_bytes = resident_bytes_;
  stats.mapped_bytes = mapped_bytes_;
  stats.heap_bytes = heap_bytes_;
  stats.charged_bytes = charged_bytes_;
  stats.resident_models = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.resident != nullptr) {
      ++stats.resident_models;
    }
  }
  FillPinnedLocked(&stats);
  return stats;
}

}  // namespace rpas::serve
