#include "serve/batching.h"

#include <map>
#include <memory>
#include <utility>

#include "common/parallel.h"

namespace rpas::serve {

BatchEngine::BatchEngine(ModelRegistry* registry, Options options)
    : registry_(registry), options_(options) {
  // Handles resolve once here; Execute() never does a name lookup. The
  // instruments fire concurrently from every shard's engine in the fleet's
  // parallel phase, so they are striped (merged exactly on read).
  obs::MetricsRegistry* metrics = obs::ResolveRegistry(options_.metrics);
  requests_counter_ = metrics->GetStripedCounter("serve.engine.requests");
  batches_counter_ = metrics->GetStripedCounter("serve.engine.batches");
  errors_counter_ =
      metrics->GetStripedCounter("serve.engine.request_errors");
  batch_size_hist_ =
      metrics->GetStripedHistogram("serve.engine.batch_size");
}

std::vector<ForecastResponse> BatchEngine::Execute(
    const std::vector<ForecastRequest>& requests) {
  std::vector<ForecastResponse> responses(requests.size());
  if (requests.empty()) {
    return responses;
  }
  requests_counter_->Increment(static_cast<int64_t>(requests.size()));
  if (options_.batch_across_tenants) {
    ExecuteBatched(requests, &responses);
  } else {
    ExecuteUnbatched(requests, &responses);
  }
  for (const ForecastResponse& response : responses) {
    if (!response.ok()) {
      errors_counter_->Increment();
    }
  }
  return responses;
}

void BatchEngine::ExecuteBatched(const std::vector<ForecastRequest>& requests,
                                 std::vector<ForecastResponse>* responses) {
  // Stable grouping: requests keep their slate order inside each group, and
  // groups are processed in first-appearance order, so execution order is a
  // pure function of the slate.
  std::vector<std::pair<ModelId, std::vector<size_t>>> groups;
  std::map<ModelId, size_t> group_of;
  for (size_t i = 0; i < requests.size(); ++i) {
    auto [it, inserted] = group_of.emplace(requests[i].model, groups.size());
    if (inserted) {
      groups.emplace_back(requests[i].model, std::vector<size_t>{});
    }
    groups[it->second].second.push_back(i);
  }

  for (const auto& [model_id, indices] : groups) {
    batches_counter_->Increment();
    batch_size_hist_->Observe(static_cast<double>(indices.size()));

    auto acquired = registry_->Acquire(model_id);
    if (!acquired.ok()) {
      for (size_t i : indices) {
        (*responses)[i].status = acquired.status();
      }
      continue;
    }
    const std::shared_ptr<const forecast::Forecaster>& model = *acquired;

    std::vector<forecast::ForecastInput> inputs;
    std::vector<uint64_t> seeds;
    inputs.reserve(indices.size());
    seeds.reserve(indices.size());
    for (size_t i : indices) {
      inputs.push_back(requests[i].input);
      seeds.push_back(requests[i].seed);
    }

    if (model->SupportsBatchedInference()) {
      auto batch = model->PredictBatch(inputs, seeds);
      if (batch.ok()) {
        for (size_t k = 0; k < indices.size(); ++k) {
          (*responses)[indices[k]].forecast = std::move((*batch)[k]);
        }
        continue;
      }
      // A whole-batch failure (e.g. one malformed context) falls through to
      // per-request serving so only the offending requests error.
    }
    // Per-request path for models without a stacked forward (or after a
    // batch failure). Responses are written to disjoint slots and
    // PredictSeeded is thread-safe on a fitted model, so the fan-out keeps
    // the determinism contract.
    ParallelFor(0, indices.size(), 1, [&](size_t begin, size_t end) {
      for (size_t k = begin; k < end; ++k) {
        auto result = model->PredictSeeded(inputs[k], seeds[k]);
        if (result.ok()) {
          (*responses)[indices[k]].forecast = std::move(*result);
        } else {
          (*responses)[indices[k]].status = result.status();
        }
      }
    });
  }
}

void BatchEngine::ExecuteUnbatched(
    const std::vector<ForecastRequest>& requests,
    std::vector<ForecastResponse>* responses) {
  for (size_t i = 0; i < requests.size(); ++i) {
    batches_counter_->Increment();
    batch_size_hist_->Observe(1.0);
    auto acquired = registry_->Acquire(requests[i].model);
    if (!acquired.ok()) {
      (*responses)[i].status = acquired.status();
      continue;
    }
    auto result = (*acquired)->PredictSeeded(requests[i].input,
                                             requests[i].seed);
    if (result.ok()) {
      (*responses)[i].forecast = std::move(*result);
    } else {
      (*responses)[i].status = result.status();
    }
  }
}

}  // namespace rpas::serve
